// Ablations for the library's own design choices (DESIGN.md section 5):
//  * hash-indexed backtracking join vs a naive nested-loop join;
//  * semi-naive Datalog evaluation vs naive re-derivation to fixpoint;
//  * RewriteLSIQuery with and without the per-rewriting verification net;
//  * the EngineContext decision cache on vs off on a repeated workload.
#include <benchmark/benchmark.h>

#include "bench/bench_threads.h"

#include "src/base/rng.h"
#include "src/datalog/engine.h"
#include "src/eval/evaluate.h"
#include "src/gen/generators.h"
#include "src/gen/paper_workloads.h"
#include "src/ir/parser.h"
#include "src/rewriting/rewrite_lsi.h"

namespace cqac {
namespace {

Database ChainDb(size_t n) {
  Rng rng(n);
  Database db;
  for (size_t i = 0; i < n; ++i) {
    Status st = db.Insert(
        "e", {Value(Rational(rng.Uniform(0, static_cast<int64_t>(n / 2)))),
              Value(Rational(rng.Uniform(0, static_cast<int64_t>(n / 2))))});
    if (!st.ok()) std::abort();
  }
  return db;
}

const char* kTriangle = "q(A, C) :- e(A, B), e(B, C), e(C, A)";

void BM_JoinIndexed(benchmark::State& state) {
  Database db = ChainDb(static_cast<size_t>(state.range(0)));
  Query q = MustParseQuery(kTriangle);
  size_t answers = 0;
  for (auto _ : state) {
    auto r = EvaluateQuery(q, db);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    answers = r.ValueOr(Relation{}).size();
  }
  state.counters["answers"] = static_cast<double>(answers);
}
BENCHMARK(BM_JoinIndexed)->Arg(100)->Arg(400)->Arg(1600)
    ->Unit(benchmark::kMicrosecond);

// Deliberately index-free reference join for the ablation.
void BM_JoinNaive(benchmark::State& state) {
  Database db = ChainDb(static_cast<size_t>(state.range(0)));
  const Relation& e = db.Get("e");
  size_t answers = 0;
  for (auto _ : state) {
    Relation out;
    for (const Tuple& t1 : e)
      for (const Tuple& t2 : e) {
        if (!(t1[1] == t2[0])) continue;
        for (const Tuple& t3 : e)
          if (t2[1] == t3[0] && t3[1] == t1[0])
            out.insert({t1[0], t2[1]});
      }
    answers = out.size();
    benchmark::DoNotOptimize(out);
  }
  state.counters["answers"] = static_cast<double>(answers);
}
BENCHMARK(BM_JoinNaive)->Arg(100)->Arg(400)->Arg(1600)
    ->Unit(benchmark::kMicrosecond);

void BM_DatalogSemiNaive(benchmark::State& state) {
  Database db;
  const int n = static_cast<int>(state.range(0));
  for (int i = 0; i + 1 < n; ++i) {
    Status st =
        db.Insert("e", {Value(Rational(i)), Value(Rational(i + 1))});
    if (!st.ok()) std::abort();
  }
  Program p("t", MustParseRules(
                     "t(X, Y) :- e(X, Y).\n"
                     "t(X, Z) :- e(X, Y), t(Y, Z)."));
  datalog::Engine engine(p);
  size_t facts = 0;
  for (auto _ : state) {
    auto r = engine.Query(db);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    facts = r.ValueOr(Relation{}).size();
  }
  state.counters["tc_facts"] = static_cast<double>(facts);
}
BENCHMARK(BM_DatalogSemiNaive)->Arg(16)->Arg(64)->Arg(128)
    ->Unit(benchmark::kMicrosecond);

// Naive fixpoint: recompute every rule over the FULL database each round.
void BM_DatalogNaiveReference(benchmark::State& state) {
  Database db;
  const int n = static_cast<int>(state.range(0));
  for (int i = 0; i + 1 < n; ++i) {
    Status st =
        db.Insert("e", {Value(Rational(i)), Value(Rational(i + 1))});
    if (!st.ok()) std::abort();
  }
  Query base = MustParseQuery("t(X, Y) :- e(X, Y)");
  Query step = MustParseQuery("t(X, Z) :- e(X, Y), t(Y, Z)");
  size_t facts = 0;
  for (auto _ : state) {
    Database work = db;
    size_t before = 0;
    while (true) {
      for (const Query& rule : {base, step}) {
        auto r = EvaluateQuery(rule, work);
        if (!r.ok()) {
          state.SkipWithError(r.status().ToString().c_str());
          return;
        }
        for (const Tuple& t : r.value()) {
          Status st = work.Insert("t", t);
          if (!st.ok()) std::abort();
        }
      }
      size_t now = work.Get("t").size();
      if (now == before) break;
      before = now;
    }
    facts = before;
  }
  state.counters["tc_facts"] = static_cast<double>(facts);
}
BENCHMARK(BM_DatalogNaiveReference)->Arg(16)->Arg(64)->Arg(128)
    ->Unit(benchmark::kMicrosecond);

void RunRewrite(benchmark::State& state, bool verify) {
  Query q = workloads::Sec44FullQuery();
  ViewSet views = workloads::Sec44FullViews();
  RewriteOptions opts;
  opts.verify_rewritings = verify;
  size_t rewritings = 0;
  for (auto _ : state) {
    auto mcr = RewriteLsiQuery(q, views, opts);
    if (!mcr.ok()) state.SkipWithError(mcr.status().ToString().c_str());
    rewritings = mcr.ValueOr(UnionQuery{}).disjuncts.size();
  }
  state.counters["rewritings"] = static_cast<double>(rewritings);
}
void BM_RewriteWithVerification(benchmark::State& state) {
  RunRewrite(state, true);
}
void BM_RewriteWithoutVerification(benchmark::State& state) {
  RunRewrite(state, false);
}
BENCHMARK(BM_RewriteWithVerification);
BENCHMARK(BM_RewriteWithoutVerification);

// Decision-cache ablation: the same rewrite workload against one shared
// context, with memoization enabled vs disabled. The cached run pays the
// containment cost once and answers repeats from the memo; the uncached
// run re-decides every time (results are identical either way — the cache
// only changes cost, never answers).
void RunRewriteCacheAblation(benchmark::State& state, bool cached) {
  Query q = workloads::Sec44FullQuery();
  ViewSet views = workloads::Sec44FullViews();
  EngineContext ctx;
  ctx.set_caching_enabled(cached);
  size_t rewritings = 0;
  for (auto _ : state) {
    auto mcr = RewriteLsiQuery(ctx, q, views);
    if (!mcr.ok()) state.SkipWithError(mcr.status().ToString().c_str());
    rewritings = mcr.ValueOr(UnionQuery{}).disjuncts.size();
  }
  state.counters["rewritings"] = static_cast<double>(rewritings);
  state.counters["containment_hit_rate"] = ctx.stats().ContainmentHitRate();
}
void BM_RewriteCached(benchmark::State& state) {
  RunRewriteCacheAblation(state, true);
}
void BM_RewriteUncached(benchmark::State& state) {
  RunRewriteCacheAblation(state, false);
}
BENCHMARK(BM_RewriteCached);
BENCHMARK(BM_RewriteUncached);

}  // namespace
}  // namespace cqac

CQAC_BENCHMARK_MAIN()
