// E2 (Table 2): comparison classification micro-benchmark.
//
// Table 2 defines the SI / LSI / RSI / CQAC-SI vocabulary; the library's
// classifier drives algorithm dispatch (single-mapping fast path vs the
// general Theorem 2.1 test vs the Section 5 Datalog route), so its cost must
// be negligible. Measures Classify() / IsCqacSi() / SiFormOf() on random
// queries of growing comparison count.
#include <benchmark/benchmark.h>

#include "bench/bench_threads.h"

#include "src/base/rng.h"
#include "src/containment/si_reduction.h"
#include "src/gen/generators.h"

namespace cqac {
namespace {

Query Draw(int acs, gen::AcMode mode) {
  Rng rng(acs * 7 + static_cast<int>(mode));
  gen::QuerySpec spec;
  spec.num_subgoals = 4;
  spec.num_vars = 6;
  spec.ac_density = static_cast<double>(acs) / spec.num_subgoals;
  spec.ac_mode = mode;
  spec.boolean_head = true;
  return gen::RandomQuery(rng, spec);
}

void BM_Classify(benchmark::State& state) {
  Query q = Draw(static_cast<int>(state.range(0)), gen::AcMode::kSi);
  for (auto _ : state) {
    AcClass c = q.Classify();
    benchmark::DoNotOptimize(c);
  }
  state.counters["acs"] = static_cast<double>(q.comparisons().size());
}
BENCHMARK(BM_Classify)->Arg(2)->Arg(8)->Arg(32);

void BM_IsCqacSi(benchmark::State& state) {
  Query q = Draw(static_cast<int>(state.range(0)), gen::AcMode::kCqacSi);
  for (auto _ : state) {
    bool b = q.IsCqacSi();
    benchmark::DoNotOptimize(b);
  }
}
BENCHMARK(BM_IsCqacSi)->Arg(2)->Arg(8)->Arg(32);

void BM_SiFormExtraction(benchmark::State& state) {
  Query q = Draw(static_cast<int>(state.range(0)), gen::AcMode::kSi);
  for (auto _ : state) {
    for (const Comparison& c : q.comparisons()) {
      SiForm f = SiFormOf(c);
      benchmark::DoNotOptimize(f);
    }
  }
}
BENCHMARK(BM_SiFormExtraction)->Arg(2)->Arg(8)->Arg(32);

}  // namespace
}  // namespace cqac

CQAC_BENCHMARK_MAIN()
