// E1 (Table 1): containment-test cost by comparison class.
//
// Table 1 of the paper summarizes which query/view classes admit which
// complexity: containment is NP for CQ and LSI/RSI (single containment
// mapping, Theorems 2.2/2.3) but needs the Pi-2-p disjunction test for
// general ACs (Theorem 2.1). This bench regenerates that separation as
// running time on chain queries of growing length: the single-mapping
// classes stay flat-ish, the general class pays for disjunction refutation.
#include <benchmark/benchmark.h>

#include "bench/bench_threads.h"

#include "src/base/rng.h"
#include "src/base/strings.h"
#include "src/containment/containment.h"
#include "src/ir/parser.h"

namespace cqac {
namespace {

// A chain query e(C0,C1),...,e(Cn-1,Cn) with class-dependent comparisons.
Query Chain(int n, const std::string& cls) {
  std::vector<std::string> items;
  for (int i = 0; i < n; ++i)
    items.push_back(StrCat("e(C", i, ", C", i + 1, ")"));
  if (cls == "lsi") {
    items.push_back("C0 < 10");
    items.push_back(StrCat("C", n, " <= 8"));
  } else if (cls == "si") {
    items.push_back("C0 > 5");
    items.push_back(StrCat("C", n, " < 8"));
  } else if (cls == "general") {
    items.push_back(StrCat("C0 < C", n));
    items.push_back("C0 > 5");
    items.push_back(StrCat("C", n, " < 8"));
  }
  return MustParseQuery(StrCat("q() :- ", Join(items, ", ")));
}

void BM_ContainmentByClass(benchmark::State& state,
                           const std::string& cls) {
  const int n = static_cast<int>(state.range(0));
  Query small = Chain(2, cls);
  Query big = Chain(n, cls);
  size_t contained = 0;
  for (auto _ : state) {
    auto r = IsContained(big, small);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    contained += r.ValueOr(false) ? 1 : 0;
    benchmark::DoNotOptimize(contained);
  }
  state.counters["contained"] =
      static_cast<double>(contained) / state.iterations();
  state.counters["subgoals"] = n;
}

void RegisterAll() {
  for (const char* cls : {"cq", "lsi", "si", "general"}) {
    auto* b = benchmark::RegisterBenchmark(
        StrCat("BM_Containment/", cls).c_str(),
        [cls](benchmark::State& s) { BM_ContainmentByClass(s, cls); });
    for (int n : {2, 4, 6, 8, 10, 12}) b->Arg(n);
  }
}

int dummy = (RegisterAll(), 0);

}  // namespace
}  // namespace cqac

CQAC_BENCHMARK_MAIN()
