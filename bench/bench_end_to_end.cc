// E14: end-to-end certain-answer pipeline throughput.
//
// Full pipeline on a realistic integration workload: rewrite once, then
// per database instance materialize the views and evaluate the MCR,
// checking soundness (answers subset of the direct evaluation) as the
// database grows from 10^2 to 10^5 tuples.
#include <benchmark/benchmark.h>

#include "bench/bench_threads.h"

#include "src/base/rng.h"
#include "src/eval/evaluate.h"
#include "src/gen/generators.h"
#include "src/ir/parser.h"
#include "src/rewriting/rewrite_lsi.h"

namespace cqac {
namespace {

const char* kQuery =
    "q(C) :- car(C, D), loc(D, irvine), price(C, P), P < 30";
const char* kViews =
    "dealers_web(C, L) :- car(C, D), loc(D, L).\n"
    "budget_cars(C) :- price(C, P), P < 25.\n"
    "pricing_api(C, P) :- price(C, P).";

Database WorldOfSize(size_t tuples, uint64_t seed) {
  Rng rng(seed);
  Database db;
  const int64_t cars = static_cast<int64_t>(tuples);
  for (int64_t c = 0; c < cars; ++c) {
    int64_t dealer = rng.Uniform(0, cars / 4 + 1);
    Status st = db.Insert("car", {Value(Rational(c)),
                                  Value(Rational(dealer))});
    if (st.ok())
      st = db.Insert("price",
                     {Value(Rational(c)), Value(Rational(rng.Uniform(5, 60)))});
    if (!st.ok()) std::abort();
  }
  for (int64_t d = 0; d <= cars / 4 + 1; ++d) {
    Value place = rng.Chance(0.4) ? Value(std::string("irvine"))
                                  : Value(std::string("tustin"));
    Status st = db.Insert("loc", {Value(Rational(d)), place});
    if (!st.ok()) std::abort();
  }
  return db;
}

void BM_EndToEndCertainAnswers(benchmark::State& state) {
  Query q = MustParseQuery(kQuery);
  ViewSet views(MustParseRules(kViews));
  auto mcr = RewriteLsiQuery(q, views);
  if (!mcr.ok() || mcr.value().empty()) {
    state.SkipWithError("rewriting failed");
    return;
  }
  Database world = WorldOfSize(static_cast<size_t>(state.range(0)), 5);

  size_t answers = 0;
  EngineContext ctx;
  bench::AttachPool(ctx);
  for (auto _ : state) {
    // View materialization and union evaluation both fan out: one task per
    // view / disjunct, plus chunked joins inside each evaluation.
    Database vdb = MaterializeViews(ctx, views, world).value();
    auto ans = EvaluateUnion(ctx, mcr.value(), vdb);
    if (!ans.ok()) state.SkipWithError(ans.status().ToString().c_str());
    answers = ans.ValueOr(Relation{}).size();
    benchmark::DoNotOptimize(answers);
  }
  // Soundness check outside the timed region.
  Relation truth = EvaluateQuery(q, world).value();
  Database vdb = MaterializeViews(views, world).value();
  Relation certain = EvaluateUnion(mcr.value(), vdb).value();
  for (const Tuple& t : certain)
    if (!truth.count(t)) state.SkipWithError("unsound certain answer");

  state.counters["base_tuples"] = static_cast<double>(world.TotalTuples());
  state.counters["certain_answers"] = static_cast<double>(answers);
  state.counters["true_answers"] = static_cast<double>(truth.size());
  bench::RecordSpeedup(state, [&](EngineContext& c) {
    Database views_db = MaterializeViews(c, views, world).value();
    auto ans = EvaluateUnion(c, mcr.value(), views_db);
    benchmark::DoNotOptimize(ans);
  });
}
BENCHMARK(BM_EndToEndCertainAnswers)
    ->Arg(100)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);

void BM_RewriteOnly(benchmark::State& state) {
  Query q = MustParseQuery(kQuery);
  ViewSet views(MustParseRules(kViews));
  for (auto _ : state) {
    auto mcr = RewriteLsiQuery(q, views);
    if (!mcr.ok()) state.SkipWithError(mcr.status().ToString().c_str());
    benchmark::DoNotOptimize(mcr);
  }
}
BENCHMARK(BM_RewriteOnly);

// One EngineContext shared across all iterations: after the first rewrite
// warms the decision cache, every containment/implication decision is a
// memo hit. The hit-rate counters quantify the EngineContext cache's
// effectiveness on a repeated-workload session.
void BM_RewriteSharedContext(benchmark::State& state) {
  Query q = MustParseQuery(kQuery);
  ViewSet views(MustParseRules(kViews));
  EngineContext ctx;
  for (auto _ : state) {
    auto mcr = RewriteLsiQuery(ctx, q, views);
    if (!mcr.ok()) state.SkipWithError(mcr.status().ToString().c_str());
    benchmark::DoNotOptimize(mcr);
  }
  const EngineStats& s = ctx.stats();
  state.counters["containment_calls"] =
      static_cast<double>(s.containment_calls);
  state.counters["containment_cache_hits"] =
      static_cast<double>(s.containment_cache_hits);
  state.counters["implication_cache_hits"] =
      static_cast<double>(s.implication_cache_hits);
  state.counters["containment_hit_rate"] = s.ContainmentHitRate();
  state.counters["cache_bytes"] = static_cast<double>(ctx.cache_bytes());
}
BENCHMARK(BM_RewriteSharedContext);

}  // namespace
}  // namespace cqac

CQAC_BENCHMARK_MAIN_WITH_JSON("eval")
