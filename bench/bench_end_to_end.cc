// E14: end-to-end certain-answer pipeline throughput.
//
// Full pipeline on a realistic integration workload: rewrite once, then
// per database instance materialize the views and evaluate the MCR,
// checking soundness (answers subset of the direct evaluation) as the
// database grows from 10^2 to 10^5 tuples.
#include <benchmark/benchmark.h>

#include "bench/bench_threads.h"

#include "src/base/rng.h"
#include "src/base/strings.h"
#include "src/eval/evaluate.h"
#include "src/gen/generators.h"
#include "src/ir/parser.h"
#include "src/plan/planner.h"
#include "src/rewriting/answer.h"
#include "src/rewriting/rewrite_lsi.h"

namespace cqac {
namespace {

const char* kQuery =
    "q(C) :- car(C, D), loc(D, irvine), price(C, P), P < 30";
const char* kViews =
    "dealers_web(C, L) :- car(C, D), loc(D, L).\n"
    "budget_cars(C) :- price(C, P), P < 25.\n"
    "pricing_api(C, P) :- price(C, P).";

Database WorldOfSize(size_t tuples, uint64_t seed) {
  Rng rng(seed);
  Database db;
  const int64_t cars = static_cast<int64_t>(tuples);
  for (int64_t c = 0; c < cars; ++c) {
    int64_t dealer = rng.Uniform(0, cars / 4 + 1);
    Status st = db.Insert("car", {Value(Rational(c)),
                                  Value(Rational(dealer))});
    if (st.ok())
      st = db.Insert("price",
                     {Value(Rational(c)), Value(Rational(rng.Uniform(5, 60)))});
    if (!st.ok()) std::abort();
  }
  for (int64_t d = 0; d <= cars / 4 + 1; ++d) {
    Value place = rng.Chance(0.4) ? Value(std::string("irvine"))
                                  : Value(std::string("tustin"));
    Status st = db.Insert("loc", {Value(Rational(d)), place});
    if (!st.ok()) std::abort();
  }
  return db;
}

void BM_EndToEndCertainAnswers(benchmark::State& state) {
  Query q = MustParseQuery(kQuery);
  ViewSet views(MustParseRules(kViews));
  auto mcr = RewriteLsiQuery(q, views);
  if (!mcr.ok() || mcr.value().empty()) {
    state.SkipWithError("rewriting failed");
    return;
  }
  Database world = WorldOfSize(static_cast<size_t>(state.range(0)), 5);

  size_t answers = 0;
  EngineContext ctx;
  bench::AttachPool(ctx);
  for (auto _ : state) {
    // View materialization and union evaluation both fan out: one task per
    // view / disjunct, plus chunked joins inside each evaluation.
    Database vdb = MaterializeViews(ctx, views, world).value();
    auto ans = EvaluateUnion(ctx, mcr.value(), vdb);
    if (!ans.ok()) state.SkipWithError(ans.status().ToString().c_str());
    answers = ans.ValueOr(Relation{}).size();
    benchmark::DoNotOptimize(answers);
  }
  // Soundness check outside the timed region.
  Relation truth = EvaluateQuery(q, world).value();
  Database vdb = MaterializeViews(views, world).value();
  Relation certain = EvaluateUnion(mcr.value(), vdb).value();
  for (const Tuple& t : certain)
    if (!truth.count(t)) state.SkipWithError("unsound certain answer");

  state.counters["base_tuples"] = static_cast<double>(world.TotalTuples());
  state.counters["certain_answers"] = static_cast<double>(answers);
  state.counters["true_answers"] = static_cast<double>(truth.size());
  bench::RecordSpeedup(state, [&](EngineContext& c) {
    Database views_db = MaterializeViews(c, views, world).value();
    auto ans = EvaluateUnion(c, mcr.value(), views_db);
    benchmark::DoNotOptimize(ans);
  });
}
BENCHMARK(BM_EndToEndCertainAnswers)
    ->Arg(100)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);

void BM_RewriteOnly(benchmark::State& state) {
  Query q = MustParseQuery(kQuery);
  ViewSet views(MustParseRules(kViews));
  for (auto _ : state) {
    auto mcr = RewriteLsiQuery(q, views);
    if (!mcr.ok()) state.SkipWithError(mcr.status().ToString().c_str());
    benchmark::DoNotOptimize(mcr);
  }
}
BENCHMARK(BM_RewriteOnly);

// One EngineContext shared across all iterations: after the first rewrite
// warms the decision cache, every containment/implication decision is a
// memo hit. The hit-rate counters quantify the EngineContext cache's
// effectiveness on a repeated-workload session.
void BM_RewriteSharedContext(benchmark::State& state) {
  Query q = MustParseQuery(kQuery);
  ViewSet views(MustParseRules(kViews));
  EngineContext ctx;
  for (auto _ : state) {
    auto mcr = RewriteLsiQuery(ctx, q, views);
    if (!mcr.ok()) state.SkipWithError(mcr.status().ToString().c_str());
    benchmark::DoNotOptimize(mcr);
  }
  const EngineStats& s = ctx.stats();
  state.counters["containment_calls"] =
      static_cast<double>(s.containment_calls);
  state.counters["containment_cache_hits"] =
      static_cast<double>(s.containment_cache_hits);
  state.counters["implication_cache_hits"] =
      static_cast<double>(s.implication_cache_hits);
  state.counters["containment_hit_rate"] = s.ContainmentHitRate();
  state.counters["cache_bytes"] = static_cast<double>(ctx.cache_bytes());
}
BENCHMARK(BM_RewriteSharedContext);

// E16: the planner's join-order choice against the written order.
//
// The body is written worst-first: a grows with the size arg and fans out
// 10x through b before the single-tuple sel filters everything down, so the
// syntactic order drags a 10x-inflated intermediate through the whole join.
// The greedy planner starts from sel instead. arg1 pins the order
// (0 = planned, 1 = syntactic); the planned/syntactic time ratio at each
// size is the measured win (EXPERIMENTS.md E16).
void BM_JoinOrderPlanned(benchmark::State& state) {
  const int64_t n = state.range(0);
  Query q = MustParseQuery("q(W) :- a(X, Y), b(Y, Z), sel(Z, W).");
  Database db;
  for (int64_t i = 0; i < n; ++i) {
    Status st = db.Insert("a", {Value(Rational(i)), Value(Rational(i % 10))});
    if (!st.ok()) std::abort();
  }
  for (int64_t y = 0; y < 10; ++y)
    for (int64_t z = 0; z < 10; ++z) {
      Status st = db.Insert("b", {Value(Rational(y)), Value(Rational(z))});
      if (!st.ok()) std::abort();
    }
  if (!db.Insert("sel", {Value(Rational(0)), Value(Rational(0))}).ok())
    std::abort();

  EvalOptions options;
  options.join_order = state.range(1) == 0 ? EvalOptions::JoinOrder::kPlanned
                                           : EvalOptions::JoinOrder::kSyntactic;
  EngineContext ctx;
  bench::AttachPool(ctx);
  size_t answers = 0;
  for (auto _ : state) {
    auto r = EvaluateQuery(ctx, q, db, options);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    answers = r.ValueOr(Relation{}).size();
    benchmark::DoNotOptimize(answers);
  }
  auto rows = [&db](const std::string& p) { return db.Get(p).size(); };
  auto distinct = [&db](const std::string& p, size_t c) {
    return db.stats().DistinctEstimate(p, c);
  };
  plan::JoinOrderPlan jp =
      plan::PlanJoinOrder(q, plan::Cardinalities{rows, distinct});
  state.counters["answers"] = static_cast<double>(answers);
  state.counters["planner_reordered"] = jp.reordered ? 1 : 0;
  bench::RecordParallelCounters(state, ctx);
}
BENCHMARK(BM_JoinOrderPlanned)
    ->Args({1000, 0})
    ->Args({1000, 1})
    ->Args({20000, 0})
    ->Args({20000, 1})
    ->Unit(benchmark::kMicrosecond);

// E17: the union-eval strategy flip by instance size.
//
// A 6-disjunct union over one view relation where every disjunct after the
// first is contained in it. The containment checks cost a fixed ~n^2/2
// probes while the redundant evaluation cost grows with the instance, so
// the planner answers directly on small instances and flips to
// containment-pruning past the break-even. arg1 pins the strategy
// (0 = auto, 1 = force-direct, 2 = force-prune); the auto row matches the
// direct row at the small size and the prune row at the large one
// (EXPERIMENTS.md E17).
void BM_UnionPruneBySize(benchmark::State& state) {
  const int64_t n = state.range(0);
  UnionQuery u;
  u.disjuncts.push_back(MustParseQuery("q(X, Y) :- v(X, Y), X <= 1000000."));
  for (int64_t i = 1; i < 6; ++i)
    u.disjuncts.push_back(MustParseQuery(
        StrCat("q(X, Y) :- v(X, Y), X <= ", 1000000 - i * 7, ".")));
  ViewPlan plan;
  plan.kind = PlanKind::kFiniteUnion;
  plan.union_plan = std::move(u);

  Rng rng(11);
  Database instance;
  for (int64_t i = 0; i < n; ++i) {
    Status st = instance.Insert(
        "v", {Value(Rational(rng.Uniform(0, 100000))), Value(Rational(i))});
    if (!st.ok()) std::abort();
  }

  AnswerOptions options;
  options.union_eval = state.range(1) == 0   ? plan::UnionEvalPin::kAuto
                       : state.range(1) == 1 ? plan::UnionEvalPin::kForceDirect
                                             : plan::UnionEvalPin::kForcePrune;
  EngineContext ctx;
  bench::AttachPool(ctx);
  size_t answers = 0;
  bool pruned = false;
  for (auto _ : state) {
    plan::Plan record;
    auto r = plan.Answer(ctx, instance, options, &record);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    answers = r.ValueOr(Relation{}).size();
    pruned = !record.decisions.empty() &&
             record.decisions.back().choice == "prune";
    benchmark::DoNotOptimize(answers);
  }
  state.counters["answers"] = static_cast<double>(answers);
  state.counters["strategy_prune"] = pruned ? 1 : 0;
  bench::RecordParallelCounters(state, ctx);
}
BENCHMARK(BM_UnionPruneBySize)
    ->Args({200, 0})
    ->Args({200, 1})
    ->Args({200, 2})
    ->Args({20000, 0})
    ->Args({20000, 1})
    ->Args({20000, 2})
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace cqac

CQAC_BENCHMARK_MAIN_WITH_JSON("eval")
