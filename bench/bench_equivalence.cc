// E5 (Section 2 / Figure 1): equivalence of CQACs whose comparisons differ.
//
// Section 2's decomposition example shows two CQACs with identical ordinary
// subgoals but different ACs that are nonetheless equivalent (the
// equalities implied by one side collapse it into the other). The bench
// measures two-way containment on such pairs as the collapsed chain grows.
#include <benchmark/benchmark.h>

#include "bench/bench_threads.h"

#include "src/base/strings.h"
#include "src/containment/containment.h"
#include "src/ir/parser.h"

namespace cqac {
namespace {

// a: chain r(X0,X1),...  with X0 <= X1 <= ... <= Xn <= X0  (all equal)
// b: the collapsed loop r(X,X),... with the same final filter.
void Pair(int n, Query* a, Query* b) {
  std::vector<std::string> items;
  for (int i = 0; i < n; ++i)
    items.push_back(StrCat("r(X", i, ", X", i + 1, ")"));
  for (int i = 0; i < n; ++i)
    items.push_back(StrCat("X", i, " <= X", i + 1));
  items.push_back(StrCat("X", n, " <= X0"));
  items.push_back("X0 < 5");
  *a = MustParseQuery(StrCat("q(X0) :- ", Join(items, ", ")));
  *b = MustParseQuery("q(X) :- r(X, X), X < 5");
}

void BM_EquivalenceWithCollapse(benchmark::State& state) {
  Query a, b;
  Pair(static_cast<int>(state.range(0)), &a, &b);
  bool equivalent = false;
  for (auto _ : state) {
    auto r = IsEquivalent(a, b);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    equivalent = r.ValueOr(false);
    benchmark::DoNotOptimize(equivalent);
  }
  state.counters["equivalent"] = equivalent ? 1 : 0;  // must be 1
}
BENCHMARK(BM_EquivalenceWithCollapse)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

void BM_EquivalenceNegative(benchmark::State& state) {
  // Almost-equal pair: the strict edge breaks the collapse.
  Query a = MustParseQuery(
      "q(X0) :- r(X0, X1), X0 <= X1, X1 < X0, X0 < 5");  // inconsistent
  Query b = MustParseQuery("q(X) :- r(X, X), X < 5");
  for (auto _ : state) {
    auto r = IsEquivalent(a, b);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_EquivalenceNegative);

}  // namespace
}  // namespace cqac

CQAC_BENCHMARK_MAIN()
