// E13 (Theorems 3.1/3.2): equivalent-rewriting search, and the
// all-distinguished MCR case.
//
// Theorem 3.2 makes MCR existence decidable (exponential time) when every
// view variable is distinguished; ER search is decidable in general
// (Theorem 3.1). The bench sweeps the number of all-distinguished views and
// measures FindEquivalentRewriting; `found` reports whether an ER exists in
// the searched space (the partitioned-views family is built so an ER always
// exists as a union).
#include <benchmark/benchmark.h>

#include "bench/bench_threads.h"

#include "src/base/strings.h"
#include "src/ir/parser.h"
#include "src/rewriting/er_search.h"

namespace cqac {
namespace {

// n views partitioning r by thresholds; all variables distinguished.
ViewSet PartitionViews(int n) {
  ViewSet out;
  for (int i = 0; i < n; ++i) {
    std::string def;
    if (i == 0)
      def = StrCat("v0(X) :- r(X), X < 10");
    else if (i == n - 1)
      def = StrCat("v", i, "(X) :- r(X), ", 10 * i, " <= X");
    else
      def = StrCat("v", i, "(X) :- r(X), ", 10 * i, " <= X, X < ",
                   10 * (i + 1));
    Status st = out.Add(MustParseQuery(def));
    if (!st.ok()) std::abort();
  }
  return out;
}

void BM_ErSearchPartition(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Query q = MustParseQuery("q(X) :- r(X)");
  ViewSet views = PartitionViews(n);
  bool found = false;
  for (auto _ : state) {
    // Fresh context per call, as in the serial baseline; the pool fans the
    // per-CR back-containment checks out across workers.
    EngineContext ctx;
    bench::AttachPool(ctx);
    auto er = FindEquivalentRewriting(ctx, q, views);
    if (!er.ok()) state.SkipWithError(er.status().ToString().c_str());
    found = er.ValueOr(ErResult{}).found();
  }
  state.counters["views"] = n;
  state.counters["found"] = found ? 1 : 0;  // must be 1
  bench::RecordSpeedup(state, [&](EngineContext& ctx) {
    auto er = FindEquivalentRewriting(ctx, q, views);
    benchmark::DoNotOptimize(er);
  });
}
BENCHMARK(BM_ErSearchPartition)->Arg(2)->Arg(3)->Arg(4)->Arg(6)->Arg(8);

void BM_ErSearchNegative(benchmark::State& state) {
  // Views that lose a range: no ER; the search must terminate with "no".
  const int n = static_cast<int>(state.range(0));
  Query q = MustParseQuery("q(X) :- r(X)");
  ViewSet views = PartitionViews(n);
  ViewSet lossy;
  for (size_t i = 0; i + 1 < views.size(); ++i) {
    Status st = lossy.Add(views[i]);
    if (!st.ok()) std::abort();
  }
  bool found = true;
  for (auto _ : state) {
    EngineContext ctx;
    bench::AttachPool(ctx);
    auto er = FindEquivalentRewriting(ctx, q, lossy);
    if (!er.ok()) state.SkipWithError(er.status().ToString().c_str());
    found = er.ValueOr(ErResult{}).found();
  }
  state.counters["found"] = found ? 1 : 0;  // must be 0
  bench::RecordSpeedup(state, [&](EngineContext& ctx) {
    auto er = FindEquivalentRewriting(ctx, q, lossy);
    benchmark::DoNotOptimize(er);
  });
}
BENCHMARK(BM_ErSearchNegative)->Arg(3)->Arg(4)->Arg(6);

}  // namespace
}  // namespace cqac

CQAC_BENCHMARK_MAIN()
