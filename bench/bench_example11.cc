// E3 (Example 1.1): rewriting with exportable variables, scaled.
//
// Example 1.1's point: v1 yields a contained rewriting only because its
// hidden variable X is exportable (Y <= X <= Z), while v2 (Y <= X < Z) is
// unusable. The bench scales the example by replicating the r/s pattern and
// the view pair, measuring RewriteLsiQuery and reporting how many
// rewritings each side contributes (v2's contribution must stay 0).
#include <benchmark/benchmark.h>

#include "bench/bench_threads.h"

#include "src/base/strings.h"
#include "src/gen/paper_workloads.h"
#include "src/ir/parser.h"
#include "src/rewriting/rewrite_lsi.h"

namespace cqac {
namespace {

// m copies of the Example 1.1 pattern over disjoint predicates.
void Scaled(int m, Query* q, ViewSet* views) {
  std::vector<std::string> items;
  for (int i = 0; i < m; ++i) items.push_back(StrCat("r", i, "(A", i, ")"));
  for (int i = 0; i < m; ++i) items.push_back(StrCat("A", i, " < 4"));
  *q = MustParseQuery(StrCat("q(A0) :- ", Join(items, ", ")));
  *views = ViewSet();
  for (int i = 0; i < m; ++i) {
    Status st = views->Add(MustParseQuery(
        StrCat("v1_", i, "(Y, Z) :- r", i, "(X), s", i,
               "(Y, Z), Y <= X, X <= Z")));
    if (st.ok())
      st = views->Add(MustParseQuery(
          StrCat("v2_", i, "(Y, Z) :- r", i, "(X), s", i,
                 "(Y, Z), Y <= X, X < Z")));
    if (!st.ok()) std::abort();
    // A plain identity view keeps the query answerable.
    st = views->Add(MustParseQuery(StrCat("w", i, "(X) :- r", i, "(X)")));
    if (!st.ok()) std::abort();
  }
}

void BM_Example11Scaled(benchmark::State& state) {
  Query q;
  ViewSet views;
  Scaled(static_cast<int>(state.range(0)), &q, &views);
  RewriteStats stats;
  size_t rewritings = 0;
  for (auto _ : state) {
    auto mcr = RewriteLsiQuery(q, views, RewriteOptions{}, &stats);
    if (!mcr.ok()) state.SkipWithError(mcr.status().ToString().c_str());
    rewritings = mcr.ValueOr(UnionQuery{}).disjuncts.size();
    benchmark::DoNotOptimize(rewritings);
  }
  state.counters["rewritings"] = static_cast<double>(rewritings);
  state.counters["mcds"] = static_cast<double>(stats.mcds);
}
BENCHMARK(BM_Example11Scaled)->Arg(1)->Arg(2)->Arg(3)->Arg(4);

void BM_Example11Exact(benchmark::State& state) {
  Query q = workloads::Example11Query();
  ViewSet views = workloads::Example11Views();
  for (auto _ : state) {
    auto mcr = RewriteLsiQuery(q, views);
    if (!mcr.ok() || mcr.value().disjuncts.size() != 1)
      state.SkipWithError("expected exactly the paper's rewriting");
    benchmark::DoNotOptimize(mcr);
  }
}
BENCHMARK(BM_Example11Exact);

}  // namespace
}  // namespace cqac

CQAC_BENCHMARK_MAIN()
