// E9 (Example 4.1 / Figure 3): exportable-variable analysis cost.
//
// Section 4.6 claims lex/geq-set computation is cheap (path analysis on the
// view's inequality graph) while least-restrictive head-homomorphism
// enumeration can degenerate. The bench sweeps the number of view variables
// on sandwich-shaped graphs (the worst case for choice multiplicity:
// many distinguished variables above and below one hidden variable).
#include <benchmark/benchmark.h>

#include "bench/bench_threads.h"

#include "src/base/strings.h"
#include "src/ir/parser.h"
#include "src/rewriting/export_analysis.h"

namespace cqac {
namespace {

// v(L1..Lm, U1..Um) :- r(X), s(L1..Um), Li <= X, X <= Ui: X is exportable
// m*m ways.
Query SandwichView(int m) {
  std::vector<std::string> head;
  std::vector<std::string> items;
  std::vector<std::string> svars;
  for (int i = 0; i < m; ++i) {
    head.push_back(StrCat("L", i));
    svars.push_back(StrCat("L", i));
  }
  for (int i = 0; i < m; ++i) {
    head.push_back(StrCat("U", i));
    svars.push_back(StrCat("U", i));
  }
  items.push_back("r(X)");
  items.push_back(StrCat("s(", Join(svars, ", "), ")"));
  for (int i = 0; i < m; ++i) items.push_back(StrCat("L", i, " <= X"));
  for (int i = 0; i < m; ++i) items.push_back(StrCat("X <= U", i));
  return MustParseQuery(
      StrCat("v(", Join(head, ", "), ") :- ", Join(items, ", ")));
}

void BM_LexGeqSets(benchmark::State& state) {
  Query v = SandwichView(static_cast<int>(state.range(0)));
  ExportAnalysis analysis(v);
  int x = v.FindVariable("X");
  for (auto _ : state) {
    auto leq = analysis.LeqSet(x);
    auto geq = analysis.GeqSet(x);
    benchmark::DoNotOptimize(leq);
    benchmark::DoNotOptimize(geq);
  }
  state.counters["vars"] = static_cast<double>(v.num_vars());
}
BENCHMARK(BM_LexGeqSets)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void BM_ExportHomomorphisms(benchmark::State& state) {
  Query v = SandwichView(static_cast<int>(state.range(0)));
  ExportAnalysis analysis(v);
  int x = v.FindVariable("X");
  size_t choices = 0;
  for (auto _ : state) {
    auto homs = analysis.ExportHomomorphisms(x);
    choices = homs.size();
    benchmark::DoNotOptimize(homs);
  }
  // Quadratic in the sandwich width, as Section 4.6 predicts.
  state.counters["choices"] = static_cast<double>(choices);
}
BENCHMARK(BM_ExportHomomorphisms)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

void BM_Example41Analysis(benchmark::State& state) {
  Query v = MustParseQuery(
      "v(X1, X3, X4, X5, X7, X8) :- r(X2, X6), s(X1, X3, X4, X5, X7, X8), "
      "X1 <= X2, X2 <= X3, X4 <= X5, X5 <= X6, X6 <= X7, X8 <= X6");
  for (auto _ : state) {
    ExportAnalysis analysis(v);
    bool e2 = analysis.IsExportable(v.FindVariable("X2"));
    bool e6 = analysis.IsExportable(v.FindVariable("X6"));
    if (!e2 || !e6) state.SkipWithError("Figure 3 analysis regressed");
    benchmark::DoNotOptimize(analysis);
  }
}
BENCHMARK(BM_Example41Analysis);

}  // namespace
}  // namespace cqac

CQAC_BENCHMARK_MAIN()
