// E16: incremental view maintenance (src/ivm) vs full rebuild.
//
// The headline claim: a single-fact insert against a large materialized join
// view set must be at least an order of magnitude cheaper than rebuilding
// the materialization — the counting maintainer's pivot joins touch O(delta)
// base tuples, the rebuild touches all of them. The `speedup` counter
// records the measured ratio directly.
//
// Also measured: the batch-size sweep that locates the incremental/rebuild
// crossover (and records which path the default heuristic picks at each
// size), and the DRed maintainer on a recursive transitive-closure program
// under an edge insert/retract stream.
//
// Run at --threads 0 / 4 / 8: Apply fans delta chunks out over the
// context's pool, and the maintained state is byte-identical at every
// thread count (tests/ivm_equivalence_test.cc proves that; this file
// measures it). Results also land in BENCH_ivm.json.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <map>
#include <string>

#include "bench/bench_threads.h"
#include "src/analysis/audit/audit.h"
#include "src/base/rng.h"
#include "src/base/strings.h"
#include "src/eval/database.h"
#include "src/gen/generators.h"
#include "src/ir/parser.h"
#include "src/ivm/maintain.h"

namespace cqac {
namespace {

// Two join views plus a comparison-guarded one: enough shape that a rebuild
// pays real join cost, while a one-tuple delta pivots through tiny joins.
const char* kViewRules[] = {
    "v_join(X, Y) :- r(X, Z), s(Z, Y).",
    "v_band(X, Y) :- r(X, Y), X <= Y.",
    "v_tri(X, Y) :- r(X, Z), s(Z, W), t(W, Y).",
};

const std::map<std::string, int> kSchema = {{"r", 2}, {"s", 2}, {"t", 2}};

// A store materialized over a random base of `tuples` rows per relation.
// Values are drawn from a range proportional to the relation size, keeping
// join selectivity (and thus view size) roughly scale-free.
ivm::MaterializedViewSet MakeStore(EngineContext& ctx, size_t tuples) {
  Rng rng(20260806);
  gen::DatabaseSpec spec;
  spec.tuples_per_relation = tuples;
  spec.value_min = 0;
  spec.value_max = static_cast<int64_t>(tuples);
  Database base = gen::RandomDatabase(rng, kSchema, spec);
  ivm::MaterializedViewSet store;
  for (const char* rule : kViewRules) {
    Status st = store.AddView(ctx, MustParseQuery(rule));
    if (!st.ok()) std::abort();
  }
  if (!store.ApplyInsert(ctx, base).ok()) std::abort();
  return store;
}

Database OneFact(const char* pred, int64_t a, int64_t b) {
  Database db;
  db.Insert(pred, {Value(a), Value(b)});
  return db;
}

// One throwaway incremental round so the timed loop measures steady state:
// the first incremental apply after a (re)build pays the one-time
// persistent-index construction, which is part of materialization cost, not
// per-fact maintenance cost.
void WarmIncremental(EngineContext& ctx, ivm::MaterializedViewSet& store) {
  ivm::MaintainOptions incremental;
  incremental.force_incremental = true;
  Database fact = OneFact("r", -1, -1);
  if (!store.ApplyInsert(ctx, fact, incremental).ok()) std::abort();
  if (!store.ApplyRetract(ctx, fact, incremental).ok()) std::abort();
}

// ---- single-fact insert: incremental vs rebuild ---------------------------

void BM_IvmSingleInsertVsRebuild(benchmark::State& state) {
  const size_t kTuples = static_cast<size_t>(state.range(0));
  EngineContext ctx;
  bench::AttachPool(ctx);
  ivm::MaterializedViewSet store = MakeStore(ctx, kTuples);
  WarmIncremental(ctx, store);

  ivm::MaintainOptions incremental;
  incremental.force_incremental = true;
  ivm::MaintainOptions rebuild;
  rebuild.force_rebuild = true;

  double inc_total = 0, reb_total = 0;
  int64_t rounds = 0;
  // In-range values so the inserted fact genuinely joins; distinct per round
  // so every apply is a real state change.
  int64_t v = 1;
  for (auto _ : state) {
    Database fact = OneFact("r", v, (v + 7) % static_cast<int64_t>(kTuples));
    inc_total += bench::TimeOnceMs([&] {
      if (!store.ApplyInsert(ctx, fact, incremental).ok()) std::abort();
    });
    // Undo outside the timed regions to keep every round's base the same
    // size (retract cost is symmetric and measured separately below).
    if (!store.ApplyRetract(ctx, fact, incremental).ok()) std::abort();
    reb_total += bench::TimeOnceMs([&] {
      if (!store.ApplyInsert(ctx, fact, rebuild).ok()) std::abort();
    });
    if (!store.ApplyRetract(ctx, fact, incremental).ok()) std::abort();
    v += 13;
    ++rounds;
  }
  state.counters["incremental_ms"] = inc_total / static_cast<double>(rounds);
  state.counters["rebuild_ms"] = reb_total / static_cast<double>(rounds);
  state.counters["speedup"] = inc_total > 0 ? reb_total / inc_total : 0;
  state.counters["base_tuples"] = static_cast<double>(store.base().TotalTuples());
  state.counters["view_tuples"] =
      static_cast<double>(store.views().TotalTuples());
  bench::RecordParallelCounters(state, ctx);
}
BENCHMARK(BM_IvmSingleInsertVsRebuild)
    ->Arg(500)
    ->Arg(2000)
    ->Arg(8000)
    ->Unit(benchmark::kMillisecond);

// ---- single-fact retract ---------------------------------------------------

void BM_IvmSingleRetract(benchmark::State& state) {
  const size_t kTuples = static_cast<size_t>(state.range(0));
  EngineContext ctx;
  bench::AttachPool(ctx);
  ivm::MaterializedViewSet store = MakeStore(ctx, kTuples);
  WarmIncremental(ctx, store);
  ivm::MaintainOptions incremental;
  incremental.force_incremental = true;
  int64_t v = 3;
  for (auto _ : state) {
    state.PauseTiming();
    Database fact = OneFact("s", v, (v + 5) % static_cast<int64_t>(kTuples));
    if (!store.ApplyInsert(ctx, fact, incremental).ok()) std::abort();
    state.ResumeTiming();
    if (!store.ApplyRetract(ctx, fact, incremental).ok()) std::abort();
    v += 11;
  }
  state.counters["base_tuples"] = static_cast<double>(store.base().TotalTuples());
  bench::RecordParallelCounters(state, ctx);
}
BENCHMARK(BM_IvmSingleRetract)->Arg(2000)->Unit(benchmark::kMillisecond);

// ---- batch-size sweep: where is the crossover? ----------------------------

void BM_IvmBatchSweep(benchmark::State& state) {
  const size_t kTuples = 4000;
  const size_t kDelta = static_cast<size_t>(state.range(0));
  EngineContext ctx;
  bench::AttachPool(ctx);
  ivm::MaterializedViewSet store = MakeStore(ctx, kTuples);
  WarmIncremental(ctx, store);

  ivm::MaintainOptions incremental;
  incremental.force_incremental = true;
  ivm::MaintainOptions rebuild;
  rebuild.force_rebuild = true;

  double inc_total = 0, reb_total = 0;
  int64_t rounds = 0;
  bool heuristic_incremental = false;
  int64_t v = 1;
  for (auto _ : state) {
    Database batch;
    for (size_t i = 0; i < kDelta; ++i) {
      batch.Insert("r", {Value(v), Value((v + 3) % static_cast<int64_t>(
                                       kTuples))});
      v += 2;
    }
    inc_total += bench::TimeOnceMs([&] {
      if (!store.ApplyInsert(ctx, batch, incremental).ok()) std::abort();
    });
    if (!store.ApplyRetract(ctx, batch, incremental).ok()) std::abort();
    reb_total += bench::TimeOnceMs([&] {
      if (!store.ApplyInsert(ctx, batch, rebuild).ok()) std::abort();
    });
    // Let the default heuristic pick a path for the retract and record its
    // choice: small deltas must stay incremental, huge ones may rebuild.
    if (!store.ApplyRetract(ctx, batch).ok()) std::abort();
    heuristic_incremental = store.maintained();
    ++rounds;
  }
  state.counters["incremental_ms"] = inc_total / static_cast<double>(rounds);
  state.counters["rebuild_ms"] = reb_total / static_cast<double>(rounds);
  state.counters["speedup"] = inc_total > 0 ? reb_total / inc_total : 0;
  state.counters["delta_tuples"] = static_cast<double>(kDelta);
  state.counters["heuristic_incremental"] = heuristic_incremental ? 1 : 0;
  bench::RecordParallelCounters(state, ctx);
}
BENCHMARK(BM_IvmBatchSweep)
    ->Arg(1)
    ->Arg(16)
    ->Arg(256)
    ->Arg(2048)
    ->Unit(benchmark::kMillisecond);

// ---- certified apply: maintenance plus the independent audit replay -------

// The price of certainty: each insert emits a MaintenanceCertificate
// (O(state) snapshotting inside Apply) and the auditor replays it against a
// from-scratch reference evaluation. `audit_overhead` is the ratio of audit
// time to apply time; the audit_* counters land in BENCH_ivm.json so CI can
// watch the certification cost alongside the maintenance cost.
void BM_IvmCertifiedApply(benchmark::State& state) {
  const size_t kTuples = static_cast<size_t>(state.range(0));
  EngineContext ctx;
  bench::AttachPool(ctx);
  ivm::MaterializedViewSet store = MakeStore(ctx, kTuples);
  WarmIncremental(ctx, store);
  ivm::MaintainOptions incremental;
  incremental.force_incremental = true;

  double apply_total = 0, audit_total = 0;
  int64_t rounds = 0;
  int64_t v = 5;
  for (auto _ : state) {
    Database fact = OneFact("r", v, (v + 9) % static_cast<int64_t>(kTuples));
    ivm::MaintenanceCertificate cert;
    apply_total += bench::TimeOnceMs([&] {
      if (!store.ApplyInsert(ctx, fact, incremental, &cert).ok())
        std::abort();
    });
    audit_total += bench::TimeOnceMs([&] {
      Status st = audit::CheckMaintenance(ctx, store.view_queries(), cert,
                                          store.base(), store.views());
      if (!st.ok()) std::abort();
    });
    if (!store.ApplyRetract(ctx, fact, incremental).ok()) std::abort();
    v += 17;
    ++rounds;
  }
  state.counters["apply_ms"] = apply_total / static_cast<double>(rounds);
  state.counters["audit_ms"] = audit_total / static_cast<double>(rounds);
  state.counters["audit_overhead"] =
      apply_total > 0 ? audit_total / apply_total : 0;
  state.counters["audit_replayed_tuples"] =
      static_cast<double>(uint64_t{ctx.stats().audit_replayed_tuples});
  state.counters["audit_failures"] =
      static_cast<double>(uint64_t{ctx.stats().audit_failures});
  bench::RecordParallelCounters(state, ctx);
}
BENCHMARK(BM_IvmCertifiedApply)
    ->Arg(500)
    ->Arg(2000)
    ->Unit(benchmark::kMillisecond);

// ---- DRed: recursive transitive closure under an edge stream --------------

void BM_IvmDredEdgeStream(benchmark::State& state) {
  const int64_t kNodes = state.range(0);
  Program program("tc", MustParseRules(
                            "tc(X, Y) :- e(X, Y).\n"
                            "tc(X, Z) :- e(X, Y), tc(Y, Z)."));
  // A chain with some shortcuts: deep recursion, nontrivial re-derivation
  // when a chain edge goes away.
  Database edb;
  for (int64_t i = 0; i + 1 < kNodes; ++i)
    edb.Insert("e", {Value(i), Value(i + 1)});
  for (int64_t i = 0; i + 10 < kNodes; i += 10)
    edb.Insert("e", {Value(i), Value(i + 10)});

  EngineContext ctx;
  bench::AttachPool(ctx);
  ivm::MaintainedProgram prog{datalog::Engine(program)};
  if (!prog.Initialize(ctx, edb).ok()) {
    state.SkipWithError("initialize failed");
    return;
  }

  ivm::MaintainOptions incremental;
  incremental.force_incremental = true;
  double insert_total = 0, retract_total = 0, rebuild_total = 0;
  int64_t rounds = 0;
  for (auto _ : state) {
    // A shortcut edge near the middle: inserting derives O(n) new pairs,
    // retracting over-deletes and rescues them back.
    Tuple edge = {Value(kNodes / 3), Value(kNodes / 3 + 5)};
    ivm::DeltaDatabase plus(&prog.edb());
    if (!plus.StageInsert("e", edge).ok()) std::abort();
    insert_total += bench::TimeOnceMs([&] {
      if (!prog.Apply(ctx, plus, incremental).ok()) std::abort();
    });
    ivm::DeltaDatabase minus(&prog.edb());
    if (!minus.StageRetract("e", edge).ok()) std::abort();
    retract_total += bench::TimeOnceMs([&] {
      if (!prog.Apply(ctx, minus, incremental).ok()) std::abort();
    });
    // Baseline: rerunning the program from scratch on the same EDB.
    rebuild_total += bench::TimeOnceMs([&] {
      ivm::MaintainedProgram fresh{datalog::Engine(program)};
      if (!fresh.Initialize(ctx, prog.edb()).ok()) std::abort();
    });
    ++rounds;
  }
  state.counters["insert_ms"] = insert_total / static_cast<double>(rounds);
  state.counters["retract_ms"] = retract_total / static_cast<double>(rounds);
  state.counters["rebuild_ms"] = rebuild_total / static_cast<double>(rounds);
  state.counters["speedup_insert"] =
      insert_total > 0 ? rebuild_total / insert_total : 0;
  state.counters["idb_tuples"] = static_cast<double>(prog.idb().TotalTuples());
  state.counters["overdeletions"] =
      static_cast<double>(uint64_t{ctx.stats().ivm_overdeletions});
  state.counters["rederivations"] =
      static_cast<double>(uint64_t{ctx.stats().ivm_rederivations});
  bench::RecordParallelCounters(state, ctx);
}
BENCHMARK(BM_IvmDredEdgeStream)
    ->Arg(100)
    ->Arg(300)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace cqac

CQAC_BENCHMARK_MAIN_WITH_JSON("ivm")
