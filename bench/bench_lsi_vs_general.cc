// E6 (Theorem 2.3 vs Theorem 2.1): the single-mapping fast path.
//
// Theorem 2.3 licenses deciding containment in an LSI query with ONE
// containment mapping instead of the disjunction over all mappings. The
// bench runs both procedures on identical LSI pairs (their answers are
// asserted to agree) and reports the time each needs — the "who wins" shape
// is fast path <= general, with the gap widening as mappings multiply.
#include <benchmark/benchmark.h>

#include "bench/bench_threads.h"

#include "src/base/rng.h"
#include "src/containment/containment.h"
#include "src/gen/generators.h"

namespace cqac {
namespace {

// Pairs of random LSI queries over the same schema (so mappings exist).
std::pair<Query, Query> DrawPair(int subgoals, uint64_t seed) {
  Rng rng(seed);
  gen::QuerySpec spec;
  spec.num_subgoals = subgoals;
  spec.num_predicates = 1;  // one predicate maximizes mapping count
  spec.num_vars = subgoals + 1;
  spec.ac_density = 0.8;
  spec.ac_mode = gen::AcMode::kLsi;
  spec.boolean_head = true;
  Query a = gen::RandomQuery(rng, spec);
  Query b = gen::RandomQuery(rng, spec);
  return {a, b};
}

void Run(benchmark::State& state, bool fast_path) {
  const int n = static_cast<int>(state.range(0));
  std::vector<std::pair<Query, Query>> pairs;
  for (uint64_t s = 0; s < 8; ++s) pairs.push_back(DrawPair(n, 100 + s));

  ContainmentOptions opts;
  opts.use_single_mapping_fast_path = fast_path;
  ContainmentOptions other = opts;
  other.use_single_mapping_fast_path = !fast_path;

  // Agreement check before the timed loop.
  for (const auto& [a, b] : pairs) {
    auto x = IsContained(a, b, opts);
    auto y = IsContained(a, b, other);
    if (x.ok() && y.ok() && x.value() != y.value()) {
      state.SkipWithError("fast path disagrees with the general procedure");
      return;
    }
  }
  size_t contained = 0;
  for (auto _ : state) {
    for (const auto& [a, b] : pairs) {
      auto r = IsContained(a, b, opts);
      if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
      contained += r.ValueOr(false) ? 1 : 0;
    }
  }
  state.counters["pairs"] = 8;
}

void BM_LsiFastPath(benchmark::State& state) { Run(state, true); }
void BM_GeneralProcedure(benchmark::State& state) { Run(state, false); }

BENCHMARK(BM_LsiFastPath)->Arg(2)->Arg(3)->Arg(4)->Arg(5);
BENCHMARK(BM_GeneralProcedure)->Arg(2)->Arg(3)->Arg(4)->Arg(5);

}  // namespace
}  // namespace cqac

CQAC_BENCHMARK_MAIN()
