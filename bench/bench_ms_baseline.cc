// E8 (Table 3 / Section 4.1): the MS-algorithm example and the bucket
// baseline on pure CQs.
//
// On comparison-free inputs, RewriteLSIQuery degenerates to the MiniCon-style
// MCD machinery (Table 3's two MCDs for the car-dealer query) and the bucket
// algorithm must reach the same single rewriting. The bench scales the
// car-dealer pattern by chaining more subgoals and compares the two engines;
// `agree` must be 1 everywhere.
#include <benchmark/benchmark.h>

#include "bench/bench_threads.h"

#include "src/base/strings.h"
#include "src/containment/containment.h"
#include "src/gen/paper_workloads.h"
#include "src/ir/parser.h"
#include "src/rewriting/bucket.h"
#include "src/rewriting/rewrite_lsi.h"

namespace cqac {
namespace {

// car(C, A0), hop(A0, A1), ..., hop(A_{n-1}, L): a longer dealer chain
// covered by pairwise views.
void ScaledCarDealer(int hops, Query* q, ViewSet* views) {
  std::vector<std::string> items;
  items.push_back("car(C, A0)");
  for (int i = 0; i < hops; ++i)
    items.push_back(StrCat("hop(A", i, ", A", i + 1, ")"));
  items.push_back("color(C, red)");
  *q = MustParseQuery(StrCat("q(C, A", hops, ") :- ", Join(items, ", ")));
  *views = ViewSet();
  Status st = views->Add(MustParseQuery("vc(X, D) :- car(X, D)"));
  if (st.ok()) st = views->Add(MustParseQuery("vh(X, Y) :- hop(X, Y)"));
  if (st.ok()) st = views->Add(MustParseQuery("vk(W, Z) :- color(W, Z)"));
  if (!st.ok()) std::abort();
}

void BM_McdEngineOnCq(benchmark::State& state) {
  Query q;
  ViewSet views;
  ScaledCarDealer(static_cast<int>(state.range(0)), &q, &views);
  size_t n = 0;
  for (auto _ : state) {
    auto mcr = RewriteLsiQuery(q, views);
    if (!mcr.ok()) state.SkipWithError(mcr.status().ToString().c_str());
    n = mcr.ValueOr(UnionQuery{}).disjuncts.size();
  }
  state.counters["rewritings"] = static_cast<double>(n);
}
BENCHMARK(BM_McdEngineOnCq)->Arg(1)->Arg(2)->Arg(4)->Arg(6);

void BM_BucketOnCq(benchmark::State& state) {
  Query q;
  ViewSet views;
  ScaledCarDealer(static_cast<int>(state.range(0)), &q, &views);
  size_t n = 0;
  for (auto _ : state) {
    auto u = BucketRewrite(q, views);
    if (!u.ok()) state.SkipWithError(u.status().ToString().c_str());
    n = u.ValueOr(UnionQuery{}).disjuncts.size();
  }
  state.counters["rewritings"] = static_cast<double>(n);
}
BENCHMARK(BM_BucketOnCq)->Arg(1)->Arg(2)->Arg(4)->Arg(6);

void BM_CarDealerAgreement(benchmark::State& state) {
  Query q = workloads::CarDealerQuery();
  ViewSet views = workloads::CarDealerViews();
  int agree = 0;
  for (auto _ : state) {
    auto a = RewriteLsiQuery(q, views);
    auto b = BucketRewrite(q, views);
    agree = 0;
    if (a.ok() && b.ok() && a.value().disjuncts.size() == 1 &&
        b.value().disjuncts.size() == 1) {
      auto eq = IsEquivalent(a.value().disjuncts[0], b.value().disjuncts[0]);
      agree = (eq.ok() && eq.value()) ? 1 : 0;
    }
  }
  state.counters["agree"] = agree;  // must be 1
}
BENCHMARK(BM_CarDealerAgreement);

}  // namespace
}  // namespace cqac

CQAC_BENCHMARK_MAIN()
