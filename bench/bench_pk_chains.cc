// E4 (Example 1.2 / Proposition 5.1): the P_k chain family versus the
// recursive Datalog MCR.
//
// Regenerates the paper's separation: each P_k (a finite CQAC rewriting)
// only answers chain databases of its exact depth, while the single
// recursive MCR answers all of them. Measures (a) evaluating P_k on its
// view instance, (b) evaluating the Datalog MCR on the same instance, and
// verifies coverage (mcr_fires == 1) at every depth.
#include <benchmark/benchmark.h>

#include "bench/bench_threads.h"

#include "src/eval/evaluate.h"
#include "src/gen/paper_workloads.h"
#include "src/rewriting/si_mcr.h"

namespace cqac {
namespace {

Database ChainDatabase(int k) {
  Database db;
  const int n = 2 * k + 2;
  auto val = [n](int j) {
    if (j == 0) return Rational(9);
    if (j == n) return Rational(3);
    return Rational(4 * (n + 1) + 2 * j, n + 1);
  };
  for (int i = 0; i < n; ++i) {
    Status st = db.Insert("e", {Value(val(i)), Value(val(i + 1))});
    if (!st.ok()) std::abort();
  }
  return db;
}

void BM_PkEvaluation(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  ViewSet views = workloads::Example12Views();
  Database vdb = MaterializeViews(views, ChainDatabase(k)).value();
  Query pk = workloads::Example12Pk(k);
  bool fired = false;
  for (auto _ : state) {
    auto r = EvaluateQuery(pk, vdb);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    fired = !r.ValueOr(Relation{}).empty();
    benchmark::DoNotOptimize(fired);
  }
  state.counters["pk_fires"] = fired ? 1 : 0;
  state.counters["view_tuples"] = static_cast<double>(vdb.TotalTuples());
}
BENCHMARK(BM_PkEvaluation)->Arg(0)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void BM_DatalogMcrEvaluation(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  ViewSet views = workloads::Example12Views();
  Database vdb = MaterializeViews(views, ChainDatabase(k)).value();
  auto mcr = RewriteSiQueryDatalog(workloads::Example12Query(), views);
  if (!mcr.ok()) {
    state.SkipWithError(mcr.status().ToString().c_str());
    return;
  }
  datalog::Engine engine = mcr.value().MakeEngine();
  bool fired = false;
  for (auto _ : state) {
    auto r = engine.Query(vdb);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    fired = !r.ValueOr(Relation{}).empty();
    benchmark::DoNotOptimize(fired);
  }
  state.counters["mcr_fires"] = fired ? 1 : 0;  // must be 1 at every depth
}
BENCHMARK(BM_DatalogMcrEvaluation)
    ->Arg(0)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32);

void BM_McrConstruction(benchmark::State& state) {
  ViewSet views = workloads::Example12Views();
  Query q = workloads::Example12Query();
  for (auto _ : state) {
    auto mcr = RewriteSiQueryDatalog(q, views);
    if (!mcr.ok()) state.SkipWithError(mcr.status().ToString().c_str());
    benchmark::DoNotOptimize(mcr);
  }
}
BENCHMARK(BM_McrConstruction);

}  // namespace
}  // namespace cqac

CQAC_BENCHMARK_MAIN()
