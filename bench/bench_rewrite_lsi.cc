// E7 (Figure 2: RewriteLSIQuery): the central algorithm under scale, versus
// the AC-blind baseline.
//
// Sweeps the number of views and the query size, reporting the rewriting
// count and MCD count. The AC-blind bucket baseline is run on the same
// workloads; the `missed` counter shows how many MCR rewritings the
// baseline's union fails to cover (the paper's motivation for the new
// algorithm: AC-blind rewriting both generates unsound candidates — which
// verification rejects — and misses export-based rewritings entirely).
#include <benchmark/benchmark.h>

#include "bench/bench_threads.h"

#include "src/base/rng.h"
#include "src/containment/containment.h"
#include "src/gen/generators.h"
#include "src/rewriting/bucket.h"
#include "src/rewriting/rewrite_lsi.h"

namespace cqac {
namespace {

struct Workload {
  Query q;
  ViewSet views;
};

Workload Draw(int num_views, int subgoals, uint64_t seed) {
  Rng rng(seed);
  gen::QuerySpec qspec;
  qspec.num_subgoals = subgoals;
  qspec.num_predicates = 2;
  qspec.num_vars = subgoals + 1;
  qspec.ac_density = 0.7;
  qspec.ac_mode = gen::AcMode::kLsi;
  qspec.boolean_head = true;
  Query q = gen::RandomQuery(rng, qspec);
  gen::ViewSpec vspec;
  vspec.num_views = num_views;
  vspec.max_subgoals = 2;
  vspec.ac_mode = gen::AcMode::kSi;
  ViewSet views = gen::RandomViewsForQuery(rng, q, vspec);
  return {std::move(q), std::move(views)};
}

// Benchmark-scale search budget: large enough that small workloads finish
// exhaustively, small enough that the worst draw stays interactive.
Budget BenchBudget() {
  Budget budget;
  budget.max_mappings = 20000;
  return budget;
}

RewriteOptions BenchOptions() {
  RewriteOptions opts;
  opts.max_ac_alternatives = 16;
  return opts;
}

void BM_RewriteLsiViewsSweep(benchmark::State& state) {
  Workload w = Draw(static_cast<int>(state.range(0)), 3, 7);
  RewriteStats stats;
  size_t rewritings = 0;
  for (auto _ : state) {
    EngineContext ctx(BenchBudget());
    auto mcr = RewriteLsiQuery(ctx, w.q, w.views, BenchOptions(), &stats);
    if (!mcr.ok()) state.SkipWithError(mcr.status().ToString().c_str());
    rewritings = mcr.ValueOr(UnionQuery{}).disjuncts.size();
  }
  state.counters["views"] = static_cast<double>(state.range(0));
  state.counters["mcds"] = static_cast<double>(stats.mcds);
  state.counters["rewritings"] = static_cast<double>(rewritings);
}
BENCHMARK(BM_RewriteLsiViewsSweep)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

void BM_RewriteLsiSubgoalsSweep(benchmark::State& state) {
  Workload w = Draw(6, static_cast<int>(state.range(0)), 11);
  RewriteStats stats;
  for (auto _ : state) {
    EngineContext ctx(BenchBudget());
    auto mcr = RewriteLsiQuery(ctx, w.q, w.views, BenchOptions(), &stats);
    if (!mcr.ok()) state.SkipWithError(mcr.status().ToString().c_str());
    benchmark::DoNotOptimize(mcr);
  }
  state.counters["subgoals"] = static_cast<double>(state.range(0));
  state.counters["mcds"] = static_cast<double>(stats.mcds);
}
BENCHMARK(BM_RewriteLsiSubgoalsSweep)->Arg(2)->Arg(3)->Arg(4)->Arg(5)->Arg(6);

void BM_AcBlindBaselineCoverage(benchmark::State& state) {
  // How much of the MCR does an AC-blind bucket union cover?
  Workload w = Draw(static_cast<int>(state.range(0)), 3, 7);
  size_t missed = 0, total = 0, blind_rejects = 0;
  for (auto _ : state) {
    EngineContext ctx(BenchBudget());
    auto mcr = RewriteLsiQuery(ctx, w.q, w.views, BenchOptions());
    BucketOptions blind;
    blind.ac_aware = false;
    BucketStats bstats;
    auto baseline = BucketRewrite(w.q, w.views, blind, &bstats);
    if (!mcr.ok() || !baseline.ok()) {
      state.SkipWithError("rewriting failed");
      break;
    }
    missed = 0;
    total = mcr.value().disjuncts.size();
    blind_rejects = bstats.verified_rejects;
    for (const Query& d : mcr.value().disjuncts) {
      auto covered = IsContainedInUnion(d, baseline.value());
      if (covered.ok() && !covered.value()) ++missed;
    }
  }
  state.counters["mcr_rewritings"] = static_cast<double>(total);
  state.counters["baseline_missed"] = static_cast<double>(missed);
  state.counters["unsound_rejected"] = static_cast<double>(blind_rejects);
}
BENCHMARK(BM_AcBlindBaselineCoverage)->Arg(2)->Arg(4)->Arg(8);

}  // namespace
}  // namespace cqac

CQAC_BENCHMARK_MAIN()
