// E15: cqac_serve cold-vs-warm latency and multi-client throughput.
//
// Cold vs warm: the point of a long-lived server is that the shared
// EngineContext keeps the interner and the containment decision cache hot
// across requests. The first pass over a batch of distinct rewrite requests
// pays full containment cost; the second pass answers the same batch from
// the memo. Both passes go over a real loopback socket, so the delta is
// end-to-end protocol latency, not just engine time.
//
// Throughput: N concurrent clients (each in its own session) pound the
// server with a mixed request program. On one shard requests serialize on
// the single engine thread, so this measures protocol + dispatch overhead
// under contention; the sharded-scaling benchmark then sweeps --shards
// 1/2/4/8 with the same population to measure how throughput scales when
// sessions spread across independent engine workers. Every configuration
// re-verifies the serve determinism contract — zero protocol errors and
// every concurrent client's responses byte-identical to a serial replay.
//
// Run at --threads 0 / 4 / 8 to measure with and without engine fan-out
// (in the sharded benchmark --threads is the per-shard pool size).
#include <benchmark/benchmark.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_threads.h"
#include "src/base/strings.h"
#include "src/ir/json.h"
#include "src/serve/server.h"

namespace cqac {
namespace {

using serve::Server;
using serve::ServerOptions;

/// A blocking line-oriented loopback client; aborts on transport failure
/// (a broken transport invalidates the whole measurement).
class BenchClient {
 public:
  explicit BenchClient(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (fd_ < 0 ||
        ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
            0) {
      std::fprintf(stderr, "bench_serve: connect failed\n");
      std::abort();
    }
  }
  ~BenchClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  std::string RoundTrip(const std::string& line) {
    std::string framed = line + "\n";
    size_t sent = 0;
    while (sent < framed.size()) {
      ssize_t n = ::send(fd_, framed.data() + sent, framed.size() - sent,
                         MSG_NOSIGNAL);
      if (n <= 0) std::abort();
      sent += static_cast<size_t>(n);
    }
    size_t pos;
    while ((pos = acc_.find('\n')) == std::string::npos) {
      char buf[4096];
      ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n <= 0) std::abort();
      acc_.append(buf, static_cast<size_t>(n));
    }
    std::string response = acc_.substr(0, pos);
    acc_.erase(0, pos + 1);
    return response;
  }

 private:
  int fd_ = -1;
  std::string acc_;
};

bool IsOk(const std::string& response) {
  return response.rfind("{\"ok\":true", 0) == 0;
}

// The integration-style workload of bench_end_to_end: three views and a
// family of distinct price-threshold queries, each a separate containment
// problem for the rewriter.
const char* kViewRules[] = {
    "dealers_web(C, L) :- car(C, D), loc(D, L).",
    "budget_cars(C) :- price(C, P), P < 25.",
    "pricing_api(C, P) :- price(C, P).",
};

std::string ViewRequest(const std::string& session, const char* rule) {
  return StrCat("{\"op\":\"view\",\"session\":", JsonQuote(session),
                ",\"rule\":", JsonQuote(rule), "}");
}

std::string RewriteRequest(const std::string& session, int threshold) {
  return StrCat(
      "{\"op\":\"rewrite\",\"session\":", JsonQuote(session),
      ",\"query\":\"q(C) :- car(C, D), loc(D, irvine), price(C, P), P < ",
      threshold, "\"}");
}

ServerOptions MakeOptions() {
  ServerOptions options;
  if (bench::ThreadsFlag() > 0) options.pool = &bench::GlobalPool();
  return options;
}

// ---- cold vs warm ---------------------------------------------------------

void BM_ServeRewriteColdVsWarm(benchmark::State& state) {
  const int kQueries = static_cast<int>(state.range(0));
  double cold_total = 0, warm_total = 0;
  int64_t passes = 0;
  for (auto _ : state) {
    // A fresh server per iteration: "cold" means an empty interner and an
    // empty decision cache, exactly the state after process start.
    Server server(MakeOptions());
    if (!server.Start().ok()) {
      state.SkipWithError("server failed to start");
      return;
    }
    BenchClient client(server.port());
    for (const char* rule : kViewRules)
      if (!IsOk(client.RoundTrip(ViewRequest("bench", rule))))
        state.SkipWithError("view setup failed");

    auto pass = [&] {
      for (int i = 0; i < kQueries; ++i)
        if (!IsOk(client.RoundTrip(RewriteRequest("bench", 10 + i))))
          state.SkipWithError("rewrite failed");
    };
    cold_total += bench::TimeOnceMs(pass);
    warm_total += bench::TimeOnceMs(pass);
    ++passes;
  }
  state.counters["cold_pass_ms"] = cold_total / static_cast<double>(passes);
  state.counters["warm_pass_ms"] = warm_total / static_cast<double>(passes);
  state.counters["warm_over_cold"] =
      cold_total > 0 ? warm_total / cold_total : 0;
  state.counters["threads"] = static_cast<double>(bench::ThreadsFlag());
}
BENCHMARK(BM_ServeRewriteColdVsWarm)
    ->Arg(8)
    ->Arg(32)
    ->Unit(benchmark::kMillisecond);

// ---- ping floor -----------------------------------------------------------

// Pure protocol round-trip latency: socket framing, JSON parse, envelope
// validation, dispatch — no engine work at all.
void BM_ServePingLatency(benchmark::State& state) {
  Server server(MakeOptions());
  if (!server.Start().ok()) {
    state.SkipWithError("server failed to start");
    return;
  }
  BenchClient client(server.port());
  for (auto _ : state) {
    std::string response = client.RoundTrip("{\"op\":\"ping\"}");
    benchmark::DoNotOptimize(response);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ServePingLatency);

// ---- concurrent throughput + determinism ----------------------------------

std::vector<std::string> ClientProgram(const std::string& session) {
  std::vector<std::string> lines;
  for (const char* rule : kViewRules) lines.push_back(ViewRequest(session, rule));
  for (int i = 0; i < 4; ++i) lines.push_back(RewriteRequest(session, 20 + i));
  lines.push_back(StrCat(
      "{\"op\":\"contain\",\"session\":", JsonQuote(session),
      ",\"query\":\"q(C) :- car(C, D), loc(D, irvine), price(C, P), P < 30\","
      "\"candidate\":\"p(C) :- dealers_web(C, irvine), budget_cars(C)\"}"));
  lines.push_back(StrCat(
      "{\"op\":\"classify\",\"session\":", JsonQuote(session),
      ",\"query\":\"q(C) :- car(C, D), loc(D, irvine), price(C, P), "
      "P < 30\"}"));
  return lines;
}

void BM_ServeConcurrentClients(benchmark::State& state) {
  const int kClients = static_cast<int>(state.range(0));
  Server server(MakeOptions());
  if (!server.Start().ok()) {
    state.SkipWithError("server failed to start");
    return;
  }

  // Serial baseline, also the warm-up pass: every later response must be
  // byte-identical to these (responses carry no session-dependent bytes).
  std::vector<std::string> baseline;
  {
    BenchClient client(server.port());
    for (const std::string& line : ClientProgram("baseline"))
      baseline.push_back(client.RoundTrip(line));
  }

  std::atomic<int64_t> protocol_errors{0};
  std::atomic<int64_t> byte_mismatches{0};
  int64_t requests = 0;
  int epoch = 0;
  for (auto _ : state) {
    // Fresh session names per epoch keep view registration idempotent.
    ++epoch;
    std::vector<std::thread> threads;
    for (int c = 0; c < kClients; ++c) {
      std::string session = StrCat("e", epoch, "c", c);
      threads.emplace_back([&, session] {
        BenchClient client(server.port());
        std::vector<std::string> program = ClientProgram(session);
        for (size_t i = 0; i < program.size(); ++i) {
          std::string response = client.RoundTrip(program[i]);
          if (!IsOk(response)) protocol_errors.fetch_add(1);
          if (response != baseline[i]) byte_mismatches.fetch_add(1);
        }
      });
    }
    for (std::thread& t : threads) t.join();
    requests += static_cast<int64_t>(kClients) *
                static_cast<int64_t>(baseline.size());
    // Drop this epoch's sessions so iteration count never trips the
    // server's bounded session table.
    BenchClient janitor(server.port());
    for (int c = 0; c < kClients; ++c)
      janitor.RoundTrip(StrCat("{\"op\":\"reset\",\"session\":\"e", epoch,
                               "c", c, "\"}"));
  }
  state.SetItemsProcessed(requests);
  state.counters["clients"] = kClients;
  state.counters["protocol_errors"] =
      static_cast<double>(protocol_errors.load());
  state.counters["byte_mismatches"] =
      static_cast<double>(byte_mismatches.load());
  state.counters["threads"] = static_cast<double>(bench::ThreadsFlag());
  state.counters["containment_hit_rate"] =
      server.context().stats().ContainmentHitRate();
  if (protocol_errors.load() != 0)
    state.SkipWithError("protocol errors under concurrency");
  if (byte_mismatches.load() != 0)
    state.SkipWithError("responses diverged from the serial baseline");
}
BENCHMARK(BM_ServeConcurrentClients)
    ->Arg(1)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

// ---- sharded scaling curve ------------------------------------------------

// Eight concurrent clients against --shards = Arg engine shards: the
// capacity-planning curve of docs/serve.md. Sessions pin to shards by name
// hash, so with more shards the same client population spreads across more
// engine threads. Alongside throughput this records the per-shard
// backpressure counters (enqueued / rejected_overloaded / queue-depth
// peak) that the `stats` op exposes, and re-verifies the determinism
// contract at every shard count: zero protocol errors, every response
// byte-identical to a serial replay.
//
// Read shard*_enqueued for balance: a skewed session population parks on
// few shards and the curve flattens no matter how many shards you add.
void BM_ServeShardedScaling(benchmark::State& state) {
  const size_t kShards = static_cast<size_t>(state.range(0));
  constexpr int kClients = 8;
  ServerOptions options;
  options.shards = kShards;
  options.threads_per_shard = static_cast<size_t>(bench::ThreadsFlag());
  Server server(std::move(options));
  if (!server.Start().ok()) {
    state.SkipWithError("server failed to start");
    return;
  }

  std::vector<std::string> baseline;
  {
    BenchClient client(server.port());
    for (const std::string& line : ClientProgram("baseline"))
      baseline.push_back(client.RoundTrip(line));
  }

  std::atomic<int64_t> protocol_errors{0};
  std::atomic<int64_t> byte_mismatches{0};
  int64_t requests = 0;
  int epoch = 0;
  for (auto _ : state) {
    ++epoch;
    std::vector<std::thread> threads;
    for (int c = 0; c < kClients; ++c) {
      std::string session = StrCat("e", epoch, "c", c);
      threads.emplace_back([&, session] {
        BenchClient client(server.port());
        std::vector<std::string> program = ClientProgram(session);
        for (size_t i = 0; i < program.size(); ++i) {
          std::string response = client.RoundTrip(program[i]);
          if (!IsOk(response)) protocol_errors.fetch_add(1);
          if (response != baseline[i]) byte_mismatches.fetch_add(1);
        }
      });
    }
    for (std::thread& t : threads) t.join();
    requests += static_cast<int64_t>(kClients) *
                static_cast<int64_t>(baseline.size());
    BenchClient janitor(server.port());
    for (int c = 0; c < kClients; ++c)
      janitor.RoundTrip(StrCat("{\"op\":\"reset\",\"session\":\"e", epoch,
                               "c", c, "\"}"));
  }
  state.SetItemsProcessed(requests);
  state.counters["shards"] = static_cast<double>(kShards);
  state.counters["clients"] = kClients;
  state.counters["threads_per_shard"] =
      static_cast<double>(bench::ThreadsFlag());
  state.counters["protocol_errors"] =
      static_cast<double>(protocol_errors.load());
  state.counters["byte_mismatches"] =
      static_cast<double>(byte_mismatches.load());
  for (const serve::ShardSummary& s : server.ShardSummaries()) {
    std::string prefix = StrCat("shard", s.shard, "_");
    state.counters[StrCat(prefix, "enqueued")] =
        static_cast<double>(s.enqueued);
    state.counters[StrCat(prefix, "rejected")] =
        static_cast<double>(s.rejected_overloaded);
    state.counters[StrCat(prefix, "queue_peak")] =
        static_cast<double>(s.queue_depth_peak);
  }
  if (protocol_errors.load() != 0)
    state.SkipWithError("protocol errors under sharding");
  if (byte_mismatches.load() != 0)
    state.SkipWithError("responses diverged from the serial baseline");
}
BENCHMARK(BM_ServeShardedScaling)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace cqac

CQAC_BENCHMARK_MAIN_WITH_JSON("serve")
