// E10 (Example 5.1 / Lemma 5.1): the direct/coupling SI implication
// procedure versus the general engines.
//
// Lemma 5.1 says SI disjunction implication reduces to scanning for one
// direct implication or one coupling pair — linear-ish work — while the
// general DPLL refutation branches and the preorder enumeration is
// exponential in variables. All three must agree; the bench reports the
// time separation as the number of disjunct atoms grows.
#include <benchmark/benchmark.h>

#include "bench/bench_threads.h"

#include "src/base/rng.h"
#include "src/constraints/implication.h"

namespace cqac {
namespace {

struct Instance {
  std::vector<Comparison> premise;
  std::vector<Comparison> atoms;
};

Instance Draw(int atoms, uint64_t seed) {
  Rng rng(seed);
  Instance out;
  auto draw_si = [&rng](int var) {
    Rational c(rng.Uniform(0, 9));
    CompOp op = rng.Chance(0.5) ? CompOp::kLt : CompOp::kLe;
    if (rng.Chance(0.5))
      return Comparison(Term::Var(var), op, Term::Const(Value(c)));
    return Comparison(Term::Const(Value(c)), op, Term::Var(var));
  };
  for (int i = 0; i < 3; ++i)
    out.premise.push_back(draw_si(static_cast<int>(rng.Uniform(0, 3))));
  for (int i = 0; i < atoms; ++i)
    out.atoms.push_back(draw_si(static_cast<int>(rng.Uniform(0, 3))));
  return out;
}

void BM_SiProcedure(benchmark::State& state) {
  Instance in = Draw(static_cast<int>(state.range(0)), 17);
  for (auto _ : state) {
    auto r = SiImpliesSiDisjunction(in.premise, in.atoms);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_SiProcedure)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

void BM_DpllRefutation(benchmark::State& state) {
  Instance in = Draw(static_cast<int>(state.range(0)), 17);
  std::vector<std::vector<Comparison>> disjuncts;
  for (const Comparison& a : in.atoms) disjuncts.push_back({a});
  for (auto _ : state) {
    auto r = ImpliesDisjunction(in.premise, disjuncts);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r);
  }
  // Agreement with the SI procedure.
  auto si = SiImpliesSiDisjunction(in.premise, in.atoms);
  auto general = ImpliesDisjunction(in.premise, disjuncts);
  if (si.ok() && general.ok() && si.value() != general.value())
    state.SkipWithError("Lemma 5.1 procedure disagrees with DPLL");
}
BENCHMARK(BM_DpllRefutation)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

void BM_PreorderEnumeration(benchmark::State& state) {
  Instance in = Draw(static_cast<int>(state.range(0)), 17);
  std::vector<std::vector<Comparison>> disjuncts;
  for (const Comparison& a : in.atoms) disjuncts.push_back({a});
  for (auto _ : state) {
    auto r = ImpliesDisjunctionByPreorders(in.premise, disjuncts);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_PreorderEnumeration)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

}  // namespace
}  // namespace cqac

CQAC_BENCHMARK_MAIN()
