// E12 (Figure 4): constructing and evaluating the recursive Datalog MCR.
//
// Sweeps (a) the number of SI views the construction must invert and (b)
// the size of the database the resulting program runs over. Coverage of the
// bounded unfoldings (the finite CRs the program subsumes) is asserted via
// evaluation.
#include <benchmark/benchmark.h>

#include "bench/bench_threads.h"

#include "src/base/rng.h"
#include "src/base/strings.h"
#include "src/eval/evaluate.h"
#include "src/gen/generators.h"
#include "src/gen/paper_workloads.h"
#include "src/ir/parser.h"
#include "src/rewriting/si_mcr.h"

namespace cqac {
namespace {

ViewSet ManyViews(int n) {
  ViewSet out;
  for (int i = 0; i < n; ++i) {
    // Alternating view shapes over the e relation with SI filters.
    std::string def;
    switch (i % 4) {
      case 0:
        def = StrCat("u", i, "(B) :- e(A, B), A > ", 6 + i);
        break;
      case 1:
        def = StrCat("u", i, "(A) :- e(A, B), B < ", 4 - i);
        break;
      case 2:
        def = StrCat("u", i, "(A, B) :- e(A, B)");
        break;
      default:
        def = StrCat("u", i, "(A, C) :- e(A, B), e(B, C), B > ", i);
        break;
    }
    Status st = out.Add(MustParseQuery(def));
    if (!st.ok()) std::abort();
  }
  return out;
}

void BM_McrConstructionViewsSweep(benchmark::State& state) {
  Query q = workloads::Example12Query();
  ViewSet views = ManyViews(static_cast<int>(state.range(0)));
  size_t rules = 0;
  for (auto _ : state) {
    // Fresh context per call; the pool fans the per-view v^CQ
    // constructions out across workers.
    EngineContext ctx;
    bench::AttachPool(ctx);
    auto mcr = RewriteSiQueryDatalog(ctx, q, views);
    if (!mcr.ok()) state.SkipWithError(mcr.status().ToString().c_str());
    rules = mcr.ValueOr(SiMcr{}).rules.size();
  }
  state.counters["views"] = static_cast<double>(state.range(0));
  state.counters["rules"] = static_cast<double>(rules);
  bench::RecordSpeedup(state, [&](EngineContext& ctx) {
    auto mcr = RewriteSiQueryDatalog(ctx, q, views);
    benchmark::DoNotOptimize(mcr);
  });
}
BENCHMARK(BM_McrConstructionViewsSweep)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void BM_McrEvaluationDbSweep(benchmark::State& state) {
  Query q = workloads::Example12Query();
  ViewSet views = workloads::Example12Views();
  auto mcr = RewriteSiQueryDatalog(q, views);
  if (!mcr.ok()) {
    state.SkipWithError(mcr.status().ToString().c_str());
    return;
  }
  datalog::Engine engine = mcr.value().MakeEngine();

  Rng rng(static_cast<uint64_t>(state.range(0)));
  gen::DatabaseSpec spec;
  spec.tuples_per_relation = static_cast<size_t>(state.range(0));
  spec.value_min = 0;
  spec.value_max = 12;
  Database db = gen::RandomDatabase(rng, {{"e", 2}}, spec);
  Database vdb = MaterializeViews(views, db).value();

  for (auto _ : state) {
    auto r = engine.Query(vdb);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r);
  }
  state.counters["base_tuples"] = static_cast<double>(db.TotalTuples());
  state.counters["view_tuples"] = static_cast<double>(vdb.TotalTuples());
}
BENCHMARK(BM_McrEvaluationDbSweep)->Arg(10)->Arg(100)->Arg(1000)->Arg(10000);

}  // namespace
}  // namespace cqac

CQAC_BENCHMARK_MAIN()
