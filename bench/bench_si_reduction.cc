// E11 (Section 5.2-5.3, Theorems 5.1/5.2): CQAC-SI containment via the
// Datalog reduction versus the general procedure.
//
// The reduction turns the containment of an SI query in a CQAC-SI query
// into CQ-in-Datalog containment (NP by Theorem 5.2). The bench runs both
// deciders on the Example 5.1 chain family as the chain grows and asserts
// they agree (even chains contained, odd chains not).
#include <benchmark/benchmark.h>

#include "bench/bench_threads.h"

#include "src/containment/containment.h"
#include "src/containment/si_reduction.h"
#include "src/gen/paper_workloads.h"

namespace cqac {
namespace {

void BM_SiReduction(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Query q1 = workloads::Example51Q1();
  Query chain = workloads::Example51Chain(n, Rational(6), Rational(7));
  bool contained = false;
  for (auto _ : state) {
    auto r = IsContainedSiReduction(chain, q1);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    contained = r.ValueOr(false);
  }
  state.counters["contained"] = contained ? 1 : 0;
  if (contained != (n % 2 == 0))
    state.SkipWithError("parity shape violated (Example 5.1)");
}
BENCHMARK(BM_SiReduction)->Arg(2)->Arg(3)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void BM_GeneralContainmentSameInstances(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Query q1 = workloads::Example51Q1();
  Query chain = workloads::Example51Chain(n, Rational(6), Rational(7));
  bool contained = false;
  for (auto _ : state) {
    auto r = IsContained(chain, q1);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    contained = r.ValueOr(false);
  }
  state.counters["contained"] = contained ? 1 : 0;
}
BENCHMARK(BM_GeneralContainmentSameInstances)
    ->Arg(2)
    ->Arg(3)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32);

void BM_QdatalogConstruction(benchmark::State& state) {
  Query q1 = workloads::Example51Q1();
  for (auto _ : state) {
    auto p = BuildQdatalog(q1);
    if (!p.ok()) state.SkipWithError(p.status().ToString().c_str());
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_QdatalogConstruction);

void BM_PcqConstruction(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Query q1 = workloads::Example51Q1();
  Query chain = workloads::Example51Chain(n, Rational(6), Rational(7));
  for (auto _ : state) {
    auto p = BuildPcq(chain, q1);
    if (!p.ok()) state.SkipWithError(p.status().ToString().c_str());
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_PcqConstruction)->Arg(4)->Arg(16)->Arg(64);

}  // namespace
}  // namespace cqac

CQAC_BENCHMARK_MAIN()
