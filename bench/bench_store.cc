// E17: the durable store (src/store) — log append cost per fsync policy,
// snapshot write/load cost, and the headline recovery claim: loading the
// newest snapshot and replaying the O(delta) log tail must beat recovering
// the same state by rematerializing from the full logged history by at
// least an order of magnitude on the 8000-tuple IVM workload (the same
// workload bench_ivm uses for the incremental-vs-rebuild claim). The
// `speedup` counter records the measured ratio directly.
//
// The comparison is apples-to-apples: both sides go through the one public
// recovery entry point, RecoverShard. One shard directory holds a snapshot
// plus a 16-record tail; its twin holds the identical history as raw log
// records only, so recovering it replays everything from the empty state —
// exactly what a durability layer without snapshots would have to do.
#include <benchmark/benchmark.h>

#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_threads.h"
#include "src/base/rng.h"
#include "src/base/strings.h"
#include "src/engine/context.h"
#include "src/eval/database.h"
#include "src/gen/generators.h"
#include "src/ir/parser.h"
#include "src/ivm/maintain.h"
#include "src/store/log.h"
#include "src/store/snapshot.h"
#include "src/store/store.h"

namespace cqac {
namespace {

namespace fs = std::filesystem;

/// A unique scratch directory, removed with its contents on destruction.
class TempDir {
 public:
  TempDir() {
    std::string tmpl =
        (fs::temp_directory_path() / "cqac_bench_store_XXXXXX").string();
    if (::mkdtemp(tmpl.data()) == nullptr) std::abort();
    path_ = tmpl;
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

// The bench_ivm workload: two join views plus a comparison-guarded one over
// an 8000-tuples-per-relation random base.
const char* kViewRules[] = {
    "v_join(X, Y) :- r(X, Z), s(Z, Y).",
    "v_band(X, Y) :- r(X, Y), X <= Y.",
    "v_tri(X, Y) :- r(X, Z), s(Z, W), t(W, Y).",
};

const std::map<std::string, int> kSchema = {{"r", 2}, {"s", 2}, {"t", 2}};

Database MakeBase(size_t tuples) {
  Rng rng(20260806);
  gen::DatabaseSpec spec;
  spec.tuples_per_relation = tuples;
  spec.value_min = 0;
  spec.value_max = static_cast<int64_t>(tuples);
  return gen::RandomDatabase(rng, kSchema, spec);
}

ivm::MaterializedViewSet MakeSession(EngineContext& ctx,
                                     const Database& base) {
  ivm::MaterializedViewSet session;
  for (const char* rule : kViewRules)
    if (!session.AddView(ctx, MustParseQuery(rule)).ok()) std::abort();
  if (!session.ApplyInsert(ctx, base).ok()) std::abort();
  return session;
}

std::vector<std::string> ViewTexts() {
  return std::vector<std::string>(std::begin(kViewRules),
                                  std::end(kViewRules));
}

// ---- log append throughput per fsync policy --------------------------------

void BM_LogAppend(benchmark::State& state) {
  store::FsyncPolicy policy =
      static_cast<store::FsyncPolicy>(state.range(0));
  TempDir dir;
  store::LogWriter::Options options;
  options.fsync = policy;
  auto w = store::LogWriter::Open(dir.path() + "/wal", 0, 1, options,
                                  nullptr);
  if (!w.ok()) std::abort();
  uint64_t lsn = 0;
  uint64_t bytes = 0;
  store::LogRecord r;
  r.type = store::RecordType::kFact;
  r.session = "bench";
  r.text = "r(12345, 67890).";
  for (auto _ : state) {
    r.lsn = ++lsn;
    auto appended = w.value()->Append(r);
    if (!appended.ok()) std::abort();
    bytes += appended.value();
  }
  state.SetBytesProcessed(static_cast<int64_t>(bytes));
  state.counters["fsyncs"] = static_cast<double>(w.value()->fsyncs());
  state.counters["records"] = static_cast<double>(lsn);
  state.SetLabel(store::FsyncPolicyName(policy));
}
BENCHMARK(BM_LogAppend)
    ->Arg(static_cast<int>(store::FsyncPolicy::kAlways))
    ->Arg(static_cast<int>(store::FsyncPolicy::kInterval))
    ->Arg(static_cast<int>(store::FsyncPolicy::kNever))
    ->Unit(benchmark::kMicrosecond);

// ---- snapshot write / load -------------------------------------------------

void BM_SnapshotWriteAndLoad(benchmark::State& state) {
  const size_t kTuples = static_cast<size_t>(state.range(0));
  TempDir dir;
  EngineContext ctx;
  bench::AttachPool(ctx);
  Database base = MakeBase(kTuples);
  ivm::MaterializedViewSet session = MakeSession(ctx, base);
  std::string name = "bench";
  std::vector<std::string> texts = ViewTexts();
  store::SessionSnapshotRef ref{&name, &texts, &session};
  std::string path = dir.path() + "/snap.cqs";

  double write_total = 0, load_total = 0;
  int64_t rounds = 0;
  for (auto _ : state) {
    write_total += bench::TimeOnceMs([&] {
      if (!store::WriteSnapshotFile(path, 1, ctx.adaptive(), {ref}).ok())
        std::abort();
    });
    load_total += bench::TimeOnceMs([&] {
      auto snap = store::ReadSnapshotFile(path);
      if (!snap.ok()) std::abort();
      benchmark::DoNotOptimize(snap.value().sessions.size());
    });
    ++rounds;
  }
  state.counters["write_ms"] = write_total / static_cast<double>(rounds);
  state.counters["load_ms"] = load_total / static_cast<double>(rounds);
  state.counters["snapshot_bytes"] =
      static_cast<double>(fs::file_size(path));
  state.counters["base_tuples"] =
      static_cast<double>(session.base().TotalTuples());
  state.counters["view_tuples"] =
      static_cast<double>(session.views().TotalTuples());
}
BENCHMARK(BM_SnapshotWriteAndLoad)
    ->Arg(2000)
    ->Arg(8000)
    ->Unit(benchmark::kMillisecond);

// ---- the headline: snapshot + O(delta) tail vs rematerialization ----------

/// Builds two shard directories holding the SAME logical history — the
/// base arriving as a long stream of small commits (the shape a live
/// server's WAL actually has: one record per acknowledged request), then
/// `tail` single-fact commits:
///   shard-0: snapshot at the materialization point + `tail` log records
///   shard-1: raw log records only (views + every base commit + tail)
/// Recovering shard-1 is what a durability layer without snapshots must
/// do: replay the entire history through the maintainers, paying view
/// maintenance once per commit. Recovering shard-0 pays one O(state)
/// snapshot load plus O(delta) tail replay, independent of history length.
void BuildRecoveryFixtures(const std::string& data_dir, size_t tuples,
                           size_t tail) {
  EngineContext ctx;
  Database base = MakeBase(tuples);

  // The base as a stream of ~kBatch-fact commits.
  constexpr size_t kBatch = 240;
  std::vector<std::string> commits;
  {
    std::vector<std::string> pending;
    for (const auto& [pred, rel] : base.relations())
      for (const Tuple& t : rel)
        pending.push_back(StrCat(pred, TupleToString(t), "."));
    for (size_t i = 0; i < pending.size(); i += kBatch) {
      size_t end = std::min(i + kBatch, pending.size());
      std::vector<std::string> chunk(
          pending.begin() + static_cast<ptrdiff_t>(i),
          pending.begin() + static_cast<ptrdiff_t>(end));
      commits.push_back(Join(chunk, " "));
    }
  }

  store::StoreOptions options;
  options.fsync = store::FsyncPolicy::kNever;
  auto with_snapshot = store::ShardStore::Open(data_dir, 0, 2, options,
                                               nullptr);
  auto logs_only = store::ShardStore::Open(data_dir, 1, 2, options, nullptr);
  if (!with_snapshot.ok() || !logs_only.ok()) std::abort();

  for (const char* rule : kViewRules) {
    if (!with_snapshot.value()
             ->Append(store::RecordType::kView, "bench", rule)
             .ok())
      std::abort();
    if (!logs_only.value()
             ->Append(store::RecordType::kView, "bench", rule)
             .ok())
      std::abort();
  }
  for (const std::string& commit : commits) {
    if (!with_snapshot.value()
             ->Append(store::RecordType::kFact, "bench", commit)
             .ok())
      std::abort();
    if (!logs_only.value()
             ->Append(store::RecordType::kFact, "bench", commit)
             .ok())
      std::abort();
  }

  // Snapshot shard 0 at the materialization point; its WAL compacts down
  // to a barrier, so recovery = load snapshot + replay `tail` records.
  ivm::MaterializedViewSet session = MakeSession(ctx, base);
  std::string name = "bench";
  std::vector<std::string> texts = ViewTexts();
  store::SessionSnapshotRef ref{&name, &texts, &session};
  if (!with_snapshot.value()->WriteSnapshot(ctx.adaptive(), {ref}).ok())
    std::abort();

  for (size_t i = 0; i < tail; ++i) {
    std::string fact = StrCat("r(", i + 1, ", ", (i * 7) % tuples, ").");
    if (!with_snapshot.value()
             ->Append(store::RecordType::kFact, "bench", fact)
             .ok())
      std::abort();
    if (!logs_only.value()
             ->Append(store::RecordType::kFact, "bench", fact)
             .ok())
      std::abort();
  }
}

void BM_RecoverSnapshotTailVsRematerialize(benchmark::State& state) {
  const size_t kTuples = static_cast<size_t>(state.range(0));
  const size_t kTail = 16;
  TempDir dir;
  BuildRecoveryFixtures(dir.path(), kTuples, kTail);
  std::string snapshot_shard = store::ShardDirPath(dir.path(), 0);
  std::string logs_shard = store::ShardDirPath(dir.path(), 1);

  double recover_total = 0, remat_total = 0;
  int64_t rounds = 0;
  uint64_t tail_replayed = 0, full_replayed = 0;
  for (auto _ : state) {
    recover_total += bench::TimeOnceMs([&] {
      EngineContext ctx;
      bench::AttachPool(ctx);
      auto rec = store::RecoverShard(ctx, snapshot_shard);
      if (!rec.ok() || rec.value().sessions.size() != 1) std::abort();
      tail_replayed = rec.value().replayed_records;
      benchmark::DoNotOptimize(rec.value().sessions[0]->store.views());
    });
    remat_total += bench::TimeOnceMs([&] {
      EngineContext ctx;
      bench::AttachPool(ctx);
      auto rec = store::RecoverShard(ctx, logs_shard);
      if (!rec.ok() || rec.value().sessions.size() != 1) std::abort();
      full_replayed = rec.value().replayed_records;
      benchmark::DoNotOptimize(rec.value().sessions[0]->store.views());
    });
    ++rounds;
  }
  state.counters["recover_ms"] = recover_total / static_cast<double>(rounds);
  state.counters["rematerialize_ms"] =
      remat_total / static_cast<double>(rounds);
  state.counters["speedup"] =
      recover_total > 0 ? remat_total / recover_total : 0;
  state.counters["tail_records"] = static_cast<double>(tail_replayed);
  state.counters["full_records"] = static_cast<double>(full_replayed);
  state.counters["threads"] = static_cast<double>(bench::ThreadsFlag());
}
BENCHMARK(BM_RecoverSnapshotTailVsRematerialize)
    ->Arg(2000)
    ->Arg(8000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace cqac

CQAC_BENCHMARK_MAIN_WITH_JSON("store")
