// Shared --threads plumbing for the benchmark binaries.
//
// google-benchmark rejects flags it does not know, so every bench main must
// strip `--threads N` / `--threads=N` from argv before benchmark::Initialize.
// Use CQAC_BENCHMARK_MAIN() instead of BENCHMARK_MAIN(); benchmarks that
// exercise EngineContext-aware code paths attach the global pool with
// AttachPool and report the fan-out counters with RecordParallelCounters so
// the JSON output records the thread count, parallel wall time, and the
// measured serial-vs-parallel speedup of the workload.
#ifndef CQAC_BENCH_BENCH_THREADS_H_
#define CQAC_BENCH_BENCH_THREADS_H_

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/base/task_pool.h"
#include "src/engine/context.h"

namespace cqac {
namespace bench {

inline size_t& ThreadsFlag() {
  static size_t threads = 0;
  return threads;
}

// Removes --threads from argv (benchmark::Initialize aborts on unknown
// flags) and records the requested worker count.
inline void StripThreadsFlag(int* argc, char** argv) {
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    const char* arg = argv[i];
    const char* value = nullptr;
    if (std::strcmp(arg, "--threads") == 0) {
      if (i + 1 >= *argc) {
        std::fprintf(stderr, "%s: --threads requires a count\n", argv[0]);
        std::exit(1);
      }
      value = argv[++i];
    } else if (std::strncmp(arg, "--threads=", 10) == 0) {
      value = arg + 10;
    }
    if (value == nullptr) {
      argv[out++] = argv[i];
      continue;
    }
    char* end = nullptr;
    unsigned long n = std::strtoul(value, &end, 10);
    if (end == value || *end != '\0') {
      std::fprintf(stderr, "%s: invalid thread count '%s'\n", argv[0], value);
      std::exit(1);
    }
    ThreadsFlag() = static_cast<size_t>(n);
  }
  *argc = out;
}

// One pool for the whole binary; built on first use, after flag parsing.
inline TaskPool& GlobalPool() {
  static TaskPool pool(ThreadsFlag());
  return pool;
}

inline void AttachPool(EngineContext& ctx) {
  if (ThreadsFlag() > 0) ctx.set_task_pool(&GlobalPool());
}

template <typename Fn>
double TimeOnceMs(Fn&& fn) {
  auto start = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

inline void RecordParallelCounters(benchmark::State& state,
                                   const EngineContext& ctx) {
  state.counters["threads"] = static_cast<double>(ThreadsFlag());
  state.counters["parallel_sections"] =
      static_cast<double>(uint64_t{ctx.stats().parallel_sections});
  state.counters["parallel_tasks"] =
      static_cast<double>(uint64_t{ctx.stats().parallel_tasks});
  state.counters["parallel_wall_ms"] =
      static_cast<double>(uint64_t{ctx.stats().parallel_wall_ns}) / 1e6;
  state.counters["eval_batches"] =
      static_cast<double>(uint64_t{ctx.stats().eval_batches});
  state.counters["eval_smallint_fallbacks"] =
      static_cast<double>(uint64_t{ctx.stats().eval_smallint_fallbacks});
  state.counters["plan_decisions"] =
      static_cast<double>(uint64_t{ctx.stats().plan_decisions});
  state.counters["plan_join_reorders"] =
      static_cast<double>(uint64_t{ctx.stats().plan_join_reorders});
  state.counters["plan_unions_pruned"] =
      static_cast<double>(uint64_t{ctx.stats().plan_unions_pruned});
  state.counters["plan_retunes"] =
      static_cast<double>(uint64_t{ctx.stats().plan_retunes});
}

// Runs `workload(ctx)` once against a fresh serial context and once against
// a fresh pool-attached context, recording both wall times, their ratio,
// and the parallel run's fan-out counters. Fresh contexts keep the
// comparison honest: neither run sees a warm decision cache. With
// --threads 0 both runs are serial and speedup ~= 1.
template <typename Fn>
void RecordSpeedup(benchmark::State& state, Fn&& workload) {
  double serial_ms = TimeOnceMs([&] {
    EngineContext ctx;
    workload(ctx);
  });
  EngineContext pctx;
  AttachPool(pctx);
  double parallel_ms = TimeOnceMs([&] { workload(pctx); });
  state.counters["serial_ms"] = serial_ms;
  state.counters["parallel_ms"] = parallel_ms;
  state.counters["speedup"] = parallel_ms > 0 ? serial_ms / parallel_ms : 0;
  RecordParallelCounters(state, pctx);
}

// Injects `--benchmark_out=BENCH_<tag>.json --benchmark_out_format=json`
// unless the caller already passed --benchmark_out, so binaries built with
// CQAC_BENCHMARK_MAIN_WITH_JSON always leave a machine-readable result file
// (the CI bench-smoke step uploads them as artifacts). Counters land in the
// JSON verbatim, so speedup/maintained/etc. are diffable across runs.
// Returns an argv whose storage outlives benchmark::Initialize (statics).
inline char** InjectJsonOutFlag(const char* tag, int* argc, char** argv) {
  static std::vector<std::string> owned;
  static std::vector<char*> args;
  bool has_out = false;
  for (int i = 1; i < *argc; ++i)
    if (std::strncmp(argv[i], "--benchmark_out", 15) == 0) has_out = true;
  for (int i = 0; i < *argc; ++i) args.push_back(argv[i]);
  if (!has_out) {
    owned.reserve(2);
    owned.push_back(std::string("--benchmark_out=BENCH_") + tag + ".json");
    owned.push_back("--benchmark_out_format=json");
    for (std::string& s : owned) args.push_back(s.data());
  }
  args.push_back(nullptr);
  *argc = static_cast<int>(args.size()) - 1;
  return args.data();
}

}  // namespace bench
}  // namespace cqac

#define CQAC_BENCHMARK_MAIN()                                       \
  int main(int argc, char** argv) {                                 \
    cqac::bench::StripThreadsFlag(&argc, argv);                     \
    benchmark::Initialize(&argc, argv);                             \
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1; \
    benchmark::RunSpecifiedBenchmarks();                            \
    benchmark::Shutdown();                                          \
    return 0;                                                       \
  }

// Like CQAC_BENCHMARK_MAIN, but the run also writes BENCH_<tag>.json to the
// working directory (google-benchmark's JSON reporter; console output is
// unchanged).
#define CQAC_BENCHMARK_MAIN_WITH_JSON(tag)                          \
  int main(int argc, char** argv) {                                 \
    cqac::bench::StripThreadsFlag(&argc, argv);                     \
    char** args = cqac::bench::InjectJsonOutFlag(tag, &argc, argv); \
    benchmark::Initialize(&argc, args);                             \
    if (benchmark::ReportUnrecognizedArguments(argc, args)) return 1; \
    benchmark::RunSpecifiedBenchmarks();                            \
    benchmark::Shutdown();                                          \
    return 0;                                                       \
  }

#endif  // CQAC_BENCH_BENCH_THREADS_H_
