file(REMOVE_RECURSE
  "CMakeFiles/bench_ac_classify.dir/bench_ac_classify.cc.o"
  "CMakeFiles/bench_ac_classify.dir/bench_ac_classify.cc.o.d"
  "bench_ac_classify"
  "bench_ac_classify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ac_classify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
