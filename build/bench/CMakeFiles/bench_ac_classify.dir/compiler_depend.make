# Empty compiler generated dependencies file for bench_ac_classify.
# This may be replaced when dependencies are built.
