file(REMOVE_RECURSE
  "CMakeFiles/bench_containment_classes.dir/bench_containment_classes.cc.o"
  "CMakeFiles/bench_containment_classes.dir/bench_containment_classes.cc.o.d"
  "bench_containment_classes"
  "bench_containment_classes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_containment_classes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
