# Empty dependencies file for bench_containment_classes.
# This may be replaced when dependencies are built.
