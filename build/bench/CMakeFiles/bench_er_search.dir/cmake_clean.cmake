file(REMOVE_RECURSE
  "CMakeFiles/bench_er_search.dir/bench_er_search.cc.o"
  "CMakeFiles/bench_er_search.dir/bench_er_search.cc.o.d"
  "bench_er_search"
  "bench_er_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_er_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
