file(REMOVE_RECURSE
  "CMakeFiles/bench_example11.dir/bench_example11.cc.o"
  "CMakeFiles/bench_example11.dir/bench_example11.cc.o.d"
  "bench_example11"
  "bench_example11.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_example11.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
