# Empty compiler generated dependencies file for bench_example11.
# This may be replaced when dependencies are built.
