file(REMOVE_RECURSE
  "CMakeFiles/bench_export_analysis.dir/bench_export_analysis.cc.o"
  "CMakeFiles/bench_export_analysis.dir/bench_export_analysis.cc.o.d"
  "bench_export_analysis"
  "bench_export_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_export_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
