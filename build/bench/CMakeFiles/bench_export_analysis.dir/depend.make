# Empty dependencies file for bench_export_analysis.
# This may be replaced when dependencies are built.
