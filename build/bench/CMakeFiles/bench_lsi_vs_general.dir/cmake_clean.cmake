file(REMOVE_RECURSE
  "CMakeFiles/bench_lsi_vs_general.dir/bench_lsi_vs_general.cc.o"
  "CMakeFiles/bench_lsi_vs_general.dir/bench_lsi_vs_general.cc.o.d"
  "bench_lsi_vs_general"
  "bench_lsi_vs_general.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lsi_vs_general.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
