# Empty dependencies file for bench_lsi_vs_general.
# This may be replaced when dependencies are built.
