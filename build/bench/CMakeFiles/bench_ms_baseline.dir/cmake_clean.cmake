file(REMOVE_RECURSE
  "CMakeFiles/bench_ms_baseline.dir/bench_ms_baseline.cc.o"
  "CMakeFiles/bench_ms_baseline.dir/bench_ms_baseline.cc.o.d"
  "bench_ms_baseline"
  "bench_ms_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ms_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
