# Empty compiler generated dependencies file for bench_ms_baseline.
# This may be replaced when dependencies are built.
