file(REMOVE_RECURSE
  "CMakeFiles/bench_pk_chains.dir/bench_pk_chains.cc.o"
  "CMakeFiles/bench_pk_chains.dir/bench_pk_chains.cc.o.d"
  "bench_pk_chains"
  "bench_pk_chains.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pk_chains.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
