# Empty compiler generated dependencies file for bench_pk_chains.
# This may be replaced when dependencies are built.
