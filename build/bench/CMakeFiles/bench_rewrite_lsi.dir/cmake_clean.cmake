file(REMOVE_RECURSE
  "CMakeFiles/bench_rewrite_lsi.dir/bench_rewrite_lsi.cc.o"
  "CMakeFiles/bench_rewrite_lsi.dir/bench_rewrite_lsi.cc.o.d"
  "bench_rewrite_lsi"
  "bench_rewrite_lsi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rewrite_lsi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
