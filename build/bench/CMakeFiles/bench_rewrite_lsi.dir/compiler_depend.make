# Empty compiler generated dependencies file for bench_rewrite_lsi.
# This may be replaced when dependencies are built.
