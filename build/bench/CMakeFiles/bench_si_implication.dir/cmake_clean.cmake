file(REMOVE_RECURSE
  "CMakeFiles/bench_si_implication.dir/bench_si_implication.cc.o"
  "CMakeFiles/bench_si_implication.dir/bench_si_implication.cc.o.d"
  "bench_si_implication"
  "bench_si_implication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_si_implication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
