# Empty dependencies file for bench_si_implication.
# This may be replaced when dependencies are built.
