file(REMOVE_RECURSE
  "CMakeFiles/bench_si_mcr.dir/bench_si_mcr.cc.o"
  "CMakeFiles/bench_si_mcr.dir/bench_si_mcr.cc.o.d"
  "bench_si_mcr"
  "bench_si_mcr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_si_mcr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
