# Empty dependencies file for bench_si_mcr.
# This may be replaced when dependencies are built.
