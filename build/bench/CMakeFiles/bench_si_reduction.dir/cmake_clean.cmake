file(REMOVE_RECURSE
  "CMakeFiles/bench_si_reduction.dir/bench_si_reduction.cc.o"
  "CMakeFiles/bench_si_reduction.dir/bench_si_reduction.cc.o.d"
  "bench_si_reduction"
  "bench_si_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_si_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
