file(REMOVE_RECURSE
  "CMakeFiles/information_integration.dir/information_integration.cpp.o"
  "CMakeFiles/information_integration.dir/information_integration.cpp.o.d"
  "information_integration"
  "information_integration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/information_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
