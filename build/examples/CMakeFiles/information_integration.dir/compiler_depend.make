# Empty compiler generated dependencies file for information_integration.
# This may be replaced when dependencies are built.
