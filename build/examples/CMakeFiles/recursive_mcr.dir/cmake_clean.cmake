file(REMOVE_RECURSE
  "CMakeFiles/recursive_mcr.dir/recursive_mcr.cpp.o"
  "CMakeFiles/recursive_mcr.dir/recursive_mcr.cpp.o.d"
  "recursive_mcr"
  "recursive_mcr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recursive_mcr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
