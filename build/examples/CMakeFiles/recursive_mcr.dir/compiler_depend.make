# Empty compiler generated dependencies file for recursive_mcr.
# This may be replaced when dependencies are built.
