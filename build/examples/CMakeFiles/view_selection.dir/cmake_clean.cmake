file(REMOVE_RECURSE
  "CMakeFiles/view_selection.dir/view_selection.cpp.o"
  "CMakeFiles/view_selection.dir/view_selection.cpp.o.d"
  "view_selection"
  "view_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/view_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
