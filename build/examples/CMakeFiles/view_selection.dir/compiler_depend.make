# Empty compiler generated dependencies file for view_selection.
# This may be replaced when dependencies are built.
