file(REMOVE_RECURSE
  "CMakeFiles/cqac_base.dir/rational.cc.o"
  "CMakeFiles/cqac_base.dir/rational.cc.o.d"
  "CMakeFiles/cqac_base.dir/status.cc.o"
  "CMakeFiles/cqac_base.dir/status.cc.o.d"
  "CMakeFiles/cqac_base.dir/strings.cc.o"
  "CMakeFiles/cqac_base.dir/strings.cc.o.d"
  "libcqac_base.a"
  "libcqac_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cqac_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
