file(REMOVE_RECURSE
  "libcqac_base.a"
)
