# Empty dependencies file for cqac_base.
# This may be replaced when dependencies are built.
