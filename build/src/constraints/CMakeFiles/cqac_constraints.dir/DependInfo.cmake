
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/constraints/implication.cc" "src/constraints/CMakeFiles/cqac_constraints.dir/implication.cc.o" "gcc" "src/constraints/CMakeFiles/cqac_constraints.dir/implication.cc.o.d"
  "/root/repo/src/constraints/inequality_graph.cc" "src/constraints/CMakeFiles/cqac_constraints.dir/inequality_graph.cc.o" "gcc" "src/constraints/CMakeFiles/cqac_constraints.dir/inequality_graph.cc.o.d"
  "/root/repo/src/constraints/intervals.cc" "src/constraints/CMakeFiles/cqac_constraints.dir/intervals.cc.o" "gcc" "src/constraints/CMakeFiles/cqac_constraints.dir/intervals.cc.o.d"
  "/root/repo/src/constraints/preprocess.cc" "src/constraints/CMakeFiles/cqac_constraints.dir/preprocess.cc.o" "gcc" "src/constraints/CMakeFiles/cqac_constraints.dir/preprocess.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/cqac_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/cqac_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
