file(REMOVE_RECURSE
  "CMakeFiles/cqac_constraints.dir/implication.cc.o"
  "CMakeFiles/cqac_constraints.dir/implication.cc.o.d"
  "CMakeFiles/cqac_constraints.dir/inequality_graph.cc.o"
  "CMakeFiles/cqac_constraints.dir/inequality_graph.cc.o.d"
  "CMakeFiles/cqac_constraints.dir/intervals.cc.o"
  "CMakeFiles/cqac_constraints.dir/intervals.cc.o.d"
  "CMakeFiles/cqac_constraints.dir/preprocess.cc.o"
  "CMakeFiles/cqac_constraints.dir/preprocess.cc.o.d"
  "libcqac_constraints.a"
  "libcqac_constraints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cqac_constraints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
