file(REMOVE_RECURSE
  "libcqac_constraints.a"
)
