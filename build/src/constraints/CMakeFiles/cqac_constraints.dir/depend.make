# Empty dependencies file for cqac_constraints.
# This may be replaced when dependencies are built.
