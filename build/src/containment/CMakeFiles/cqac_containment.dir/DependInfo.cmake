
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/containment/containment.cc" "src/containment/CMakeFiles/cqac_containment.dir/containment.cc.o" "gcc" "src/containment/CMakeFiles/cqac_containment.dir/containment.cc.o.d"
  "/root/repo/src/containment/explain.cc" "src/containment/CMakeFiles/cqac_containment.dir/explain.cc.o" "gcc" "src/containment/CMakeFiles/cqac_containment.dir/explain.cc.o.d"
  "/root/repo/src/containment/homomorphism.cc" "src/containment/CMakeFiles/cqac_containment.dir/homomorphism.cc.o" "gcc" "src/containment/CMakeFiles/cqac_containment.dir/homomorphism.cc.o.d"
  "/root/repo/src/containment/minimize.cc" "src/containment/CMakeFiles/cqac_containment.dir/minimize.cc.o" "gcc" "src/containment/CMakeFiles/cqac_containment.dir/minimize.cc.o.d"
  "/root/repo/src/containment/si_reduction.cc" "src/containment/CMakeFiles/cqac_containment.dir/si_reduction.cc.o" "gcc" "src/containment/CMakeFiles/cqac_containment.dir/si_reduction.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/constraints/CMakeFiles/cqac_constraints.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/cqac_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/datalog/CMakeFiles/cqac_datalog.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/cqac_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/cqac_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
