file(REMOVE_RECURSE
  "CMakeFiles/cqac_containment.dir/containment.cc.o"
  "CMakeFiles/cqac_containment.dir/containment.cc.o.d"
  "CMakeFiles/cqac_containment.dir/explain.cc.o"
  "CMakeFiles/cqac_containment.dir/explain.cc.o.d"
  "CMakeFiles/cqac_containment.dir/homomorphism.cc.o"
  "CMakeFiles/cqac_containment.dir/homomorphism.cc.o.d"
  "CMakeFiles/cqac_containment.dir/minimize.cc.o"
  "CMakeFiles/cqac_containment.dir/minimize.cc.o.d"
  "CMakeFiles/cqac_containment.dir/si_reduction.cc.o"
  "CMakeFiles/cqac_containment.dir/si_reduction.cc.o.d"
  "libcqac_containment.a"
  "libcqac_containment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cqac_containment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
