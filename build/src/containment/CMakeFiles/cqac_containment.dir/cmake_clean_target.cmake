file(REMOVE_RECURSE
  "libcqac_containment.a"
)
