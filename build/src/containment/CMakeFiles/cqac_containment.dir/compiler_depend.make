# Empty compiler generated dependencies file for cqac_containment.
# This may be replaced when dependencies are built.
