file(REMOVE_RECURSE
  "CMakeFiles/cqac_datalog.dir/engine.cc.o"
  "CMakeFiles/cqac_datalog.dir/engine.cc.o.d"
  "CMakeFiles/cqac_datalog.dir/unfold.cc.o"
  "CMakeFiles/cqac_datalog.dir/unfold.cc.o.d"
  "libcqac_datalog.a"
  "libcqac_datalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cqac_datalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
