file(REMOVE_RECURSE
  "libcqac_datalog.a"
)
