# Empty dependencies file for cqac_datalog.
# This may be replaced when dependencies are built.
