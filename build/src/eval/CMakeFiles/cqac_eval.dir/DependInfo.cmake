
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/eval/database.cc" "src/eval/CMakeFiles/cqac_eval.dir/database.cc.o" "gcc" "src/eval/CMakeFiles/cqac_eval.dir/database.cc.o.d"
  "/root/repo/src/eval/evaluate.cc" "src/eval/CMakeFiles/cqac_eval.dir/evaluate.cc.o" "gcc" "src/eval/CMakeFiles/cqac_eval.dir/evaluate.cc.o.d"
  "/root/repo/src/eval/mirror.cc" "src/eval/CMakeFiles/cqac_eval.dir/mirror.cc.o" "gcc" "src/eval/CMakeFiles/cqac_eval.dir/mirror.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/cqac_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/cqac_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
