file(REMOVE_RECURSE
  "CMakeFiles/cqac_eval.dir/database.cc.o"
  "CMakeFiles/cqac_eval.dir/database.cc.o.d"
  "CMakeFiles/cqac_eval.dir/evaluate.cc.o"
  "CMakeFiles/cqac_eval.dir/evaluate.cc.o.d"
  "CMakeFiles/cqac_eval.dir/mirror.cc.o"
  "CMakeFiles/cqac_eval.dir/mirror.cc.o.d"
  "libcqac_eval.a"
  "libcqac_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cqac_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
