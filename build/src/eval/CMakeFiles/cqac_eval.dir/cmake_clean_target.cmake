file(REMOVE_RECURSE
  "libcqac_eval.a"
)
