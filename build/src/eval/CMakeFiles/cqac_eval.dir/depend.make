# Empty dependencies file for cqac_eval.
# This may be replaced when dependencies are built.
