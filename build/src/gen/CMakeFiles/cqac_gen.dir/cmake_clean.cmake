file(REMOVE_RECURSE
  "CMakeFiles/cqac_gen.dir/generators.cc.o"
  "CMakeFiles/cqac_gen.dir/generators.cc.o.d"
  "CMakeFiles/cqac_gen.dir/paper_workloads.cc.o"
  "CMakeFiles/cqac_gen.dir/paper_workloads.cc.o.d"
  "libcqac_gen.a"
  "libcqac_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cqac_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
