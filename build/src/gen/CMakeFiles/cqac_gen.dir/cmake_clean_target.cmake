file(REMOVE_RECURSE
  "libcqac_gen.a"
)
