# Empty compiler generated dependencies file for cqac_gen.
# This may be replaced when dependencies are built.
