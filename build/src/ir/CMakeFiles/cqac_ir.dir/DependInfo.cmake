
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/expansion.cc" "src/ir/CMakeFiles/cqac_ir.dir/expansion.cc.o" "gcc" "src/ir/CMakeFiles/cqac_ir.dir/expansion.cc.o.d"
  "/root/repo/src/ir/json.cc" "src/ir/CMakeFiles/cqac_ir.dir/json.cc.o" "gcc" "src/ir/CMakeFiles/cqac_ir.dir/json.cc.o.d"
  "/root/repo/src/ir/parser.cc" "src/ir/CMakeFiles/cqac_ir.dir/parser.cc.o" "gcc" "src/ir/CMakeFiles/cqac_ir.dir/parser.cc.o.d"
  "/root/repo/src/ir/program.cc" "src/ir/CMakeFiles/cqac_ir.dir/program.cc.o" "gcc" "src/ir/CMakeFiles/cqac_ir.dir/program.cc.o.d"
  "/root/repo/src/ir/query.cc" "src/ir/CMakeFiles/cqac_ir.dir/query.cc.o" "gcc" "src/ir/CMakeFiles/cqac_ir.dir/query.cc.o.d"
  "/root/repo/src/ir/substitution.cc" "src/ir/CMakeFiles/cqac_ir.dir/substitution.cc.o" "gcc" "src/ir/CMakeFiles/cqac_ir.dir/substitution.cc.o.d"
  "/root/repo/src/ir/view.cc" "src/ir/CMakeFiles/cqac_ir.dir/view.cc.o" "gcc" "src/ir/CMakeFiles/cqac_ir.dir/view.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/cqac_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
