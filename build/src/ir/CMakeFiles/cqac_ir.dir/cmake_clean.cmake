file(REMOVE_RECURSE
  "CMakeFiles/cqac_ir.dir/expansion.cc.o"
  "CMakeFiles/cqac_ir.dir/expansion.cc.o.d"
  "CMakeFiles/cqac_ir.dir/json.cc.o"
  "CMakeFiles/cqac_ir.dir/json.cc.o.d"
  "CMakeFiles/cqac_ir.dir/parser.cc.o"
  "CMakeFiles/cqac_ir.dir/parser.cc.o.d"
  "CMakeFiles/cqac_ir.dir/program.cc.o"
  "CMakeFiles/cqac_ir.dir/program.cc.o.d"
  "CMakeFiles/cqac_ir.dir/query.cc.o"
  "CMakeFiles/cqac_ir.dir/query.cc.o.d"
  "CMakeFiles/cqac_ir.dir/substitution.cc.o"
  "CMakeFiles/cqac_ir.dir/substitution.cc.o.d"
  "CMakeFiles/cqac_ir.dir/view.cc.o"
  "CMakeFiles/cqac_ir.dir/view.cc.o.d"
  "libcqac_ir.a"
  "libcqac_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cqac_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
