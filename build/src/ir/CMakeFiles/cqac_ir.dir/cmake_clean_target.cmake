file(REMOVE_RECURSE
  "libcqac_ir.a"
)
