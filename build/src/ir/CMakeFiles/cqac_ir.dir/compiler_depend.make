# Empty compiler generated dependencies file for cqac_ir.
# This may be replaced when dependencies are built.
