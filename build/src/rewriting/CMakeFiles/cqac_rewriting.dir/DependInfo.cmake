
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rewriting/all_distinguished.cc" "src/rewriting/CMakeFiles/cqac_rewriting.dir/all_distinguished.cc.o" "gcc" "src/rewriting/CMakeFiles/cqac_rewriting.dir/all_distinguished.cc.o.d"
  "/root/repo/src/rewriting/answer.cc" "src/rewriting/CMakeFiles/cqac_rewriting.dir/answer.cc.o" "gcc" "src/rewriting/CMakeFiles/cqac_rewriting.dir/answer.cc.o.d"
  "/root/repo/src/rewriting/bucket.cc" "src/rewriting/CMakeFiles/cqac_rewriting.dir/bucket.cc.o" "gcc" "src/rewriting/CMakeFiles/cqac_rewriting.dir/bucket.cc.o.d"
  "/root/repo/src/rewriting/er_search.cc" "src/rewriting/CMakeFiles/cqac_rewriting.dir/er_search.cc.o" "gcc" "src/rewriting/CMakeFiles/cqac_rewriting.dir/er_search.cc.o.d"
  "/root/repo/src/rewriting/export_analysis.cc" "src/rewriting/CMakeFiles/cqac_rewriting.dir/export_analysis.cc.o" "gcc" "src/rewriting/CMakeFiles/cqac_rewriting.dir/export_analysis.cc.o.d"
  "/root/repo/src/rewriting/mcd.cc" "src/rewriting/CMakeFiles/cqac_rewriting.dir/mcd.cc.o" "gcc" "src/rewriting/CMakeFiles/cqac_rewriting.dir/mcd.cc.o.d"
  "/root/repo/src/rewriting/rewrite_lsi.cc" "src/rewriting/CMakeFiles/cqac_rewriting.dir/rewrite_lsi.cc.o" "gcc" "src/rewriting/CMakeFiles/cqac_rewriting.dir/rewrite_lsi.cc.o.d"
  "/root/repo/src/rewriting/si_mcr.cc" "src/rewriting/CMakeFiles/cqac_rewriting.dir/si_mcr.cc.o" "gcc" "src/rewriting/CMakeFiles/cqac_rewriting.dir/si_mcr.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/containment/CMakeFiles/cqac_containment.dir/DependInfo.cmake"
  "/root/repo/build/src/datalog/CMakeFiles/cqac_datalog.dir/DependInfo.cmake"
  "/root/repo/build/src/constraints/CMakeFiles/cqac_constraints.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/cqac_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/cqac_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/cqac_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
