file(REMOVE_RECURSE
  "CMakeFiles/cqac_rewriting.dir/all_distinguished.cc.o"
  "CMakeFiles/cqac_rewriting.dir/all_distinguished.cc.o.d"
  "CMakeFiles/cqac_rewriting.dir/answer.cc.o"
  "CMakeFiles/cqac_rewriting.dir/answer.cc.o.d"
  "CMakeFiles/cqac_rewriting.dir/bucket.cc.o"
  "CMakeFiles/cqac_rewriting.dir/bucket.cc.o.d"
  "CMakeFiles/cqac_rewriting.dir/er_search.cc.o"
  "CMakeFiles/cqac_rewriting.dir/er_search.cc.o.d"
  "CMakeFiles/cqac_rewriting.dir/export_analysis.cc.o"
  "CMakeFiles/cqac_rewriting.dir/export_analysis.cc.o.d"
  "CMakeFiles/cqac_rewriting.dir/mcd.cc.o"
  "CMakeFiles/cqac_rewriting.dir/mcd.cc.o.d"
  "CMakeFiles/cqac_rewriting.dir/rewrite_lsi.cc.o"
  "CMakeFiles/cqac_rewriting.dir/rewrite_lsi.cc.o.d"
  "CMakeFiles/cqac_rewriting.dir/si_mcr.cc.o"
  "CMakeFiles/cqac_rewriting.dir/si_mcr.cc.o.d"
  "libcqac_rewriting.a"
  "libcqac_rewriting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cqac_rewriting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
