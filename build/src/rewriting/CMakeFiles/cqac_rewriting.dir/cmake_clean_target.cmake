file(REMOVE_RECURSE
  "libcqac_rewriting.a"
)
