# Empty dependencies file for cqac_rewriting.
# This may be replaced when dependencies are built.
