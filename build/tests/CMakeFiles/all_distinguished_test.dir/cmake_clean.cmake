file(REMOVE_RECURSE
  "CMakeFiles/all_distinguished_test.dir/all_distinguished_test.cc.o"
  "CMakeFiles/all_distinguished_test.dir/all_distinguished_test.cc.o.d"
  "all_distinguished_test"
  "all_distinguished_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/all_distinguished_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
