# Empty compiler generated dependencies file for all_distinguished_test.
# This may be replaced when dependencies are built.
