file(REMOVE_RECURSE
  "CMakeFiles/datalog_battery_test.dir/datalog_battery_test.cc.o"
  "CMakeFiles/datalog_battery_test.dir/datalog_battery_test.cc.o.d"
  "datalog_battery_test"
  "datalog_battery_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datalog_battery_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
