# Empty dependencies file for datalog_battery_test.
# This may be replaced when dependencies are built.
