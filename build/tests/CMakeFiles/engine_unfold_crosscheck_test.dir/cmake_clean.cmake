file(REMOVE_RECURSE
  "CMakeFiles/engine_unfold_crosscheck_test.dir/engine_unfold_crosscheck_test.cc.o"
  "CMakeFiles/engine_unfold_crosscheck_test.dir/engine_unfold_crosscheck_test.cc.o.d"
  "engine_unfold_crosscheck_test"
  "engine_unfold_crosscheck_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_unfold_crosscheck_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
