# Empty compiler generated dependencies file for engine_unfold_crosscheck_test.
# This may be replaced when dependencies are built.
