# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for engine_unfold_crosscheck_test.
