file(REMOVE_RECURSE
  "CMakeFiles/er_search_test.dir/er_search_test.cc.o"
  "CMakeFiles/er_search_test.dir/er_search_test.cc.o.d"
  "er_search_test"
  "er_search_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/er_search_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
