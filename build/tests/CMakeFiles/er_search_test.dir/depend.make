# Empty dependencies file for er_search_test.
# This may be replaced when dependencies are built.
