file(REMOVE_RECURSE
  "CMakeFiles/export_analysis_test.dir/export_analysis_test.cc.o"
  "CMakeFiles/export_analysis_test.dir/export_analysis_test.cc.o.d"
  "export_analysis_test"
  "export_analysis_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/export_analysis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
