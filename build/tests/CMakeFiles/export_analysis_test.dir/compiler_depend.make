# Empty compiler generated dependencies file for export_analysis_test.
# This may be replaced when dependencies are built.
