file(REMOVE_RECURSE
  "CMakeFiles/inequality_graph_test.dir/inequality_graph_test.cc.o"
  "CMakeFiles/inequality_graph_test.dir/inequality_graph_test.cc.o.d"
  "inequality_graph_test"
  "inequality_graph_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inequality_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
