# Empty dependencies file for inequality_graph_test.
# This may be replaced when dependencies are built.
