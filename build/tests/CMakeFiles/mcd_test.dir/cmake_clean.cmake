file(REMOVE_RECURSE
  "CMakeFiles/mcd_test.dir/mcd_test.cc.o"
  "CMakeFiles/mcd_test.dir/mcd_test.cc.o.d"
  "mcd_test"
  "mcd_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
