# Empty dependencies file for mcd_test.
# This may be replaced when dependencies are built.
