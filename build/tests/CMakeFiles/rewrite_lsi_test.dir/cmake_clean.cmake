file(REMOVE_RECURSE
  "CMakeFiles/rewrite_lsi_test.dir/rewrite_lsi_test.cc.o"
  "CMakeFiles/rewrite_lsi_test.dir/rewrite_lsi_test.cc.o.d"
  "rewrite_lsi_test"
  "rewrite_lsi_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rewrite_lsi_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
