# Empty compiler generated dependencies file for rewrite_lsi_test.
# This may be replaced when dependencies are built.
