file(REMOVE_RECURSE
  "CMakeFiles/rewriting_property_test.dir/rewriting_property_test.cc.o"
  "CMakeFiles/rewriting_property_test.dir/rewriting_property_test.cc.o.d"
  "rewriting_property_test"
  "rewriting_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rewriting_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
