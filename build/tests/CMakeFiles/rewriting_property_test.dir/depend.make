# Empty dependencies file for rewriting_property_test.
# This may be replaced when dependencies are built.
