file(REMOVE_RECURSE
  "CMakeFiles/seeded_sweeps_test.dir/seeded_sweeps_test.cc.o"
  "CMakeFiles/seeded_sweeps_test.dir/seeded_sweeps_test.cc.o.d"
  "seeded_sweeps_test"
  "seeded_sweeps_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seeded_sweeps_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
