# Empty dependencies file for seeded_sweeps_test.
# This may be replaced when dependencies are built.
