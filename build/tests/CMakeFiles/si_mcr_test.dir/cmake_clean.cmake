file(REMOVE_RECURSE
  "CMakeFiles/si_mcr_test.dir/si_mcr_test.cc.o"
  "CMakeFiles/si_mcr_test.dir/si_mcr_test.cc.o.d"
  "si_mcr_test"
  "si_mcr_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/si_mcr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
