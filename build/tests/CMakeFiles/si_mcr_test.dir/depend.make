# Empty dependencies file for si_mcr_test.
# This may be replaced when dependencies are built.
