file(REMOVE_RECURSE
  "CMakeFiles/si_reduction_test.dir/si_reduction_test.cc.o"
  "CMakeFiles/si_reduction_test.dir/si_reduction_test.cc.o.d"
  "si_reduction_test"
  "si_reduction_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/si_reduction_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
