# Empty dependencies file for si_reduction_test.
# This may be replaced when dependencies are built.
