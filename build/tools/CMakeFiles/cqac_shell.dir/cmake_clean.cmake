file(REMOVE_RECURSE
  "CMakeFiles/cqac_shell.dir/cqac_shell.cc.o"
  "CMakeFiles/cqac_shell.dir/cqac_shell.cc.o.d"
  "cqac_shell"
  "cqac_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cqac_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
