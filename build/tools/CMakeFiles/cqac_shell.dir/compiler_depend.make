# Empty compiler generated dependencies file for cqac_shell.
# This may be replaced when dependencies are built.
