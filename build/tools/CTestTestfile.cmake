# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cqac_shell_demo "/root/repo/build/tools/cqac_shell" "/root/repo/tools/demo.cqac")
set_tests_properties(cqac_shell_demo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cqac_shell_error_propagation "/root/repo/build/tools/cqac_shell" "/root/repo/tools/badscript.cqac")
set_tests_properties(cqac_shell_error_propagation PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
