// Information integration: the car-dealer scenario of Section 4.1, extended
// with the arithmetic comparisons that motivate the paper.
//
// Three autonomous sources export views over a global schema
//   car(Car, Dealer), loc(Dealer, Place), price(Car, Price)
// and a user asks for cars under a price threshold. Sources expose
// different fragments (one hides the dealer, one pre-filters by price), so
// AC-aware rewriting decides which sources can answer and what residual
// comparisons each needs.
//
// Build & run:  ./build/examples/information_integration
#include <cstdio>

#include "src/eval/evaluate.h"
#include "src/ir/parser.h"
#include "src/rewriting/rewrite_lsi.h"

using namespace cqac;  // NOLINT — example brevity

int main() {
  // Global-schema query: cars located in 'irvine' cheaper than 30 (x1000$).
  Query q = MustParseQuery(
      "q(C) :- car(C, D), loc(D, irvine), price(C, P), P < 30");

  // Source descriptions (local-as-view):
  //  * dealers_web: joins cars to places but hides the dealer;
  //  * budget_cars: pre-filtered price list, only cars under 25;
  //  * pricing_api: full price list, price exposed;
  //  * luxury_cars: cars priced above 80 — unusable for this query.
  ViewSet sources(MustParseRules(
      "dealers_web(C, L) :- car(C, D), loc(D, L).\n"
      "budget_cars(C) :- price(C, P), P < 25.\n"
      "pricing_api(C, P) :- price(C, P).\n"
      "luxury_cars(C) :- price(C, P), P > 80."));

  std::printf("Query:   %s\nSources:\n%s\n\n", q.ToString().c_str(),
              sources.ToString().c_str());

  RewriteStats stats;
  Result<UnionQuery> mcr = RewriteLsiQuery(q, sources, RewriteOptions{},
                                           &stats);
  if (!mcr.ok()) {
    std::fprintf(stderr, "rewriting failed: %s\n",
                 mcr.status().ToString().c_str());
    return 1;
  }
  std::printf("Maximally-contained rewriting (%zu plans, %zu MCDs):\n%s\n\n",
              mcr.value().disjuncts.size(), stats.mcds,
              mcr.value().ToString().c_str());

  // A small integrated world: the sources are materialized from it, then
  // forgotten — the mediator sees only the view instance.
  Database world =
      Database::FromFacts(
          "car(camry, d1). car(accord, d1). car(model3, d2). "
          "car(phantom, d3). "
          "loc(d1, irvine). loc(d2, irvine). loc(d3, losangeles). "
          "price(camry, 28). price(accord, 24). price(model3, 45). "
          "price(phantom, 400).")
          .value();
  Database view_instance = MaterializeViews(sources, world).value();

  Relation certain = EvaluateUnion(mcr.value(), view_instance).value();
  Relation truth = EvaluateQuery(q, world).value();

  std::printf("Answers via sources:");
  for (const Tuple& t : certain) std::printf(" %s", TupleToString(t).c_str());
  std::printf("\nGround truth       :");
  for (const Tuple& t : truth) std::printf(" %s", TupleToString(t).c_str());
  std::printf(
      "\n\nEvery source-derived answer is correct (contained rewriting). "
      "Answers may be missing only when no source combination can certify "
      "them.\n");
  return 0;
}
