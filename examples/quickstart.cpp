// Quickstart: answering a query using views with arithmetic comparisons.
//
// Reproduces Example 1.1 of the paper end to end: parse a query and views,
// compute the maximally-contained rewriting with RewriteLsiQuery, inspect
// the exportable-variable machinery that makes v1 usable (and v2 not), and
// evaluate the rewriting against materialized views.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "src/containment/containment.h"
#include "src/eval/evaluate.h"
#include "src/ir/expansion.h"
#include "src/ir/parser.h"
#include "src/rewriting/rewrite_lsi.h"

using namespace cqac;  // NOLINT — example brevity

int main() {
  // ---- 1. Declare the query and the views (Example 1.1). ------------------
  Query q = MustParseQuery("q1(A) :- r(A), A < 4");
  ViewSet views(MustParseRules(
      "v1(Y, Z) :- r(X), s(Y, Z), Y <= X, X <= Z.\n"
      "v2(Y, Z) :- r(X), s(Y, Z), Y <= X, X < Z."));

  std::printf("Query:  %s\nViews:\n%s\n\n", q.ToString().c_str(),
              views.ToString().c_str());

  // ---- 2. Compute the maximally-contained rewriting (Section 4). ----------
  Result<UnionQuery> mcr = RewriteLsiQuery(q, views);
  if (!mcr.ok()) {
    std::fprintf(stderr, "rewriting failed: %s\n",
                 mcr.status().ToString().c_str());
    return 1;
  }
  std::printf("MCR (union of contained rewritings):\n%s\n\n",
              mcr.value().ToString().c_str());

  // ---- 3. Verify one rewriting symbolically. -------------------------------
  for (const Query& p : mcr.value().disjuncts) {
    Query expansion = ExpandRewriting(p, views).value();
    bool contained = IsContained(expansion, q).value();
    std::printf("  %-40s expansion contained in q1: %s\n",
                p.ToString().c_str(), contained ? "yes" : "NO (bug!)");
  }

  // ---- 4. Evaluate against materialized views. ----------------------------
  // Base data: r = {2, 9}; s = {(2,2), (9,9), (1,5)}.
  Database db = Database::FromFacts(
                    "r(2). r(9). s(2, 2). s(9, 9). s(1, 5).")
                    .value();
  Database view_instance = MaterializeViews(views, db).value();
  Relation direct = EvaluateQuery(q, db).value();
  Relation via_views = EvaluateUnion(mcr.value(), view_instance).value();

  std::printf("\nq1 over the base database:");
  for (const Tuple& t : direct) std::printf(" %s", TupleToString(t).c_str());
  std::printf("\nMCR over the view instance:");
  for (const Tuple& t : via_views)
    std::printf(" %s", TupleToString(t).c_str());
  std::printf("\n(The rewriting computes a sound subset of the answers —"
              " here the tuple (2): r(2) with s(2,2) witnesses it.)\n");
  return 0;
}
