// Recursive maximally-contained rewritings (Example 1.2 / Section 5).
//
// When the views hide the variables a query's comparisons constrain, no
// finite union of conjunctive rewritings is maximally contained: ever-longer
// chains of views (the P_k family) each contribute answers no shorter chain
// finds. The Figure-4 algorithm produces a recursive Datalog program that
// covers them all.
//
// Build & run:  ./build/examples/recursive_mcr
#include <cstdio>

#include "src/eval/evaluate.h"
#include "src/gen/paper_workloads.h"
#include "src/ir/parser.h"
#include "src/rewriting/si_mcr.h"

using namespace cqac;  // NOLINT — example brevity

namespace {

// A base database whose only query witness is the exact P_k pattern: a
// chain 9 -> (interior values in (4,6)) -> 3 of length 2k+2.
Database ChainDatabase(int k) {
  Database db;
  const int n = 2 * k + 2;
  for (int i = 0; i < n; ++i) {
    auto val = [n](int j) {
      if (j == 0) return Rational(9);
      if (j == n) return Rational(3);
      return Rational(4 * (n + 1) + 2 * j, n + 1);
    };
    Status st = db.Insert("e", {Value(val(i)), Value(val(i + 1))});
    if (!st.ok()) std::abort();
  }
  return db;
}

}  // namespace

int main() {
  Query q = workloads::Example12Query();
  ViewSet views = workloads::Example12Views();
  std::printf("Query: %s\nViews:\n%s\n\n", q.ToString().c_str(),
              views.ToString().c_str());

  // ---- The recursive Datalog MCR (Figure 4). ------------------------------
  Result<SiMcr> mcr = RewriteSiQueryDatalog(q, views);
  if (!mcr.ok()) {
    std::fprintf(stderr, "MCR construction failed: %s\n",
                 mcr.status().ToString().c_str());
    return 1;
  }
  std::printf("Recursive Datalog MCR (%zu rules):\n%s\n\n",
              mcr.value().rules.size(), mcr.value().ToString().c_str());

  datalog::Engine engine = mcr.value().MakeEngine();

  // ---- Demonstrate that finite unions fall short. --------------------------
  std::printf("%-6s %-14s %-18s %-14s\n", "k", "P_k fires?",
              "best shorter P_j?", "Datalog MCR?");
  for (int k = 0; k <= 5; ++k) {
    Database db = ChainDatabase(k);
    Database vdb = MaterializeViews(views, db).value();

    bool pk = !EvaluateQuery(workloads::Example12Pk(k), vdb).value().empty();
    bool shorter = false;
    for (int j = 0; j < k; ++j)
      if (!EvaluateQuery(workloads::Example12Pk(j), vdb).value().empty())
        shorter = true;
    Result<Relation> rec = engine.Query(vdb);
    if (!rec.ok()) {
      std::fprintf(stderr, "engine failed: %s\n",
                   rec.status().ToString().c_str());
      return 1;
    }
    std::printf("%-6d %-14s %-18s %-14s\n", k, pk ? "yes" : "no",
                shorter ? "yes" : "no (as claimed)",
                !rec.value().empty() ? "yes" : "NO (bug!)");
  }
  std::printf(
      "\nEach deeper chain needs a longer P_k, yet the single recursive\n"
      "program answers all of them: the MCR lives in Datalog, not in any\n"
      "finite union of CQACs (Proposition 5.1).\n");
  return 0;
}
