// Materialized-view answering for a query optimizer (Section 3 / the
// query-optimization motivation of the introduction).
//
// A warehouse has materialized several aggregate-free views with range
// filters. For each incoming query the optimizer asks: can it be answered
// *equivalently* from the materialized views alone (no base-table access),
// or only partially (a maximally-contained plan)?
//
// Build & run:  ./build/examples/view_selection
#include <cstdio>

#include "src/eval/evaluate.h"
#include "src/ir/parser.h"
#include "src/rewriting/er_search.h"
#include "src/rewriting/rewrite_lsi.h"

using namespace cqac;  // NOLINT — example brevity

namespace {

void Analyze(const std::string& label, const Query& q, const ViewSet& views) {
  std::printf("---- %s\n  query: %s\n", label.c_str(), q.ToString().c_str());
  Result<ErResult> er = FindEquivalentRewriting(q, views);
  if (!er.ok()) {
    std::printf("  error: %s\n", er.status().ToString().c_str());
    return;
  }
  if (er.value().single.has_value()) {
    std::printf("  EQUIVALENT single-plan rewriting:\n    %s\n",
                er.value().single->ToString().c_str());
    return;
  }
  if (er.value().union_er.has_value()) {
    std::printf("  EQUIVALENT as a union of %zu plans:\n",
                er.value().union_er->disjuncts.size());
    for (const Query& d : er.value().union_er->disjuncts)
      std::printf("    %s\n", d.ToString().c_str());
    return;
  }
  Result<UnionQuery> mcr = RewriteLsiQuery(q, views);
  if (mcr.ok() && !mcr.value().empty()) {
    std::printf("  no equivalent plan; maximally-contained plan (%zu CRs):\n",
                mcr.value().disjuncts.size());
    for (const Query& d : mcr.value().disjuncts)
      std::printf("    %s\n", d.ToString().c_str());
  } else {
    std::printf("  views cannot answer this query at all\n");
  }
}

}  // namespace

int main() {
  // Materialized views over sales(Item, Store, Amount) and
  // stores(Store, Region):
  ViewSet mviews(MustParseRules(
      "small_sales(I, S, A) :- sales(I, S, A), A < 100.\n"
      "large_sales(I, S, A) :- sales(I, S, A), 100 <= A.\n"
      "west_stores(S) :- stores(S, west).\n"
      "sales_by_region(I, R, A) :- sales(I, S, A), stores(S, R)."));
  std::printf("Materialized views:\n%s\n\n", mviews.ToString().c_str());

  // Q1 is covered exactly by one view with a residual filter.
  Analyze("Q1: cheap sales",
          MustParseQuery("q(I, A) :- sales(I, S, A), A < 50"), mviews);

  // Q2 needs the union of the two partitions to be equivalent.
  Analyze("Q2: all sales",
          MustParseQuery("q(I, A) :- sales(I, S, A), A < 100000"), mviews);

  // Q3 joins across views; equivalent via composition.
  Analyze("Q3: cheap west-coast sales",
          MustParseQuery(
              "q(I) :- sales(I, S, A), stores(S, west), A < 100"),
          mviews);

  // Q4 asks for the full store directory, but only the west region was
  // materialized: no equivalent plan exists, only the contained plan that
  // returns the west stores.
  Analyze("Q4: store directory",
          MustParseQuery("q(S, R) :- stores(S, R)"), mviews);
  return 0;
}
