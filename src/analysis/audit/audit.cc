#include "src/analysis/audit/audit.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <optional>
#include <set>
#include <utility>

#include "src/analysis/certificate.h"
#include "src/base/function_ref.h"
#include "src/base/strings.h"
#include "src/constraints/preprocess.h"
#include "src/eval/evaluate.h"
#include "src/ir/canonical.h"
#include "src/ir/expansion.h"
#include "src/ivm/delta.h"
#include "src/rewriting/bucket.h"
#include "src/rewriting/er_search.h"
#include "src/rewriting/rewrite_lsi.h"
#include "src/rewriting/witness.h"

namespace cqac {
namespace audit {
namespace {

/// The shared rejection prefix (same convention as src/analysis/
/// certificate.cc) so callers can grep one string for any rejected
/// certificate.
template <typename... Parts>
Status Invalid(const Parts&... parts) {
  return Status::InvalidArgument(StrCat("certificate rejected: ", parts...));
}

/// Re-derives one comparison's kind from its structure alone (no Comparison
/// helper methods — the point is an independent derivation).
CompKind DeriveKind(const Comparison& c) {
  if (c.op == CompOp::kEq) return CompKind::kEquality;
  const bool lhs_num = c.lhs.is_const() && c.lhs.value().is_number();
  const bool rhs_num = c.rhs.is_const() && c.rhs.value().is_number();
  if (c.lhs.is_var() && rhs_num) return CompKind::kLsi;
  if (lhs_num && c.rhs.is_var()) return CompKind::kRsi;
  if (c.lhs.is_var() && c.rhs.is_var()) return CompKind::kVarVar;
  return CompKind::kOther;
}

/// Re-derives the class from the kinds via the lattice rules.
AcClass DeriveClass(const std::vector<CompKind>& kinds) {
  if (kinds.empty()) return AcClass::kNone;
  bool all_lsi = true, all_rsi = true;
  for (CompKind k : kinds) {
    if (k != CompKind::kLsi && k != CompKind::kRsi) return AcClass::kGeneral;
    if (k != CompKind::kLsi) all_lsi = false;
    if (k != CompKind::kRsi) all_rsi = false;
  }
  if (all_lsi) return AcClass::kLsi;
  if (all_rsi) return AcClass::kRsi;
  return AcClass::kSi;
}

/// Counts the satisfying body-variable assignments of `view` over `db` that
/// project onto head tuple `t` — a naive backtracking counter, independent
/// of the batch join engine and of the IVM delta algebra. Unsupported when
/// a comparison references a variable no body atom binds.
Result<int64_t> CountDerivations(const Query& view, const Database& db,
                                 const Tuple& t) {
  if (view.head().args.size() != t.size())
    return Status::InvalidArgument("tuple arity does not match the view head");
  std::map<int, Value> binding;
  for (size_t i = 0; i < t.size(); ++i) {
    const Term& h = view.head().args[i];
    if (h.is_const()) {
      if (h.value() != t[i]) return 0;
      continue;
    }
    auto it = binding.find(h.var());
    if (it == binding.end())
      binding.emplace(h.var(), t[i]);
    else if (it->second != t[i])
      return 0;
  }

  std::set<int> body_vars = view.BodyVars();
  for (const Comparison& c : view.comparisons())
    for (const Term* term : {&c.lhs, &c.rhs})
      if (term->is_var() && !body_vars.count(term->var()) &&
          !binding.count(term->var()))
        return Status::Unsupported(
            "comparison variable bound by no body atom");

  int64_t count = 0;
  Status bad = Status::OK();
  // Recurse over body atoms; the tuple chosen for an atom is forced by the
  // final assignment, so leaves biject with satisfying assignments.
  auto recurse = [&](auto&& self, size_t atom_index) -> void {
    if (!bad.ok()) return;
    if (atom_index == view.body().size()) {
      for (const Comparison& c : view.comparisons()) {
        auto resolve = [&](const Term& term) -> const Value* {
          if (term.is_const()) return &term.value();
          auto it = binding.find(term.var());
          return it == binding.end() ? nullptr : &it->second;
        };
        const Value* l = resolve(c.lhs);
        const Value* r = resolve(c.rhs);
        if (l == nullptr || r == nullptr) {
          bad = Status::Unsupported("unbound comparison variable");
          return;
        }
        if (!EvaluateGroundComparison(*l, c.op, *r)) return;
      }
      ++count;
      return;
    }
    const Atom& atom = view.body()[atom_index];
    for (const Tuple& cand : db.Get(atom.predicate)) {
      if (cand.size() != atom.args.size()) continue;
      std::vector<int> bound_here;
      bool match = true;
      for (size_t i = 0; i < cand.size() && match; ++i) {
        const Term& term = atom.args[i];
        if (term.is_const()) {
          match = term.value() == cand[i];
          continue;
        }
        auto it = binding.find(term.var());
        if (it == binding.end()) {
          binding.emplace(term.var(), cand[i]);
          bound_here.push_back(term.var());
        } else {
          match = it->second == cand[i];
        }
      }
      if (match) self(self, atom_index + 1);
      for (int v : bound_here) binding.erase(v);
    }
  };
  recurse(recurse, 0);
  CQAC_RETURN_IF_ERROR(bad);
  return count;
}

/// The shared shape/summary/presence checks of both maintenance checkers.
/// `derived_count(pred, tuple)` supplies the independent post-state count;
/// `present(pred, tuple)` the post-state membership claim to compare with.
Status CheckDeltasAndSummary(
    EngineContext& ctx, const ivm::MaintenanceCertificate& cert,
    FunctionRef<Result<int64_t>(const std::string&, const Tuple&)>
        derived_count,
    FunctionRef<bool(const std::string&, const Tuple&)> present) {
  size_t net_added = 0, net_removed = 0, replayed = 0;
  for (const ivm::ViewDelta& vd : cert.views) {
    for (size_t i = 0; i < vd.deltas.size(); ++i) {
      const ivm::TupleCountDelta& d = vd.deltas[i];
      if (i > 0 && !(vd.deltas[i - 1].tuple < d.tuple))
        return Invalid("touched tuples of '", vd.predicate,
                       "' are not in ascending order");
      if (d.old_count == d.new_count)
        return Invalid("touched tuple ", TupleToString(d.tuple), " of '",
                       vd.predicate, "' has no count transition");
      if (d.old_count < 0 || d.new_count < 0)
        return Invalid("negative derivation count on ",
                       TupleToString(d.tuple), " of '", vd.predicate, "'");
      CQAC_ASSIGN_OR_RETURN(int64_t truth,
                            derived_count(vd.predicate, d.tuple));
      if (truth != d.new_count)
        return Invalid("post-count of ", TupleToString(d.tuple), " in '",
                       vd.predicate, "' is ", d.new_count,
                       " but the independent re-derivation counts ", truth);
      if ((d.new_count > 0) != present(vd.predicate, d.tuple))
        return Invalid("presence of ", TupleToString(d.tuple), " in '",
                       vd.predicate,
                       "' disagrees with its claimed post-count");
      if (d.old_count == 0) ++net_added;
      if (d.new_count == 0) ++net_removed;
      ++replayed;
    }
  }
  ctx.stats().audit_replayed_tuples += replayed;

  const ivm::ApplySummary& s = cert.summary;
  if (s.inserted == 0 || s.retracted == 0) {
    // Single-sided batch: the touched set accounts for the summary exactly.
    if (net_added != s.view_tuples_added || net_removed != s.view_tuples_removed)
      return Invalid("summary says ", s.view_tuples_added, " added / ",
                     s.view_tuples_removed, " removed view tuples but the "
                     "touched set shows ", net_added, " / ", net_removed);
  } else {
    // Mixed batch: a tuple removed by the retract phase and re-added by the
    // insert phase appears in both summary counters but nets out of the
    // touched set, so only the net and the bounds are checkable.
    if (net_added > s.view_tuples_added || net_removed > s.view_tuples_removed)
      return Invalid("touched set shows more view-tuple changes (",
                     net_added, " added / ", net_removed,
                     " removed) than the summary admits");
    const int64_t net_summary =
        static_cast<int64_t>(s.view_tuples_added) -
        static_cast<int64_t>(s.view_tuples_removed);
    const int64_t net_touched = static_cast<int64_t>(net_added) -
                                static_cast<int64_t>(net_removed);
    if (net_summary != net_touched)
      return Invalid("summary nets ", net_summary,
                     " view tuples but the touched set nets ", net_touched);
  }
  return Status::OK();
}

}  // namespace

const char* ObligationKindName(ObligationKind k) {
  switch (k) {
    case ObligationKind::kClassification:
      return "classification";
    case ObligationKind::kRewrite:
      return "rewrite";
    case ObligationKind::kEquivalentRewriting:
      return "equivalent-rewriting";
    case ObligationKind::kSiMcrRules:
      return "si-mcr-rules";
    case ObligationKind::kSiMcrUnfold:
      return "si-mcr-unfold";
    case ObligationKind::kMinimizeQuery:
      return "minimize-query";
    case ObligationKind::kMinimizeUnion:
      return "minimize-union";
    case ObligationKind::kIvmCommit:
      return "ivm-commit";
    case ObligationKind::kEval:
      return "eval";
  }
  return "?";
}

bool AuditReport::ok() const { return failures() == 0; }

size_t AuditReport::failures() const {
  size_t n = 0;
  for (const Obligation& o : obligations)
    if (o.failed()) ++n;
  return n;
}

size_t AuditReport::skipped() const {
  size_t n = 0;
  for (const Obligation& o : obligations)
    if (o.skipped()) ++n;
  return n;
}

const Obligation* AuditReport::FirstFailure() const {
  for (const Obligation& o : obligations)
    if (o.failed()) return &o;
  return nullptr;
}

int AuditReport::ExitCode() const {
  const Obligation* f = FirstFailure();
  return f == nullptr ? 0 : static_cast<int>(f->kind);
}

std::string AuditReport::ToString() const {
  std::string out;
  for (const Obligation& o : obligations) {
    const char* verdict = o.status.ok() ? "ok  " : o.skipped() ? "skip" : "FAIL";
    out += StrCat("[", verdict, "] ", ObligationKindName(o.kind), " ", o.label);
    if (!o.status.ok()) out += StrCat(": ", o.status.message());
    out += "\n";
  }
  out += StrCat(obligations.size(), " obligations, ", failures(),
                " failed, ", skipped(), " skipped\n");
  return out;
}

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20)
          out += StrCat("\\u00", c < 0x10 ? "0" : "1",
                        "0123456789abcdef"[c & 0xf]);
        else
          out += c;
    }
  }
  return out;
}

}  // namespace

std::string AuditReport::ToJson() const {
  std::string out = "{\"obligations\":[";
  for (size_t i = 0; i < obligations.size(); ++i) {
    const Obligation& o = obligations[i];
    if (i > 0) out += ",";
    out += StrCat("{\"kind\":\"", ObligationKindName(o.kind),
                  "\",\"code\":", static_cast<int>(o.kind), ",\"label\":\"",
                  JsonEscape(o.label), "\",\"verdict\":\"",
                  o.status.ok() ? "certified" : o.skipped() ? "skipped"
                                                            : "rejected",
                  "\"");
    if (!o.status.ok())
      out += StrCat(",\"message\":\"", JsonEscape(o.status.message()), "\"");
    out += "}";
  }
  out += StrCat("],\"failures\":", failures(), ",\"skipped\":", skipped(),
                ",\"exit_code\":", ExitCode(), "}");
  return out;
}

Status CheckClassification(const Query& q, const ClassificationEvidence& ev) {
  const std::vector<Comparison>& comps = q.comparisons();
  if (ev.kinds.size() != comps.size())
    return Invalid("evidence lists ", ev.kinds.size(), " comparisons, query has ",
                   comps.size());
  std::vector<CompKind> kinds;
  kinds.reserve(comps.size());
  for (const Comparison& c : comps) kinds.push_back(DeriveKind(c));
  for (size_t i = 0; i < kinds.size(); ++i)
    if (kinds[i] != ev.kinds[i])
      return Invalid("comparison #", i, " is ", CompKindName(kinds[i]),
                     " but the evidence claims ", CompKindName(ev.kinds[i]));

  const AcClass cls = DeriveClass(kinds);
  if (cls != ev.info.ac_class)
    return Invalid("the kinds derive class ", AcClassName(cls),
                   " but the evidence claims ", AcClassName(ev.info.ac_class));

  size_t lsi = 0, rsi = 0;
  bool all_si = true;
  for (CompKind k : kinds) {
    if (k == CompKind::kLsi)
      ++lsi;
    else if (k == CompKind::kRsi)
      ++rsi;
    else
      all_si = false;
  }
  const bool cqac_si = all_si && (lsi <= 1 || rsi <= 1);
  if (cqac_si != ev.info.cqac_si)
    return Invalid("the kinds derive cqac_si=", cqac_si ? "true" : "false",
                   " but the evidence claims the opposite");

  bool any_ordered = false, all_strict = true, all_nonstrict = true;
  for (const Comparison& c : comps) {
    if (c.op == CompOp::kEq) continue;
    any_ordered = true;
    (c.op == CompOp::kLt ? all_nonstrict : all_strict) = false;
  }
  if (ev.info.closed != (any_ordered && all_nonstrict) ||
      ev.info.open != (any_ordered && all_strict))
    return Invalid("closed/open flags disagree with the comparison operators");

  // The deciding indices must justify the class per the documented
  // convention (classify.h).
  std::vector<size_t> want;
  switch (cls) {
    case AcClass::kNone:
      break;
    case AcClass::kLsi:
    case AcClass::kRsi:
      for (size_t i = 0; i < kinds.size(); ++i) want.push_back(i);
      break;
    case AcClass::kSi:
      for (CompKind target : {CompKind::kLsi, CompKind::kRsi})
        for (size_t i = 0; i < kinds.size(); ++i)
          if (kinds[i] == target) {
            want.push_back(i);
            break;
          }
      break;
    case AcClass::kGeneral:
      for (size_t i = 0; i < kinds.size(); ++i)
        if (kinds[i] != CompKind::kLsi && kinds[i] != CompKind::kRsi) {
          want.push_back(i);
          break;
        }
      break;
  }
  if (want != ev.deciding)
    return Invalid("the deciding comparison indices do not justify class ",
                   AcClassName(cls));
  return Status::OK();
}

Status CheckMinimization(EngineContext& ctx, const MinimizationWitness& w) {
  (void)ctx;
  if (w.minimized.body().size() > w.original.body().size())
    return Invalid("the minimized query has more subgoals than its input");

  // Both homomorphism witnesses must be genuine and must really connect
  // the claimed pair (compared up to renaming via canonical forms).
  CQAC_RETURN_IF_ERROR(CheckContainmentWitness(w.forward));
  CQAC_RETURN_IF_ERROR(CheckContainmentWitness(w.backward));
  CQAC_ASSIGN_OR_RETURN(Query orig_pp, Preprocess(w.original));
  CQAC_ASSIGN_OR_RETURN(Query min_pp, Preprocess(w.minimized));
  const std::string orig_text = Canonicalize(orig_pp).text;
  const std::string min_text = Canonicalize(min_pp).text;
  if (Canonicalize(w.forward.contained).text != orig_text ||
      Canonicalize(w.forward.container).text != min_text)
    return Invalid("the forward witness does not connect the original to "
                   "the minimized query");
  if (Canonicalize(w.backward.contained).text != min_text ||
      Canonicalize(w.backward.container).text != orig_text)
    return Invalid("the backward witness does not connect the minimized "
                   "query to the original");

  // Cross-check the equivalence with the from-scratch canonical-database
  // procedure, independent of the homomorphism witnesses entirely.
  CQAC_ASSIGN_OR_RETURN(bool fwd,
                        IsContainedByCanonicalDatabases(orig_pp, min_pp));
  if (!fwd)
    return Invalid("canonical databases refute original ⊆ minimized");
  CQAC_ASSIGN_OR_RETURN(bool bwd,
                        IsContainedByCanonicalDatabases(min_pp, orig_pp));
  if (!bwd)
    return Invalid("canonical databases refute minimized ⊆ original");
  return Status::OK();
}

Status CheckUnionMinimization(EngineContext& ctx,
                              const UnionMinimizationWitness& w) {
  const size_t n = w.original.disjuncts.size();
  std::vector<bool> seen(n, false);
  for (const std::vector<size_t>* part : {&w.kept, &w.dropped}) {
    for (size_t i = 0; i < part->size(); ++i) {
      const size_t idx = (*part)[i];
      if (idx >= n) return Invalid("witness index ", idx, " out of range");
      if (seen[idx])
        return Invalid("witness index ", idx, " appears twice");
      seen[idx] = true;
      if (i > 0 && (*part)[i - 1] >= idx)
        return Invalid("witness indices are not ascending");
    }
  }
  if (std::find(seen.begin(), seen.end(), false) != seen.end())
    return Invalid("kept and dropped do not partition the original union");

  if (w.minimized.disjuncts.size() != w.kept.size())
    return Invalid("the minimized union has ", w.minimized.disjuncts.size(),
                   " disjuncts but the witness keeps ", w.kept.size());
  for (size_t i = 0; i < w.kept.size(); ++i)
    if (w.minimized.disjuncts[i].ToString() !=
        w.original.disjuncts[w.kept[i]].ToString())
      return Invalid("kept disjunct #", i,
                     " is not original disjunct #", w.kept[i]);

  // Transitive coverage: every dropped disjunct is contained in the union
  // of the FINAL kept set (decided fresh, not replayed from the greedy
  // pass's intermediate unions).
  for (size_t idx : w.dropped) {
    CQAC_ASSIGN_OR_RETURN(
        bool covered,
        IsContainedInUnion(ctx, w.original.disjuncts[idx], w.minimized));
    if (!covered)
      return Invalid("dropped disjunct #", idx,
                     " is not contained in the kept union");
  }
  return Status::OK();
}

Status CheckSiMcrUnfolding(EngineContext& ctx, const Query& q,
                           const ViewSet& views, const SiMcr& mcr,
                           const UnfoldOptions& options) {
  Result<UnfoldResult> unfolded = UnfoldSiMcr(mcr, options);
  if (!unfolded.ok()) {
    if (unfolded.status().code() == StatusCode::kResourceExhausted)
      return Status::Unsupported(
          StrCat("unfolding budget exhausted: ", unfolded.status().message()));
    return unfolded.status();
  }
  bool q_inconsistent = false;
  Result<Query> q_pp = Preprocess(q);
  if (!q_pp.ok()) {
    if (q_pp.status().code() != StatusCode::kInconsistent)
      return q_pp.status();
    q_inconsistent = true;
  }
  for (size_t i = 0; i < unfolded.value().unfolding.disjuncts.size(); ++i) {
    const Query& d = unfolded.value().unfolding.disjuncts[i];
    if (q_inconsistent)
      return Invalid("the query is inconsistent but the MCR unfolds to a "
                     "nonempty disjunct");
    CQAC_ASSIGN_OR_RETURN(Query exp, ExpandRewriting(d, views));
    // The canonical-database check enumerates total preorders over the
    // expansion's variables and constants; past a handful of values the
    // obligation is honestly skipped rather than attempted.
    std::set<int> order_vars;
    std::set<Value> order_consts;
    auto note = [&](const Term& t) {
      if (t.is_var())
        order_vars.insert(t.var());
      else
        order_consts.insert(t.value());
    };
    for (const Term& t : exp.head().args) note(t);
    for (const Atom& a : exp.body())
      for (const Term& t : a.args) note(t);
    for (const Comparison& c : exp.comparisons()) {
      note(c.lhs);
      note(c.rhs);
    }
    size_t order_values = order_vars.size() + order_consts.size();
    if (order_values > options.max_containment_values)
      return Status::Unsupported(
          StrCat("unfolded disjunct #", i, " orders ", order_values,
                 " values, over the certification budget of ",
                 options.max_containment_values));
    CQAC_ASSIGN_OR_RETURN(bool contained,
                          IsContainedByCanonicalDatabases(exp, q_pp.value()));
    if (!contained)
      return Invalid("unfolded disjunct #", i, " (", d.ToString(),
                     ") expands outside the query");
    ++ctx.stats().audit_unfold_disjuncts;
  }
  return Status::OK();
}

Status CheckMaintenance(EngineContext& ctx,
                        const std::vector<Query>& view_queries,
                        const ivm::MaintenanceCertificate& cert,
                        const Database& post_base,
                        const Database& post_views) {
  if (!cert.counting)
    return Invalid("a counting maintainer must emit a counting certificate");
  std::map<std::string, const Query*> by_pred;
  for (const Query& v : view_queries)
    by_pred[v.head().predicate] = &v;
  if (cert.views.size() != view_queries.size())
    return Invalid("certificate covers ", cert.views.size(),
                   " views, the maintainer holds ", view_queries.size());
  for (const ivm::ViewDelta& vd : cert.views)
    if (!by_pred.count(vd.predicate))
      return Invalid("certificate names unknown view '", vd.predicate, "'");

  CQAC_RETURN_IF_ERROR(CheckDeltasAndSummary(
      ctx, cert,
      [&](const std::string& pred, const Tuple& t) -> Result<int64_t> {
        return CountDerivations(*by_pred.at(pred), post_base, t);
      },
      [&](const std::string& pred, const Tuple& t) {
        return post_views.Contains(pred, t);
      }));

  // Whole-state audit: every maintained view extension equals a from-scratch
  // reference evaluation over the post-commit base.
  for (const Query& v : view_queries) {
    CQAC_ASSIGN_OR_RETURN(Relation truth, EvaluateQueryReference(v, post_base));
    if (truth != post_views.Get(v.head().predicate))
      return Invalid("maintained extension of '", v.head().predicate,
                     "' differs from the reference evaluation");
  }
  return Status::OK();
}

Status CheckProgramMaintenance(EngineContext& ctx,
                               const datalog::Engine& engine,
                               const ivm::MaintenanceCertificate& cert,
                               const Database& post_edb,
                               const Database& post_idb) {
  if (cert.counting)
    return Invalid("a DRed maintainer must emit a presence certificate");
  for (const ivm::ViewDelta& vd : cert.views)
    for (const ivm::TupleCountDelta& d : vd.deltas)
      if (d.old_count > 1 || d.new_count > 1)
        return Invalid("presence counts must be 0/1, got ", d.old_count,
                       " -> ", d.new_count, " on ", TupleToString(d.tuple));

  CQAC_ASSIGN_OR_RETURN(Database fresh, engine.Evaluate(post_edb));
  CQAC_RETURN_IF_ERROR(CheckDeltasAndSummary(
      ctx, cert,
      [&](const std::string& pred, const Tuple& t) -> Result<int64_t> {
        return fresh.Contains(pred, t) ? 1 : 0;
      },
      [&](const std::string& pred, const Tuple& t) {
        return post_idb.Contains(pred, t);
      }));

  // Whole-state audit: the maintained IDB equals a fresh fixpoint.
  for (const std::string& pred : engine.IdbPredicates())
    if (fresh.Get(pred) != post_idb.Get(pred))
      return Invalid("maintained IDB relation '", pred,
                     "' differs from a fresh fixpoint");
  return Status::OK();
}

namespace {

/// Every second tuple of `db`, used to drive a retract batch that leaves
/// the maintained state nonempty.
Database EveryOtherTuple(const Database& db) {
  Database out;
  size_t i = 0;
  for (const auto& [pred, rel] : db.relations())
    for (const Tuple& t : rel)
      if (i++ % 2 == 0) (void)out.Insert(pred, t);
  return out;
}

}  // namespace

Status AuditAll(EngineContext& ctx, const AuditInputs& inputs,
                const AuditOptions& options, AuditReport* report) {
  const Query& q = inputs.query;
  const std::string& name = q.head().predicate;

  auto run = [&](ObligationKind kind, std::string label, auto&& fn) {
    const auto t0 = std::chrono::steady_clock::now();
    Status s = fn();
    ctx.stats().audit_wall_ns +=
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count();
    ++ctx.stats().audit_obligations;
    Obligation o;
    o.kind = kind;
    o.label = std::move(label);
    o.status = std::move(s);
    if (o.failed()) ++ctx.stats().audit_failures;
    report->obligations.push_back(std::move(o));
  };

  run(ObligationKind::kClassification, name, [&] {
    return CheckClassification(q, ClassifyQueryWithEvidence(q));
  });

  const AcClass cls = q.Classify();
  std::optional<SiMcr> mcr;
  UnionQuery rewriting;
  bool have_union = false;
  if (inputs.views.size() > 0) {
    // The same dispatch the serve layer uses (src/serve/service.cc), so the
    // audited path is the shipped path.
    const bool si_path = q.IsCqacSi() && !q.IsConjunctiveOnly() &&
                         cls != AcClass::kNone && cls != AcClass::kLsi &&
                         cls != AcClass::kRsi && inputs.views.AllSiOnly();
    if (si_path) {
      Result<SiMcr> r = RewriteSiQueryDatalog(ctx, q, inputs.views);
      if (!r.ok()) {
        run(ObligationKind::kSiMcrRules, name, [&] { return r.status(); });
      } else {
        mcr = std::move(r.value());
        run(ObligationKind::kSiMcrRules, name,
            [&] { return CheckSiMcr(q, inputs.views, *mcr); });
        run(ObligationKind::kSiMcrUnfold, name, [&] {
          return CheckSiMcrUnfolding(ctx, q, inputs.views, *mcr,
                                     options.unfold);
        });
      }
    } else {
      RewritingWitness w;
      const bool lsi_path = cls == AcClass::kNone || cls == AcClass::kLsi ||
                            cls == AcClass::kRsi;
      Result<UnionQuery> r =
          lsi_path ? RewriteLsiQuery(ctx, q, inputs.views, {}, nullptr, &w)
                   : BucketRewrite(ctx, q, inputs.views, {}, nullptr, &w);
      if (!r.ok()) {
        run(ObligationKind::kRewrite, name, [&] { return r.status(); });
      } else {
        rewriting = std::move(r.value());
        have_union = true;
        run(ObligationKind::kRewrite, name, [&] {
          return CheckRewritingWitness(q, inputs.views, rewriting, w);
        });
      }
    }

    if (q.IsCqacSi() && inputs.views.AllVariablesDistinguished()) {
      ErWitness ew;
      Result<ErResult> er = FindEquivalentRewriting(ctx, q, inputs.views, {}, &ew);
      if (er.ok() && er.value().found())
        run(ObligationKind::kEquivalentRewriting, name, [&] {
          return CheckErResult(q, inputs.views, er.value(), ew);
        });
    }

    if (have_union && !rewriting.disjuncts.empty()) {
      UnionMinimizationWitness uw;
      Result<UnionQuery> mu = MinimizeUnion(ctx, rewriting, &uw);
      run(ObligationKind::kMinimizeUnion, name, [&]() -> Status {
        CQAC_RETURN_IF_ERROR(mu.status());
        return CheckUnionMinimization(ctx, uw);
      });
    }
  }

  {
    MinimizationWitness mw;
    Result<Query> m = MinimizeQuery(ctx, q, &mw);
    run(ObligationKind::kMinimizeQuery, name, [&]() -> Status {
      if (!m.ok()) {
        // An inconsistent query denotes the empty relation; minimization is
        // not meaningful, which is a skip, not a failure.
        if (m.status().code() == StatusCode::kInconsistent)
          return Status::Unsupported("query is inconsistent");
        return m.status();
      }
      return CheckMinimization(ctx, mw);
    });
  }

  const bool have_facts = inputs.facts.TotalTuples() > 0;
  if (options.audit_eval && have_facts) {
    run(ObligationKind::kEval, name, [&]() -> Status {
      CQAC_ASSIGN_OR_RETURN(Relation fast, EvaluateQuery(ctx, q, inputs.facts));
      CQAC_ASSIGN_OR_RETURN(Relation ref,
                            EvaluateQueryReference(q, inputs.facts));
      if (fast != ref)
        return Invalid("the batch evaluator disagrees with the reference "
                       "evaluator on the given facts");
      return Status::OK();
    });
  }

  if (options.audit_ivm && have_facts && inputs.views.size() > 0) {
    ivm::MaterializedViewSet mvs;
    Status setup = Status::OK();
    for (const Query& v : inputs.views.views()) {
      setup = mvs.AddView(ctx, v);
      if (!setup.ok()) break;
    }
    if (setup.ok()) {
      run(ObligationKind::kIvmCommit, StrCat(name, " insert"), [&]() -> Status {
        ivm::MaintenanceCertificate cert;
        CQAC_RETURN_IF_ERROR(
            mvs.ApplyInsert(ctx, inputs.facts, {}, &cert).status());
        return CheckMaintenance(ctx, mvs.view_queries(), cert, mvs.base(),
                                mvs.views());
      });
      run(ObligationKind::kIvmCommit, StrCat(name, " retract"), [&]() -> Status {
        ivm::MaintenanceCertificate cert;
        CQAC_RETURN_IF_ERROR(
            mvs.ApplyRetract(ctx, EveryOtherTuple(inputs.facts), {}, &cert)
                .status());
        return CheckMaintenance(ctx, mvs.view_queries(), cert, mvs.base(),
                                mvs.views());
      });
    }

    if (mcr.has_value() && !mcr->rules.empty()) {
      run(ObligationKind::kIvmCommit, StrCat(name, " datalog retract"),
          [&]() -> Status {
            CQAC_ASSIGN_OR_RETURN(Database vext,
                                  MaterializeViews(inputs.views, inputs.facts));
            ivm::MaintainedProgram prog(mcr->MakeEngine());
            CQAC_RETURN_IF_ERROR(prog.Initialize(ctx, vext));
            ivm::DeltaDatabase delta(&prog.edb());
            CQAC_RETURN_IF_ERROR(delta.StageRetractAll(EveryOtherTuple(vext)));
            ivm::MaintenanceCertificate cert;
            CQAC_RETURN_IF_ERROR(prog.Apply(ctx, delta, {}, &cert).status());
            return CheckProgramMaintenance(ctx, prog.engine(), cert,
                                           prog.edb(), prog.idb());
          });
    }
  }
  return Status::OK();
}

}  // namespace audit
}  // namespace cqac
