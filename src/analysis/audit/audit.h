// Whole-program certification: an independent audit pass that re-proves
// every engine result with slow-but-obvious reference procedures.
//
// The engine layers already verify their own outputs (src/analysis/
// certificate.h re-checks rewriting witnesses). The auditor goes further
// and certifies the results the certificate checker could not reach:
//
//  * SI-MCR soundness — the Datalog MCR is unfolded for k bounded rounds
//    (src/analysis/audit/unfold_mcr.h) and every unfolded disjunct's
//    expansion is certified contained in the query by the from-scratch
//    canonical-database test, independently of the production containment
//    stack;
//  * minimization — MinimizeQuery/MinimizeUnion emit witnesses
//    (MinimizationWitness / UnionMinimizationWitness) whose homomorphisms
//    are re-checked by substitution and whose equivalences are re-decided
//    by canonical databases;
//  * IVM maintenance — every certified Apply (ivm::MaintenanceCertificate)
//    is replayed: each touched tuple's post-count is re-derived by a naive
//    backtracking counter over the post-commit base, and the whole
//    maintained state is compared against a from-scratch re-evaluation;
//  * classification — ClassificationEvidence is re-derived from the
//    comparison structure alone and checked against the lattice rules.
//
// Conventions follow src/analysis/certificate.h: OK means certified,
// InvalidArgument("certificate rejected: ...") means the certificate is
// wrong, Unsupported means the reference procedure cannot decide (counted
// as skipped, not failed). Every check bumps the audit_* counters of the
// context's EngineStats.
#ifndef CQAC_ANALYSIS_AUDIT_AUDIT_H_
#define CQAC_ANALYSIS_AUDIT_AUDIT_H_

#include <cstddef>
#include <string>
#include <vector>

#include "src/analysis/classify.h"
#include "src/analysis/audit/unfold_mcr.h"
#include "src/base/status.h"
#include "src/containment/containment.h"
#include "src/containment/minimize.h"
#include "src/datalog/engine.h"
#include "src/engine/context.h"
#include "src/eval/database.h"
#include "src/ir/query.h"
#include "src/ir/view.h"
#include "src/ivm/maintain.h"
#include "src/rewriting/si_mcr.h"

namespace cqac {
namespace audit {

/// What one proof obligation certifies. The numeric value is stable — it is
/// the cqac_audit exit code for the first failed obligation.
enum class ObligationKind {
  kClassification = 1,       // evidence matches the comparison structure
  kRewrite = 2,              // UCQAC rewriting witness re-checked
  kEquivalentRewriting = 3,  // equivalent-rewriting result re-checked
  kSiMcrRules = 4,           // MCR rules re-validated one by one
  kSiMcrUnfold = 5,          // bounded unfolding certified contained in q
  kMinimizeQuery = 6,        // minimization witness re-checked
  kMinimizeUnion = 7,        // union minimization coverage re-checked
  kIvmCommit = 8,            // maintenance certificate replayed
  kEval = 9,                 // engine evaluation vs reference evaluation
};

const char* ObligationKindName(ObligationKind k);

/// One checked proof obligation: what was certified and the verdict.
struct Obligation {
  ObligationKind kind = ObligationKind::kClassification;
  std::string label;  // e.g. the query name or "insert batch #1"
  Status status;      // OK = certified, InvalidArgument = rejected,
                      // Unsupported = skipped
  bool failed() const {
    return !status.ok() && status.code() != StatusCode::kUnsupported;
  }
  bool skipped() const { return status.code() == StatusCode::kUnsupported; }
};

/// The result of one audit run, in check order.
struct AuditReport {
  std::vector<Obligation> obligations;

  bool ok() const;
  size_t failures() const;
  size_t skipped() const;
  /// The first failed obligation, or nullptr when everything certified.
  const Obligation* FirstFailure() const;
  /// The process exit code: 0 when ok(), else the kind of FirstFailure().
  int ExitCode() const;

  /// One line per obligation plus a summary line.
  std::string ToString() const;
  /// A self-contained JSON object (no external JSON dependency).
  std::string ToJson() const;
};

// ---- Individual reference checks ------------------------------------------

/// Re-derives every comparison's kind from its structure and the class from
/// the kinds via the lattice rules, then compares with `ev`.
Status CheckClassification(const Query& q, const ClassificationEvidence& ev);

/// Re-checks a minimization witness: both containment witnesses are genuine
/// (CheckContainmentWitness), they really connect `original` and
/// `minimized`, the minimized query is no larger, and both directions are
/// cross-checked by the from-scratch canonical-database procedure.
Status CheckMinimization(EngineContext& ctx, const MinimizationWitness& w);

/// Re-checks a union minimization: kept/dropped is a partition of the
/// original disjuncts, `minimized` is exactly the kept disjuncts, and every
/// dropped disjunct is contained in the union of the kept ones (decided
/// fresh, transitive-coverage property).
Status CheckUnionMinimization(EngineContext& ctx,
                              const UnionMinimizationWitness& w);

/// Unfolds `mcr` for bounded rounds and certifies every surviving disjunct:
/// its expansion over `views` is contained in `q` by canonical databases.
/// Adds each certified disjunct to audit_unfold_disjuncts. Unsupported when
/// the unfolding exhausts its budget before producing a checkable set.
Status CheckSiMcrUnfolding(EngineContext& ctx, const Query& q,
                           const ViewSet& views, const SiMcr& mcr,
                           const UnfoldOptions& options = {});

/// Replays a counting maintenance certificate from MaterializedViewSet:
/// summary consistency, per-touched-tuple derivation counts re-derived by
/// an independent backtracking counter over `post_base`, presence agreement
/// with `post_views`, and whole-state equality of every view against
/// EvaluateQueryReference.
Status CheckMaintenance(EngineContext& ctx,
                        const std::vector<Query>& view_queries,
                        const ivm::MaintenanceCertificate& cert,
                        const Database& post_base, const Database& post_views);

/// Replays a presence maintenance certificate from MaintainedProgram: the
/// fresh fixpoint of `engine` over `post_edb` must equal `post_idb`, and
/// every touched tuple's 0/1 transition must agree with it.
Status CheckProgramMaintenance(EngineContext& ctx,
                               const datalog::Engine& engine,
                               const ivm::MaintenanceCertificate& cert,
                               const Database& post_edb,
                               const Database& post_idb);

// ---- The whole-program pass -----------------------------------------------

struct AuditOptions {
  UnfoldOptions unfold;
  /// Run the IVM commit obligations (needs facts). On by default.
  bool audit_ivm = true;
  /// Run the evaluation obligation (needs facts). On by default.
  bool audit_eval = true;
};

/// One audit subject: a query, the views it is rewritten with, and base
/// facts for the dynamic obligations (IVM replay, evaluation).
struct AuditInputs {
  Query query;
  ViewSet views;
  Database facts;
};

/// Runs every applicable obligation for `inputs` and appends to `report`:
/// classification, the same rewriting dispatch the serve layer uses (LSI/
/// bucket with witness re-check, or SI-MCR with rule re-validation plus
/// bounded-unfolding certification), query minimization, union minimization
/// of the produced rewriting, certified IVM inserts/retracts of the facts,
/// and engine-vs-reference evaluation. Errors inside a check land in that
/// obligation's status; the pass itself only fails on setup errors.
Status AuditAll(EngineContext& ctx, const AuditInputs& inputs,
                const AuditOptions& options, AuditReport* report);

}  // namespace audit
}  // namespace cqac

#endif  // CQAC_ANALYSIS_AUDIT_AUDIT_H_
