#include "src/analysis/audit/unfold_mcr.h"

#include <deque>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "src/base/strings.h"
#include "src/eval/evaluate.h"
#include "src/ir/canonical.h"

namespace cqac {
namespace audit {
namespace {

/// A term of the unfolding: a branch-local variable, a constant, or a
/// Skolem application f_i(t1,...,tn).
struct UTerm {
  enum class Kind { kVar, kConst, kSkolem };
  Kind kind = Kind::kVar;
  int var = -1;            // kVar
  Value value{Rational()}; // kConst
  int fn = -1;             // kSkolem
  std::vector<UTerm> args; // kSkolem

  static UTerm Var(int id) {
    UTerm t;
    t.kind = Kind::kVar;
    t.var = id;
    return t;
  }
  static UTerm Const(Value v) {
    UTerm t;
    t.kind = Kind::kConst;
    t.value = std::move(v);
    return t;
  }
};

struct UAtom {
  std::string predicate;
  std::vector<UTerm> args;
};

struct UComp {
  UTerm lhs;
  CompOp op;
  UTerm rhs;
};

/// One SLD branch: pending atoms (IDB and view mixed), accumulated
/// comparisons, the answer tuple, and the rule-application count.
struct Branch {
  std::vector<UAtom> atoms;
  std::vector<UComp> comps;
  std::vector<UTerm> head;
  size_t depth = 0;
};

using Subst = std::map<int, UTerm>;

/// Resolves the outermost variable chain of `t` under `s`.
const UTerm& Walk(const UTerm& t, const Subst& s) {
  const UTerm* cur = &t;
  while (cur->kind == UTerm::Kind::kVar) {
    auto it = s.find(cur->var);
    if (it == s.end()) break;
    cur = &it->second;
  }
  return *cur;
}

/// Fully applies `s` to `t`, including under Skolem applications.
UTerm Resolve(const UTerm& t, const Subst& s) {
  const UTerm& w = Walk(t, s);
  if (w.kind != UTerm::Kind::kSkolem) return w;
  UTerm out = w;
  for (UTerm& a : out.args) a = Resolve(a, s);
  return out;
}

bool Occurs(int var, const UTerm& t, const Subst& s) {
  const UTerm& w = Walk(t, s);
  if (w.kind == UTerm::Kind::kVar) return w.var == var;
  if (w.kind == UTerm::Kind::kSkolem)
    for (const UTerm& a : w.args)
      if (Occurs(var, a, s)) return true;
  return false;
}

/// Syntactic unification with occurs check. Skolem applications unify only
/// function-symbol- and argument-wise; a Skolem never equals a constant.
bool Unify(const UTerm& a, const UTerm& b, Subst* s) {
  const UTerm wa = Walk(a, *s);
  const UTerm wb = Walk(b, *s);
  if (wa.kind == UTerm::Kind::kVar && wb.kind == UTerm::Kind::kVar &&
      wa.var == wb.var)
    return true;
  if (wa.kind == UTerm::Kind::kVar) {
    if (Occurs(wa.var, wb, *s)) return false;
    s->emplace(wa.var, wb);
    return true;
  }
  if (wb.kind == UTerm::Kind::kVar) {
    if (Occurs(wb.var, wa, *s)) return false;
    s->emplace(wb.var, wa);
    return true;
  }
  if (wa.kind == UTerm::Kind::kConst && wb.kind == UTerm::Kind::kConst)
    return wa.value == wb.value;
  if (wa.kind == UTerm::Kind::kSkolem && wb.kind == UTerm::Kind::kSkolem) {
    if (wa.fn != wb.fn || wa.args.size() != wb.args.size()) return false;
    for (size_t i = 0; i < wa.args.size(); ++i)
      if (!Unify(wa.args[i], wb.args[i], s)) return false;
    return true;
  }
  return false;  // Skolem vs constant
}

/// Applies `s` to every term of `b`.
void ApplyToBranch(const Subst& s, Branch* b) {
  for (UAtom& a : b->atoms)
    for (UTerm& t : a.args) t = Resolve(t, s);
  for (UComp& c : b->comps) {
    c.lhs = Resolve(c.lhs, s);
    c.rhs = Resolve(c.rhs, s);
  }
  for (UTerm& t : b->head) t = Resolve(t, s);
}

bool HasSkolem(const UTerm& t) { return t.kind == UTerm::Kind::kSkolem; }

void CollectVars(const UTerm& t, std::map<int, int>* counts) {
  if (t.kind == UTerm::Kind::kVar) {
    ++(*counts)[t.var];
    return;
  }
  if (t.kind == UTerm::Kind::kSkolem)
    for (const UTerm& a : t.args) CollectVars(a, counts);
}

/// Greedily drops pending `dom` goals whose argument is already anchored
/// in another pending atom (or needed by neither head nor comparisons).
/// dom is the one predicate of the construction that only anchors a value
/// in the view domain (CheckSiMcr validates it by exactly this name): when
/// the argument ends up in a view atom of the finished disjunct the goal
/// is implied outright, so dropping it early merely relaxes the branch —
/// sound for the auditor's over-approximation — and avoids resolving every
/// dom goal against every dom rule (the 4^k blow-up of the pinned
/// Q^datalog). Structural atoms (view copies, I/J chain) are never
/// dropped.
void DropRedundantDomGoals(Branch* b) {
  bool changed = true;
  while (changed) {
    changed = false;
    std::map<int, int> occurrences;
    for (const UAtom& a : b->atoms)
      for (const UTerm& t : a.args) CollectVars(t, &occurrences);
    std::set<int> needed;
    {
      std::map<int, int> c;
      for (const UTerm& t : b->head) CollectVars(t, &c);
      for (const UComp& comp : b->comps) {
        CollectVars(comp.lhs, &c);
        CollectVars(comp.rhs, &c);
      }
      for (const auto& [v, n] : c) needed.insert(v);
    }
    for (size_t i = 0; i < b->atoms.size(); ++i) {
      if (b->atoms[i].predicate != "dom") continue;
      std::map<int, int> own;
      for (const UTerm& t : b->atoms[i].args) CollectVars(t, &own);
      bool droppable = true;
      for (const auto& [v, n] : own) {
        const bool elsewhere = occurrences[v] > n;
        if (!elsewhere && needed.count(v)) {
          droppable = false;
          break;
        }
      }
      if (droppable && b->atoms.size() > 1) {
        b->atoms.erase(b->atoms.begin() + i);
        changed = true;
        break;
      }
    }
  }
}

/// Converts one rule term to a branch-local UTerm under `var_map` (rule
/// variable id -> fresh branch variable), instantiating Skolem specs.
UTerm InstantiateTerm(const Term& t, const datalog::EngineRule& er,
                      const std::vector<int>& var_map) {
  if (t.is_const()) return UTerm::Const(t.value());
  auto it = er.skolems.find(t.var());
  if (it == er.skolems.end()) return UTerm::Var(var_map[t.var()]);
  UTerm sk;
  sk.kind = UTerm::Kind::kSkolem;
  sk.fn = it->second.fn_id;
  for (int arg : it->second.arg_vars) sk.args.push_back(UTerm::Var(var_map[arg]));
  return sk;
}

/// Normalizes a completed (IDB-free) branch into a Query over view
/// predicates, or nullopt when the branch derives nothing (residual Skolem
/// terms, false ground comparisons).
std::optional<Query> FinishBranch(Branch branch,
                                  const std::string& query_predicate) {
  // Equality comparisons with a Skolem side act as unification constraints;
  // resolve them (repeatedly — a unification can ground another comparison)
  // before judging the rest.
  bool changed = true;
  while (changed) {
    changed = false;
    std::vector<UComp> kept;
    for (size_t i = 0; i < branch.comps.size(); ++i) {
      UComp& c = branch.comps[i];
      const bool skolem_side = HasSkolem(c.lhs) || HasSkolem(c.rhs);
      if (c.op == CompOp::kEq && skolem_side) {
        Subst s;
        if (!Unify(c.lhs, c.rhs, &s)) return std::nullopt;
        for (size_t j = i + 1; j < branch.comps.size(); ++j)
          kept.push_back(branch.comps[j]);
        branch.comps = std::move(kept);
        ApplyToBranch(s, &branch);
        changed = true;
        break;
      }
      if (skolem_side) return std::nullopt;  // ordered: symbols are false
      if (c.lhs.kind == UTerm::Kind::kConst &&
          c.rhs.kind == UTerm::Kind::kConst) {
        if (!EvaluateGroundComparison(c.lhs.value, c.op, c.rhs.value))
          return std::nullopt;
        continue;  // holds; drop it
      }
      kept.push_back(c);
    }
    if (!changed) branch.comps = std::move(kept);
  }

  for (const UTerm& t : branch.head)
    if (HasSkolem(t)) return std::nullopt;  // Skolem answers are discarded
  for (const UAtom& a : branch.atoms)
    for (const UTerm& t : a.args)
      if (HasSkolem(t)) return std::nullopt;  // view extensions are real

  Query q;
  std::map<int, int> var_of;
  auto to_term = [&](const UTerm& t) {
    if (t.kind == UTerm::Kind::kConst) return Term::Const(t.value);
    auto it = var_of.find(t.var);
    if (it == var_of.end())
      it = var_of.emplace(t.var, q.AddVariable(StrCat("U", var_of.size())))
               .first;
    return Term::Var(it->second);
  };
  q.head().predicate = query_predicate;
  for (const UTerm& t : branch.head) q.head().args.push_back(to_term(t));
  for (const UAtom& a : branch.atoms) {
    Atom atom;
    atom.predicate = a.predicate;
    for (const UTerm& t : a.args) atom.args.push_back(to_term(t));
    q.AddBodyAtom(std::move(atom));
  }
  for (const UComp& c : branch.comps)
    q.AddComparison(Comparison(to_term(c.lhs), c.op, to_term(c.rhs)));
  if (!q.Validate().ok()) return std::nullopt;  // unsafe head: derives nothing
  return q;
}

}  // namespace

Result<UnfoldResult> UnfoldSiMcr(const SiMcr& mcr,
                                 const UnfoldOptions& options) {
  UnfoldResult result;
  if (mcr.rules.empty()) return result;  // the empty program derives nothing

  std::set<std::string> idb;
  for (const datalog::EngineRule& er : mcr.rules)
    idb.insert(er.rule.head().predicate);
  if (!idb.count(mcr.query_predicate))
    return Status::InvalidArgument(
        StrCat("the program has no rule for its query predicate '",
               mcr.query_predicate, "'"));

  int head_arity = -1;
  for (const datalog::EngineRule& er : mcr.rules)
    if (er.rule.head().predicate == mcr.query_predicate)
      head_arity = static_cast<int>(er.rule.head().args.size());

  // Per-rule recursion flags: a rule is recursive when some body predicate
  // reaches its head predicate in the program's dependency graph. Only
  // recursive applications (the I/J chain rounds) consume the depth
  // budget; the acyclic remainder strictly descends the predicate DAG, so
  // it terminates on its own and is unfolded to exhaustion.
  std::map<std::string, std::set<std::string>> deps;
  for (const datalog::EngineRule& er : mcr.rules)
    for (const Atom& a : er.rule.body())
      deps[er.rule.head().predicate].insert(a.predicate);
  auto reaches = [&deps](const std::string& from, const std::string& to) {
    std::set<std::string> visited;
    std::vector<const std::string*> stack = {&from};
    while (!stack.empty()) {
      const std::string& cur = *stack.back();
      stack.pop_back();
      if (cur == to) return true;
      if (!visited.insert(cur).second) continue;
      auto it = deps.find(cur);
      if (it == deps.end()) continue;
      for (const std::string& next : it->second) stack.push_back(&next);
    }
    return false;
  };
  std::vector<bool> recursive(mcr.rules.size(), false);
  for (size_t i = 0; i < mcr.rules.size(); ++i)
    for (const Atom& a : mcr.rules[i].rule.body())
      if (reaches(a.predicate, mcr.rules[i].rule.head().predicate)) {
        recursive[i] = true;
        break;
      }

  int next_var = 0;
  Branch root;
  for (int i = 0; i < head_arity; ++i) root.head.push_back(UTerm::Var(next_var++));
  UAtom goal;
  goal.predicate = mcr.query_predicate;
  goal.args = root.head;
  root.atoms.push_back(std::move(goal));

  std::set<std::string> seen;  // canonical texts of emitted disjuncts
  std::deque<Branch> work;
  work.push_back(std::move(root));
  size_t leaves = 0;
  size_t steps = 0;
  while (!work.empty()) {
    Branch branch = std::move(work.front());
    work.pop_front();
    DropRedundantDomGoals(&branch);

    // Select the first IDB atom (leftmost selection keeps the expansion
    // deterministic).
    size_t sel = branch.atoms.size();
    for (size_t i = 0; i < branch.atoms.size(); ++i)
      if (idb.count(branch.atoms[i].predicate)) {
        sel = i;
        break;
      }

    if (sel == branch.atoms.size()) {
      if (++leaves > options.max_leaves)
        return Status::ResourceExhausted(
            "unfolding exceeded the leaf budget");
      std::optional<Query> q =
          FinishBranch(std::move(branch), mcr.query_predicate);
      if (!q.has_value()) {
        ++result.discarded;
        continue;
      }
      const std::string key = Canonicalize(*q).text;
      if (seen.insert(key).second)
        result.unfolding.disjuncts.push_back(std::move(*q));
      continue;
    }

    if (++steps > options.max_steps)
      return Status::ResourceExhausted("unfolding exceeded the step budget");

    UAtom selected = branch.atoms[sel];
    branch.atoms.erase(branch.atoms.begin() + sel);
    for (size_t ri = 0; ri < mcr.rules.size(); ++ri) {
      const datalog::EngineRule& er = mcr.rules[ri];
      const Rule& rule = er.rule;
      if (rule.head().predicate != selected.predicate ||
          rule.head().args.size() != selected.args.size())
        continue;
      if (recursive[ri] && branch.depth >= options.max_depth) {
        ++result.truncated;  // this alternative needs another chain round
        continue;
      }
      std::vector<int> var_map(rule.num_vars());
      int saved_next = next_var;
      for (int v = 0; v < rule.num_vars(); ++v) var_map[v] = next_var++;

      Subst s;
      bool ok = true;
      for (size_t i = 0; i < selected.args.size() && ok; ++i)
        ok = Unify(selected.args[i],
                   InstantiateTerm(rule.head().args[i], er, var_map), &s);
      if (!ok) {
        next_var = saved_next;
        continue;
      }

      Branch child = branch;
      for (const Atom& a : rule.body()) {
        UAtom ua;
        ua.predicate = a.predicate;
        for (const Term& t : a.args)
          ua.args.push_back(InstantiateTerm(t, er, var_map));
        child.atoms.push_back(std::move(ua));
      }
      for (const Comparison& c : rule.comparisons()) {
        UComp uc;
        uc.lhs = InstantiateTerm(c.lhs, er, var_map);
        uc.op = c.op;
        uc.rhs = InstantiateTerm(c.rhs, er, var_map);
        child.comps.push_back(std::move(uc));
      }
      ApplyToBranch(s, &child);
      if (recursive[ri]) ++child.depth;
      work.push_back(std::move(child));
    }
  }
  return result;
}

}  // namespace audit
}  // namespace cqac
