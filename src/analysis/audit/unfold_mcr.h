// Bounded top-down unfolding of an SI-MCR Datalog program into a UCQAC
// over the view predicates.
//
// The Figure 4 program derives answers bottom-up from view extensions
// through inverse rules with Skolem terms. Its k-round behaviour is exactly
// captured by SLD-resolving the answer goal for at most k rule
// applications per branch: a branch that resolves every IDB atom away
// leaves a conjunctive goal over view predicates — one disjunct of the
// unfolded UCQAC. Skolem terms are handled the way the engine's ground
// semantics forces:
//
//   * equality against a Skolem application unifies (same function symbol,
//     argument-wise) or kills the branch (Skolem-vs-constant — a Skolem
//     symbol never equals a data constant);
//   * an ordered comparison with a Skolem side kills the branch
//     (EvaluateGroundComparison orders numbers only; symbols are false);
//   * a branch whose head or view atoms retain a Skolem application yields
//     nothing (view extensions are Skolem-free, and Skolem-carrying
//     answers are discarded by the certain-answer convention).
//
// The surviving disjuncts are what the whole-program auditor certifies
// against the query via from-scratch canonical-database containment
// (src/analysis/audit/audit.h): every answer the MCR can produce within
// the depth bound is provably a certain answer.
#ifndef CQAC_ANALYSIS_AUDIT_UNFOLD_MCR_H_
#define CQAC_ANALYSIS_AUDIT_UNFOLD_MCR_H_

#include <cstddef>

#include "src/base/status.h"
#include "src/ir/query.h"
#include "src/rewriting/si_mcr.h"

namespace cqac {
namespace audit {

struct UnfoldOptions {
  /// RECURSIVE rule applications allowed per branch (the "k bounded
  /// rounds"). Only rules whose body can reach their own head predicate —
  /// the I/J chain of the query program — consume this budget; the acyclic
  /// remainder (inverse, dom, U, initialization rules) strictly descends
  /// the predicate dependency DAG and is unfolded to exhaustion. One P_k
  /// chain round costs two recursive applications (a mapping rule plus a
  /// coupling rule), so the default certifies the direct disjunct plus the
  /// first chain round. Each further round roughly multiplies the cost of
  /// the per-disjunct canonical-database containment check (one more
  /// variable to order), so deeper audits are an explicit opt-in.
  size_t max_depth = 2;
  /// Cap on completed (IDB-free) branches, surviving or not.
  size_t max_leaves = 65536;
  /// Cap on total branch expansions (safety net against blow-up in the
  /// acyclic part; exceeding it reports ResourceExhausted, which the
  /// auditor surfaces as a skipped — not failed — obligation).
  size_t max_steps = 200000;
  /// Consumed by the auditor's containment stage rather than the unfolder:
  /// the canonical-database check enumerates orderings over a disjunct
  /// expansion's variables and constants, so a disjunct with more distinct
  /// order values than this is skipped (Unsupported) instead of certified.
  size_t max_containment_values = 8;
};

struct UnfoldResult {
  /// The Skolem-free unfolded disjuncts over view predicates, deduplicated
  /// by canonical form, in discovery order.
  UnionQuery unfolding;
  /// Branches cut by max_depth while still holding IDB atoms (recursion
  /// beyond the certified bound).
  size_t truncated = 0;
  /// Completed branches discarded for residual Skolem terms or false
  /// ground comparisons (they derive nothing).
  size_t discarded = 0;
};

/// Unfolds `mcr` for bounded rounds. InvalidArgument when the program has
/// no rule for its own query predicate (and is non-empty); ResourceExhausted
/// when max_leaves or max_steps is hit before the work list drains.
Result<UnfoldResult> UnfoldSiMcr(const SiMcr& mcr,
                                 const UnfoldOptions& options = {});

}  // namespace audit
}  // namespace cqac

#endif  // CQAC_ANALYSIS_AUDIT_UNFOLD_MCR_H_
