#include "src/analysis/certificate.h"

#include <algorithm>
#include <string>
#include <vector>

#include "src/base/strings.h"
#include "src/constraints/implication.h"
#include "src/constraints/preprocess.h"
#include "src/containment/si_reduction.h"
#include "src/ir/canonical.h"
#include "src/ir/expansion.h"

namespace cqac {
namespace {

Status Invalid(std::string msg) {
  return Status::InvalidArgument(StrCat("certificate rejected: ", msg));
}

Term ApplyMapping(const std::vector<Term>& m, const Term& t) {
  return t.is_var() ? m[t.var()] : t;
}

/// Own, deliberately simple image simplification (independent of the
/// production SanitizeImage): evaluates ground comparisons, kills disjuncts
/// with ordered symbol comparisons or self-strict comparisons. Returns
/// false iff the disjunct is unsatisfiable.
bool SimplifyImage(std::vector<Comparison>* cs) {
  std::vector<Comparison> kept;
  for (const Comparison& c : *cs) {
    if (c.op == CompOp::kEq) {
      if (c.lhs == c.rhs) continue;
      if (c.lhs.is_const() && c.rhs.is_const()) {
        if (c.lhs.value() == c.rhs.value()) continue;
        return false;
      }
      kept.push_back(c);
      continue;
    }
    if ((c.lhs.is_const() && c.lhs.value().is_symbol()) ||
        (c.rhs.is_const() && c.rhs.value().is_symbol()))
      return false;  // symbols are unordered
    if (c.lhs.is_const() && c.rhs.is_const()) {
      const Rational& a = c.lhs.value().number();
      const Rational& b = c.rhs.value().number();
      bool holds = c.op == CompOp::kLt ? a < b : (a < b || a == b);
      if (!holds) return false;
      continue;
    }
    if (c.lhs == c.rhs) {
      if (c.op == CompOp::kLt) return false;
      continue;  // X <= X
    }
    kept.push_back(c);
  }
  *cs = std::move(kept);
  return true;
}

bool HasSymbolicConstant(const std::vector<Comparison>& cs) {
  for (const Comparison& c : cs)
    if ((c.lhs.is_const() && c.lhs.value().is_symbol()) ||
        (c.rhs.is_const() && c.rhs.value().is_symbol()))
      return true;
  return false;
}

/// Distinct SI forms of a preprocessed query's comparisons (mirrors the
/// construction's FormsOf).
std::vector<SiForm> DistinctForms(const Query& q) {
  std::vector<SiForm> out;
  for (const Comparison& c : q.comparisons()) {
    if (!c.IsSemiInterval()) continue;
    SiForm f = SiFormOf(c);
    if (std::find(out.begin(), out.end(), f) == out.end()) out.push_back(f);
  }
  return out;
}

}  // namespace

Status CheckContainmentWitness(const ContainmentWitness& w) {
  if (w.contained_inconsistent) {
    if (AcsConsistent(w.contained.comparisons()))
      return Invalid(
          "witness claims the contained query is inconsistent, but its "
          "comparisons are satisfiable");
    return Status::OK();
  }
  if (w.mappings.empty())
    return Invalid("witness carries no containment mappings");
  if (w.single_mapping && w.mappings.size() != 1)
    return Invalid("single-mapping witness carries multiple mappings");
  if (w.contained.head().args.size() != w.container.head().args.size())
    return Invalid("witness queries have different head arities");

  std::vector<std::vector<Comparison>> disjuncts;
  for (size_t mi = 0; mi < w.mappings.size(); ++mi) {
    const std::vector<Term>& m = w.mappings[mi];
    if (m.size() != static_cast<size_t>(w.container.num_vars()))
      return Invalid(StrCat("mapping #", mi + 1,
                            " does not cover every container variable"));
    for (const Term& t : m)
      if (t.is_var() && t.var() >= w.contained.num_vars())
        return Invalid(StrCat("mapping #", mi + 1,
                              " refers to a variable outside the contained "
                              "query"));
    // Head: mu must send the container's head tuple onto the contained one.
    for (size_t k = 0; k < w.container.head().args.size(); ++k) {
      if (!(ApplyMapping(m, w.container.head().args[k]) ==
            w.contained.head().args[k]))
        return Invalid(StrCat("mapping #", mi + 1,
                              " does not preserve head position ", k + 1));
    }
    // Body: every mapped container subgoal must be a contained subgoal.
    for (const Atom& a : w.container.body()) {
      Atom image;
      image.predicate = a.predicate;
      for (const Term& t : a.args) image.args.push_back(ApplyMapping(m, t));
      bool found = false;
      for (const Atom& b : w.contained.body())
        if (b == image) found = true;
      if (!found)
        return Invalid(
            StrCat("mapping #", mi + 1, " sends subgoal ", a.predicate,
                   "(...) outside the contained query's body (not a "
                   "homomorphism)"));
    }
    // Comparison image.
    std::vector<Comparison> image;
    for (const Comparison& c : w.container.comparisons())
      image.push_back(Comparison(ApplyMapping(m, c.lhs), c.op,
                                 ApplyMapping(m, c.rhs)));
    if (!SimplifyImage(&image))
      return Invalid(StrCat("mapping #", mi + 1,
                            " has an unsatisfiable comparison image (the "
                            "production decision would never use it)"));
    if (image.empty()) return Status::OK();  // needs no comparisons at all
    disjuncts.push_back(std::move(image));
  }

  if (HasSymbolicConstant(w.contained.comparisons()))
    return Status::Unsupported(
        "cannot re-check a certificate whose premise compares symbolic "
        "constants");
  for (const std::vector<Comparison>& d : disjuncts)
    if (HasSymbolicConstant(d))
      return Status::Unsupported(
          "cannot re-check a certificate whose comparison images mention "
          "symbolic constants");

  CQAC_ASSIGN_OR_RETURN(
      bool implied,
      ImpliesDisjunctionByPreorders(w.contained.comparisons(), disjuncts));
  if (!implied)
    return Invalid(
        "the contained query's comparisons do not imply the disjunction of "
        "the mapped comparison images (Theorem 2.1 condition fails)");
  return Status::OK();
}

Status CheckRewritingWitness(const Query& q, const ViewSet& views,
                             const UnionQuery& rewriting,
                             const RewritingWitness& w) {
  // Recompute the preprocessed query.
  Result<Query> qp = Preprocess(q);
  if (!qp.ok()) {
    if (qp.status().code() != StatusCode::kInconsistent) return qp.status();
    if (!rewriting.disjuncts.empty())
      return Invalid(
          "the query is inconsistent (empty), yet the rewriting is "
          "non-empty");
    return Status::OK();
  }
  if (!(Canonicalize(qp.value()) == Canonicalize(w.query)))
    return Invalid(
        "witness query does not match the preprocessed input query");

  // Recompute the preprocessed view sequence the engines expand over.
  std::vector<Query> prepped;
  for (const Query& v : views.views()) {
    Result<Query> vp = Preprocess(v);
    if (!vp.ok()) {
      if (vp.status().code() == StatusCode::kInconsistent) continue;
      return vp.status();
    }
    prepped.push_back(std::move(vp).value());
  }
  if (prepped.size() != w.views.size())
    return Invalid("witness view set differs from the preprocessed views");
  for (size_t i = 0; i < prepped.size(); ++i)
    if (!(Canonicalize(prepped[i]) == Canonicalize(w.views[i])))
      return Invalid(StrCat("witness view #", i + 1,
                            " does not match the preprocessed input view"));
  ViewSet vs;
  for (const Query& v : w.views) CQAC_RETURN_IF_ERROR(vs.Add(v));

  if (rewriting.disjuncts.size() != w.disjuncts.size())
    return Invalid(StrCat("rewriting has ", rewriting.disjuncts.size(),
                          " disjuncts but the witness covers ",
                          w.disjuncts.size()));

  for (size_t i = 0; i < rewriting.disjuncts.size(); ++i) {
    const ContainmentWitness& cw = w.disjuncts[i];
    if (cw.contained_inconsistent)
      return Invalid(StrCat(
          "disjunct #", i + 1,
          " expands to an inconsistent query (engines must prune those)"));
    CQAC_ASSIGN_OR_RETURN(Query exp,
                          ExpandRewriting(rewriting.disjuncts[i], vs));
    Result<Query> expp = Preprocess(exp);
    if (!expp.ok()) {
      if (expp.status().code() == StatusCode::kInconsistent)
        return Invalid(StrCat("disjunct #", i + 1,
                              " expands to an inconsistent query"));
      return expp.status();
    }
    if (!(Canonicalize(expp.value()) == Canonicalize(cw.contained)))
      return Invalid(StrCat("disjunct #", i + 1,
                            ": witness 'contained' side is not the "
                            "recomputed expansion"));
    if (!(Canonicalize(cw.container) == Canonicalize(w.query)))
      return Invalid(StrCat("disjunct #", i + 1,
                            ": witness 'container' side is not the query"));
    Status st = CheckContainmentWitness(cw);
    if (!st.ok()) {
      if (st.code() == StatusCode::kInvalidArgument)
        return Invalid(StrCat("disjunct #", i + 1, ": ", st.message()));
      return st;
    }
  }
  return Status::OK();
}

Status CheckErResult(const Query& q, const ViewSet& views, const ErResult& er,
                     const ErWitness& w) {
  if (w.query_inconsistent) {
    Result<Query> qp = Preprocess(q);
    if (qp.ok() || qp.status().code() != StatusCode::kInconsistent)
      return Invalid(
          "witness claims the query is inconsistent, but preprocessing "
          "succeeds");
    if (!er.union_er.has_value() || !er.union_er->disjuncts.empty())
      return Invalid(
          "an inconsistent query's ER must be the empty union");
    return Status::OK();
  }
  CQAC_ASSIGN_OR_RETURN(Query qp, Preprocess(q));

  // Forward direction: every candidate CR really is a contained rewriting.
  CQAC_RETURN_IF_ERROR(CheckRewritingWitness(q, views, w.crs, w.forward));

  if (er.single.has_value()) {
    if (w.single_index < 0 ||
        w.single_index >= static_cast<int>(w.crs.disjuncts.size()))
      return Invalid("single-ER witness index out of range");
    if (er.single->ToString() != w.crs.disjuncts[w.single_index].ToString())
      return Invalid(
          "the returned single ER is not the witnessed candidate");
    // Back direction: query contained in the single CR's expansion.
    CQAC_ASSIGN_OR_RETURN(Query exp, ExpandRewriting(*er.single, views));
    Result<Query> expp = Preprocess(exp);
    if (!expp.ok()) {
      if (expp.status().code() == StatusCode::kInconsistent)
        return Invalid("the single ER expands to an inconsistent query");
      return expp.status();
    }
    if (w.back.contained_inconsistent)
      return Invalid(
          "back-containment witness claims an inconsistent query, but the "
          "query is consistent");
    if (!(Canonicalize(w.back.contained) == Canonicalize(qp)))
      return Invalid(
          "back-containment witness 'contained' side is not the query");
    if (!(Canonicalize(w.back.container) == Canonicalize(expp.value())))
      return Invalid(
          "back-containment witness 'container' side is not the ER's "
          "expansion");
    Status st = CheckContainmentWitness(w.back);
    if (!st.ok()) {
      if (st.code() == StatusCode::kInvalidArgument)
        return Invalid(StrCat("back direction: ", st.message()));
      return st;
    }
    return Status::OK();
  }

  if (er.union_er.has_value()) {
    if (er.union_er->disjuncts.size() != w.crs.disjuncts.size())
      return Invalid("union ER does not match the witnessed candidates");
    for (size_t i = 0; i < w.crs.disjuncts.size(); ++i)
      if (er.union_er->disjuncts[i].ToString() !=
          w.crs.disjuncts[i].ToString())
        return Invalid(StrCat("union ER disjunct #", i + 1,
                              " is not the witnessed candidate"));
    // Back direction, re-decided from scratch: the query contained in the
    // union of the expansions (canonical-database procedure, fresh context).
    UnionQuery expansions;
    for (const Query& cr : er.union_er->disjuncts) {
      CQAC_ASSIGN_OR_RETURN(Query exp, ExpandRewriting(cr, views));
      expansions.disjuncts.push_back(std::move(exp));
    }
    CQAC_ASSIGN_OR_RETURN(bool covered, IsContainedInUnion(qp, expansions));
    if (!covered)
      return Invalid(
          "the query is not contained in the union of the ER's expansions "
          "(canonical-database re-check fails)");
    return Status::OK();
  }

  return Status::OK();  // nothing found: nothing to certify
}

namespace {

/// Renders a term of `rule` for error messages without assuming shared
/// variable tables.
std::string RuleTermName(const Query& rule, const Term& t) {
  return rule.TermToString(t);
}

/// True iff `a` and `b` are the same atom under the name correspondence
/// between two queries sharing a variable-name convention.
bool SameAtomByName(const Query& qa, const Atom& a, const Query& qb,
                    const Atom& b) {
  if (a.predicate != b.predicate || a.args.size() != b.args.size())
    return false;
  for (size_t i = 0; i < a.args.size(); ++i) {
    const Term& ta = a.args[i];
    const Term& tb = b.args[i];
    if (ta.is_const() != tb.is_const()) return false;
    if (ta.is_const()) {
      if (!(ta.value() == tb.value())) return false;
    } else if (qa.VarName(ta.var()) != qb.VarName(tb.var())) {
      return false;
    }
  }
  return true;
}

Status CheckInverseRule(const datalog::EngineRule& er, const Query& view,
                        const std::vector<SiForm>& query_forms,
                        size_t rule_no) {
  const Rule& rule = er.rule;
  auto reject = [&](const std::string& why) {
    return Invalid(StrCat("inverse rule #", rule_no, " ('",
                          rule.head().predicate, "' head): ", why));
  };

  // Body: exactly the view's head atom (matched by variable name).
  if (rule.body().size() != 1)
    return reject("must have exactly one body atom (the view head)");
  if (!SameAtomByName(rule, rule.body()[0], view, view.head()))
    return reject(StrCat("body atom is not the head of view '",
                         view.head().predicate, "'"));

  // Map rule variables to view variables by name.
  auto view_var_of = [&](int rule_var) {
    return view.FindVariable(rule.VarName(rule_var));
  };

  const std::string& pred = rule.head().predicate;
  if (pred.rfind("U_", 0) == 0) {
    // A U_f head: the view's comparisons must imply `x f`, re-derived by
    // exhaustive preorder enumeration.
    CQAC_ASSIGN_OR_RETURN(SiForm f,
                          SiForm::FromPredicateSuffix(pred.substr(2)));
    if (std::find(query_forms.begin(), query_forms.end(), f) ==
        query_forms.end())
      return reject("U predicate does not match any query comparison form");
    if (rule.head().args.size() != 1 || !rule.head().args[0].is_var())
      return reject("U atom must be unary over a variable");
    int v = view_var_of(rule.head().args[0].var());
    if (v < 0) return reject("U atom variable is not a view variable");
    if (HasSymbolicConstant(view.comparisons()))
      return Status::Unsupported(
          "cannot re-check U-atom bounds for views comparing symbolic "
          "constants");
    CQAC_ASSIGN_OR_RETURN(
        bool implied,
        ImpliesDisjunctionByPreorders(view.comparisons(),
                                      {{f.ToComparison(Term::Var(v))}}));
    if (!implied)
      return reject(StrCat("the view's comparisons do not imply the bound "
                           "on variable '", view.VarName(v), "'"));
  } else {
    // A base-predicate head: must be one of the view's body atoms.
    bool found = false;
    for (const Atom& a : view.body())
      if (SameAtomByName(rule, rule.head(), view, a)) found = true;
    if (!found)
      return reject("head is not a body atom of the source view");
  }

  // Skolems: every nondistinguished variable of the head carries a Skolem
  // term over the view's distinguished variables; distinguished variables
  // carry none.
  std::vector<bool> dist = view.DistinguishedMask();
  std::vector<int> head_vars = view.HeadVars();
  for (const Term& t : rule.head().args) {
    if (!t.is_var()) continue;
    int v = view_var_of(t.var());
    if (v < 0) return reject(StrCat("head variable '",
                                    RuleTermName(rule, t),
                                    "' is not a view variable"));
    auto it = er.skolems.find(t.var());
    if (dist[v]) {
      if (it != er.skolems.end())
        return reject("a distinguished view variable must not be "
                      "Skolemized");
      continue;
    }
    if (it == er.skolems.end())
      return reject(StrCat("nondistinguished view variable '",
                           view.VarName(v), "' lacks a Skolem term"));
    // The Skolem arguments must be exactly the view's head variables
    // (matched by name through the shared table convention).
    std::vector<std::string> got, want;
    for (int av : it->second.arg_vars) got.push_back(rule.VarName(av));
    for (int hv : head_vars) want.push_back(view.VarName(hv));
    if (got != want)
      return reject(StrCat("Skolem term for '", view.VarName(v),
                           "' is not over the view's head variables"));
  }
  return Status::OK();
}

}  // namespace

Status CheckSiMcr(const Query& q, const ViewSet& views, const SiMcr& mcr) {
  Result<Query> qp_result = Preprocess(q);
  if (!qp_result.ok()) {
    if (qp_result.status().code() != StatusCode::kInconsistent)
      return qp_result.status();
    if (!mcr.rules.empty())
      return Invalid(
          "an inconsistent query's MCR must be the empty program");
    return Status::OK();
  }
  Query qp = std::move(qp_result).value();
  if (!qp.IsCqacSi())
    return Status::Unsupported(
        "CheckSiMcr requires a CQAC-SI query (the Figure 4 setting)");
  if (mcr.rule_info.size() != mcr.rules.size())
    return Invalid("rule provenance does not cover every rule");

  // Recompute Q^datalog and match the program prefix structurally.
  CQAC_ASSIGN_OR_RETURN(Program qdl, BuildQdatalog(qp));
  if (mcr.query_predicate != qdl.query_predicate())
    return Invalid("query predicate does not match Q^datalog");
  std::vector<SiForm> query_forms = DistinctForms(qp);

  // Preprocess the views once (inverse rules reference them by index).
  std::vector<Result<Query>> prepped;
  prepped.reserve(views.size());
  for (const Query& v : views.views()) prepped.push_back(Preprocess(v));

  size_t qdl_seen = 0;
  for (size_t i = 0; i < mcr.rules.size(); ++i) {
    const datalog::EngineRule& er = mcr.rules[i];
    const SiMcrRuleInfo& info = mcr.rule_info[i];
    switch (info.kind) {
      case SiMcrRuleInfo::Kind::kQueryProgram: {
        if (qdl_seen >= qdl.rules().size())
          return Invalid("more Q^datalog rules than the recomputed program");
        if (er.rule.ToString() != qdl.rules()[qdl_seen].ToString() ||
            !er.skolems.empty())
          return Invalid(StrCat("rule #", i + 1,
                                " differs from the recomputed Q^datalog "
                                "rule"));
        ++qdl_seen;
        break;
      }
      case SiMcrRuleInfo::Kind::kInverse: {
        if (info.view_index < 0 ||
            info.view_index >= static_cast<int>(views.size()))
          return Invalid(StrCat("rule #", i + 1,
                                " references a view outside the view set"));
        const Result<Query>& vp = prepped[info.view_index];
        if (!vp.ok())
          return vp.status().code() == StatusCode::kInconsistent
                     ? Invalid(StrCat("rule #", i + 1,
                                      " derives from an inconsistent "
                                      "(empty) view"))
                     : vp.status();
        CQAC_RETURN_IF_ERROR(
            CheckInverseRule(er, vp.value(), query_forms, i + 1));
        break;
      }
      case SiMcrRuleInfo::Kind::kDomain: {
        const Rule& rule = er.rule;
        if (rule.head().predicate != "dom" || rule.head().args.size() != 1 ||
            rule.body().size() != 1 || !er.skolems.empty())
          return Invalid(StrCat("rule #", i + 1, " is not a domain rule"));
        bool matches_a_view = false;
        for (const Query& v : views.views())
          if (v.head().predicate == rule.body()[0].predicate &&
              v.head().args.size() == rule.body()[0].args.size())
            matches_a_view = true;
        if (!matches_a_view)
          return Invalid(StrCat("rule #", i + 1,
                                " domain rule over a non-view predicate"));
        const Term& out = rule.head().args[0];
        bool projected = false;
        for (const Term& t : rule.body()[0].args)
          if (t == out) projected = true;
        if (!out.is_var() || !projected)
          return Invalid(StrCat("rule #", i + 1,
                                " domain rule must project one view head "
                                "position"));
        break;
      }
      case SiMcrRuleInfo::Kind::kUDomain: {
        const Rule& rule = er.rule;
        const std::string& pred = rule.head().predicate;
        if (pred.rfind("U_", 0) != 0 || rule.head().args.size() != 1 ||
            rule.body().size() != 1 || rule.body()[0].predicate != "dom" ||
            rule.comparisons().size() != 1 || !er.skolems.empty())
          return Invalid(StrCat("rule #", i + 1, " is not a U-domain rule"));
        CQAC_ASSIGN_OR_RETURN(SiForm f,
                              SiForm::FromPredicateSuffix(pred.substr(2)));
        if (std::find(query_forms.begin(), query_forms.end(), f) ==
            query_forms.end())
          return Invalid(StrCat("rule #", i + 1,
                                " U-domain predicate matches no query "
                                "comparison form"));
        const Term& x = rule.head().args[0];
        if (!(rule.body()[0].args.size() == 1 &&
              rule.body()[0].args[0] == x &&
              rule.comparisons()[0] == f.ToComparison(x)))
          return Invalid(StrCat("rule #", i + 1,
                                " U-domain rule comparison does not match "
                                "its predicate"));
        break;
      }
    }
  }
  if (qdl_seen != qdl.rules().size())
    return Invalid("the program is missing Q^datalog rules");
  return Status::OK();
}

}  // namespace cqac
