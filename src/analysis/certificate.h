// Independent re-validation of the engines' rewriting results.
//
// Every rewriting algorithm in src/rewriting verifies its own output with
// the production containment machinery. The certificate checker re-derives
// those verdicts from the witnesses the algorithms emit, using only
// slow-but-obvious decision procedures:
//  * containment mappings are checked by direct substitution (is it really
//    a homomorphism?);
//  * AC implications are re-decided by ImpliesDisjunctionByPreorders — the
//    exhaustive enumeration of all premise-consistent total preorders;
//  * expansions are recomputed from scratch and compared up to renaming via
//    canonical forms;
//  * SI-MCR rules are re-validated one by one against the views and the
//    recomputed Q^datalog program.
//
// A check returns OK when the certificate is valid, InvalidArgument with a
// human-readable reason when it is not, and Unsupported for the rare inputs
// the reference procedures cannot decide (symbolic constants inside
// comparison images). The randomized/property tests and the shell's
// `verify` mode run these after every rewriting.
#ifndef CQAC_ANALYSIS_CERTIFICATE_H_
#define CQAC_ANALYSIS_CERTIFICATE_H_

#include "src/base/status.h"
#include "src/containment/containment.h"
#include "src/ir/query.h"
#include "src/ir/view.h"
#include "src/rewriting/er_search.h"
#include "src/rewriting/si_mcr.h"
#include "src/rewriting/witness.h"

namespace cqac {

/// Validates one ContainmentWitness: every mapping is a genuine containment
/// mapping (head + body checked by substitution) and the contained query's
/// comparisons imply the disjunction of the mapped comparison images
/// (re-decided by exhaustive preorder enumeration).
Status CheckContainmentWitness(const ContainmentWitness& w);

/// Validates a produced contained rewriting `rewriting` of `q` over `views`
/// against its witness: recomputes each disjunct's expansion from scratch,
/// matches it (up to renaming) with the witness, and re-validates every
/// per-disjunct containment witness.
Status CheckRewritingWitness(const Query& q, const ViewSet& views,
                             const UnionQuery& rewriting,
                             const RewritingWitness& w);

/// Validates an equivalent-rewriting result: the forward direction through
/// CheckRewritingWitness, and the back direction through the single-ER
/// containment witness or (for union ERs) a from-scratch canonical-database
/// union-containment decision.
Status CheckErResult(const Query& q, const ViewSet& views, const ErResult& er,
                     const ErWitness& w);

/// Validates an SI-MCR Datalog program rule by rule: the Q^datalog prefix is
/// recomputed and compared structurally, every inverse rule is matched to
/// its source view (U-atom bounds re-derived by preorder enumeration,
/// Skolem specs checked against the view's distinguished variables), and
/// the domain rules are shape-checked.
Status CheckSiMcr(const Query& q, const ViewSet& views, const SiMcr& mcr);

}  // namespace cqac

#endif  // CQAC_ANALYSIS_CERTIFICATE_H_
