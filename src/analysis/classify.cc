#include "src/analysis/classify.h"

#include "src/base/strings.h"

namespace cqac {

const char* ClassInfo::Name() const {
  switch (ac_class) {
    case AcClass::kNone:
      return "CQ";
    case AcClass::kLsi:
      return "LSI";
    case AcClass::kRsi:
      return "RSI";
    case AcClass::kSi:
      return cqac_si ? "CQAC-SI" : "SI";
    case AcClass::kGeneral:
      return "CQAC";
  }
  return "?";
}

const char* ClassInfo::RecommendedAlgorithm() const {
  switch (ac_class) {
    case AcClass::kNone:
      return "BucketRewrite (classical CQ machinery; single-mapping "
             "containment, Theorem 2.3)";
    case AcClass::kLsi:
    case AcClass::kRsi:
      return "RewriteLSIQuery (Figure 2 MCD algorithm; single-mapping "
             "containment, Theorem 2.3)";
    case AcClass::kSi:
      if (cqac_si)
        return "FindEquivalentRewriting / RewriteAllDistinguished "
               "(Theorem 3.2) or RewriteSiQueryDatalog (Figure 4)";
      return "RewriteSiQueryDatalog (Figure 4 SI-MCR; Lemma 5.1 "
             "implication)";
    case AcClass::kGeneral:
      return "BucketRewrite with general Theorem 2.1 verification "
             "(all containment mappings + disjunction implication)";
  }
  return "?";
}

std::string ClassInfo::ToString() const {
  if (ac_class == AcClass::kNone) return Name();
  if (closed) return StrCat(Name(), " (closed)");
  if (open) return StrCat(Name(), " (open)");
  return Name();
}

ClassInfo ClassifyQuery(const Query& q) {
  ClassInfo info;
  info.ac_class = q.Classify();
  info.cqac_si = q.IsCqacSi();
  bool any_ordered = false;
  bool all_strict = true;
  bool all_nonstrict = true;
  for (const Comparison& c : q.comparisons()) {
    if (c.op == CompOp::kEq) continue;
    any_ordered = true;
    if (c.op == CompOp::kLt)
      all_nonstrict = false;
    else
      all_strict = false;
  }
  info.closed = any_ordered && all_nonstrict;
  info.open = any_ordered && all_strict;
  return info;
}

const char* CompKindName(CompKind k) {
  switch (k) {
    case CompKind::kEquality:
      return "equality";
    case CompKind::kLsi:
      return "lsi";
    case CompKind::kRsi:
      return "rsi";
    case CompKind::kVarVar:
      return "var-var";
    case CompKind::kOther:
      return "other";
  }
  return "?";
}

ClassificationEvidence ClassifyQueryWithEvidence(const Query& q) {
  ClassificationEvidence ev;
  ev.info = ClassifyQuery(q);
  ev.kinds.reserve(q.comparisons().size());
  for (const Comparison& c : q.comparisons()) {
    if (c.op == CompOp::kEq)
      ev.kinds.push_back(CompKind::kEquality);
    else if (c.IsLsi())
      ev.kinds.push_back(CompKind::kLsi);
    else if (c.IsRsi())
      ev.kinds.push_back(CompKind::kRsi);
    else if (c.IsVarVar())
      ev.kinds.push_back(CompKind::kVarVar);
    else
      ev.kinds.push_back(CompKind::kOther);
  }
  switch (ev.info.ac_class) {
    case AcClass::kNone:
      break;
    case AcClass::kLsi:
    case AcClass::kRsi:
      // Every bound participates in the class decision.
      for (size_t i = 0; i < ev.kinds.size(); ++i) ev.deciding.push_back(i);
      break;
    case AcClass::kSi: {
      // The first bound of each direction together force SI (neither pure
      // LSI nor pure RSI).
      for (CompKind want : {CompKind::kLsi, CompKind::kRsi})
        for (size_t i = 0; i < ev.kinds.size(); ++i)
          if (ev.kinds[i] == want) {
            ev.deciding.push_back(i);
            break;
          }
      break;
    }
    case AcClass::kGeneral:
      // The first non-semi-interval comparison forces the general class.
      for (size_t i = 0; i < ev.kinds.size(); ++i)
        if (ev.kinds[i] != CompKind::kLsi && ev.kinds[i] != CompKind::kRsi) {
          ev.deciding.push_back(i);
          break;
        }
      break;
  }
  return ev;
}

}  // namespace cqac
