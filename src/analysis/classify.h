// Syntactic class inference for CQAC queries.
//
// The paper's complexity results and algorithm preconditions hinge on which
// fragment a query's comparison set falls into (Table 2, Sections 3-5).
// ClassifyQuery computes the full picture in one pass so callers can pick
// the cheapest sound algorithm:
//
//       CQ  ⊂  LSI, RSI  ⊂  CQAC-SI  ⊂  SI  ⊂  CQAC
//
//  * CQ       — no comparisons; classical containment (NP).
//  * LSI/RSI  — all comparisons upper bounds (resp. lower bounds) on single
//               variables; Theorem 2.3 single-mapping containment applies and
//               RewriteLSIQuery (Figure 2) is complete.
//  * CQAC-SI  — semi-interval with at most one LSI or at most one RSI
//               comparison; the Section 3 equivalent-rewriting machinery
//               (Theorem 3.2) applies.
//  * SI       — all comparisons semi-interval; Lemma 5.1 implication and the
//               Figure 4 Datalog MCR apply.
//  * CQAC     — anything else (variable-variable or symbol comparisons);
//               only the general Theorem 2.1 test is sound.
//
// Orthogonally, the comparison set is *closed* when every ordered comparison
// is non-strict (<=) and *open* when every one is strict (<) — Afrati &
// Damigos show several complexity bounds differ between the closed and open
// cases.
#ifndef CQAC_ANALYSIS_CLASSIFY_H_
#define CQAC_ANALYSIS_CLASSIFY_H_

#include <string>

#include "src/ir/query.h"

namespace cqac {

/// The inferred class of one query's comparison set.
struct ClassInfo {
  AcClass ac_class = AcClass::kNone;
  bool cqac_si = false;  // Section 5's CQAC-SI fragment (implies SI)
  bool closed = false;   // every ordered comparison non-strict (<=)
  bool open = false;     // every ordered comparison strict (<)

  /// Canonical class name: "CQ", "LSI", "RSI", "CQAC-SI", "SI" or "CQAC".
  const char* Name() const;

  /// One-line statement of which rewriting algorithm is sound and complete
  /// for this class.
  const char* RecommendedAlgorithm() const;

  /// Renders e.g. "LSI (closed)" or "CQAC".
  std::string ToString() const;
};

/// Classifies `q`. Pure syntax; never fails.
ClassInfo ClassifyQuery(const Query& q);

}  // namespace cqac

#endif  // CQAC_ANALYSIS_CLASSIFY_H_
