// Syntactic class inference for CQAC queries.
//
// The paper's complexity results and algorithm preconditions hinge on which
// fragment a query's comparison set falls into (Table 2, Sections 3-5).
// ClassifyQuery computes the full picture in one pass so callers can pick
// the cheapest sound algorithm:
//
//       CQ  ⊂  LSI, RSI  ⊂  CQAC-SI  ⊂  SI  ⊂  CQAC
//
//  * CQ       — no comparisons; classical containment (NP).
//  * LSI/RSI  — all comparisons upper bounds (resp. lower bounds) on single
//               variables; Theorem 2.3 single-mapping containment applies and
//               RewriteLSIQuery (Figure 2) is complete.
//  * CQAC-SI  — semi-interval with at most one LSI or at most one RSI
//               comparison; the Section 3 equivalent-rewriting machinery
//               (Theorem 3.2) applies.
//  * SI       — all comparisons semi-interval; Lemma 5.1 implication and the
//               Figure 4 Datalog MCR apply.
//  * CQAC     — anything else (variable-variable or symbol comparisons);
//               only the general Theorem 2.1 test is sound.
//
// Orthogonally, the comparison set is *closed* when every ordered comparison
// is non-strict (<=) and *open* when every one is strict (<) — Afrati &
// Damigos show several complexity bounds differ between the closed and open
// cases.
#ifndef CQAC_ANALYSIS_CLASSIFY_H_
#define CQAC_ANALYSIS_CLASSIFY_H_

#include <string>
#include <vector>

#include "src/ir/query.h"

namespace cqac {

/// The inferred class of one query's comparison set.
struct ClassInfo {
  AcClass ac_class = AcClass::kNone;
  bool cqac_si = false;  // Section 5's CQAC-SI fragment (implies SI)
  bool closed = false;   // every ordered comparison non-strict (<=)
  bool open = false;     // every ordered comparison strict (<)

  /// Canonical class name: "CQ", "LSI", "RSI", "CQAC-SI", "SI" or "CQAC".
  const char* Name() const;

  /// One-line statement of which rewriting algorithm is sound and complete
  /// for this class.
  const char* RecommendedAlgorithm() const;

  /// Renders e.g. "LSI (closed)" or "CQAC".
  std::string ToString() const;
};

/// Classifies `q`. Pure syntax; never fails.
ClassInfo ClassifyQuery(const Query& q);

/// The syntactic role of one comparison in the class decision.
enum class CompKind {
  kEquality,  // X = t — not semi-interval, so it forces the general class
              // (Preprocess collapses equalities before classification)
  kLsi,       // X < c / X <= c — upper bound on a single variable
  kRsi,       // c < X / c <= X — lower bound on a single variable
  kVarVar,    // X < Y — forces the general CQAC class
  kOther,     // anything else (e.g. symbol or constant-vs-constant residue)
};

const char* CompKindName(CompKind k);

/// A classification with the per-comparison evidence that produced it. The
/// evidence is what makes the dispatch decision itself checkable: the
/// auditor recomputes each comparison's kind from the comparison structure
/// alone and re-derives the class from the kinds via the lattice rules,
/// independently of Query::Classify().
struct ClassificationEvidence {
  ClassInfo info;
  /// One entry per comparison of the query, in order.
  std::vector<CompKind> kinds;
  /// Indices (into the query's comparison list) of the comparisons that
  /// decided the class: for LSI/RSI every bound, for SI/CQAC the first
  /// comparison that forced the promotion. Empty for CQ.
  std::vector<size_t> deciding;
};

/// Classifies `q` and records the per-comparison evidence.
ClassificationEvidence ClassifyQueryWithEvidence(const Query& q);

}  // namespace cqac

#endif  // CQAC_ANALYSIS_CLASSIFY_H_
