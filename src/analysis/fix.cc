#include "src/analysis/fix.h"

#include <cstddef>
#include <set>
#include <sstream>
#include <utility>

#include "src/analysis/lint.h"
#include "src/base/strings.h"
#include "src/constraints/implication.h"
#include "src/ir/parser.h"

namespace cqac {

std::string FixEdit::ToString() const {
  return StrCat("rule #", rule_index + 1, ": ", message, " [", code, "]");
}

namespace {

// ---- rule-level rewrites ---------------------------------------------------

// Same gate as the linter: the implication engine only speaks the numeric
// dense order, so ordered comparisons over symbols take L006/L010 off the
// table.
bool HasSymbolComparison(const Query& q) {
  for (const Comparison& c : q.comparisons()) {
    if (c.op == CompOp::kEq) continue;
    if ((c.lhs.is_const() && c.lhs.value().is_symbol()) ||
        (c.rhs.is_const() && c.rhs.value().is_symbol()))
      return true;
  }
  return false;
}

bool TriviallyTrue(const Comparison& c) {
  if (c.lhs == c.rhs) return c.op != CompOp::kLt;  // t <= t, t = t
  if (!c.lhs.is_const() || !c.rhs.is_const()) return false;
  if (c.lhs.value().is_symbol() || c.rhs.value().is_symbol()) return false;
  const Rational& a = c.lhs.value().number();
  const Rational& b = c.rhs.value().number();
  switch (c.op) {
    case CompOp::kLt:
      return a < b;
    case CompOp::kLe:
      return a < b || a == b;
    case CompOp::kEq:
      return a == b;
  }
  return false;
}

void Substitute(Query* q, const Term& from, const Term& to) {
  auto subst = [&](Term& t) {
    if (t == from) t = to;
  };
  for (Term& t : q->head().args) subst(t);
  for (Atom& a : q->body())
    for (Term& t : a.args) subst(t);
  for (Comparison& c : q->comparisons()) {
    subst(c.lhs);
    subst(c.rhs);
  }
}

// Substitution leaves debris like `X <= X` or two copies of the same
// comparison; dropping it is part of the L010 rewrite (exactly what
// constraints::Preprocess does after merging).
void CleanComparisons(Query* q) {
  std::vector<Comparison> kept;
  for (const Comparison& c : q->comparisons()) {
    if (TriviallyTrue(c)) continue;
    bool dup = false;
    for (const Comparison& k : kept)
      if (k == c) {
        dup = true;
        break;
      }
    if (!dup) kept.push_back(c);
  }
  q->comparisons() = std::move(kept);
}

// L010: the first pair of terms the comparisons force equal (and that is not
// an explicit `=`, which preprocessing handles silently) is merged. Mirrors
// RuleLinter::CheckForcedEqualities' search order so the fix lands on the
// diagnosed pair.
bool FixOneForcedEquality(Query* q, int rule_index,
                          std::vector<FixEdit>* edits) {
  const std::vector<Comparison>& cs = q->comparisons();
  auto explicit_eq = [&](const Term& a, const Term& b) {
    for (const Comparison& c : cs)
      if (c.op == CompOp::kEq &&
          ((c.lhs == a && c.rhs == b) || (c.lhs == b && c.rhs == a)))
        return true;
    return false;
  };
  auto forced = [&](const Term& a, const Term& b) {
    Result<bool> r = ImpliesConjunction(
        cs, {Comparison(a, CompOp::kLe, b), Comparison(b, CompOp::kLe, a)});
    return r.ok() && r.value();
  };
  std::set<int> vars = q->ComparisonVars();
  std::vector<int> vv(vars.begin(), vars.end());
  for (size_t i = 0; i < vv.size(); ++i) {
    Term a = Term::Var(vv[i]);
    for (size_t j = i + 1; j < vv.size(); ++j) {
      Term b = Term::Var(vv[j]);
      if (explicit_eq(a, b) || !forced(a, b)) continue;
      edits->push_back({"L010", rule_index,
                        StrCat("substituted ", q->VarName(vv[j]), " := ",
                               q->VarName(vv[i]),
                               " (the comparisons force them equal)")});
      Substitute(q, b, a);
      CleanComparisons(q);
      return true;
    }
    for (const Rational& c : q->ComparisonConstants()) {
      Term b = Term::Const(Value(c));
      if (explicit_eq(a, b) || !forced(a, b)) continue;
      edits->push_back({"L010", rule_index,
                        StrCat("substituted ", q->VarName(vv[i]), " := ",
                               c.ToString(),
                               " (the comparisons force the variable to the "
                               "constant)")});
      Substitute(q, a, b);
      CleanComparisons(q);
      return true;
    }
  }
  return false;
}

// L008: drops the first subgoal that duplicates an earlier one exactly.
bool FixOneDuplicateSubgoal(Query* q, int rule_index,
                            std::vector<FixEdit>* edits) {
  std::vector<Atom>& body = q->body();
  for (size_t i = 0; i < body.size(); ++i)
    for (size_t j = 0; j < i; ++j) {
      if (!(body[i] == body[j])) continue;
      edits->push_back({"L008", rule_index,
                        StrCat("dropped subgoal #", i + 1, " '",
                               body[i].predicate, "(...)' (duplicates subgoal #",
                               j + 1, ")")});
      body.erase(body.begin() + static_cast<std::ptrdiff_t>(i));
      return true;
    }
  return false;
}

// L006: drops the first non-ground comparison implied by the remaining ones
// (ground comparisons are L007's; folding those changes what the linter
// reports, so --fix leaves them alone).
bool FixOneRedundantComparison(Query* q, int rule_index,
                               std::vector<FixEdit>* edits) {
  const std::vector<Comparison>& cs = q->comparisons();
  for (size_t i = 0; i < cs.size(); ++i) {
    if (cs[i].lhs.is_const() && cs[i].rhs.is_const()) continue;
    std::vector<Comparison> rest;
    for (size_t j = 0; j < cs.size(); ++j)
      if (j != i) rest.push_back(cs[j]);
    Result<bool> implied = ImpliesConjunction(rest, {cs[i]});
    if (!implied.ok() || !implied.value()) continue;
    edits->push_back(
        {"L006", rule_index,
         StrCat("dropped comparison '", q->TermToString(cs[i].lhs), " ",
                CompOpName(cs[i].op), " ", q->TermToString(cs[i].rhs),
                "' (implied by the remaining comparisons)")});
    q->comparisons() = std::move(rest);
    return true;
  }
  return false;
}

}  // namespace

bool FixQuery(Query* q, int rule_index, std::vector<FixEdit>* edits) {
  size_t before = edits->size();
  // The gates hold under every rewrite below (all are equivalence-preserving
  // and none can introduce a symbol comparison), so compute them once.
  bool implication_ok =
      !HasSymbolComparison(*q) && AcsConsistent(q->comparisons());
  // One rewrite per round, L010 first: substitutions create the duplicates
  // and redundancies the later passes clean up. Each round removes a
  // variable, a subgoal, or a comparison, so the loop terminates; the guard
  // is a belt-and-braces bound.
  for (int guard = 0; guard < 10000; ++guard) {
    if (implication_ok && FixOneForcedEquality(q, rule_index, edits)) continue;
    if (FixOneDuplicateSubgoal(q, rule_index, edits)) continue;
    if (implication_ok && FixOneRedundantComparison(q, rule_index, edits))
      continue;
    break;
  }
  return edits->size() > before;
}

namespace {

struct Replacement {
  size_t begin;
  size_t end;
  std::string text;
};

// Replaces back to front so earlier offsets stay valid. Spans come from the
// parser in source order and never overlap.
void ApplyReplacements(std::vector<Replacement>* repls, std::string* text) {
  for (auto it = repls->rbegin(); it != repls->rend(); ++it)
    text->replace(it->begin, it->end - it->begin, it->text);
}

FixResult FixPlainText(const std::string& text) {
  FixResult out{text, {}};
  ParsedProgram program = ParseProgramWithDiagnostics(text);
  if (!program.errors.empty()) return out;  // unsafe to edit around errors
  std::vector<Replacement> repls;
  for (size_t r = 0; r < program.rules.size(); ++r) {
    Query q = program.rules[r].query;
    std::vector<FixEdit> edits;
    if (!FixQuery(&q, static_cast<int>(r), &edits)) continue;
    const SourceSpan& span = program.rules[r].info.rule;
    if (!span.valid() || span.end.offset <= span.begin.offset ||
        span.end.offset > text.size())
      continue;  // no reliable span: report nothing rather than mis-edit
    repls.push_back({span.begin.offset, span.end.offset, q.ToString()});
    for (FixEdit& e : edits) out.edits.push_back(std::move(e));
  }
  ApplyReplacements(&repls, &out.text);
  return out;
}

// Fixes the rule text of one shell line (`view`, `query`, `fact`, `retract`,
// `contained`, `explain`); everything else passes through verbatim.
// `rule_index` runs over the whole script, matching LintShellText's rule
// numbering.
std::string FixShellLine(const std::string& line, int* rule_index,
                         std::vector<FixEdit>* edits) {
  size_t start = line.find_first_not_of(" \t\r");
  if (start == std::string::npos || line[start] == '%') return line;
  size_t end = line.find_first_of(" \t\r", start);
  if (end == std::string::npos) return line;
  std::string word = line.substr(start, end - start);
  if (word != "view" && word != "query" && word != "fact" &&
      word != "retract" && word != "contained" && word != "explain")
    return line;
  size_t rule_start = line.find_first_not_of(" \t\r", end);
  if (rule_start == std::string::npos) return line;
  std::string fragment = line.substr(rule_start);
  ParsedProgram parsed = ParseProgramWithDiagnostics(fragment);
  if (!parsed.errors.empty()) {
    *rule_index += static_cast<int>(parsed.rules.size());
    return line;
  }
  std::vector<Replacement> repls;
  for (ParsedQuery& pq : parsed.rules) {
    int idx = (*rule_index)++;
    Query q = pq.query;
    std::vector<FixEdit> rule_edits;
    if (!FixQuery(&q, idx, &rule_edits)) continue;
    const SourceSpan& span = pq.info.rule;
    if (!span.valid() || span.end.offset <= span.begin.offset ||
        span.end.offset > fragment.size())
      continue;
    repls.push_back({span.begin.offset, span.end.offset, q.ToString()});
    for (FixEdit& e : rule_edits) edits->push_back(std::move(e));
  }
  ApplyReplacements(&repls, &fragment);
  return line.substr(0, rule_start) + fragment;
}

FixResult FixShellText(const std::string& text) {
  FixResult out{text, {}};
  std::string fixed;
  std::istringstream in(text);
  std::string line;
  int rule_index = 0;
  bool first = true;
  while (std::getline(in, line)) {
    if (!first) fixed += '\n';
    first = false;
    fixed += FixShellLine(line, &rule_index, &out.edits);
  }
  if (!text.empty() && text.back() == '\n') fixed += '\n';
  if (out.changed()) out.text = std::move(fixed);
  return out;
}

}  // namespace

FixResult FixFileText(const std::string& text) {
  return LooksLikeShellScript(text) ? FixShellText(text) : FixPlainText(text);
}

}  // namespace cqac
