// Autofixes for the mechanical lint codes (cqac_lint --fix):
//
//   L010  comparisons force two terms equal       -> substitute and clean up
//   L008  duplicate subgoal                       -> drop the later copy
//   L006  comparison implied by the remaining ones -> drop it
//
// Fixes are applied greedily to a fixpoint, one rewrite at a time, in the
// order L010 -> L008 -> L006: substitution (L010) routinely *creates*
// duplicate subgoals and redundant comparisons, which the later passes then
// remove. Every individual rewrite preserves logical equivalence, so the
// fixed rule denotes the same relation on every database.
//
// The fixer edits source text surgically: only the byte range of a rule that
// actually changed is replaced (with the rule reserialized canonically);
// comments, blank lines, terminators and everything around the rule are kept
// verbatim. Shell scripts (view/query/fact/retract/contained/explain lines)
// are fixed per line. Files with parse errors are returned unchanged —
// fixing around unparsed text is not safe.
#ifndef CQAC_ANALYSIS_FIX_H_
#define CQAC_ANALYSIS_FIX_H_

#include <string>
#include <vector>

#include "src/ir/query.h"

namespace cqac {

/// One applied rewrite.
struct FixEdit {
  std::string code;     // "L006", "L008" or "L010"
  int rule_index = 0;   // rule ordinal in the file (0-based)
  std::string message;  // human-readable description of the rewrite

  std::string ToString() const;
};

/// The outcome of fixing one file.
struct FixResult {
  std::string text;            // fixed text (== input when nothing applied)
  std::vector<FixEdit> edits;  // applied rewrites, in application order

  bool changed() const { return !edits.empty(); }
};

/// Applies every available autofix to one rule in place. Appends a FixEdit
/// per rewrite. Returns true when anything changed.
bool FixQuery(Query* q, int rule_index, std::vector<FixEdit>* edits);

/// Fixes a whole file (plain rule program or cqac_shell script,
/// auto-detected exactly like LintFileText).
FixResult FixFileText(const std::string& text);

}  // namespace cqac

#endif  // CQAC_ANALYSIS_FIX_H_
