#include "src/analysis/lint.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "src/analysis/classify.h"
#include "src/base/strings.h"
#include "src/constraints/implication.h"
#include "src/constraints/intervals.h"
#include "src/containment/containment.h"
#include "src/engine/context.h"

namespace cqac {

const char* LintSeverityName(LintSeverity s) {
  switch (s) {
    case LintSeverity::kNote:
      return "note";
    case LintSeverity::kWarning:
      return "warning";
    case LintSeverity::kError:
      return "error";
  }
  return "?";
}

std::string LintDiagnostic::ToString() const {
  std::string pos = span.valid() ? span.ToString() : "-";
  return StrCat(pos, ": ", LintSeverityName(severity), ": ", message, " [",
                code, "]");
}

const std::vector<LintCheckInfo>& LintChecks() {
  static const std::vector<LintCheckInfo> kChecks = {
      {"L001", LintSeverity::kError,
       "unsafe head variable: a head variable is not bound by any ordinary "
       "subgoal"},
      {"L002", LintSeverity::kError,
       "range-unrestricted variable: a variable appears only in comparisons"},
      {"L003", LintSeverity::kError,
       "unsatisfiable comparisons: the query denotes the empty relation"},
      {"L004", LintSeverity::kError,
       "ordered comparison over a symbolic constant (theta is only defined "
       "on the dense numeric order)"},
      {"L005", LintSeverity::kError,
       "predicate used with conflicting arities within one program"},
      {"L006", LintSeverity::kWarning,
       "redundant comparison: implied by the remaining comparisons"},
      {"L007", LintSeverity::kWarning,
       "constant-foldable comparison: both sides are constants"},
      {"L008", LintSeverity::kWarning, "duplicate subgoal"},
      {"L009", LintSeverity::kWarning,
       "subsumed subgoal: dropping it leaves an equivalent query"},
      {"L010", LintSeverity::kWarning,
       "comparisons force two terms equal; preprocessing will merge them"},
      {"L011", LintSeverity::kWarning,
       "suspicious head shape: repeated head variable or constant in the "
       "head"},
      {"L012", LintSeverity::kNote,
       "class inference: reports the query's CQ/LSI/RSI/CQAC-SI/SI/CQAC "
       "class and the applicable rewriting algorithm"},
  };
  return kChecks;
}

LintSeverity MaxLintSeverity(const std::vector<LintDiagnostic>& diags) {
  LintSeverity max = LintSeverity::kNote;
  for (const LintDiagnostic& d : diags)
    if (static_cast<int>(d.severity) > static_cast<int>(max)) max = d.severity;
  return max;
}

namespace {

std::string CompToString(const Query& q, const Comparison& c) {
  return StrCat(q.TermToString(c.lhs), " ", CompOpName(c.op), " ",
                q.TermToString(c.rhs));
}

SourceSpan SpanOrInvalid(const std::vector<SourceSpan>& spans, size_t i) {
  return i < spans.size() ? spans[i] : SourceSpan{};
}

/// Per-rule linting state.
class RuleLinter {
 public:
  RuleLinter(const ParsedQuery& rule, int rule_index,
             const LintOptions& options, std::vector<LintDiagnostic>* out)
      : q_(rule.query),
        info_(rule.info),
        rule_index_(rule_index),
        options_(options),
        out_(out) {}

  void Run() {
    body_vars_ = q_.BodyVars();
    CheckUnsafeHead();          // L001
    CheckComparisonOnlyVars();  // L002
    CheckSymbolComparisons();   // L004
    // The implication-based checks assume comparisons over the numeric dense
    // order; symbol comparisons (L004) take them off the table.
    if (!has_symbol_comparison_) {
      CheckUnsatisfiable();          // L003
      CheckFoldableComparisons();    // L007
      if (consistent_) {
        CheckRedundantComparisons();  // L006
        CheckForcedEqualities();      // L010
      }
    }
    CheckDuplicateSubgoals();  // L008
    if (Clean()) CheckSubsumedSubgoals();  // L009
    CheckHeadShape();  // L011
    if (options_.notes && !q_.body().empty()) EmitClassNote();  // L012
  }

 private:
  bool Clean() const { return !has_error_; }

  void Emit(const char* code, LintSeverity severity, SourceSpan span,
            std::string message) {
    if (severity == LintSeverity::kError) has_error_ = true;
    out_->push_back(
        {code, severity, span, rule_index_, std::move(message)});
  }

  void CheckUnsafeHead() {
    for (int v : q_.HeadVars()) {
      if (body_vars_.count(v)) continue;
      Emit("L001", LintSeverity::kError,
           SpanOrInvalid(info_.var_first_use, static_cast<size_t>(v)),
           StrCat("head variable '", q_.VarName(v),
                  "' is not bound by any ordinary subgoal (unsafe rule)"));
    }
  }

  void CheckComparisonOnlyVars() {
    std::vector<bool> dist = q_.DistinguishedMask();
    for (int v : q_.ComparisonVars()) {
      if (body_vars_.count(v)) continue;
      if (dist[v]) continue;  // already reported as L001
      Emit("L002", LintSeverity::kError,
           SpanOrInvalid(info_.var_first_use, static_cast<size_t>(v)),
           StrCat("variable '", q_.VarName(v),
                  "' appears only in comparisons (range-unrestricted)"));
    }
  }

  void CheckSymbolComparisons() {
    for (size_t i = 0; i < q_.comparisons().size(); ++i) {
      const Comparison& c = q_.comparisons()[i];
      if (c.op == CompOp::kEq) continue;
      bool symbolic = (c.lhs.is_const() && c.lhs.value().is_symbol()) ||
                      (c.rhs.is_const() && c.rhs.value().is_symbol());
      if (!symbolic) continue;
      has_symbol_comparison_ = true;
      Emit("L004", LintSeverity::kError, SpanOrInvalid(info_.comparisons, i),
           StrCat("ordered comparison '", CompToString(q_, c),
                  "' over a symbolic constant (only numbers live on the "
                  "dense order)"));
    }
  }

  void CheckUnsatisfiable() {
    consistent_ = AcsConsistent(q_.comparisons());
    if (consistent_) return;
    Emit("L003", LintSeverity::kError, SpanOrInvalid(info_.comparisons, 0),
         "comparisons are unsatisfiable: the query denotes the empty "
         "relation on every database");
  }

  void CheckRedundantComparisons() {
    const std::vector<Comparison>& cs = q_.comparisons();
    for (size_t i = 0; i < cs.size(); ++i) {
      if (cs[i].lhs.is_const() && cs[i].rhs.is_const())
        continue;  // ground comparisons are L007's
      std::vector<Comparison> rest;
      for (size_t j = 0; j < cs.size(); ++j)
        if (j != i) rest.push_back(cs[j]);
      Result<bool> implied = ImpliesConjunction(rest, {cs[i]});
      if (!implied.ok() || !implied.value()) continue;
      std::string msg = StrCat("comparison '", CompToString(q_, cs[i]),
                               "' is implied by the remaining comparisons");
      if (cs[i].IsSemiInterval()) {
        int v = cs[i].lhs.is_var() ? cs[i].lhs.var() : cs[i].rhs.var();
        Query rest_q = q_;
        rest_q.comparisons() = rest;
        Result<std::map<int, VarInterval>> ivs = DeriveIntervals(rest_q);
        if (ivs.ok()) {
          auto it = ivs.value().find(v);
          if (it != ivs.value().end() && !it->second.Unbounded())
            msg = StrCat(msg, " (they already bound ", q_.VarName(v), " to ",
                         it->second.ToString(), ")");
        }
      }
      Emit("L006", LintSeverity::kWarning, SpanOrInvalid(info_.comparisons, i),
           std::move(msg));
    }
  }

  void CheckFoldableComparisons() {
    for (size_t i = 0; i < q_.comparisons().size(); ++i) {
      const Comparison& c = q_.comparisons()[i];
      if (!c.lhs.is_const() || !c.rhs.is_const()) continue;
      if (c.lhs.value().is_symbol() || c.rhs.value().is_symbol()) continue;
      const Rational& a = c.lhs.value().number();
      const Rational& b = c.rhs.value().number();
      bool holds = c.op == CompOp::kLt   ? a < b
                   : c.op == CompOp::kLe ? (a < b || a == b)
                                         : a == b;
      Emit("L007", LintSeverity::kWarning, SpanOrInvalid(info_.comparisons, i),
           StrCat("comparison '", CompToString(q_, c), "' is always ",
                  holds ? "true; drop it" : "false: the query is empty"));
    }
  }

  void CheckDuplicateSubgoals() {
    for (size_t i = 0; i < q_.body().size(); ++i) {
      for (size_t j = 0; j < i; ++j) {
        if (!(q_.body()[i] == q_.body()[j])) continue;
        Emit("L008", LintSeverity::kWarning, SpanOrInvalid(info_.body, i),
             StrCat("subgoal #", i + 1,
                    " duplicates subgoal #", j + 1, " exactly"));
        duplicate_.insert(i);
        break;
      }
    }
  }

  void CheckSubsumedSubgoals() {
    if (q_.body().size() < 2 ||
        q_.body().size() > options_.subsumption_max_atoms)
      return;
    EngineContext ctx;
    for (size_t i = 0; i < q_.body().size(); ++i) {
      if (duplicate_.count(i)) continue;  // already reported as L008
      Query without = q_;
      without.body().erase(without.body().begin() + i);
      if (!without.Validate().ok()) continue;  // removal would break safety
      // Dropping a conjunct only ever widens the query, so `without` is
      // redundant-free iff it is still contained in the original.
      Result<bool> sub = IsContained(ctx, without, q_);
      if (!sub.ok() || !sub.value()) continue;
      Emit("L009", LintSeverity::kWarning, SpanOrInvalid(info_.body, i),
           StrCat("subgoal #", i + 1, " '",
                  q_.body()[i].predicate,
                  "(...)' is subsumed: dropping it leaves an equivalent "
                  "query"));
    }
  }

  void CheckForcedEqualities() {
    const std::vector<Comparison>& cs = q_.comparisons();
    auto explicit_eq = [&](const Term& a, const Term& b) {
      for (const Comparison& c : cs)
        if (c.op == CompOp::kEq &&
            ((c.lhs == a && c.rhs == b) || (c.lhs == b && c.rhs == a)))
          return true;
      return false;
    };
    auto forced = [&](const Term& a, const Term& b) {
      Result<bool> r = ImpliesConjunction(
          cs, {Comparison(a, CompOp::kLe, b), Comparison(b, CompOp::kLe, a)});
      return r.ok() && r.value();
    };
    std::set<int> vars = q_.ComparisonVars();
    std::vector<int> vv(vars.begin(), vars.end());
    for (size_t i = 0; i < vv.size(); ++i) {
      Term a = Term::Var(vv[i]);
      bool merged = false;
      for (size_t j = i + 1; j < vv.size() && !merged; ++j) {
        Term b = Term::Var(vv[j]);
        if (explicit_eq(a, b) || !forced(a, b)) continue;
        Emit("L010", LintSeverity::kWarning, SpanOrInvalid(info_.comparisons, 0),
             StrCat("comparisons force ", q_.VarName(vv[i]), " = ",
                    q_.VarName(vv[j]),
                    "; preprocessing will merge the variables"));
        merged = true;
      }
      if (merged) continue;
      for (const Rational& c : q_.ComparisonConstants()) {
        Term b = Term::Const(Value(c));
        if (explicit_eq(a, b) || !forced(a, b)) continue;
        Emit("L010", LintSeverity::kWarning, SpanOrInvalid(info_.comparisons, 0),
             StrCat("comparisons force ", q_.VarName(vv[i]), " = ",
                    c.ToString(), "; preprocessing will substitute the "
                    "constant"));
        break;
      }
    }
  }

  void CheckHeadShape() {
    if (q_.body().empty()) return;  // facts put constants in the head
    std::set<int> seen;
    bool repeated = false, constant = false;
    for (const Term& t : q_.head().args) {
      if (t.is_const()) constant = true;
      else if (!seen.insert(t.var()).second) repeated = true;
    }
    if (repeated)
      Emit("L011", LintSeverity::kWarning, info_.head,
           "head repeats a variable; answers carry a duplicated column "
           "(often a typo in a view definition)");
    if (constant)
      Emit("L011", LintSeverity::kWarning, info_.head,
           "head contains a constant; the column is the same value in every "
           "answer (often a typo in a view definition)");
  }

  void EmitClassNote() {
    ClassInfo ci = ClassifyQuery(q_);
    Emit("L012", LintSeverity::kNote, info_.head,
         StrCat("query is in class ", ci.ToString(),
                "; applicable: ", ci.RecommendedAlgorithm()));
  }

  const Query& q_;
  const QuerySourceInfo& info_;
  int rule_index_;
  const LintOptions& options_;
  std::vector<LintDiagnostic>* out_;

  std::set<int> body_vars_;
  std::set<size_t> duplicate_;
  bool has_error_ = false;
  bool has_symbol_comparison_ = false;
  bool consistent_ = true;
};

/// L005: every use of a predicate (head or body) must agree on arity.
void CheckArities(const std::vector<ParsedQuery>& rules,
                  std::vector<LintDiagnostic>* out) {
  struct FirstUse {
    size_t arity;
    int rule_index;
    SourceSpan span;
  };
  std::map<std::string, FirstUse> first;
  auto visit = [&](const Atom& a, int rule_index, SourceSpan span) {
    auto [it, inserted] =
        first.emplace(a.predicate, FirstUse{a.args.size(), rule_index, span});
    if (inserted || it->second.arity == a.args.size()) return;
    std::string where =
        it->second.span.valid()
            ? StrCat("at ", it->second.span.ToString())
            : StrCat("in rule #", it->second.rule_index + 1);
    out->push_back({"L005", LintSeverity::kError, span, rule_index,
                    StrCat("predicate '", a.predicate, "' used with arity ",
                           a.args.size(), " but first used with arity ",
                           it->second.arity, " (", where, ")")});
  };
  for (size_t r = 0; r < rules.size(); ++r) {
    const ParsedQuery& pq = rules[r];
    visit(pq.query.head(), static_cast<int>(r), pq.info.head);
    for (size_t i = 0; i < pq.query.body().size(); ++i)
      visit(pq.query.body()[i], static_cast<int>(r),
            SpanOrInvalid(pq.info.body, i));
  }
}

void SortDiagnostics(std::vector<LintDiagnostic>* diags) {
  std::stable_sort(diags->begin(), diags->end(),
                   [](const LintDiagnostic& a, const LintDiagnostic& b) {
                     if (a.rule_index != b.rule_index)
                       return a.rule_index < b.rule_index;
                     return a.code < b.code;
                   });
}

}  // namespace

std::vector<LintDiagnostic> LintProgram(const std::vector<ParsedQuery>& rules,
                                        const LintOptions& options) {
  std::vector<LintDiagnostic> out;
  for (size_t r = 0; r < rules.size(); ++r)
    RuleLinter(rules[r], static_cast<int>(r), options, &out).Run();
  CheckArities(rules, &out);
  SortDiagnostics(&out);
  return out;
}

std::vector<LintDiagnostic> LintQuery(const ParsedQuery& rule,
                                      const LintOptions& options) {
  std::vector<LintDiagnostic> out;
  RuleLinter(rule, 0, options, &out).Run();
  SortDiagnostics(&out);
  return out;
}

// ---- whole-file linting (shared by cqac_lint and the serve `lint` op) ------

const char kLintParseCode[] = "P001";

namespace {

// Every cqac_shell command word (tools/cqac_shell.cc Dispatch), used for
// script auto-detection.
const char* const kShellCommands[] = {
    "view",  "query",    "fact",      "retract",   "classify", "rewrite",
    "er",    "minimize", "eval",      "answers",   "contained", "explain",
    "intervals", "lint", "verify",    "audit",     "plan",      "stats",
    "save",  "load",     "reset",     "help"};

bool IsShellCommandWord(const std::string& word) {
  for (const char* cmd : kShellCommands)
    if (word == cmd) return true;
  return false;
}

// Shifts a single-line span parsed from a line fragment back to its position
// in the whole file: the fragment starts at 1-based column `col0` of line
// `line_no`.
SourceSpan RemapSpan(SourceSpan span, int line_no, int col0) {
  if (!span.valid()) return span;
  span.begin.line = line_no;
  span.begin.col += col0 - 1;
  if (span.end.valid()) {
    span.end.line = line_no;
    span.end.col += col0 - 1;
  }
  return span;
}

std::vector<LintDiagnostic> LintPlainText(const std::string& text,
                                          const LintOptions& options) {
  ParsedProgram program = ParseProgramWithDiagnostics(text);
  std::vector<LintDiagnostic> out;
  for (const ParseDiagnostic& e : program.errors)
    out.push_back(
        {kLintParseCode, LintSeverity::kError, e.span, 0, e.message});
  for (LintDiagnostic& d : LintProgram(program.rules, options))
    out.push_back(std::move(d));
  return out;
}

std::vector<LintDiagnostic> LintShellText(const std::string& text,
                                          const LintOptions& options) {
  std::vector<LintDiagnostic> out;
  std::vector<ParsedQuery> rules;
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    size_t start = line.find_first_not_of(" \t\r");
    if (start == std::string::npos || line[start] == '%') continue;
    size_t end = line.find_first_of(" \t\r", start);
    if (end == std::string::npos) continue;  // no-argument command
    std::string word = line.substr(start, end - start);
    if (word != "view" && word != "query" && word != "fact" &&
        word != "retract" && word != "contained" && word != "explain")
      continue;  // not a rule-carrying command
    size_t rule_start = line.find_first_not_of(" \t\r", end);
    if (rule_start == std::string::npos) continue;
    std::string rule_text = line.substr(rule_start);
    int col0 = static_cast<int>(rule_start) + 1;
    ParsedProgram parsed = ParseProgramWithDiagnostics(rule_text);
    for (const ParseDiagnostic& e : parsed.errors)
      out.push_back({kLintParseCode, LintSeverity::kError,
                     RemapSpan(e.span, line_no, col0), 0, e.message});
    for (ParsedQuery& pq : parsed.rules) {
      QuerySourceInfo& info = pq.info;
      info.rule = RemapSpan(info.rule, line_no, col0);
      info.head = RemapSpan(info.head, line_no, col0);
      for (SourceSpan& s : info.body) s = RemapSpan(s, line_no, col0);
      for (SourceSpan& s : info.comparisons)
        s = RemapSpan(s, line_no, col0);
      for (SourceSpan& s : info.var_first_use)
        s = RemapSpan(s, line_no, col0);
      rules.push_back(std::move(pq));
    }
  }
  // Spans were remapped before linting, so diagnostics come out already
  // pointing at the right file positions.
  for (LintDiagnostic& d : LintProgram(rules, options))
    out.push_back(std::move(d));
  return out;
}

}  // namespace

bool LooksLikeShellScript(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    size_t start = line.find_first_not_of(" \t\r");
    if (start == std::string::npos || line[start] == '%') continue;
    size_t end = line.find_first_of(" \t\r", start);
    std::string word = line.substr(
        start, end == std::string::npos ? std::string::npos : end - start);
    return IsShellCommandWord(word);
  }
  return false;
}

std::vector<LintDiagnostic> LintFileText(const std::string& text,
                                         const LintOptions& options) {
  return LooksLikeShellScript(text) ? LintShellText(text, options)
                                    : LintPlainText(text, options);
}

}  // namespace cqac
