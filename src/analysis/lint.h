// The semantic linter: static checks over parsed CQAC programs.
//
// Every check has a stable code (L001...), a fixed severity, and points at a
// source span when the input came through ParseQueryWithInfo /
// ParseProgramWithDiagnostics. The registry:
//
//   L001 error    unsafe head variable (not bound by any ordinary subgoal)
//   L002 error    variable appears only in comparisons (range-unrestricted)
//   L003 error    unsatisfiable comparisons: the query is trivially empty
//   L004 error    ordered comparison over a symbolic constant
//   L005 error    predicate used with conflicting arities in one program
//   L006 warning  comparison implied by the remaining comparisons
//   L007 warning  constant-foldable comparison (both sides constants)
//   L008 warning  duplicate subgoal
//   L009 warning  subsumed subgoal (dropping it leaves an equivalent query)
//   L010 warning  comparisons force variables equal (preprocessing merges)
//   L011 warning  suspicious head shape (repeated variable / constant)
//   L012 note     class inference: CQ/LSI/RSI/CQAC-SI/SI/CQAC + algorithm
//
// Errors are violations of the preconditions the paper's theorems assume
// (safety, satisfiability, dense-order comparisons); warnings are
// semantically meaningful but almost certainly unintended redundancies;
// notes are informational.
#ifndef CQAC_ANALYSIS_LINT_H_
#define CQAC_ANALYSIS_LINT_H_

#include <string>
#include <vector>

#include "src/ir/parser.h"

namespace cqac {

enum class LintSeverity {
  kNote = 0,
  kWarning = 1,
  kError = 2,
};

/// Returns "note", "warning" or "error".
const char* LintSeverityName(LintSeverity s);

/// One diagnostic produced by the linter.
struct LintDiagnostic {
  std::string code;       // "L003"
  LintSeverity severity;
  SourceSpan span;        // invalid when no source info was available
  int rule_index = 0;     // which rule of the program (0-based)
  std::string message;

  /// Renders "3:12: error: ... [L003]" (no file name; callers prepend it).
  std::string ToString() const;
};

/// Registry entry describing one check.
struct LintCheckInfo {
  const char* code;
  LintSeverity severity;
  const char* summary;
};

/// All checks, in code order.
const std::vector<LintCheckInfo>& LintChecks();

struct LintOptions {
  /// Emit L012 class-inference notes.
  bool notes = true;
  /// L009 subsumption runs full containment tests; skip rules with more
  /// body atoms than this.
  size_t subsumption_max_atoms = 8;
};

/// Lints a whole program: per-rule checks on every rule plus the cross-rule
/// arity check (L005). Diagnostics come out ordered by rule, then by code.
std::vector<LintDiagnostic> LintProgram(const std::vector<ParsedQuery>& rules,
                                        const LintOptions& options = {});

/// Lints one rule (no cross-rule checks).
std::vector<LintDiagnostic> LintQuery(const ParsedQuery& rule,
                                      const LintOptions& options = {});

/// The maximum severity among `diags`; kNote when empty.
LintSeverity MaxLintSeverity(const std::vector<LintDiagnostic>& diags);

/// The code carried by parse-failure diagnostics ("P001"). Parse errors are
/// not lint checks (they have no LintCheckInfo entry) but share the
/// diagnostic shape so tools render them uniformly.
extern const char kLintParseCode[];

/// True when `text` reads as a cqac_shell script — its first effective
/// (non-blank, non-comment) line starts with a shell command word — rather
/// than a plain '.'-terminated rule program.
bool LooksLikeShellScript(const std::string& text);

/// Lints raw file text the way the `cqac_lint` CLI and the serve `lint` op
/// do: cqac_shell scripts (auto-detected via LooksLikeShellScript) have the
/// rule text of their view/query/fact/contained/explain lines extracted and
/// every diagnostic remapped to its original line and column; plain
/// programs parse with recovery. Parse errors come out first as P001 error
/// diagnostics in input order, followed by the lint diagnostics.
std::vector<LintDiagnostic> LintFileText(const std::string& text,
                                         const LintOptions& options = {});

}  // namespace cqac

#endif  // CQAC_ANALYSIS_LINT_H_
