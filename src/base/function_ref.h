// FunctionRef: a lightweight, non-owning, non-allocating reference to a
// callable, in the spirit of llvm::function_ref / C++26 std::function_ref.
//
// Unlike std::function it never heap-allocates and never copies the callee;
// it is two words (object pointer + invoker). The referenced callable must
// outlive every call — FunctionRef is therefore only suitable as a function
// *parameter* type (the library's enumeration callbacks), never for storage.
#ifndef CQAC_BASE_FUNCTION_REF_H_
#define CQAC_BASE_FUNCTION_REF_H_

#include <memory>
#include <type_traits>
#include <utility>

namespace cqac {

template <typename Signature>
class FunctionRef;

template <typename R, typename... Args>
class FunctionRef<R(Args...)> {
 public:
  /// Binds to any callable invocable as R(Args...). Intentionally implicit
  /// so lambdas convert at call sites, like std::function parameters did.
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, FunctionRef> &&
                std::is_invocable_r_v<R, F&, Args...>>>
  /*implicit*/ FunctionRef(F&& f) noexcept
      : obj_(const_cast<void*>(
            static_cast<const void*>(std::addressof(f)))),
        invoke_(&Invoke<std::remove_reference_t<F>>) {}

  R operator()(Args... args) const {
    return invoke_(obj_, std::forward<Args>(args)...);
  }

 private:
  template <typename F>
  static R Invoke(void* obj, Args... args) {
    return (*static_cast<F*>(obj))(std::forward<Args>(args)...);
  }

  void* obj_;
  R (*invoke_)(void*, Args...);
};

}  // namespace cqac

#endif  // CQAC_BASE_FUNCTION_REF_H_
