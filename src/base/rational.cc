#include "src/base/rational.h"

#include <cassert>
#include <cstdlib>
#include <numeric>

namespace cqac {
namespace {

// Checked narrowing from __int128 to int64_t.
int64_t Narrow(__int128 v) {
  assert(v <= INT64_MAX && v >= INT64_MIN && "rational overflow");
  return static_cast<int64_t>(v);
}

}  // namespace

Rational::Rational(int64_t num, int64_t den) {
  assert(den != 0 && "rational with zero denominator");
  if (den < 0) {
    num = -num;
    den = -den;
  }
  int64_t g = std::gcd(num < 0 ? -num : num, den);
  if (g == 0) g = 1;
  num_ = num / g;
  den_ = den / g;
}

Result<Rational> Rational::Parse(const std::string& text) {
  if (text.empty()) return Status::InvalidArgument("empty numeric literal");
  // Fraction form "a/b".
  size_t slash = text.find('/');
  if (slash != std::string::npos) {
    char* end = nullptr;
    long long num = std::strtoll(text.c_str(), &end, 10);
    if (end != text.c_str() + slash)
      return Status::InvalidArgument("bad numerator in '" + text + "'");
    long long den = std::strtoll(text.c_str() + slash + 1, &end, 10);
    if (*end != '\0' || den == 0)
      return Status::InvalidArgument("bad denominator in '" + text + "'");
    return Rational(num, den);
  }
  // Decimal form "a.b".
  size_t dot = text.find('.');
  if (dot != std::string::npos) {
    bool neg = text[0] == '-';
    std::string digits = text;
    digits.erase(dot, 1);
    char* end = nullptr;
    long long mantissa = std::strtoll(digits.c_str(), &end, 10);
    if (*end != '\0')
      return Status::InvalidArgument("bad decimal literal '" + text + "'");
    size_t frac_digits = text.size() - dot - 1;
    if (frac_digits == 0 || frac_digits > 15)
      return Status::InvalidArgument("bad decimal literal '" + text + "'");
    int64_t den = 1;
    for (size_t i = 0; i < frac_digits; ++i) den *= 10;
    (void)neg;
    return Rational(mantissa, den);
  }
  // Integer form.
  char* end = nullptr;
  long long v = std::strtoll(text.c_str(), &end, 10);
  if (*end != '\0')
    return Status::InvalidArgument("bad integer literal '" + text + "'");
  return Rational(v);
}

Rational Rational::Midpoint(const Rational& a, const Rational& b) {
  return (a + b) * Rational(1, 2);
}

Rational Rational::operator+(const Rational& o) const {
  __int128 num =
      static_cast<__int128>(num_) * o.den_ + static_cast<__int128>(o.num_) * den_;
  __int128 den = static_cast<__int128>(den_) * o.den_;
  return Rational(Narrow(num), Narrow(den));
}

Rational Rational::operator-(const Rational& o) const { return *this + (-o); }

Rational Rational::operator*(const Rational& o) const {
  __int128 num = static_cast<__int128>(num_) * o.num_;
  __int128 den = static_cast<__int128>(den_) * o.den_;
  return Rational(Narrow(num), Narrow(den));
}

bool Rational::operator<(const Rational& o) const {
  return static_cast<__int128>(num_) * o.den_ <
         static_cast<__int128>(o.num_) * den_;
}

std::string Rational::ToString() const {
  if (den_ == 1) return std::to_string(num_);
  return std::to_string(num_) + "/" + std::to_string(den_);
}

size_t Rational::Hash() const {
  size_t h = std::hash<int64_t>()(num_);
  h ^= std::hash<int64_t>()(den_) + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

}  // namespace cqac
