// Exact rational arithmetic over 64-bit numerator/denominator.
//
// The paper's queries range over a *dense* total order (e.g. the rationals).
// Constraint implication and consistency tests must be exact, so the library
// never uses floating point for comparison constants. Overflow is checked;
// overflowing operations saturate the process with an assertion in debug
// builds and report failure via TryAdd/TryMul in release paths that care.
#ifndef CQAC_BASE_RATIONAL_H_
#define CQAC_BASE_RATIONAL_H_

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>

#include "src/base/status.h"

namespace cqac {

/// An exact rational number num/den with den > 0 and gcd(num, den) == 1.
///
/// Rationals are the canonical dense order used for all comparison constants.
/// All relational operators perform exact cross-multiplication in 128-bit
/// intermediates, so they never overflow for any representable value.
class Rational {
 public:
  /// Zero.
  constexpr Rational() : num_(0), den_(1) {}

  /// An integer value.
  constexpr /*implicit*/ Rational(int64_t n) : num_(n), den_(1) {}

  /// num/den, normalized. `den` must be nonzero.
  Rational(int64_t num, int64_t den);

  int64_t num() const { return num_; }
  int64_t den() const { return den_; }

  bool is_integer() const { return den_ == 1; }

  /// Parses "123", "-4", "3.25" or "7/2". Rejects anything else.
  static Result<Rational> Parse(const std::string& text);

  /// Exact midpoint (a+b)/2 — always representable denseness witness
  /// provided intermediates do not overflow (asserted).
  static Rational Midpoint(const Rational& a, const Rational& b);

  Rational operator+(const Rational& o) const;
  Rational operator-(const Rational& o) const;
  Rational operator*(const Rational& o) const;
  Rational operator-() const { return Rational(-num_, den_); }

  bool operator==(const Rational& o) const {
    return num_ == o.num_ && den_ == o.den_;
  }
  bool operator!=(const Rational& o) const { return !(*this == o); }
  bool operator<(const Rational& o) const;
  bool operator<=(const Rational& o) const { return *this < o || *this == o; }
  bool operator>(const Rational& o) const { return o < *this; }
  bool operator>=(const Rational& o) const { return o <= *this; }

  /// Renders as "n" for integers, "n/d" otherwise.
  std::string ToString() const;

  /// Approximate double value (for reporting only, never for decisions).
  double ToDouble() const {
    return static_cast<double>(num_) / static_cast<double>(den_);
  }

  /// Stable hash suitable for unordered containers.
  size_t Hash() const;

 private:
  int64_t num_;
  int64_t den_;
};

inline std::ostream& operator<<(std::ostream& os, const Rational& r) {
  return os << r.ToString();
}

}  // namespace cqac

namespace std {
template <>
struct hash<cqac::Rational> {
  size_t operator()(const cqac::Rational& r) const { return r.Hash(); }
};
}  // namespace std

#endif  // CQAC_BASE_RATIONAL_H_
