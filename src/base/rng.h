// Deterministic random number generation for workload generators and
// property tests. All randomness in the library flows through Rng so that
// every experiment is reproducible from a single seed.
#ifndef CQAC_BASE_RNG_H_
#define CQAC_BASE_RNG_H_

#include <cstdint>
#include <random>
#include <vector>

namespace cqac {

/// A seeded 64-bit Mersenne-Twister wrapper with convenience draws.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t Uniform(int64_t lo, int64_t hi) {
    std::uniform_int_distribution<int64_t> d(lo, hi);
    return d(engine_);
  }

  /// Bernoulli draw with probability `p` of true.
  bool Chance(double p) {
    std::bernoulli_distribution d(p);
    return d(engine_);
  }

  /// Uniform pick from a nonempty vector.
  template <typename T>
  const T& Pick(const std::vector<T>& items) {
    return items[static_cast<size_t>(Uniform(0, items.size() - 1))];
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace cqac

#endif  // CQAC_BASE_RNG_H_
