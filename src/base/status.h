// Lightweight Status / Result error-handling primitives, in the style used by
// Arrow and RocksDB: fallible operations return a Status (or a Result<T>
// carrying a value), never throw.
#ifndef CQAC_BASE_STATUS_H_
#define CQAC_BASE_STATUS_H_

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace cqac {

/// Error categories used across the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   // malformed input (e.g. parse errors, bad arity)
  kInconsistent,      // arithmetic comparisons are unsatisfiable
  kNotFound,          // requested entity does not exist
  kUnsupported,       // input outside the fragment an algorithm handles
  kResourceExhausted, // overflow / limits exceeded
  kInternal,          // invariant violation inside the library
};

/// Returns a short human-readable name for `code` (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// A cheap, copyable success-or-error value. OK statuses carry no message.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status Inconsistent(std::string msg) {
    return Status(StatusCode::kInconsistent, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// A value-or-Status union. Accessing the value of an errored Result is a
/// programming error (asserted in debug builds).
template <typename T>
class Result {
 public:
  /*implicit*/ Result(T value) : value_(std::move(value)) {}
  /*implicit*/ Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "OK Result must carry a value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  /// Returns the value, or `fallback` when errored.
  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace cqac

/// Propagates a non-OK Status from the current function.
#define CQAC_RETURN_IF_ERROR(expr)            \
  do {                                        \
    ::cqac::Status _st = (expr);              \
    if (!_st.ok()) return _st;                \
  } while (0)

/// Evaluates a Result expression, assigning the value or propagating the
/// error. Usage: CQAC_ASSIGN_OR_RETURN(auto q, ParseQuery(text));
#define CQAC_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                               \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).value()

#define CQAC_ASSIGN_OR_RETURN(lhs, expr)                                   \
  CQAC_ASSIGN_OR_RETURN_IMPL(                                              \
      CQAC_STATUS_CONCAT(_result_, __LINE__), lhs, expr)

#define CQAC_STATUS_CONCAT_INNER(a, b) a##b
#define CQAC_STATUS_CONCAT(a, b) CQAC_STATUS_CONCAT_INNER(a, b)

#endif  // CQAC_BASE_STATUS_H_
