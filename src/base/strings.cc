#include "src/base/strings.h"

#include <cctype>

namespace cqac {

std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::vector<std::string> Split(const std::string& text, char sep) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : text) {
    if (c == sep) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  out.push_back(cur);
  return out;
}

std::string Strip(const std::string& text) {
  size_t b = 0;
  size_t e = text.size();
  while (b < e && std::isspace(static_cast<unsigned char>(text[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1]))) --e;
  return text.substr(b, e - b);
}

}  // namespace cqac
