// Small string utilities shared across the library.
#ifndef CQAC_BASE_STRINGS_H_
#define CQAC_BASE_STRINGS_H_

#include <sstream>
#include <string>
#include <vector>

namespace cqac {

/// Joins the elements of `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep);

/// Splits `text` on the single character `sep`; keeps empty fields.
std::vector<std::string> Split(const std::string& text, char sep);

/// Strips ASCII whitespace from both ends.
std::string Strip(const std::string& text);

/// printf-lite: concatenates the string forms of all arguments.
template <typename... Args>
std::string StrCat(Args&&... args) {
  std::ostringstream os;
  ((os << args), ...);
  return os.str();
}

}  // namespace cqac

#endif  // CQAC_BASE_STRINGS_H_
