#include "src/base/task_pool.h"

#include <atomic>

namespace cqac {
namespace {

// > 0 while the current thread is executing a pool chunk (workers are
// permanently in-pool). Nested ParallelFor calls observe it and run inline.
thread_local int tl_pool_depth = 0;

}  // namespace

struct TaskPool::Job {
  FunctionRef<void(size_t)> body;
  std::atomic<size_t> pending;  // chunks not yet finished

  Job(FunctionRef<void(size_t)> b, size_t chunks) : body(b), pending(chunks) {}
};

TaskPool::TaskPool(size_t threads) {
  queues_.resize(threads + 1);  // one deque per worker plus the caller slot
  for (auto& q : queues_) q = std::make_unique<Queue>();
  workers_.reserve(threads);
  for (size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this, i] { WorkerLoop(i); });
}

TaskPool::~TaskPool() {
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    stop_ = true;
  }
  wake_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

size_t TaskPool::HardwareConcurrency() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

bool TaskPool::InPoolTask() { return tl_pool_depth > 0; }

bool TaskPool::TryPop(size_t self, Chunk* out) {
  {
    Queue& q = *queues_[self];
    std::lock_guard<std::mutex> lock(q.mu);
    if (!q.chunks.empty()) {
      *out = q.chunks.front();
      q.chunks.pop_front();
      return true;
    }
  }
  // Steal from the back of the other queues (oldest chunks first), starting
  // at the neighbour to spread contention.
  for (size_t k = 1; k < queues_.size(); ++k) {
    Queue& q = *queues_[(self + k) % queues_.size()];
    std::lock_guard<std::mutex> lock(q.mu);
    if (!q.chunks.empty()) {
      *out = q.chunks.back();
      q.chunks.pop_back();
      return true;
    }
  }
  return false;
}

void TaskPool::RunChunk(const Chunk& c) {
  ++tl_pool_depth;
  for (size_t i = c.lo; i < c.hi; ++i) c.job->body(i);
  --tl_pool_depth;
  if (c.job->pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    // Last chunk: wake the blocked ParallelFor caller. Taking the lock
    // (even empty) orders the notify after the caller's predicate check.
    std::lock_guard<std::mutex> lock(wake_mu_);
    wake_cv_.notify_all();
  }
}

void TaskPool::WorkerLoop(size_t self) {
  ++tl_pool_depth;  // workers never fan out further
  size_t seen_epoch = 0;
  for (;;) {
    Chunk c;
    while (TryPop(self, &c)) RunChunk(c);
    std::unique_lock<std::mutex> lock(wake_mu_);
    wake_cv_.wait(lock,
                  [&] { return stop_ || work_epoch_ != seen_epoch; });
    if (stop_) return;
    seen_epoch = work_epoch_;
  }
}

void TaskPool::ParallelFor(size_t n, FunctionRef<void(size_t)> body) {
  if (n == 0) return;
  if (workers_.empty() || n < 2 || tl_pool_depth > 0) {
    for (size_t i = 0; i < n; ++i) body(i);
    return;
  }

  // Split [0, n) into up to 4 chunks per participant: enough slack for
  // stealing to balance uneven item costs without drowning in bookkeeping.
  const size_t participants = workers_.size() + 1;
  const size_t max_chunks = 4 * participants;
  const size_t num_chunks = n < max_chunks ? n : max_chunks;
  Job job(body, num_chunks);
  size_t next = 0;
  for (size_t c = 0; c < num_chunks; ++c) {
    const size_t len = (n - next) / (num_chunks - c);
    Chunk chunk{&job, next, next + len};
    next += len;
    Queue& q = *queues_[c % queues_.size()];
    std::lock_guard<std::mutex> lock(q.mu);
    q.chunks.push_back(chunk);
  }
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    ++work_epoch_;
  }
  wake_cv_.notify_all();

  // The caller participates, then blocks until every chunk (including the
  // stolen ones) has finished.
  const size_t caller_slot = workers_.size();
  Chunk c;
  while (TryPop(caller_slot, &c)) RunChunk(c);
  std::unique_lock<std::mutex> lock(wake_mu_);
  wake_cv_.wait(lock, [&] {
    return job.pending.load(std::memory_order_acquire) == 0;
  });
}

}  // namespace cqac
