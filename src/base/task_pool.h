// TaskPool: a small work-stealing thread pool for the engine's
// embarrassingly-parallel loops (MCD combination search, candidate
// verification, per-disjunct containment, join evaluation).
//
// The only scheduling primitive is ParallelFor(n, body): the index range
// [0, n) is split into contiguous chunks, the chunks are dealt round-robin
// to per-worker deques, and idle workers steal chunks from the back of
// other workers' deques. The calling thread participates in execution, so
// a pool is never required to make progress and `ParallelFor` cannot
// deadlock even when every worker is busy.
//
// Thread count 0 constructs a pool with no worker threads: ParallelFor then
// degenerates to a plain serial loop in index order, bit-identical to not
// having a pool at all. Nested ParallelFor calls (from inside a body) also
// run inline serially — parallelism is one level deep by design, which
// keeps the engine's deterministic-merge drivers easy to reason about.
//
// The pool itself is oblivious to budgets and cancellation: bodies observe
// EngineContext::ShouldStop() themselves (see src/engine/parallel.h).
#ifndef CQAC_BASE_TASK_POOL_H_
#define CQAC_BASE_TASK_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/base/function_ref.h"

namespace cqac {

class TaskPool {
 public:
  /// Spawns `threads` worker threads (0 = serial pool, no threads).
  explicit TaskPool(size_t threads);
  ~TaskPool();

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  /// Number of worker threads (0 for a serial pool).
  size_t thread_count() const { return workers_.size(); }

  /// Executing `body(i)` for every i in [0, n), possibly concurrently;
  /// returns when all n calls have completed. The caller's thread executes
  /// chunks too. With no workers, or n < 2, or when called from inside a
  /// pool task, runs serially inline in ascending index order.
  void ParallelFor(size_t n, FunctionRef<void(size_t)> body);

  /// The machine's hardware concurrency (>= 1).
  static size_t HardwareConcurrency();

  /// True while the calling thread is executing a pool chunk. The engine's
  /// deterministic-merge helpers use it to keep parallelism one level deep.
  static bool InPoolTask();

 private:
  // One contiguous chunk of a ParallelFor. `job` identifies the owning call
  // so stale entries (impossible by construction, but cheap to assert) are
  // never mixed across calls.
  struct Job;
  struct Chunk {
    Job* job;
    size_t lo, hi;
  };

  struct Queue {
    std::mutex mu;
    std::deque<Chunk> chunks;
  };

  void WorkerLoop(size_t self);
  // Pops a chunk: own queue front first, then steal from the back of the
  // other queues. Returns false when no work is available anywhere.
  bool TryPop(size_t self, Chunk* out);
  void RunChunk(const Chunk& c);

  std::vector<std::unique_ptr<Queue>> queues_;  // one per worker + caller slot
  std::vector<std::thread> workers_;

  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  bool stop_ = false;
  size_t work_epoch_ = 0;  // bumped whenever new chunks are published
};

}  // namespace cqac

#endif  // CQAC_BASE_TASK_POOL_H_
