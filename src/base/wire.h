// Little-endian byte encoding primitives for the on-disk formats
// (src/store logs and snapshots, src/engine adaptive-state blobs).
//
// All multi-byte integers are little-endian regardless of host order, so a
// data directory written on one machine reads back on any other. Strings
// are u32-length-prefixed byte runs. Doubles round-trip bit-exactly
// (IEEE-754 bits through memcpy) — calibration factors restored from a
// snapshot must compare equal to the ones that were saved, or recovered
// plans could diverge from the pre-crash process.
//
// Decoding goes through a Cursor with a sticky ok() latch: every Read*
// bounds-checks, and the first underflow pins ok() false and makes all
// later reads return zero values. Callers validate once at the end instead
// of checking every field.
#ifndef CQAC_BASE_WIRE_H_
#define CQAC_BASE_WIRE_H_

#include <cstdint>
#include <cstring>
#include <string>

namespace cqac {
namespace wire {

inline void AppendU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

inline void AppendU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

inline void AppendU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

inline void AppendI64(std::string* out, int64_t v) {
  AppendU64(out, static_cast<uint64_t>(v));
}

inline void AppendDouble(std::string* out, double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v), "double must be 64-bit");
  std::memcpy(&bits, &v, sizeof(bits));
  AppendU64(out, bits);
}

inline void AppendString(std::string* out, const std::string& s) {
  AppendU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

class Cursor {
 public:
  Cursor(const char* data, size_t size) : p_(data), n_(size) {}
  explicit Cursor(const std::string& buf) : Cursor(buf.data(), buf.size()) {}

  bool ok() const { return ok_; }
  size_t remaining() const { return n_ - off_; }
  bool AtEnd() const { return off_ == n_; }

  uint8_t ReadU8() {
    if (!Need(1)) return 0;
    return static_cast<uint8_t>(p_[off_++]);
  }

  uint32_t ReadU32() {
    if (!Need(4)) return 0;
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<uint32_t>(static_cast<uint8_t>(p_[off_++])) << (8 * i);
    return v;
  }

  uint64_t ReadU64() {
    if (!Need(8)) return 0;
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<uint64_t>(static_cast<uint8_t>(p_[off_++])) << (8 * i);
    return v;
  }

  int64_t ReadI64() { return static_cast<int64_t>(ReadU64()); }

  double ReadDouble() {
    uint64_t bits = ReadU64();
    double v = 0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  std::string ReadString() {
    uint32_t len = ReadU32();
    if (!Need(len)) return std::string();
    std::string s(p_ + off_, len);
    off_ += len;
    return s;
  }

 private:
  bool Need(size_t k) {
    if (!ok_ || n_ - off_ < k) {
      ok_ = false;
      return false;
    }
    return true;
  }

  const char* p_;
  size_t n_;
  size_t off_ = 0;
  bool ok_ = true;
};

}  // namespace wire
}  // namespace cqac

#endif  // CQAC_BASE_WIRE_H_
