#include "src/constraints/implication.h"

#include <algorithm>
#include <cassert>

#include "src/base/strings.h"
#include "src/constraints/inequality_graph.h"

namespace cqac {
namespace {

/// Exact serialization of a conjunction for the decision cache. Sorting the
/// rendered comparisons makes the key insensitive to conjunct order (a
/// conjunction is a set) while staying exact: two conjunctions share a key
/// only when they contain identical comparisons.
std::string ConjunctionKey(const std::vector<Comparison>& cs) {
  std::vector<std::string> parts;
  parts.reserve(cs.size());
  for (const Comparison& c : cs) {
    auto term = [](const Term& t) {
      return t.is_var() ? StrCat("?", t.var()) : t.value().ToString();
    };
    parts.push_back(StrCat(term(c.lhs), CompOpName(c.op), term(c.rhs)));
  }
  std::sort(parts.begin(), parts.end());
  return Join(parts, ",");
}

}  // namespace

bool AcsConsistent(const std::vector<Comparison>& cs) {
  InequalityGraph g;
  for (const Comparison& c : cs) {
    Status st = g.AddComparison(c);
    if (!st.ok()) return false;  // malformed counts as unsatisfiable
  }
  g.Close();
  return g.IsConsistent();
}

Result<bool> ImpliesConjunction(const std::vector<Comparison>& premise,
                                const std::vector<Comparison>& conclusion) {
  InequalityGraph g;
  for (const Comparison& c : premise) CQAC_RETURN_IF_ERROR(g.AddComparison(c));
  // Intern the conclusion's terms so constant-order edges involving them are
  // present in the closure.
  for (const Comparison& c : conclusion) {
    g.NodeFor(c.lhs);
    g.NodeFor(c.rhs);
  }
  g.Close();
  for (const Comparison& c : conclusion)
    if (!g.Implies(c)) return false;
  return true;
}

Result<bool> ImpliesConjunction(EngineContext& ctx,
                                const std::vector<Comparison>& premise,
                                const std::vector<Comparison>& conclusion) {
  ++ctx.stats().implication_calls;
  std::string key;
  if (ctx.caching_enabled()) {
    key = StrCat("I|", ConjunctionKey(premise), "=>",
                 ConjunctionKey(conclusion));
    if (std::optional<bool> hit = ctx.CacheLookup(key)) {
      ++ctx.stats().implication_cache_hits;
      return *hit;
    }
    ++ctx.stats().implication_cache_misses;
  }
  Result<bool> r = ImpliesConjunction(premise, conclusion);
  if (r.ok() && ctx.caching_enabled()) ctx.CacheStore(key, r.value());
  return r;
}

// ---------------------------------------------------------------------------
// Total preorder enumeration
// ---------------------------------------------------------------------------

int PreorderView::RankOf(const Term& t) const {
  for (size_t r = 0; r < groups_->size(); ++r)
    for (const Term& u : (*groups_)[r])
      if (u == t) return static_cast<int>(r);
  return -1;
}

bool PreorderView::Satisfies(const Comparison& c) const {
  int a = RankOf(c.lhs);
  int b = RankOf(c.rhs);
  assert(a >= 0 && b >= 0 && "comparison term missing from preorder");
  switch (c.op) {
    case CompOp::kLt:
      return a < b;
    case CompOp::kLe:
      return a <= b;
    case CompOp::kEq:
      return a == b;
  }
  return false;
}

bool PreorderView::SatisfiesAll(const std::vector<Comparison>& cs) const {
  for (const Comparison& c : cs)
    if (!Satisfies(c)) return false;
  return true;
}

namespace {

// Recursive enumerator: `groups` is the current ordered partition (constants
// pre-seeded in ascending order); variables in `vars[next..]` remain to be
// placed. A variable may join any existing group or open a new group in any
// gap. After each placement we check the premise comparisons whose terms are
// all placed; violated branches are pruned.
class Enumerator {
 public:
  Enumerator(std::vector<int> vars, const std::vector<Comparison>& premise,
             PreorderCallback callback)
      : vars_(std::move(vars)), premise_(premise), callback_(callback) {}

  // Seeds constants; returns the completed/aborted flag of the walk.
  bool Run(const std::vector<Rational>& constants) {
    groups_.clear();
    for (const Rational& c : constants)
      groups_.push_back({Term::Const(Value(c))});
    placed_.assign(vars_.empty() ? 0 : *std::max_element(vars_.begin(),
                                                         vars_.end()) + 1,
                   false);
    return Place(0);
  }

 private:
  bool TermPlaced(const Term& t) const {
    if (t.is_const()) return t.value().is_number();
    return t.var() < static_cast<int>(placed_.size()) && placed_[t.var()];
  }

  // Checks only the premise comparisons that involve the just-placed
  // variable `v` and whose other term is already placed.
  bool PremiseHoldsSoFar(int v) const {
    PreorderView view(&groups_);
    for (const Comparison& c : premise_) {
      bool involves_v = (c.lhs.is_var() && c.lhs.var() == v) ||
                        (c.rhs.is_var() && c.rhs.var() == v);
      if (!involves_v) continue;
      if (!TermPlaced(c.lhs) || !TermPlaced(c.rhs)) continue;
      if (!view.Satisfies(c)) return false;
    }
    return true;
  }

  bool Place(size_t next) {
    if (next == vars_.size()) {
      PreorderView view(&groups_);
      return callback_(view);
    }
    int v = vars_[next];
    Term vt = Term::Var(v);
    placed_[v] = true;
    const size_t n = groups_.size();
    // Option 1: join an existing group.
    for (size_t g = 0; g < n; ++g) {
      groups_[g].push_back(vt);
      if (PremiseHoldsSoFar(v)) {
        if (!Place(next + 1)) {
          groups_[g].pop_back();
          placed_[v] = false;
          return false;
        }
      }
      groups_[g].pop_back();
    }
    // Option 2: open a new group in gap position g (before groups_[g]).
    for (size_t g = 0; g <= n; ++g) {
      groups_.insert(groups_.begin() + g, {vt});
      if (PremiseHoldsSoFar(v)) {
        if (!Place(next + 1)) {
          groups_.erase(groups_.begin() + g);
          placed_[v] = false;
          return false;
        }
      }
      groups_.erase(groups_.begin() + g);
    }
    placed_[v] = false;
    return true;
  }

  std::vector<int> vars_;
  const std::vector<Comparison>& premise_;
  PreorderCallback callback_;
  std::vector<std::vector<Term>> groups_;
  std::vector<bool> placed_;
};

// Collects variables and numeric constants from comparisons into the output
// sets; rejects symbolic constants in ordered comparisons.
Status Collect(const std::vector<Comparison>& cs, std::set<int>* vars,
               std::set<Rational>* constants) {
  for (const Comparison& c : cs) {
    for (const Term* t : {&c.lhs, &c.rhs}) {
      if (t->is_var()) {
        vars->insert(t->var());
      } else if (t->value().is_number()) {
        constants->insert(t->value().number());
      } else {
        return Status::Unsupported(
            "symbolic constants are not supported in implication tests; "
            "preprocess (collapse equalities) first");
      }
    }
  }
  return Status::OK();
}

}  // namespace

bool ForEachConsistentPreorder(const std::set<int>& vars,
                               const std::vector<Rational>& constants,
                               const std::vector<Comparison>& premise,
                               PreorderCallback callback) {
  std::vector<Rational> sorted = constants;
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  std::vector<int> var_list(vars.begin(), vars.end());
  Enumerator e(std::move(var_list), premise, callback);
  return e.Run(sorted);
}

namespace {

/// Negates one order atom. `=` negates into two strict literals, so the
/// caller receives a list (a disjunction) of literals.
std::vector<Comparison> NegateAtom(const Comparison& c) {
  switch (c.op) {
    case CompOp::kLt:  // not(a < b) == b <= a
      return {Comparison(c.rhs, CompOp::kLe, c.lhs)};
    case CompOp::kLe:  // not(a <= b) == b < a
      return {Comparison(c.rhs, CompOp::kLt, c.lhs)};
    case CompOp::kEq:  // not(a = b) == a < b or b < a
      return {Comparison(c.lhs, CompOp::kLt, c.rhs),
              Comparison(c.rhs, CompOp::kLt, c.lhs)};
  }
  return {};
}

/// DPLL-style refutation: is `base ^ clause1 ^ ... ^ clausek` satisfiable,
/// where each clause is a disjunction of order literals? Branches on the
/// first clause, pruning branches whose conjunction is already inconsistent.
/// When `budget` is non-null its deadline is checked periodically; on expiry
/// *status is set and the (meaningless) return value must be ignored.
bool OrderCnfSatisfiable(std::vector<Comparison>* base,
                         const std::vector<std::vector<Comparison>>& clauses,
                         size_t next_clause, const Budget* budget,
                         uint64_t* steps, Status* status) {
  if (budget != nullptr && (++*steps & 0xFF) == 0) {
    *status = budget->CheckDeadline("disjunction implication");
    if (!status->ok()) return false;
  }
  if (!AcsConsistent(*base)) return false;
  if (next_clause == clauses.size()) return true;
  for (const Comparison& literal : clauses[next_clause]) {
    base->push_back(literal);
    bool sat = OrderCnfSatisfiable(base, clauses, next_clause + 1, budget,
                                   steps, status);
    base->pop_back();
    if (!status->ok()) return false;
    if (sat) return true;
  }
  return false;
}

Result<bool> ImpliesDisjunctionImpl(
    const std::vector<Comparison>& premise,
    const std::vector<std::vector<Comparison>>& disjuncts,
    const Budget* budget) {
  // Validate inputs (no symbolic constants in ordered comparisons) using the
  // same collector the preorder enumerator relies on.
  std::set<int> vars;
  std::set<Rational> const_set;
  CQAC_RETURN_IF_ERROR(Collect(premise, &vars, &const_set));
  for (const auto& d : disjuncts)
    CQAC_RETURN_IF_ERROR(Collect(d, &vars, &const_set));

  // E => D1 v ... v Dn  iff  E ^ not(D1) ^ ... ^ not(Dn) is unsatisfiable.
  // not(Di) is a clause (disjunction) of negated literals; satisfiability of
  // the premise plus one literal per clause is decided by graph consistency.
  std::vector<std::vector<Comparison>> clauses;
  for (const auto& d : disjuncts) {
    std::vector<Comparison> clause;
    for (const Comparison& atom : d)
      for (const Comparison& lit : NegateAtom(atom)) clause.push_back(lit);
    if (clause.empty()) return true;  // an empty conjunction is always true
    clauses.push_back(std::move(clause));
  }
  std::vector<Comparison> base = premise;
  uint64_t steps = 0;
  Status status = Status::OK();
  bool sat = OrderCnfSatisfiable(&base, clauses, 0, budget, &steps, &status);
  CQAC_RETURN_IF_ERROR(status);
  return !sat;
}

}  // namespace

Result<bool> ImpliesDisjunction(
    const std::vector<Comparison>& premise,
    const std::vector<std::vector<Comparison>>& disjuncts) {
  return ImpliesDisjunctionImpl(premise, disjuncts, nullptr);
}

Result<bool> ImpliesDisjunction(
    EngineContext& ctx, const std::vector<Comparison>& premise,
    const std::vector<std::vector<Comparison>>& disjuncts) {
  ++ctx.stats().disjunction_implications;
  Result<bool> r = ImpliesDisjunctionImpl(premise, disjuncts, &ctx.budget());
  if (!r.ok() && r.status().code() == StatusCode::kResourceExhausted)
    ++ctx.stats().budget_exhaustions;
  return r;
}

Result<bool> ImpliesDisjunctionByPreorders(
    const std::vector<Comparison>& premise,
    const std::vector<std::vector<Comparison>>& disjuncts) {
  std::set<int> vars;
  std::set<Rational> const_set;
  CQAC_RETURN_IF_ERROR(Collect(premise, &vars, &const_set));
  for (const auto& d : disjuncts)
    CQAC_RETURN_IF_ERROR(Collect(d, &vars, &const_set));
  std::vector<Rational> constants(const_set.begin(), const_set.end());

  // The implication holds iff no premise-consistent preorder falsifies every
  // disjunct.
  bool completed = ForEachConsistentPreorder(
      vars, constants, premise, [&disjuncts](const PreorderView& view) {
        for (const auto& d : disjuncts)
          if (view.SatisfiesAll(d)) return true;  // this preorder is covered
        return false;                             // counterexample: abort
      });
  return completed;
}

Result<bool> SiImpliesSiDisjunction(const std::vector<Comparison>& premise,
                                    const std::vector<Comparison>& atoms) {
  for (const Comparison& c : premise)
    if (!c.IsSemiInterval())
      return Status::InvalidArgument(
          "SiImpliesSiDisjunction premise must be semi-interval");
  for (const Comparison& c : atoms)
    if (!c.IsSemiInterval())
      return Status::InvalidArgument(
          "SiImpliesSiDisjunction atoms must be semi-interval");

  // An inconsistent premise implies everything.
  if (!AcsConsistent(premise)) return true;

  // (a) Direct implication: some premise atom alone implies some RHS atom.
  for (const Comparison& b : premise) {
    for (const Comparison& e : atoms) {
      Result<bool> direct = ImpliesConjunction({b}, {e});
      if (!direct.ok()) return direct.status();
      if (direct.value()) return true;
    }
  }
  // (b) Coupling: some pair of RHS atoms is a tautology, i.e. the
  // conjunction of their negations is inconsistent. not(a < b) == b <= a;
  // not(a <= b) == b < a.
  auto negate = [](const Comparison& c) {
    return Comparison(c.rhs, c.op == CompOp::kLt ? CompOp::kLe : CompOp::kLt,
                      c.lhs);
  };
  for (size_t i = 0; i < atoms.size(); ++i)
    for (size_t j = i + 1; j < atoms.size(); ++j)
      if (!AcsConsistent({negate(atoms[i]), negate(atoms[j])})) return true;
  return false;
}

}  // namespace cqac
