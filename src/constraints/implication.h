// Implication tests between sets of arithmetic comparisons over dense orders.
//
// Three engines, in increasing generality:
//  * ImpliesConjunction  — graph closure; sound & complete for a conjunction
//    conclusion over a dense total order;
//  * SiImpliesSiDisjunction — Lemma 5.1's direct/coupling characterization;
//    only valid when every comparison is semi-interval;
//  * ImpliesDisjunction  — the general test behind Theorem 2.1
//    (`beta2 => mu1(beta1) v ... v mus(beta1)`), via enumeration of all total
//    preorders of the variables consistent with the premise. Worst-case
//    exponential — this is the Pi-2-p step the paper's NP fragments avoid.
//
// All comparisons passed to one call must refer to a single common variable
// space (the same query's variable ids).
#ifndef CQAC_CONSTRAINTS_IMPLICATION_H_
#define CQAC_CONSTRAINTS_IMPLICATION_H_

#include <set>
#include <vector>

#include "src/base/function_ref.h"
#include "src/base/status.h"
#include "src/engine/context.h"
#include "src/ir/atom.h"

namespace cqac {

/// True iff the conjunction `cs` is satisfiable over a dense order.
bool AcsConsistent(const std::vector<Comparison>& cs);

/// True iff `premise => c1 ^ ... ^ cn` for the conjunction `conclusion`.
/// An inconsistent premise implies everything. Complete for dense orders.
Result<bool> ImpliesConjunction(const std::vector<Comparison>& premise,
                                const std::vector<Comparison>& conclusion);

/// Memoizing form: the decision is cached in `ctx` keyed on the exact
/// serialized comparisons (order-insensitive within each conjunction).
Result<bool> ImpliesConjunction(EngineContext& ctx,
                                const std::vector<Comparison>& premise,
                                const std::vector<Comparison>& conclusion);

/// A total preorder ("ranking") over variables and numeric constants:
/// terms with the same rank are equal, lower rank means strictly smaller.
class PreorderView {
 public:
  PreorderView(const std::vector<std::vector<Term>>* groups) : groups_(groups) {}

  /// Rank of a term; -1 if the term is not part of the preorder.
  int RankOf(const Term& t) const;

  int num_ranks() const { return static_cast<int>(groups_->size()); }

  /// Terms at rank `r` (at least one).
  const std::vector<Term>& GroupAt(int r) const { return (*groups_)[r]; }

  /// Evaluates one comparison under this preorder. Every term of `c` must
  /// have a rank.
  bool Satisfies(const Comparison& c) const;

  /// Evaluates a conjunction.
  bool SatisfiesAll(const std::vector<Comparison>& cs) const;

 private:
  const std::vector<std::vector<Term>>* groups_;
};

/// Callback: return true to continue enumeration, false to abort.
/// Non-owning — the callable must outlive the enumeration call.
using PreorderCallback = FunctionRef<bool(const PreorderView&)>;

/// Enumerates every total preorder of `vars` and `constants` that satisfies
/// `premise`, in a deterministic order. Returns true iff the enumeration ran
/// to completion (the callback never aborted).
bool ForEachConsistentPreorder(const std::set<int>& vars,
                               const std::vector<Rational>& constants,
                               const std::vector<Comparison>& premise,
                               PreorderCallback callback);

/// General disjunction implication (the right-hand side of Theorem 2.1):
/// `premise => D1 v ... v Dn` where each Di is a conjunction. Decided by
/// refutation — `premise ^ not(D1) ^ ... ^ not(Dn)` unsatisfiable — with
/// DPLL-style branching over one negated literal per disjunct and
/// inequality-graph consistency pruning. Worst case exponential in the
/// number of disjuncts (this is the Pi-2-p step), independent of the number
/// of variables. Returns Unsupported if symbolic constants occur.
Result<bool> ImpliesDisjunction(
    const std::vector<Comparison>& premise,
    const std::vector<std::vector<Comparison>>& disjuncts);

/// Budgeted form: checks the context's wall-clock deadline inside the DPLL
/// search and returns ResourceExhausted when it fires.
Result<bool> ImpliesDisjunction(
    EngineContext& ctx, const std::vector<Comparison>& premise,
    const std::vector<std::vector<Comparison>>& disjuncts);

/// Reference implementation of ImpliesDisjunction by enumeration of all
/// premise-consistent total preorders (exponential in the number of
/// variables). Used to cross-validate the production procedure in tests.
Result<bool> ImpliesDisjunctionByPreorders(
    const std::vector<Comparison>& premise,
    const std::vector<std::vector<Comparison>>& disjuncts);

/// Lemma 5.1: for semi-interval comparisons only,
/// `b1 ^ ... ^ bk => e1 v ... v en` holds iff some bi directly implies some
/// ej, or some pair (ei, ej) is a tautology ("coupling"), or the premise is
/// inconsistent. Returns InvalidArgument when inputs are not all SI.
Result<bool> SiImpliesSiDisjunction(const std::vector<Comparison>& premise,
                                    const std::vector<Comparison>& atoms);

}  // namespace cqac

#endif  // CQAC_CONSTRAINTS_IMPLICATION_H_
