#include "src/constraints/inequality_graph.h"

#include <cassert>

#include "src/base/strings.h"

namespace cqac {

int InequalityGraph::NodeFor(const Term& t) {
  int found = FindNode(t);
  if (found >= 0) return found;
  nodes_.push_back(t);
  closed_ = false;
  return static_cast<int>(nodes_.size()) - 1;
}

int InequalityGraph::FindNode(const Term& t) const {
  for (size_t i = 0; i < nodes_.size(); ++i)
    if (nodes_[i] == t) return static_cast<int>(i);
  return -1;
}

Status InequalityGraph::AddComparison(const Comparison& c) {
  for (const Term* t : {&c.lhs, &c.rhs}) {
    if (t->is_const() && t->value().is_symbol() && c.op != CompOp::kEq)
      return Status::InvalidArgument(
          StrCat("ordered comparison over symbol '", t->value().symbol(),
                 "'"));
  }
  int a = NodeFor(c.lhs);
  int b = NodeFor(c.rhs);
  switch (c.op) {
    case CompOp::kLt:
      edges_.push_back({a, b, Rel::kLt});
      break;
    case CompOp::kLe:
      edges_.push_back({a, b, Rel::kLe});
      break;
    case CompOp::kEq:
      edges_.push_back({a, b, Rel::kLe});
      edges_.push_back({b, a, Rel::kLe});
      break;
  }
  closed_ = false;
  return Status::OK();
}

void InequalityGraph::Close() {
  const int n = num_nodes();
  closure_.assign(n, std::vector<Rel>(n, Rel::kNone));
  // Reflexive <=.
  for (int i = 0; i < n; ++i) closure_[i][i] = Rel::kLe;
  // Explicit edges.
  for (const Edge& e : edges_)
    closure_[e.from][e.to] = StrongerRel(closure_[e.from][e.to], e.rel);
  // Implicit total order on numeric constants. (Distinct symbols and
  // number/symbol pairs carry no order edge; forced equality between them is
  // detected below.)
  for (int i = 0; i < n; ++i) {
    if (!nodes_[i].is_const() || !nodes_[i].value().is_number()) continue;
    for (int j = 0; j < n; ++j) {
      if (i == j || !nodes_[j].is_const() || !nodes_[j].value().is_number())
        continue;
      if (nodes_[i].value().number() < nodes_[j].value().number())
        closure_[i][j] = StrongerRel(closure_[i][j], Rel::kLt);
    }
  }
  // Floyd-Warshall closure with strictness propagation.
  for (int k = 0; k < n; ++k)
    for (int i = 0; i < n; ++i) {
      if (closure_[i][k] == Rel::kNone) continue;
      for (int j = 0; j < n; ++j)
        closure_[i][j] = StrongerRel(closure_[i][j],
                                     ComposeRel(closure_[i][k], closure_[k][j]));
    }
  // Consistency: a `<` self-loop is a contradiction; so is equality between
  // distinct constants (numeric pairs would already self-loop through their
  // order edge, but symbols need the direct check).
  consistent_ = true;
  for (int i = 0; i < n && consistent_; ++i)
    if (closure_[i][i] == Rel::kLt) consistent_ = false;
  for (int i = 0; i < n && consistent_; ++i) {
    if (!nodes_[i].is_const()) continue;
    for (int j = i + 1; j < n && consistent_; ++j) {
      if (!nodes_[j].is_const()) continue;
      if (AreEqual(i, j)) consistent_ = false;
    }
  }
  closed_ = true;
}

bool InequalityGraph::Implies(const Comparison& c) const {
  assert(closed_ && "call Close() first");
  // An inconsistent premise implies everything.
  if (!consistent_) return true;
  int a = FindNode(c.lhs);
  int b = FindNode(c.rhs);
  // Trivial cases not requiring graph membership.
  if (c.lhs == c.rhs) return c.op != CompOp::kLt;
  if (c.lhs.is_const() && c.rhs.is_const()) {
    const Value& va = c.lhs.value();
    const Value& vb = c.rhs.value();
    if (c.op == CompOp::kEq) return va == vb;
    if (va.is_number() && vb.is_number()) {
      return c.op == CompOp::kLt ? va.number() < vb.number()
                                 : va.number() <= vb.number();
    }
    return false;  // symbols are unordered
  }
  if (a < 0 || b < 0) return false;  // an unconstrained term
  switch (c.op) {
    case CompOp::kLt:
      return closure_[a][b] == Rel::kLt;
    case CompOp::kLe:
      return closure_[a][b] != Rel::kNone;
    case CompOp::kEq:
      return AreEqual(a, b);
  }
  return false;
}

std::vector<std::vector<int>> InequalityGraph::EqualityClasses() const {
  assert(closed_ && "call Close() first");
  const int n = num_nodes();
  std::vector<int> cls(n, -1);
  std::vector<std::vector<int>> out;
  for (int i = 0; i < n; ++i) {
    if (cls[i] >= 0) continue;
    std::vector<int> group{i};
    for (int j = i + 1; j < n; ++j) {
      if (cls[j] < 0 && AreEqual(i, j)) {
        cls[j] = static_cast<int>(out.size());
        group.push_back(j);
      }
    }
    if (group.size() > 1) {
      cls[i] = static_cast<int>(out.size());
      out.push_back(std::move(group));
    }
  }
  return out;
}

}  // namespace cqac
