// The inequality graph of a set of arithmetic comparisons (Section 4.3 and
// [Klug88]): nodes are terms (variables and constants), edges are <= or <
// relations. The transitive closure answers implication and consistency
// queries; the raw edge set supports the path analyses of Definition 4.2
// (lex-sets / geq-sets for exportable variables).
#ifndef CQAC_CONSTRAINTS_INEQUALITY_GRAPH_H_
#define CQAC_CONSTRAINTS_INEQUALITY_GRAPH_H_

#include <vector>

#include "src/base/status.h"
#include "src/ir/atom.h"

namespace cqac {

/// Strength of the derived relation between two nodes.
enum class Rel : uint8_t {
  kNone = 0,  // nothing derivable
  kLe = 1,    // a <= b
  kLt = 2,    // a <  b
};

/// Combines two path segments: the composite is < iff any segment is <.
inline Rel ComposeRel(Rel a, Rel b) {
  if (a == Rel::kNone || b == Rel::kNone) return Rel::kNone;
  return (a == Rel::kLt || b == Rel::kLt) ? Rel::kLt : Rel::kLe;
}

/// The stronger of two parallel derivations.
inline Rel StrongerRel(Rel a, Rel b) {
  return static_cast<Rel>(std::max(static_cast<uint8_t>(a),
                                   static_cast<uint8_t>(b)));
}

/// Inequality graph over terms with exact-constant ordering built in.
///
/// Usage: add comparisons (and any extra terms whose relations will be
/// queried), call Close(), then query Implies/RelationOf/AreEqual.
/// `=` comparisons become a pair of <= edges.
class InequalityGraph {
 public:
  InequalityGraph() = default;

  /// Interns `t` as a node and returns its index.
  int NodeFor(const Term& t);

  /// Returns the node index of `t`, or -1 if not interned.
  int FindNode(const Term& t) const;

  const Term& NodeTerm(int node) const { return nodes_[node]; }
  int num_nodes() const { return static_cast<int>(nodes_.size()); }

  /// Adds the edge(s) for one comparison. Symbolic constants are permitted
  /// in `=` comparisons only.
  Status AddComparison(const Comparison& c);

  /// An explicit directed edge `from (rel) to`.
  struct Edge {
    int from;
    int to;
    Rel rel;  // kLe or kLt
  };

  /// The raw (pre-closure) edges, including those from `=` comparisons but
  /// excluding the implicit constant-order edges.
  const std::vector<Edge>& edges() const { return edges_; }

  /// Computes the transitive closure, adding the implicit total order on
  /// numeric constants first. Idempotent; must be re-called after adding
  /// more comparisons.
  void Close();

  /// Valid after Close(): false iff a `<` self-loop exists or two distinct
  /// constants were forced equal.
  bool IsConsistent() const { return consistent_; }

  /// Valid after Close(): the derived relation from node `a` to node `b`.
  Rel RelationOf(int a, int b) const { return closure_[a][b]; }

  /// Valid after Close(): nodes derived equal (a<=b and b<=a).
  bool AreEqual(int a, int b) const {
    if (a == b) return true;
    return closure_[a][b] != Rel::kNone && closure_[a][b] != Rel::kLt &&
           closure_[b][a] != Rel::kNone && closure_[b][a] != Rel::kLt;
  }

  /// Valid after Close(): does the closed edge set entail `c`?
  /// Terms of `c` must already be interned (intern before Close()).
  bool Implies(const Comparison& c) const;

  /// Valid after Close(): groups of node indices forced pairwise equal
  /// (singletons omitted).
  std::vector<std::vector<int>> EqualityClasses() const;

 private:
  std::vector<Term> nodes_;
  std::vector<Edge> edges_;
  std::vector<std::vector<Rel>> closure_;
  bool closed_ = false;
  bool consistent_ = true;
};

}  // namespace cqac

#endif  // CQAC_CONSTRAINTS_INEQUALITY_GRAPH_H_
