#include "src/constraints/intervals.h"

#include "src/base/strings.h"
#include "src/constraints/inequality_graph.h"

namespace cqac {

bool VarInterval::Empty() const {
  if (!lower.has_value() || !upper.has_value()) return false;
  if (*lower < *upper) return false;
  if (*lower == *upper) return lower_strict || upper_strict;
  return true;
}

std::string VarInterval::ToString() const {
  std::string lo = lower.has_value()
                       ? StrCat(lower_strict ? "(" : "[", lower->ToString())
                       : "(-inf";
  std::string hi = upper.has_value()
                       ? StrCat(upper->ToString(), upper_strict ? ")" : "]")
                       : "+inf)";
  return StrCat(lo, ", ", hi);
}

Result<std::map<int, VarInterval>> DeriveIntervals(const Query& q) {
  InequalityGraph g;
  for (const Comparison& c : q.comparisons())
    CQAC_RETURN_IF_ERROR(g.AddComparison(c));
  // Intern every body variable so unconstrained ones get entries too.
  std::set<int> vars = q.BodyVars();
  for (int v : vars) g.NodeFor(Term::Var(v));
  g.Close();
  if (!g.IsConsistent())
    return Status::Inconsistent("comparisons are unsatisfiable");

  // Collect the constant nodes once.
  std::vector<std::pair<int, Rational>> constants;
  for (int n = 0; n < g.num_nodes(); ++n) {
    const Term& t = g.NodeTerm(n);
    if (t.is_const() && t.value().is_number())
      constants.emplace_back(n, t.value().number());
  }

  std::map<int, VarInterval> out;
  for (int v : vars) {
    VarInterval iv;
    int node = g.FindNode(Term::Var(v));
    for (const auto& [cnode, cval] : constants) {
      // Lower bounds: constant <= / < variable.
      Rel up = g.RelationOf(cnode, node);
      if (up != Rel::kNone) {
        bool strict = (up == Rel::kLt);
        if (!iv.lower.has_value() || *iv.lower < cval ||
            (*iv.lower == cval && strict && !iv.lower_strict)) {
          iv.lower = cval;
          iv.lower_strict = strict;
        }
      }
      // Upper bounds: variable <= / < constant.
      Rel down = g.RelationOf(node, cnode);
      if (down != Rel::kNone) {
        bool strict = (down == Rel::kLt);
        if (!iv.upper.has_value() || cval < *iv.upper ||
            (*iv.upper == cval && strict && !iv.upper_strict)) {
          iv.upper = cval;
          iv.upper_strict = strict;
        }
      }
    }
    out.emplace(v, iv);
  }
  return out;
}

}  // namespace cqac
