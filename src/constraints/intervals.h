// Consolidating a query's comparisons into per-variable intervals.
//
// The inequality closure derives, for every variable, the tightest lower
// and upper bounds implied by the whole comparison set — including bounds
// that only arise transitively through other variables (X <= Y, Y < 3 gives
// X < 3). Useful for presenting rewritings and for the shell's `intervals`
// command; also a natural consumer API for optimizers that want range
// predicates per column.
#ifndef CQAC_CONSTRAINTS_INTERVALS_H_
#define CQAC_CONSTRAINTS_INTERVALS_H_

#include <map>
#include <optional>
#include <string>

#include "src/base/status.h"
#include "src/ir/query.h"

namespace cqac {

/// The tightest implied interval for one variable.
struct VarInterval {
  std::optional<Rational> lower;
  bool lower_strict = false;  // lower < X vs lower <= X
  std::optional<Rational> upper;
  bool upper_strict = false;  // X < upper vs X <= upper

  bool Unbounded() const { return !lower.has_value() && !upper.has_value(); }

  /// True iff the interval contains no rational (possible only for
  /// inconsistent inputs, which DeriveIntervals rejects first).
  bool Empty() const;

  /// Renders "(2, 7]", "(-inf, 3)", "[5, +inf)".
  std::string ToString() const;
};

/// Computes each variable's tightest implied interval. Returns
/// kInconsistent when the comparisons are unsatisfiable. Variables with no
/// implied numeric bound map to an unbounded interval.
Result<std::map<int, VarInterval>> DeriveIntervals(const Query& q);

}  // namespace cqac

#endif  // CQAC_CONSTRAINTS_INTERVALS_H_
