#include "src/constraints/preprocess.h"

#include <algorithm>
#include <cassert>

#include "src/base/strings.h"
#include "src/constraints/implication.h"
#include "src/constraints/inequality_graph.h"
#include "src/ir/substitution.h"

namespace cqac {

Query CompactVariables(const Query& q) {
  // Collect used variable ids in order of first occurrence across head,
  // body, comparisons.
  std::vector<int> order;
  std::vector<int> remap(q.num_vars(), -1);
  auto visit = [&](const Term& t) {
    if (t.is_var() && remap[t.var()] < 0) {
      remap[t.var()] = static_cast<int>(order.size());
      order.push_back(t.var());
    }
  };
  for (const Term& t : q.head().args) visit(t);
  for (const Atom& a : q.body())
    for (const Term& t : a.args) visit(t);
  for (const Comparison& c : q.comparisons()) {
    visit(c.lhs);
    visit(c.rhs);
  }

  Query out;
  out.head().predicate = q.head().predicate;
  for (int old_id : order) out.FindOrAddVariable(q.VarName(old_id));
  auto translate = [&remap](const Term& t) {
    return t.is_var() ? Term::Var(remap[t.var()]) : t;
  };
  for (const Term& t : q.head().args) out.head().args.push_back(translate(t));
  for (const Atom& a : q.body()) {
    Atom na;
    na.predicate = a.predicate;
    for (const Term& t : a.args) na.args.push_back(translate(t));
    out.AddBodyAtom(std::move(na));
  }
  for (const Comparison& c : q.comparisons())
    out.AddComparison(Comparison(translate(c.lhs), c.op, translate(c.rhs)));
  return out;
}

Result<Query> Preprocess(const Query& q) {
  InequalityGraph g;
  for (const Comparison& c : q.comparisons())
    CQAC_RETURN_IF_ERROR(g.AddComparison(c));
  g.Close();
  if (!g.IsConsistent())
    return Status::Inconsistent(
        StrCat("comparisons of '", q.head().predicate,
               "' are unsatisfiable"));

  // Build the collapsing substitution from equality classes.
  VarMap subst(q.num_vars());
  for (const std::vector<int>& cls : g.EqualityClasses()) {
    // Pick the representative: a constant if present, else the variable with
    // the smallest id.
    const Term* rep = nullptr;
    for (int node : cls) {
      const Term& t = g.NodeTerm(node);
      if (t.is_const()) {
        // Two distinct constants in one class would be inconsistent, which
        // was already rejected.
        rep = &t;
        break;
      }
    }
    if (rep == nullptr) {
      int min_var = -1;
      for (int node : cls) {
        const Term& t = g.NodeTerm(node);
        if (t.is_var() && (min_var < 0 || t.var() < min_var)) min_var = t.var();
      }
      assert(min_var >= 0);
      for (int node : cls) {
        const Term& t = g.NodeTerm(node);
        if (t.is_var() && t.var() != min_var)
          subst.ForceBind(t.var(), Term::Var(min_var));
      }
      continue;
    }
    for (int node : cls) {
      const Term& t = g.NodeTerm(node);
      if (t.is_var()) subst.ForceBind(t.var(), *rep);
    }
  }

  Query out;
  out.head().predicate = q.head().predicate;
  for (const std::string& name : q.var_names()) out.FindOrAddVariable(name);
  for (const Term& t : q.head().args) out.head().args.push_back(subst.Apply(t));
  for (const Atom& a : q.body()) out.AddBodyAtom(subst.ApplyToAtom(a));

  for (const Comparison& c : q.comparisons()) {
    Comparison nc = subst.ApplyToComparison(c);
    if (nc.op == CompOp::kEq) continue;  // collapsed away
    if (nc.lhs == nc.rhs) continue;      // X <= X
    if (nc.lhs.is_const() && nc.rhs.is_const()) continue;  // true by closure
    if (std::find(out.comparisons().begin(), out.comparisons().end(), nc) ==
        out.comparisons().end())
      out.AddComparison(nc);
  }
  return CompactVariables(out);
}

Query RemoveRedundantComparisons(const Query& q) {
  Query out = q;
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t i = 0; i < out.comparisons().size(); ++i) {
      std::vector<Comparison> rest;
      for (size_t j = 0; j < out.comparisons().size(); ++j)
        if (j != i) rest.push_back(out.comparisons()[j]);
      Result<bool> implied = ImpliesConjunction(rest, {out.comparisons()[i]});
      if (implied.ok() && implied.value()) {
        out.comparisons().erase(out.comparisons().begin() + i);
        changed = true;
        break;
      }
    }
  }
  return out;
}

}  // namespace cqac
