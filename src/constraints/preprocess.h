// The preprocessing step of Section 2: detect variables forced equal by the
// comparisons, collapse them (replacing by one representative or by a
// constant), drop trivial comparisons, and report unsatisfiable queries.
//
// Example (from the paper):
//   q(X, Z) :- e(X, Y), e(Y, Z), X <= Y, Y <= X
// preprocesses to
//   q(X, Z) :- e(X, X), e(X, Z)
//
// All containment and rewriting algorithms in the library assume their
// inputs are preprocessed ("the ACs do not imply = restrictions").
#ifndef CQAC_CONSTRAINTS_PREPROCESS_H_
#define CQAC_CONSTRAINTS_PREPROCESS_H_

#include "src/base/status.h"
#include "src/ir/query.h"

namespace cqac {

/// Returns the preprocessed equivalent of `q`:
///  * variables forced equal are merged (a constant in the class wins);
///  * `=` comparisons are eliminated;
///  * trivially-true comparisons are dropped, duplicates removed;
///  * unused variables are renumbered away.
///
/// Returns StatusCode::kInconsistent when the comparisons are unsatisfiable
/// (the query denotes the empty relation on every database).
Result<Query> Preprocess(const Query& q);

/// Renumbers variables so that exactly the used ones remain, preserving
/// order of first use. Head, body and comparisons are rewritten.
Query CompactVariables(const Query& q);

/// Removes comparisons implied by the remaining ones (greedy, deterministic).
/// Keeps the query logically equivalent; used to present minimal rewritings
/// (Section 4.4 "optionally, we might remove the AC A > 3").
Query RemoveRedundantComparisons(const Query& q);

}  // namespace cqac

#endif  // CQAC_CONSTRAINTS_PREPROCESS_H_
