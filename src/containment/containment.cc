#include "src/containment/containment.h"

#include <algorithm>

#include "src/base/function_ref.h"
#include "src/base/strings.h"
#include "src/constraints/implication.h"
#include "src/constraints/preprocess.h"
#include "src/containment/homomorphism.h"
#include "src/engine/parallel.h"
#include "src/eval/evaluate.h"

namespace cqac {
namespace {

/// Preprocesses `q`; sets *inconsistent instead of failing when the
/// comparisons are unsatisfiable.
Result<Query> PreprocessOrFlag(const Query& q, bool* inconsistent) {
  *inconsistent = false;
  Result<Query> r = Preprocess(q);
  if (!r.ok() && r.status().code() == StatusCode::kInconsistent) {
    *inconsistent = true;
    return q;  // placeholder; caller must check the flag
  }
  return r;
}

/// Simplifies one disjunct (an image mu_i(beta1) over q2's terms):
///  * constant-constant comparisons evaluate away (false kills the disjunct);
///  * an ordered comparison touching a symbolic constant kills the disjunct
///    (symbols are unordered, so it is unsatisfiable).
/// Returns false iff the disjunct is dead.
bool SanitizeImage(std::vector<Comparison>* cs) {
  std::vector<Comparison> kept;
  for (const Comparison& c : *cs) {
    bool lhs_sym = c.lhs.is_const() && c.lhs.value().is_symbol();
    bool rhs_sym = c.rhs.is_const() && c.rhs.value().is_symbol();
    if (c.op == CompOp::kEq) {
      if (c.lhs == c.rhs) continue;
      if (c.lhs.is_const() && c.rhs.is_const()) {
        if (c.lhs.value() == c.rhs.value()) continue;
        return false;
      }
      kept.push_back(c);
      continue;
    }
    if (lhs_sym || rhs_sym) return false;
    if (c.lhs.is_const() && c.rhs.is_const()) {
      if (!EvaluateGroundComparison(c.lhs.value(), c.op, c.rhs.value()))
        return false;
      continue;
    }
    if (c.lhs == c.rhs) {
      if (c.op == CompOp::kLt) return false;
      continue;  // X <= X
    }
    kept.push_back(c);
  }
  *cs = std::move(kept);
  return true;
}

/// Flattens a total containment mapping into a dense vector indexed by the
/// container's variable ids. Returns false when some variable is unbound
/// (impossible for validated containers, where every variable occurs in the
/// body).
bool FlattenMapping(const VarMap& mu, std::vector<Term>* out) {
  out->clear();
  out->reserve(mu.num_source_vars());
  for (int v = 0; v < mu.num_source_vars(); ++v) {
    if (!mu.IsBound(v)) return false;
    out->push_back(mu.Get(v));
  }
  return true;
}

void RecordMapping(ContainmentWitness* witness, const VarMap& mu) {
  if (witness == nullptr) return;
  std::vector<Term> flat;
  if (FlattenMapping(mu, &flat)) witness->mappings.push_back(std::move(flat));
}

/// The uncached containment decision on preprocessed inputs.
Result<bool> DecideContainment(EngineContext& ctx, const Query& q2p,
                               const Query& q1p, bool fast_path,
                               ContainmentWitness* witness) {
  HomomorphismOptions hopts;

  if (fast_path) {
    // Theorem 2.3 (and its RSI mirror): Q2 contained in Q1 iff some single
    // containment mapping mu has beta2 => mu(beta1).
    bool found = false;
    Status inner = Status::OK();
    EnumerationOutcome outcome =
        ForEachHomomorphism(ctx, q1p, q2p, hopts, [&](const VarMap& mu) {
          std::vector<Comparison> image =
              mu.ApplyToComparisons(q1p.comparisons());
          if (!SanitizeImage(&image)) return true;  // dead disjunct
          Result<bool> implied =
              ImpliesConjunction(ctx, q2p.comparisons(), image);
          if (!implied.ok()) {
            inner = implied.status();
            return false;
          }
          if (implied.value()) {
            found = true;
            RecordMapping(witness, mu);
            return false;
          }
          return true;
        });
    CQAC_RETURN_IF_ERROR(inner);
    if (found) {
      if (witness != nullptr) witness->single_mapping = true;
      return true;
    }
    if (outcome == EnumerationOutcome::kBudgetExhausted)
      return Status::ResourceExhausted(
          "single-mapping containment search exceeded the budget");
    return false;
  }

  // General path (Theorem 2.1): collect every containment mapping's image
  // and test the disjunction implication.
  std::vector<std::vector<Comparison>> disjuncts;
  bool trivially_contained = false;
  EnumerationOutcome outcome =
      ForEachHomomorphism(ctx, q1p, q2p, hopts, [&](const VarMap& mu) {
        std::vector<Comparison> image =
            mu.ApplyToComparisons(q1p.comparisons());
        if (!SanitizeImage(&image)) return true;
        if (image.empty()) {
          trivially_contained = true;  // a mapping that needs no comparisons
          if (witness != nullptr) {
            witness->mappings.clear();
            RecordMapping(witness, mu);
            witness->single_mapping = true;
          }
          return false;
        }
        if (std::find(disjuncts.begin(), disjuncts.end(), image) ==
            disjuncts.end()) {
          disjuncts.push_back(std::move(image));
          RecordMapping(witness, mu);
        }
        return true;
      });
  if (trivially_contained) return true;
  if (outcome == EnumerationOutcome::kBudgetExhausted)
    return Status::ResourceExhausted(
        "containment-mapping enumeration exceeded the budget");
  if (disjuncts.empty()) return false;
  return ImpliesDisjunction(ctx, q2p.comparisons(), disjuncts);
}

}  // namespace

Result<bool> IsContained(EngineContext& ctx, const Query& q2, const Query& q1,
                         const ContainmentOptions& options,
                         ContainmentWitness* witness) {
  ++ctx.stats().containment_calls;
  if (witness != nullptr) *witness = ContainmentWitness{};
  if (q2.head().args.size() != q1.head().args.size())
    return Status::InvalidArgument(
        "containment between queries of different head arity");

  bool q2_inconsistent = false, q1_inconsistent = false;
  CQAC_ASSIGN_OR_RETURN(Query q2p, PreprocessOrFlag(q2, &q2_inconsistent));
  if (q2_inconsistent) {
    if (witness != nullptr) {
      witness->contained = q2;
      witness->container = q1;
      witness->contained_inconsistent = true;
    }
    return true;  // the empty query is contained anywhere
  }
  CQAC_ASSIGN_OR_RETURN(Query q1p, PreprocessOrFlag(q1, &q1_inconsistent));
  if (q1_inconsistent) return false;  // nothing nonempty fits in the empty one

  AcClass q1_class = q1p.Classify();
  bool fast_path = options.use_single_mapping_fast_path &&
                   (q1_class == AcClass::kNone || q1_class == AcClass::kLsi ||
                    q1_class == AcClass::kRsi);

  // Memoized on the canonical pair: containment is invariant under renaming
  // either query independently, which is exactly what interning quotients
  // away. Preprocessing happened above, so comparison-implied equalities
  // cannot split canonical classes. A witness request bypasses the cache:
  // the mappings must actually be recomputed.
  std::string key;
  if (ctx.caching_enabled() && witness == nullptr) {
    InternedQuery i2 = ctx.Intern(q2p);
    InternedQuery i1 = ctx.Intern(q1p);
    key = EngineContext::MakeContainmentKey(i2, i1, fast_path);
    if (std::optional<bool> hit = ctx.CacheLookup(key)) {
      ++ctx.stats().containment_cache_hits;
      return *hit;
    }
    ++ctx.stats().containment_cache_misses;
  }

  if (witness != nullptr) {
    witness->contained = q2p;
    witness->container = q1p;
  }
  Result<bool> r = DecideContainment(ctx, q2p, q1p, fast_path, witness);
  if (r.ok() && ctx.caching_enabled() && witness == nullptr)
    ctx.CacheStore(key, r.value());
  return r;
}

Result<bool> IsContained(const Query& q2, const Query& q1,
                         const ContainmentOptions& options) {
  EngineContext ctx;
  return IsContained(ctx, q2, q1, options);
}

Result<bool> IsEquivalent(EngineContext& ctx, const Query& q1, const Query& q2,
                          const ContainmentOptions& options) {
  CQAC_ASSIGN_OR_RETURN(bool a, IsContained(ctx, q1, q2, options));
  if (!a) return false;
  return IsContained(ctx, q2, q1, options);
}

Result<bool> IsEquivalent(const Query& q1, const Query& q2,
                          const ContainmentOptions& options) {
  EngineContext ctx;
  return IsEquivalent(ctx, q1, q2, options);
}

namespace {

/// Assigns an exact rational value to every rank of a preorder such that the
/// values are strictly increasing and every rank containing a numeric
/// constant gets that constant's value.
std::vector<Rational> RankValues(const PreorderView& view) {
  const int n = view.num_ranks();
  std::vector<std::optional<Rational>> fixed(n);
  for (int r = 0; r < n; ++r)
    for (const Term& t : view.GroupAt(r))
      if (t.is_const() && t.value().is_number())
        fixed[r] = t.value().number();

  std::vector<Rational> vals(n, Rational(0));
  int i = 0;
  while (i < n) {
    if (fixed[i].has_value()) {
      vals[i] = *fixed[i];
      ++i;
      continue;
    }
    // Run [i, j) of unfixed ranks; bounded by fixed values on either side
    // (if any).
    int j = i;
    while (j < n && !fixed[j].has_value()) ++j;
    const int k = j - i;
    if (i == 0 && j == n) {
      for (int t = 0; t < k; ++t) vals[i + t] = Rational(t);
    } else if (i == 0) {
      for (int t = 0; t < k; ++t)
        vals[i + t] = *fixed[j] - Rational(k - t);
    } else if (j == n) {
      for (int t = 0; t < k; ++t)
        vals[i + t] = vals[i - 1] + Rational(t + 1);
    } else {
      const Rational lo = vals[i - 1];
      const Rational hi = *fixed[j];
      for (int t = 0; t < k; ++t)
        vals[i + t] = lo + (hi - lo) * Rational(t + 1, k + 1);
    }
    i = j;
  }
  return vals;
}

/// Builds the canonical database of `q` under the preorder: every variable
/// is assigned its rank value, and each body atom becomes a fact. Returns
/// the assigned head tuple through *head.
Result<Database> CanonicalDatabase(const Query& q, const PreorderView& view,
                                   const std::vector<Rational>& vals,
                                   Tuple* head) {
  auto assign = [&](const Term& t) -> Value {
    if (t.is_const()) return t.value();
    int r = view.RankOf(t);
    // Variables outside any comparison were still enumerated (callers pass
    // every variable of q), so r >= 0 always.
    return Value(vals[r]);
  };
  Database db;
  for (const Atom& a : q.body()) {
    Tuple t;
    for (const Term& arg : a.args) t.push_back(assign(arg));
    CQAC_RETURN_IF_ERROR(db.Insert(a.predicate, std::move(t)));
  }
  head->clear();
  for (const Term& arg : q.head().args) head->push_back(assign(arg));
  return db;
}

/// Shared engine for the canonical-database procedures: enumerates q2's
/// consistent preorders and requires `accept(db, head)` on each. When
/// `budget` is non-null, its deadline is checked per canonical database.
Result<bool> ForAllCanonicalDatabases(
    const Query& q2, const std::vector<Rational>& extra_constants,
    const Budget* budget,
    FunctionRef<Result<bool>(const Database&, const Tuple&)> accept) {
  bool inconsistent = false;
  CQAC_ASSIGN_OR_RETURN(Query q2p, PreprocessOrFlag(q2, &inconsistent));
  if (inconsistent) return true;
  CQAC_RETURN_IF_ERROR(q2p.Validate());

  std::set<int> vars = q2p.BodyVars();
  std::vector<Rational> constants = q2p.ComparisonConstants();
  for (const Rational& c : extra_constants)
    if (std::find(constants.begin(), constants.end(), c) == constants.end())
      constants.push_back(c);
  // Numeric constants inside ordinary subgoals also participate in the
  // order (they may join/compare in q1).
  for (const Atom& a : q2p.body())
    for (const Term& t : a.args)
      if (t.is_const() && t.value().is_number() &&
          std::find(constants.begin(), constants.end(),
                    t.value().number()) == constants.end())
        constants.push_back(t.value().number());

  Status inner = Status::OK();
  bool all_ok = ForEachConsistentPreorder(
      vars, constants, q2p.comparisons(), [&](const PreorderView& view) {
        if (budget != nullptr) {
          inner = budget->CheckDeadline("canonical-database enumeration");
          if (!inner.ok()) return false;
        }
        std::vector<Rational> vals = RankValues(view);
        Tuple head;
        Result<Database> db = CanonicalDatabase(q2p, view, vals, &head);
        if (!db.ok()) {
          inner = db.status();
          return false;
        }
        Result<bool> ok = accept(db.value(), head);
        if (!ok.ok()) {
          inner = ok.status();
          return false;
        }
        return ok.value();  // a failing database aborts: not contained
      });
  CQAC_RETURN_IF_ERROR(inner);
  return all_ok;
}

/// Numeric constants from both comparisons and ordinary subgoals: a body
/// constant of the containing query joins against canonical values, so it
/// must be a possible rank.
std::vector<Rational> AllNumericConstants(const Query& q) {
  std::vector<Rational> out = q.ComparisonConstants();
  for (const Atom& a : q.body())
    for (const Term& t : a.args)
      if (t.is_const() && t.value().is_number() &&
          std::find(out.begin(), out.end(), t.value().number()) == out.end())
        out.push_back(t.value().number());
  return out;
}

}  // namespace

Result<bool> IsContainedByCanonicalDatabases(const Query& q2,
                                             const Query& q1) {
  if (q2.head().args.size() != q1.head().args.size())
    return Status::InvalidArgument(
        "containment between queries of different head arity");
  bool q1_inconsistent = false;
  CQAC_ASSIGN_OR_RETURN(Query q1p, PreprocessOrFlag(q1, &q1_inconsistent));
  std::vector<Rational> q1_constants =
      q1_inconsistent ? std::vector<Rational>{} : AllNumericConstants(q1p);

  return ForAllCanonicalDatabases(
      q2, q1_constants, nullptr,
      [&](const Database& db, const Tuple& head) -> Result<bool> {
        if (q1_inconsistent) return false;
        return QueryYieldsTuple(q1p, db, head);
      });
}

Result<bool> IsContainedInUnion(EngineContext& ctx, const Query& q,
                                const UnionQuery& u) {
  // Sagiv-Yannakakis fast path: for comparison-free inputs, containment in
  // a union holds iff containment in some single disjunct. (False once
  // comparisons are present — see the X<3 / X>1 example in the tests.)
  bool all_cq = q.IsConjunctiveOnly();
  for (const Query& d : u.disjuncts)
    if (!d.IsConjunctiveOnly()) all_cq = false;
  if (all_cq) {
    for (const Query& d : u.disjuncts)
      if (d.head().args.size() != q.head().args.size())
        return Status::InvalidArgument(
            "union containment between queries of different head arity");
    // First containing disjunct (in union order) decides; a hit cancels
    // the siblings since the disjunction is settled.
    ParallelOutcomes<Result<bool>> outcomes(
        ctx, u.disjuncts.size(),
        [&](size_t i) { return IsContained(ctx, q, u.disjuncts[i]); },
        [](const Result<bool>& r) { return !r.ok() || r.value(); });
    for (size_t i = 0; i < u.disjuncts.size(); ++i) {
      Result<bool>& r = outcomes.Get(i);
      if (!r.ok()) return r.status();
      if (r.value()) return true;
    }
    return false;
  }

  std::vector<Rational> constants;
  std::vector<Query> prepped;
  for (const Query& d : u.disjuncts) {
    if (d.head().args.size() != q.head().args.size())
      return Status::InvalidArgument(
          "union containment between queries of different head arity");
    bool inconsistent = false;
    CQAC_ASSIGN_OR_RETURN(Query dp, PreprocessOrFlag(d, &inconsistent));
    if (inconsistent) continue;
    for (const Rational& c : AllNumericConstants(dp)) constants.push_back(c);
    prepped.push_back(std::move(dp));
  }

  // The preorder enumeration is inherently serial (each canonical database
  // extends the previous prefix), but checking a database against the
  // disjuncts is independent work. Batch databases and fan each batch out;
  // with no pool the batch size is 1, which reproduces today's serial
  // check-after-every-database behaviour exactly.
  const bool fan_out =
      ctx.parallelism() > 0 && !TaskPool::InPoolTask();
  const size_t batch_cap = fan_out ? 4 * (ctx.parallelism() + 1) : 1;
  std::vector<std::pair<Database, Tuple>> batch;

  // Returns false (or an error) exactly when the serial loop would have:
  // the first database in batch order that no disjunct covers decides.
  auto check_batch = [&]() -> Result<bool> {
    ParallelOutcomes<Result<bool>> outcomes(
        ctx, batch.size(),
        [&](size_t i) -> Result<bool> {
          for (const Query& d : prepped) {
            CQAC_ASSIGN_OR_RETURN(
                bool covered,
                QueryYieldsTuple(d, batch[i].first, batch[i].second,
                                 &ctx.stats()));
            if (covered) return true;
          }
          return false;
        },
        // An uncovered database decides the whole call, so treat it like an
        // error for cancellation purposes: siblings stop early.
        [](const Result<bool>& r) { return !r.ok() || !r.value(); });
    for (size_t i = 0; i < batch.size(); ++i) {
      Result<bool>& r = outcomes.Get(i);
      if (!r.ok()) return r.status();
      if (!r.value()) return false;
    }
    batch.clear();
    return true;
  };

  CQAC_ASSIGN_OR_RETURN(
      bool all_ok,
      ForAllCanonicalDatabases(
          q, constants, &ctx.budget(),
          [&](const Database& db, const Tuple& head) -> Result<bool> {
            batch.emplace_back(db, head);
            if (batch.size() < batch_cap) return true;  // keep enumerating
            return check_batch();
          }));
  if (!all_ok) return false;
  if (!batch.empty()) return check_batch();
  return true;
}

Result<bool> IsContainedInUnion(const Query& q, const UnionQuery& u) {
  EngineContext ctx;
  return IsContainedInUnion(ctx, q, u);
}

Result<bool> UnionIsContained(EngineContext& ctx, const UnionQuery& u,
                              const Query& q1,
                              const ContainmentOptions& options) {
  // Per-disjunct checks are independent; merge in disjunct order so the
  // first failing (or erroring) disjunct decides, exactly as the serial
  // loop did. A "not contained" outcome cancels siblings — it decides the
  // conjunction, so remaining work is wasted anyway.
  ParallelOutcomes<Result<bool>> outcomes(
      ctx, u.disjuncts.size(),
      [&](size_t i) { return IsContained(ctx, u.disjuncts[i], q1, options); },
      [](const Result<bool>& r) { return !r.ok() || !r.value(); });
  for (size_t i = 0; i < u.disjuncts.size(); ++i) {
    Result<bool>& r = outcomes.Get(i);
    if (!r.ok()) return r.status();
    if (!r.value()) return false;
  }
  return true;
}

Result<bool> UnionIsContained(const UnionQuery& u, const Query& q1,
                              const ContainmentOptions& options) {
  EngineContext ctx;
  return UnionIsContained(ctx, u, q1, options);
}

Result<UnionQuery> MinimizeUnion(EngineContext& ctx, const UnionQuery& u,
                                 UnionMinimizationWitness* witness) {
  // Greedy: repeatedly try to drop one disjunct; a disjunct is droppable
  // when it is contained in the union of the remaining ones.
  std::vector<Query> kept = u.disjuncts;
  std::vector<size_t> kept_idx(kept.size());
  for (size_t i = 0; i < kept_idx.size(); ++i) kept_idx[i] = i;
  bool changed = true;
  while (changed && kept.size() > 1) {
    changed = false;
    for (size_t i = 0; i < kept.size(); ++i) {
      UnionQuery rest;
      for (size_t j = 0; j < kept.size(); ++j)
        if (j != i) rest.disjuncts.push_back(kept[j]);
      CQAC_ASSIGN_OR_RETURN(bool covered,
                            IsContainedInUnion(ctx, kept[i], rest));
      if (covered) {
        kept.erase(kept.begin() + i);
        kept_idx.erase(kept_idx.begin() + i);
        changed = true;
        break;
      }
    }
  }
  UnionQuery out;
  out.disjuncts = kept;
  if (witness != nullptr) {
    witness->original = u;
    witness->minimized = out;
    witness->kept = kept_idx;
    witness->dropped.clear();
    for (size_t i = 0, k = 0; i < u.disjuncts.size(); ++i) {
      if (k < kept_idx.size() && kept_idx[k] == i)
        ++k;
      else
        witness->dropped.push_back(i);
    }
  }
  return out;
}

Result<UnionQuery> MinimizeUnion(const UnionQuery& u) {
  EngineContext ctx;
  return MinimizeUnion(ctx, u);
}

}  // namespace cqac
