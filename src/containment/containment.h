// Containment and equivalence of CQAC queries.
//
// Three procedures:
//  * IsContained          — the production test: Theorem 2.3's single-mapping
//    fast path when the containing query is CQ/LSI/RSI, otherwise the general
//    Theorem 2.1 test (all containment mappings + disjunction implication);
//  * IsContainedByCanonicalDatabases — an independent, first-principles
//    decision procedure enumerating canonical databases (one per total
//    preorder of the contained query's variables). Used to cross-validate
//    the production test and to decide union containment;
//  * IsContainedInUnion   — containment in a finite union of CQACs (needed
//    for MCR verification, Sections 3-4).
//
// All procedures preprocess their inputs first (Section 2), so callers may
// pass queries whose comparisons imply equalities.
//
// Every procedure has an EngineContext overload: decisions are memoized in
// the context's cache (keyed on interned canonical forms, so queries equal
// up to renaming share entries), enumeration is charged to the context's
// Budget, and counters land in its EngineStats. The context-free overloads
// run under a fresh default context per call.
#ifndef CQAC_CONTAINMENT_CONTAINMENT_H_
#define CQAC_CONTAINMENT_CONTAINMENT_H_

#include "src/base/status.h"
#include "src/engine/context.h"
#include "src/ir/query.h"

namespace cqac {

struct ContainmentOptions {
  /// Use the Theorem 2.3 single-mapping test when the containing query is
  /// CQ-only, LSI, or RSI. Disable to force the general Theorem 2.1 path
  /// (for benchmarking the difference).
  bool use_single_mapping_fast_path = true;
};

/// A machine-checkable justification for one positive containment decision
/// `contained ⊆ container`: the preprocessed pair plus the containment
/// mappings whose comparison images the contained query's comparisons imply
/// disjunctively (Theorem 2.1; a single mapping under Theorem 2.3). The
/// certificate checker (src/analysis/certificate.h) re-validates it with the
/// slow reference procedures, independent of the production decision path.
struct ContainmentWitness {
  Query contained;   // the preprocessed contained query (q2)
  Query container;   // the preprocessed containing query (q1)
  /// The contained query's comparisons are unsatisfiable: it denotes the
  /// empty relation and is vacuously contained (no mappings recorded).
  bool contained_inconsistent = false;
  /// Exactly one mapping suffices (Theorem 2.3 fast path or a mapping whose
  /// comparison image is empty after simplification).
  bool single_mapping = false;
  /// Each mapping sends container variable ids (vector index) to terms over
  /// `contained`. Every mapping is total.
  std::vector<std::vector<Term>> mappings;
};

/// True iff `q2` is contained in `q1` (every database's q2-answers are
/// q1-answers). Head arities must match. ResourceExhausted when the
/// context's budget (mapping cap or deadline) cuts the decision short.
///
/// When `witness` is non-null and the result is `true`, the witness is
/// filled with a checkable justification; the decision cache is bypassed so
/// the mappings are actually recomputed.
Result<bool> IsContained(EngineContext& ctx, const Query& q2, const Query& q1,
                         const ContainmentOptions& options = {},
                         ContainmentWitness* witness = nullptr);
Result<bool> IsContained(const Query& q2, const Query& q1,
                         const ContainmentOptions& options = {});

/// True iff `q1` and `q2` are equivalent.
Result<bool> IsEquivalent(EngineContext& ctx, const Query& q1, const Query& q2,
                          const ContainmentOptions& options = {});
Result<bool> IsEquivalent(const Query& q1, const Query& q2,
                          const ContainmentOptions& options = {});

/// Independent decision procedure: enumerates every total preorder of q2's
/// variables consistent with beta2, builds the canonical database, and
/// evaluates q1 on it. Exponential; intended for validation and small inputs.
Result<bool> IsContainedByCanonicalDatabases(const Query& q2, const Query& q1);

/// True iff `q` is contained in the union `u` (canonical-database method:
/// every consistent preorder's canonical database must satisfy some
/// disjunct).
Result<bool> IsContainedInUnion(EngineContext& ctx, const Query& q,
                                const UnionQuery& u);
Result<bool> IsContainedInUnion(const Query& q, const UnionQuery& u);

/// True iff every disjunct of `u` is contained in `q1`.
Result<bool> UnionIsContained(EngineContext& ctx, const UnionQuery& u,
                              const Query& q1,
                              const ContainmentOptions& options = {});
Result<bool> UnionIsContained(const UnionQuery& u, const Query& q1,
                              const ContainmentOptions& options = {});

/// A machine-checkable record of one MinimizeUnion run. Although the greedy
/// loop drops each disjunct against the disjuncts still standing *at that
/// moment*, coverage is transitive through later drops, so every dropped
/// disjunct is contained in the union of the FINAL kept set — which is what
/// the auditor re-decides from scratch (src/analysis/audit).
struct UnionMinimizationWitness {
  UnionQuery original;
  UnionQuery minimized;
  std::vector<size_t> kept;     // indices into original.disjuncts, ascending
  std::vector<size_t> dropped;  // indices into original.disjuncts, ascending
};

/// Removes disjuncts contained in the union of the remaining ones (greedy,
/// deterministic). The resulting union is equivalent to `u`. Note that with
/// comparisons a disjunct can be redundant without being contained in any
/// single other disjunct, so the per-disjunct test uses IsContainedInUnion.
/// When `witness` is non-null it is filled with the kept/dropped partition.
Result<UnionQuery> MinimizeUnion(EngineContext& ctx, const UnionQuery& u,
                                 UnionMinimizationWitness* witness = nullptr);
Result<UnionQuery> MinimizeUnion(const UnionQuery& u);

}  // namespace cqac

#endif  // CQAC_CONTAINMENT_CONTAINMENT_H_
