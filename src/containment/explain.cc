#include "src/containment/explain.h"

#include "src/base/strings.h"
#include "src/constraints/implication.h"
#include "src/constraints/preprocess.h"
#include "src/containment/containment.h"
#include "src/containment/homomorphism.h"

namespace cqac {

std::string ContainmentExplanation::ToString() const {
  std::vector<std::string> lines;
  lines.push_back(contained ? "CONTAINED" : "NOT CONTAINED");
  for (size_t i = 0; i < mappings.size(); ++i) {
    const MappingEvidence& m = mappings[i];
    lines.push_back(StrCat("  mapping ", i + 1, ": ", m.mapping,
                           m.directly_implied ? "  [single mapping suffices]"
                                              : ""));
    if (!m.image_acs.empty())
      lines.push_back(StrCat("    requires: ", Join(m.image_acs, " AND ")));
  }
  if (!narrative.empty()) lines.push_back("  " + narrative);
  return Join(lines, "\n");
}

Result<ContainmentExplanation> ExplainContainment(const Query& q2,
                                                  const Query& q1) {
  ContainmentExplanation out;
  if (q2.head().args.size() != q1.head().args.size())
    return Status::InvalidArgument(
        "containment between queries of different head arity");

  // The verdict always comes from the production procedure.
  CQAC_ASSIGN_OR_RETURN(bool verdict, IsContained(q2, q1));
  out.contained = verdict;

  Result<Query> q2p = Preprocess(q2);
  if (!q2p.ok()) {
    if (q2p.status().code() == StatusCode::kInconsistent) {
      out.narrative =
          "the contained query's comparisons are unsatisfiable; the empty "
          "query is contained in everything";
      return out;
    }
    return q2p.status();
  }
  Result<Query> q1p = Preprocess(q1);
  if (!q1p.ok()) {
    if (q1p.status().code() == StatusCode::kInconsistent) {
      out.narrative =
          "the containing query is unsatisfiable (empty); only the empty "
          "query fits inside it";
      return out;
    }
    return q1p.status();
  }

  std::vector<VarMap> maps = FindHomomorphisms(q1p.value(), q2p.value());
  if (maps.empty()) {
    out.narrative =
        "no containment mapping exists between the ordinary subgoals "
        "(Chandra-Merlin fails before comparisons even matter)";
    return out;
  }

  std::vector<std::vector<Comparison>> disjuncts;
  bool some_direct = false;
  for (const VarMap& mu : maps) {
    MappingEvidence ev;
    ev.mapping = VarMapToString(mu, q1p.value(), q2p.value());
    std::vector<Comparison> image =
        mu.ApplyToComparisons(q1p.value().comparisons());
    for (const Comparison& c : image)
      ev.image_acs.push_back(StrCat(q2p.value().TermToString(c.lhs), " ",
                                    CompOpName(c.op), " ",
                                    q2p.value().TermToString(c.rhs)));
    Result<bool> direct =
        ImpliesConjunction(q2p.value().comparisons(), image);
    ev.directly_implied = direct.ok() && direct.value();
    some_direct |= ev.directly_implied;
    disjuncts.push_back(std::move(image));
    out.mappings.push_back(std::move(ev));
  }

  if (!verdict) {
    out.narrative = StrCat(
        maps.size(),
        " containment mapping(s) exist, but the contained query's "
        "comparisons do not imply the disjunction of their image "
        "comparisons (Theorem 2.1 fails)");
    return out;
  }
  if (some_direct) {
    out.narrative =
        "a single mapping's image comparisons are implied outright "
        "(the Theorem 2.3 situation)";
    return out;
  }
  out.narrative = StrCat(
      "no single mapping suffices; the disjunction of the ", maps.size(),
      " image conjunctions is implied only jointly — the case analysis of "
      "Theorem 2.1 (e.g. coupling, as in Example 5.1)");
  return out;
}

}  // namespace cqac
