// Human-readable containment proofs.
//
// IsContained answers yes/no; ExplainContainment reconstructs WHY, in the
// vocabulary of the paper: the containment mappings used (Theorem 2.1), for
// each satisfied disjunct which comparisons were directly implied, and —
// when no single mapping suffices — the case split the disjunction
// implication performs. Intended for tooling (cqac_shell) and debugging
// rewritings, not for hot paths.
#ifndef CQAC_CONTAINMENT_EXPLAIN_H_
#define CQAC_CONTAINMENT_EXPLAIN_H_

#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/ir/query.h"
#include "src/ir/substitution.h"

namespace cqac {

/// One containment mapping with its image comparisons.
struct MappingEvidence {
  std::string mapping;                  // rendered mu: {X -> A, ...}
  std::vector<std::string> image_acs;   // rendered mu(beta1)
  bool directly_implied = false;        // beta2 => mu(beta1) alone
};

/// The outcome of an explanation.
struct ContainmentExplanation {
  bool contained = false;
  /// Mappings found from the containing into the contained query.
  std::vector<MappingEvidence> mappings;
  /// Free-text narrative of the decisive step.
  std::string narrative;

  std::string ToString() const;
};

/// Explains whether (and why) q2 is contained in q1. Uses the same decision
/// procedures as IsContained; the answer always matches it.
Result<ContainmentExplanation> ExplainContainment(const Query& q2,
                                                  const Query& q1);

}  // namespace cqac

#endif  // CQAC_CONTAINMENT_EXPLAIN_H_
