#include "src/containment/homomorphism.h"

namespace cqac {
namespace {

/// Backtracking search over `from`'s body atoms.
class HomSearch {
 public:
  HomSearch(EngineContext& ctx, const Query& from, const Query& to,
            const HomomorphismOptions& options,
            FunctionRef<bool(const VarMap&)> cb)
      : ctx_(ctx), from_(from), to_(to), options_(options), cb_(cb),
        map_(from.num_vars()) {}

  EnumerationOutcome Run() {
    ++ctx_.stats().hom_enumerations;
    if (options_.match_heads) {
      if (from_.head().args.size() != to_.head().args.size())
        return EnumerationOutcome::kCompleted;
      for (size_t i = 0; i < from_.head().args.size(); ++i)
        if (!UnifyTerm(from_.head().args[i], to_.head().args[i]))
          return EnumerationOutcome::kCompleted;  // heads cannot match
    }
    bool completed = Match(0);
    if (outcome_ == EnumerationOutcome::kBudgetExhausted) {
      ++ctx_.stats().budget_exhaustions;
      return outcome_;
    }
    return completed ? EnumerationOutcome::kCompleted
                     : EnumerationOutcome::kAborted;
  }

 private:
  // Maps `from` term `ft` onto `to` term `tt`; returns false on conflict.
  // Does not record an undo trail — callers snapshot map_ instead.
  bool UnifyTerm(const Term& ft, const Term& tt) {
    if (ft.is_const()) {
      // Constants map to themselves only.
      return tt.is_const() && ft.value() == tt.value();
    }
    return map_.Bind(ft.var(), tt);
  }

  // Polls the deadline and the context's cancellation flag every 256
  // search steps. Steps are counted per target-atom attempt (not just per
  // recursion level), so exhaustion fires promptly even inside one huge
  // candidate whose branching lives in a single wide atom loop.
  bool Checkpoint() {
    if ((++steps_ & 0xFF) != 0 || !ctx_.ShouldStop()) return true;
    outcome_ = EnumerationOutcome::kBudgetExhausted;
    return false;
  }

  bool Match(size_t atom_idx) {
    if (!Checkpoint()) return false;
    if (atom_idx == from_.body().size()) {
      if (++found_ > ctx_.budget().max_homomorphisms) {
        outcome_ = EnumerationOutcome::kBudgetExhausted;
        return false;
      }
      ++ctx_.stats().homomorphisms_found;
      return cb_(map_);
    }
    const Atom& fa = from_.body()[atom_idx];
    for (const Atom& ta : to_.body()) {
      if (!Checkpoint()) return false;
      if (ta.predicate != fa.predicate || ta.args.size() != fa.args.size())
        continue;
      VarMap saved = map_;
      bool ok = true;
      for (size_t i = 0; i < fa.args.size() && ok; ++i)
        ok = UnifyTerm(fa.args[i], ta.args[i]);
      if (ok && !Match(atom_idx + 1)) return false;
      map_ = std::move(saved);
    }
    return true;
  }

  EngineContext& ctx_;
  const Query& from_;
  const Query& to_;
  const HomomorphismOptions& options_;
  FunctionRef<bool(const VarMap&)> cb_;
  VarMap map_;
  size_t found_ = 0;
  uint64_t steps_ = 0;
  EnumerationOutcome outcome_ = EnumerationOutcome::kCompleted;
};

}  // namespace

EnumerationOutcome ForEachHomomorphism(EngineContext& ctx, const Query& from,
                                       const Query& to,
                                       const HomomorphismOptions& options,
                                       FunctionRef<bool(const VarMap&)> cb) {
  HomSearch search(ctx, from, to, options, cb);
  return search.Run();
}

bool ForEachHomomorphism(const Query& from, const Query& to,
                         const HomomorphismOptions& options,
                         FunctionRef<bool(const VarMap&)> cb) {
  EngineContext ctx;
  return ForEachHomomorphism(ctx, from, to, options, cb) ==
         EnumerationOutcome::kCompleted;
}

Result<std::vector<VarMap>> FindHomomorphisms(
    EngineContext& ctx, const Query& from, const Query& to,
    const HomomorphismOptions& options) {
  std::vector<VarMap> out;
  EnumerationOutcome outcome =
      ForEachHomomorphism(ctx, from, to, options, [&out](const VarMap& m) {
        out.push_back(m);
        return true;
      });
  if (outcome == EnumerationOutcome::kBudgetExhausted)
    return Status::ResourceExhausted(
        "homomorphism enumeration exceeded the budget");
  return out;
}

std::vector<VarMap> FindHomomorphisms(const Query& from, const Query& to,
                                      const HomomorphismOptions& options) {
  EngineContext ctx;
  ctx.budget() = Budget::Unlimited();
  Result<std::vector<VarMap>> r = FindHomomorphisms(ctx, from, to, options);
  // Unlimited budget: exhaustion is impossible.
  return std::move(r.value());
}

Result<bool> HomomorphismExists(EngineContext& ctx, const Query& from,
                                const Query& to,
                                const HomomorphismOptions& options) {
  EnumerationOutcome outcome = ForEachHomomorphism(
      ctx, from, to, options, [](const VarMap&) { return false; });
  if (outcome == EnumerationOutcome::kBudgetExhausted)
    return Status::ResourceExhausted(
        "homomorphism search exceeded the budget");
  return outcome == EnumerationOutcome::kAborted;  // aborted == found one
}

bool HomomorphismExists(const Query& from, const Query& to,
                        const HomomorphismOptions& options) {
  EngineContext ctx;
  ctx.budget() = Budget::Unlimited();
  return HomomorphismExists(ctx, from, to, options).value();
}

}  // namespace cqac
