#include "src/containment/homomorphism.h"

namespace cqac {
namespace {

/// Backtracking search over `from`'s body atoms.
class HomSearch {
 public:
  HomSearch(const Query& from, const Query& to,
            const HomomorphismOptions& options,
            const std::function<bool(const VarMap&)>& cb)
      : from_(from), to_(to), options_(options), cb_(cb),
        map_(from.num_vars()) {}

  // Returns true iff enumeration completed (no abort, no cap).
  bool Run() {
    if (options_.match_heads) {
      if (from_.head().args.size() != to_.head().args.size()) return true;
      for (size_t i = 0; i < from_.head().args.size(); ++i)
        if (!UnifyTerm(from_.head().args[i], to_.head().args[i]))
          return true;  // heads cannot match: zero mappings, completed
    }
    return Match(0);
  }

 private:
  // Maps `from` term `ft` onto `to` term `tt`; returns false on conflict.
  // Does not record an undo trail — callers snapshot map_ instead.
  bool UnifyTerm(const Term& ft, const Term& tt) {
    if (ft.is_const()) {
      // Constants map to themselves only.
      return tt.is_const() && ft.value() == tt.value();
    }
    return map_.Bind(ft.var(), tt);
  }

  bool Match(size_t atom_idx) {
    if (atom_idx == from_.body().size()) {
      ++found_;
      if (found_ > options_.max_results) return false;
      return cb_(map_);
    }
    const Atom& fa = from_.body()[atom_idx];
    for (const Atom& ta : to_.body()) {
      if (ta.predicate != fa.predicate || ta.args.size() != fa.args.size())
        continue;
      VarMap saved = map_;
      bool ok = true;
      for (size_t i = 0; i < fa.args.size() && ok; ++i)
        ok = UnifyTerm(fa.args[i], ta.args[i]);
      if (ok && !Match(atom_idx + 1)) return false;
      map_ = std::move(saved);
    }
    return true;
  }

  const Query& from_;
  const Query& to_;
  const HomomorphismOptions& options_;
  const std::function<bool(const VarMap&)>& cb_;
  VarMap map_;
  size_t found_ = 0;
};

}  // namespace

bool ForEachHomomorphism(const Query& from, const Query& to,
                         const HomomorphismOptions& options,
                         const std::function<bool(const VarMap&)>& cb) {
  HomSearch search(from, to, options, cb);
  return search.Run();
}

std::vector<VarMap> FindHomomorphisms(const Query& from, const Query& to,
                                      const HomomorphismOptions& options) {
  std::vector<VarMap> out;
  ForEachHomomorphism(from, to, options, [&out](const VarMap& m) {
    out.push_back(m);
    return true;
  });
  return out;
}

bool HomomorphismExists(const Query& from, const Query& to,
                        const HomomorphismOptions& options) {
  bool completed = ForEachHomomorphism(from, to, options,
                                       [](const VarMap&) { return false; });
  return !completed;  // aborted == found one
}

}  // namespace cqac
