// Containment-mapping (homomorphism) enumeration between the ordinary
// subgoals of two queries [Chandra-Merlin 1977].
//
// A containment mapping from Q1 to Q2 sends each variable of Q1 to a term of
// Q2 such that (a) the head of Q1 maps onto the head of Q2 and (b) every
// ordinary subgoal of Q1 maps onto some ordinary subgoal of Q2. Comparisons
// are NOT considered here; the containment module layers Theorem 2.1 / 2.3
// implication checks on top.
//
// Enumeration is budgeted through EngineContext: the context's
// Budget::max_homomorphisms caps the mappings visited and its deadline is
// checked periodically. Exhausting either is reported explicitly
// (EnumerationOutcome::kBudgetExhausted), never as silent truncation.
#ifndef CQAC_CONTAINMENT_HOMOMORPHISM_H_
#define CQAC_CONTAINMENT_HOMOMORPHISM_H_

#include <vector>

#include "src/base/function_ref.h"
#include "src/base/status.h"
#include "src/engine/context.h"
#include "src/ir/query.h"
#include "src/ir/substitution.h"

namespace cqac {

struct HomomorphismOptions {
  /// Require mu(head(from)) == head(to) (position-wise). Disable to search
  /// body-only mappings (used by rewriting internals).
  bool match_heads = true;
};

/// How a bounded enumeration ended.
enum class EnumerationOutcome {
  kCompleted,        // every mapping was visited
  kAborted,          // the callback returned false
  kBudgetExhausted,  // hit Budget::max_homomorphisms or the deadline
};

/// Invokes `cb` for every containment mapping from `from` into `to`,
/// charging the context's budget. `cb` returns true to continue.
EnumerationOutcome ForEachHomomorphism(EngineContext& ctx, const Query& from,
                                       const Query& to,
                                       const HomomorphismOptions& options,
                                       FunctionRef<bool(const VarMap&)> cb);

/// Legacy entry point: runs under a fresh default-budget context. Returns
/// true iff the enumeration completed (no abort, no budget hit).
bool ForEachHomomorphism(const Query& from, const Query& to,
                         const HomomorphismOptions& options,
                         FunctionRef<bool(const VarMap&)> cb);

/// Collects all containment mappings; ResourceExhausted if the context's
/// budget cut the enumeration short.
Result<std::vector<VarMap>> FindHomomorphisms(
    EngineContext& ctx, const Query& from, const Query& to,
    const HomomorphismOptions& options = {});

/// Legacy: unbudgeted collection under a fresh default context (the default
/// cap is large enough that practical inputs always complete).
std::vector<VarMap> FindHomomorphisms(const Query& from, const Query& to,
                                      const HomomorphismOptions& options = {});

/// True iff at least one containment mapping exists — the Chandra-Merlin
/// containment test for pure CQs (`to` contained in `from`).
/// ResourceExhausted if the budget ran out before any mapping was found.
Result<bool> HomomorphismExists(EngineContext& ctx, const Query& from,
                                const Query& to,
                                const HomomorphismOptions& options = {});

/// Legacy form under a fresh default context.
bool HomomorphismExists(const Query& from, const Query& to,
                        const HomomorphismOptions& options = {});

}  // namespace cqac

#endif  // CQAC_CONTAINMENT_HOMOMORPHISM_H_
