// Containment-mapping (homomorphism) enumeration between the ordinary
// subgoals of two queries [Chandra-Merlin 1977].
//
// A containment mapping from Q1 to Q2 sends each variable of Q1 to a term of
// Q2 such that (a) the head of Q1 maps onto the head of Q2 and (b) every
// ordinary subgoal of Q1 maps onto some ordinary subgoal of Q2. Comparisons
// are NOT considered here; the containment module layers Theorem 2.1 / 2.3
// implication checks on top.
#ifndef CQAC_CONTAINMENT_HOMOMORPHISM_H_
#define CQAC_CONTAINMENT_HOMOMORPHISM_H_

#include <functional>
#include <vector>

#include "src/base/status.h"
#include "src/ir/query.h"
#include "src/ir/substitution.h"

namespace cqac {

struct HomomorphismOptions {
  /// Require mu(head(from)) == head(to) (position-wise). Disable to search
  /// body-only mappings (used by rewriting internals).
  bool match_heads = true;
  /// Safety cap on enumerated mappings.
  size_t max_results = 1 << 20;
};

/// Invokes `cb` for every containment mapping from `from` into `to`.
/// `cb` returns true to continue. Returns true iff the enumeration completed
/// without aborting and without hitting max_results.
bool ForEachHomomorphism(const Query& from, const Query& to,
                         const HomomorphismOptions& options,
                         const std::function<bool(const VarMap&)>& cb);

/// Collects all containment mappings (bounded by options.max_results).
std::vector<VarMap> FindHomomorphisms(const Query& from, const Query& to,
                                      const HomomorphismOptions& options = {});

/// True iff at least one containment mapping exists — the Chandra-Merlin
/// containment test for pure CQs (`to` contained in `from`).
bool HomomorphismExists(const Query& from, const Query& to,
                        const HomomorphismOptions& options = {});

}  // namespace cqac

#endif  // CQAC_CONTAINMENT_HOMOMORPHISM_H_
