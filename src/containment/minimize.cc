#include "src/containment/minimize.h"

#include "src/constraints/preprocess.h"
#include "src/containment/containment.h"
#include "src/ir/substitution.h"

namespace cqac {
namespace {

/// `q` without body atom `drop` (comparisons and head unchanged).
Query WithoutAtom(const Query& q, size_t drop) {
  Query out;
  out.head() = q.head();
  for (const std::string& name : q.var_names()) out.FindOrAddVariable(name);
  for (size_t i = 0; i < q.body().size(); ++i)
    if (i != drop) out.AddBodyAtom(q.body()[i]);
  out.comparisons() = q.comparisons();
  return out;
}

}  // namespace

Result<Query> MinimizeQuery(EngineContext& ctx, const Query& q,
                            MinimizationWitness* witness) {
  CQAC_ASSIGN_OR_RETURN(Query cur, Preprocess(q));
  Query prepped = cur;
  CQAC_RETURN_IF_ERROR(cur.Validate());

  bool changed = true;
  while (changed && cur.body().size() > 1) {
    changed = false;
    // Strategy 1: drop an atom outright (covers atoms whose variables are
    // not load-bearing).
    for (size_t i = 0; i < cur.body().size() && !changed; ++i) {
      Query smaller = WithoutAtom(cur, i);
      // Dropping an atom can strand head or comparison variables; those
      // candidates are invalid, not smaller cores.
      if (!smaller.Validate().ok()) continue;
      // Dropping atoms only relaxes, so cur is always contained in smaller;
      // equivalence needs the other direction.
      CQAC_ASSIGN_OR_RETURN(bool still_equal, IsContained(ctx, smaller, cur));
      if (still_equal) {
        cur = CompactVariables(smaller);
        changed = true;
      }
    }
    // Strategy 2: fold one atom onto another of the same predicate (the
    // Chandra-Merlin endomorphism step — needed when the folded atom's
    // variables also occur in comparisons, so plain dropping would strand
    // them).
    for (size_t i = 0; i < cur.body().size() && !changed; ++i) {
      for (size_t j = 0; j < cur.body().size() && !changed; ++j) {
        if (i == j) continue;
        Query folded;
        if (!UnifyBodyAtoms(cur, i, j, &folded)) continue;
        if (!folded.Validate().ok()) continue;
        // Folding restricts (cur contains folded); equivalence needs cur
        // contained in folded.
        CQAC_ASSIGN_OR_RETURN(bool still_equal, IsContained(ctx, cur, folded));
        if (still_equal) {
          CQAC_ASSIGN_OR_RETURN(bool sound, IsContained(ctx, folded, cur));
          if (sound) {
            cur = CompactVariables(folded);
            changed = true;
          }
        }
      }
    }
  }
  Query out = RemoveRedundantComparisons(cur);
  if (witness != nullptr) {
    witness->original = prepped;
    witness->minimized = out;
    // Recompute both directions with witness capture (the witness parameter
    // bypasses the decision cache, so the mappings are genuinely fresh).
    CQAC_ASSIGN_OR_RETURN(
        bool fwd, IsContained(ctx, prepped, out, {}, &witness->forward));
    CQAC_ASSIGN_OR_RETURN(
        bool bwd, IsContained(ctx, out, prepped, {}, &witness->backward));
    if (!fwd || !bwd)
      return Status::Internal(
          "minimization result is not equivalent to its input");
  }
  return out;
}

Result<Query> MinimizeQuery(EngineContext& ctx, const Query& q) {
  return MinimizeQuery(ctx, q, nullptr);
}

Result<Query> MinimizeQuery(const Query& q) {
  EngineContext ctx;
  return MinimizeQuery(ctx, q, nullptr);
}

}  // namespace cqac
