// CQAC minimization: removing redundant ordinary subgoals.
//
// The Chandra-Merlin minimization (fold the query onto a core) extended to
// comparisons: a subgoal can be dropped iff the smaller query is still
// equivalent, which we verify with the full CQAC containment test rather
// than a bare homomorphism (comparisons can make an otherwise-foldable atom
// load-bearing). Used to present small rewritings and as the preprocessing
// the Theorem 3.1 search relies on.
#ifndef CQAC_CONTAINMENT_MINIMIZE_H_
#define CQAC_CONTAINMENT_MINIMIZE_H_

#include "src/base/status.h"
#include "src/engine/context.h"
#include "src/ir/query.h"

namespace cqac {

/// Returns an equivalent query with a minimal set of ordinary subgoals
/// (greedy, deterministic: tries dropping subgoals in order, keeping the
/// query equivalent at every step) and with redundant comparisons removed.
/// The context overload memoizes the many pairwise containment checks the
/// greedy fold performs (they repeat across candidate drops).
Result<Query> MinimizeQuery(EngineContext& ctx, const Query& q);
Result<Query> MinimizeQuery(const Query& q);

}  // namespace cqac

#endif  // CQAC_CONTAINMENT_MINIMIZE_H_
