// CQAC minimization: removing redundant ordinary subgoals.
//
// The Chandra-Merlin minimization (fold the query onto a core) extended to
// comparisons: a subgoal can be dropped iff the smaller query is still
// equivalent, which we verify with the full CQAC containment test rather
// than a bare homomorphism (comparisons can make an otherwise-foldable atom
// load-bearing). Used to present small rewritings and as the preprocessing
// the Theorem 3.1 search relies on.
#ifndef CQAC_CONTAINMENT_MINIMIZE_H_
#define CQAC_CONTAINMENT_MINIMIZE_H_

#include "src/base/status.h"
#include "src/containment/containment.h"
#include "src/engine/context.h"
#include "src/ir/query.h"

namespace cqac {

/// A machine-checkable equivalence proof for one MinimizeQuery run: witness
/// homomorphisms in both directions between the preprocessed input and the
/// minimized output. The auditor (src/analysis/audit) re-validates both with
/// CheckContainmentWitness — independent of the greedy fold that produced
/// the minimization.
struct MinimizationWitness {
  Query original;   // the preprocessed input query
  Query minimized;  // the minimization result
  ContainmentWitness forward;   // original ⊆ minimized
  ContainmentWitness backward;  // minimized ⊆ original
};

/// Returns an equivalent query with a minimal set of ordinary subgoals
/// (greedy, deterministic: tries dropping subgoals in order, keeping the
/// query equivalent at every step) and with redundant comparisons removed.
/// The context overload memoizes the many pairwise containment checks the
/// greedy fold performs (they repeat across candidate drops).
/// When `witness` is non-null, both equivalence directions are recomputed
/// with witness capture after the fold converges.
Result<Query> MinimizeQuery(EngineContext& ctx, const Query& q,
                            MinimizationWitness* witness);
Result<Query> MinimizeQuery(EngineContext& ctx, const Query& q);
Result<Query> MinimizeQuery(const Query& q);

}  // namespace cqac

#endif  // CQAC_CONTAINMENT_MINIMIZE_H_
