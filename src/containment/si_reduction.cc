#include "src/containment/si_reduction.h"

#include <algorithm>
#include <cassert>
#include <set>

#include "src/base/strings.h"
#include "src/constraints/implication.h"
#include "src/constraints/preprocess.h"
#include "src/datalog/unfold.h"

namespace cqac {

Comparison SiForm::ToComparison(const Term& x) const {
  Term ct = Term::Const(Value(c));
  CompOp op = strict ? CompOp::kLt : CompOp::kLe;
  if (lower) return Comparison(ct, op, x);  // c < X
  return Comparison(x, op, ct);             // X < c
}

std::string SiForm::PredicateSuffix() const {
  const char* op = lower ? (strict ? "gt" : "ge") : (strict ? "lt" : "le");
  std::string enc = c.ToString();
  std::string cleaned;
  for (char ch : enc) {
    if (ch == '/')
      cleaned += 'd';
    else if (ch == '-')
      cleaned += 'm';
    else
      cleaned += ch;
  }
  return StrCat(op, "_", cleaned);
}

Result<SiForm> SiForm::FromPredicateSuffix(const std::string& suffix) {
  size_t sep = suffix.find('_');
  if (sep == std::string::npos || sep != 2)
    return Status::InvalidArgument(
        StrCat("malformed SiForm suffix '", suffix, "'"));
  std::string op = suffix.substr(0, sep);
  SiForm f;
  if (op == "gt") {
    f.lower = true;
    f.strict = true;
  } else if (op == "ge") {
    f.lower = true;
    f.strict = false;
  } else if (op == "lt") {
    f.lower = false;
    f.strict = true;
  } else if (op == "le") {
    f.lower = false;
    f.strict = false;
  } else {
    return Status::InvalidArgument(
        StrCat("unknown SiForm operator '", op, "'"));
  }
  std::string enc = suffix.substr(sep + 1);
  std::string number;
  for (char ch : enc) {
    if (ch == 'd')
      number += '/';
    else if (ch == 'm')
      number += '-';
    else
      number += ch;
  }
  CQAC_ASSIGN_OR_RETURN(f.c, Rational::Parse(number));
  return f;
}

SiForm SiFormOf(const Comparison& c) {
  assert(c.IsSemiInterval());
  SiForm f;
  if (c.lhs.is_var()) {  // X theta c : upper bound
    f.lower = false;
    f.strict = (c.op == CompOp::kLt);
    f.c = c.rhs.value().number();
  } else {  // c theta X : lower bound
    f.lower = true;
    f.strict = (c.op == CompOp::kLt);
    f.c = c.lhs.value().number();
  }
  return f;
}

bool FormsCouple(const SiForm& f1, const SiForm& f2) {
  if (f1.lower == f2.lower) return false;  // same direction never couples
  // `X f1 or X f2` is a tautology iff `not(X f1) and not(X f2)` is
  // unsatisfiable. Negate by flipping sides and strictness.
  Query scratch;  // variable space for a fresh variable id 0
  int x = scratch.AddVariable("X");
  auto negate = [&x](const SiForm& f) {
    Comparison c = f.ToComparison(Term::Var(x));
    return Comparison(c.rhs, c.op == CompOp::kLt ? CompOp::kLe : CompOp::kLt,
                      c.lhs);
  };
  return !AcsConsistent({negate(f1), negate(f2)});
}

namespace {

/// Distinct SI forms of a preprocessed query's comparisons.
std::vector<SiForm> FormsOf(const Query& q) {
  std::vector<SiForm> out;
  for (const Comparison& c : q.comparisons()) {
    SiForm f = SiFormOf(c);
    if (std::find(out.begin(), out.end(), f) == out.end()) out.push_back(f);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

Result<Query> BuildPcq(EngineContext& ctx, const Query& p, const Query& q1,
                       bool require_si_only) {
  CQAC_ASSIGN_OR_RETURN(Query pp, Preprocess(p));
  CQAC_ASSIGN_OR_RETURN(Query q1p, Preprocess(q1));
  if (require_si_only && !pp.IsSiOnly())
    return Status::Unsupported("BuildPcq requires an SI-only query");

  std::vector<SiForm> forms = FormsOf(q1p);

  Query out;
  out.head() = pp.head();
  for (const std::string& name : pp.var_names()) out.FindOrAddVariable(name);
  out.body() = pp.body();

  // For every variable and every Q1 comparison form implied by P's
  // comparisons, add the unary U atom.
  for (int v : pp.ComparisonVars()) {
    for (const SiForm& f : forms) {
      Comparison goal = f.ToComparison(Term::Var(v));
      CQAC_ASSIGN_OR_RETURN(bool implied,
                            ImpliesConjunction(ctx, pp.comparisons(), {goal}));
      if (implied) {
        Atom u;
        u.predicate = StrCat("U_", f.PredicateSuffix());
        u.args.push_back(Term::Var(v));
        out.AddBodyAtom(std::move(u));
      }
    }
  }
  // P^CQ is comparison-free by construction.
  return out;
}

Result<Query> BuildPcq(const Query& p, const Query& q1, bool require_si_only) {
  EngineContext ctx;
  return BuildPcq(ctx, p, q1, require_si_only);
}

Result<Program> BuildQdatalog(const Query& q1) {
  CQAC_ASSIGN_OR_RETURN(Query q1p, Preprocess(q1));
  if (!q1p.IsCqacSi())
    return Status::Unsupported(
        "BuildQdatalog requires a CQAC-SI query (at most one LSI with any "
        "number of RSI comparisons, or the mirror image)");

  Program prog;
  prog.set_query_predicate(q1p.head().predicate.empty()
                               ? std::string("q")
                               : q1p.head().predicate);

  // Head pins. The I/J recursion discharges a comparison by case analysis:
  // "if the comparison fails, some OTHER body match satisfies the query".
  // For a boolean query any match suffices, but for a distinguished head
  // the alternative match must produce the SAME answer tuple — otherwise
  // the program derives q(a) from a witness for q(b). Every I/J predicate
  // therefore carries the query's head terms in front of its comparison
  // variable, pinning the whole case tree to one answer. An empty head
  // degenerates to the paper's Section 5.3 program verbatim.
  const std::vector<Term>& pins = q1p.head().args;
  auto pinned = [&pins](const std::string& pred, const Term& x) {
    Atom a;
    a.predicate = pred;
    a.args = pins;
    a.args.push_back(x);
    return a;
  };

  // --- Query rule: ordinary subgoals + I-atom per comparison. -------------
  Rule query_rule;
  query_rule.head() = q1p.head();
  query_rule.head().predicate = prog.query_predicate();
  for (const std::string& name : q1p.var_names())
    query_rule.FindOrAddVariable(name);
  query_rule.body() = q1p.body();
  for (const Comparison& c : q1p.comparisons()) {
    SiForm f = SiFormOf(c);
    const Term& x = c.lhs.is_var() ? c.lhs : c.rhs;
    query_rule.AddBodyAtom(pinned(StrCat("I_", f.PredicateSuffix()), x));
  }
  prog.AddRule(std::move(query_rule));

  // --- Mapping rules: one per comparison e; body copies the query rule's
  // body minus e's own I-atom; head is e's J-atom. -------------------------
  const size_t num_acs = q1p.comparisons().size();
  for (size_t e = 0; e < num_acs; ++e) {
    const Comparison& ce = q1p.comparisons()[e];
    SiForm fe = SiFormOf(ce);
    const Term& xe = ce.lhs.is_var() ? ce.lhs : ce.rhs;

    Rule rule;
    rule.head().predicate = StrCat("J_", fe.PredicateSuffix());
    for (const std::string& name : q1p.var_names())
      rule.FindOrAddVariable(name);
    rule.head().args = pins;
    rule.head().args.push_back(xe);
    rule.body() = q1p.body();
    for (size_t o = 0; o < num_acs; ++o) {
      if (o == e) continue;
      const Comparison& co = q1p.comparisons()[o];
      SiForm fo = SiFormOf(co);
      const Term& xo = co.lhs.is_var() ? co.lhs : co.rhs;
      rule.AddBodyAtom(pinned(StrCat("I_", fo.PredicateSuffix()), xo));
    }
    prog.AddRule(std::move(rule));
  }

  // --- Coupling rules: for each tautological pair of forms. ---------------
  std::vector<SiForm> forms = FormsOf(q1p);
  for (const SiForm& f1 : forms) {
    for (const SiForm& f2 : forms) {
      if (!(f1 < f2)) continue;
      if (!FormsCouple(f1, f2)) continue;
      for (const auto& [head_f, body_f] :
           {std::make_pair(f1, f2), std::make_pair(f2, f1)}) {
        Rule rule;
        Atom j;
        j.predicate = StrCat("J_", body_f.PredicateSuffix());
        for (size_t hi = 0; hi < pins.size(); ++hi)
          j.args.push_back(
              Term::Var(rule.AddVariable(StrCat("H", hi))));
        j.args.push_back(Term::Var(rule.AddVariable("W")));
        rule.head().predicate = StrCat("I_", head_f.PredicateSuffix());
        rule.head().args = j.args;
        rule.AddBodyAtom(std::move(j));
        prog.AddRule(std::move(rule));
      }
    }
  }

  // --- Initialization rules: I_f(H..., A) :- U_f(A) [, dom(H)...]. --------
  // The pinned head variables are unconstrained here (a literally-true
  // comparison discharges regardless of the answer tuple), so each distinct
  // pin variable is range-restricted by the dom relation below.
  for (const SiForm& f : forms) {
    Rule rule;
    if (pins.empty()) {
      int a = rule.AddVariable("A");
      rule.head().predicate = StrCat("I_", f.PredicateSuffix());
      rule.head().args.push_back(Term::Var(a));
      Atom u;
      u.predicate = StrCat("U_", f.PredicateSuffix());
      u.args.push_back(Term::Var(a));
      rule.AddBodyAtom(std::move(u));
    } else {
      for (const std::string& name : q1p.var_names())
        rule.FindOrAddVariable(name);
      std::string fresh = "A";
      while (rule.FindVariable(fresh) >= 0) fresh += "_";
      int a = rule.FindOrAddVariable(fresh);
      rule.head().predicate = StrCat("I_", f.PredicateSuffix());
      rule.head().args = pins;
      rule.head().args.push_back(Term::Var(a));
      Atom u;
      u.predicate = StrCat("U_", f.PredicateSuffix());
      u.args.push_back(Term::Var(a));
      rule.AddBodyAtom(std::move(u));
      std::vector<int> restricted;
      for (const Term& t : pins) {
        if (!t.is_var()) continue;
        if (std::find(restricted.begin(), restricted.end(), t.var()) !=
            restricted.end())
          continue;
        restricted.push_back(t.var());
        Atom dom;
        dom.predicate = "dom";
        dom.args.push_back(t);
        rule.AddBodyAtom(std::move(dom));
      }
    }
    prog.AddRule(std::move(rule));
  }

  // --- Domain rules for the pins: dom projects every variable position of
  // the query's own body predicates (in the MCR composition these are
  // derived from inverse rules, so dom also ranges over Skolem terms —
  // harmless, since Skolem-headed answers are discarded). ------------------
  if (!pins.empty()) {
    std::set<std::string> dom_emitted;
    for (const Atom& atom : q1p.body()) {
      for (size_t pos = 0; pos < atom.args.size(); ++pos) {
        if (!atom.args[pos].is_var()) continue;
        std::string key = StrCat(atom.predicate, "#", pos);
        if (!dom_emitted.insert(key).second) continue;
        Rule rule;
        rule.head().predicate = "dom";
        Atom body;
        body.predicate = atom.predicate;
        for (size_t j = 0; j < atom.args.size(); ++j)
          body.args.push_back(
              Term::Var(rule.FindOrAddVariable(StrCat("X", j))));
        rule.head().args.push_back(body.args[pos]);
        rule.AddBodyAtom(std::move(body));
        prog.AddRule(std::move(rule));
      }
    }
  }
  return prog;
}

Result<bool> IsContainedSiReduction(EngineContext& ctx, const Query& q2,
                                    const Query& q1) {
  if (q2.head().args.size() != q1.head().args.size())
    return Status::InvalidArgument(
        "containment between queries of different head arity");
  Result<Query> q2p = Preprocess(q2);
  if (!q2p.ok() && q2p.status().code() == StatusCode::kInconsistent)
    return true;
  CQAC_RETURN_IF_ERROR(q2p.status());
  Result<Query> q1p = Preprocess(q1);
  if (!q1p.ok() && q1p.status().code() == StatusCode::kInconsistent)
    return false;
  CQAC_RETURN_IF_ERROR(q1p.status());

  if (!q2p.value().IsSiOnly())
    return Status::Unsupported("SI reduction requires an SI-only Q2");
  CQAC_ASSIGN_OR_RETURN(Query pcq, BuildPcq(ctx, q2p.value(), q1p.value()));
  CQAC_ASSIGN_OR_RETURN(Program qdl, BuildQdatalog(q1p.value()));
  return datalog::IsCqContainedInDatalog(pcq, qdl);
}

Result<bool> IsContainedSiReduction(const Query& q2, const Query& q1) {
  EngineContext ctx;
  return IsContainedSiReduction(ctx, q2, q1);
}

}  // namespace cqac
