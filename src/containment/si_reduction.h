// Section 5.2-5.3: reducing CQAC-SI containment to the containment of a CQ
// in a Datalog program.
//
// Given a CQAC-SI query Q1 (at most one LSI comparison + any number of RSI
// ones, or the mirror image), the construction produces:
//  * P^CQ   — for any SI query P: its ordinary subgoals plus unary atoms
//    U_{theta c}(X) for every comparison form `theta c` of Q1 implied by
//    P's comparisons for X (Section 5.2);
//  * Q1^datalog — a program with a query rule, one mapping rule per
//    comparison of Q1, coupling rules for tautological comparison pairs, and
//    initialization rules I_{theta c}(A) :- U_{theta c}(A) (Section 5.3).
//
// Theorem 5.1: P contained in Q1  iff  P^CQ contained in Q1^datalog.
// Theorem 5.2: the resulting test is in NP for CQSI-in-CQSI containment.
#ifndef CQAC_CONTAINMENT_SI_REDUCTION_H_
#define CQAC_CONTAINMENT_SI_REDUCTION_H_

#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/engine/context.h"
#include "src/ir/program.h"
#include "src/ir/query.h"

namespace cqac {

/// One semi-interval comparison form `X theta c` with the variable abstracted
/// away: a bound direction, strictness, and the constant.
struct SiForm {
  bool lower;   // true: c theta X (lower bound); false: X theta c (upper)
  bool strict;  // true: <, false: <=
  Rational c;

  bool operator==(const SiForm& o) const {
    return lower == o.lower && strict == o.strict && c == o.c;
  }
  bool operator<(const SiForm& o) const {
    if (lower != o.lower) return lower < o.lower;
    if (strict != o.strict) return strict < o.strict;
    return c < o.c;
  }

  /// The comparison `X (this form)` for variable term `x`.
  Comparison ToComparison(const Term& x) const;

  /// Encodes the form as a predicate-name fragment, e.g. "gt_5", "le_7d2",
  /// "lt_m3" (d = '/', m = '-').
  std::string PredicateSuffix() const;

  /// Inverse of PredicateSuffix: decodes "ge_7d2" back into a form. Used by
  /// the certificate checker to re-derive what a `U_...` / `I_...` predicate
  /// claims. Fails on strings PredicateSuffix cannot produce.
  static Result<SiForm> FromPredicateSuffix(const std::string& suffix);
};

/// Extracts the SiForm of a semi-interval comparison (which must satisfy
/// Comparison::IsSemiInterval()).
SiForm SiFormOf(const Comparison& c);

/// True iff `X f1 OR X f2` is a tautology over a dense order (the
/// "coupling" condition of Lemma 5.1(b)).
bool FormsCouple(const SiForm& f1, const SiForm& f2);

/// Builds P^CQ of the query `p` with respect to the comparison forms of
/// `q1` (both are preprocessed internally). By default `p` must be SI-only
/// (the Theorem 5.1 setting); with `require_si_only = false`, general
/// comparisons are allowed in `p` — its U atoms then encode every q1-form
/// its (arbitrary) comparisons imply. The relaxed mode backs the Section 6
/// extension of the recursive-MCR construction to general-AC views: the
/// encoding stays sound (a U fact is emitted only when implied), though the
/// paper proves completeness only for the SI case.
Result<Query> BuildPcq(EngineContext& ctx, const Query& p, const Query& q1,
                       bool require_si_only = true);
Result<Query> BuildPcq(const Query& p, const Query& q1,
                       bool require_si_only = true);

/// Builds Q1^datalog for the CQAC-SI query `q1`.
Result<Program> BuildQdatalog(const Query& q1);

/// Theorem 5.1 containment test: is `q2` contained in `q1`, decided through
/// the reduction? Requires q1 CQAC-SI and q2 SI-only; Unsupported otherwise.
/// The context overload memoizes the per-variable implication checks of the
/// P^CQ construction in the shared decision cache.
Result<bool> IsContainedSiReduction(EngineContext& ctx, const Query& q2,
                                    const Query& q1);
Result<bool> IsContainedSiReduction(const Query& q2, const Query& q1);

}  // namespace cqac

#endif  // CQAC_CONTAINMENT_SI_REDUCTION_H_
