#include "src/datalog/engine.h"

#include <set>

#include "src/base/strings.h"
#include "src/eval/evaluate.h"

namespace cqac {
namespace datalog {

bool IsSkolemValue(const Value& v) {
  return v.is_symbol() && v.symbol().rfind("sk", 0) == 0 &&
         v.symbol().find('(') != std::string::npos;
}

std::string EngineRule::ToString() const {
  if (skolems.empty()) return rule.ToString();
  // Render head args, substituting Skolem specs.
  std::vector<std::string> head_args;
  for (const Term& t : rule.head().args) {
    if (t.is_var() && skolems.count(t.var())) {
      const SkolemSpec& s = skolems.at(t.var());
      std::vector<std::string> args;
      for (int v : s.arg_vars) args.push_back(rule.VarName(v));
      head_args.push_back(StrCat("f", s.fn_id, "(", Join(args, ", "), ")"));
    } else {
      head_args.push_back(rule.TermToString(t));
    }
  }
  std::vector<std::string> items;
  for (const Atom& a : rule.body()) {
    std::vector<std::string> args;
    for (const Term& t : a.args) args.push_back(rule.TermToString(t));
    items.push_back(a.predicate + "(" + Join(args, ", ") + ")");
  }
  for (const Comparison& c : rule.comparisons())
    items.push_back(StrCat(rule.TermToString(c.lhs), " ", CompOpName(c.op),
                           " ", rule.TermToString(c.rhs)));
  return StrCat(rule.head().predicate, "(", Join(head_args, ", "), ") :- ",
                Join(items, ", "));
}

Engine::Engine(const Program& program)
    : query_predicate_(program.query_predicate()) {
  rules_.reserve(program.rules().size());
  for (const Rule& r : program.rules()) rules_.push_back(EngineRule{r, {}});
}

Engine::Engine(std::vector<EngineRule> rules, std::string query_predicate)
    : rules_(std::move(rules)), query_predicate_(std::move(query_predicate)) {}

namespace {

// Instantiates the head of `er` (including Skolem terms) for row `row` of a
// batch of satisfying body assignments. *head is a reused buffer: the
// caller copies it on keep, so firing a rule allocates nothing per row
// beyond what the output set itself requires.
Status InstantiateHead(const EngineRule& er, const Batch& b,
                       const std::vector<int>& var_col, size_t row,
                       Tuple* head) {
  head->clear();
  head->reserve(er.rule.head().args.size());
  for (const Term& t : er.rule.head().args) {
    if (t.is_const()) {
      head->push_back(t.value());
      continue;
    }
    auto sk = er.skolems.find(t.var());
    if (sk != er.skolems.end()) {
      std::vector<std::string> parts;
      for (int arg : sk->second.arg_vars) {
        if (var_col[arg] < 0)
          return Status::Internal("unbound skolem argument");
        parts.push_back(b.cols[var_col[arg]].At(row).ToString());
      }
      head->push_back(
          Value(StrCat("sk", sk->second.fn_id, "(", Join(parts, ","), ")")));
      continue;
    }
    if (var_col[t.var()] < 0)
      return Status::Internal("unbound head variable");
    head->push_back(b.cols[var_col[t.var()]].At(row));
  }
  return Status::OK();
}

}  // namespace

std::set<std::string> Engine::IdbPredicates() const {
  std::set<std::string> idb;
  for (const EngineRule& er : rules_) idb.insert(er.rule.head().predicate);
  return idb;
}

Status Engine::FireRule(
    size_t rule_index, const std::vector<const Relation*>& relations,
    FunctionRef<void(const std::string&, Tuple)> emit) const {
  if (rule_index >= rules_.size())
    return Status::InvalidArgument("rule index out of range");
  const EngineRule& er = rules_[rule_index];
  if (relations.size() != er.rule.body().size())
    return Status::InvalidArgument(
        "FireRule: one relation required per body atom");
  Status fire_status = Status::OK();
  Tuple head;
  JoinBodyBatches(
      er.rule, relations,
      [&](const Batch& b, const std::vector<int>& var_col) {
        for (size_t row = 0; row < b.rows; ++row) {
          fire_status = InstantiateHead(er, b, var_col, row, &head);
          if (!fire_status.ok()) return false;
          emit(er.rule.head().predicate, head);
        }
        return true;
      },
      [] { return true; });
  return fire_status;
}

Status Engine::ValidateRules() const {
  for (const EngineRule& er : rules_) {
    const Rule& r = er.rule;
    std::set<int> body_vars = r.BodyVars();
    for (const Term& t : r.head().args) {
      if (!t.is_var()) continue;
      if (body_vars.count(t.var())) continue;
      auto it = er.skolems.find(t.var());
      if (it == er.skolems.end())
        return Status::InvalidArgument(
            StrCat("unsafe rule head variable '", r.VarName(t.var()), "' in ",
                   er.ToString()));
      for (int arg : it->second.arg_vars)
        if (!body_vars.count(arg))
          return Status::InvalidArgument(
              StrCat("skolem argument '", r.VarName(arg),
                     "' not bound by the body in ", er.ToString()));
    }
  }
  return Status::OK();
}

Result<Database> Engine::Evaluate(const Database& edb,
                                  const EvalOptions& options) const {
  CQAC_RETURN_IF_ERROR(ValidateRules());

  std::set<std::string> idb;
  for (const EngineRule& er : rules_) idb.insert(er.rule.head().predicate);

  // full/delta relations per IDB predicate.
  std::map<std::string, Relation> full;
  std::map<std::string, Relation> delta;
  for (const std::string& p : idb) {
    full[p];
    delta[p];
  }
  size_t total = 0;

  // Runs the body join of `er` over `rels` and inserts every instantiated
  // head into `out` unless it is already known in `full`.
  Tuple head_buf;
  auto fire_rule = [&](const EngineRule& er,
                       const std::vector<const Relation*>& rels,
                       std::map<std::string, Relation>* out) -> Status {
    Status st = Status::OK();
    const std::string& pred = er.rule.head().predicate;
    const Relation& known = full[pred];
    Relation& sink = (*out)[pred];
    JoinBodyBatches(
        er.rule, rels,
        [&](const Batch& b, const std::vector<int>& var_col) {
          for (size_t row = 0; row < b.rows; ++row) {
            st = InstantiateHead(er, b, var_col, row, &head_buf);
            if (!st.ok()) return false;
            if (!known.count(head_buf) && sink.insert(head_buf).second)
              ++total;
          }
          return true;
        },
        [] { return true; });
    return st;
  };

  // Relation selector: IDB reads `full` (or delta when flagged), EDB reads
  // the input database.
  auto relation_for = [&](const Atom& a,
                          const Relation* delta_override) -> const Relation* {
    if (delta_override != nullptr) return delta_override;
    if (idb.count(a.predicate)) return &full[a.predicate];
    return &edb.Get(a.predicate);
  };

  // Round 0: every rule evaluated with IDB relations empty contributes only
  // if it has no IDB body atoms.
  for (const EngineRule& er : rules_) {
    bool has_idb = false;
    for (const Atom& a : er.rule.body())
      if (idb.count(a.predicate)) has_idb = true;
    if (has_idb) continue;
    std::vector<const Relation*> rels;
    for (const Atom& a : er.rule.body()) rels.push_back(relation_for(a, nullptr));
    CQAC_RETURN_IF_ERROR(fire_rule(er, rels, &delta));
  }
  for (const std::string& p : idb)
    full[p].insert(delta[p].begin(), delta[p].end());

  // Semi-naive rounds.
  size_t iterations = 0;
  while (true) {
    size_t delta_size = 0;
    for (const std::string& p : idb) delta_size += delta[p].size();
    if (delta_size == 0) break;
    if (++iterations > options.max_iterations)
      return Status::ResourceExhausted("datalog evaluation iteration limit");
    if (total > options.max_tuples)
      return Status::ResourceExhausted("datalog evaluation tuple limit");

    std::map<std::string, Relation> next;
    for (const std::string& p : idb) next[p];

    for (const EngineRule& er : rules_) {
      // For each IDB body position, evaluate with that atom bound to delta.
      for (size_t i = 0; i < er.rule.body().size(); ++i) {
        const Atom& pivot = er.rule.body()[i];
        if (!idb.count(pivot.predicate)) continue;
        if (delta[pivot.predicate].empty()) continue;
        std::vector<const Relation*> rels;
        for (size_t j = 0; j < er.rule.body().size(); ++j)
          rels.push_back(relation_for(
              er.rule.body()[j],
              j == i ? &delta[er.rule.body()[j].predicate] : nullptr));
        CQAC_RETURN_IF_ERROR(fire_rule(er, rels, &next));
      }
    }
    for (const std::string& p : idb)
      full[p].insert(next[p].begin(), next[p].end());
    delta = std::move(next);
  }

  Database out;
  for (const std::string& p : idb)
    for (const Tuple& t : full[p]) CQAC_RETURN_IF_ERROR(out.Insert(p, t));
  return out;
}

Result<Relation> Engine::Query(const Database& edb,
                               const EvalOptions& options) const {
  CQAC_ASSIGN_OR_RETURN(Database idb, Evaluate(edb, options));
  Relation out;
  for (const Tuple& t : idb.Get(query_predicate_)) {
    bool has_skolem = false;
    for (const Value& v : t)
      if (IsSkolemValue(v)) has_skolem = true;
    if (!has_skolem) out.insert(t);
  }
  return out;
}

}  // namespace datalog
}  // namespace cqac
