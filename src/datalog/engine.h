// Bottom-up (semi-naive) evaluation of Datalog programs with arithmetic
// comparisons and optional Skolem (functional) head terms.
//
// The engine is the substrate for Section 5: recursive maximally-contained
// rewritings are Datalog programs, and the inverse-rule construction
// [Duschka-Genesereth] introduces Skolem terms. Skolem values are encoded as
// interned symbol constants of the form "skN(arg1,arg2,...)"; answers
// containing Skolem symbols are filtered out of query results, as usual for
// inverse-rule rewritings.
#ifndef CQAC_DATALOG_ENGINE_H_
#define CQAC_DATALOG_ENGINE_H_

#include <map>
#include <set>
#include <vector>

#include "src/base/function_ref.h"
#include "src/base/status.h"
#include "src/eval/database.h"
#include "src/ir/program.h"

namespace cqac {
namespace datalog {

/// A Skolem assignment: rule variable -> f_{fn_id}(arg_vars...).
struct SkolemSpec {
  int fn_id;
  std::vector<int> arg_vars;  // rule variable ids; must be body-bound
};

/// A rule plus Skolem assignments for head-only variables (used by the
/// inverse-rule construction; plain rules have an empty map).
struct EngineRule {
  Rule rule;
  std::map<int, SkolemSpec> skolems;

  /// Renders the rule with f_i(...) head terms.
  std::string ToString() const;
};

/// Resource limits for evaluation.
struct EvalOptions {
  size_t max_iterations = 1000000;
  size_t max_tuples = 50000000;  // total derived tuples across predicates
};

/// Returns true iff `v` is a Skolem-encoded symbol.
bool IsSkolemValue(const Value& v);

/// Fixpoint evaluator for one program over one extensional database.
class Engine {
 public:
  /// A plain program (no Skolems).
  explicit Engine(const Program& program);

  /// A program whose rules may carry Skolem specs. `query_predicate` selects
  /// the answer relation.
  Engine(std::vector<EngineRule> rules, std::string query_predicate);

  /// Runs to fixpoint over `edb`; returns the database of all derived IDB
  /// relations. ResourceExhausted if limits hit before fixpoint.
  Result<Database> Evaluate(const Database& edb,
                            const EvalOptions& options = {}) const;

  /// Evaluates and returns the query predicate's relation with
  /// Skolem-containing tuples removed (the certain-answer convention).
  Result<Relation> Query(const Database& edb,
                         const EvalOptions& options = {}) const;

  const std::vector<EngineRule>& rules() const { return rules_; }
  const std::string& query_predicate() const { return query_predicate_; }

  /// The set of predicates defined by rule heads (the IDB).
  std::set<std::string> IdbPredicates() const;

  /// Joins the body of rule `rule_index` with body atom i reading
  /// `*relations[i]` and calls `emit(head_predicate, tuple)` once per
  /// satisfying assignment, instantiating Skolem head terms exactly as
  /// `Evaluate` does. Deduplication is the caller's business — this is the
  /// single-rule firing primitive incremental maintainers (src/ivm) build
  /// their delta rounds from.
  Status FireRule(size_t rule_index,
                  const std::vector<const Relation*>& relations,
                  FunctionRef<void(const std::string&, Tuple)> emit) const;

  /// Validates rule safety (every head variable body-bound or Skolemized).
  /// Exposed so callers driving `FireRule` can fail fast up front.
  Status ValidateRules() const;

 private:

  std::vector<EngineRule> rules_;
  std::string query_predicate_;
};

}  // namespace datalog
}  // namespace cqac

#endif  // CQAC_DATALOG_ENGINE_H_
