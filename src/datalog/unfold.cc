#include "src/datalog/unfold.h"

#include <deque>

#include "src/base/strings.h"
#include "src/datalog/engine.h"
#include "src/ir/substitution.h"

namespace cqac {
namespace datalog {
namespace {

// Replaces body atom `pos` of `q` by the body of `rule` (head unified with
// the atom). Returns false when unification fails on constants (the branch
// is empty). Head-variable repetitions and constants become `=` comparisons.
bool UnfoldAtom(const Query& q, size_t pos, const Rule& rule, Query* out) {
  *out = Query();
  out->head() = q.head();
  for (const std::string& name : q.var_names()) out->FindOrAddVariable(name);
  out->comparisons() = q.comparisons();

  const Atom& target = q.body()[pos];
  VarMap map(rule.num_vars());

  // Unify rule head with the target atom.
  for (size_t i = 0; i < target.args.size(); ++i) {
    const Term& rh = rule.head().args[i];
    const Term& at = target.args[i];
    if (rh.is_var()) {
      if (!map.Bind(rh.var(), at))
        out->AddComparison(Comparison(map.Get(rh.var()), CompOp::kEq, at));
    } else if (at.is_const()) {
      if (!(rh.value() == at.value())) return false;
    } else {
      out->AddComparison(Comparison(at, CompOp::kEq, rh));
    }
  }
  // Fresh variables for the rule's nondistinguished variables.
  for (int v = 0; v < rule.num_vars(); ++v) {
    if (map.IsBound(v)) continue;
    int fresh = out->AddFreshVariable(rule.VarName(v));
    map.ForceBind(v, Term::Var(fresh));
  }

  for (size_t j = 0; j < q.body().size(); ++j) {
    if (j == pos) {
      for (const Atom& a : rule.body()) out->AddBodyAtom(map.ApplyToAtom(a));
    } else {
      out->AddBodyAtom(q.body()[j]);
    }
  }
  for (const Comparison& c : rule.comparisons())
    out->AddComparison(map.ApplyToComparison(c));
  return true;
}

}  // namespace

Result<UnionQuery> UnfoldProgram(const Program& p,
                                 const UnfoldOptions& options) {
  CQAC_RETURN_IF_ERROR(p.Validate());
  std::set<std::string> idb = p.IdbPredicates();

  // Group rules by head predicate.
  std::map<std::string, std::vector<const Rule*>> by_head;
  for (const Rule& r : p.rules()) by_head[r.head().predicate].push_back(&r);

  UnionQuery out;
  // Seed: a trivial query `ans(args) :- qpred(args)` per query-rule head
  // arity. We take the arity from the first query-predicate rule.
  const Rule* sample = by_head.at(p.query_predicate()).front();
  Query seed(p.query_predicate());
  Atom goal;
  goal.predicate = p.query_predicate();
  for (size_t i = 0; i < sample->head().args.size(); ++i) {
    int v = seed.AddFreshVariable(StrCat("A", i));
    goal.args.push_back(Term::Var(v));
    seed.head().args.push_back(Term::Var(v));
  }
  seed.AddBodyAtom(goal);

  std::deque<std::pair<Query, int>> frontier;  // (partial expansion, depth)
  frontier.emplace_back(std::move(seed), 0);

  while (!frontier.empty()) {
    auto [cur, depth] = std::move(frontier.front());
    frontier.pop_front();

    // Find the first IDB atom.
    size_t pos = cur.body().size();
    for (size_t i = 0; i < cur.body().size(); ++i) {
      if (idb.count(cur.body()[i].predicate)) {
        pos = i;
        break;
      }
    }
    if (pos == cur.body().size()) {
      out.disjuncts.push_back(std::move(cur));
      if (out.disjuncts.size() >= options.max_disjuncts) break;
      continue;
    }
    if (depth >= options.max_depth) continue;  // incomplete branch dropped

    for (const Rule* r : by_head[cur.body()[pos].predicate]) {
      if (r->head().args.size() != cur.body()[pos].args.size())
        return Status::InvalidArgument(
            StrCat("arity mismatch unfolding '", cur.body()[pos].predicate,
                   "'"));
      Query next;
      if (UnfoldAtom(cur, pos, *r, &next))
        frontier.emplace_back(std::move(next), depth + 1);
    }
  }
  return out;
}

Result<bool> IsCqContainedInDatalog(const Query& cq, const Program& p) {
  if (!cq.IsConjunctiveOnly())
    return Status::Unsupported(
        "IsCqContainedInDatalog requires a comparison-free CQ");
  for (const Rule& r : p.rules())
    if (!r.IsConjunctiveOnly())
      return Status::Unsupported(
          "IsCqContainedInDatalog requires a comparison-free program");
  CQAC_RETURN_IF_ERROR(cq.Validate());
  CQAC_RETURN_IF_ERROR(p.Validate());

  // Freeze: each variable becomes a distinct opaque symbol.
  auto freeze = [&cq](const Term& t) -> Value {
    if (t.is_const()) return t.value();
    return Value(StrCat("frz_", cq.VarName(t.var()), "_", t.var()));
  };
  Database frozen;
  for (const Atom& a : cq.body()) {
    Tuple t;
    for (const Term& arg : a.args) t.push_back(freeze(arg));
    CQAC_RETURN_IF_ERROR(frozen.Insert(a.predicate, std::move(t)));
  }
  Tuple frozen_head;
  for (const Term& arg : cq.head().args) frozen_head.push_back(freeze(arg));

  Engine engine(p);
  CQAC_ASSIGN_OR_RETURN(Database derived, engine.Evaluate(frozen));
  return derived.Get(p.query_predicate()).count(frozen_head) > 0;
}

}  // namespace datalog
}  // namespace cqac
