// Partial unfolding of Datalog programs into finite unions of conjunctive
// queries, and containment of a CQ in a Datalog program.
//
// Unfolding is how we compare a recursive MCR (Section 5) against finite
// unions of CQACs: each bounded unfolding is a contained rewriting the
// program subsumes (the P_k chains of Example 1.2 are exactly the depth-k
// unfoldings of the recursive MCR there).
//
// CQ-in-Datalog containment uses the classic frozen-canonical-database test
// (contained iff the program derives the frozen head from the frozen body),
// which Section 5.2 relies on via the Q^datalog reduction.
#ifndef CQAC_DATALOG_UNFOLD_H_
#define CQAC_DATALOG_UNFOLD_H_

#include "src/base/status.h"
#include "src/ir/program.h"
#include "src/ir/query.h"

namespace cqac {
namespace datalog {

/// Options for UnfoldProgram.
struct UnfoldOptions {
  /// Maximum number of rule applications along one expansion.
  int max_depth = 6;
  /// Hard cap on emitted disjuncts; enumeration stops (truncates) beyond it.
  size_t max_disjuncts = 100000;
};

/// Enumerates the expansions of `p`'s query predicate with at most
/// `max_depth` rule applications, returning those that are IDB-free as a
/// union of conjunctive queries (comparisons are carried along). Rules must
/// be Skolem-free.
Result<UnionQuery> UnfoldProgram(const Program& p,
                                 const UnfoldOptions& options = {});

/// True iff the comparison-free CQ `cq` is contained in the comparison-free
/// Datalog program `p` (EXPTIME in general; the paper's Section 5 reduction
/// produces the small instances we need). Head arities must match.
Result<bool> IsCqContainedInDatalog(const Query& cq, const Program& p);

}  // namespace datalog
}  // namespace cqac

#endif  // CQAC_DATALOG_UNFOLD_H_
