#include "src/engine/adaptive.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "src/base/strings.h"

namespace cqac {
namespace {

constexpr double kLogMin = -16.0;
constexpr double kLogMax = 16.0;
constexpr double kLogStep = (kLogMax - kLogMin) / StreamingHistogram::kBuckets;

std::string FormatDouble(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", v);
  return buf;
}

}  // namespace

void StreamingHistogram::Observe(double value) {
  double lg = value > 0 ? std::log2(value) : kLogMin;
  auto idx = static_cast<int64_t>(std::floor((lg - kLogMin) / kLogStep));
  idx = std::clamp<int64_t>(idx, 0, kBuckets - 1);
  ++buckets_[idx];
  ++count_;
}

double StreamingHistogram::Quantile(double q, double fallback) const {
  if (count_ == 0) return fallback;
  const double target = q * static_cast<double>(count_);
  uint64_t seen = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    seen += buckets_[i];
    if (static_cast<double>(seen) >= target)
      return std::exp2(kLogMin + (static_cast<double>(i) + 0.5) * kLogStep);
  }
  return std::exp2(kLogMax - 0.5 * kLogStep);
}

void StreamingHistogram::Reset() {
  std::fill(std::begin(buckets_), std::end(buckets_), 0u);
  count_ = 0;
}

bool ArmCalibration::Observe(double value) {
  histogram.Observe(value);
  ++observations;
  if (observations % kRetunePeriod != 0) return false;
  factor = std::clamp(histogram.Quantile(0.5, initial_), 1.0 / kFactorClamp,
                      kFactorClamp);
  ++retunes;
  return true;
}

std::string ArmCalibration::ToString() const {
  return StrCat(FormatDouble(factor), " (", observations, " obs, ", retunes,
                " retunes)");
}

std::string AdaptiveState::ToString() const {
  return StrCat("ivm-counting incremental ", ivm_incremental.ToString(),
                ", rebuild ", ivm_rebuild.ToString(), "\n",
                "ivm-dred incremental ", dred_incremental.ToString(),
                ", rebuild ", dred_rebuild.ToString(), "\n",
                "union-prune fraction ", union_prune.ToString());
}

void StreamingHistogram::SerializeTo(std::string* out) const {
  wire::AppendU64(out, count_);
  for (uint32_t b : buckets_) wire::AppendU32(out, b);
}

bool StreamingHistogram::RestoreFrom(wire::Cursor* c) {
  count_ = c->ReadU64();
  for (uint32_t& b : buckets_) b = c->ReadU32();
  return c->ok();
}

void ArmCalibration::SerializeTo(std::string* out) const {
  wire::AppendDouble(out, factor);
  wire::AppendU64(out, observations);
  wire::AppendU64(out, retunes);
  histogram.SerializeTo(out);
}

bool ArmCalibration::RestoreFrom(wire::Cursor* c) {
  factor = c->ReadDouble();
  observations = c->ReadU64();
  retunes = c->ReadU64();
  return histogram.RestoreFrom(c) && c->ok();
}

void AdaptiveState::SerializeTo(std::string* out) const {
  ivm_incremental.SerializeTo(out);
  ivm_rebuild.SerializeTo(out);
  dred_incremental.SerializeTo(out);
  dred_rebuild.SerializeTo(out);
  union_prune.SerializeTo(out);
}

bool AdaptiveState::RestoreFrom(wire::Cursor* c) {
  return ivm_incremental.RestoreFrom(c) && ivm_rebuild.RestoreFrom(c) &&
         dred_incremental.RestoreFrom(c) && dred_rebuild.RestoreFrom(c) &&
         union_prune.RestoreFrom(c);
}

}  // namespace cqac
