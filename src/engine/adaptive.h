// Self-tuning cost-model constants for the planner (src/plan).
//
// The planner's work models are deliberately crude (linear probe counts,
// independence assumptions), so each cost comparison multiplies its raw
// estimates by a calibration factor learned from the workload itself: after
// every executed plan the coordinator feeds the observed work back as an
// observed/estimated ratio, and every kRetunePeriod observations the factor
// is re-estimated from a streaming histogram of those ratios. The scheme
// follows destor's CBR utility buckets (cbr_rewrite.c), which re-estimate a
// rewrite threshold every 100 chunks by scanning a fixed bucket array —
// cheap, O(1) per observation, no stored samples.
//
// Determinism. Adaptation state lives in the EngineContext and is mutated
// only by the coordinating thread at deterministic points (after an Apply
// commits, after a union evaluation finishes), never from inside a parallel
// section. The observed metrics themselves are thread-count-invariant
// (tuple counts, never batch or task counts), so a fixed command sequence
// produces byte-identical factors — and therefore byte-identical plans — at
// every thread count.
#ifndef CQAC_ENGINE_ADAPTIVE_H_
#define CQAC_ENGINE_ADAPTIVE_H_

#include <cstdint>
#include <string>

#include "src/base/wire.h"

namespace cqac {

/// A fixed-size streaming histogram over (0, +inf), destor-style: 256
/// buckets spanning log2 values [-16, 16), O(1) insert, quantiles by a
/// bucket scan. Values outside the range clamp to the edge buckets.
class StreamingHistogram {
 public:
  static constexpr size_t kBuckets = 256;

  void Observe(double value);

  /// The representative value (bucket midpoint) at quantile `q` in [0, 1].
  /// Returns `fallback` while the histogram is empty.
  double Quantile(double q, double fallback) const;

  uint64_t count() const { return count_; }
  void Reset();

  /// Durability snapshot surface (src/store): raw bucket counts, so a
  /// recovered process retunes from exactly the observation history the
  /// crashed one had.
  void SerializeTo(std::string* out) const;
  bool RestoreFrom(wire::Cursor* c);

 private:
  uint32_t buckets_[kBuckets] = {};
  uint64_t count_ = 0;
};

/// One self-tuning constant: a factor plus the histogram of observations
/// it is periodically re-estimated from.
struct ArmCalibration {
  /// Re-estimate the factor every this many observations (destor's
  /// "every 100 chunks").
  static constexpr uint64_t kRetunePeriod = 100;
  /// Factors are clamped into [1/kFactorClamp, kFactorClamp] so one absurd
  /// estimate cannot wedge a decision permanently.
  static constexpr double kFactorClamp = 64.0;

  explicit ArmCalibration(double initial) : factor(initial), initial_(initial) {}

  /// Records one observation; returns true when it triggered a retune.
  bool Observe(double value);

  std::string ToString() const;  // "1.000 (n obs, k retunes)"

  /// Durability snapshot surface (src/store). The factor is serialized as
  /// its raw IEEE-754 bits: a restored factor must compare bit-equal, or
  /// recovered plans could diverge from the pre-crash process.
  void SerializeTo(std::string* out) const;
  bool RestoreFrom(wire::Cursor* c);

  double factor;
  StreamingHistogram histogram;
  uint64_t observations = 0;
  uint64_t retunes = 0;

 private:
  double initial_;
};

/// Every self-tuning constant the planner consults, one ArmCalibration per
/// (decision kind, arm). The IVM entries calibrate observed/estimated work
/// ratios for whichever path ran; union_prune tracks the observed fraction
/// of disjuncts pruned by containment before evaluation.
struct AdaptiveState {
  ArmCalibration ivm_incremental{1.0};
  ArmCalibration ivm_rebuild{1.0};
  ArmCalibration dred_incremental{1.0};
  ArmCalibration dred_rebuild{1.0};
  ArmCalibration union_prune{0.5};

  /// Deterministic multi-line rendering (the shell's `plan` command).
  std::string ToString() const;

  /// Durability snapshot surface (src/store): all five arms in declaration
  /// order. RestoreFrom returns false on malformed input and leaves the
  /// state partially overwritten (callers restore into a fresh instance).
  void SerializeTo(std::string* out) const;
  bool RestoreFrom(wire::Cursor* c);
};

}  // namespace cqac

#endif  // CQAC_ENGINE_ADAPTIVE_H_
