#include "src/engine/budget.h"

#include "src/base/strings.h"

namespace cqac {

Status Budget::CheckDeadline(const char* what) const {
  if (!DeadlineExceeded()) return Status::OK();
  return Status::ResourceExhausted(
      StrCat(what, ": wall-clock deadline exceeded"));
}

}  // namespace cqac
