// Budget: the single resource-limit object threaded through the rewriting
// stack via EngineContext (src/engine/context.h).
//
// It replaces the scattered per-struct caps the options types used to carry
// (ContainmentOptions::max_homomorphisms, HomomorphismOptions::max_results,
// BucketOptions::max_candidates, McdOptions::max_mcds,
// RewriteOptions::max_combinations, ...). Semantics:
//
//  * max_homomorphisms — cap on containment mappings enumerated per
//    homomorphism search (ForEachHomomorphism and everything above it);
//  * max_mappings      — cap on rewriting artifacts produced per algorithm
//    stage: MCDs constructed, bucket candidates, MCD combinations;
//  * deadline          — optional wall-clock deadline (steady clock) checked
//    at enumeration boundaries;
//  * max_cache_bytes   — byte cap on the EngineContext decision cache and
//    query interner combined (0 disables caching).
//
// Exceeding an enumeration cap or the deadline is reported as a clean
// StatusCode::kResourceExhausted, never as silent truncation.
#ifndef CQAC_ENGINE_BUDGET_H_
#define CQAC_ENGINE_BUDGET_H_

#include <chrono>
#include <cstddef>
#include <limits>
#include <optional>

#include "src/base/status.h"

namespace cqac {

struct Budget {
  size_t max_homomorphisms = 1 << 20;
  size_t max_mappings = 1 << 20;
  std::optional<std::chrono::steady_clock::time_point> deadline;
  size_t max_cache_bytes = 16u << 20;

  /// A budget with every cap removed (no deadline, no enumeration caps).
  static Budget Unlimited() {
    Budget b;
    b.max_homomorphisms = std::numeric_limits<size_t>::max();
    b.max_mappings = std::numeric_limits<size_t>::max();
    b.deadline.reset();
    return b;
  }

  /// A default budget whose deadline is `timeout` from now.
  static Budget WithTimeout(std::chrono::milliseconds timeout) {
    Budget b;
    b.deadline = std::chrono::steady_clock::now() + timeout;
    return b;
  }

  bool DeadlineExceeded() const {
    return deadline.has_value() &&
           std::chrono::steady_clock::now() > *deadline;
  }

  /// OK, or ResourceExhausted("<what>: wall-clock deadline exceeded").
  Status CheckDeadline(const char* what) const;
};

}  // namespace cqac

#endif  // CQAC_ENGINE_BUDGET_H_
