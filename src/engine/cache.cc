#include "src/engine/cache.h"

namespace cqac {

void DecisionCache::SetShardCaps(size_t max_bytes) {
  // Deal the cap out evenly; the first shards absorb the remainder so the
  // per-shard caps always sum to exactly max_bytes.
  const size_t base = max_bytes / kNumShards;
  size_t extra = max_bytes % kNumShards;
  for (Shard& s : shards_) {
    s.max_bytes = base + (extra > 0 ? 1 : 0);
    if (extra > 0) --extra;
  }
}

void DecisionCache::set_max_bytes(size_t max_bytes) {
  const size_t base = max_bytes / kNumShards;
  size_t extra = max_bytes % kNumShards;
  for (Shard& s : shards_) {
    std::lock_guard<std::mutex> lock(s.mu);
    s.max_bytes = base + (extra > 0 ? 1 : 0);
    if (extra > 0) --extra;
    EvictToFit(s);
  }
}

std::optional<bool> DecisionCache::Lookup(const std::string& key) {
  Shard& s = shards_[ShardOf(key)];
  std::lock_guard<std::mutex> lock(s.mu);
  auto it = s.index.find(std::string_view(key));
  if (it == s.index.end()) return std::nullopt;
  s.lru.splice(s.lru.begin(), s.lru, it->second);
  return it->second->value;
}

uint64_t DecisionCache::Insert(const std::string& key, bool value) {
  Shard& s = shards_[ShardOf(key)];
  std::lock_guard<std::mutex> lock(s.mu);
  auto it = s.index.find(std::string_view(key));
  if (it != s.index.end()) {
    it->second->value = value;
    s.lru.splice(s.lru.begin(), s.lru, it->second);
    return 0;
  }
  Entry entry{key, value};
  if (CostOf(entry) > s.max_bytes) return 0;
  s.bytes += CostOf(entry);
  s.lru.push_front(std::move(entry));
  s.index.emplace(std::string_view(s.lru.front().key), s.lru.begin());
  return EvictToFit(s);
}

uint64_t DecisionCache::EvictToFit(Shard& s) {
  uint64_t evicted = 0;
  while (s.bytes > s.max_bytes && !s.lru.empty()) {
    const Entry& victim = s.lru.back();
    s.bytes -= CostOf(victim);
    s.index.erase(std::string_view(victim.key));
    s.lru.pop_back();
    ++evicted;
  }
  s.evictions += evicted;
  return evicted;
}

size_t DecisionCache::bytes() const {
  size_t total = 0;
  for (const Shard& s : shards_) {
    std::lock_guard<std::mutex> lock(s.mu);
    total += s.bytes;
  }
  return total;
}

size_t DecisionCache::entries() const {
  size_t total = 0;
  for (const Shard& s : shards_) {
    std::lock_guard<std::mutex> lock(s.mu);
    total += s.lru.size();
  }
  return total;
}

uint64_t DecisionCache::evictions() const {
  uint64_t total = 0;
  for (const Shard& s : shards_) {
    std::lock_guard<std::mutex> lock(s.mu);
    total += s.evictions;
  }
  return total;
}

void DecisionCache::Clear() {
  for (Shard& s : shards_) {
    std::lock_guard<std::mutex> lock(s.mu);
    s.lru.clear();
    s.index.clear();
    s.bytes = 0;
  }
}

}  // namespace cqac
