#include "src/engine/cache.h"

namespace cqac {

std::optional<bool> DecisionCache::Lookup(const std::string& key) {
  auto it = index_.find(std::string_view(key));
  if (it == index_.end()) return std::nullopt;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->value;
}

void DecisionCache::Insert(const std::string& key, bool value) {
  auto it = index_.find(std::string_view(key));
  if (it != index_.end()) {
    it->second->value = value;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  Entry entry{key, value};
  if (CostOf(entry) > max_bytes_) return;
  bytes_ += CostOf(entry);
  lru_.push_front(std::move(entry));
  index_.emplace(std::string_view(lru_.front().key), lru_.begin());
  EvictToFit();
}

void DecisionCache::EvictToFit() {
  while (bytes_ > max_bytes_ && !lru_.empty()) {
    const Entry& victim = lru_.back();
    bytes_ -= CostOf(victim);
    index_.erase(std::string_view(victim.key));
    lru_.pop_back();
    ++evictions_;
  }
}

void DecisionCache::Clear() {
  lru_.clear();
  index_.clear();
  bytes_ = 0;
}

}  // namespace cqac
