// DecisionCache: a sharded, byte-bounded LRU memo for boolean decisions.
//
// One instance lives in each EngineContext and stores both containment
// results (keyed on interned canonical-pair ids, see context.h) and
// conjunction-implication results (keyed on exact serialized comparisons).
// Keys are exact — collision handling happens upstream: the interner
// resolves 64-bit fingerprint collisions by full canonical-text comparison
// before a pair id is ever formed, so a cache hit is always a true hit.
//
// The cache is thread-safe. Keys are spread across a fixed number of
// shards, each an independent LRU list guarded by its own mutex, so
// concurrent lookups on different canonical classes rarely contend. The
// byte cap is split evenly across shards; recency is therefore tracked
// per shard rather than globally, which only changes *which* entries get
// evicted under pressure, never the correctness of a hit.
#ifndef CQAC_ENGINE_CACHE_H_
#define CQAC_ENGINE_CACHE_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

namespace cqac {

class DecisionCache {
 public:
  static constexpr size_t kNumShards = 8;

  explicit DecisionCache(size_t max_bytes = 16u << 20) {
    SetShardCaps(max_bytes);
  }

  void set_max_bytes(size_t max_bytes);

  /// Returns the stored decision and refreshes its LRU position.
  std::optional<bool> Lookup(const std::string& key);

  /// Stores (or refreshes) a decision; evicts least-recently-used entries
  /// of the key's shard when over that shard's byte cap. A key larger than
  /// the shard cap is ignored. Returns the number of entries evicted.
  uint64_t Insert(const std::string& key, bool value);

  size_t bytes() const;
  size_t entries() const;
  uint64_t evictions() const;

  void Clear();

 private:
  struct Entry {
    std::string key;
    bool value;
  };

  // One independent LRU. The mutex is mutable so the summing accessors
  // stay const.
  struct Shard {
    mutable std::mutex mu;
    size_t max_bytes = 0;
    size_t bytes = 0;
    uint64_t evictions = 0;
    std::list<Entry> lru;  // front = most recently used
    // Views into the stable list-owned key strings.
    std::unordered_map<std::string_view, std::list<Entry>::iterator> index;
  };

  // Approximate bookkeeping overhead per entry (list node + index slot).
  static constexpr size_t kEntryOverhead = 96;

  static size_t CostOf(const Entry& e) {
    return e.key.size() + kEntryOverhead;
  }

  static size_t ShardOf(const std::string& key) {
    return std::hash<std::string_view>{}(std::string_view(key)) % kNumShards;
  }

  void SetShardCaps(size_t max_bytes);
  // Evicts from `s` until under its cap; returns entries evicted.
  // Caller holds s.mu.
  static uint64_t EvictToFit(Shard& s);

  Shard shards_[kNumShards];
};

}  // namespace cqac

#endif  // CQAC_ENGINE_CACHE_H_
