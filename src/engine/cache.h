// DecisionCache: a byte-bounded LRU memo for boolean decisions.
//
// One instance lives in each EngineContext and stores both containment
// results (keyed on interned canonical-pair ids, see context.h) and
// conjunction-implication results (keyed on exact serialized comparisons).
// Keys are exact — collision handling happens upstream: the interner
// resolves 64-bit fingerprint collisions by full canonical-text comparison
// before a pair id is ever formed, so a cache hit is always a true hit.
#ifndef CQAC_ENGINE_CACHE_H_
#define CQAC_ENGINE_CACHE_H_

#include <cstdint>
#include <list>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

namespace cqac {

class DecisionCache {
 public:
  explicit DecisionCache(size_t max_bytes = 16u << 20)
      : max_bytes_(max_bytes) {}

  void set_max_bytes(size_t max_bytes) {
    max_bytes_ = max_bytes;
    EvictToFit();
  }

  /// Returns the stored decision and refreshes its LRU position.
  std::optional<bool> Lookup(const std::string& key);

  /// Stores (or refreshes) a decision; evicts least-recently-used entries
  /// when over the byte cap. A key larger than the whole cap is ignored.
  void Insert(const std::string& key, bool value);

  size_t bytes() const { return bytes_; }
  size_t entries() const { return lru_.size(); }
  uint64_t evictions() const { return evictions_; }

  void Clear();

 private:
  struct Entry {
    std::string key;
    bool value;
  };

  // Approximate bookkeeping overhead per entry (list node + index slot).
  static constexpr size_t kEntryOverhead = 96;

  static size_t CostOf(const Entry& e) {
    return e.key.size() + kEntryOverhead;
  }

  void EvictToFit();

  size_t max_bytes_;
  size_t bytes_ = 0;
  uint64_t evictions_ = 0;
  std::list<Entry> lru_;  // front = most recently used
  // Views into the stable list-owned key strings.
  std::unordered_map<std::string_view, std::list<Entry>::iterator> index_;
};

}  // namespace cqac

#endif  // CQAC_ENGINE_CACHE_H_
