#include "src/engine/context.h"

#include "src/base/strings.h"

namespace cqac {

InternedQuery EngineContext::Intern(const Query& q) {
  ++stats_.intern_requests;
  // Canonicalization is the expensive part; do it outside the lock.
  CanonicalForm form = Canonicalize(q);
  InternedQuery out;
  out.fingerprint = form.fingerprint;

  std::lock_guard<std::mutex> lock(intern_mu_);
  std::vector<uint64_t>& ids = by_fingerprint_[form.fingerprint];
  for (uint64_t id : ids) {
    if (texts_[id] == form.text) {
      out.id = id;
      return out;
    }
  }
  if (!ids.empty()) ++stats_.fingerprint_collisions;
  out.id = texts_.size();
  intern_bytes_ += form.text.size() + sizeof(uint64_t) * 4;
  texts_.push_back(std::move(form.text));
  ids.push_back(out.id);
  ++stats_.queries_interned;
  EnforceByteBudget();
  return out;
}

std::optional<bool> EngineContext::CacheLookup(const std::string& key) {
  if (!caching_enabled()) return std::nullopt;
  return cache_.Lookup(key);
}

void EngineContext::CacheStore(const std::string& key, bool value) {
  if (!caching_enabled()) return;
  stats_.cache_evictions += cache_.Insert(key, value);
}

std::string EngineContext::MakeContainmentKey(const InternedQuery& contained,
                                              const InternedQuery& container,
                                              bool fast_path) {
  return StrCat("C|", contained.id, "|", container.id, "|",
                fast_path ? 1 : 0);
}

size_t EngineContext::cache_bytes() const {
  std::lock_guard<std::mutex> lock(intern_mu_);
  return cache_.bytes() + intern_bytes_;
}

void EngineContext::EnforceByteBudget() {
  // The decision cache evicts itself; the interner is append-only, so when
  // it alone outgrows the budget both stores are flushed (an epoch reset:
  // ids restart, and stale pair keys can no longer be formed or matched
  // because the cache is emptied with them).
  if (intern_bytes_ <= budget_.max_cache_bytes) {
    // Leave the cache whatever the interner does not use.
    cache_.set_max_bytes(budget_.max_cache_bytes - intern_bytes_);
    return;
  }
  by_fingerprint_.clear();
  texts_.clear();
  intern_bytes_ = 0;
  cache_.Clear();
  cache_.set_max_bytes(budget_.max_cache_bytes);
  ++stats_.cache_flushes;
}

std::string EngineContext::ToString() const {
  size_t interned;
  {
    std::lock_guard<std::mutex> lock(intern_mu_);
    interned = texts_.size();
  }
  return StrCat(stats_.ToString(), "\ncache footprint: ", cache_bytes(),
                " bytes (", cache_.entries(), " decisions, ", interned,
                " interned queries)\nthreads: ", parallelism());
}

}  // namespace cqac
