// EngineContext: the shared engine seam of the rewriting stack.
//
// One EngineContext bundles the three things every expensive decision
// needs:
//   * a Budget (enumeration caps, wall-clock deadline, cache byte cap);
//   * an EngineStats counter block;
//   * a canonical-query interner plus a byte-bounded LRU decision cache,
//     which together memoize containment and implication results across
//     calls that are identical up to variable renaming.
//
// Every algorithm in src/containment and src/rewriting has an overload
// taking `EngineContext&` as its first parameter; the legacy overloads
// construct a fresh context per top-level call (so existing callers keep
// their exact semantics while still getting intra-call memoization).
//
// Thread-safety model. A context is safely shareable across the workers of
// an attached TaskPool: Intern, CacheLookup/CacheStore, every stats counter,
// and the cancellation flag are internally synchronized (sharded LRU with
// per-shard mutexes, a mutex-guarded interner, relaxed atomics). What stays
// single-threaded is *coordination*: one thread drives an engine call on a
// context at a time and fans work out beneath it via CtxParallelFor /
// ParallelOutcomes (src/engine/parallel.h); budget() limits must not be
// mutated while a parallel section is in flight. Deadline exhaustion and
// RequestCancel() propagate to all workers through ShouldStop().
#ifndef CQAC_ENGINE_CONTEXT_H_
#define CQAC_ENGINE_CONTEXT_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/base/task_pool.h"
#include "src/engine/adaptive.h"
#include "src/engine/budget.h"
#include "src/engine/cache.h"
#include "src/engine/stats.h"
#include "src/ir/canonical.h"
#include "src/ir/query.h"

namespace cqac {

/// The result of interning a query: a dense id unique per canonical form
/// (collision-verified) plus the renaming-invariant fingerprint.
struct InternedQuery {
  uint64_t id = 0;
  uint64_t fingerprint = 0;
};

class EngineContext {
 public:
  EngineContext() : cache_(budget_.max_cache_bytes) {}
  explicit EngineContext(Budget budget)
      : budget_(budget), cache_(budget.max_cache_bytes) {}

  Budget& budget() { return budget_; }
  const Budget& budget() const { return budget_; }

  EngineStats& stats() { return stats_; }
  const EngineStats& stats() const { return stats_; }

  /// Self-tuning planner constants (src/plan). NOT internally synchronized:
  /// mutated only by the coordinating thread at deterministic points (never
  /// from inside a parallel section), which is what keeps plans
  /// byte-identical at every thread count — see src/engine/adaptive.h.
  AdaptiveState& adaptive() { return adaptive_; }
  const AdaptiveState& adaptive() const { return adaptive_; }

  /// Attaches a task pool (not owned; must outlive the context's use of
  /// it). Null or a 0-thread pool means every engine loop runs serially.
  void set_task_pool(TaskPool* pool) { pool_ = pool; }
  TaskPool* task_pool() const { return pool_; }

  /// Worker threads available for fan-out (0 = serial execution).
  size_t parallelism() const { return pool_ ? pool_->thread_count() : 0; }

  /// Cooperative cancellation, shared by all workers fanned out under this
  /// context. A parallel section raises it when one task hits a budget
  /// error so siblings stop burning work; the section clears it again
  /// before merging (see parallel.h). Long-running inner loops poll
  /// ShouldStop() alongside their deadline checks.
  void RequestCancel() { cancel_.store(true, std::memory_order_relaxed); }
  void ClearCancel() { cancel_.store(false, std::memory_order_relaxed); }
  bool cancel_requested() const {
    return cancel_.load(std::memory_order_relaxed);
  }
  /// True when work should wind down: deadline passed or cancel requested.
  bool ShouldStop() const {
    return cancel_requested() || budget_.DeadlineExceeded();
  }

  /// Disables/enables memoization (stats and budget still apply). Used by
  /// ablation benches and the cache-equivalence tests.
  void set_caching_enabled(bool enabled) { caching_enabled_ = enabled; }
  bool caching_enabled() const {
    return caching_enabled_ && budget_.max_cache_bytes > 0;
  }

  /// Canonicalizes and interns `q`. Queries equal up to variable renaming
  /// and subgoal order receive the same id; 64-bit fingerprint collisions
  /// are detected by exact canonical-text comparison and resolved to
  /// distinct ids. Callers should pass preprocessed queries (the
  /// containment layer does) so comparison-implied equalities do not split
  /// canonical classes. Thread-safe.
  InternedQuery Intern(const Query& q);

  /// Decision memo. Keys are exact strings; see MakeContainmentKey /
  /// implication serialization for the two key families in use.
  /// Thread-safe.
  std::optional<bool> CacheLookup(const std::string& key);
  void CacheStore(const std::string& key, bool value);

  /// Key for a directed containment decision `q2 contained-in q1` under the
  /// given fast-path setting, from interned pair ids.
  static std::string MakeContainmentKey(const InternedQuery& contained,
                                        const InternedQuery& container,
                                        bool fast_path);

  size_t cache_bytes() const;
  size_t cache_entries() const { return cache_.entries(); }

  /// Stats plus cache occupancy and parallelism, for the shell's `stats`
  /// command.
  std::string ToString() const;

 private:
  /// Flushes interner + cache when their combined footprint exceeds the
  /// byte budget (the interner itself is append-only between flushes).
  /// Caller holds intern_mu_.
  void EnforceByteBudget();

  Budget budget_;
  EngineStats stats_;
  AdaptiveState adaptive_;
  bool caching_enabled_ = true;

  TaskPool* pool_ = nullptr;  // not owned
  std::atomic<bool> cancel_{false};

  // Interner: fingerprint -> candidate interned ids; texts_ owns the
  // canonical strings (id = index). Guarded by intern_mu_.
  mutable std::mutex intern_mu_;
  std::unordered_map<uint64_t, std::vector<uint64_t>> by_fingerprint_;
  std::vector<std::string> texts_;
  size_t intern_bytes_ = 0;

  DecisionCache cache_;
};

}  // namespace cqac

#endif  // CQAC_ENGINE_CONTEXT_H_
