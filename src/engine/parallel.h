// Deterministic parallel helpers over an EngineContext's TaskPool.
//
// The engine's drivers all follow one shape: generate a list of independent
// work items, process each (expensively), then merge results *in item
// order* so output is independent of scheduling. Two helpers capture it:
//
//   * CtxParallelFor(ctx, n, body) — plain fan-out for bodies that write
//     only to their own slot (join chunks, per-view construction). Falls
//     back to an inline serial loop when no pool is attached, n < 2, or the
//     caller is already inside a pool task (parallelism is one level deep).
//
//   * ParallelOutcomes<T> — fan-out with early-exit semantics. Each item
//     produces a T (typically a Result<...>); when one item yields an error
//     the context's cancel flag is raised so sibling tasks wind down
//     instead of burning the rest of the budget. Merging then walks items
//     in ascending order via Get(i).
//
// Determinism under cancellation is the subtle part. A task that finishes
// *after* cancel was raised may have been polluted by it (inner loops poll
// ShouldStop() and bail with kResourceExhausted), and a task that never
// started is simply missing. Both kinds of slot are left empty, and Get(i)
// repairs them by recomputing serially — after the constructor has cleared
// the cancel flag — so the merge observes exactly the values a serial run
// would have produced, in the same order. With no pool attached the
// constructor computes nothing and every Get(i) runs lazily in merge
// order, which is bit-identical to the pre-parallel code path including
// which work is skipped by early exits.
#ifndef CQAC_ENGINE_PARALLEL_H_
#define CQAC_ENGINE_PARALLEL_H_

#include <chrono>
#include <cstddef>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

#include "src/base/task_pool.h"
#include "src/engine/context.h"

namespace cqac {

namespace parallel_internal {

inline bool ShouldFanOut(const EngineContext& ctx, size_t n) {
  return ctx.task_pool() != nullptr && ctx.task_pool()->thread_count() > 0 &&
         n > 1 && !TaskPool::InPoolTask();
}

inline void RecordSection(EngineContext& ctx, size_t tasks,
                          std::chrono::steady_clock::time_point start) {
  const auto elapsed = std::chrono::steady_clock::now() - start;
  ++ctx.stats().parallel_sections;
  ctx.stats().parallel_tasks += tasks;
  ctx.stats().parallel_wall_ns += static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count());
}

}  // namespace parallel_internal

/// Runs body(i) for all i in [0, n), fanning out over ctx's pool when
/// profitable. The serial path is a plain loop with no stats overhead, so
/// threads=0 behaviour (including stats) is identical to pre-pool code.
inline void CtxParallelFor(EngineContext& ctx, size_t n,
                           FunctionRef<void(size_t)> body) {
  if (!parallel_internal::ShouldFanOut(ctx, n)) {
    for (size_t i = 0; i < n; ++i) body(i);
    return;
  }
  const auto start = std::chrono::steady_clock::now();
  ctx.task_pool()->ParallelFor(n, body);
  parallel_internal::RecordSection(ctx, n, start);
}

/// Computes n outcomes, possibly in parallel, for in-order merging.
///
/// fn(i) produces item i's outcome; is_error(t) tells the fan-out that an
/// outcome should cancel remaining siblings (budget errors, hard failures —
/// NOT "normal" rejections like an inconsistent candidate). The merge loop
/// then calls Get(i) in ascending order and applies the same accept /
/// reject / return-error logic the old serial loop used; it may stop early,
/// in which case never-computed tail slots stay untouched.
template <typename T>
class ParallelOutcomes {
 public:
  ParallelOutcomes(EngineContext& ctx, size_t n, std::function<T(size_t)> fn,
                   std::function<bool(const T&)> is_error)
      : ctx_(ctx), fn_(std::move(fn)), slots_(n) {
    if (!parallel_internal::ShouldFanOut(ctx, n)) return;  // lazy-only mode
    const auto start = std::chrono::steady_clock::now();
    ctx.task_pool()->ParallelFor(n, [&](size_t i) {
      if (ctx_.ShouldStop()) return;  // skipped; repaired lazily if reached
      T result = fn_(i);
      // If cancel arrived while fn_ ran, the result may be polluted by the
      // cooperative aborts — discard it; Get() recomputes cleanly.
      if (ctx_.cancel_requested()) return;
      if (is_error(result)) ctx_.RequestCancel();
      slots_[i] = std::move(result);
    });
    // The section is over: nothing reads the flag concurrently anymore, and
    // lazy repairs below must run free of it.
    ctx_.ClearCancel();
    parallel_internal::RecordSection(ctx_, n, start);
  }

  size_t size() const { return slots_.size(); }

  /// Item i's outcome; computes it now (serially) if the parallel pass
  /// skipped or discarded it. Call in ascending order for deterministic
  /// merges.
  T& Get(size_t i) {
    if (!slots_[i].has_value()) slots_[i] = fn_(i);
    return *slots_[i];
  }

 private:
  EngineContext& ctx_;
  std::function<T(size_t)> fn_;
  std::vector<std::optional<T>> slots_;
};

}  // namespace cqac

#endif  // CQAC_ENGINE_PARALLEL_H_
