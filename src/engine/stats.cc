#include "src/engine/stats.h"

#include "src/base/strings.h"

namespace cqac {

double EngineStats::ContainmentHitRate() const {
  uint64_t looked = containment_cache_hits + containment_cache_misses;
  if (looked == 0) return 0.0;
  return static_cast<double>(containment_cache_hits) /
         static_cast<double>(looked);
}

std::string EngineStats::ToString() const {
  return StrCat(
      "containment: ", containment_calls, " calls, ", containment_cache_hits,
      " cache hits, ", containment_cache_misses, " misses (hit rate ",
      static_cast<int>(ContainmentHitRate() * 100), "%)\n",
      "implication: ", implication_calls, " conjunction calls (",
      implication_cache_hits, " hits, ", implication_cache_misses,
      " misses), ", disjunction_implications, " disjunction calls\n",
      "homomorphism: ", hom_enumerations, " enumerations, ",
      homomorphisms_found, " mappings found\n",
      "interner: ", intern_requests, " requests, ", queries_interned,
      " distinct queries, ", fingerprint_collisions, " fp collisions\n",
      "cache: ", cache_evictions, " evictions, ", cache_flushes, " flushes\n",
      "budget: ", budget_exhaustions, " exhaustions\n",
      "rewriting: ", rewrite_candidates, " candidates, ",
      rewrite_verified_rejects, " verified rejects");
}

}  // namespace cqac
