#include "src/engine/stats.h"

#include "src/base/strings.h"

namespace cqac {

void EngineStats::Reset() {
  for (StatCounter* c :
       {&containment_calls, &containment_cache_hits, &containment_cache_misses,
        &implication_calls, &implication_cache_hits, &implication_cache_misses,
        &disjunction_implications, &hom_enumerations, &homomorphisms_found,
        &intern_requests, &queries_interned, &fingerprint_collisions,
        &cache_evictions, &cache_flushes, &budget_exhaustions,
        &rewrite_candidates, &rewrite_verified_rejects, &parallel_sections,
        &parallel_tasks, &parallel_wall_ns})
    c->Reset();
}

double EngineStats::ContainmentHitRate() const {
  uint64_t looked = containment_cache_hits + containment_cache_misses;
  if (looked == 0) return 0.0;
  return static_cast<double>(containment_cache_hits) /
         static_cast<double>(looked);
}

std::string EngineStats::ToString() const {
  return StrCat(
      "containment: ", uint64_t{containment_calls}, " calls, ",
      uint64_t{containment_cache_hits}, " cache hits, ",
      uint64_t{containment_cache_misses}, " misses (hit rate ",
      static_cast<int>(ContainmentHitRate() * 100), "%)\n",
      "implication: ", uint64_t{implication_calls}, " conjunction calls (",
      uint64_t{implication_cache_hits}, " hits, ",
      uint64_t{implication_cache_misses}, " misses), ",
      uint64_t{disjunction_implications}, " disjunction calls\n",
      "homomorphism: ", uint64_t{hom_enumerations}, " enumerations, ",
      uint64_t{homomorphisms_found}, " mappings found\n",
      "interner: ", uint64_t{intern_requests}, " requests, ",
      uint64_t{queries_interned}, " distinct queries, ",
      uint64_t{fingerprint_collisions}, " fp collisions\n",
      "cache: ", uint64_t{cache_evictions}, " evictions, ",
      uint64_t{cache_flushes}, " flushes\n",
      "budget: ", uint64_t{budget_exhaustions}, " exhaustions\n",
      "rewriting: ", uint64_t{rewrite_candidates}, " candidates, ",
      uint64_t{rewrite_verified_rejects}, " verified rejects\n",
      "parallel: ", uint64_t{parallel_sections}, " sections, ",
      uint64_t{parallel_tasks}, " tasks, ",
      uint64_t{parallel_wall_ns} / 1000000, " ms fan-out wall time");
}

}  // namespace cqac
