#include "src/engine/stats.h"

#include "src/base/strings.h"

namespace cqac {

// One field list drives Reset, Snapshot, the snapshot arithmetic, and the
// JSON rendering: a new counter is added here once and every accessor picks
// it up (the list compiles against both structs, so a name that exists in
// only one of them is rejected).
#define CQAC_ENGINE_STATS_FIELDS(X)                                         \
  X(containment_calls)                                                      \
  X(containment_cache_hits)                                                 \
  X(containment_cache_misses)                                               \
  X(implication_calls)                                                      \
  X(implication_cache_hits)                                                 \
  X(implication_cache_misses)                                               \
  X(disjunction_implications)                                               \
  X(hom_enumerations)                                                       \
  X(homomorphisms_found)                                                    \
  X(intern_requests)                                                        \
  X(queries_interned)                                                       \
  X(fingerprint_collisions)                                                 \
  X(cache_evictions)                                                        \
  X(cache_flushes)                                                          \
  X(budget_exhaustions)                                                     \
  X(eval_batches)                                                           \
  X(eval_smallint_fallbacks)                                                \
  X(plan_decisions)                                                         \
  X(plan_join_reorders)                                                     \
  X(plan_unions_pruned)                                                     \
  X(plan_retunes)                                                           \
  X(rewrite_candidates)                                                     \
  X(rewrite_verified_rejects)                                               \
  X(parallel_sections)                                                      \
  X(parallel_tasks)                                                         \
  X(parallel_wall_ns)                                                       \
  X(ivm_applies)                                                            \
  X(ivm_incremental_applies)                                                \
  X(ivm_rebuild_fallbacks)                                                  \
  X(ivm_base_delta_tuples)                                                  \
  X(ivm_view_delta_tuples)                                                  \
  X(ivm_overdeletions)                                                      \
  X(ivm_rederivations)                                                      \
  X(audit_obligations)                                                      \
  X(audit_failures)                                                         \
  X(audit_unfold_disjuncts)                                                 \
  X(audit_replayed_tuples)                                                  \
  X(audit_wall_ns)                                                          \
  X(serve_requests)                                                         \
  X(serve_overload_rejections)                                              \
  X(serve_queue_peak)                                                       \
  X(store_records_appended)                                                 \
  X(store_bytes_logged)                                                     \
  X(store_fsyncs)                                                           \
  X(store_snapshots_written)                                                \
  X(store_recovery_replayed_records)                                        \
  X(store_recovery_sessions)

StatsSnapshot StatsSnapshot::operator-(const StatsSnapshot& o) const {
  StatsSnapshot d;
#define CQAC_STATS_SUB(f) d.f = f - o.f;
  CQAC_ENGINE_STATS_FIELDS(CQAC_STATS_SUB)
#undef CQAC_STATS_SUB
  return d;
}

StatsSnapshot& StatsSnapshot::operator+=(const StatsSnapshot& o) {
#define CQAC_STATS_ADD(f) f += o.f;
  CQAC_ENGINE_STATS_FIELDS(CQAC_STATS_ADD)
#undef CQAC_STATS_ADD
  return *this;
}

double StatsSnapshot::ContainmentHitRate() const {
  uint64_t looked = containment_cache_hits + containment_cache_misses;
  if (looked == 0) return 0.0;
  return static_cast<double>(containment_cache_hits) /
         static_cast<double>(looked);
}

std::string StatsSnapshot::ToJson() const {
  std::string out = "{";
  bool first = true;
#define CQAC_STATS_JSON(f)                            \
  out += StrCat(first ? "" : ",", "\"", #f, "\":", f); \
  first = false;
  CQAC_ENGINE_STATS_FIELDS(CQAC_STATS_JSON)
#undef CQAC_STATS_JSON
  out += "}";
  return out;
}

void EngineStats::Reset() {
#define CQAC_STATS_RESET(f) f.Reset();
  CQAC_ENGINE_STATS_FIELDS(CQAC_STATS_RESET)
#undef CQAC_STATS_RESET
}

StatsSnapshot EngineStats::Snapshot() const {
  StatsSnapshot s;
#define CQAC_STATS_SNAP(f) s.f = f;
  CQAC_ENGINE_STATS_FIELDS(CQAC_STATS_SNAP)
#undef CQAC_STATS_SNAP
  return s;
}

double EngineStats::ContainmentHitRate() const {
  uint64_t looked = containment_cache_hits + containment_cache_misses;
  if (looked == 0) return 0.0;
  return static_cast<double>(containment_cache_hits) /
         static_cast<double>(looked);
}

std::string EngineStats::ToString() const {
  return StrCat(
      "containment: ", uint64_t{containment_calls}, " calls, ",
      uint64_t{containment_cache_hits}, " cache hits, ",
      uint64_t{containment_cache_misses}, " misses (hit rate ",
      static_cast<int>(ContainmentHitRate() * 100), "%)\n",
      "implication: ", uint64_t{implication_calls}, " conjunction calls (",
      uint64_t{implication_cache_hits}, " hits, ",
      uint64_t{implication_cache_misses}, " misses), ",
      uint64_t{disjunction_implications}, " disjunction calls\n",
      "homomorphism: ", uint64_t{hom_enumerations}, " enumerations, ",
      uint64_t{homomorphisms_found}, " mappings found\n",
      "interner: ", uint64_t{intern_requests}, " requests, ",
      uint64_t{queries_interned}, " distinct queries, ",
      uint64_t{fingerprint_collisions}, " fp collisions\n",
      "cache: ", uint64_t{cache_evictions}, " evictions, ",
      uint64_t{cache_flushes}, " flushes\n",
      "budget: ", uint64_t{budget_exhaustions}, " exhaustions\n",
      "eval: ", uint64_t{eval_batches}, " batches, ",
      uint64_t{eval_smallint_fallbacks}, " small-int fallbacks\n",
      "plan: ", uint64_t{plan_decisions}, " decisions, ",
      uint64_t{plan_join_reorders}, " join reorders, ",
      uint64_t{plan_unions_pruned}, " union disjuncts pruned, ",
      uint64_t{plan_retunes}, " retunes\n",
      "rewriting: ", uint64_t{rewrite_candidates}, " candidates, ",
      uint64_t{rewrite_verified_rejects}, " verified rejects\n",
      "parallel: ", uint64_t{parallel_sections}, " sections, ",
      uint64_t{parallel_tasks}, " tasks, ",
      uint64_t{parallel_wall_ns} / 1000000, " ms fan-out wall time\n",
      "ivm: ", uint64_t{ivm_applies}, " applies (",
      uint64_t{ivm_incremental_applies}, " incremental, ",
      uint64_t{ivm_rebuild_fallbacks}, " rebuilds), ",
      uint64_t{ivm_base_delta_tuples}, " base delta tuples, ",
      uint64_t{ivm_view_delta_tuples}, " view delta tuples, ",
      uint64_t{ivm_overdeletions}, " overdeletions, ",
      uint64_t{ivm_rederivations}, " rederivations\n",
      "audit: ", uint64_t{audit_obligations}, " obligations, ",
      uint64_t{audit_failures}, " failures, ",
      uint64_t{audit_unfold_disjuncts}, " unfold disjuncts, ",
      uint64_t{audit_replayed_tuples}, " replayed tuples, ",
      uint64_t{audit_wall_ns} / 1000000, " ms audit wall time\n",
      "serve: ", uint64_t{serve_requests}, " requests, ",
      uint64_t{serve_overload_rejections}, " overload rejections, ",
      uint64_t{serve_queue_peak}, " queue-depth peak\n",
      "store: ", uint64_t{store_records_appended}, " records appended, ",
      uint64_t{store_bytes_logged}, " bytes logged, ",
      uint64_t{store_fsyncs}, " fsyncs, ",
      uint64_t{store_snapshots_written}, " snapshots, ",
      uint64_t{store_recovery_replayed_records}, " records replayed, ",
      uint64_t{store_recovery_sessions}, " sessions recovered");
}

}  // namespace cqac
