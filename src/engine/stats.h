// EngineStats: the single counter block for every expensive decision the
// engine makes. One instance lives in each EngineContext; all layers
// (homomorphism search, containment, implication, rewriting) increment it,
// so one object answers "what did this workload cost and what did the cache
// save" — surfaced by the shell's `stats` command and the benches.
#ifndef CQAC_ENGINE_STATS_H_
#define CQAC_ENGINE_STATS_H_

#include <cstdint>
#include <string>

namespace cqac {

struct EngineStats {
  // Containment layer.
  uint64_t containment_calls = 0;
  uint64_t containment_cache_hits = 0;
  uint64_t containment_cache_misses = 0;

  // Constraint-implication layer.
  uint64_t implication_calls = 0;
  uint64_t implication_cache_hits = 0;
  uint64_t implication_cache_misses = 0;
  uint64_t disjunction_implications = 0;

  // Homomorphism enumeration.
  uint64_t hom_enumerations = 0;
  uint64_t homomorphisms_found = 0;

  // Canonicalization / interning.
  uint64_t intern_requests = 0;
  uint64_t queries_interned = 0;  // distinct canonical forms seen
  uint64_t fingerprint_collisions = 0;

  // Cache maintenance.
  uint64_t cache_evictions = 0;
  uint64_t cache_flushes = 0;

  // Budget enforcement.
  uint64_t budget_exhaustions = 0;

  // Rewriting layer.
  uint64_t rewrite_candidates = 0;
  uint64_t rewrite_verified_rejects = 0;

  void Reset() { *this = EngineStats{}; }

  /// Fraction of containment calls answered from the cache (0 when none).
  double ContainmentHitRate() const;

  /// Multi-line human-readable rendering (the shell's `stats` output).
  std::string ToString() const;
};

}  // namespace cqac

#endif  // CQAC_ENGINE_STATS_H_
