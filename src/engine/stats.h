// EngineStats: the single counter block for every expensive decision the
// engine makes. One instance lives in each EngineContext; all layers
// (homomorphism search, containment, implication, rewriting) increment it,
// so one object answers "what did this workload cost and what did the cache
// save" — surfaced by the shell's `stats` command and the benches.
//
// Every counter is a relaxed atomic so a context shared across TaskPool
// workers never loses an update. Counts are exact; only the *interleaving*
// of increments differs between thread counts (the totals of a fixed
// workload do not, except that cancelled-and-repaired parallel items may
// charge their probe work twice — see docs/engine.md).
#ifndef CQAC_ENGINE_STATS_H_
#define CQAC_ENGINE_STATS_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace cqac {

/// A relaxed atomic counter with plain-uint64_t ergonomics (`++`, `+=`,
/// implicit read). Relaxed is enough: counters never order other memory.
class StatCounter {
 public:
  StatCounter() = default;
  StatCounter(const StatCounter&) = delete;
  StatCounter& operator=(const StatCounter&) = delete;

  uint64_t operator++() { return Add(1) + 1; }    // pre-increment
  uint64_t operator++(int) { return Add(1); }     // post-increment
  StatCounter& operator+=(uint64_t d) {
    Add(d);
    return *this;
  }
  operator uint64_t() const { return value_.load(std::memory_order_relaxed); }

  /// Raises the counter to `v` if it is currently lower (high-water marks,
  /// e.g. the serve queue-depth peak). Relaxed CAS loop; monotone like
  /// every other counter, so snapshot deltas never underflow.
  void MaxWith(uint64_t v) {
    uint64_t cur = value_.load(std::memory_order_relaxed);
    while (cur < v &&
           !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  uint64_t Add(uint64_t d) {
    return value_.fetch_add(d, std::memory_order_relaxed);
  }
  std::atomic<uint64_t> value_{0};
};

/// A plain, copyable point-in-time copy of every EngineStats counter.
/// Snapshots support subtraction, so a caller that brackets a unit of work
/// with two snapshots gets the exact counter deltas attributable to it —
/// the serve layer uses this to account per-session engine work against
/// the one shared context (src/serve/session.h).
struct StatsSnapshot {
  uint64_t containment_calls = 0;
  uint64_t containment_cache_hits = 0;
  uint64_t containment_cache_misses = 0;
  uint64_t implication_calls = 0;
  uint64_t implication_cache_hits = 0;
  uint64_t implication_cache_misses = 0;
  uint64_t disjunction_implications = 0;
  uint64_t hom_enumerations = 0;
  uint64_t homomorphisms_found = 0;
  uint64_t intern_requests = 0;
  uint64_t queries_interned = 0;
  uint64_t fingerprint_collisions = 0;
  uint64_t cache_evictions = 0;
  uint64_t cache_flushes = 0;
  uint64_t budget_exhaustions = 0;
  uint64_t eval_batches = 0;
  uint64_t eval_smallint_fallbacks = 0;
  uint64_t plan_decisions = 0;
  uint64_t plan_join_reorders = 0;
  uint64_t plan_unions_pruned = 0;
  uint64_t plan_retunes = 0;
  uint64_t rewrite_candidates = 0;
  uint64_t rewrite_verified_rejects = 0;
  uint64_t parallel_sections = 0;
  uint64_t parallel_tasks = 0;
  uint64_t parallel_wall_ns = 0;
  uint64_t ivm_applies = 0;
  uint64_t ivm_incremental_applies = 0;
  uint64_t ivm_rebuild_fallbacks = 0;
  uint64_t ivm_base_delta_tuples = 0;
  uint64_t ivm_view_delta_tuples = 0;
  uint64_t ivm_overdeletions = 0;
  uint64_t ivm_rederivations = 0;
  uint64_t audit_obligations = 0;
  uint64_t audit_failures = 0;
  uint64_t audit_unfold_disjuncts = 0;
  uint64_t audit_replayed_tuples = 0;
  uint64_t audit_wall_ns = 0;
  uint64_t serve_requests = 0;
  uint64_t serve_overload_rejections = 0;
  uint64_t serve_queue_peak = 0;
  uint64_t store_records_appended = 0;
  uint64_t store_bytes_logged = 0;
  uint64_t store_fsyncs = 0;
  uint64_t store_snapshots_written = 0;
  uint64_t store_recovery_replayed_records = 0;
  uint64_t store_recovery_sessions = 0;

  /// Counter-wise difference (`after - before`). Counters only grow, so a
  /// later-minus-earlier snapshot of the same stats block never underflows.
  StatsSnapshot operator-(const StatsSnapshot& o) const;

  /// Counter-wise accumulation (per-session running totals).
  StatsSnapshot& operator+=(const StatsSnapshot& o);

  /// Fraction of containment lookups answered from the cache (0 when none).
  double ContainmentHitRate() const;

  /// Renders the snapshot as one flat JSON object with snake_case keys
  /// matching the field names.
  std::string ToJson() const;
};

struct EngineStats {
  // Containment layer.
  StatCounter containment_calls;
  StatCounter containment_cache_hits;
  StatCounter containment_cache_misses;

  // Constraint-implication layer.
  StatCounter implication_calls;
  StatCounter implication_cache_hits;
  StatCounter implication_cache_misses;
  StatCounter disjunction_implications;

  // Homomorphism enumeration.
  StatCounter hom_enumerations;
  StatCounter homomorphisms_found;

  // Canonicalization / interning.
  StatCounter intern_requests;
  StatCounter queries_interned;  // distinct canonical forms seen
  StatCounter fingerprint_collisions;

  // Cache maintenance.
  StatCounter cache_evictions;
  StatCounter cache_flushes;

  // Budget enforcement.
  StatCounter budget_exhaustions;

  // Columnar join evaluation (src/eval/batch.h).
  StatCounter eval_batches;              // non-empty batches emitted
  StatCounter eval_smallint_fallbacks;   // column promotions off the i64 path

  // Cost-based planner (src/plan).
  StatCounter plan_decisions;      // cost comparisons made
  StatCounter plan_join_reorders;  // evaluations that left syntactic order
  StatCounter plan_unions_pruned;  // union disjuncts pruned before eval
  StatCounter plan_retunes;        // adaptive-threshold re-estimations

  // Rewriting layer.
  StatCounter rewrite_candidates;
  StatCounter rewrite_verified_rejects;

  // Parallel sections (TaskPool fan-outs that actually ran concurrently).
  StatCounter parallel_sections;
  StatCounter parallel_tasks;
  StatCounter parallel_wall_ns;  // wall-clock summed over sections

  // Incremental view maintenance (src/ivm).
  StatCounter ivm_applies;              // delta batches applied
  StatCounter ivm_incremental_applies;  // ... maintained incrementally
  StatCounter ivm_rebuild_fallbacks;    // ... that fell back to rebuild
  StatCounter ivm_base_delta_tuples;    // base tuples inserted + retracted
  StatCounter ivm_view_delta_tuples;    // view tuples added + removed
  StatCounter ivm_overdeletions;        // DRed tuples speculatively deleted
  StatCounter ivm_rederivations;        // DRed tuples rescued by re-derive

  // Independent audit pass (src/analysis/audit).
  StatCounter audit_obligations;       // proof obligations checked
  StatCounter audit_failures;          // ... that were rejected
  StatCounter audit_unfold_disjuncts;  // MCR unfolding disjuncts certified
  StatCounter audit_replayed_tuples;   // IVM tuples replayed vs the oracle
  StatCounter audit_wall_ns;           // wall-clock spent auditing

  // Serve transport (src/serve/server.cc; always zero outside a server —
  // the shell's `stats` prints them so serve and shell read identically).
  StatCounter serve_requests;             // requests this shard executed
  StatCounter serve_overload_rejections;  // lines bounced off a full queue
  StatCounter serve_queue_peak;           // request-queue high-water mark

  // Durable store (src/store; zero without --data-dir).
  StatCounter store_records_appended;  // commit records appended to the WAL
  StatCounter store_bytes_logged;      // framed bytes written to the WAL
  StatCounter store_fsyncs;            // fsyncs issued by the policy
  StatCounter store_snapshots_written; // compact snapshots written
  StatCounter store_recovery_replayed_records;  // log-tail records replayed
  StatCounter store_recovery_sessions;          // sessions recovered

  void Reset();

  /// Copies every counter into a plain snapshot. Individual loads are
  /// relaxed; under concurrent mutation the snapshot is per-counter exact
  /// but not a cross-counter atomic cut (fine for reporting).
  StatsSnapshot Snapshot() const;

  /// Fraction of containment calls answered from the cache (0 when none).
  double ContainmentHitRate() const;

  /// Multi-line human-readable rendering (the shell's `stats` output).
  std::string ToString() const;
};

}  // namespace cqac

#endif  // CQAC_ENGINE_STATS_H_
