#include "src/eval/batch.h"

#include "src/eval/evaluate.h"

namespace cqac {

void Column::Reserve(size_t n) {
  if (small_int_)
    ints_.reserve(n);
  else
    vals_.reserve(n);
}

void Column::Promote() {
  vals_.reserve(ints_.size());
  for (int64_t v : ints_) vals_.emplace_back(Rational(v));
  ints_.clear();
  ints_.shrink_to_fit();
  small_int_ = false;
}

void Column::Append(const Value& v) {
  if (small_int_) {
    if (v.is_number() && v.number().is_integer()) {
      ints_.push_back(v.number().num());
      return;
    }
    // A non-integral rational is a genuine exact-arithmetic fallback, as is
    // any value arriving after integers already landed on the fast path. A
    // symbol opening an empty column just types it general.
    if (v.is_number() || !ints_.empty()) ++promotions_;
    Promote();
  }
  vals_.push_back(v);
}

void Column::AppendGather(const Column& src, const SelVector& sel) {
  if (small_int_ && !src.small_int_) Promote();
  if (small_int_) {
    ints_.reserve(ints_.size() + sel.size());
    for (uint32_t i : sel) ints_.push_back(src.ints_[i]);
  } else if (src.small_int_) {
    vals_.reserve(vals_.size() + sel.size());
    for (uint32_t i : sel) vals_.emplace_back(Rational(src.ints_[i]));
  } else {
    vals_.reserve(vals_.size() + sel.size());
    for (uint32_t i : sel) vals_.push_back(src.vals_[i]);
  }
}

void Column::GatherInPlace(const SelVector& sel) {
  if (small_int_) {
    for (size_t j = 0; j < sel.size(); ++j) ints_[j] = ints_[sel[j]];
    ints_.resize(sel.size());
  } else {
    for (size_t j = 0; j < sel.size(); ++j)
      if (j != sel[j]) vals_[j] = std::move(vals_[sel[j]]);
    vals_.erase(vals_.begin() + static_cast<ptrdiff_t>(sel.size()),
                vals_.end());
  }
}

void Batch::Filter(const SelVector& sel) {
  if (sel.size() == rows) return;
  for (Column& c : cols) c.GatherInPlace(sel);
  rows = sel.size();
}

uint64_t Batch::TotalPromotions() const {
  uint64_t total = 0;
  for (const Column& c : cols) total += c.promotions();
  return total;
}

namespace {

/// Compacts *sel in place, keeping index i iff pred(i). The loop is
/// branch-free: the slot is written unconditionally and the write cursor
/// advances by the predicate's value.
template <typename Pred>
void FilterSel(SelVector* sel, Pred pred) {
  SelVector& s = *sel;
  size_t out = 0;
  for (size_t j = 0; j < s.size(); ++j) {
    const uint32_t i = s[j];
    s[out] = i;
    out += static_cast<size_t>(pred(i));
  }
  s.resize(out);
}

/// Exact `a op p/q` on the fast path: cross-multiplied in 128-bit
/// intermediates (den > 0 by Rational's invariant), so no overflow for any
/// representable operands.
inline bool IntVsRational(int64_t a, CompOp op, int64_t p, int64_t q) {
  const __int128 lhs = static_cast<__int128>(a) * q;
  if (op == CompOp::kLt) return lhs < p;
  if (op == CompOp::kLe) return lhs <= p;
  return lhs == p;
}

}  // namespace

void FilterColumnColumn(const Column& lhs, CompOp op, const Column& rhs,
                        SelVector* sel) {
  if (lhs.small_int() && rhs.small_int()) {
    switch (op) {
      case CompOp::kLt:
        FilterSel(sel, [&](uint32_t i) {
          return lhs.SmallIntAt(i) < rhs.SmallIntAt(i);
        });
        return;
      case CompOp::kLe:
        FilterSel(sel, [&](uint32_t i) {
          return lhs.SmallIntAt(i) <= rhs.SmallIntAt(i);
        });
        return;
      case CompOp::kEq:
        FilterSel(sel, [&](uint32_t i) {
          return lhs.SmallIntAt(i) == rhs.SmallIntAt(i);
        });
        return;
    }
  }
  FilterSel(sel, [&](uint32_t i) {
    return EvaluateGroundComparison(lhs.At(i), op, rhs.At(i));
  });
}

void FilterColumnConst(const Column& lhs, CompOp op, const Value& c,
                       SelVector* sel) {
  if (lhs.small_int()) {
    if (!c.is_number()) {
      // A number never orders against (or equals) a symbol.
      sel->clear();
      return;
    }
    const int64_t p = c.number().num();
    const int64_t q = c.number().den();
    if (q == 1) {
      switch (op) {
        case CompOp::kLt:
          FilterSel(sel, [&](uint32_t i) { return lhs.SmallIntAt(i) < p; });
          return;
        case CompOp::kLe:
          FilterSel(sel, [&](uint32_t i) { return lhs.SmallIntAt(i) <= p; });
          return;
        case CompOp::kEq:
          FilterSel(sel, [&](uint32_t i) { return lhs.SmallIntAt(i) == p; });
          return;
      }
    }
    FilterSel(sel,
              [&](uint32_t i) { return IntVsRational(lhs.SmallIntAt(i), op, p, q); });
    return;
  }
  FilterSel(sel, [&](uint32_t i) {
    return EvaluateGroundComparison(lhs.At(i), op, c);
  });
}

void FilterConstColumn(const Value& c, CompOp op, const Column& rhs,
                       SelVector* sel) {
  if (rhs.small_int()) {
    if (!c.is_number()) {
      sel->clear();
      return;
    }
    const int64_t p = c.number().num();
    const int64_t q = c.number().den();
    if (q == 1) {
      switch (op) {
        case CompOp::kLt:
          FilterSel(sel, [&](uint32_t i) { return p < rhs.SmallIntAt(i); });
          return;
        case CompOp::kLe:
          FilterSel(sel, [&](uint32_t i) { return p <= rhs.SmallIntAt(i); });
          return;
        case CompOp::kEq:
          FilterSel(sel, [&](uint32_t i) { return p == rhs.SmallIntAt(i); });
          return;
      }
    }
    // p/q op b  <=>  p op b*q.
    FilterSel(sel, [&](uint32_t i) {
      const __int128 scaled = static_cast<__int128>(rhs.SmallIntAt(i)) * q;
      if (op == CompOp::kLt) return static_cast<__int128>(p) < scaled;
      if (op == CompOp::kLe) return static_cast<__int128>(p) <= scaled;
      return static_cast<__int128>(p) == scaled;
    });
    return;
  }
  FilterSel(sel, [&](uint32_t i) {
    return EvaluateGroundComparison(c, op, rhs.At(i));
  });
}

}  // namespace cqac
