// Columnar batches for the vectorized join evaluator (docs/eval.md).
//
// A Batch is a set of rows stored column-major. Every column starts on the
// small-integer fast path: while all of its values are integral Rationals,
// they live in a raw int64_t vector and comparison filters run branch-free
// on machine words. The first non-integral rational (or a symbol arriving
// after integers) promotes the column to exact Value storage — the engine
// counts those promotions as `eval_smallint_fallbacks`. Columns whose first
// value is a symbol are typed general from the start (symbols are not a
// fallback, they are simply never on the numeric fast path).
//
// Comparison filters consume and produce selection vectors (row-index
// lists), so a chain of AC predicates narrows one shared selection instead
// of copying rows per predicate. All numeric comparisons are exact: the
// small-int-vs-rational case cross-multiplies in 128-bit intermediates, so
// the fast path never overflows into a wrong answer.
#ifndef CQAC_EVAL_BATCH_H_
#define CQAC_EVAL_BATCH_H_

#include <cstdint>
#include <vector>

#include "src/ir/atom.h"
#include "src/ir/term.h"

namespace cqac {

/// Indices of the rows a filter kept, in ascending order.
using SelVector = std::vector<uint32_t>;

/// One column of a Batch: tagged int64 fast path, exact Value fallback.
class Column {
 public:
  Column() = default;

  bool small_int() const { return small_int_; }
  size_t size() const { return small_int_ ? ints_.size() : vals_.size(); }

  /// Promotions from the small-int path to Value storage over this column's
  /// lifetime (summed into the eval_smallint_fallbacks stat counter).
  uint64_t promotions() const { return promotions_; }

  void Reserve(size_t n);

  /// Appends `v`, promoting to general storage when it leaves the
  /// small-int domain.
  void Append(const Value& v);

  /// Fast-path accessor; valid only while small_int().
  int64_t SmallIntAt(size_t i) const { return ints_[i]; }

  /// Row i as a Value (materialized from the int on the fast path).
  Value At(size_t i) const {
    return small_int_ ? Value(Rational(ints_[i])) : vals_[i];
  }

  /// True iff row i equals `v` — no Value is materialized on the fast path.
  bool EqualsAt(size_t i, const Value& v) const {
    if (small_int_)
      return v.is_number() && v.number().is_integer() &&
             v.number().num() == ints_[i];
    return vals_[i] == v;
  }

  /// Appends rows sel[0..] of `src` to this column (adopting src's storage
  /// kind first, so gathering never counts as a promotion).
  void AppendGather(const Column& src, const SelVector& sel);

  /// Keeps exactly the rows named by `sel`, in order.
  void GatherInPlace(const SelVector& sel);

 private:
  void Promote();

  std::vector<int64_t> ints_;
  std::vector<Value> vals_;
  bool small_int_ = true;
  uint64_t promotions_ = 0;
};

/// A column-major batch of rows. The meaning of each column (which query
/// variable it binds) is carried separately by the join's var->column map.
struct Batch {
  std::vector<Column> cols;
  size_t rows = 0;

  /// Keeps exactly the rows named by `sel` in every column.
  void Filter(const SelVector& sel);

  /// Sum of per-column small-int promotions.
  uint64_t TotalPromotions() const;
};

// --- Vectorized comparison filters -----------------------------------------
//
// Each filter narrows *sel in place: a row index survives iff the predicate
// holds on that row. When both operands are on the small-int path the inner
// loop is branch-free (write index, advance by predicate); otherwise the
// filter falls back to exact per-row Value comparison with the same
// semantics as EvaluateGroundComparison (ordered comparisons involving a
// symbol are false; equality is exact).

/// Keeps rows where `lhs[i] op rhs[i]`.
void FilterColumnColumn(const Column& lhs, CompOp op, const Column& rhs,
                        SelVector* sel);

/// Keeps rows where `lhs[i] op c`.
void FilterColumnConst(const Column& lhs, CompOp op, const Value& c,
                       SelVector* sel);

/// Keeps rows where `c op rhs[i]`.
void FilterConstColumn(const Value& c, CompOp op, const Column& rhs,
                       SelVector* sel);

}  // namespace cqac

#endif  // CQAC_EVAL_BATCH_H_
