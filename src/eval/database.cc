#include "src/eval/database.h"

#include "src/base/strings.h"
#include "src/ir/parser.h"

namespace cqac {

const Relation Database::kEmpty;

Status Database::Insert(const std::string& predicate, Tuple tuple) {
  auto it = relations_.find(predicate);
  if (it != relations_.end() && !it->second.empty() &&
      it->second.begin()->size() != tuple.size())
    return Status::InvalidArgument(
        StrCat("arity mismatch inserting into '", predicate, "': got ",
               tuple.size(), ", relation has ", it->second.begin()->size()));
  stats_.OnInsert(predicate, tuple);
  relations_[predicate].insert(std::move(tuple));
  return Status::OK();
}

Status Database::InsertRelation(const std::string& predicate, Relation rel) {
  if (rel.empty()) return Status::OK();
  const size_t arity = rel.begin()->size();
  for (const Tuple& t : rel)
    if (t.size() != arity)
      return Status::InvalidArgument(
          StrCat("arity mismatch inserting into '", predicate, "': got ",
                 t.size(), ", relation has ", arity));
  auto it = relations_.find(predicate);
  if (it != relations_.end() && !it->second.empty() &&
      it->second.begin()->size() != arity)
    return Status::InvalidArgument(
        StrCat("arity mismatch inserting into '", predicate, "': got ", arity,
               ", relation has ", it->second.begin()->size()));
  // Observe before the set is moved in wholesale; re-observing tuples the
  // merge later discards as duplicates is a no-op on the sketches.
  for (const Tuple& t : rel) stats_.OnInsert(predicate, t);
  if (it == relations_.end()) {
    relations_.emplace(predicate, std::move(rel));
  } else if (it->second.empty()) {
    it->second = std::move(rel);
  } else {
    it->second.merge(std::move(rel));
  }
  return Status::OK();
}

bool Database::Remove(const std::string& predicate, const Tuple& tuple) {
  auto it = relations_.find(predicate);
  if (it == relations_.end()) return false;
  return it->second.erase(tuple) > 0;
}

const Relation& Database::Get(const std::string& predicate) const {
  auto it = relations_.find(predicate);
  return it == relations_.end() ? kEmpty : it->second;
}

size_t Database::TotalTuples() const {
  size_t n = 0;
  for (const auto& [name, rel] : relations_) n += rel.size();
  return n;
}

plan::StatsView Database::PlanStats() const {
  plan::StatsView view;
  for (const auto& [name, rel] : relations_) {
    plan::StatsView::RelStat stat;
    stat.rows = rel.size();
    const size_t arity = rel.empty() ? 0 : rel.begin()->size();
    stat.distinct.reserve(arity);
    for (size_t c = 0; c < arity; ++c)
      stat.distinct.push_back(stats_.DistinctEstimate(name, c));
    view.Set(name, std::move(stat));
  }
  return view;
}

Status Database::Merge(const Database& other) {
  for (const auto& [name, rel] : other.relations_)
    for (const Tuple& t : rel) CQAC_RETURN_IF_ERROR(Insert(name, t));
  return Status::OK();
}

Result<Database> Database::FromFacts(const std::string& text) {
  CQAC_ASSIGN_OR_RETURN(std::vector<Query> facts, ParseRules(text));
  Database db;
  for (const Query& f : facts) {
    if (!f.body().empty() || !f.comparisons().empty())
      return Status::InvalidArgument(
          StrCat("'", f.ToString(), "' is a rule, not a fact"));
    Tuple t;
    for (const Term& arg : f.head().args) {
      if (arg.is_var())
        return Status::InvalidArgument(
            StrCat("fact '", f.head().predicate, "' contains a variable"));
      t.push_back(arg.value());
    }
    CQAC_RETURN_IF_ERROR(db.Insert(f.head().predicate, std::move(t)));
  }
  return db;
}

std::string TupleToString(const Tuple& t) {
  std::vector<std::string> parts;
  parts.reserve(t.size());
  for (const Value& v : t) parts.push_back(v.ToString());
  return "(" + Join(parts, ", ") + ")";
}

std::string Database::ToString() const {
  std::vector<std::string> lines;
  for (const auto& [name, rel] : relations_)
    for (const Tuple& t : rel) lines.push_back(name + TupleToString(t) + ".");
  return Join(lines, "\n");
}

}  // namespace cqac
