// The database substrate: named relations of constant tuples.
//
// Used to (a) materialize views, (b) evaluate queries / rewritings / Datalog
// programs, and (c) empirically validate containment results produced by the
// symbolic algorithms (every contained rewriting must satisfy
// eval(P, V(D)) subset-of eval(Q, D) on every database D).
#ifndef CQAC_EVAL_DATABASE_H_
#define CQAC_EVAL_DATABASE_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/ir/term.h"
#include "src/plan/stats.h"

namespace cqac {

/// A database tuple of constants.
using Tuple = std::vector<Value>;

/// A relation instance: a set of same-arity tuples (set semantics, as in the
/// paper).
using Relation = std::set<Tuple>;

/// A database instance: predicate name -> relation.
class Database {
 public:
  Database() = default;

  /// Inserts `tuple` into relation `predicate`; enforces consistent arity.
  Status Insert(const std::string& predicate, Tuple tuple);

  /// Bulk Insert: merges the whole of `rel` into relation `predicate` with
  /// the same arity enforcement, moving the set in wholesale when the
  /// relation does not exist yet (the MaterializeViews fast path — no
  /// per-tuple copy or re-balancing). An empty `rel` is a no-op.
  Status InsertRelation(const std::string& predicate, Relation rel);

  /// Removes `tuple` from relation `predicate`. Returns true when the tuple
  /// was present. An emptied relation keeps its (empty) entry so arity
  /// bookkeeping and iteration order stay stable.
  bool Remove(const std::string& predicate, const Tuple& tuple);

  /// True iff `tuple` is present in relation `predicate`.
  bool Contains(const std::string& predicate, const Tuple& tuple) const {
    return Get(predicate).count(tuple) > 0;
  }

  /// Returns the relation for `predicate` (empty relation if absent).
  const Relation& Get(const std::string& predicate) const;

  bool Has(const std::string& predicate) const {
    return relations_.count(predicate) > 0;
  }

  const std::map<std::string, Relation>& relations() const {
    return relations_;
  }

  size_t TotalTuples() const;

  /// Per-column distinct-count sketches, maintained O(1) amortized on the
  /// insert paths for the cost-based planner. Insert-monotone: retractions
  /// leave them as upper bounds on the live distinct counts (src/plan).
  const plan::RelationStats& stats() const { return stats_; }

  /// Snapshots rows + distinct estimates for every relation into a
  /// deterministic StatsView (the shell `plan` / serve `plan` surface).
  plan::StatsView PlanStats() const;

  /// Replaces the planner sketches wholesale. Durability recovery
  /// (src/store) restores tuples via Insert — which rebuilds sketches from
  /// the live tuples only — then overwrites them with the recorded state,
  /// which still carries retracted tuples' observations.
  void RestoreStats(plan::RelationStats stats) { stats_ = std::move(stats); }

  /// Merges all tuples of `other` into this database.
  Status Merge(const Database& other);

  /// Parses newline/period-separated facts like `r(1, 2). s(2, red).`
  static Result<Database> FromFacts(const std::string& text);

  std::string ToString() const;

 private:
  std::map<std::string, Relation> relations_;
  plan::RelationStats stats_;
  static const Relation kEmpty;
};

/// Renders a tuple as "(a, b, c)".
std::string TupleToString(const Tuple& t);

}  // namespace cqac

#endif  // CQAC_EVAL_DATABASE_H_
