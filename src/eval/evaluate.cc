#include "src/eval/evaluate.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>

#include "src/base/strings.h"
#include "src/engine/parallel.h"
#include "src/plan/planner.h"

namespace cqac {

bool EvaluateGroundComparison(const Value& lhs, CompOp op, const Value& rhs) {
  if (op == CompOp::kEq) return lhs == rhs;
  if (!lhs.is_number() || !rhs.is_number()) return false;
  return op == CompOp::kLt ? lhs.number() < rhs.number()
                           : lhs.number() <= rhs.number();
}

namespace {

/// Packed single-column index over integral keys: tuple pointers grouped by
/// key in one contiguous array, located through an open-addressing table.
/// Building is two contiguous passes (collect + sort) with zero per-key
/// allocations — an order of magnitude fewer heap hits than a
/// map-of-vectors — and probing is one multiplicative hash plus a short
/// linear scan. Tuples whose key column is a symbol or a non-integral
/// rational can never equal an integral probe, so the index omits them.
class FlatIntIndex {
 public:
  void Build(const Relation& rel, size_t col) {
    std::vector<std::pair<int64_t, const Tuple*>> entries;
    entries.reserve(rel.size());
    for (const Tuple& t : rel)
      if (col < t.size() && t[col].is_number() && t[col].number().is_integer())
        entries.emplace_back(t[col].number().num(), &t);
    std::sort(entries.begin(), entries.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });

    slots_.reserve(entries.size());
    for (const auto& [k, t] : entries) slots_.push_back(t);
    for (size_t i = 0; i < entries.size();) {
      size_t j = i;
      while (j < entries.size() && entries[j].first == entries[i].first) ++j;
      groups_.push_back(Group{entries[i].first, static_cast<uint32_t>(i),
                              static_cast<uint32_t>(j - i)});
      i = j;
    }

    size_t cap = 2;
    while (cap < groups_.size() * 2) cap <<= 1;  // load factor <= 0.5
    mask_ = cap - 1;
    table_.assign(cap, -1);
    for (size_t g = 0; g < groups_.size(); ++g) {
      size_t i = Hash(groups_[g].key) & mask_;
      while (table_[i] != -1) i = (i + 1) & mask_;
      table_[i] = static_cast<int32_t>(g);
    }
  }

  /// Points *data at the tuples keyed `k` (*len of them; 0 on miss).
  void Probe(int64_t k, const Tuple* const** data, size_t* len) const {
    size_t i = Hash(k) & mask_;
    while (table_[i] != -1) {
      const Group& g = groups_[table_[i]];
      if (g.key == k) {
        *data = slots_.data() + g.start;
        *len = g.len;
        return;
      }
      i = (i + 1) & mask_;
    }
    *len = 0;
  }

 private:
  struct Group {
    int64_t key;
    uint32_t start;
    uint32_t len;
  };

  static uint64_t Hash(int64_t k) {
    uint64_t x = static_cast<uint64_t>(k) * 0x9E3779B97F4A7C15ull;
    return x ^ (x >> 29);
  }

  std::vector<Group> groups_;
  std::vector<int32_t> table_;
  std::vector<const Tuple*> slots_;
  size_t mask_ = 1;
};

/// Lazy single-column hash indexes over the relations of one join. Built on
/// first probe of a (atom, column) pair, amortized across the whole join —
/// this is what turns chain joins from quadratic scans into hash lookups.
class JoinIndexes {
 public:
  explicit JoinIndexes(const std::vector<const Relation*>& relations)
      : relations_(relations),
        per_atom_(relations.size()),
        int_per_atom_(relations.size()) {}

  const std::vector<const Tuple*>& Probe(size_t atom, size_t col,
                                         const Value& v) {
    auto& cols = per_atom_[atom];
    auto it = cols.find(col);
    if (it == cols.end()) {
      ColumnIndex index;
      for (const Tuple& t : *relations_[atom])
        if (col < t.size()) index[t[col]].push_back(&t);
      it = cols.emplace(col, std::move(index)).first;
    }
    auto hit = it->second.find(v);
    return hit == it->second.end() ? kEmpty : hit->second;
  }

  /// Probe for an integral key from a small-int batch column: no Value is
  /// materialized and the lookup goes through the packed FlatIntIndex.
  void ProbeInt(size_t atom, size_t col, int64_t v, const Tuple* const** data,
                size_t* len) {
    auto& cols = int_per_atom_[atom];
    auto it = cols.find(col);
    if (it == cols.end()) {
      it = cols.emplace(col, FlatIntIndex()).first;
      it->second.Build(*relations_[atom], col);
    }
    it->second.Probe(v, data, len);
  }

 private:
  using ColumnIndex =
      std::unordered_map<Value, std::vector<const Tuple*>>;
  static const std::vector<const Tuple*> kEmpty;

  const std::vector<const Relation*>& relations_;
  std::vector<std::unordered_map<size_t, ColumnIndex>> per_atom_;
  std::vector<std::unordered_map<size_t, FlatIntIndex>> int_per_atom_;
};

const std::vector<const Tuple*> JoinIndexes::kEmpty;

/// Rows per output batch before it flushes into the next atom. Large enough
/// to amortize per-batch planning and keep filter loops vectorizable, small
/// enough that a deep join never holds more than atoms × kBatchRows rows of
/// intermediate state.
constexpr size_t kBatchRows = 1024;

/// The batch-at-a-time join core behind JoinBodyBatches. One AtomPlan per
/// body atom, compiled once per call: which position to probe on, which
/// positions to check against constants / already-bound columns / duplicate
/// in-atom occurrences, which positions bind new columns, and which
/// comparisons become ground after this atom (they filter here, eagerly —
/// same pruning as the row engine's comparisons_hold after every atom).
/// Execution is segmented depth-first: each atom accumulates up to
/// kBatchRows matches, builds the extended output batch, vector-filters it
/// through this atom's comparisons, and recurses.
class BatchJoiner {
 public:
  BatchJoiner(const Query& q, const std::vector<const Relation*>& relations,
              FunctionRef<bool(const Batch&, const std::vector<int>&)> sink,
              FunctionRef<bool()> checkpoint, const JoinIndexSource* ext,
              EngineStats* stats)
      : q_(q),
        relations_(relations),
        sink_(sink),
        checkpoint_(checkpoint),
        ext_(ext),
        stats_(stats),
        indexes_(relations) {}

  /// Returns false iff the checkpoint aborted the join.
  bool Run() {
    if (Plan()) {
      Batch unit;
      unit.rows = 1;
      if (q_.body().empty()) {
        Emit(unit);
      } else {
        Process(0, unit);
      }
    }
    if (stats_ != nullptr) {
      stats_->eval_batches += batches_;
      stats_->eval_smallint_fallbacks += fallbacks_;
    }
    return !aborted_;
  }

 private:
  struct CompPlan {
    CompOp op;
    int lhs_col = -1;  // -1: lhs is the constant *lhs_const
    int rhs_col = -1;
    const Value* lhs_const = nullptr;
    const Value* rhs_const = nullptr;
  };

  struct AtomPlan {
    size_t arity = 0;
    int probe_pos = -1;  // -1: full scan of the relation
    int probe_col = -1;  // -1 with probe_pos >= 0: constant probe
    const Value* probe_const = nullptr;
    std::vector<std::pair<size_t, const Value*>> const_checks;
    std::vector<std::pair<size_t, int>> bound_checks;   // (pos, batch col)
    std::vector<std::pair<size_t, size_t>> dup_checks;  // (first pos, pos)
    std::vector<std::pair<size_t, int>> new_positions;  // (pos, var)
    size_t in_cols = 0;  // batch width entering this atom
    std::vector<CompPlan> comps;
  };

  /// Compiles the per-atom plans. Returns false when a constant-constant
  /// comparison is already false (the join has no results).
  bool Plan() {
    var_col_.assign(q_.num_vars(), -1);
    const auto& comps = q_.comparisons();
    std::vector<char> comp_done(comps.size(), 0);
    for (size_t ci = 0; ci < comps.size(); ++ci) {
      if (comps[ci].lhs.is_const() && comps[ci].rhs.is_const()) {
        comp_done[ci] = 1;
        if (!EvaluateGroundComparison(comps[ci].lhs.value(), comps[ci].op,
                                      comps[ci].rhs.value()))
          return false;
      }
    }

    int width = 0;
    plans_.resize(q_.body().size());
    for (size_t a = 0; a < q_.body().size(); ++a) {
      const Atom& atom = q_.body()[a];
      AtomPlan& p = plans_[a];
      p.arity = atom.args.size();
      p.in_cols = static_cast<size_t>(width);
      std::unordered_map<int, size_t> first_pos_of_new;
      for (size_t i = 0; i < atom.args.size(); ++i) {
        const Term& t = atom.args[i];
        if (t.is_const()) {
          if (p.probe_pos < 0) {
            p.probe_pos = static_cast<int>(i);
            p.probe_const = &t.value();
          } else {
            p.const_checks.emplace_back(i, &t.value());
          }
        } else if (var_col_[t.var()] >= 0) {
          // Bound by an earlier atom.
          if (p.probe_pos < 0) {
            p.probe_pos = static_cast<int>(i);
            p.probe_col = var_col_[t.var()];
          } else {
            p.bound_checks.emplace_back(i, var_col_[t.var()]);
          }
        } else if (auto it = first_pos_of_new.find(t.var());
                   it != first_pos_of_new.end()) {
          // Repeated new variable within this atom: equality of positions.
          p.dup_checks.emplace_back(it->second, i);
        } else {
          first_pos_of_new.emplace(t.var(), i);
          p.new_positions.emplace_back(i, t.var());
        }
      }
      for (const auto& [pos, var] : p.new_positions) var_col_[var] = width++;

      // Comparisons whose sides are all determined after this atom filter
      // here; ones with a never-bound side are skipped (treated true), same
      // as the row engine.
      for (size_t ci = 0; ci < comps.size(); ++ci) {
        if (comp_done[ci]) continue;
        const Comparison& c = comps[ci];
        const bool lhs_ready = c.lhs.is_const() || var_col_[c.lhs.var()] >= 0;
        const bool rhs_ready = c.rhs.is_const() || var_col_[c.rhs.var()] >= 0;
        if (!lhs_ready || !rhs_ready) continue;
        comp_done[ci] = 1;
        CompPlan cp;
        cp.op = c.op;
        if (c.lhs.is_const())
          cp.lhs_const = &c.lhs.value();
        else
          cp.lhs_col = var_col_[c.lhs.var()];
        if (c.rhs.is_const())
          cp.rhs_const = &c.rhs.value();
        else
          cp.rhs_col = var_col_[c.rhs.var()];
        p.comps.push_back(cp);
      }
    }
    return true;
  }

  void Process(size_t atom_idx, const Batch& in) {
    const AtomPlan& p = plans_[atom_idx];
    SelVector src_rows;
    std::vector<const Tuple*> matches;
    src_rows.reserve(kBatchRows);
    matches.reserve(kBatchRows);

    auto consider = [&](uint32_t row, const Tuple& t) {
      if ((++steps_ & 0xFFF) == 0 && !checkpoint_()) {
        aborted_ = true;
        return;
      }
      if (t.size() != p.arity) return;
      for (const auto& [pos, cv] : p.const_checks)
        if (!(t[pos] == *cv)) return;
      for (const auto& [pos, col] : p.bound_checks)
        if (!in.cols[col].EqualsAt(row, t[pos])) return;
      for (const auto& [p1, p2] : p.dup_checks)
        if (!(t[p1] == t[p2])) return;
      src_rows.push_back(row);
      matches.push_back(&t);
      if (src_rows.size() == kBatchRows) {
        Flush(atom_idx, in, src_rows, matches);
        src_rows.clear();
        matches.clear();
      }
    };

    // A constant probe hits the same tuple list for every input row.
    const std::vector<const Tuple*>* const_hits = nullptr;
    if (p.probe_pos >= 0 && p.probe_col < 0) {
      const size_t pos = static_cast<size_t>(p.probe_pos);
      const_hits =
          ext_ == nullptr ? nullptr : ext_->Probe(atom_idx, pos, *p.probe_const);
      if (const_hits == nullptr)
        const_hits = &indexes_.Probe(atom_idx, pos, *p.probe_const);
    }

    // `ext_maybe` clears as soon as one probe shows the source does not
    // cover this (atom, col) — coverage is per column, not per value, so
    // later rows go straight to the internal index (the int64-keyed one
    // when the probe column is on the small-int path).
    bool ext_maybe = ext_ != nullptr;
    for (uint32_t row = 0; row < in.rows; ++row) {
      if (stop_ || aborted_) return;
      if (p.probe_pos >= 0) {
        const Tuple* const* hit_data = nullptr;
        size_t hit_len = 0;
        if (const_hits != nullptr) {
          hit_data = const_hits->data();
          hit_len = const_hits->size();
        } else {
          const size_t pos = static_cast<size_t>(p.probe_pos);
          const Column& pcol = in.cols[p.probe_col];
          if (ext_maybe) {
            const Value v = pcol.At(row);
            const std::vector<const Tuple*>* hits =
                ext_->Probe(atom_idx, pos, v);
            if (hits != nullptr) {
              hit_data = hits->data();
              hit_len = hits->size();
            } else {
              ext_maybe = false;
              const std::vector<const Tuple*>& h =
                  indexes_.Probe(atom_idx, pos, v);
              hit_data = h.data();
              hit_len = h.size();
            }
          } else if (pcol.small_int()) {
            indexes_.ProbeInt(atom_idx, pos, pcol.SmallIntAt(row), &hit_data,
                              &hit_len);
          } else {
            const std::vector<const Tuple*>& h =
                indexes_.Probe(atom_idx, pos, pcol.At(row));
            hit_data = h.data();
            hit_len = h.size();
          }
        }
        // The index (caller-provided or internal) returns exact matches on
        // the probe position, so no equality recheck is planned for it.
        for (size_t h = 0; h < hit_len; ++h) {
          if (stop_ || aborted_) return;
          consider(row, *hit_data[h]);
        }
      } else {
        for (const Tuple& t : *relations_[atom_idx]) {
          if (stop_ || aborted_) return;
          consider(row, t);
        }
      }
    }
    if (!src_rows.empty()) Flush(atom_idx, in, src_rows, matches);
  }

  /// Builds the extended batch for the accumulated matches, filters it
  /// through this atom's comparisons, and feeds it to the next atom (or the
  /// sink after the last one).
  void Flush(size_t atom_idx, const Batch& in, const SelVector& src_rows,
             const std::vector<const Tuple*>& matches) {
    const AtomPlan& p = plans_[atom_idx];
    Batch out;
    out.cols.reserve(p.in_cols + p.new_positions.size());
    for (size_t c = 0; c < p.in_cols; ++c) {
      Column col;
      col.AppendGather(in.cols[c], src_rows);
      out.cols.push_back(std::move(col));
    }
    for (const auto& [pos, var] : p.new_positions) {
      Column col;
      col.Reserve(matches.size());
      for (const Tuple* t : matches) col.Append((*t)[pos]);
      out.cols.push_back(std::move(col));
    }
    out.rows = src_rows.size();
    fallbacks_ += out.TotalPromotions();

    if (!p.comps.empty()) {
      SelVector sel(out.rows);
      std::iota(sel.begin(), sel.end(), 0);
      for (const CompPlan& cp : p.comps) {
        if (sel.empty()) break;
        if (cp.lhs_col >= 0 && cp.rhs_col >= 0) {
          FilterColumnColumn(out.cols[cp.lhs_col], cp.op, out.cols[cp.rhs_col],
                             &sel);
        } else if (cp.lhs_col >= 0) {
          FilterColumnConst(out.cols[cp.lhs_col], cp.op, *cp.rhs_const, &sel);
        } else {
          FilterConstColumn(*cp.lhs_const, cp.op, out.cols[cp.rhs_col], &sel);
        }
      }
      out.Filter(sel);
    }
    if (out.rows == 0) return;
    if (atom_idx + 1 == q_.body().size()) {
      Emit(out);
    } else {
      Process(atom_idx + 1, out);
    }
  }

  void Emit(const Batch& b) {
    if (b.rows == 0) return;
    ++batches_;
    if (!sink_(b, var_col_)) stop_ = true;
  }

  const Query& q_;
  const std::vector<const Relation*>& relations_;
  FunctionRef<bool(const Batch&, const std::vector<int>&)> sink_;
  FunctionRef<bool()> checkpoint_;
  const JoinIndexSource* ext_;
  EngineStats* stats_;
  JoinIndexes indexes_;

  std::vector<AtomPlan> plans_;
  std::vector<int> var_col_;
  bool stop_ = false;
  bool aborted_ = false;
  uint64_t steps_ = 0;
  uint64_t batches_ = 0;
  uint64_t fallbacks_ = 0;
};

}  // namespace

bool JoinBodyBatches(const Query& q,
                     const std::vector<const Relation*>& relations,
                     FunctionRef<bool(const Batch&, const std::vector<int>&)> sink,
                     FunctionRef<bool()> checkpoint,
                     const JoinIndexSource* indexes, EngineStats* stats) {
  return BatchJoiner(q, relations, sink, checkpoint, indexes, stats).Run();
}

void BatchHeadProjector::ForEachHead(const Batch& b,
                                     const std::vector<int>& var_col,
                                     FunctionRef<void(const Tuple&)> fn) {
  const auto& args = q_.head().args;
  // Resolve each head argument to a batch column (or a constant) once per
  // batch. A head variable no atom binds makes every row unprojectable.
  std::vector<int> arg_col(args.size(), -1);
  for (size_t i = 0; i < args.size(); ++i) {
    if (args[i].is_const()) continue;
    arg_col[i] = var_col[args[i].var()];
    if (arg_col[i] < 0) return;
  }
  for (size_t row = 0; row < b.rows; ++row) {
    buf_.clear();
    buf_.reserve(args.size());
    for (size_t i = 0; i < args.size(); ++i) {
      if (arg_col[i] < 0)
        buf_.push_back(args[i].value());
      else
        buf_.push_back(b.cols[arg_col[i]].At(row));
    }
    fn(buf_);
  }
}

namespace {

/// Row-callback compatibility layer over the batch engine: one reused
/// binding buffer, bound variables overwritten per row (unbound ones never
/// touched — the var->column map is fixed for the whole join).
bool RowShim(const Query& q, const std::vector<const Relation*>& relations,
             FunctionRef<void(const std::vector<std::optional<Value>>&)> cb,
             FunctionRef<bool()> checkpoint, const JoinIndexSource* ext) {
  std::vector<std::optional<Value>> binding(q.num_vars(), std::nullopt);
  return JoinBodyBatches(
      q, relations,
      [&](const Batch& b, const std::vector<int>& var_col) {
        for (size_t row = 0; row < b.rows; ++row) {
          for (size_t v = 0; v < var_col.size(); ++v)
            if (var_col[v] >= 0) binding[v] = b.cols[var_col[v]].At(row);
          cb(binding);
        }
        return true;
      },
      checkpoint, ext);
}

}  // namespace

void JoinBody(
    const Query& q, const std::vector<const Relation*>& relations,
    FunctionRef<void(const std::vector<std::optional<Value>>&)> cb) {
  RowShim(q, relations, cb, [] { return true; }, nullptr);
}

bool JoinBodyAbortable(
    const Query& q, const std::vector<const Relation*>& relations,
    FunctionRef<void(const std::vector<std::optional<Value>>&)> cb,
    FunctionRef<bool()> checkpoint, const JoinIndexSource* indexes) {
  return RowShim(q, relations, cb, checkpoint, indexes);
}

namespace {

/// Accumulates result tuples in a flat vector and builds the Relation once
/// at the end: contiguous sort + unique beats per-tuple red-black inserts,
/// and the final set is spliced together from an already-sorted range.
/// Periodic compaction (at a doubling watermark) bounds memory at roughly
/// twice the distinct-tuple count even under highly duplicating projections.
class RelationBuilder {
 public:
  void Add(const Tuple& t) {
    rows_.push_back(t);
    if (rows_.size() >= watermark_) Compact();
  }

  /// Moves the accumulated tuples into *out (merging with any existing
  /// content).
  void MoveInto(Relation* out) {
    Compact();
    Relation built(std::make_move_iterator(rows_.begin()),
                   std::make_move_iterator(rows_.end()));
    rows_.clear();
    if (out->empty())
      *out = std::move(built);
    else
      out->merge(std::move(built));
  }

 private:
  void Compact() {
    std::sort(rows_.begin(), rows_.end());
    rows_.erase(std::unique(rows_.begin(), rows_.end()), rows_.end());
    watermark_ = std::max<size_t>(kMinWatermark, rows_.size() * 2);
  }

  static constexpr size_t kMinWatermark = 4096;
  std::vector<Tuple> rows_;
  size_t watermark_ = kMinWatermark;
};

/// Joins q over `relations` into *results batch-at-a-time; returns false
/// when the checkpoint aborted the search.
bool JoinInto(const Query& q, const std::vector<const Relation*>& relations,
              FunctionRef<bool()> checkpoint, Relation* results,
              EngineStats* stats = nullptr) {
  BatchHeadProjector proj(q);
  RelationBuilder builder;
  const bool ok = JoinBodyBatches(
      q, relations,
      [&](const Batch& b, const std::vector<int>& var_col) {
        proj.ForEachHead(b, var_col,
                         [&](const Tuple& head) { builder.Add(head); });
        return true;
      },
      checkpoint, nullptr, stats);
  if (ok) builder.MoveInto(results);
  return ok;
}

}  // namespace

Result<Relation> EvaluateQuery(const Query& q, const Database& db) {
  CQAC_RETURN_IF_ERROR(q.Validate());
  std::vector<const Relation*> relations;
  relations.reserve(q.body().size());
  for (const Atom& a : q.body()) relations.push_back(&db.Get(a.predicate));

  Relation results;
  JoinInto(q, relations, [] { return true; }, &results);
  return results;
}

Result<Relation> EvaluateQuery(EngineContext& ctx, const Query& q,
                               const Database& db) {
  return EvaluateQuery(ctx, q, db, EvalOptions{});
}

Result<Relation> EvaluateQuery(EngineContext& ctx, const Query& qin,
                               const Database& db,
                               const EvalOptions& options) {
  CQAC_RETURN_IF_ERROR(qin.Validate());

  // Plan the atom order up front, from the database alone: the permuted
  // body binds the same variables and filters the same comparisons, so the
  // result set is unchanged, and the choice precedes any fan-out, so it is
  // identical at every thread count.
  Query planned;
  const Query* pq = &qin;
  if (options.join_order == EvalOptions::JoinOrder::kPlanned &&
      qin.body().size() > 1) {
    auto rows = [&db](const std::string& p) { return db.Get(p).size(); };
    auto distinct = [&db](const std::string& p, size_t c) {
      return db.stats().DistinctEstimate(p, c);
    };
    plan::JoinOrderPlan jp =
        plan::PlanJoinOrder(qin, plan::Cardinalities{rows, distinct});
    ++ctx.stats().plan_decisions;
    if (jp.reordered) {
      ++ctx.stats().plan_join_reorders;
      planned = qin;
      planned.body().clear();
      for (size_t i : jp.order) planned.body().push_back(qin.body()[i]);
      pq = &planned;
    }
  }
  const Query& q = *pq;

  std::vector<const Relation*> relations;
  relations.reserve(q.body().size());
  for (const Atom& a : q.body()) relations.push_back(&db.Get(a.predicate));

  auto checkpoint = [&ctx] { return !ctx.ShouldStop(); };

  // Fan out only when atom 0 has enough tuples to split; results are a
  // set, so the chunk merge is order-independent and output is identical
  // at every thread count.
  const bool fan_out = ctx.parallelism() > 0 && !TaskPool::InPoolTask() &&
                       !q.body().empty() &&
                       relations[0]->size() >= 2 * (ctx.parallelism() + 1);
  if (!fan_out) {
    Relation results;
    if (!JoinInto(q, relations, checkpoint, &results, &ctx.stats())) {
      ++ctx.stats().budget_exhaustions;
      return Status::ResourceExhausted("join evaluation exceeded the budget");
    }
    return results;
  }

  // Deal atom 0's tuples round-robin into one sub-relation per chunk; each
  // chunk joins independently with its own lazy indexes.
  std::vector<const Tuple*> first;
  first.reserve(relations[0]->size());
  for (const Tuple& t : *relations[0]) first.push_back(&t);
  const size_t max_chunks = 4 * (ctx.parallelism() + 1);
  const size_t num_chunks = first.size() < max_chunks ? first.size()
                                                      : max_chunks;
  std::vector<Relation> chunk_results(num_chunks);
  std::vector<char> chunk_aborted(num_chunks, 0);
  CtxParallelFor(ctx, num_chunks, [&](size_t c) {
    Relation sub;
    for (size_t i = c; i < first.size(); i += num_chunks)
      sub.insert(*first[i]);
    std::vector<const Relation*> rels = relations;
    rels[0] = &sub;
    if (!JoinInto(q, rels, checkpoint, &chunk_results[c], &ctx.stats()))
      chunk_aborted[c] = 1;
  });

  for (char aborted : chunk_aborted)
    if (aborted) {
      ++ctx.stats().budget_exhaustions;
      return Status::ResourceExhausted("join evaluation exceeded the budget");
    }
  Relation results;
  for (Relation& r : chunk_results) {
    if (results.empty())
      results = std::move(r);
    else
      results.merge(std::move(r));
  }
  return results;
}

namespace {

/// Projects one satisfying binding onto q's head; false when some head
/// variable is unbound (unsafe head: the binding yields no tuple).
bool ProjectHead(const Query& q,
                 const std::vector<std::optional<Value>>& binding,
                 Tuple* head) {
  head->clear();
  head->reserve(q.head().args.size());
  for (const Term& t : q.head().args) {
    if (t.is_const()) {
      head->push_back(t.value());
    } else if (binding[t.var()].has_value()) {
      head->push_back(*binding[t.var()]);
    } else {
      return false;
    }
  }
  return true;
}

/// The pre-columnar tuple-at-a-time backtracking core, kept as the
/// differential-testing oracle behind EvaluateQueryReference.
void RowJoinReference(
    const Query& q, const std::vector<const Relation*>& relations,
    FunctionRef<void(const std::vector<std::optional<Value>>&)> cb) {
  std::vector<std::optional<Value>> binding(q.num_vars(), std::nullopt);
  JoinIndexes indexes(relations);

  auto term_value = [&binding](const Term& t, Value* out) {
    if (t.is_const()) {
      *out = t.value();
      return true;
    }
    if (binding[t.var()].has_value()) {
      *out = *binding[t.var()];
      return true;
    }
    return false;
  };
  auto comparisons_hold = [&]() {
    for (const Comparison& c : q.comparisons()) {
      Value a{0}, b{0};
      if (!term_value(c.lhs, &a) || !term_value(c.rhs, &b)) continue;
      if (!EvaluateGroundComparison(a, c.op, b)) return false;
    }
    return true;
  };

  // Attempts to unify atom `atom_idx` with `tuple`; on success recurses and
  // always restores the binding. Self-passing lambda: recursion without a
  // std::function allocation.
  auto extend = [&](auto&& self, size_t atom_idx) -> void {
    if (atom_idx == q.body().size()) {
      if (comparisons_hold()) cb(binding);
      return;
    }
    const Atom& atom = q.body()[atom_idx];

    auto try_tuple = [&](const Tuple& tuple) {
      if (tuple.size() != atom.args.size()) return;
      std::vector<int> bound_here;
      bool ok = true;
      for (size_t i = 0; i < tuple.size() && ok; ++i) {
        const Term& t = atom.args[i];
        if (t.is_const()) {
          ok = (t.value() == tuple[i]);
        } else if (binding[t.var()].has_value()) {
          ok = (*binding[t.var()] == tuple[i]);
        } else {
          binding[t.var()] = tuple[i];
          bound_here.push_back(t.var());
        }
      }
      if (ok && comparisons_hold()) self(self, atom_idx + 1);
      for (int v : bound_here) binding[v] = std::nullopt;
    };

    // Prefer an index probe on the first argument whose value is already
    // determined; fall back to a full scan.
    Value probe{0};
    for (size_t i = 0; i < atom.args.size(); ++i) {
      if (term_value(atom.args[i], &probe)) {
        for (const Tuple* t : indexes.Probe(atom_idx, i, probe))
          try_tuple(*t);
        return;
      }
    }
    for (const Tuple& tuple : *relations[atom_idx]) try_tuple(tuple);
  };
  extend(extend, 0);
}

}  // namespace

Result<Relation> EvaluateQueryReference(const Query& q, const Database& db) {
  CQAC_RETURN_IF_ERROR(q.Validate());
  std::vector<const Relation*> relations;
  relations.reserve(q.body().size());
  for (const Atom& a : q.body()) relations.push_back(&db.Get(a.predicate));

  Relation results;
  Tuple head;
  RowJoinReference(q, relations,
                   [&](const std::vector<std::optional<Value>>& binding) {
                     if (ProjectHead(q, binding, &head)) results.insert(head);
                   });
  return results;
}

Result<bool> QueryYieldsTuple(const Query& q, const Database& db,
                              const Tuple& head, EngineStats* stats) {
  CQAC_RETURN_IF_ERROR(q.Validate());
  if (q.head().args.size() != head.size()) return false;
  std::vector<const Relation*> relations;
  relations.reserve(q.body().size());
  for (const Atom& a : q.body()) relations.push_back(&db.Get(a.predicate));

  bool found = false;
  BatchHeadProjector proj(q);
  JoinBodyBatches(
      q, relations,
      [&](const Batch& b, const std::vector<int>& var_col) {
        proj.ForEachHead(b, var_col, [&](const Tuple& t) {
          if (t == head) found = true;
        });
        return !found;
      },
      [] { return true; }, nullptr, stats);
  return found;
}

Result<Relation> EvaluateUnion(const UnionQuery& u, const Database& db) {
  Relation out;
  for (const Query& q : u.disjuncts) {
    CQAC_ASSIGN_OR_RETURN(Relation r, EvaluateQuery(q, db));
    if (out.empty())
      out = std::move(r);
    else
      out.merge(std::move(r));
  }
  return out;
}

Result<Relation> EvaluateUnion(EngineContext& ctx, const UnionQuery& u,
                               const Database& db) {
  // Disjuncts evaluate independently; the union of result sets is
  // order-independent, so only error reporting needs the in-order merge.
  ParallelOutcomes<Result<Relation>> outcomes(
      ctx, u.disjuncts.size(),
      [&](size_t i) { return EvaluateQuery(ctx, u.disjuncts[i], db); },
      [](const Result<Relation>& r) { return !r.ok(); });
  Relation out;
  for (size_t i = 0; i < u.disjuncts.size(); ++i) {
    Result<Relation>& r = outcomes.Get(i);
    if (!r.ok()) return r.status();
    if (out.empty())
      out = std::move(r.value());
    else
      out.merge(std::move(r.value()));
  }
  return out;
}

Result<Database> MaterializeViews(const ViewSet& views, const Database& db) {
  Database out;
  for (const Query& v : views.views()) {
    CQAC_ASSIGN_OR_RETURN(Relation r, EvaluateQuery(v, db));
    CQAC_RETURN_IF_ERROR(out.InsertRelation(v.head().predicate, std::move(r)));
  }
  return out;
}

Result<Database> MaterializeViews(EngineContext& ctx, const ViewSet& views,
                                  const Database& db) {
  ParallelOutcomes<Result<Relation>> outcomes(
      ctx, views.size(),
      [&](size_t i) { return EvaluateQuery(ctx, views[i], db); },
      [](const Result<Relation>& r) { return !r.ok(); });
  Database out;
  for (size_t i = 0; i < views.size(); ++i) {
    Result<Relation>& r = outcomes.Get(i);
    if (!r.ok()) return r.status();
    CQAC_RETURN_IF_ERROR(
        out.InsertRelation(views[i].head().predicate, std::move(r.value())));
  }
  return out;
}

}  // namespace cqac
