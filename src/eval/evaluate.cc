#include "src/eval/evaluate.h"

#include <unordered_map>

#include "src/base/strings.h"
#include "src/engine/parallel.h"

namespace cqac {

bool EvaluateGroundComparison(const Value& lhs, CompOp op, const Value& rhs) {
  if (op == CompOp::kEq) return lhs == rhs;
  if (!lhs.is_number() || !rhs.is_number()) return false;
  return op == CompOp::kLt ? lhs.number() < rhs.number()
                           : lhs.number() <= rhs.number();
}

namespace {

/// Lazy single-column hash indexes over the relations of one join. Built on
/// first probe of a (atom, column) pair, amortized across the whole
/// backtracking search — this is what turns chain joins from quadratic scans
/// into hash lookups.
class JoinIndexes {
 public:
  explicit JoinIndexes(const std::vector<const Relation*>& relations)
      : relations_(relations), per_atom_(relations.size()) {}

  const std::vector<const Tuple*>& Probe(size_t atom, size_t col,
                                         const Value& v) {
    auto& cols = per_atom_[atom];
    auto it = cols.find(col);
    if (it == cols.end()) {
      ColumnIndex index;
      for (const Tuple& t : *relations_[atom])
        if (col < t.size()) index[t[col]].push_back(&t);
      it = cols.emplace(col, std::move(index)).first;
    }
    auto hit = it->second.find(v);
    return hit == it->second.end() ? kEmpty : hit->second;
  }

 private:
  using ColumnIndex =
      std::unordered_map<Value, std::vector<const Tuple*>>;
  static const std::vector<const Tuple*> kEmpty;

  const std::vector<const Relation*>& relations_;
  std::vector<std::unordered_map<size_t, ColumnIndex>> per_atom_;
};

const std::vector<const Tuple*> JoinIndexes::kEmpty;

}  // namespace

namespace {

/// The backtracking core behind JoinBody and the context-aware evaluators.
/// `checkpoint` is polled every 4096 candidate tuples; returning false
/// aborts the search (deadline / cancellation). Returns false iff aborted.
bool JoinBodyCore(
    const Query& q, const std::vector<const Relation*>& relations,
    FunctionRef<void(const std::vector<std::optional<Value>>&)> cb,
    FunctionRef<bool()> checkpoint, const JoinIndexSource* ext = nullptr) {
  std::vector<std::optional<Value>> binding(q.num_vars(), std::nullopt);
  JoinIndexes indexes(relations);
  bool stop = false;
  uint64_t steps = 0;

  auto term_value = [&binding](const Term& t, Value* out) {
    if (t.is_const()) {
      *out = t.value();
      return true;
    }
    if (binding[t.var()].has_value()) {
      *out = *binding[t.var()];
      return true;
    }
    return false;
  };
  auto comparisons_hold = [&]() {
    for (const Comparison& c : q.comparisons()) {
      Value a{0}, b{0};
      if (!term_value(c.lhs, &a) || !term_value(c.rhs, &b)) continue;
      if (!EvaluateGroundComparison(a, c.op, b)) return false;
    }
    return true;
  };

  // Attempts to unify atom `atom_idx` with `tuple`; on success recurses and
  // always restores the binding. Self-passing lambda: recursion without a
  // std::function allocation on this hot path.
  auto extend = [&](auto&& self, size_t atom_idx) -> void {
    if (atom_idx == q.body().size()) {
      if (comparisons_hold()) cb(binding);
      return;
    }
    const Atom& atom = q.body()[atom_idx];

    auto try_tuple = [&](const Tuple& tuple) {
      if (stop) return;
      if ((++steps & 0xFFF) == 0 && !checkpoint()) {
        stop = true;
        return;
      }
      if (tuple.size() != atom.args.size()) return;
      std::vector<int> bound_here;
      bool ok = true;
      for (size_t i = 0; i < tuple.size() && ok; ++i) {
        const Term& t = atom.args[i];
        if (t.is_const()) {
          ok = (t.value() == tuple[i]);
        } else if (binding[t.var()].has_value()) {
          ok = (*binding[t.var()] == tuple[i]);
        } else {
          binding[t.var()] = tuple[i];
          bound_here.push_back(t.var());
        }
      }
      if (ok && comparisons_hold()) self(self, atom_idx + 1);
      for (int v : bound_here) binding[v] = std::nullopt;
    };

    // Prefer an index probe on the first argument whose value is already
    // determined (the caller's persistent index when it covers this atom,
    // else the internal lazy one); fall back to a full scan.
    Value probe{0};
    for (size_t i = 0; i < atom.args.size(); ++i) {
      if (term_value(atom.args[i], &probe)) {
        const std::vector<const Tuple*>* hits =
            ext == nullptr ? nullptr : ext->Probe(atom_idx, i, probe);
        if (hits == nullptr) hits = &indexes.Probe(atom_idx, i, probe);
        for (const Tuple* t : *hits) {
          if (stop) return;
          try_tuple(*t);
        }
        return;
      }
    }
    for (const Tuple& tuple : *relations[atom_idx]) {
      if (stop) return;
      try_tuple(tuple);
    }
  };
  extend(extend, 0);
  return !stop;
}

}  // namespace

void JoinBody(
    const Query& q, const std::vector<const Relation*>& relations,
    FunctionRef<void(const std::vector<std::optional<Value>>&)> cb) {
  JoinBodyCore(q, relations, cb, [] { return true; });
}

bool JoinBodyAbortable(
    const Query& q, const std::vector<const Relation*>& relations,
    FunctionRef<void(const std::vector<std::optional<Value>>&)> cb,
    FunctionRef<bool()> checkpoint, const JoinIndexSource* indexes) {
  return JoinBodyCore(q, relations, cb, checkpoint, indexes);
}

namespace {

/// Projects one satisfying binding onto q's head; false when some head
/// variable is unbound (unsafe head: the binding yields no tuple).
bool ProjectHead(const Query& q,
                 const std::vector<std::optional<Value>>& binding,
                 Tuple* head) {
  head->clear();
  head->reserve(q.head().args.size());
  for (const Term& t : q.head().args) {
    if (t.is_const()) {
      head->push_back(t.value());
    } else if (binding[t.var()].has_value()) {
      head->push_back(*binding[t.var()]);
    } else {
      return false;
    }
  }
  return true;
}

/// Joins q over `relations` into *results; returns false when the
/// checkpoint aborted the search.
bool JoinInto(const Query& q, const std::vector<const Relation*>& relations,
              FunctionRef<bool()> checkpoint, Relation* results) {
  return JoinBodyCore(
      q, relations,
      [&](const std::vector<std::optional<Value>>& binding) {
        Tuple head;
        if (ProjectHead(q, binding, &head)) results->insert(std::move(head));
      },
      checkpoint);
}

}  // namespace

Result<Relation> EvaluateQuery(const Query& q, const Database& db) {
  CQAC_RETURN_IF_ERROR(q.Validate());
  std::vector<const Relation*> relations;
  relations.reserve(q.body().size());
  for (const Atom& a : q.body()) relations.push_back(&db.Get(a.predicate));

  Relation results;
  JoinInto(q, relations, [] { return true; }, &results);
  return results;
}

Result<Relation> EvaluateQuery(EngineContext& ctx, const Query& q,
                               const Database& db) {
  CQAC_RETURN_IF_ERROR(q.Validate());
  std::vector<const Relation*> relations;
  relations.reserve(q.body().size());
  for (const Atom& a : q.body()) relations.push_back(&db.Get(a.predicate));

  auto checkpoint = [&ctx] { return !ctx.ShouldStop(); };

  // Fan out only when atom 0 has enough tuples to split; results are a
  // set, so the chunk merge is order-independent and output is identical
  // at every thread count.
  const bool fan_out = ctx.parallelism() > 0 && !TaskPool::InPoolTask() &&
                       !q.body().empty() &&
                       relations[0]->size() >= 2 * (ctx.parallelism() + 1);
  if (!fan_out) {
    Relation results;
    if (!JoinInto(q, relations, checkpoint, &results)) {
      ++ctx.stats().budget_exhaustions;
      return Status::ResourceExhausted("join evaluation exceeded the budget");
    }
    return results;
  }

  // Deal atom 0's tuples round-robin into one sub-relation per chunk; each
  // chunk joins independently with its own lazy indexes.
  std::vector<const Tuple*> first;
  first.reserve(relations[0]->size());
  for (const Tuple& t : *relations[0]) first.push_back(&t);
  const size_t max_chunks = 4 * (ctx.parallelism() + 1);
  const size_t num_chunks = first.size() < max_chunks ? first.size()
                                                      : max_chunks;
  std::vector<Relation> chunk_results(num_chunks);
  std::vector<char> chunk_aborted(num_chunks, 0);
  CtxParallelFor(ctx, num_chunks, [&](size_t c) {
    Relation sub;
    for (size_t i = c; i < first.size(); i += num_chunks)
      sub.insert(*first[i]);
    std::vector<const Relation*> rels = relations;
    rels[0] = &sub;
    if (!JoinInto(q, rels, checkpoint, &chunk_results[c]))
      chunk_aborted[c] = 1;
  });

  for (char aborted : chunk_aborted)
    if (aborted) {
      ++ctx.stats().budget_exhaustions;
      return Status::ResourceExhausted("join evaluation exceeded the budget");
    }
  Relation results;
  for (Relation& r : chunk_results)
    results.insert(r.begin(), r.end());
  return results;
}

Result<Relation> EvaluateUnion(const UnionQuery& u, const Database& db) {
  Relation out;
  for (const Query& q : u.disjuncts) {
    CQAC_ASSIGN_OR_RETURN(Relation r, EvaluateQuery(q, db));
    out.insert(r.begin(), r.end());
  }
  return out;
}

Result<Relation> EvaluateUnion(EngineContext& ctx, const UnionQuery& u,
                               const Database& db) {
  // Disjuncts evaluate independently; the union of result sets is
  // order-independent, so only error reporting needs the in-order merge.
  ParallelOutcomes<Result<Relation>> outcomes(
      ctx, u.disjuncts.size(),
      [&](size_t i) { return EvaluateQuery(ctx, u.disjuncts[i], db); },
      [](const Result<Relation>& r) { return !r.ok(); });
  Relation out;
  for (size_t i = 0; i < u.disjuncts.size(); ++i) {
    Result<Relation>& r = outcomes.Get(i);
    if (!r.ok()) return r.status();
    out.insert(r.value().begin(), r.value().end());
  }
  return out;
}

Result<Database> MaterializeViews(const ViewSet& views, const Database& db) {
  Database out;
  for (const Query& v : views.views()) {
    CQAC_ASSIGN_OR_RETURN(Relation r, EvaluateQuery(v, db));
    for (const Tuple& t : r)
      CQAC_RETURN_IF_ERROR(out.Insert(v.head().predicate, t));
  }
  return out;
}

Result<Database> MaterializeViews(EngineContext& ctx, const ViewSet& views,
                                  const Database& db) {
  ParallelOutcomes<Result<Relation>> outcomes(
      ctx, views.size(),
      [&](size_t i) { return EvaluateQuery(ctx, views[i], db); },
      [](const Result<Relation>& r) { return !r.ok(); });
  Database out;
  for (size_t i = 0; i < views.size(); ++i) {
    Result<Relation>& r = outcomes.Get(i);
    if (!r.ok()) return r.status();
    for (const Tuple& t : r.value())
      CQAC_RETURN_IF_ERROR(out.Insert(views[i].head().predicate, t));
  }
  return out;
}

}  // namespace cqac
