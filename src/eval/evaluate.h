// Evaluation of CQAC queries and unions over a Database.
//
// A straightforward backtracking join with eager comparison filtering —
// adequate for validation and for the paper-scale benchmark workloads.
#ifndef CQAC_EVAL_EVALUATE_H_
#define CQAC_EVAL_EVALUATE_H_

#include <optional>

#include "src/base/function_ref.h"
#include "src/base/status.h"
#include "src/engine/context.h"
#include "src/eval/database.h"
#include "src/ir/query.h"
#include "src/ir/view.h"

namespace cqac {

/// Evaluates a ground comparison over constants: numbers compare by value;
/// symbols support only (dis)equality; number-vs-symbol ordered comparisons
/// are false.
bool EvaluateGroundComparison(const Value& lhs, CompOp op, const Value& rhs);

/// Returns the set of head tuples of `q` on `db`.
Result<Relation> EvaluateQuery(const Query& q, const Database& db);

/// Context-aware variant: honours the budget deadline / cancellation flag
/// (kResourceExhausted on abort) and fans the join out over the context's
/// task pool by partitioning the first body atom's tuples. The result set
/// is identical at every thread count.
Result<Relation> EvaluateQuery(EngineContext& ctx, const Query& q,
                               const Database& db);

/// Evaluates each disjunct and unions the results (all head arities must
/// agree).
Result<Relation> EvaluateUnion(const UnionQuery& u, const Database& db);

/// Context-aware variant: disjuncts evaluate in parallel.
Result<Relation> EvaluateUnion(EngineContext& ctx, const UnionQuery& u,
                               const Database& db);

/// Materializes every view in `views` over `db`, producing the view
/// database {v_i -> v_i(db)} the rewriting is evaluated against.
Result<Database> MaterializeViews(const ViewSet& views, const Database& db);

/// Context-aware variant: views materialize in parallel.
Result<Database> MaterializeViews(EngineContext& ctx, const ViewSet& views,
                                  const Database& db);

/// Optional caller-owned column indexes for one JoinBody call. The join
/// probes `Probe(atom, col, v)` for the tuples of body atom `atom` whose
/// column `col` equals `v`; returning nullptr means this source carries no
/// index for that (atom, col) and the join falls back to its internal lazy
/// per-call index. A source that does cover an (atom, col) must return a
/// (possibly empty) vector for *every* value, and the vectors must enumerate
/// exactly the matching tuples of *relations[atom]. Lets long-lived callers
/// (incremental view maintenance) amortize index construction across many
/// joins instead of paying O(|relation|) per call.
class JoinIndexSource {
 public:
  virtual ~JoinIndexSource() = default;
  virtual const std::vector<const Tuple*>* Probe(size_t atom, size_t col,
                                                 const Value& v) const = 0;
};

/// Low-level join used by the Datalog engine: evaluates `q`'s body where
/// body atom i reads tuples from *relations[i] (so callers can point
/// different atoms at full/delta relations). Comparisons of `q` filter
/// eagerly. Invokes `cb` once per satisfying assignment with the per-variable
/// binding (index = variable id; unbound variables stay nullopt).
void JoinBody(
    const Query& q, const std::vector<const Relation*>& relations,
    FunctionRef<void(const std::vector<std::optional<Value>>&)> cb);

/// JoinBody with an abort checkpoint polled every few thousand candidate
/// tuples. Returns false iff the checkpoint aborted the search (in which
/// case `cb` may have seen only a prefix of the satisfying assignments).
/// `indexes`, when non-null, serves column probes for the atoms it covers.
bool JoinBodyAbortable(
    const Query& q, const std::vector<const Relation*>& relations,
    FunctionRef<void(const std::vector<std::optional<Value>>&)> cb,
    FunctionRef<bool()> checkpoint,
    const JoinIndexSource* indexes = nullptr);

}  // namespace cqac

#endif  // CQAC_EVAL_EVALUATE_H_
