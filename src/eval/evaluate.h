// Evaluation of CQAC queries and unions over a Database.
//
// The join engine is columnar and batch-at-a-time (docs/eval.md): partial
// join results travel as Batches (per-variable value columns with a tagged
// int64 fast path for integral Rationals), comparison predicates run as
// vectorized selection-vector filters, and each body atom extends the batch
// through a hash probe — the caller's persistent JoinIndexSource when it
// covers the atom, an internal lazy per-call index otherwise. The
// row-callback JoinBody API is kept as a thin shim over the batch engine,
// and the pre-columnar tuple-at-a-time evaluator survives as
// EvaluateQueryReference for differential testing.
#ifndef CQAC_EVAL_EVALUATE_H_
#define CQAC_EVAL_EVALUATE_H_

#include <optional>

#include "src/base/function_ref.h"
#include "src/base/status.h"
#include "src/engine/context.h"
#include "src/eval/batch.h"
#include "src/eval/database.h"
#include "src/ir/query.h"
#include "src/ir/view.h"

namespace cqac {

/// Evaluates a ground comparison over constants: numbers compare by value;
/// symbols support only (dis)equality; number-vs-symbol ordered comparisons
/// are false.
bool EvaluateGroundComparison(const Value& lhs, CompOp op, const Value& rhs);

/// Returns the set of head tuples of `q` on `db`.
Result<Relation> EvaluateQuery(const Query& q, const Database& db);

/// Per-call evaluation knobs — the planner seam.
struct EvalOptions {
  /// kPlanned (default): the body executes in the atom order chosen by
  /// plan::PlanJoinOrder over the database's cardinality stats. Joins over
  /// set-semantics relations are order-independent, so every order returns
  /// the identical relation; kSyntactic pins the written order (tests,
  /// ablations — tests/plan_equivalence_test.cc sweeps both against every
  /// body permutation).
  enum class JoinOrder { kPlanned, kSyntactic };
  JoinOrder join_order = JoinOrder::kPlanned;
};

/// Context-aware variant: honours the budget deadline / cancellation flag
/// (kResourceExhausted on abort), records eval_batches /
/// eval_smallint_fallbacks / plan_* stats, plans the body atom order (see
/// EvalOptions), and fans the join out over the context's task pool by
/// dealing the first planned atom's tuples round-robin into chunks. The
/// order is chosen from the database alone, before any fan-out, so the
/// result set is identical at every thread count.
Result<Relation> EvaluateQuery(EngineContext& ctx, const Query& q,
                               const Database& db);
Result<Relation> EvaluateQuery(EngineContext& ctx, const Query& q,
                               const Database& db,
                               const EvalOptions& options);

/// The pre-columnar tuple-at-a-time backtracking evaluator, kept verbatim as
/// the differential-testing oracle: EvaluateQuery must return a byte-
/// identical relation (tests/eval_columnar_test.cc sweeps this at thread
/// counts 0/1/4/8).
Result<Relation> EvaluateQueryReference(const Query& q, const Database& db);

/// Evaluates each disjunct and unions the results (all head arities must
/// agree).
Result<Relation> EvaluateUnion(const UnionQuery& u, const Database& db);

/// Context-aware variant: disjuncts evaluate in parallel.
Result<Relation> EvaluateUnion(EngineContext& ctx, const UnionQuery& u,
                               const Database& db);

/// Materializes every view in `views` over `db`, producing the view
/// database {v_i -> v_i(db)} the rewriting is evaluated against.
Result<Database> MaterializeViews(const ViewSet& views, const Database& db);

/// Context-aware variant: views materialize in parallel.
Result<Database> MaterializeViews(EngineContext& ctx, const ViewSet& views,
                                  const Database& db);

/// True iff `head` is among q's result tuples on `db` — the canonical-
/// database containment probe. Evaluates the join batch-at-a-time with an
/// early exit as soon as one satisfying assignment projects onto `head`,
/// instead of materializing the full result. `stats`, when non-null,
/// receives eval_batches / eval_smallint_fallbacks increments.
Result<bool> QueryYieldsTuple(const Query& q, const Database& db,
                              const Tuple& head,
                              EngineStats* stats = nullptr);

/// Optional caller-owned column indexes for one join call. The join probes
/// `Probe(atom, col, v)` for the tuples of body atom `atom` whose column
/// `col` equals `v`; returning nullptr means this source carries no index
/// for that (atom, col) and the join falls back to its internal lazy
/// per-call index. A source that does cover an (atom, col) must return a
/// (possibly empty) vector for *every* value, and the vectors must enumerate
/// exactly the matching tuples of *relations[atom]. Lets long-lived callers
/// (incremental view maintenance) amortize index construction across many
/// joins instead of paying O(|relation|) per call.
class JoinIndexSource {
 public:
  virtual ~JoinIndexSource() = default;
  virtual const std::vector<const Tuple*>* Probe(size_t atom, size_t col,
                                                 const Value& v) const = 0;
};

/// The batch-native join: evaluates `q`'s body where body atom i reads
/// tuples from *relations[i], filtering comparisons eagerly (vectorized, as
/// soon as both sides are bound). `sink` is invoked once per non-empty
/// output batch with the batch and the variable -> column map (length
/// q.num_vars(); -1 for variables no atom binds); returning false stops the
/// enumeration early (a normal stop, not an abort). `checkpoint` is polled
/// every few thousand candidate tuples; returning false aborts the join, in
/// which case JoinBodyBatches returns false and the sink may have seen only
/// a prefix of the satisfying assignments. `indexes`, when non-null, serves
/// column probes for the atoms it covers. `stats`, when non-null, receives
/// eval_batches / eval_smallint_fallbacks increments. Batch boundaries and
/// row order within a batch are unspecified; only the multiset of rows is
/// contractual (it equals the satisfying assignments exactly).
bool JoinBodyBatches(const Query& q,
                     const std::vector<const Relation*>& relations,
                     FunctionRef<bool(const Batch&, const std::vector<int>&)> sink,
                     FunctionRef<bool()> checkpoint,
                     const JoinIndexSource* indexes = nullptr,
                     EngineStats* stats = nullptr);

/// Projects batches of satisfying assignments onto a query head. The head
/// layout (constant vs column per argument) is resolved once per batch, and
/// every projected row is written into one reused tuple buffer — callers
/// copy out of it (set/map inserts do) instead of paying a fresh allocation
/// per emitted tuple. Rows are skipped when some head variable is unbound
/// (unsafe head: the assignment yields no tuple).
class BatchHeadProjector {
 public:
  explicit BatchHeadProjector(const Query& q) : q_(q) {}

  /// Calls fn(head) once per projectable row of `b`.
  void ForEachHead(const Batch& b, const std::vector<int>& var_col,
                   FunctionRef<void(const Tuple&)> fn);

 private:
  const Query& q_;
  Tuple buf_;
};

/// Row-callback shim over the batch engine, used by the Datalog engine:
/// evaluates `q`'s body where body atom i reads tuples from *relations[i]
/// (so callers can point different atoms at full/delta relations).
/// Comparisons of `q` filter eagerly. Invokes `cb` once per satisfying
/// assignment with the per-variable binding (index = variable id; unbound
/// variables stay nullopt). The binding buffer is reused across
/// invocations; callers must copy what they keep. Callback order is
/// unspecified.
void JoinBody(
    const Query& q, const std::vector<const Relation*>& relations,
    FunctionRef<void(const std::vector<std::optional<Value>>&)> cb);

/// JoinBody with an abort checkpoint polled every few thousand candidate
/// tuples. Returns false iff the checkpoint aborted the search (in which
/// case `cb` may have seen only a prefix of the satisfying assignments).
/// `indexes`, when non-null, serves column probes for the atoms it covers.
bool JoinBodyAbortable(
    const Query& q, const std::vector<const Relation*>& relations,
    FunctionRef<void(const std::vector<std::optional<Value>>&)> cb,
    FunctionRef<bool()> checkpoint,
    const JoinIndexSource* indexes = nullptr);

}  // namespace cqac

#endif  // CQAC_EVAL_EVALUATE_H_
