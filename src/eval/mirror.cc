#include "src/eval/mirror.h"

#include <cstdlib>

namespace cqac {
namespace {

Term MirrorTerm(const Term& t) {
  if (t.is_var()) return t;
  if (!t.value().is_number()) return t;
  return Term::Const(Value(-t.value().number()));
}

}  // namespace

Query MirrorQuery(const Query& q) {
  Query out;
  out.head().predicate = q.head().predicate;
  for (const std::string& name : q.var_names()) out.FindOrAddVariable(name);
  for (const Term& t : q.head().args) out.head().args.push_back(MirrorTerm(t));
  for (const Atom& a : q.body()) {
    Atom na;
    na.predicate = a.predicate;
    for (const Term& t : a.args) na.args.push_back(MirrorTerm(t));
    out.AddBodyAtom(std::move(na));
  }
  // a op b  |->  -b op -a  (order reversal swaps sides; `=` is symmetric
  // but swapped anyway for involutivity).
  for (const Comparison& c : q.comparisons())
    out.AddComparison(
        Comparison(MirrorTerm(c.rhs), c.op, MirrorTerm(c.lhs)));
  return out;
}

ViewSet MirrorViews(const ViewSet& views) {
  ViewSet out;
  for (const Query& v : views.views()) {
    Status st = out.Add(MirrorQuery(v));
    if (!st.ok()) std::abort();  // names are unchanged, cannot collide
  }
  return out;
}

Database MirrorDatabase(const Database& db) {
  Database out;
  for (const auto& [pred, rel] : db.relations()) {
    for (const Tuple& t : rel) {
      Tuple nt;
      nt.reserve(t.size());
      for (const Value& v : t)
        nt.push_back(v.is_number() ? Value(-v.number()) : v);
      Status st = out.Insert(pred, std::move(nt));
      if (!st.ok()) std::abort();
    }
  }
  return out;
}

}  // namespace cqac
