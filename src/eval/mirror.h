// The LSI <-> RSI mirror transform.
//
// Negating every numeric constant and swapping comparison directions maps a
// dense order onto itself in reverse, turning left semi-interval queries
// into right semi-interval ones and vice versa. The paper states its
// Section 4 results for LSI queries "and symmetrically for RSI"; this
// transform is the symmetry made executable, and the test suite uses it to
// check that every algorithm commutes with mirroring.
#ifndef CQAC_EVAL_MIRROR_H_
#define CQAC_EVAL_MIRROR_H_

#include "src/eval/database.h"
#include "src/ir/query.h"
#include "src/ir/view.h"

namespace cqac {

/// Mirrors one query: every numeric constant c (in comparisons AND in
/// ordinary subgoals, so join semantics are preserved) becomes -c, and
/// every comparison flips sides (`X < c` becomes `-c < X`). Symbolic
/// constants are untouched. Involutive: Mirror(Mirror(q)) == q.
Query MirrorQuery(const Query& q);

/// Mirrors every view definition.
ViewSet MirrorViews(const ViewSet& views);

/// Mirrors a database instance (numeric values negated).
Database MirrorDatabase(const Database& db);

}  // namespace cqac

#endif  // CQAC_EVAL_MIRROR_H_
