#include "src/gen/generators.h"

#include <algorithm>
#include <cassert>

#include "src/base/strings.h"

namespace cqac {
namespace gen {
namespace {

/// Draws one comparison on variable `var` honoring the mode; `lsi_used`
/// tracks the CQAC-SI single-LSI budget.
Comparison DrawComparison(Rng& rng, int var, AcMode mode, int64_t cmin,
                          int64_t cmax, bool* lsi_used) {
  Rational c(rng.Uniform(cmin, cmax));
  CompOp op = rng.Chance(0.5) ? CompOp::kLt : CompOp::kLe;
  bool upper;  // X op c (LSI) vs c op X (RSI)
  switch (mode) {
    case AcMode::kLsi:
      upper = true;
      break;
    case AcMode::kRsi:
      upper = false;
      break;
    case AcMode::kCqacSi:
      if (*lsi_used) {
        upper = false;
      } else {
        upper = rng.Chance(0.4);
        if (upper) *lsi_used = true;
      }
      break;
    case AcMode::kSi:
    case AcMode::kGeneral:
    default:
      upper = rng.Chance(0.5);
      break;
  }
  if (upper) return Comparison(Term::Var(var), op, Term::Const(Value(c)));
  return Comparison(Term::Const(Value(c)), op, Term::Var(var));
}

}  // namespace

Query RandomQuery(Rng& rng, const QuerySpec& spec, const std::string& name) {
  Query q(name);
  std::vector<int> vars;
  for (int i = 0; i < spec.num_vars; ++i)
    vars.push_back(q.AddVariable(StrCat("X", i)));

  // Body: random atoms; reuse variables so joins happen. A light chain bias
  // keeps the queries connected: the first argument of subgoal i tends to be
  // the last argument of subgoal i-1.
  int prev_last = -1;
  for (int g = 0; g < spec.num_subgoals; ++g) {
    Atom a;
    a.predicate = StrCat("p", rng.Uniform(0, spec.num_predicates - 1));
    for (int j = 0; j < spec.arity; ++j) {
      int v;
      if (j == 0 && prev_last >= 0 && rng.Chance(0.7))
        v = prev_last;
      else
        v = rng.Pick(vars);
      a.args.push_back(Term::Var(v));
    }
    prev_last = a.args.back().is_var() ? a.args.back().var() : -1;
    q.AddBodyAtom(std::move(a));
  }

  // Head: variables that occur in the body.
  std::set<int> body_vars = q.BodyVars();
  std::vector<int> usable(body_vars.begin(), body_vars.end());
  if (!spec.boolean_head) {
    for (int j = 0; j < spec.head_arity; ++j)
      q.head().args.push_back(Term::Var(rng.Pick(usable)));
  }

  // Comparisons.
  if (spec.ac_mode != AcMode::kNone) {
    bool lsi_used = false;
    int target = static_cast<int>(spec.ac_density * spec.num_subgoals + 0.5);
    for (int i = 0; i < target; ++i) {
      int var = rng.Pick(usable);
      if (spec.ac_mode == AcMode::kGeneral && rng.Chance(0.3) &&
          usable.size() >= 2) {
        int other = rng.Pick(usable);
        if (other != var) {
          q.AddComparison(Comparison(Term::Var(var),
                                     rng.Chance(0.5) ? CompOp::kLt
                                                     : CompOp::kLe,
                                     Term::Var(other)));
          continue;
        }
      }
      q.AddComparison(DrawComparison(rng, var, spec.ac_mode, spec.const_min,
                                     spec.const_max, &lsi_used));
    }
  }
  return q;
}

ViewSet RandomViewsForQuery(Rng& rng, const Query& q, const ViewSpec& spec) {
  ViewSet out;
  for (int vi = 0; vi < spec.num_views; ++vi) {
    Query v(StrCat("v", vi));
    // Sample a contiguous run of the query's subgoals.
    int want = static_cast<int>(
        rng.Uniform(spec.min_subgoals,
                    std::min<int64_t>(spec.max_subgoals,
                                      static_cast<int64_t>(q.body().size()))));
    int start = static_cast<int>(
        rng.Uniform(0, static_cast<int64_t>(q.body().size()) - want));

    // Fresh variables mirroring the query's.
    std::vector<int> translate(q.num_vars(), -1);
    auto xlate = [&](const Term& t) -> Term {
      if (t.is_const()) return t;
      if (translate[t.var()] < 0)
        translate[t.var()] = v.FindOrAddVariable(StrCat("Y", t.var()));
      return Term::Var(translate[t.var()]);
    };
    for (int g = start; g < start + want; ++g) {
      Atom a;
      a.predicate = q.body()[g].predicate;
      for (const Term& t : q.body()[g].args) a.args.push_back(xlate(t));
      v.AddBodyAtom(std::move(a));
    }
    // Distinguished variables.
    std::set<int> body_vars = v.BodyVars();
    std::vector<int> head_vars;
    for (int var : body_vars)
      if (rng.Chance(spec.distinguished_prob)) head_vars.push_back(var);
    if (head_vars.empty() && !body_vars.empty())
      head_vars.push_back(*body_vars.begin());
    for (int var : head_vars) v.head().args.push_back(Term::Var(var));

    // Comparisons.
    if (spec.ac_mode != AcMode::kNone && !body_vars.empty()) {
      bool lsi_used = false;
      std::vector<int> usable(body_vars.begin(), body_vars.end());
      int target = static_cast<int>(spec.ac_density * want + 0.5);
      for (int i = 0; i < target; ++i) {
        int var = rng.Pick(usable);
        v.AddComparison(DrawComparison(rng, var, spec.ac_mode, spec.const_min,
                                       spec.const_max, &lsi_used));
      }
    }
    Status st = out.Add(std::move(v));
    assert(st.ok());
    (void)st;
  }
  return out;
}

std::map<std::string, int> SchemaOf(const Query& q) {
  std::map<std::string, int> out;
  for (const Atom& a : q.body()) {
    auto [it, inserted] = out.emplace(a.predicate, a.args.size());
    assert(it->second == static_cast<int>(a.args.size()));
    (void)it;
    (void)inserted;
  }
  return out;
}

std::map<std::string, int> SchemaOf(const ViewSet& views) {
  std::map<std::string, int> out;
  for (const Query& v : views.views()) {
    for (const auto& [pred, arity] : SchemaOf(v)) {
      auto [it, inserted] = out.emplace(pred, arity);
      assert(it->second == arity);
      (void)it;
      (void)inserted;
    }
  }
  return out;
}

Database RandomDatabase(Rng& rng, const std::map<std::string, int>& schema,
                        const DatabaseSpec& spec) {
  Database db;
  for (const auto& [pred, arity] : schema) {
    for (size_t i = 0; i < spec.tuples_per_relation; ++i) {
      Tuple t;
      for (int j = 0; j < arity; ++j)
        t.push_back(Value(Rational(rng.Uniform(spec.value_min,
                                               spec.value_max))));
      Status st = db.Insert(pred, std::move(t));
      assert(st.ok());
      (void)st;
    }
  }
  return db;
}

}  // namespace gen
}  // namespace cqac
