// Random workload generators for property tests and benchmarks.
//
// The paper has no empirical evaluation, so the benchmark workloads are
// synthetic families exercising exactly the constructs each theorem
// quantifies over: chain/star CQACs with controlled comparison class and
// density, view sets derived from query fragments (guaranteeing predicate
// overlap), and random dense-order databases. Everything is deterministic
// given the Rng seed.
#ifndef CQAC_GEN_GENERATORS_H_
#define CQAC_GEN_GENERATORS_H_

#include <map>
#include <string>

#include "src/base/rng.h"
#include "src/base/status.h"
#include "src/eval/database.h"
#include "src/ir/query.h"
#include "src/ir/view.h"

namespace cqac {
namespace gen {

/// Comparison classes a generator can be asked for.
enum class AcMode {
  kNone,     // pure CQ
  kLsi,      // upper bounds only
  kRsi,      // lower bounds only
  kSi,       // mixed semi-interval
  kCqacSi,   // SI with at most one LSI (Section 5's query class)
  kGeneral,  // includes variable-variable comparisons
};

struct QuerySpec {
  int num_subgoals = 3;
  int num_predicates = 2;  // predicate names p0, p1, ...
  int arity = 2;
  int num_vars = 4;
  double ac_density = 0.5;  // expected comparisons per subgoal
  AcMode ac_mode = AcMode::kLsi;
  int64_t const_min = 0;
  int64_t const_max = 20;
  bool boolean_head = false;
  int head_arity = 2;  // ignored when boolean_head
};

/// A random safe CQAC query named `name`.
Query RandomQuery(Rng& rng, const QuerySpec& spec,
                  const std::string& name = "q");

struct ViewSpec {
  int num_views = 4;
  /// Subgoals per view, sampled from the query body (with fresh variables).
  int min_subgoals = 1;
  int max_subgoals = 2;
  /// Probability that a view variable is distinguished.
  double distinguished_prob = 0.7;
  /// Expected comparisons added per view.
  double ac_density = 0.5;
  AcMode ac_mode = AcMode::kSi;
  int64_t const_min = 0;
  int64_t const_max = 20;
};

/// Views built from fragments of `q`'s body (fresh variables, random
/// projections, random comparisons) so that rewritings plausibly exist.
ViewSet RandomViewsForQuery(Rng& rng, const Query& q, const ViewSpec& spec);

/// The predicate -> arity schema referenced by a query (body atoms only).
std::map<std::string, int> SchemaOf(const Query& q);

/// Merges schemas of several queries; conflicting arities abort.
std::map<std::string, int> SchemaOf(const ViewSet& views);

struct DatabaseSpec {
  size_t tuples_per_relation = 50;
  int64_t value_min = 0;
  int64_t value_max = 20;
};

/// A random database over `schema` with integer values (as rationals).
Database RandomDatabase(Rng& rng, const std::map<std::string, int>& schema,
                        const DatabaseSpec& spec);

}  // namespace gen
}  // namespace cqac

#endif  // CQAC_GEN_GENERATORS_H_
