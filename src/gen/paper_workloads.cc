#include "src/gen/paper_workloads.h"

#include "src/base/strings.h"
#include "src/ir/parser.h"

namespace cqac {
namespace workloads {

Query Example11Query() { return MustParseQuery("q1(A) :- r(A), A < 4"); }

ViewSet Example11Views() {
  return ViewSet(MustParseRules(
      "v1(Y, Z) :- r(X), s(Y, Z), Y <= X, X <= Z.\n"
      "v2(Y, Z) :- r(X), s(Y, Z), Y <= X, X < Z."));
}

Query Example11Rewriting() {
  return MustParseQuery("p(A) :- v1(A, A), A < 4");
}

// NOTE on Example 1.2: the source text of the paper is OCR-garbled at the
// P_k listing and at the recursive program. We reconstruct the example from
// the machinery it illustrates (Section 5 / Example 5.1): the query is the
// Example 5.1 two-edge path with one RSI and one LSI comparison; the views
// hide the constrained endpoint behind a one-step composition, so a
// contained rewriting must thread an even-length chain of plain-edge views
// between them, coupling at every hidden interior node. The P_k family below
// grows without bound and no finite union of CQACs contains every member
// (Proposition 5.1), while the Figure-4 Datalog MCR covers them all.
Query Example12Query() {
  return MustParseQuery("q2() :- e(X, Y), e(Y, Z), X > 5, Z < 8");
}

ViewSet Example12Views() {
  // The view constants 6 and 4 are chosen so that they do NOT couple with
  // each other ((X > 6) v (X < 4) is not a tautology) — otherwise longer
  // P_k chains would collapse into shorter ones. Only the query's own
  // constants (5 < 8) provide the interior coupling.
  return ViewSet(MustParseRules(
      "v1(B) :- e(A, B), A > 6.\n"
      "v2(A) :- e(A, B), B < 4.\n"
      "v3(A, B) :- e(A, B)."));
}

Query Example12Pk(int k) {
  // P_k() :- v1(W0), v3(W0, W1), ..., v3(W_{2k-1}, W_{2k}), v2(W_{2k}).
  // Expansion: an even-length edge chain whose first tail is > 6 and whose
  // last head is < 7.
  std::vector<std::string> items;
  items.push_back("v1(W0)");
  for (int i = 0; i < 2 * k; ++i)
    items.push_back(StrCat("v3(W", i, ", W", i + 1, ")"));
  items.push_back(StrCat("v2(W", 2 * k, ")"));
  return MustParseQuery(StrCat("p", k, "() :- ", Join(items, ", ")));
}

Query CarDealerQuery() {
  return MustParseQuery(
      "q(C, L) :- car(C, A), loc(A, L), color(C, red)");
}

ViewSet CarDealerViews() {
  return ViewSet(MustParseRules(
      "v1(X, Y) :- car(X, D), loc(D, Y).\n"
      "v2(W, Z) :- color(W, Z)."));
}

Query Example41View() {
  // Figure 3: X2 and X6 are nondistinguished; the comparisons place
  // X1 <= X2 <= X3 and X4 <= X5 <= X6 <= X7, X8 <= X6.
  return MustParseQuery(
      "v(X1, X3, X4, X5, X7, X8) :- r(X2, X6), s(X1, X3, X4, X5, X7, X8), "
      "X1 <= X2, X2 <= X3, X4 <= X5, X5 <= X6, X6 <= X7, X8 <= X6");
}

Query Sec44CaseQuery() { return MustParseQuery("q(A) :- p(A), A < 3"); }

Query Sec44CaseBooleanQuery() {
  return MustParseQuery("q() :- p(A), A < 3");
}

ViewSet Sec44CaseViews() {
  // v1: case (1) — the view's comparison X1 < 2 already implies X1 < 3, but
  //     X1 is hidden, so only the guarantee matters (usable, nothing added).
  // v2: case (2) — X1 distinguished; add X1 < 3 to the rewriting.
  // v3: case (3) — X1 hidden but X1 <= X3 with X3 distinguished; add X3 < 3.
  // v4: failure — X1 hidden and only bounded from below by distinguished
  //     variables; no way to enforce an upper bound.
  return ViewSet(MustParseRules(
      "v1(X2) :- p(X1), s(X2), X1 < 2.\n"
      "v2(X1) :- p(X1).\n"
      "v3(X2, X3) :- p(X1), r(X2, X3, X4), X1 <= X3.\n"
      "v4(X2, X3) :- p(X1), r(X2, X3, X4), X2 <= X1, X3 <= X1."));
}

Query Sec44FullQuery() {
  return MustParseQuery("q(A) :- p(A, B), r(C), A > 5, B > 3");
}

ViewSet Sec44FullViews() {
  // v1 hides X and Y; X is exportable two ways (equate X1 or X2 with X3,
  // both of which sandwich X), and B > 3 is satisfiable through X3 <= Y
  // (bounding X3 from below bounds Y from below).
  return ViewSet(MustParseRules(
      "v1(X1, X2, X3) :- p(X, Y), s(X1, X2, X3), "
      "X3 <= X, X <= X1, X <= X2, X3 <= Y.\n"
      "v2(U) :- r(U)."));
}

Query Example51Q1() {
  return MustParseQuery("q1() :- e(X, Y), e(Y, Z), X > 5, Z < 8");
}

Query Example51Q2() {
  return MustParseQuery(
      "q2() :- e(A, B), e(B, C), e(C, D), e(D, E), A > 6, E < 7");
}

Query Example51Chain(int n, const Rational& low, const Rational& high) {
  std::vector<std::string> items;
  for (int i = 0; i < n; ++i)
    items.push_back(StrCat("e(C", i, ", C", i + 1, ")"));
  items.push_back(StrCat("C0 > ", low.ToString()));
  items.push_back(StrCat("C", n, " < ", high.ToString()));
  return MustParseQuery(StrCat("chain", n, "() :- ", Join(items, ", ")));
}

}  // namespace workloads
}  // namespace cqac
