// The paper's worked examples as reusable workloads.
//
// Every example in the paper is materialized here once and shared by the
// test suite, the benchmark harness, and the example programs:
//   Example 1.1      — exportable-variable rewriting (v1 usable, v2 not);
//   Example 1.2      — the P_k chains with no finite-union MCR (Prop. 5.1);
//   Section 2        — the equivalent-queries decomposition (Figure 1);
//   Section 4.1      — the car-dealer schema and MS-algorithm example;
//   Example 4.1      — the lex-set/geq-set view (Figure 3);
//   Section 4.4      — the comparison-satisfaction example (v1..v4) and the
//                      full-algorithm example (p/s/r views);
//   Example 5.1      — the path queries Q1/Q2 with two containment mappings.
#ifndef CQAC_GEN_PAPER_WORKLOADS_H_
#define CQAC_GEN_PAPER_WORKLOADS_H_

#include "src/ir/query.h"
#include "src/ir/view.h"

namespace cqac {
namespace workloads {

// ---- Example 1.1 ----------------------------------------------------------
/// Q1(A) :- r(A), A < 4.
Query Example11Query();
/// v1(Y, Z) :- r(X), s(Y, Z), Y <= X, X <= Z   (usable: X exportable)
/// v2(Y, Z) :- r(X), s(Y, Z), Y <= X, X < Z    (unusable)
ViewSet Example11Views();
/// The paper's contained rewriting P(A) :- v1(A, A), A < 4.
Query Example11Rewriting();

// ---- Example 1.2 ----------------------------------------------------------
/// Q2() :- r(X, Z), s(Z, Y), X > 5, Y < 7.
Query Example12Query();
/// v1(X, Y) :- r(X, Z), s(Z, Y), Z > 5
/// v2(X, Y) :- r(X, Z), s(Z, Y), Z < 7
/// v3(X, Y) :- r(X, Z), s(Z, Y)
ViewSet Example12Views();
/// The contained rewriting P_k: a chain v1, v3^{k-1}, v2 of length k+1
/// (k >= 1), whose expansion threads the comparisons through shared hidden
/// variables.
Query Example12Pk(int k);

// ---- Section 4.1 (car dealer) ----------------------------------------------
/// q(C, L) :- car(C, A), loc(A, L), color(C, red).
Query CarDealerQuery();
/// v1(X, Y) :- car(X, D), loc(D, Y);  v2(W, Z) :- color(W, Z).
ViewSet CarDealerViews();

// ---- Example 4.1 (Figure 3) -------------------------------------------------
/// The 8-variable view whose inequality graph yields
/// S<=(v,X2) = {X1}, S>=(v,X2) = {X3}, S<=(v,X6) = {X5, X8}, S>=(v,X6) = {X7}.
Query Example41View();

// ---- Section 4.4 ------------------------------------------------------------
/// Q(A) :- p(A), A < 3 with the four single-subgoal views v1..v4
/// illustrating satisfaction cases (1), (2), (3) and failure.
Query Sec44CaseQuery();
/// The boolean variant q() :- p(A), A < 3: with A nondistinguished, views
/// v1 and v3 (which hide their p-variable) become usable, exercising
/// satisfaction cases (1) and (3) end to end.
Query Sec44CaseBooleanQuery();
ViewSet Sec44CaseViews();

/// The full-algorithm example: Q(A) :- p(A, B), r(C), A > 5, B > 3 with
/// v1(X1, X2, X3) :- p(X, Y), s(X1, X2, X3), X <= X1, X <= X2, X3 <= X,
///                   Y <= X3  and v2(U) :- r(U).
Query Sec44FullQuery();
ViewSet Sec44FullViews();

// ---- Example 5.1 -------------------------------------------------------------
/// Q1() :- e(X, Y), e(Y, Z), X > 5, Z < 8.
Query Example51Q1();
/// Q2() :- e(A,B), e(B,C), e(C,D), e(D,E), A > 6, E < 7.
Query Example51Q2();
/// A longer even-length chain with the same end comparisons (n edges).
Query Example51Chain(int n, const Rational& low, const Rational& high);

}  // namespace workloads
}  // namespace cqac

#endif  // CQAC_GEN_PAPER_WORKLOADS_H_
