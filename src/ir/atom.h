// Ordinary subgoals (Atom) and arithmetic comparisons (Comparison).
#ifndef CQAC_IR_ATOM_H_
#define CQAC_IR_ATOM_H_

#include <string>
#include <vector>

#include "src/ir/term.h"

namespace cqac {

/// An ordinary subgoal `p(t1, ..., tk)`. Arity 0 is allowed (boolean heads).
struct Atom {
  std::string predicate;
  std::vector<Term> args;

  Atom() = default;
  Atom(std::string pred, std::vector<Term> arguments)
      : predicate(std::move(pred)), args(std::move(arguments)) {}

  bool operator==(const Atom& o) const {
    return predicate == o.predicate && args == o.args;
  }

  size_t Hash() const {
    size_t h = std::hash<std::string>()(predicate);
    for (const Term& t : args)
      h = h * 1000003u + t.Hash();
    return h;
  }
};

/// Comparison operators. Parsing normalizes `>` / `>=` by swapping sides, so
/// stored comparisons only ever use kLt, kLe, or kEq.
enum class CompOp {
  kLt,  // <
  kLe,  // <=
  kEq,  // =  (eliminated by preprocessing, see constraints::Preprocess)
};

/// Returns "<", "<=" or "=".
inline const char* CompOpName(CompOp op) {
  switch (op) {
    case CompOp::kLt:
      return "<";
    case CompOp::kLe:
      return "<=";
    case CompOp::kEq:
      return "=";
  }
  return "?";
}

/// An arithmetic comparison `lhs op rhs` over a dense order.
///
/// Classification helpers follow Table 2 of the paper:
///  * SI  (semi-interval):      `X op c` or `c op X`, c a number;
///  * LSI (left semi-interval): upper bound on a variable (`X < c`, `X <= c`);
///  * RSI (right semi-interval): lower bound on a variable (`c < X`, `c <= X`).
struct Comparison {
  Term lhs;
  CompOp op;
  Term rhs;

  Comparison(Term l, CompOp o, Term r)
      : lhs(std::move(l)), op(o), rhs(std::move(r)) {}

  bool operator==(const Comparison& o) const {
    return lhs == o.lhs && op == o.op && rhs == o.rhs;
  }

  /// True when exactly one side is a variable and the other side a number.
  bool IsSemiInterval() const {
    if (op == CompOp::kEq) return false;
    if (lhs.is_var() && rhs.is_const() && rhs.value().is_number()) return true;
    if (rhs.is_var() && lhs.is_const() && lhs.value().is_number()) return true;
    return false;
  }

  /// True for `X < c` / `X <= c` (an upper bound on X).
  bool IsLsi() const {
    return IsSemiInterval() && lhs.is_var();
  }

  /// True for `c < X` / `c <= X` (a lower bound on X).
  bool IsRsi() const {
    return IsSemiInterval() && rhs.is_var();
  }

  /// True when both sides are variables.
  bool IsVarVar() const { return lhs.is_var() && rhs.is_var(); }

  size_t Hash() const {
    return lhs.Hash() * 31 + static_cast<size_t>(op) * 7 + rhs.Hash();
  }
};

}  // namespace cqac

#endif  // CQAC_IR_ATOM_H_
