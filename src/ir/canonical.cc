#include "src/ir/canonical.h"

#include <algorithm>
#include <map>
#include <vector>

namespace cqac {
namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

uint64_t FnvMix(uint64_t h, uint64_t v) {
  // Mix 8 bytes at a time; enough diffusion for signature hashing.
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xff;
    h *= kFnvPrime;
  }
  return h;
}

uint64_t HashString(uint64_t h, const std::string& s) {
  for (unsigned char c : s) {
    h ^= c;
    h *= kFnvPrime;
  }
  return h;
}

/// One side of a comparison as a name-free descriptor: a constant's text, or
/// a placeholder for "some variable" (refined later with colors).
std::string TermTag(const Term& t) {
  return t.is_const() ? "c:" + t.value().ToString() : "v";
}

/// Color refinement + individualization over a query's variables.
class Canonicalizer {
 public:
  explicit Canonicalizer(const Query& q) : q_(q), used_(q.num_vars(), false) {
    for (const Term& t : q_.head().args)
      if (t.is_var()) used_[t.var()] = true;
    for (const Atom& a : q_.body())
      for (const Term& t : a.args)
        if (t.is_var()) used_[t.var()] = true;
    for (const Comparison& c : q_.comparisons()) {
      if (c.lhs.is_var()) used_[c.lhs.var()] = true;
      if (c.rhs.is_var()) used_[c.rhs.var()] = true;
    }
    for (int v = 0; v < q_.num_vars(); ++v)
      if (used_[v]) vars_.push_back(v);
  }

  CanonicalForm Run() {
    std::vector<uint64_t> colors = InitialColors();
    Refine(&colors);
    std::string best;
    size_t leaves = 0;
    Branch(colors, &best, &leaves);
    CanonicalForm form;
    form.text = std::move(best);
    form.fingerprint = Fingerprint64(form.text);
    return form;
  }

 private:
  // Cap on individualization leaves; beyond it the search keeps the best
  // serialization found so far (still deterministic per input).
  static constexpr size_t kMaxLeaves = 128;

  std::vector<uint64_t> InitialColors() const {
    std::vector<uint64_t> colors(q_.num_vars(), 0);
    for (int v : vars_) {
      std::vector<std::string> occ;
      const auto& head = q_.head().args;
      for (size_t i = 0; i < head.size(); ++i)
        if (head[i].is_var() && head[i].var() == v)
          occ.push_back("H#" + std::to_string(i));
      for (const Atom& a : q_.body())
        for (size_t i = 0; i < a.args.size(); ++i)
          if (a.args[i].is_var() && a.args[i].var() == v)
            occ.push_back("B#" + a.predicate + "/" +
                          std::to_string(a.args.size()) + "#" +
                          std::to_string(i));
      for (const Comparison& c : q_.comparisons()) {
        if (c.lhs.is_var() && c.lhs.var() == v)
          occ.push_back(std::string("CL#") + CompOpName(c.op) + "#" +
                        TermTag(c.rhs));
        if (c.rhs.is_var() && c.rhs.var() == v)
          occ.push_back(std::string("CR#") + CompOpName(c.op) + "#" +
                        TermTag(c.lhs));
      }
      std::sort(occ.begin(), occ.end());
      uint64_t h = kFnvOffset;
      for (const std::string& s : occ) h = HashString(h, s + "|");
      colors[v] = h;
    }
    return colors;
  }

  // One WL round: fold each variable's neighborhood colors into its own.
  std::vector<uint64_t> RefineOnce(const std::vector<uint64_t>& colors) const {
    std::vector<uint64_t> next(colors.size(), 0);
    for (int v : vars_) {
      std::vector<uint64_t> ctx;
      for (const Atom& a : q_.body()) {
        bool has_v = false;
        for (const Term& t : a.args)
          if (t.is_var() && t.var() == v) has_v = true;
        if (!has_v) continue;
        for (size_t i = 0; i < a.args.size(); ++i) {
          uint64_t h = HashString(kFnvOffset, a.predicate);
          h = FnvMix(h, i);
          const Term& t = a.args[i];
          h = t.is_var() ? FnvMix(h, colors[t.var()])
                         : HashString(h, "c:" + t.value().ToString());
          ctx.push_back(h);
        }
      }
      for (const Comparison& c : q_.comparisons()) {
        auto side = [&](const Term& mine, const Term& other, const char* tag) {
          if (!(mine.is_var() && mine.var() == v)) return;
          uint64_t h = HashString(kFnvOffset, tag);
          h = HashString(h, CompOpName(c.op));
          h = other.is_var() ? FnvMix(h, colors[other.var()])
                             : HashString(h, "c:" + other.value().ToString());
          ctx.push_back(h);
        };
        side(c.lhs, c.rhs, "L");
        side(c.rhs, c.lhs, "R");
      }
      std::sort(ctx.begin(), ctx.end());
      uint64_t h = FnvMix(kFnvOffset, colors[v]);
      for (uint64_t x : ctx) h = FnvMix(h, x);
      next[v] = h;
    }
    return next;
  }

  // Refines to a fixpoint of the induced partition (bounded by |vars| rounds).
  void Refine(std::vector<uint64_t>* colors) const {
    for (size_t round = 0; round < vars_.size(); ++round) {
      std::vector<uint64_t> next = RefineOnce(*colors);
      if (PartitionOf(next) == PartitionOf(*colors)) break;
      *colors = std::move(next);
    }
  }

  // The ordered partition induced by colors: class index per variable.
  std::vector<int> PartitionOf(const std::vector<uint64_t>& colors) const {
    std::map<uint64_t, int> rank;
    for (int v : vars_) rank.emplace(colors[v], 0);
    int i = 0;
    for (auto& [color, r] : rank) r = i++;
    std::vector<int> part(colors.size(), -1);
    for (int v : vars_) part[v] = rank[colors[v]];
    return part;
  }

  // Individualization search: while some color class has >1 member, pick the
  // first such class (in color order) and try each member as "next smallest".
  void Branch(const std::vector<uint64_t>& colors, std::string* best,
              size_t* leaves) const {
    if (*leaves >= kMaxLeaves) return;
    // Find the first non-singleton class in color order.
    std::map<uint64_t, std::vector<int>> classes;
    for (int v : vars_) classes[colors[v]].push_back(v);
    const std::vector<int>* tied = nullptr;
    for (const auto& [color, members] : classes)
      if (members.size() > 1) {
        tied = &members;
        break;
      }
    if (tied == nullptr) {
      ++*leaves;
      std::string text = Serialize(colors);
      if (best->empty() || text < *best) *best = std::move(text);
      return;
    }
    for (int v : *tied) {
      std::vector<uint64_t> next = colors;
      next[v] = FnvMix(next[v], 0x9e3779b97f4a7c15ULL);  // individualize v
      Refine(&next);
      Branch(next, best, leaves);
      if (*leaves >= kMaxLeaves) return;
    }
  }

  // Serializes under the total variable order given by (color, -) — callers
  // ensure colors are discrete (all classes singleton).
  std::string Serialize(const std::vector<uint64_t>& colors) const {
    std::vector<int> order = vars_;
    std::sort(order.begin(), order.end(),
              [&](int a, int b) { return colors[a] < colors[b]; });
    std::vector<int> index(colors.size(), -1);
    for (size_t i = 0; i < order.size(); ++i)
      index[order[i]] = static_cast<int>(i);

    auto term = [&](const Term& t) {
      if (t.is_var()) return "?" + std::to_string(index[t.var()]);
      if (t.value().is_number()) return t.value().number().ToString();
      return "'" + t.value().symbol();
    };
    auto atom = [&](const Atom& a) {
      std::string s = a.predicate + "(";
      for (size_t i = 0; i < a.args.size(); ++i) {
        if (i) s += ",";
        s += term(a.args[i]);
      }
      return s + ")";
    };

    std::vector<std::string> body;
    for (const Atom& a : q_.body()) body.push_back(atom(a));
    std::sort(body.begin(), body.end());

    std::vector<std::string> comps;
    for (const Comparison& c : q_.comparisons()) {
      std::string l = term(c.lhs), r = term(c.rhs);
      // `=` is symmetric: order the sides canonically.
      if (c.op == CompOp::kEq && r < l) std::swap(l, r);
      comps.push_back(l + CompOpName(c.op) + r);
    }
    std::sort(comps.begin(), comps.end());

    std::string out = atom(q_.head());
    out += ":-";
    for (size_t i = 0; i < body.size(); ++i) {
      if (i) out += ",";
      out += body[i];
    }
    out += ";";
    for (size_t i = 0; i < comps.size(); ++i) {
      if (i) out += ",";
      out += comps[i];
    }
    return out;
  }

  const Query& q_;
  std::vector<bool> used_;
  std::vector<int> vars_;  // ids of variables that actually occur
};

}  // namespace

uint64_t Fingerprint64(const std::string& bytes) {
  return HashString(kFnvOffset, bytes);
}

CanonicalForm Canonicalize(const Query& q) {
  return Canonicalizer(q).Run();
}

uint64_t CanonicalFingerprint(const Query& q) {
  return Canonicalize(q).fingerprint;
}

}  // namespace cqac
