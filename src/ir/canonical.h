// Renaming-invariant canonical forms and 64-bit fingerprints for queries.
//
// Two queries that differ only by variable renaming and/or by the order of
// body subgoals / comparisons canonicalize to the same text (and therefore
// the same fingerprint). The canonical form is the cache key the engine
// layer (src/engine) uses to memoize containment decisions: the text makes
// collisions detectable (exact comparison), the fingerprint makes lookups
// cheap.
//
// Canonicalization does NOT preprocess: callers that want comparison-implied
// equalities collapsed (the normalization of Section 2) must run
// constraints::Preprocess first — which is exactly what the containment
// layer does before interning.
//
// Algorithm: Weisfeiler-Leman-style color refinement over the variables
// (initial colors from name-free occurrence signatures), followed by
// individualization branching on residual color ties, keeping the
// lexicographically smallest serialization. Branching is capped; on cap the
// result is still deterministic for a fixed input, merely no longer
// guaranteed minimal across renamings (a cache-hit-rate concern, never a
// correctness one — cache keys are verified by exact text).
#ifndef CQAC_IR_CANONICAL_H_
#define CQAC_IR_CANONICAL_H_

#include <cstdint>
#include <string>

#include "src/ir/query.h"

namespace cqac {

/// A canonical serialization plus its 64-bit fingerprint.
struct CanonicalForm {
  std::string text;
  uint64_t fingerprint = 0;

  bool operator==(const CanonicalForm& o) const { return text == o.text; }
};

/// Canonicalizes `q`: canonical variable numbering, sorted subgoals, sorted
/// normalized comparisons. Invariant under variable renaming and under
/// permutation of body atoms / comparisons.
CanonicalForm Canonicalize(const Query& q);

/// Convenience: just the fingerprint.
uint64_t CanonicalFingerprint(const Query& q);

/// FNV-1a over a byte string; the fingerprint function used throughout the
/// engine layer.
uint64_t Fingerprint64(const std::string& bytes);

}  // namespace cqac

#endif  // CQAC_IR_CANONICAL_H_
