#include "src/ir/expansion.h"

#include "src/base/strings.h"
#include "src/ir/substitution.h"

namespace cqac {

Result<Query> ExpandRewriting(const Query& p, const ViewSet& views,
                              const ExpansionOptions& options) {
  Query out;
  out.head() = p.head();
  for (const std::string& name : p.var_names()) out.FindOrAddVariable(name);
  out.comparisons() = p.comparisons();

  for (const Atom& atom : p.body()) {
    const Query* view = views.Find(atom.predicate);
    if (view == nullptr) {
      if (!options.allow_base_atoms)
        return Status::InvalidArgument(
            StrCat("subgoal '", atom.predicate,
                   "' is not a view; rewritings must use only views"));
      out.AddBodyAtom(atom);
      continue;
    }
    if (view->head().args.size() != atom.args.size())
      return Status::InvalidArgument(
          StrCat("arity mismatch for view '", atom.predicate, "': used with ",
                 atom.args.size(), " args, defined with ",
                 view->head().args.size()));

    // Map view variables to terms of `out`.
    VarMap map(view->num_vars());
    for (size_t j = 0; j < atom.args.size(); ++j) {
      const Term& head_term = view->head().args[j];
      const Term& used_term = atom.args[j];  // term of p == term of out
      if (head_term.is_var()) {
        if (!map.Bind(head_term.var(), used_term)) {
          // The same view head variable is used at two positions with
          // different rewriting terms (head homomorphism at work): the two
          // rewriting terms must be equal.
          out.AddComparison(
              Comparison(map.Get(head_term.var()), CompOp::kEq, used_term));
        }
      } else {
        // A constant in the view head must equal the term the rewriting
        // supplies; expressed as an explicit `=` comparison (which is
        // inconsistent when two distinct constants meet).
        out.AddComparison(Comparison(used_term, CompOp::kEq, head_term));
      }
    }
    // Fresh variables for nondistinguished view variables.
    for (int v = 0; v < view->num_vars(); ++v) {
      if (map.IsBound(v)) continue;
      int fresh = out.AddFreshVariable(
          StrCat(atom.predicate, "_", view->VarName(v)));
      map.ForceBind(v, Term::Var(fresh));
    }
    for (const Atom& body_atom : view->body())
      out.AddBodyAtom(map.ApplyToAtom(body_atom));
    for (const Comparison& c : view->comparisons())
      out.AddComparison(map.ApplyToComparison(c));
  }
  return out;
}

}  // namespace cqac
