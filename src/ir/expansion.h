// View expansion (Definition 2.1 of the paper).
//
// The expansion P^exp of a rewriting P over views V replaces every view
// subgoal by the view's body, with nondistinguished view variables renamed to
// fresh variables. Repeated head variables and head constants generate
// explicit `=` comparisons, which the constraints module later collapses.
#ifndef CQAC_IR_EXPANSION_H_
#define CQAC_IR_EXPANSION_H_

#include "src/base/status.h"
#include "src/ir/query.h"
#include "src/ir/view.h"

namespace cqac {

/// Options for ExpandRewriting.
struct ExpansionOptions {
  /// When true, body atoms whose predicate is not a view name are kept as
  /// base-relation atoms instead of causing an error. Rewritings in the
  /// paper's sense use only view atoms, so the default is strict.
  bool allow_base_atoms = false;
};

/// Computes P^exp for rewriting `p` over `views`.
///
/// The result keeps `p`'s head and variables; view bodies are inlined with
/// fresh variables for nondistinguished view variables. Comparisons of `p`
/// and of the inlined views are concatenated. Returns InvalidArgument for
/// unknown predicates (unless allow_base_atoms) or arity mismatches.
Result<Query> ExpandRewriting(const Query& p, const ViewSet& views,
                              const ExpansionOptions& options = {});

}  // namespace cqac

#endif  // CQAC_IR_EXPANSION_H_
