#include "src/ir/json.h"

#include <cstdio>

#include "src/base/strings.h"

namespace cqac {

std::string JsonQuote(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

std::string TermToJson(const Query& owner, const Term& t) {
  if (t.is_var())
    return StrCat("{\"kind\":\"var\",\"name\":",
                  JsonQuote(owner.VarName(t.var())), "}");
  if (t.value().is_number())
    return StrCat("{\"kind\":\"number\",\"value\":",
                  JsonQuote(t.value().number().ToString()), "}");
  return StrCat("{\"kind\":\"symbol\",\"value\":",
                JsonQuote(t.value().symbol()), "}");
}

namespace {

std::string AtomToJson(const Query& owner, const Atom& a) {
  std::vector<std::string> args;
  args.reserve(a.args.size());
  for (const Term& t : a.args) args.push_back(TermToJson(owner, t));
  return StrCat("{\"predicate\":", JsonQuote(a.predicate), ",\"args\":[",
                Join(args, ","), "]}");
}

std::string ComparisonToJson(const Query& owner, const Comparison& c) {
  return StrCat("{\"lhs\":", TermToJson(owner, c.lhs), ",\"op\":",
                JsonQuote(CompOpName(c.op)), ",\"rhs\":",
                TermToJson(owner, c.rhs), "}");
}

}  // namespace

std::string QueryToJson(const Query& q) {
  std::vector<std::string> body;
  body.reserve(q.body().size());
  for (const Atom& a : q.body()) body.push_back(AtomToJson(q, a));
  std::vector<std::string> comps;
  comps.reserve(q.comparisons().size());
  for (const Comparison& c : q.comparisons())
    comps.push_back(ComparisonToJson(q, c));
  return StrCat("{\"head\":", AtomToJson(q, q.head()), ",\"body\":[",
                Join(body, ","), "],\"comparisons\":[", Join(comps, ","),
                "]}");
}

std::string UnionQueryToJson(const UnionQuery& u) {
  std::vector<std::string> parts;
  parts.reserve(u.disjuncts.size());
  for (const Query& q : u.disjuncts) parts.push_back(QueryToJson(q));
  return StrCat("{\"disjuncts\":[", Join(parts, ","), "]}");
}

std::string ProgramToJson(const Program& p) {
  std::vector<std::string> rules;
  rules.reserve(p.rules().size());
  for (const Rule& r : p.rules()) rules.push_back(QueryToJson(r));
  return StrCat("{\"query_predicate\":", JsonQuote(p.query_predicate()),
                ",\"rules\":[", Join(rules, ","), "]}");
}

std::string ViewSetToJson(const ViewSet& v) {
  std::vector<std::string> views;
  views.reserve(v.size());
  for (const Query& q : v.views()) views.push_back(QueryToJson(q));
  return StrCat("{\"views\":[", Join(views, ","), "]}");
}

}  // namespace cqac
