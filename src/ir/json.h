// JSON serialization of the IR (writer).
//
// Machine-readable output for tooling: rewritings, programs, and explain
// results can be consumed by external optimizers and dashboards without
// parsing the Datalog syntax. Hand-rolled writer, no external dependency;
// strings are escaped per RFC 8259. Import is intentionally out of scope —
// the textual Datalog syntax (src/ir/parser.h) is the interchange format
// for inputs.
#ifndef CQAC_IR_JSON_H_
#define CQAC_IR_JSON_H_

#include <string>

#include "src/ir/program.h"
#include "src/ir/query.h"
#include "src/ir/view.h"

namespace cqac {

/// Escapes and quotes a string for JSON.
std::string JsonQuote(const std::string& s);

/// {"kind":"var","name":"X"} | {"kind":"number","value":"7/2"} |
/// {"kind":"symbol","value":"red"}
std::string TermToJson(const Query& owner, const Term& t);

/// {"head":{...},"body":[...],"comparisons":[...]}
std::string QueryToJson(const Query& q);

/// {"disjuncts":[...]}
std::string UnionQueryToJson(const UnionQuery& u);

/// {"query_predicate":"q","rules":[...]}
std::string ProgramToJson(const Program& p);

/// {"views":[...]}
std::string ViewSetToJson(const ViewSet& v);

}  // namespace cqac

#endif  // CQAC_IR_JSON_H_
