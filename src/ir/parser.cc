#include "src/ir/parser.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

#include "src/base/strings.h"

namespace cqac {
namespace {

enum class TokKind {
  kIdent,    // identifier (variable, symbol or predicate)
  kNumber,   // numeric literal
  kLParen,
  kRParen,
  kComma,
  kArrow,    // :-
  kDot,
  kLt,
  kLe,
  kGt,
  kGe,
  kEq,
  kEnd,
};

struct Token {
  TokKind kind;
  std::string text;
  size_t pos = 0;
};

class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) {}

  Status Tokenize(std::vector<Token>* out) {
    size_t i = 0;
    const size_t n = text_.size();
    while (i < n) {
      char c = text_[i];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
        continue;
      }
      if (c == '%') {  // comment to end of line
        while (i < n && text_[i] != '\n') ++i;
        continue;
      }
      size_t start = i;
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        while (i < n && (std::isalnum(static_cast<unsigned char>(text_[i])) ||
                         text_[i] == '_'))
          ++i;
        out->push_back({TokKind::kIdent, text_.substr(start, i - start), start});
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) ||
          (c == '-' && i + 1 < n &&
           std::isdigit(static_cast<unsigned char>(text_[i + 1])))) {
        ++i;  // sign or first digit
        while (i < n && std::isdigit(static_cast<unsigned char>(text_[i]))) ++i;
        // Decimal point followed by a digit belongs to the number; a bare
        // '.' is a rule terminator.
        if (i + 1 < n && text_[i] == '.' &&
            std::isdigit(static_cast<unsigned char>(text_[i + 1]))) {
          ++i;
          while (i < n && std::isdigit(static_cast<unsigned char>(text_[i])))
            ++i;
        } else if (i + 1 < n && text_[i] == '/' &&
                   std::isdigit(static_cast<unsigned char>(text_[i + 1]))) {
          ++i;
          while (i < n && std::isdigit(static_cast<unsigned char>(text_[i])))
            ++i;
        }
        out->push_back(
            {TokKind::kNumber, text_.substr(start, i - start), start});
        continue;
      }
      switch (c) {
        case '(':
          out->push_back({TokKind::kLParen, "(", start});
          ++i;
          continue;
        case ')':
          out->push_back({TokKind::kRParen, ")", start});
          ++i;
          continue;
        case ',':
          out->push_back({TokKind::kComma, ",", start});
          ++i;
          continue;
        case '.':
          out->push_back({TokKind::kDot, ".", start});
          ++i;
          continue;
        case ':':
          if (i + 1 < n && text_[i + 1] == '-') {
            out->push_back({TokKind::kArrow, ":-", start});
            i += 2;
            continue;
          }
          return Err(start, "expected ':-'");
        case '<':
          if (i + 1 < n && text_[i + 1] == '=') {
            out->push_back({TokKind::kLe, "<=", start});
            i += 2;
          } else {
            out->push_back({TokKind::kLt, "<", start});
            ++i;
          }
          continue;
        case '>':
          if (i + 1 < n && text_[i + 1] == '=') {
            out->push_back({TokKind::kGe, ">=", start});
            i += 2;
          } else {
            out->push_back({TokKind::kGt, ">", start});
            ++i;
          }
          continue;
        case '=':
          out->push_back({TokKind::kEq, "=", start});
          ++i;
          continue;
        case '!':
          return Err(start,
                     "'!=' comparisons are outside the CQAC fragment "
                     "(the paper's theta is in {<, <=, >, >=})");
        default:
          return Err(start, StrCat("unexpected character '", c, "'"));
      }
    }
    out->push_back({TokKind::kEnd, "", n});
    return Status::OK();
  }

 private:
  Status Err(size_t pos, const std::string& msg) {
    return Status::InvalidArgument(
        StrCat("at offset ", pos, ": ", msg));
  }
  const std::string& text_;
};

bool IsVariableName(const std::string& ident) {
  return !ident.empty() &&
         (std::isupper(static_cast<unsigned char>(ident[0])) ||
          ident[0] == '_');
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : toks_(std::move(tokens)) {}

  Result<std::vector<Query>> ParseProgram() {
    std::vector<Query> rules;
    while (!At(TokKind::kEnd)) {
      Query q;
      CQAC_RETURN_IF_ERROR(ParseRuleInto(&q));
      rules.push_back(std::move(q));
      if (At(TokKind::kDot)) ++i_;
    }
    return rules;
  }

  Result<Query> ParseSingle() {
    Query q;
    CQAC_RETURN_IF_ERROR(ParseRuleInto(&q));
    if (At(TokKind::kDot)) ++i_;
    if (!At(TokKind::kEnd))
      return Status::InvalidArgument(
          StrCat("trailing input after rule at offset ", Cur().pos));
    return q;
  }

 private:
  const Token& Cur() const { return toks_[i_]; }
  bool At(TokKind k) const { return Cur().kind == k; }

  Status Expect(TokKind k, const char* what) {
    if (!At(k))
      return Status::InvalidArgument(
          StrCat("at offset ", Cur().pos, ": expected ", what, ", got '",
                 Cur().text, "'"));
    ++i_;
    return Status::OK();
  }

  Status ParseRuleInto(Query* q) {
    CQAC_RETURN_IF_ERROR(ParseAtom(q, &q->head()));
    if (At(TokKind::kDot) || At(TokKind::kEnd)) return Status::OK();  // fact
    CQAC_RETURN_IF_ERROR(Expect(TokKind::kArrow, "':-'"));
    while (true) {
      CQAC_RETURN_IF_ERROR(ParseItem(q));
      if (At(TokKind::kComma)) {
        ++i_;
        continue;
      }
      break;
    }
    return Status::OK();
  }

  // An item is an atom or a comparison; both can begin with an identifier,
  // so we look ahead: IDENT '(' starts an atom.
  Status ParseItem(Query* q) {
    if (At(TokKind::kIdent) && i_ + 1 < toks_.size() &&
        toks_[i_ + 1].kind == TokKind::kLParen) {
      Atom a;
      CQAC_RETURN_IF_ERROR(ParseAtom(q, &a));
      q->AddBodyAtom(std::move(a));
      return Status::OK();
    }
    return ParseComparison(q);
  }

  Status ParseAtom(Query* q, Atom* out) {
    if (!At(TokKind::kIdent))
      return Status::InvalidArgument(
          StrCat("at offset ", Cur().pos, ": expected predicate name"));
    out->predicate = Cur().text;
    ++i_;
    CQAC_RETURN_IF_ERROR(Expect(TokKind::kLParen, "'('"));
    out->args.clear();
    if (At(TokKind::kRParen)) {
      ++i_;
      return Status::OK();
    }
    while (true) {
      Term t = Term::Const(Value(std::string("?")));
      CQAC_RETURN_IF_ERROR(ParseTerm(q, &t));
      out->args.push_back(t);
      if (At(TokKind::kComma)) {
        ++i_;
        continue;
      }
      break;
    }
    return Expect(TokKind::kRParen, "')'");
  }

  Status ParseTerm(Query* q, Term* out) {
    if (At(TokKind::kIdent)) {
      const std::string& name = Cur().text;
      if (IsVariableName(name)) {
        *out = Term::Var(q->FindOrAddVariable(name));
      } else {
        *out = Term::Const(Value(name));
      }
      ++i_;
      return Status::OK();
    }
    if (At(TokKind::kNumber)) {
      Result<Rational> r = Rational::Parse(Cur().text);
      if (!r.ok()) return r.status();
      *out = Term::Const(Value(std::move(r).value()));
      ++i_;
      return Status::OK();
    }
    return Status::InvalidArgument(
        StrCat("at offset ", Cur().pos, ": expected term, got '", Cur().text,
               "'"));
  }

  Status ParseComparison(Query* q) {
    Term lhs = Term::Const(Value(std::string("?")));
    CQAC_RETURN_IF_ERROR(ParseTerm(q, &lhs));
    TokKind op = Cur().kind;
    if (op != TokKind::kLt && op != TokKind::kLe && op != TokKind::kGt &&
        op != TokKind::kGe && op != TokKind::kEq)
      return Status::InvalidArgument(
          StrCat("at offset ", Cur().pos, ": expected comparison operator"));
    ++i_;
    Term rhs = Term::Const(Value(std::string("?")));
    CQAC_RETURN_IF_ERROR(ParseTerm(q, &rhs));
    // Normalize > and >= by swapping sides.
    switch (op) {
      case TokKind::kLt:
        q->AddComparison(Comparison(lhs, CompOp::kLt, rhs));
        break;
      case TokKind::kLe:
        q->AddComparison(Comparison(lhs, CompOp::kLe, rhs));
        break;
      case TokKind::kGt:
        q->AddComparison(Comparison(rhs, CompOp::kLt, lhs));
        break;
      case TokKind::kGe:
        q->AddComparison(Comparison(rhs, CompOp::kLe, lhs));
        break;
      case TokKind::kEq:
        q->AddComparison(Comparison(lhs, CompOp::kEq, rhs));
        break;
      default:
        return Status::Internal("unreachable comparison op");
    }
    return Status::OK();
  }

  std::vector<Token> toks_;
  size_t i_ = 0;
};

}  // namespace

Result<Query> ParseQuery(const std::string& text) {
  std::vector<Token> toks;
  Status st = Lexer(text).Tokenize(&toks);
  if (!st.ok()) return st;
  return Parser(std::move(toks)).ParseSingle();
}

Result<std::vector<Query>> ParseRules(const std::string& text) {
  std::vector<Token> toks;
  Status st = Lexer(text).Tokenize(&toks);
  if (!st.ok()) return st;
  return Parser(std::move(toks)).ParseProgram();
}

Query MustParseQuery(const std::string& text) {
  Result<Query> r = ParseQuery(text);
  if (!r.ok()) {
    std::fprintf(stderr, "MustParseQuery(\"%s\"): %s\n", text.c_str(),
                 r.status().ToString().c_str());
    std::abort();
  }
  return std::move(r).value();
}

std::vector<Query> MustParseRules(const std::string& text) {
  Result<std::vector<Query>> r = ParseRules(text);
  if (!r.ok()) {
    std::fprintf(stderr, "MustParseRules: %s\n", r.status().ToString().c_str());
    std::abort();
  }
  return std::move(r).value();
}

}  // namespace cqac
