#include "src/ir/parser.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

#include "src/base/strings.h"

namespace cqac {
namespace {

enum class TokKind {
  kIdent,    // identifier (variable, symbol or predicate)
  kNumber,   // numeric literal
  kLParen,
  kRParen,
  kComma,
  kArrow,    // :-
  kDot,
  kLt,
  kLe,
  kGt,
  kGe,
  kEq,
  kEnd,
};

struct Token {
  TokKind kind;
  std::string text;
  size_t pos = 0;  // byte offset of the first character
  size_t end = 0;  // byte offset one past the last character
};

class Lexer {
 public:
  Lexer(const std::string& text, const LineMap& lines)
      : text_(text), lines_(lines) {}

  Status Tokenize(std::vector<Token>* out) {
    size_t i = 0;
    const size_t n = text_.size();
    while (i < n) {
      char c = text_[i];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
        continue;
      }
      if (c == '%') {  // comment to end of line
        while (i < n && text_[i] != '\n') ++i;
        continue;
      }
      size_t start = i;
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        while (i < n && (std::isalnum(static_cast<unsigned char>(text_[i])) ||
                         text_[i] == '_'))
          ++i;
        out->push_back(
            {TokKind::kIdent, text_.substr(start, i - start), start, i});
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) ||
          (c == '-' && i + 1 < n &&
           std::isdigit(static_cast<unsigned char>(text_[i + 1])))) {
        ++i;  // sign or first digit
        while (i < n && std::isdigit(static_cast<unsigned char>(text_[i]))) ++i;
        // Decimal point followed by a digit belongs to the number; a bare
        // '.' is a rule terminator.
        if (i + 1 < n && text_[i] == '.' &&
            std::isdigit(static_cast<unsigned char>(text_[i + 1]))) {
          ++i;
          while (i < n && std::isdigit(static_cast<unsigned char>(text_[i])))
            ++i;
        } else if (i + 1 < n && text_[i] == '/' &&
                   std::isdigit(static_cast<unsigned char>(text_[i + 1]))) {
          ++i;
          while (i < n && std::isdigit(static_cast<unsigned char>(text_[i])))
            ++i;
        }
        out->push_back(
            {TokKind::kNumber, text_.substr(start, i - start), start, i});
        continue;
      }
      switch (c) {
        case '(':
          out->push_back({TokKind::kLParen, "(", start, start + 1});
          ++i;
          continue;
        case ')':
          out->push_back({TokKind::kRParen, ")", start, start + 1});
          ++i;
          continue;
        case ',':
          out->push_back({TokKind::kComma, ",", start, start + 1});
          ++i;
          continue;
        case '.':
          out->push_back({TokKind::kDot, ".", start, start + 1});
          ++i;
          continue;
        case ':':
          if (i + 1 < n && text_[i + 1] == '-') {
            out->push_back({TokKind::kArrow, ":-", start, start + 2});
            i += 2;
            continue;
          }
          return Err(start, "expected ':-'");
        case '<':
          if (i + 1 < n && text_[i + 1] == '=') {
            out->push_back({TokKind::kLe, "<=", start, start + 2});
            i += 2;
          } else {
            out->push_back({TokKind::kLt, "<", start, start + 1});
            ++i;
          }
          continue;
        case '>':
          if (i + 1 < n && text_[i + 1] == '=') {
            out->push_back({TokKind::kGe, ">=", start, start + 2});
            i += 2;
          } else {
            out->push_back({TokKind::kGt, ">", start, start + 1});
            ++i;
          }
          continue;
        case '=':
          out->push_back({TokKind::kEq, "=", start, start + 1});
          ++i;
          continue;
        case '!':
          return Err(start,
                     "'!=' comparisons are outside the CQAC fragment "
                     "(the paper's theta is in {<, <=, >, >=})");
        default:
          return Err(start, StrCat("unexpected character '", c, "'"));
      }
    }
    out->push_back({TokKind::kEnd, "", n, n});
    return Status::OK();
  }

 private:
  Status Err(size_t pos, const std::string& msg) {
    return Status::InvalidArgument(
        StrCat("at ", lines_.At(pos).ToString(), ": ", msg));
  }
  const std::string& text_;
  const LineMap& lines_;
};

bool IsVariableName(const std::string& ident) {
  return !ident.empty() &&
         (std::isupper(static_cast<unsigned char>(ident[0])) ||
          ident[0] == '_');
}

class Parser {
 public:
  Parser(std::vector<Token> tokens, const LineMap& lines)
      : toks_(std::move(tokens)), lines_(lines) {}

  Result<std::vector<ParsedQuery>> ParseProgram() {
    std::vector<ParsedQuery> rules;
    while (!At(TokKind::kEnd)) {
      ParsedQuery pq;
      CQAC_RETURN_IF_ERROR(ParseRuleInto(&pq));
      rules.push_back(std::move(pq));
      if (At(TokKind::kDot)) ++i_;
    }
    return rules;
  }

  ParsedProgram ParseProgramRecovering() {
    ParsedProgram out;
    while (!At(TokKind::kEnd)) {
      ParsedQuery pq;
      Status st = ParseRuleInto(&pq);
      if (st.ok()) {
        out.rules.push_back(std::move(pq));
        if (At(TokKind::kDot)) ++i_;
        continue;
      }
      // The Status message carries an "at line:col: " prefix for callers
      // that only see the string; the diagnostic's span already encodes the
      // position, so strip the prefix rather than print it twice.
      std::string msg = st.message();
      if (msg.rfind("at ", 0) == 0) {
        size_t colon = msg.find(": ", 3);
        if (colon != std::string::npos) msg = msg.substr(colon + 2);
      }
      out.errors.push_back({SpanOf(Cur()), std::move(msg)});
      // Recover: skip to just past the next '.' and try the next rule.
      while (!At(TokKind::kEnd) && !At(TokKind::kDot)) ++i_;
      if (At(TokKind::kDot)) ++i_;
    }
    return out;
  }

  Result<ParsedQuery> ParseSingle() {
    ParsedQuery pq;
    CQAC_RETURN_IF_ERROR(ParseRuleInto(&pq));
    if (At(TokKind::kDot)) ++i_;
    if (!At(TokKind::kEnd))
      return Status::InvalidArgument(
          StrCat("trailing input after rule at ",
                 lines_.At(Cur().pos).ToString()));
    return pq;
  }

 private:
  const Token& Cur() const { return toks_[i_]; }
  bool At(TokKind k) const { return Cur().kind == k; }

  SourceSpan SpanOf(const Token& t) const {
    return {lines_.At(t.pos), lines_.At(t.end)};
  }
  SourceSpan SpanBetween(const Token& from, const Token& to) const {
    return {lines_.At(from.pos), lines_.At(to.end)};
  }

  Status ErrHere(const std::string& msg) {
    return Status::InvalidArgument(
        StrCat("at ", lines_.At(Cur().pos).ToString(), ": ", msg));
  }

  Status Expect(TokKind k, const char* what) {
    if (!At(k))
      return ErrHere(StrCat("expected ", what, ", got '",
                            Cur().text.empty() ? "end of input" : Cur().text,
                            "'"));
    ++i_;
    return Status::OK();
  }

  Status ParseRuleInto(ParsedQuery* pq) {
    Query* q = &pq->query;
    QuerySourceInfo* info = &pq->info;
    const Token& first = Cur();
    CQAC_RETURN_IF_ERROR(ParseAtom(pq, &q->head(), &info->head));
    if (At(TokKind::kDot) || At(TokKind::kEnd)) {  // fact
      info->rule = SpanBetween(first, toks_[i_ > 0 ? i_ - 1 : 0]);
      return Status::OK();
    }
    CQAC_RETURN_IF_ERROR(Expect(TokKind::kArrow, "':-'"));
    while (true) {
      CQAC_RETURN_IF_ERROR(ParseItem(pq));
      if (At(TokKind::kComma)) {
        ++i_;
        continue;
      }
      break;
    }
    info->rule = SpanBetween(first, toks_[i_ > 0 ? i_ - 1 : 0]);
    return Status::OK();
  }

  // An item is an atom or a comparison; both can begin with an identifier,
  // so we look ahead: IDENT '(' starts an atom.
  Status ParseItem(ParsedQuery* pq) {
    if (At(TokKind::kIdent) && i_ + 1 < toks_.size() &&
        toks_[i_ + 1].kind == TokKind::kLParen) {
      Atom a;
      SourceSpan span;
      CQAC_RETURN_IF_ERROR(ParseAtom(pq, &a, &span));
      pq->query.AddBodyAtom(std::move(a));
      pq->info.body.push_back(span);
      return Status::OK();
    }
    return ParseComparison(pq);
  }

  Status ParseAtom(ParsedQuery* pq, Atom* out, SourceSpan* span) {
    const Token& first = Cur();
    if (!At(TokKind::kIdent)) return ErrHere("expected predicate name");
    out->predicate = Cur().text;
    ++i_;
    CQAC_RETURN_IF_ERROR(Expect(TokKind::kLParen, "'('"));
    out->args.clear();
    if (At(TokKind::kRParen)) {
      *span = SpanBetween(first, Cur());
      ++i_;
      return Status::OK();
    }
    while (true) {
      Term t = Term::Const(Value(std::string("?")));
      CQAC_RETURN_IF_ERROR(ParseTerm(pq, &t));
      out->args.push_back(t);
      if (At(TokKind::kComma)) {
        ++i_;
        continue;
      }
      break;
    }
    if (!At(TokKind::kRParen)) return Expect(TokKind::kRParen, "')'");
    *span = SpanBetween(first, Cur());
    ++i_;
    return Status::OK();
  }

  Status ParseTerm(ParsedQuery* pq, Term* out) {
    Query* q = &pq->query;
    if (At(TokKind::kIdent)) {
      const std::string& name = Cur().text;
      if (IsVariableName(name)) {
        bool fresh = q->FindVariable(name) < 0;
        *out = Term::Var(q->FindOrAddVariable(name));
        if (fresh) pq->info.var_first_use.push_back(SpanOf(Cur()));
      } else {
        *out = Term::Const(Value(name));
      }
      ++i_;
      return Status::OK();
    }
    if (At(TokKind::kNumber)) {
      Result<Rational> r = Rational::Parse(Cur().text);
      if (!r.ok())
        return ErrHere(StrCat("bad number '", Cur().text, "': ",
                              r.status().message()));
      *out = Term::Const(Value(std::move(r).value()));
      ++i_;
      return Status::OK();
    }
    return ErrHere(StrCat("expected term, got '",
                          Cur().text.empty() ? "end of input" : Cur().text,
                          "'"));
  }

  Status ParseComparison(ParsedQuery* pq) {
    Query* q = &pq->query;
    const Token& first = Cur();
    Term lhs = Term::Const(Value(std::string("?")));
    CQAC_RETURN_IF_ERROR(ParseTerm(pq, &lhs));
    TokKind op = Cur().kind;
    if (op != TokKind::kLt && op != TokKind::kLe && op != TokKind::kGt &&
        op != TokKind::kGe && op != TokKind::kEq)
      return ErrHere("expected comparison operator");
    ++i_;
    Term rhs = Term::Const(Value(std::string("?")));
    CQAC_RETURN_IF_ERROR(ParseTerm(pq, &rhs));
    // Normalize > and >= by swapping sides.
    switch (op) {
      case TokKind::kLt:
        q->AddComparison(Comparison(lhs, CompOp::kLt, rhs));
        break;
      case TokKind::kLe:
        q->AddComparison(Comparison(lhs, CompOp::kLe, rhs));
        break;
      case TokKind::kGt:
        q->AddComparison(Comparison(rhs, CompOp::kLt, lhs));
        break;
      case TokKind::kGe:
        q->AddComparison(Comparison(rhs, CompOp::kLe, lhs));
        break;
      case TokKind::kEq:
        q->AddComparison(Comparison(lhs, CompOp::kEq, rhs));
        break;
      default:
        return Status::Internal("unreachable comparison op");
    }
    pq->info.comparisons.push_back(
        SpanBetween(first, toks_[i_ > 0 ? i_ - 1 : 0]));
    return Status::OK();
  }

  std::vector<Token> toks_;
  const LineMap& lines_;
  size_t i_ = 0;
};

}  // namespace

Result<Query> ParseQuery(const std::string& text) {
  CQAC_ASSIGN_OR_RETURN(ParsedQuery pq, ParseQueryWithInfo(text));
  return std::move(pq.query);
}

Result<ParsedQuery> ParseQueryWithInfo(const std::string& text) {
  LineMap lines(text);
  std::vector<Token> toks;
  Status st = Lexer(text, lines).Tokenize(&toks);
  if (!st.ok()) return st;
  return Parser(std::move(toks), lines).ParseSingle();
}

Result<std::vector<Query>> ParseRules(const std::string& text) {
  LineMap lines(text);
  std::vector<Token> toks;
  Status st = Lexer(text, lines).Tokenize(&toks);
  if (!st.ok()) return st;
  CQAC_ASSIGN_OR_RETURN(std::vector<ParsedQuery> parsed,
                        Parser(std::move(toks), lines).ParseProgram());
  std::vector<Query> out;
  out.reserve(parsed.size());
  for (ParsedQuery& pq : parsed) out.push_back(std::move(pq.query));
  return out;
}

ParsedProgram ParseProgramWithDiagnostics(const std::string& text) {
  LineMap lines(text);
  std::vector<Token> toks;
  Status st = Lexer(text, lines).Tokenize(&toks);
  if (!st.ok()) {
    // Lexing stops at the first bad character; report it as one error with
    // whatever position the lexer encoded in the message.
    ParsedProgram out;
    out.errors.push_back({SourceSpan{}, st.message()});
    return out;
  }
  return Parser(std::move(toks), lines).ParseProgramRecovering();
}

Query MustParseQuery(const std::string& text) {
  Result<Query> r = ParseQuery(text);
  if (!r.ok()) {
    std::fprintf(stderr, "MustParseQuery(\"%s\"): %s\n", text.c_str(),
                 r.status().ToString().c_str());
    std::abort();
  }
  return std::move(r).value();
}

std::vector<Query> MustParseRules(const std::string& text) {
  Result<std::vector<Query>> r = ParseRules(text);
  if (!r.ok()) {
    std::fprintf(stderr, "MustParseRules: %s\n", r.status().ToString().c_str());
    std::abort();
  }
  return std::move(r).value();
}

}  // namespace cqac
