// Parser for the textual Datalog-with-comparisons syntax.
//
// Grammar (one rule):
//   rule       := atom ":-" item ("," item)* "."?
//   item       := atom | comparison
//   atom       := IDENT "(" [ term ("," term)* ] ")"
//   comparison := term OP term          OP in { <, <=, >, >=, = }
//   term       := VARIABLE | NUMBER | SYMBOL
//
// Conventions: identifiers beginning with an upper-case letter or '_' are
// variables; lower-case identifiers are symbolic constants (inside atoms) or
// predicate names (in atom position). Numbers may be integers, decimals
// ("3.25") or fractions ("7/2"); all are parsed as exact rationals.
// `>` and `>=` are normalized by swapping sides, so parsed queries only
// contain <, <= and = comparisons.
//
// A fact is a rule with no body: `r(1, 2).`
//
// Every parse error message carries a 1-based line:col position. The
// *_WithInfo entry points additionally return source spans for each rule's
// head, body atoms, comparisons, and variable first uses, and
// ParseProgramWithDiagnostics recovers after an error (skipping to the next
// '.') so that one pass reports every parse error in a file, not just the
// first.
#ifndef CQAC_IR_PARSER_H_
#define CQAC_IR_PARSER_H_

#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/ir/query.h"
#include "src/ir/source_location.h"

namespace cqac {

/// Source spans of one parsed rule, parallel to the Query structure.
struct QuerySourceInfo {
  SourceSpan rule;                       // the whole rule
  SourceSpan head;                       // the head atom
  std::vector<SourceSpan> body;          // one per body atom, in order
  std::vector<SourceSpan> comparisons;   // one per comparison, in order
  std::vector<SourceSpan> var_first_use; // one per variable id
};

/// A parsed rule plus where its parts came from.
struct ParsedQuery {
  Query query;
  QuerySourceInfo info;
};

/// One recovered parse error.
struct ParseDiagnostic {
  SourceSpan span;
  std::string message;
};

/// The result of parsing a whole program with error recovery.
struct ParsedProgram {
  std::vector<ParsedQuery> rules;       // every rule that parsed cleanly
  std::vector<ParseDiagnostic> errors;  // every parse error, in input order

  bool ok() const { return errors.empty(); }
};

/// Parses a single rule/query. Fails on trailing input beyond one rule.
Result<Query> ParseQuery(const std::string& text);

/// Parses a single rule/query with source spans.
Result<ParsedQuery> ParseQueryWithInfo(const std::string& text);

/// Parses a sequence of '.'-terminated rules (the final '.' may be omitted).
/// Blank lines and `%`-to-end-of-line comments are ignored. Stops at the
/// first error.
Result<std::vector<Query>> ParseRules(const std::string& text);

/// Parses a whole program, recovering at the next '.' after each error so
/// every parse error in the input is reported (with line:col), not just the
/// first. Rules that parse cleanly are returned alongside the errors.
ParsedProgram ParseProgramWithDiagnostics(const std::string& text);

/// Convenience for tests: parses or aborts with the parse error message.
Query MustParseQuery(const std::string& text);

/// Convenience for tests: parses rules or aborts with the error message.
std::vector<Query> MustParseRules(const std::string& text);

}  // namespace cqac

#endif  // CQAC_IR_PARSER_H_
