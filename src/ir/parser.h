// Parser for the textual Datalog-with-comparisons syntax.
//
// Grammar (one rule):
//   rule       := atom ":-" item ("," item)* "."?
//   item       := atom | comparison
//   atom       := IDENT "(" [ term ("," term)* ] ")"
//   comparison := term OP term          OP in { <, <=, >, >=, = }
//   term       := VARIABLE | NUMBER | SYMBOL
//
// Conventions: identifiers beginning with an upper-case letter or '_' are
// variables; lower-case identifiers are symbolic constants (inside atoms) or
// predicate names (in atom position). Numbers may be integers, decimals
// ("3.25") or fractions ("7/2"); all are parsed as exact rationals.
// `>` and `>=` are normalized by swapping sides, so parsed queries only
// contain <, <= and = comparisons.
//
// A fact is a rule with no body: `r(1, 2).`
#ifndef CQAC_IR_PARSER_H_
#define CQAC_IR_PARSER_H_

#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/ir/query.h"

namespace cqac {

/// Parses a single rule/query. Fails on trailing input beyond one rule.
Result<Query> ParseQuery(const std::string& text);

/// Parses a sequence of '.'-terminated rules (the final '.' may be omitted).
/// Blank lines and `%`-to-end-of-line comments are ignored.
Result<std::vector<Query>> ParseRules(const std::string& text);

/// Convenience for tests: parses or aborts with the parse error message.
Query MustParseQuery(const std::string& text);

/// Convenience for tests: parses rules or aborts with the error message.
std::vector<Query> MustParseRules(const std::string& text);

}  // namespace cqac

#endif  // CQAC_IR_PARSER_H_
