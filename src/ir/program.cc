#include "src/ir/program.h"

#include <map>

#include "src/base/strings.h"

namespace cqac {

std::set<std::string> Program::IdbPredicates() const {
  std::set<std::string> out;
  for (const Rule& r : rules_) out.insert(r.head().predicate);
  return out;
}

std::set<std::string> Program::EdbPredicates() const {
  std::set<std::string> idb = IdbPredicates();
  std::set<std::string> out;
  for (const Rule& r : rules_)
    for (const Atom& a : r.body())
      if (!idb.count(a.predicate)) out.insert(a.predicate);
  return out;
}

bool Program::IsRecursive() const {
  // Dependency graph on IDB predicates; recursion == a cycle reachable via
  // rule bodies. Simple DFS over adjacency.
  std::set<std::string> idb = IdbPredicates();
  std::map<std::string, std::set<std::string>> deps;
  for (const Rule& r : rules_)
    for (const Atom& a : r.body())
      if (idb.count(a.predicate)) deps[r.head().predicate].insert(a.predicate);

  for (const std::string& start : idb) {
    // Is `start` reachable from itself?
    std::set<std::string> seen;
    std::vector<std::string> stack(deps[start].begin(), deps[start].end());
    while (!stack.empty()) {
      std::string cur = stack.back();
      stack.pop_back();
      if (cur == start) return true;
      if (!seen.insert(cur).second) continue;
      for (const std::string& next : deps[cur]) stack.push_back(next);
    }
  }
  return false;
}

Status Program::Validate() const {
  if (rules_.empty()) return Status::InvalidArgument("empty program");
  for (const Rule& r : rules_) CQAC_RETURN_IF_ERROR(r.Validate());
  if (!IdbPredicates().count(query_predicate_))
    return Status::InvalidArgument(
        StrCat("query predicate '", query_predicate_,
               "' is not defined by any rule"));
  return Status::OK();
}

std::string Program::ToString() const {
  std::vector<std::string> lines;
  lines.reserve(rules_.size());
  for (const Rule& r : rules_) lines.push_back(r.ToString() + ".");
  return Join(lines, "\n");
}

}  // namespace cqac
