// Datalog programs with arithmetic comparisons.
//
// A rule is structurally a Query (head :- atoms, comparisons); a Program is a
// finite set of rules plus the designated query predicate. Programs are the
// rewriting language of Section 5, where maximally-contained rewritings can
// be inherently recursive (Example 1.2 / Proposition 5.1).
#ifndef CQAC_IR_PROGRAM_H_
#define CQAC_IR_PROGRAM_H_

#include <set>
#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/ir/query.h"

namespace cqac {

/// A Datalog rule is structurally identical to a CQAC query.
using Rule = Query;

/// A Datalog program with comparisons: rules plus the query predicate.
class Program {
 public:
  Program() = default;
  Program(std::string query_predicate, std::vector<Rule> rules)
      : query_predicate_(std::move(query_predicate)),
        rules_(std::move(rules)) {}

  const std::string& query_predicate() const { return query_predicate_; }
  void set_query_predicate(std::string p) { query_predicate_ = std::move(p); }

  const std::vector<Rule>& rules() const { return rules_; }
  std::vector<Rule>& rules() { return rules_; }
  void AddRule(Rule r) { rules_.push_back(std::move(r)); }

  /// Predicates defined by some rule head (intensional).
  std::set<std::string> IdbPredicates() const;

  /// Predicates that occur only in rule bodies (extensional).
  std::set<std::string> EdbPredicates() const;

  /// True iff some IDB predicate (transitively) depends on itself.
  bool IsRecursive() const;

  /// Checks rule safety and that the query predicate is defined.
  Status Validate() const;

  std::string ToString() const;

 private:
  std::string query_predicate_;
  std::vector<Rule> rules_;
};

}  // namespace cqac

#endif  // CQAC_IR_PROGRAM_H_
