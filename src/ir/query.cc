#include "src/ir/query.h"

#include <algorithm>
#include <cassert>

#include "src/base/strings.h"

namespace cqac {

const char* AcClassName(AcClass c) {
  switch (c) {
    case AcClass::kNone:
      return "CQ";
    case AcClass::kLsi:
      return "LSI";
    case AcClass::kRsi:
      return "RSI";
    case AcClass::kSi:
      return "SI";
    case AcClass::kGeneral:
      return "general";
  }
  return "?";
}

int Query::AddVariable(const std::string& name) {
  assert(FindVariable(name) < 0 && "duplicate variable name");
  var_names_.push_back(name);
  return static_cast<int>(var_names_.size()) - 1;
}

int Query::FindOrAddVariable(const std::string& name) {
  int id = FindVariable(name);
  if (id >= 0) return id;
  var_names_.push_back(name);
  return static_cast<int>(var_names_.size()) - 1;
}

int Query::FindVariable(const std::string& name) const {
  for (size_t i = 0; i < var_names_.size(); ++i)
    if (var_names_[i] == name) return static_cast<int>(i);
  return -1;
}

int Query::AddFreshVariable(const std::string& base) {
  if (FindVariable(base) < 0) return AddVariable(base);
  for (int i = 0;; ++i) {
    std::string candidate = base + "_" + std::to_string(i);
    if (FindVariable(candidate) < 0) return AddVariable(candidate);
  }
}

std::vector<int> Query::HeadVars() const {
  std::vector<int> out;
  for (const Term& t : head_.args) {
    if (!t.is_var()) continue;
    if (std::find(out.begin(), out.end(), t.var()) == out.end())
      out.push_back(t.var());
  }
  return out;
}

std::vector<bool> Query::DistinguishedMask() const {
  std::vector<bool> mask(var_names_.size(), false);
  for (const Term& t : head_.args)
    if (t.is_var()) mask[t.var()] = true;
  return mask;
}

std::set<int> Query::BodyVars() const {
  std::set<int> out;
  for (const Atom& a : body_)
    for (const Term& t : a.args)
      if (t.is_var()) out.insert(t.var());
  return out;
}

std::set<int> Query::ComparisonVars() const {
  std::set<int> out;
  for (const Comparison& c : comparisons_) {
    if (c.lhs.is_var()) out.insert(c.lhs.var());
    if (c.rhs.is_var()) out.insert(c.rhs.var());
  }
  return out;
}

std::vector<Rational> Query::ComparisonConstants() const {
  std::vector<Rational> out;
  auto add = [&out](const Term& t) {
    if (t.is_const() && t.value().is_number()) {
      const Rational& r = t.value().number();
      if (std::find(out.begin(), out.end(), r) == out.end()) out.push_back(r);
    }
  };
  for (const Comparison& c : comparisons_) {
    add(c.lhs);
    add(c.rhs);
  }
  std::sort(out.begin(), out.end());
  return out;
}

AcClass Query::Classify() const {
  if (comparisons_.empty()) return AcClass::kNone;
  bool all_si = true, all_lsi = true, all_rsi = true;
  for (const Comparison& c : comparisons_) {
    if (!c.IsSemiInterval()) {
      all_si = false;
      all_lsi = false;
      all_rsi = false;
      break;
    }
    if (!c.IsLsi()) all_lsi = false;
    if (!c.IsRsi()) all_rsi = false;
  }
  if (all_lsi) return AcClass::kLsi;
  if (all_rsi) return AcClass::kRsi;
  if (all_si) return AcClass::kSi;
  return AcClass::kGeneral;
}

bool Query::IsSiOnly() const {
  for (const Comparison& c : comparisons_)
    if (!c.IsSemiInterval()) return false;
  return true;
}

bool Query::IsCqacSi() const {
  if (!IsSiOnly()) return false;
  int lsi = 0, rsi = 0;
  for (const Comparison& c : comparisons_) {
    if (c.IsLsi()) ++lsi;
    if (c.IsRsi()) ++rsi;
  }
  return lsi <= 1 || rsi <= 1;
}

Status Query::Validate() const {
  auto check_term = [this](const Term& t, const char* where) -> Status {
    if (t.is_var() && (t.var() < 0 || t.var() >= num_vars()))
      return Status::Internal(StrCat("dangling variable id in ", where));
    return Status::OK();
  };
  for (const Term& t : head_.args) CQAC_RETURN_IF_ERROR(check_term(t, "head"));
  for (const Atom& a : body_) {
    if (a.predicate.empty())
      return Status::InvalidArgument("body atom with empty predicate");
    for (const Term& t : a.args) CQAC_RETURN_IF_ERROR(check_term(t, "body"));
  }
  std::set<int> body_vars = BodyVars();
  for (const Term& t : head_.args) {
    if (t.is_var() && !body_vars.count(t.var()))
      return Status::InvalidArgument(
          StrCat("unsafe head variable ", VarName(t.var()),
                 " does not appear in the body"));
  }
  for (const Comparison& c : comparisons_) {
    CQAC_RETURN_IF_ERROR(check_term(c.lhs, "comparison"));
    CQAC_RETURN_IF_ERROR(check_term(c.rhs, "comparison"));
    for (const Term* t : {&c.lhs, &c.rhs}) {
      // Symbolic constants can be *equated* (view expansion emits such
      // equalities) but never ordered.
      if (t->is_const() && t->value().is_symbol() && c.op != CompOp::kEq)
        return Status::InvalidArgument(
            StrCat("ordered comparison over symbolic constant '",
                   t->value().symbol(), "'"));
      if (t->is_var() && !body_vars.count(t->var()))
        return Status::InvalidArgument(
            StrCat("comparison variable ", VarName(t->var()),
                   " does not appear in any ordinary subgoal"));
    }
  }
  return Status::OK();
}

std::string Query::TermToString(const Term& t) const {
  if (t.is_var()) return VarName(t.var());
  return t.value().ToString();
}

namespace {
std::string AtomToString(const Query& q, const Atom& a) {
  std::vector<std::string> args;
  args.reserve(a.args.size());
  for (const Term& t : a.args) args.push_back(q.TermToString(t));
  return a.predicate + "(" + Join(args, ", ") + ")";
}
}  // namespace

std::string Query::ToString() const {
  std::vector<std::string> items;
  for (const Atom& a : body_) items.push_back(AtomToString(*this, a));
  for (const Comparison& c : comparisons_)
    items.push_back(StrCat(TermToString(c.lhs), " ", CompOpName(c.op), " ",
                           TermToString(c.rhs)));
  return AtomToString(*this, head_) + " :- " + Join(items, ", ");
}

std::string UnionQuery::ToString() const {
  std::vector<std::string> lines;
  lines.reserve(disjuncts.size());
  for (const Query& q : disjuncts) lines.push_back(q.ToString());
  return Join(lines, "\n");
}

}  // namespace cqac
