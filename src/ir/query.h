// Conjunctive queries with arithmetic comparisons (CQACs), the central IR.
//
// A Query is
//     h(X⃗) :- g1(X⃗1), ..., gn(X⃗n), C1, ..., Cm
// where the gi are ordinary subgoals and the Cj arithmetic comparisons over a
// dense order (Section 2 of the paper). The same structure doubles as a
// Datalog rule (src/ir/program.h) and as a view definition (src/ir/view.h).
//
// Variables are integer ids owned by the query; the query maps ids to names.
#ifndef CQAC_IR_QUERY_H_
#define CQAC_IR_QUERY_H_

#include <set>
#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/ir/atom.h"

namespace cqac {

/// Classification of a query's comparison set, following Table 2.
enum class AcClass {
  kNone,    // pure conjunctive query, no comparisons
  kLsi,     // all comparisons are LSI (upper bounds `X θ c`)
  kRsi,     // all comparisons are RSI (lower bounds `c θ X`)
  kSi,      // all comparisons semi-interval, mixed directions
  kGeneral, // at least one variable-variable or non-SI comparison
};

/// Returns a printable name for `c`.
const char* AcClassName(AcClass c);

/// A CQAC query / Datalog rule / view definition.
class Query {
 public:
  Query() = default;

  /// Creates a query with head predicate `head_predicate` and no head args.
  explicit Query(std::string head_predicate) {
    head_.predicate = std::move(head_predicate);
  }

  // ---- Variable table -----------------------------------------------------

  /// Adds a variable named `name` (must be unused) and returns its id.
  int AddVariable(const std::string& name);

  /// Returns the id of `name`, adding it if absent.
  int FindOrAddVariable(const std::string& name);

  /// Returns the id of `name`, or -1 if absent.
  int FindVariable(const std::string& name) const;

  /// Adds a variable with a fresh name derived from `base` and returns its id.
  int AddFreshVariable(const std::string& base);

  const std::string& VarName(int id) const { return var_names_.at(id); }
  int num_vars() const { return static_cast<int>(var_names_.size()); }
  const std::vector<std::string>& var_names() const { return var_names_; }

  // ---- Structure ----------------------------------------------------------

  Atom& head() { return head_; }
  const Atom& head() const { return head_; }

  std::vector<Atom>& body() { return body_; }
  const std::vector<Atom>& body() const { return body_; }

  std::vector<Comparison>& comparisons() { return comparisons_; }
  const std::vector<Comparison>& comparisons() const { return comparisons_; }

  void AddBodyAtom(Atom atom) { body_.push_back(std::move(atom)); }
  void AddComparison(Comparison c) { comparisons_.push_back(std::move(c)); }

  // ---- Derived info -------------------------------------------------------

  /// Ids of variables appearing in the head, in order of first occurrence.
  std::vector<int> HeadVars() const;

  /// distinguished[id] == true iff variable `id` appears in the head.
  std::vector<bool> DistinguishedMask() const;

  /// Ids of variables appearing in ordinary subgoals.
  std::set<int> BodyVars() const;

  /// Ids of variables appearing in comparisons.
  std::set<int> ComparisonVars() const;

  /// All numeric constants appearing in comparisons (deduplicated, sorted).
  std::vector<Rational> ComparisonConstants() const;

  /// True iff the query has no comparisons at all.
  bool IsConjunctiveOnly() const { return comparisons_.empty(); }

  /// Classifies the comparison set per Table 2 (see AcClass).
  AcClass Classify() const;

  /// True iff every comparison is semi-interval (SI views of Section 5).
  bool IsSiOnly() const;

  /// True iff the query is a "CQAC-SI query" in the sense of Section 5:
  /// all comparisons SI, and either at most one LSI (rest RSI) or at most
  /// one RSI (rest LSI).
  bool IsCqacSi() const;

  /// Checks structural sanity: every variable referenced by an atom or
  /// comparison exists; head variables appear in the body (safety); numeric
  /// comparisons do not mention symbolic constants.
  Status Validate() const;

  /// Renders the query in parseable form, e.g.
  /// `q(X) :- r(X,Y), s(Y,Z), X < 4`.
  std::string ToString() const;

  /// Renders a term of this query (variable name or constant).
  std::string TermToString(const Term& t) const;

 private:
  Atom head_;
  std::vector<Atom> body_;
  std::vector<Comparison> comparisons_;
  std::vector<std::string> var_names_;
};

/// A finite union of CQACs, the rewriting language of Sections 3-4.
struct UnionQuery {
  std::vector<Query> disjuncts;

  bool empty() const { return disjuncts.empty(); }
  std::string ToString() const;
};

}  // namespace cqac

#endif  // CQAC_IR_QUERY_H_
