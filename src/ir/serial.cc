#include "src/ir/serial.h"

#include "src/base/strings.h"
#include "src/ir/parser.h"

namespace cqac {

namespace {
constexpr uint8_t kTagRational = 0;
constexpr uint8_t kTagSymbol = 1;
}  // namespace

void SerializeValue(std::string* out, const Value& v) {
  if (v.is_number()) {
    wire::AppendU8(out, kTagRational);
    wire::AppendI64(out, v.number().num());
    wire::AppendI64(out, v.number().den());
  } else {
    wire::AppendU8(out, kTagSymbol);
    wire::AppendString(out, v.symbol());
  }
}

Value DeserializeValue(wire::Cursor* c) {
  uint8_t tag = c->ReadU8();
  if (tag == kTagRational) {
    int64_t num = c->ReadI64();
    int64_t den = c->ReadI64();
    // A zero denominator can only come from corrupt input the CRC somehow
    // missed; keep Rational's invariant rather than aborting.
    if (den == 0) return Value(Rational(0));
    return Value(Rational(num, den));
  }
  std::string sym = c->ReadString();
  return Value(std::move(sym));
}

void SerializeTuple(std::string* out, const std::vector<Value>& tuple) {
  wire::AppendU32(out, static_cast<uint32_t>(tuple.size()));
  for (const Value& v : tuple) SerializeValue(out, v);
}

std::vector<Value> DeserializeTuple(wire::Cursor* c) {
  uint32_t arity = c->ReadU32();
  std::vector<Value> tuple;
  if (!c->ok() || arity > c->remaining()) return tuple;  // min 1 byte/value
  tuple.reserve(arity);
  for (uint32_t i = 0; i < arity && c->ok(); ++i)
    tuple.push_back(DeserializeValue(c));
  return tuple;
}

std::string SerializeQuery(const Query& q) { return q.ToString(); }

Result<Query> DeserializeQuery(const std::string& text) {
  Result<Query> q = ParseQuery(text);
  CQAC_RETURN_IF_ERROR(q.status());
  Status valid = q.value().Validate();
  if (!valid.ok())
    return Status::Inconsistent(
        StrCat("serialized query fails validation: ", valid.message()));
  return q;
}

}  // namespace cqac
