// Stable binary serialization of the IR's value layer, plus the query text
// round-trip the durable store relies on (src/store, docs/durability.md).
//
// Values and tuples get a compact tagged binary form: rationals as exact
// num/den int64 pairs (never floats — a snapshot must restore the same
// dense-order constants the paper's comparisons range over), symbols as
// length-prefixed bytes. Queries are serialized as their ToString()
// rendering and re-parsed on load: the parser/printer round-trip is already
// a tested invariant (tests/roundtrip_test.cc), the text is diffable in
// `cqac_storectl inspect`, and view rules recover byte-identically because
// sessions log the client's original rule text verbatim.
#ifndef CQAC_IR_SERIAL_H_
#define CQAC_IR_SERIAL_H_

#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/base/wire.h"
#include "src/ir/query.h"
#include "src/ir/term.h"

namespace cqac {

/// Appends the tagged binary form of `v` (tag 0: rational num/den; tag 1:
/// symbol bytes).
void SerializeValue(std::string* out, const Value& v);

/// Decodes one value. On malformed input the cursor's ok() latch trips and
/// the returned value is unspecified — check `c->ok()` after the batch.
Value DeserializeValue(wire::Cursor* c);

/// A tuple is its arity followed by that many values.
void SerializeTuple(std::string* out, const std::vector<Value>& tuple);
std::vector<Value> DeserializeTuple(wire::Cursor* c);

/// The stable text form of a query (parser/printer round-trip invariant).
std::string SerializeQuery(const Query& q);

/// Parses and validates a serialized query text.
Result<Query> DeserializeQuery(const std::string& text);

}  // namespace cqac

#endif  // CQAC_IR_SERIAL_H_
