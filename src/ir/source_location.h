// Source positions and spans for parser diagnostics.
//
// The parser records, for every rule it produces, where the rule and its
// parts (head, body atoms, comparisons, variable first uses) came from in
// the input text, so downstream tooling (cqac_lint, the shell) can point at
// real line/column positions instead of byte offsets.
#ifndef CQAC_IR_SOURCE_LOCATION_H_
#define CQAC_IR_SOURCE_LOCATION_H_

#include <cstddef>
#include <string>
#include <vector>

#include "src/base/strings.h"

namespace cqac {

/// A position in the source text. Lines and columns are 1-based; an unset
/// position has line 0.
struct SourcePos {
  int line = 0;
  int col = 0;
  size_t offset = 0;

  bool valid() const { return line > 0; }

  /// Renders "line:col".
  std::string ToString() const { return StrCat(line, ":", col); }
};

/// A half-open span [begin, end) over the source text.
struct SourceSpan {
  SourcePos begin;
  SourcePos end;

  bool valid() const { return begin.valid(); }

  /// Renders "line:col" of the beginning (the conventional diagnostic
  /// anchor).
  std::string ToString() const { return begin.ToString(); }
};

/// Maps byte offsets of a text to line/column positions.
class LineMap {
 public:
  explicit LineMap(const std::string& text) {
    line_starts_.push_back(0);
    for (size_t i = 0; i < text.size(); ++i)
      if (text[i] == '\n') line_starts_.push_back(i + 1);
  }

  SourcePos At(size_t offset) const {
    // Binary search for the last line start <= offset.
    size_t lo = 0, hi = line_starts_.size() - 1;
    while (lo < hi) {
      size_t mid = (lo + hi + 1) / 2;
      if (line_starts_[mid] <= offset)
        lo = mid;
      else
        hi = mid - 1;
    }
    SourcePos pos;
    pos.line = static_cast<int>(lo) + 1;
    pos.col = static_cast<int>(offset - line_starts_[lo]) + 1;
    pos.offset = offset;
    return pos;
  }

 private:
  std::vector<size_t> line_starts_;
};

}  // namespace cqac

#endif  // CQAC_IR_SOURCE_LOCATION_H_
