#include "src/ir/substitution.h"

#include "src/base/strings.h"

namespace cqac {

VarMap ImportVariables(const Query& src, const std::string& prefix,
                       Query* dst) {
  VarMap map(src.num_vars());
  for (int v = 0; v < src.num_vars(); ++v) {
    int nv = dst->AddFreshVariable(prefix + src.VarName(v));
    map.ForceBind(v, Term::Var(nv));
  }
  return map;
}

bool UnifyBodyAtoms(const Query& q, size_t i, size_t j, Query* out) {
  const Atom& a = q.body()[i];
  const Atom& b = q.body()[j];
  if (a.predicate != b.predicate || a.args.size() != b.args.size())
    return false;
  VarMap subst(q.num_vars());
  auto resolve = [&subst](Term t) {
    // Chase bindings to a fixed point (chains are short).
    while (t.is_var() && subst.IsBound(t.var()) && !(subst.Get(t.var()) == t))
      t = subst.Get(t.var());
    return t;
  };
  for (size_t p = 0; p < a.args.size(); ++p) {
    Term x = resolve(a.args[p]);
    Term y = resolve(b.args[p]);
    if (x == y) continue;
    if (x.is_const() && y.is_const()) return false;
    if (x.is_const()) std::swap(x, y);
    subst.ForceBind(x.var(), y);
  }
  *out = Query();
  out->head().predicate = q.head().predicate;
  for (const std::string& name : q.var_names()) out->FindOrAddVariable(name);
  for (const Term& t : q.head().args) out->head().args.push_back(resolve(t));
  for (size_t g = 0; g < q.body().size(); ++g) {
    if (g == j) continue;
    Atom na;
    na.predicate = q.body()[g].predicate;
    for (const Term& t : q.body()[g].args) na.args.push_back(resolve(t));
    out->AddBodyAtom(std::move(na));
  }
  for (const Comparison& c : q.comparisons())
    out->AddComparison(Comparison(resolve(c.lhs), c.op, resolve(c.rhs)));
  return true;
}

std::string VarMapToString(const VarMap& map, const Query& source,
                           const Query& target) {
  std::vector<std::string> parts;
  for (int v = 0; v < map.num_source_vars(); ++v) {
    if (!map.IsBound(v)) continue;
    parts.push_back(
        StrCat(source.VarName(v), " -> ", target.TermToString(map.Get(v))));
  }
  return "{" + Join(parts, ", ") + "}";
}

}  // namespace cqac
