// Variable substitutions (the mappings mu of containment proofs).
//
// A VarMap sends variable ids of a *source* query to terms of a *target*
// query. It is the representation of containment mappings (Chandra-Merlin
// homomorphisms extended with constants) used throughout src/containment and
// src/rewriting.
#ifndef CQAC_IR_SUBSTITUTION_H_
#define CQAC_IR_SUBSTITUTION_H_

#include <optional>
#include <vector>

#include "src/ir/atom.h"
#include "src/ir/query.h"

namespace cqac {

/// A partial map from source-variable ids to target terms.
class VarMap {
 public:
  explicit VarMap(int num_source_vars)
      : bindings_(num_source_vars, std::nullopt) {}

  int num_source_vars() const { return static_cast<int>(bindings_.size()); }

  bool IsBound(int var) const { return bindings_[var].has_value(); }

  const Term& Get(int var) const { return *bindings_[var]; }

  /// Binds `var` to `t`; returns false on a conflicting existing binding.
  bool Bind(int var, const Term& t) {
    if (bindings_[var].has_value()) return *bindings_[var] == t;
    bindings_[var] = t;
    return true;
  }

  /// Overwrites any existing binding.
  void ForceBind(int var, const Term& t) { bindings_[var] = t; }

  bool IsTotal() const {
    for (const auto& b : bindings_)
      if (!b.has_value()) return false;
    return true;
  }

  /// Applies the map to a term. Unmapped variables are returned unchanged
  /// (useful for partial mappings); constants map to themselves.
  Term Apply(const Term& t) const {
    if (t.is_var() && bindings_[t.var()].has_value())
      return *bindings_[t.var()];
    return t;
  }

  Atom ApplyToAtom(const Atom& a) const {
    Atom out;
    out.predicate = a.predicate;
    out.args.reserve(a.args.size());
    for (const Term& t : a.args) out.args.push_back(Apply(t));
    return out;
  }

  Comparison ApplyToComparison(const Comparison& c) const {
    return Comparison(Apply(c.lhs), c.op, Apply(c.rhs));
  }

  /// Applies to a whole list of comparisons.
  std::vector<Comparison> ApplyToComparisons(
      const std::vector<Comparison>& cs) const {
    std::vector<Comparison> out;
    out.reserve(cs.size());
    for (const Comparison& c : cs) out.push_back(ApplyToComparison(c));
    return out;
  }

  bool operator==(const VarMap& o) const { return bindings_ == o.bindings_; }

 private:
  std::vector<std::optional<Term>> bindings_;
};

/// Copies all variables of `src` into `dst` under fresh names prefixed with
/// `prefix`, returning the (total) translation map from src vars to dst vars.
VarMap ImportVariables(const Query& src, const std::string& prefix,
                       Query* dst);

/// Renders a VarMap for debugging: "{X -> A, Y -> 3}".
std::string VarMapToString(const VarMap& map, const Query& source,
                           const Query& target);

/// Attempts to unify body atoms i and j of `q` (same predicate and arity),
/// merging them into one atom by equating their arguments position-wise and
/// applying the substitution to the whole query (atom j is dropped).
/// Returns false when two distinct constants clash. Used by query
/// minimization (folding) and by the bucket algorithm's equation step.
bool UnifyBodyAtoms(const Query& q, size_t i, size_t j, Query* out);

}  // namespace cqac

#endif  // CQAC_IR_SUBSTITUTION_H_
