// Terms of the query language: variables and constants.
//
// Variables are integers local to an enclosing Query/Rule, which owns the
// id -> name table. Constants are either exact rationals (the dense order the
// paper's comparisons range over) or opaque symbols (e.g. `red` in the
// car-dealer example of Section 4.1), which can be joined on but never
// compared with < / <=.
#ifndef CQAC_IR_TERM_H_
#define CQAC_IR_TERM_H_

#include <cassert>
#include <functional>
#include <string>
#include <variant>

#include "src/base/rational.h"

namespace cqac {

/// A constant of the domain: a rational number or an opaque symbol.
class Value {
 public:
  /*implicit*/ Value(Rational r) : rep_(std::move(r)) {}
  /*implicit*/ Value(int64_t n) : rep_(Rational(n)) {}
  /*implicit*/ Value(std::string symbol) : rep_(std::move(symbol)) {}

  bool is_number() const { return std::holds_alternative<Rational>(rep_); }
  bool is_symbol() const { return !is_number(); }

  const Rational& number() const {
    assert(is_number());
    return std::get<Rational>(rep_);
  }
  const std::string& symbol() const {
    assert(is_symbol());
    return std::get<std::string>(rep_);
  }

  bool operator==(const Value& o) const { return rep_ == o.rep_; }
  bool operator!=(const Value& o) const { return !(*this == o); }

  /// Total order used for canonical forms and containers: numbers before
  /// symbols, numbers by value, symbols lexicographically.
  bool operator<(const Value& o) const {
    if (is_number() != o.is_number()) return is_number();
    if (is_number()) return number() < o.number();
    return symbol() < o.symbol();
  }

  std::string ToString() const {
    return is_number() ? number().ToString() : symbol();
  }

  size_t Hash() const {
    if (is_number()) return number().Hash();
    return std::hash<std::string>()(symbol()) * 1315423911ULL;
  }

 private:
  std::variant<Rational, std::string> rep_;
};

/// A term: either a variable (id into the owning query's table) or a Value.
class Term {
 public:
  /// Makes a variable term.
  static Term Var(int id) { return Term(id); }
  /// Makes a constant term.
  static Term Const(Value v) { return Term(std::move(v)); }

  bool is_var() const { return var_ >= 0; }
  bool is_const() const { return var_ < 0; }

  int var() const {
    assert(is_var());
    return var_;
  }
  const Value& value() const {
    assert(is_const());
    return value_;
  }

  bool operator==(const Term& o) const {
    if (var_ != o.var_) return false;
    if (is_var()) return true;
    return value_ == o.value_;
  }
  bool operator!=(const Term& o) const { return !(*this == o); }

  size_t Hash() const {
    if (is_var()) return std::hash<int>()(var_);
    return value_.Hash() ^ 0x5bd1e995u;
  }

 private:
  explicit Term(int var) : var_(var), value_(std::string()) {
    assert(var >= 0);
  }
  explicit Term(Value v) : var_(-1), value_(std::move(v)) {}

  int var_;      // >= 0 for variables, -1 for constants
  Value value_;  // meaningful only when var_ < 0
};

}  // namespace cqac

namespace std {
template <>
struct hash<cqac::Term> {
  size_t operator()(const cqac::Term& t) const { return t.Hash(); }
};
template <>
struct hash<cqac::Value> {
  size_t operator()(const cqac::Value& v) const { return v.Hash(); }
};
}  // namespace std

#endif  // CQAC_IR_TERM_H_
