#include "src/ir/view.h"

#include "src/base/strings.h"

namespace cqac {

Status ViewSet::Add(Query view) {
  if (Find(view.head().predicate) != nullptr)
    return Status::InvalidArgument(
        StrCat("duplicate view name '", view.head().predicate, "'"));
  CQAC_RETURN_IF_ERROR(view.Validate());
  views_.push_back(std::move(view));
  return Status::OK();
}

const Query* ViewSet::Find(const std::string& name) const {
  for (const Query& v : views_)
    if (v.head().predicate == name) return &v;
  return nullptr;
}

bool ViewSet::AllSiOnly() const {
  for (const Query& v : views_)
    if (!v.IsSiOnly()) return false;
  return true;
}

bool ViewSet::AllVariablesDistinguished() const {
  for (const Query& v : views_) {
    std::vector<bool> mask = v.DistinguishedMask();
    for (int id : v.BodyVars())
      if (!mask[id]) return false;
  }
  return true;
}

std::string ViewSet::ToString() const {
  std::vector<std::string> lines;
  lines.reserve(views_.size());
  for (const Query& v : views_) lines.push_back(v.ToString());
  return Join(lines, "\n");
}

}  // namespace cqac
