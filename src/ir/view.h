// Views: named CQAC definitions over the base schema.
//
// A view is just a Query whose head predicate is the view's name; a ViewSet
// bundles the views available for rewriting and provides name lookup.
#ifndef CQAC_IR_VIEW_H_
#define CQAC_IR_VIEW_H_

#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/ir/query.h"

namespace cqac {

/// An ordered collection of view definitions with unique head predicates.
class ViewSet {
 public:
  ViewSet() = default;
  explicit ViewSet(std::vector<Query> views) : views_(std::move(views)) {}

  /// Appends `view`; its head predicate must not collide with an existing
  /// view name.
  Status Add(Query view);

  /// Returns the view named `name`, or nullptr.
  const Query* Find(const std::string& name) const;

  const std::vector<Query>& views() const { return views_; }
  size_t size() const { return views_.size(); }
  bool empty() const { return views_.empty(); }
  const Query& operator[](size_t i) const { return views_[i]; }

  /// True iff every view's comparisons are semi-interval only (the "CQAC-SI
  /// views" precondition of Section 5).
  bool AllSiOnly() const;

  /// True iff in every view all variables are distinguished (Theorem 3.2's
  /// precondition).
  bool AllVariablesDistinguished() const;

  std::string ToString() const;

 private:
  std::vector<Query> views_;
};

}  // namespace cqac

#endif  // CQAC_IR_VIEW_H_
