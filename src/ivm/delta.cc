#include "src/ivm/delta.h"

#include "src/base/strings.h"

namespace cqac {
namespace ivm {

Status DeltaDatabase::CheckArity(const std::string& predicate,
                                 const Tuple& tuple) const {
  const Relation& rel = base_->Get(predicate);
  if (!rel.empty() && rel.begin()->size() != tuple.size())
    return Status::InvalidArgument(
        StrCat("arity mismatch staging into '", predicate, "': got ",
               tuple.size(), ", base relation has ", rel.begin()->size()));
  return Status::OK();
}

Status DeltaDatabase::StageInsert(const std::string& predicate, Tuple tuple) {
  CQAC_RETURN_IF_ERROR(CheckArity(predicate, tuple));
  if (minus_.Remove(predicate, tuple)) return Status::OK();  // cancels retract
  if (base_->Contains(predicate, tuple)) return Status::OK();
  return plus_.Insert(predicate, std::move(tuple));
}

Status DeltaDatabase::StageRetract(const std::string& predicate, Tuple tuple) {
  CQAC_RETURN_IF_ERROR(CheckArity(predicate, tuple));
  if (plus_.Remove(predicate, tuple)) return Status::OK();  // cancels insert
  if (!base_->Contains(predicate, tuple)) return Status::OK();
  return minus_.Insert(predicate, std::move(tuple));
}

Status DeltaDatabase::StageInsertAll(const Database& facts) {
  for (const auto& [pred, rel] : facts.relations())
    for (const Tuple& t : rel) CQAC_RETURN_IF_ERROR(StageInsert(pred, t));
  return Status::OK();
}

Status DeltaDatabase::StageRetractAll(const Database& facts) {
  for (const auto& [pred, rel] : facts.relations())
    for (const Tuple& t : rel) CQAC_RETURN_IF_ERROR(StageRetract(pred, t));
  return Status::OK();
}

Status DeltaDatabase::CommitTo(Database* out) const {
  for (const auto& [pred, rel] : minus_.relations())
    for (const Tuple& t : rel)
      if (!out->Remove(pred, t))
        return Status::Internal(
            StrCat("staged retraction of absent tuple in '", pred, "'"));
  for (const auto& [pred, rel] : plus_.relations())
    for (const Tuple& t : rel) CQAC_RETURN_IF_ERROR(out->Insert(pred, t));
  return Status::OK();
}

}  // namespace ivm
}  // namespace cqac
