// DeltaDatabase: a staged batch of base-relation changes against a fixed
// snapshot of a Database.
//
// The incremental maintainers (src/ivm/maintain.h) consume a *normalized*
// delta: the positive side is disjoint from the base, the negative side is a
// subset of it, and the two sides are disjoint from each other. Staging
// enforces that normal form eagerly — inserting an already-present tuple is
// a no-op, retracting an absent one is a no-op, and an insert/retract pair
// on the same tuple cancels — so a maintainer can equate "delta tuple" with
// "actual state change" and per-tuple derivation counts stay exact.
//
// Tuples live in ordinary Relations (std::set), so the canonical tuple
// order of the base database is preserved on both delta sides; everything
// downstream that iterates a delta does so in one deterministic order.
#ifndef CQAC_IVM_DELTA_H_
#define CQAC_IVM_DELTA_H_

#include <string>

#include "src/base/status.h"
#include "src/eval/database.h"

namespace cqac {
namespace ivm {

/// A normalized insert/retract batch staged against `*base`. The base must
/// outlive the delta and must not change while the delta is staged.
class DeltaDatabase {
 public:
  explicit DeltaDatabase(const Database* base) : base_(base) {}

  /// Stages the insertion of `tuple` into `predicate`. No-op when the tuple
  /// is already in the base; cancels a staged retraction of the same tuple.
  Status StageInsert(const std::string& predicate, Tuple tuple);

  /// Stages the removal of `tuple` from `predicate`. No-op when the tuple
  /// is absent from the base; cancels a staged insertion of the same tuple.
  Status StageRetract(const std::string& predicate, Tuple tuple);

  /// Stages every fact of `facts` for insertion (retraction).
  Status StageInsertAll(const Database& facts);
  Status StageRetractAll(const Database& facts);

  /// Tuples to add: disjoint from the base.
  const Database& plus() const { return plus_; }

  /// Tuples to remove: a subset of the base.
  const Database& minus() const { return minus_; }

  const Database& base() const { return *base_; }

  bool empty() const { return plus_.TotalTuples() + minus_.TotalTuples() == 0; }

  /// Total staged changes, |plus| + |minus|.
  size_t delta_tuples() const {
    return plus_.TotalTuples() + minus_.TotalTuples();
  }

  /// Folds the staged changes into `*out`, which must hold the same state
  /// as the base snapshot this delta was staged against.
  Status CommitTo(Database* out) const;

 private:
  /// Rejects tuples whose arity disagrees with the base relation.
  Status CheckArity(const std::string& predicate, const Tuple& tuple) const;

  const Database* base_;
  Database plus_;
  Database minus_;
};

}  // namespace ivm
}  // namespace cqac

#endif  // CQAC_IVM_DELTA_H_
