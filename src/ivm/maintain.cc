#include "src/ivm/maintain.h"

#include <algorithm>
#include <deque>
#include <optional>

#include "src/base/strings.h"
#include "src/base/task_pool.h"
#include "src/engine/parallel.h"
#include "src/eval/evaluate.h"
#include "src/plan/planner.h"

namespace cqac {
namespace ivm {

namespace {

/// Accumulates head-tuple multiplicities in flat sorted runs instead of a
/// per-row std::map insert: pending tuples sort in contiguous memory, equal
/// runs collapse to (tuple, count) pairs, and successive flushes merge two
/// sorted lists. The final map splices together from the sorted pairs with
/// an end hint. Periodic compaction bounds memory at roughly twice the
/// distinct-tuple count.
class CountBuilder {
 public:
  void Add(const Tuple& t) {
    pending_.push_back(t);
    if (pending_.size() >= watermark_) Compact();
  }

  /// Folds sign x multiplicity into *counts and resets the builder.
  void MoveInto(int64_t sign, std::map<Tuple, int64_t>* counts) {
    Compact();
    if (counts->empty()) {
      for (auto& [t, c] : acc_)
        counts->emplace_hint(counts->end(), std::move(t), sign * c);
    } else {
      for (const auto& [t, c] : acc_) (*counts)[t] += sign * c;
    }
    acc_.clear();
  }

 private:
  void Compact() {
    if (pending_.empty()) return;
    std::sort(pending_.begin(), pending_.end());
    std::vector<std::pair<Tuple, int64_t>> runs;
    for (Tuple& t : pending_) {
      if (!runs.empty() && runs.back().first == t)
        ++runs.back().second;
      else
        runs.emplace_back(std::move(t), 1);
    }
    pending_.clear();
    if (acc_.empty()) {
      acc_ = std::move(runs);
    } else {
      std::vector<std::pair<Tuple, int64_t>> merged;
      merged.reserve(acc_.size() + runs.size());
      size_t i = 0, j = 0;
      while (i < acc_.size() && j < runs.size()) {
        if (acc_[i].first < runs[j].first) {
          merged.push_back(std::move(acc_[i++]));
        } else if (runs[j].first < acc_[i].first) {
          merged.push_back(std::move(runs[j++]));
        } else {
          acc_[i].second += runs[j++].second;
          merged.push_back(std::move(acc_[i++]));
        }
      }
      for (; i < acc_.size(); ++i) merged.push_back(std::move(acc_[i]));
      for (; j < runs.size(); ++j) merged.push_back(std::move(runs[j]));
      acc_ = std::move(merged);
    }
    watermark_ = std::max<size_t>(kMinWatermark, 2 * acc_.size());
  }

  static constexpr size_t kMinWatermark = 4096;
  std::vector<Tuple> pending_;
  std::vector<std::pair<Tuple, int64_t>> acc_;
  size_t watermark_ = kMinWatermark;
};

/// Joins `q` over `rels` batch-at-a-time and folds `sign` into *counts for
/// every satisfying head projection — the one join shape both the rebuild
/// path and the subset-expansion delta phases count with. Returns false iff
/// the context aborted the join.
bool CountJoin(EngineContext& ctx, const Query& q,
               const std::vector<const Relation*>& rels,
               const JoinIndexSource* indexes, int64_t sign,
               std::map<Tuple, int64_t>* counts) {
  BatchHeadProjector proj(q);
  CountBuilder builder;
  const bool ok = JoinBodyBatches(
      q, rels,
      [&](const Batch& b, const std::vector<int>& var_col) {
        proj.ForEachHead(b, var_col,
                         [&](const Tuple& head) { builder.Add(head); });
        return true;
      },
      [&ctx] { return !ctx.ShouldStop(); }, indexes, &ctx.stats());
  if (ok) builder.MoveInto(sign, counts);
  return ok;
}

/// Adapts the persistent base indexes to one task's reordered body: delta
/// positions carry no entry (nullptr — the join builds its internal lazy
/// index over the tiny delta relation), base positions resolve probes
/// straight from the maintained ColumnIndexes.
class BaseIndexSource final : public JoinIndexSource {
 public:
  std::vector<const PredicateIndex*> per_atom;

  const std::vector<const Tuple*>* Probe(size_t atom, size_t col,
                                         const Value& v) const override {
    if (atom >= per_atom.size() || per_atom[atom] == nullptr) return nullptr;
    auto cit = per_atom[atom]->find(col);
    if (cit == per_atom[atom]->end()) return nullptr;
    auto hit = cit->second.find(v);
    return hit == cit->second.end() ? &kNoHits : &hit->second;
  }

 private:
  static const std::vector<const Tuple*> kNoHits;
};

const std::vector<const Tuple*> BaseIndexSource::kNoHits;

bool ContainsIn(const std::map<std::string, Relation>& m, const std::string& p,
                const Tuple& t) {
  auto it = m.find(p);
  return it != m.end() && it->second.count(t) > 0;
}

/// Counts tuples appearing on exactly one side, per predicate. Both sides
/// are ordered sets, so one linear merge-walk replaces per-tuple lookups.
void DiffTuples(const Database& before, const Database& after, size_t* added,
                size_t* removed) {
  std::set<std::string> preds;
  for (const auto& [p, r] : before.relations()) preds.insert(p);
  for (const auto& [p, r] : after.relations()) preds.insert(p);
  for (const std::string& p : preds) {
    const Relation& b = before.Get(p);
    const Relation& a = after.Get(p);
    auto ib = b.begin();
    auto ia = a.begin();
    while (ib != b.end() && ia != a.end()) {
      if (*ib < *ia) {
        ++*removed;
        ++ib;
      } else if (*ia < *ib) {
        ++*added;
        ++ia;
      } else {
        ++ib;
        ++ia;
      }
    }
    *removed += static_cast<size_t>(std::distance(ib, b.end()));
    *added += static_cast<size_t>(std::distance(ia, a.end()));
  }
}

Status BudgetExhausted(EngineContext& ctx) {
  ++ctx.stats().budget_exhaustions;
  return Status::ResourceExhausted("ivm maintenance exceeded the budget");
}

/// Merge-walks two ordered count maps into the touched-tuple set (entries
/// whose count changed; absence means 0).
std::vector<TupleCountDelta> DiffCounts(const std::map<Tuple, int64_t>& before,
                                        const std::map<Tuple, int64_t>& after) {
  std::vector<TupleCountDelta> out;
  auto ib = before.begin();
  auto ia = after.begin();
  while (ib != before.end() || ia != after.end()) {
    TupleCountDelta d;
    if (ia == after.end() || (ib != before.end() && ib->first < ia->first)) {
      d.tuple = ib->first;
      d.old_count = ib->second;
      ++ib;
    } else if (ib == before.end() || ia->first < ib->first) {
      d.tuple = ia->first;
      d.new_count = ia->second;
      ++ia;
    } else {
      d.tuple = ib->first;
      d.old_count = ib->second;
      d.new_count = ia->second;
      ++ib;
      ++ia;
    }
    if (d.old_count != d.new_count) out.push_back(std::move(d));
  }
  return out;
}

/// A relation as a 0/1-presence count map (the DRed certificate view).
std::map<Tuple, int64_t> PresenceCounts(const Relation& rel) {
  std::map<Tuple, int64_t> out;
  for (const Tuple& t : rel) out.emplace_hint(out.end(), t, 1);
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// MaterializedViewSet
// ---------------------------------------------------------------------------

Status MaterializedViewSet::AddView(EngineContext& ctx, const Query& view) {
  CQAC_RETURN_IF_ERROR(view.Validate());
  for (const Query& q : view_queries_)
    if (q.head().predicate == view.head().predicate)
      return Status::InvalidArgument(StrCat("view '", view.head().predicate,
                                            "' is already materialized"));
  view_queries_.push_back(view);
  counts_.emplace_back();
  Status st = RebuildView(ctx, view_queries_.size() - 1);
  if (!st.ok()) {
    view_queries_.pop_back();
    counts_.pop_back();
  }
  return st;
}

Status MaterializedViewSet::ResetViews(EngineContext& ctx,
                                       const ViewSet& views) {
  view_queries_.clear();
  counts_.clear();
  views_ = Database();
  for (const Query& v : views.views()) CQAC_RETURN_IF_ERROR(AddView(ctx, v));
  return Status::OK();
}

void MaterializedViewSet::Reset() {
  base_ = Database();
  views_ = Database();
  view_queries_.clear();
  counts_.clear();
  base_index_.clear();
  maintained_ = false;
}

Status MaterializedViewSet::RestoreSnapshot(Database base,
                                            std::vector<Query> views,
                                            std::vector<CountMap> counts,
                                            Database view_db,
                                            bool maintained) {
  if (views.size() != counts.size())
    return Status::InvalidArgument(
        StrCat("restore: ", views.size(), " views but ", counts.size(),
               " count maps"));
  for (size_t i = 0; i < views.size(); ++i) {
    CQAC_RETURN_IF_ERROR(views[i].Validate());
    // Cheap shape check: the materialized relation must hold exactly the
    // positively counted tuples. Anything else means the snapshot sections
    // disagree — corrupt despite per-frame CRCs, so refuse to adopt.
    const Relation& rel = view_db.Get(views[i].head().predicate);
    if (rel.size() != counts[i].size())
      return Status::Inconsistent(
          StrCat("restore: view '", views[i].head().predicate, "' has ",
                 rel.size(), " tuples but ", counts[i].size(), " counts"));
    for (const auto& [tuple, count] : counts[i])
      if (count <= 0 || rel.count(tuple) == 0)
        return Status::Inconsistent(
            StrCat("restore: count map of view '", views[i].head().predicate,
                   "' disagrees with its materialization"));
  }
  base_ = std::move(base);
  views_ = std::move(view_db);
  view_queries_ = std::move(views);
  counts_ = std::move(counts);
  base_index_.clear();
  maintained_ = maintained;
  return Status::OK();
}

Status MaterializedViewSet::RebuildView(EngineContext& ctx, size_t i) {
  const Query& q = view_queries_[i];
  std::vector<const Relation*> rels;
  rels.reserve(q.body().size());
  for (const Atom& a : q.body()) rels.push_back(&base_.Get(a.predicate));

  CountMap counts;
  if (!CountJoin(ctx, q, rels, nullptr, 1, &counts))
    return BudgetExhausted(ctx);

  counts_[i] = std::move(counts);
  // The count map is keyed in tuple order, so the view relation splices
  // together from the already-sorted key range.
  Relation tuples;
  for (const auto& [t, c] : counts_[i]) tuples.insert(tuples.end(), t);
  CQAC_RETURN_IF_ERROR(
      views_.InsertRelation(q.head().predicate, std::move(tuples)));
  return Status::OK();
}

Result<ApplySummary> MaterializedViewSet::Apply(EngineContext& ctx,
                                                const DeltaDatabase& delta,
                                                const MaintainOptions& options,
                                                MaintenanceCertificate* cert) {
  if (&delta.base() != &base_)
    return Status::InvalidArgument(
        "delta was staged against a different database");
  // Certified applies diff the pre/post count maps; the snapshot is
  // O(state), which is the price of an independently checkable commit.
  std::vector<CountMap> before;
  if (cert != nullptr) before = counts_;
  auto fill_cert = [&](const ApplySummary& s) {
    if (cert == nullptr) return;
    cert->views.clear();
    cert->summary = s;
    cert->counting = true;
    for (size_t i = 0; i < view_queries_.size(); ++i) {
      ViewDelta vd;
      vd.predicate = view_queries_[i].head().predicate;
      vd.deltas =
          DiffCounts(i < before.size() ? before[i] : CountMap{}, counts_[i]);
      cert->views.push_back(std::move(vd));
    }
  };
  ApplySummary summary;
  if (delta.empty()) {
    summary.incremental = true;
    fill_cert(summary);
    return summary;
  }
  ++ctx.stats().ivm_applies;
  ctx.stats().ivm_base_delta_tuples += delta.delta_tuples();
  summary.inserted = delta.plus().TotalTuples();
  summary.retracted = delta.minus().TotalTuples();

  // Route the incremental-vs-rebuild choice through the planner: raw work
  // estimates from the cost model, pins and the subset-expansion cap from
  // the options, calibration factors from ctx.adaptive().
  auto size_of = [this](const std::string& p) { return base_.Get(p).size(); };
  auto plus_size = [&delta](const std::string& p) {
    return delta.plus().Get(p).size();
  };
  auto minus_size = [&delta](const std::string& p) {
    return delta.minus().Get(p).size();
  };
  double incremental = 0;
  double full = 0;
  size_t max_touched = 0;
  for (const Query& q : view_queries_) {
    incremental += plan::CountingDeltaEstimate(q, plus_size) +
                   plan::CountingDeltaEstimate(q, minus_size);
    full += plan::CountingRebuildEstimate(q, size_of);
    for (const Database* side : {&delta.plus(), &delta.minus()}) {
      size_t touched = 0;
      for (const Atom& a : q.body())
        if (!side->Get(a.predicate).empty()) ++touched;
      max_touched = std::max(max_touched, touched);
    }
  }
  const plan::IvmPathChoice choice = plan::ChooseIvmPath(
      ctx, plan::IvmKind::kCounting, incremental, full, options.rebuild_bias,
      max_touched, options.max_subset_positions, options.force_incremental,
      options.force_rebuild);

  if (choice.rebuild) {
    ++ctx.stats().ivm_rebuild_fallbacks;
    // The wholesale commit bypasses the index-patching path; drop the
    // persistent indexes and let the next incremental batch rebuild them.
    base_index_.clear();
    CQAC_RETURN_IF_ERROR(delta.CommitTo(&base_));
    Database old_views = std::move(views_);
    views_ = Database();
    for (size_t i = 0; i < view_queries_.size(); ++i)
      CQAC_RETURN_IF_ERROR(RebuildView(ctx, i));
    DiffTuples(old_views, views_, &summary.view_tuples_added,
               &summary.view_tuples_removed);
    ctx.stats().ivm_view_delta_tuples +=
        summary.view_tuples_added + summary.view_tuples_removed;
    maintained_ = false;
    summary.incremental = false;
    // Calibration feedback: a rebuild's work is linear in the scanned base
    // plus the rewritten view tuples (thread-invariant counts).
    plan::ObserveIvmOutcome(
        ctx, plan::IvmKind::kCounting, choice,
        static_cast<double>(base_.TotalTuples() + summary.view_tuples_added +
                            summary.view_tuples_removed));
    fill_cert(summary);
    return summary;
  }

  ++ctx.stats().ivm_incremental_applies;
  EnsureBaseIndexes();

  // One phase = one side of the delta counted via subset expansion: tasks
  // fan out over (view, touched-position subset, delta chunk) and
  // accumulate per-slot count maps. Positions in the subset read the staged
  // side, every other position reads the plain base_ through the persistent
  // column indexes — the insert phase runs before its commit (old base) and
  // the retract phase after (post base), which is exactly what the
  // expansion (B±D)^n - B^n needs. No overlay relation is copied and no
  // per-join index is built over base-sized input, so a small batch is
  // O(delta) work end to end. Counts are additive, so the merge commutes
  // and the result is identical at every thread count; slots are still
  // merged in task order for good measure.
  auto run_phase = [&](const Database& delta_side,
                       int64_t sign) -> Result<std::vector<CountMap>> {
    struct Task {
      size_t view;
      const Query* q;  // view query with the delta positions joined first
      std::vector<const Relation*> rels;
      const JoinIndexSource* indexes;
    };
    std::deque<Relation> chunk_store;  // stable addresses for chunked deltas
    std::deque<Query> query_store;     // stable addresses for reordered queries
    std::deque<BaseIndexSource> source_store;
    std::vector<Task> tasks;
    const size_t max_chunks =
        ctx.parallelism() > 0 && !TaskPool::InPoolTask()
            ? 4 * (ctx.parallelism() + 1)
            : 1;
    for (size_t v = 0; v < view_queries_.size(); ++v) {
      const Query& q = view_queries_[v];
      std::vector<size_t> touched;
      for (size_t i = 0; i < q.body().size(); ++i)
        if (!delta_side.Get(q.body()[i].predicate).empty()) touched.push_back(i);
      if (touched.empty()) continue;
      for (uint64_t mask = 1; mask < (uint64_t{1} << touched.size()); ++mask) {
        std::vector<char> from_delta(q.body().size(), 0);
        for (size_t b = 0; b < touched.size(); ++b)
          if ((mask >> b) & 1) from_delta[touched[b]] = 1;

        // Delta-first join order: the (tiny) delta positions bind their
        // variables immediately, so every base position becomes an indexed
        // probe instead of a leading full scan. The binding is by variable
        // id, so reordering never changes the counted set.
        std::vector<size_t> order;
        order.reserve(q.body().size());
        for (size_t i = 0; i < q.body().size(); ++i)
          if (from_delta[i]) order.push_back(i);
        for (size_t i = 0; i < q.body().size(); ++i)
          if (!from_delta[i]) order.push_back(i);
        query_store.push_back(q);
        Query& rq = query_store.back();
        rq.body().clear();
        for (size_t i : order) rq.body().push_back(q.body()[i]);

        source_store.emplace_back();
        BaseIndexSource& source = source_store.back();
        std::vector<const Relation*> rels;
        rels.reserve(order.size());
        for (size_t i : order) {
          const std::string& p = q.body()[i].predicate;
          if (from_delta[i]) {
            rels.push_back(&delta_side.Get(p));
            source.per_atom.push_back(nullptr);
          } else {
            rels.push_back(&base_.Get(p));
            source.per_atom.push_back(&base_index_.at(p));
          }
        }

        // Chunk the leading delta relation for pool fan-out.
        const Relation& d = *rels[0];
        std::vector<const Relation*> pivots;
        if (max_chunks <= 1 || d.size() < 2 * max_chunks) {
          pivots.push_back(&d);
        } else {
          const size_t num_chunks = std::min(d.size(), max_chunks);
          std::vector<Relation*> chunks;
          for (size_t c = 0; c < num_chunks; ++c) {
            chunk_store.emplace_back();
            chunks.push_back(&chunk_store.back());
          }
          size_t idx = 0;
          for (const Tuple& t : d) chunks[idx++ % num_chunks]->insert(t);
          pivots.assign(chunks.begin(), chunks.end());
        }
        for (const Relation* pivot : pivots) {
          Task task;
          task.view = v;
          task.q = &rq;
          task.rels = rels;
          task.rels[0] = pivot;
          task.indexes = &source;
          tasks.push_back(std::move(task));
        }
      }
    }

    std::vector<CountMap> slots(tasks.size());
    std::vector<char> aborted(tasks.size(), 0);
    CtxParallelFor(ctx, tasks.size(), [&](size_t t) {
      if (!CountJoin(ctx, *tasks[t].q, tasks[t].rels, tasks[t].indexes, sign,
                     &slots[t]))
        aborted[t] = 1;
    });
    for (char a : aborted)
      if (a) return BudgetExhausted(ctx);

    std::vector<CountMap> merged(view_queries_.size());
    for (size_t t = 0; t < tasks.size(); ++t)
      for (const auto& [tuple, d] : slots[t]) merged[tasks[t].view][tuple] += d;
    return merged;
  };

  // Retract phase: commit the removals first (patching the persistent
  // indexes tuple by tuple), then count the lost derivations against the
  // post-delete base.
  if (summary.retracted > 0) {
    for (const auto& [pred, rel] : delta.minus().relations())
      for (const Tuple& t : rel) {
        IndexRemovedTuple(pred, t);
        if (!base_.Remove(pred, t))
          return Status::Internal("staged retraction of absent tuple");
      }
    Result<std::vector<CountMap>> merged = run_phase(delta.minus(), -1);
    if (!merged.ok()) {
      // O(delta) rollback: an aborted phase must leave base and views in
      // agreement, so put the removed tuples (and their index entries)
      // back before reporting the abort.
      for (const auto& [pred, rel] : delta.minus().relations())
        for (const Tuple& t : rel)
          if (base_.Insert(pred, t).ok()) IndexInsertedTuple(pred, t);
      return merged.status();
    }
    for (size_t i = 0; i < view_queries_.size(); ++i)
      CQAC_RETURN_IF_ERROR(FoldCounts(i, merged.value()[i], &summary));
  }

  // Insert phase: count against the post-retract, pre-insert base (the
  // expansion reads the old base on non-delta positions), then commit the
  // insertions and patch the indexes.
  if (summary.inserted > 0) {
    CQAC_ASSIGN_OR_RETURN(std::vector<CountMap> merged,
                          run_phase(delta.plus(), +1));
    for (const auto& [pred, rel] : delta.plus().relations())
      for (const Tuple& t : rel) {
        CQAC_RETURN_IF_ERROR(base_.Insert(pred, t));
        IndexInsertedTuple(pred, t);
      }
    for (size_t i = 0; i < view_queries_.size(); ++i)
      CQAC_RETURN_IF_ERROR(FoldCounts(i, merged[i], &summary));
  }

  ctx.stats().ivm_view_delta_tuples +=
      summary.view_tuples_added + summary.view_tuples_removed;
  maintained_ = true;
  summary.incremental = true;
  // Calibration feedback: incremental work is linear in the delta plus the
  // view tuples it touched (thread-invariant counts).
  plan::ObserveIvmOutcome(
      ctx, plan::IvmKind::kCounting, choice,
      static_cast<double>(delta.delta_tuples() + summary.view_tuples_added +
                          summary.view_tuples_removed));
  fill_cert(summary);
  return summary;
}

Status MaterializedViewSet::FoldCounts(size_t i, const CountMap& delta,
                                       ApplySummary* summary) {
  const std::string& pred = view_queries_[i].head().predicate;
  for (const auto& [tuple, d] : delta) {
    if (d == 0) continue;
    auto it = counts_[i].find(tuple);
    const int64_t old_count = it == counts_[i].end() ? 0 : it->second;
    const int64_t new_count = old_count + d;
    if (new_count < 0)
      return Status::Internal(
          StrCat("negative derivation count for view '", pred, "'"));
    if (old_count == 0 && new_count > 0) {
      counts_[i].emplace(tuple, new_count);
      CQAC_RETURN_IF_ERROR(views_.Insert(pred, tuple));
      ++summary->view_tuples_added;
    } else if (old_count > 0 && new_count == 0) {
      counts_[i].erase(it);
      views_.Remove(pred, tuple);
      ++summary->view_tuples_removed;
    } else if (old_count > 0) {
      it->second = new_count;
    }
  }
  return Status::OK();
}

void MaterializedViewSet::EnsureBaseIndexes() {
  for (const Query& q : view_queries_) {
    for (const Atom& a : q.body()) {
      PredicateIndex& pi = base_index_[a.predicate];
      for (size_t col = 0; col < a.args.size(); ++col) {
        if (pi.count(col)) continue;
        ColumnIndex index;
        for (const Tuple& t : base_.Get(a.predicate))
          if (col < t.size()) index[t[col]].push_back(&t);
        pi.emplace(col, std::move(index));
      }
    }
  }
}

void MaterializedViewSet::IndexInsertedTuple(const std::string& pred,
                                             const Tuple& t) {
  auto pit = base_index_.find(pred);
  if (pit == base_index_.end()) return;
  const Relation& rel = base_.Get(pred);
  auto it = rel.find(t);
  if (it == rel.end()) return;
  const Tuple* stored = &*it;
  for (auto& [col, index] : pit->second)
    if (col < t.size()) index[t[col]].push_back(stored);
}

void MaterializedViewSet::IndexRemovedTuple(const std::string& pred,
                                            const Tuple& t) {
  auto pit = base_index_.find(pred);
  if (pit == base_index_.end()) return;
  const Relation& rel = base_.Get(pred);
  auto it = rel.find(t);
  if (it == rel.end()) return;
  const Tuple* stored = &*it;
  for (auto& [col, index] : pit->second) {
    if (col >= t.size()) continue;
    auto hit = index.find(t[col]);
    if (hit == index.end()) continue;
    std::vector<const Tuple*>& vec = hit->second;
    vec.erase(std::remove(vec.begin(), vec.end(), stored), vec.end());
    if (vec.empty()) index.erase(hit);
  }
}

Result<ApplySummary> MaterializedViewSet::ApplyInsert(
    EngineContext& ctx, const Database& facts, const MaintainOptions& options,
    MaintenanceCertificate* cert) {
  DeltaDatabase delta(&base_);
  CQAC_RETURN_IF_ERROR(delta.StageInsertAll(facts));
  return Apply(ctx, delta, options, cert);
}

Result<ApplySummary> MaterializedViewSet::ApplyRetract(
    EngineContext& ctx, const Database& facts, const MaintainOptions& options,
    MaintenanceCertificate* cert) {
  DeltaDatabase delta(&base_);
  CQAC_RETURN_IF_ERROR(delta.StageRetractAll(facts));
  return Apply(ctx, delta, options, cert);
}

// ---------------------------------------------------------------------------
// MaintainedProgram
// ---------------------------------------------------------------------------

namespace {

/// One rule firing with a fixed relation assignment; the unit the DRed and
/// resume rounds fan out over the context's pool.
struct FireTask {
  size_t rule;
  std::vector<const Relation*> rels;
};

/// Runs every task (possibly in parallel), keeping emitted head tuples that
/// pass `keep` (which must be safe to call concurrently and read-only), and
/// merges per-slot results into `*out` in task order. Sets are merged, so
/// the content is scheduling-independent.
Status RunFireTasks(EngineContext& ctx, const datalog::Engine& engine,
                    const std::vector<FireTask>& tasks,
                    FunctionRef<bool(const std::string&, const Tuple&)> keep,
                    std::map<std::string, Relation>* out) {
  std::vector<std::map<std::string, Relation>> slots(tasks.size());
  std::vector<Status> statuses(tasks.size(), Status::OK());
  std::vector<char> aborted(tasks.size(), 0);
  CtxParallelFor(ctx, tasks.size(), [&](size_t t) {
    if (ctx.ShouldStop()) {
      aborted[t] = 1;
      return;
    }
    statuses[t] = engine.FireRule(
        tasks[t].rule, tasks[t].rels,
        [&](const std::string& pred, Tuple tuple) {
          if (keep(pred, tuple)) slots[t][pred].insert(std::move(tuple));
        });
  });
  for (char a : aborted)
    if (a) return BudgetExhausted(ctx);
  for (size_t t = 0; t < tasks.size(); ++t) {
    CQAC_RETURN_IF_ERROR(statuses[t]);
    for (auto& [pred, rel] : slots[t])
      (*out)[pred].insert(rel.begin(), rel.end());
  }
  return Status::OK();
}

}  // namespace

MaintainedProgram::MaintainedProgram(datalog::Engine engine,
                                     datalog::EvalOptions options)
    : engine_(std::move(engine)),
      options_(options),
      idb_preds_(engine_.IdbPredicates()) {}

Status MaintainedProgram::Initialize(EngineContext& ctx, const Database& edb) {
  (void)ctx;
  CQAC_ASSIGN_OR_RETURN(idb_, engine_.Evaluate(edb, options_));
  edb_ = edb;
  maintained_ = false;
  return Status::OK();
}

Relation MaintainedProgram::QueryAnswers() const {
  Relation out;
  for (const Tuple& t : idb_.Get(engine_.query_predicate())) {
    bool has_skolem = false;
    for (const Value& v : t)
      if (datalog::IsSkolemValue(v)) has_skolem = true;
    if (!has_skolem) out.insert(t);
  }
  return out;
}

Result<ApplySummary> MaintainedProgram::Apply(EngineContext& ctx,
                                              const DeltaDatabase& delta,
                                              const MaintainOptions& options,
                                              MaintenanceCertificate* cert) {
  if (&delta.base() != &edb_)
    return Status::InvalidArgument(
        "delta was staged against a different database");
  for (const Database* side : {&delta.plus(), &delta.minus()})
    for (const auto& [pred, rel] : side->relations())
      if (!rel.empty() && idb_preds_.count(pred))
        return Status::InvalidArgument(
            StrCat("cannot stage changes to IDB predicate '", pred, "'"));

  // Certified applies diff pre/post IDB presence (tuples are derived or
  // not — DRed keeps no counts).
  std::map<std::string, std::map<Tuple, int64_t>> before;
  if (cert != nullptr)
    for (const std::string& p : idb_preds_)
      before.emplace(p, PresenceCounts(idb_.Get(p)));
  auto fill_cert = [&](const ApplySummary& s) {
    if (cert == nullptr) return;
    cert->views.clear();
    cert->summary = s;
    cert->counting = false;
    for (const std::string& p : idb_preds_) {
      ViewDelta vd;
      vd.predicate = p;
      vd.deltas = DiffCounts(before[p], PresenceCounts(idb_.Get(p)));
      cert->views.push_back(std::move(vd));
    }
  };

  ApplySummary summary;
  if (delta.empty()) {
    summary.incremental = true;
    fill_cert(summary);
    return summary;
  }
  ++ctx.stats().ivm_applies;
  ctx.stats().ivm_base_delta_tuples += delta.delta_tuples();
  summary.inserted = delta.plus().TotalTuples();
  summary.retracted = delta.minus().TotalTuples();

  auto size_of = [this](const std::string& p) {
    return idb_preds_.count(p) ? idb_.Get(p).size() : edb_.Get(p).size();
  };
  auto plus_size = [&delta](const std::string& p) {
    return delta.plus().Get(p).size();
  };
  auto minus_size = [&delta](const std::string& p) {
    return delta.minus().Get(p).size();
  };
  double incremental = 0;
  double full = 0;
  for (const datalog::EngineRule& er : engine_.rules()) {
    incremental += plan::DredDeltaEstimate(er.rule, plus_size, size_of) +
                   plan::DredDeltaEstimate(er.rule, minus_size, size_of);
    full += plan::DredRebuildEstimate(er.rule, size_of);
  }
  const plan::IvmPathChoice choice = plan::ChooseIvmPath(
      ctx, plan::IvmKind::kDred, incremental, full, options.rebuild_bias,
      /*max_touched=*/0, /*max_subset_positions=*/0, options.force_incremental,
      options.force_rebuild);

  if (choice.rebuild) {
    ++ctx.stats().ivm_rebuild_fallbacks;
    CQAC_RETURN_IF_ERROR(delta.CommitTo(&edb_));
    Database old_idb = std::move(idb_);
    idb_ = Database();
    CQAC_ASSIGN_OR_RETURN(idb_, engine_.Evaluate(edb_, options_));
    DiffTuples(old_idb, idb_, &summary.view_tuples_added,
               &summary.view_tuples_removed);
    ctx.stats().ivm_view_delta_tuples +=
        summary.view_tuples_added + summary.view_tuples_removed;
    maintained_ = false;
    summary.incremental = false;
    plan::ObserveIvmOutcome(
        ctx, plan::IvmKind::kDred, choice,
        static_cast<double>(edb_.TotalTuples() + idb_.TotalTuples()));
    fill_cert(summary);
    return summary;
  }

  ++ctx.stats().ivm_incremental_applies;
  CQAC_RETURN_IF_ERROR(ApplyDeletes(ctx, delta.minus(), &summary));
  CQAC_RETURN_IF_ERROR(ApplyInserts(ctx, delta.plus(), &summary));
  ctx.stats().ivm_view_delta_tuples +=
      summary.view_tuples_added + summary.view_tuples_removed;
  maintained_ = true;
  summary.incremental = true;
  plan::ObserveIvmOutcome(
      ctx, plan::IvmKind::kDred, choice,
      static_cast<double>(delta.delta_tuples() + summary.view_tuples_added +
                          summary.view_tuples_removed));
  fill_cert(summary);
  return summary;
}

Status MaintainedProgram::Resume(EngineContext& ctx,
                                 std::map<std::string, Relation> delta) {
  const std::vector<datalog::EngineRule>& rules = engine_.rules();
  auto rel_for = [this](const std::string& p) -> const Relation& {
    return idb_preds_.count(p) ? idb_.Get(p) : edb_.Get(p);
  };
  size_t iterations = 0;
  while (true) {
    size_t delta_size = 0;
    for (const auto& [p, r] : delta) delta_size += r.size();
    if (delta_size == 0) break;
    if (++iterations > options_.max_iterations)
      return Status::ResourceExhausted("ivm resume iteration limit");
    if (ctx.ShouldStop()) return BudgetExhausted(ctx);

    std::vector<FireTask> tasks;
    for (size_t r = 0; r < rules.size(); ++r) {
      const Rule& rule = rules[r].rule;
      for (size_t i = 0; i < rule.body().size(); ++i) {
        const std::string& p = rule.body()[i].predicate;
        if (!idb_preds_.count(p)) continue;
        auto it = delta.find(p);
        if (it == delta.end() || it->second.empty()) continue;
        FireTask task;
        task.rule = r;
        for (size_t j = 0; j < rule.body().size(); ++j)
          task.rels.push_back(j == i ? &it->second
                                     : &rel_for(rule.body()[j].predicate));
        tasks.push_back(std::move(task));
      }
    }
    std::map<std::string, Relation> next;
    CQAC_RETURN_IF_ERROR(RunFireTasks(
        ctx, engine_, tasks,
        [this](const std::string& pred, const Tuple& t) {
          return !idb_.Contains(pred, t);
        },
        &next));
    for (const auto& [pred, rel] : next)
      for (const Tuple& t : rel) CQAC_RETURN_IF_ERROR(idb_.Insert(pred, t));
    delta = std::move(next);
  }
  return Status::OK();
}

Status MaintainedProgram::ApplyInserts(EngineContext& ctx,
                                       const Database& plus,
                                       ApplySummary* summary) {
  if (plus.TotalTuples() == 0) return Status::OK();
  const std::vector<datalog::EngineRule>& rules = engine_.rules();
  auto rel_for = [this](const std::string& p) -> const Relation& {
    return idb_preds_.count(p) ? idb_.Get(p) : edb_.Get(p);
  };

  // Post-insert overlay for the touched EDB relations.
  std::map<std::string, Relation> post;
  for (const auto& [pred, rel] : plus.relations()) {
    if (rel.empty()) continue;
    Relation r = edb_.Get(pred);
    r.insert(rel.begin(), rel.end());
    post[pred] = std::move(r);
  }

  // Seed round: pivot each EDB body position on the inserted tuples,
  // positions before it pre-insert, positions after it post-insert.
  std::vector<FireTask> tasks;
  for (size_t r = 0; r < rules.size(); ++r) {
    const Rule& rule = rules[r].rule;
    for (size_t i = 0; i < rule.body().size(); ++i) {
      const Relation& d = plus.Get(rule.body()[i].predicate);
      if (d.empty()) continue;
      FireTask task;
      task.rule = r;
      for (size_t j = 0; j < rule.body().size(); ++j) {
        const std::string& p = rule.body()[j].predicate;
        if (j == i) {
          task.rels.push_back(&d);
        } else if (j > i && post.count(p)) {
          task.rels.push_back(&post.at(p));
        } else {
          task.rels.push_back(&rel_for(p));
        }
      }
      tasks.push_back(std::move(task));
    }
  }
  std::map<std::string, Relation> seed;
  CQAC_RETURN_IF_ERROR(RunFireTasks(
      ctx, engine_, tasks,
      [this](const std::string& pred, const Tuple& t) {
        return !idb_.Contains(pred, t);
      },
      &seed));

  for (const auto& [pred, rel] : plus.relations())
    for (const Tuple& t : rel) CQAC_RETURN_IF_ERROR(edb_.Insert(pred, t));
  for (const auto& [pred, rel] : seed) {
    for (const Tuple& t : rel) CQAC_RETURN_IF_ERROR(idb_.Insert(pred, t));
    summary->view_tuples_added += rel.size();
  }

  const size_t idb_before = idb_.TotalTuples();
  CQAC_RETURN_IF_ERROR(Resume(ctx, std::move(seed)));
  summary->view_tuples_added += idb_.TotalTuples() - idb_before;
  return Status::OK();
}

Status MaintainedProgram::ApplyDeletes(EngineContext& ctx,
                                       const Database& minus,
                                       ApplySummary* summary) {
  if (minus.TotalTuples() == 0) return Status::OK();
  const std::vector<datalog::EngineRule>& rules = engine_.rules();
  auto rel_for = [this](const std::string& p) -> const Relation& {
    return idb_preds_.count(p) ? idb_.Get(p) : edb_.Get(p);
  };

  // 1. Over-delete: everything transitively derivable through a retracted
  // tuple, computed against the PRE-delete relations (the standard DRed
  // over-approximation).
  std::map<std::string, Relation> deleted;
  std::map<std::string, Relation> frontier;
  bool first_round = true;
  size_t iterations = 0;
  while (true) {
    if (++iterations > options_.max_iterations)
      return Status::ResourceExhausted("ivm over-delete iteration limit");
    if (ctx.ShouldStop()) return BudgetExhausted(ctx);
    std::vector<FireTask> tasks;
    for (size_t r = 0; r < rules.size(); ++r) {
      const Rule& rule = rules[r].rule;
      for (size_t i = 0; i < rule.body().size(); ++i) {
        const std::string& p = rule.body()[i].predicate;
        const Relation* pivot = nullptr;
        if (first_round) {
          if (!idb_preds_.count(p) && !minus.Get(p).empty())
            pivot = &minus.Get(p);
        } else {
          auto it = frontier.find(p);
          if (it != frontier.end() && !it->second.empty())
            pivot = &it->second;
        }
        if (pivot == nullptr) continue;
        FireTask task;
        task.rule = r;
        for (size_t j = 0; j < rule.body().size(); ++j)
          task.rels.push_back(j == i ? pivot
                                     : &rel_for(rule.body()[j].predicate));
        tasks.push_back(std::move(task));
      }
    }
    if (tasks.empty()) break;
    std::map<std::string, Relation> over;
    CQAC_RETURN_IF_ERROR(RunFireTasks(
        ctx, engine_, tasks,
        [this, &deleted](const std::string& pred, const Tuple& t) {
          return idb_.Contains(pred, t) && !ContainsIn(deleted, pred, t);
        },
        &over));
    size_t new_deleted = 0;
    for (const auto& [pred, rel] : over) {
      for (const Tuple& t : rel)
        if (deleted[pred].insert(t).second) ++new_deleted;
    }
    first_round = false;
    if (new_deleted == 0) break;
    frontier = std::move(over);
  }

  // 2. Commit: drop the retracted EDB tuples and the over-deleted IDB set.
  for (const auto& [pred, rel] : minus.relations())
    for (const Tuple& t : rel)
      if (!edb_.Remove(pred, t))
        return Status::Internal("staged retraction of absent tuple");
  size_t overdeleted = 0;
  for (const auto& [pred, rel] : deleted)
    for (const Tuple& t : rel) {
      idb_.Remove(pred, t);
      ++overdeleted;
    }
  ctx.stats().ivm_overdeletions += overdeleted;

  // 3. Re-derive: rescue over-deleted tuples with alternative derivations
  // in the surviving facts. First a full pass over rules whose heads have
  // pending tuples; then semi-naive rounds pivoting on the rescued set.
  std::map<std::string, Relation> pending = deleted;
  size_t rescued_total = 0;
  auto keep_pending = [this, &pending](const std::string& pred,
                                       const Tuple& t) {
    return ContainsIn(pending, pred, t) && !idb_.Contains(pred, t);
  };
  std::vector<FireTask> tasks;
  for (size_t r = 0; r < rules.size(); ++r) {
    const Rule& rule = rules[r].rule;
    auto it = pending.find(rule.head().predicate);
    if (it == pending.end() || it->second.empty()) continue;
    FireTask task;
    task.rule = r;
    for (const Atom& a : rule.body()) task.rels.push_back(&rel_for(a.predicate));
    tasks.push_back(std::move(task));
  }
  std::map<std::string, Relation> rescued;
  CQAC_RETURN_IF_ERROR(
      RunFireTasks(ctx, engine_, tasks, keep_pending, &rescued));
  iterations = 0;
  while (true) {
    size_t n = 0;
    for (const auto& [pred, rel] : rescued) n += rel.size();
    if (n == 0) break;
    if (++iterations > options_.max_iterations)
      return Status::ResourceExhausted("ivm re-derive iteration limit");
    if (ctx.ShouldStop()) return BudgetExhausted(ctx);
    for (const auto& [pred, rel] : rescued) {
      for (const Tuple& t : rel) {
        CQAC_RETURN_IF_ERROR(idb_.Insert(pred, t));
        pending[pred].erase(t);
      }
    }
    rescued_total += n;
    std::vector<FireTask> round_tasks;
    for (size_t r = 0; r < rules.size(); ++r) {
      const Rule& rule = rules[r].rule;
      auto hp = pending.find(rule.head().predicate);
      if (hp == pending.end() || hp->second.empty()) continue;
      for (size_t i = 0; i < rule.body().size(); ++i) {
        const std::string& p = rule.body()[i].predicate;
        auto it = rescued.find(p);
        if (it == rescued.end() || it->second.empty()) continue;
        FireTask task;
        task.rule = r;
        for (size_t j = 0; j < rule.body().size(); ++j)
          task.rels.push_back(j == i ? &it->second
                                     : &rel_for(rule.body()[j].predicate));
        round_tasks.push_back(std::move(task));
      }
    }
    std::map<std::string, Relation> next;
    CQAC_RETURN_IF_ERROR(
        RunFireTasks(ctx, engine_, round_tasks, keep_pending, &next));
    rescued = std::move(next);
  }
  ctx.stats().ivm_rederivations += rescued_total;
  summary->view_tuples_removed += overdeleted - rescued_total;
  return Status::OK();
}

}  // namespace ivm
}  // namespace cqac
