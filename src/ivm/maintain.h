// Incremental view maintenance: keep materialized query results consistent
// with a stream of base-relation inserts and retracts without rebuilding
// from scratch.
//
// Two maintainers, one per program class (docs/ivm.md):
//
//   * MaterializedViewSet — non-recursive CQAC view sets, counting-based.
//     Each view tuple carries its derivation count (number of satisfying
//     body assignments), so a retraction decrements counts and deletes a
//     tuple exactly when its last derivation disappears — no re-derivation
//     needed. Count deltas come from the subset expansion of the join: for
//     insert delta D+ over old base B, (B+D+)^n - B^n = the sum over every
//     nonempty subset S of delta-touched body positions of the join where
//     S-positions read D+ and the rest read B. Retractions mirror this
//     against the post-delete base with sign -1. Because the non-delta
//     positions always read the plain owned base (never a base-union-delta
//     overlay), they are served by persistent per-column hash indexes that
//     are built once and patched in O(delta) as batches commit — a
//     single-fact apply does O(delta) work, not O(base).
//
//   * MaintainedProgram — recursive Datalog programs (the Section 5 MCRs),
//     DRed-style: inserts seed a semi-naive resume of the existing engine;
//     deletes over-delete everything transitively touching a retracted
//     tuple, then re-derive the survivors from the remaining facts.
//
// Both maintainers estimate the incremental work per batch and fall back to
// a full rebuild when a large delta would cost more than recomputing
// (MaintainOptions::rebuild_bias). Both thread an EngineContext through:
// budget/deadline/cancel abort the apply with kResourceExhausted, ivm_*
// stat counters record the maintenance work, and the counting maintainer
// fans delta chunks out over the context's TaskPool — derivation counts are
// additive, so chunk merges commute and the maintained state is
// byte-identical at every thread count.
#ifndef CQAC_IVM_MAINTAIN_H_
#define CQAC_IVM_MAINTAIN_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/base/status.h"
#include "src/datalog/engine.h"
#include "src/engine/context.h"
#include "src/eval/database.h"
#include "src/ir/query.h"
#include "src/ir/view.h"
#include "src/ivm/delta.h"

namespace cqac {
namespace ivm {

/// value -> the base tuples whose indexed column holds it. The pointers
/// reference tuples inside the owning Database's relation sets; std::set
/// nodes are address-stable, so unrelated inserts/erases never invalidate
/// them.
using ColumnIndex = std::unordered_map<Value, std::vector<const Tuple*>>;

/// column -> ColumnIndex, covering every column a view body can probe.
using PredicateIndex = std::map<size_t, ColumnIndex>;

/// Per-batch policy knobs. The incremental-vs-rebuild choice itself is made
/// by the planner (plan::ChooseIvmPath), which combines these pins with the
/// work estimates and the context's self-tuning calibration factors.
struct MaintainOptions {
  /// Fall back to a full rebuild when the (calibrated) incremental work
  /// estimate exceeds rebuild_bias × the (calibrated) rebuild estimate.
  double rebuild_bias = 1.0;

  /// Cap on the number of delta-touched body positions the counting
  /// maintainer will expand incrementally: a delta side touching k
  /// positions of one view body expands into 2^k - 1 subset joins, so past
  /// the cap Apply falls back to a rebuild regardless of the cost
  /// estimates. The default preserves the historical cutoff; 0 disables
  /// incremental maintenance for any delta that touches a body at all.
  size_t max_subset_positions = 10;

  /// Force one path regardless of the estimates (benchmarks, tests).
  bool force_incremental = false;
  bool force_rebuild = false;
};

/// What one Apply did.
struct ApplySummary {
  size_t inserted = 0;            ///< base tuples added
  size_t retracted = 0;           ///< base tuples removed
  size_t view_tuples_added = 0;   ///< derived tuples that appeared
  size_t view_tuples_removed = 0; ///< derived tuples that disappeared
  bool incremental = false;       ///< false when this batch was rebuilt
};

/// One touched tuple's count transition across a certified Apply. For the
/// counting maintainer the counts are derivation counts; for DRed they are
/// 0/1 presence.
struct TupleCountDelta {
  Tuple tuple;
  int64_t old_count = 0;
  int64_t new_count = 0;
};

/// The touched-tuple set of one view (or IDB predicate) across one Apply.
struct ViewDelta {
  std::string predicate;
  std::vector<TupleCountDelta> deltas;  ///< ascending tuple order
};

/// A machine-checkable record of one committed Apply: every touched tuple
/// of every maintained relation with its before/after count, plus the
/// summary the caller saw. The auditor (src/analysis/audit) replays it
/// against a from-scratch re-evaluation of the post-commit database —
/// independent of the O(delta) maintenance that produced it. Emission is
/// opt-in (the `cert` out-parameter) because snapshotting the counts is
/// O(state), not O(delta).
struct MaintenanceCertificate {
  std::vector<ViewDelta> views;  ///< one entry per maintained predicate
  ApplySummary summary;
  bool counting = false;  ///< true: derivation counts; false: 0/1 presence
};

/// A set of non-recursive CQAC views materialized over an owned base
/// database, maintained under insert/retract batches via per-tuple
/// derivation counts.
///
/// Thread-compatible: one coordinator mutates it at a time (Apply itself
/// fans out internally over the context's pool).
class MaterializedViewSet {
 public:
  /// tuple -> derivation count for one view. Public because durability
  /// snapshots (src/store) serialize the counts: recovery must restore them
  /// exactly or later retractions would delete view tuples too early/late.
  using CountMap = std::map<Tuple, int64_t>;

  MaterializedViewSet() = default;

  /// Registers `view` and materializes it (with counts) over the current
  /// base. Fails if a view with the same head predicate is registered.
  Status AddView(EngineContext& ctx, const Query& view);

  /// Replaces the registered views wholesale and re-materializes.
  Status ResetViews(EngineContext& ctx, const ViewSet& views);

  /// Applies one staged batch. The delta must have been staged against
  /// base(). On kResourceExhausted the batch may be partially applied (the
  /// retract half may have landed while the insert half did not; an aborted
  /// half is rolled back), but base and views always agree.
  /// When `cert` is non-null, a successful Apply fills it with the exact
  /// per-tuple count transitions of this batch (O(state) snapshotting).
  Result<ApplySummary> Apply(EngineContext& ctx, const DeltaDatabase& delta,
                             const MaintainOptions& options = {},
                             MaintenanceCertificate* cert = nullptr);

  /// Convenience: stages every fact of `facts` and applies.
  Result<ApplySummary> ApplyInsert(EngineContext& ctx, const Database& facts,
                                   const MaintainOptions& options = {},
                                   MaintenanceCertificate* cert = nullptr);
  Result<ApplySummary> ApplyRetract(EngineContext& ctx, const Database& facts,
                                    const MaintainOptions& options = {},
                                    MaintenanceCertificate* cert = nullptr);

  /// The owned base database (read-only; mutate via Apply).
  const Database& base() const { return base_; }

  /// The materialized view database {v_i -> v_i(base)}. Always exactly
  /// equal to MaterializeViews(view set, base()).
  const Database& views() const { return views_; }

  const std::vector<Query>& view_queries() const { return view_queries_; }

  /// Per-view derivation counts, parallel to view_queries().
  const std::vector<CountMap>& counts() const { return counts_; }

  /// Adopts externally recovered state wholesale — the durability snapshot
  /// loader's O(state-size) path that does NO rematerialization (no joins):
  /// `view_db` must already equal the materialization implied by `counts`,
  /// which must be parallel to `views`. The base indexes are left empty and
  /// rebuilt lazily by the next incremental Apply, exactly as after a
  /// rebuild fallback.
  Status RestoreSnapshot(Database base, std::vector<Query> views,
                         std::vector<CountMap> counts, Database view_db,
                         bool maintained);

  /// True while the state is incrementally maintained: the most recent
  /// Apply (if any) took the incremental path. A fallback rebuild resets
  /// it to false until the next incremental batch.
  bool maintained() const { return maintained_; }

  /// Drops all state: base, views, counts.
  void Reset();

 private:
  /// Recomputes counts_[i] and views_ entries for view i from base_.
  Status RebuildView(EngineContext& ctx, size_t i);

  /// Folds one view's count delta into counts_/views_.
  Status FoldCounts(size_t i, const CountMap& delta, ApplySummary* summary);

  /// Builds any missing persistent column index over base_ for the
  /// (predicate, column) pairs the registered view bodies can probe.
  /// O(base) per missing column, a no-op once built.
  void EnsureBaseIndexes();

  /// Patches base_index_ for one committed tuple. IndexRemovedTuple must
  /// run while the tuple is still in base_ (it resolves the stored
  /// address); IndexInsertedTuple after the insert landed.
  void IndexInsertedTuple(const std::string& pred, const Tuple& t);
  void IndexRemovedTuple(const std::string& pred, const Tuple& t);

  Database base_;
  Database views_;
  std::vector<Query> view_queries_;
  std::vector<CountMap> counts_;

  /// Persistent single-column hash indexes over base_ for every column some
  /// view body reads. Built lazily (first incremental Apply), patched in
  /// O(delta) as batches commit, and dropped whenever base_ changes without
  /// going through the patching commits (rebuild fallback, Reset).
  std::map<std::string, PredicateIndex> base_index_;
  bool maintained_ = false;
};

/// A recursive Datalog program (datalog::Engine rules) maintained to
/// fixpoint over an owned EDB, DRed-style.
///
/// On a non-OK Apply the internal state is unspecified; call Initialize
/// again before further use.
class MaintainedProgram {
 public:
  explicit MaintainedProgram(datalog::Engine engine,
                             datalog::EvalOptions options = {});

  /// (Re)runs the program to fixpoint over `edb` and adopts it as the
  /// maintained state.
  Status Initialize(EngineContext& ctx, const Database& edb);

  /// Applies one staged batch of EDB changes (the delta must have been
  /// staged against edb()). Staging changes to IDB predicates is an error.
  /// When `cert` is non-null, a successful Apply fills it with the 0/1
  /// presence transitions of every touched IDB tuple.
  Result<ApplySummary> Apply(EngineContext& ctx, const DeltaDatabase& delta,
                             const MaintainOptions& options = {},
                             MaintenanceCertificate* cert = nullptr);

  const Database& edb() const { return edb_; }
  const Database& idb() const { return idb_; }

  /// The maintained program's engine (for auditors that re-evaluate from
  /// scratch).
  const datalog::Engine& engine() const { return engine_; }

  /// The query predicate's relation with Skolem-carrying tuples removed
  /// (same convention as datalog::Engine::Query).
  Relation QueryAnswers() const;

  /// True while the most recent Apply (if any) was incremental.
  bool maintained() const { return maintained_; }

 private:
  /// One semi-naive continuation: runs rounds pivoting on `delta` IDB
  /// relations until empty, folding new tuples into idb_.
  Status Resume(EngineContext& ctx, std::map<std::string, Relation> delta);

  /// DRed delete phase for `minus` (a subset of edb_).
  Status ApplyDeletes(EngineContext& ctx, const Database& minus,
                      ApplySummary* summary);

  /// Seed-and-resume insert phase for `plus` (disjoint from edb_).
  Status ApplyInserts(EngineContext& ctx, const Database& plus,
                      ApplySummary* summary);

  datalog::Engine engine_;
  datalog::EvalOptions options_;
  std::set<std::string> idb_preds_;
  Database edb_;
  Database idb_;
  bool maintained_ = false;
};

}  // namespace ivm
}  // namespace cqac

#endif  // CQAC_IVM_MAINTAIN_H_
