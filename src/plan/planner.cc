#include "src/plan/planner.h"

#include <algorithm>
#include <cstdio>
#include <numeric>

#include "src/base/strings.h"

namespace cqac {
namespace plan {
namespace {

/// Deterministic double rendering for decisions and surfaced plans.
std::string Est(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

std::string Fac(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", v);
  return buf;
}

/// Model cost of one containment check during union pruning, in the same
/// "tuple probes" unit the eval estimates use. The checks are symbolic
/// (homomorphism search over a handful of subgoals) and memoized per
/// context, so a flat constant is the right granularity.
constexpr double kContainmentCheckCost = 256.0;

/// Estimated rows of `a` after crediting constant-bound columns with their
/// distinct-count selectivity (unknown distincts give no credit).
double EffectiveRows(const Atom& a, const Cardinalities& cards) {
  double rows = static_cast<double>(cards.rows(a.predicate));
  for (size_t c = 0; c < a.args.size(); ++c) {
    if (!a.args[c].is_const()) continue;
    size_t d = cards.distinct(a.predicate, c);
    if (d > 1) rows /= static_cast<double>(d);
  }
  return rows;
}

/// Estimated growth factor of joining `a` into an intermediate that already
/// binds the variables flagged in `bound`: effective rows divided by the
/// distinct count of every join-bound column (the independence-assumption
/// staple).
double GrowthFactor(const Atom& a, const Cardinalities& cards,
                    const std::vector<bool>& bound) {
  double g = EffectiveRows(a, cards);
  for (size_t c = 0; c < a.args.size(); ++c) {
    const Term& t = a.args[c];
    if (!t.is_var()) continue;
    if (t.var() >= static_cast<int>(bound.size()) || !bound[t.var()]) continue;
    size_t d = cards.distinct(a.predicate, c);
    if (d > 1) g /= static_cast<double>(d);
  }
  return g;
}

void BindAtomVars(const Atom& a, std::vector<bool>* bound) {
  for (const Term& t : a.args)
    if (t.is_var() && t.var() < static_cast<int>(bound->size()))
      (*bound)[t.var()] = true;
}

/// Summed intermediate-result sizes of executing `q`'s body in `order`.
double OrderCost(const Query& q, const std::vector<size_t>& order,
                 const Cardinalities& cards) {
  std::vector<bool> bound(q.num_vars(), false);
  double inter = 1;
  double cost = 0;
  for (size_t i : order) {
    const Atom& a = q.body()[i];
    inter *= GrowthFactor(a, cards, bound);
    cost += inter;
    BindAtomVars(a, &bound);
  }
  return cost;
}

std::string OrderToString(const std::vector<size_t>& order) {
  std::vector<std::string> parts;
  parts.reserve(order.size());
  for (size_t i : order) parts.push_back(StrCat(i));
  return StrCat("[", Join(parts, ", "), "]");
}

ArmCalibration& IvmArm(EngineContext& ctx, IvmKind kind, bool rebuild) {
  AdaptiveState& a = ctx.adaptive();
  if (kind == IvmKind::kCounting)
    return rebuild ? a.ivm_rebuild : a.ivm_incremental;
  return rebuild ? a.dred_rebuild : a.dred_incremental;
}

}  // namespace

std::string Decision::ToString() const {
  std::string s = StrCat(kind, ": ", choice, " (est ", Est(est_chosen),
                         " vs ", Est(est_alternative), ")");
  if (forced) s += " [forced]";
  if (!detail.empty()) s += StrCat(" — ", detail);
  return s;
}

std::string Decision::ToJson() const {
  return StrCat("{\"kind\":\"", kind, "\",\"choice\":\"", choice,
                "\",\"est_chosen\":", Est(est_chosen),
                ",\"est_alternative\":", Est(est_alternative),
                ",\"forced\":", forced ? "true" : "false", ",\"detail\":\"",
                detail, "\"}");
}

std::string Plan::ToString() const {
  std::string out;
  for (const Decision& d : decisions) out += StrCat("  ", d.ToString(), "\n");
  return out;
}

std::string Plan::ToJson() const {
  std::string out = "{\"decisions\":[";
  for (size_t i = 0; i < decisions.size(); ++i)
    out += StrCat(i ? "," : "", decisions[i].ToJson());
  out += "]}";
  return out;
}

JoinOrderPlan PlanJoinOrder(const Query& q, const Cardinalities& cards) {
  const size_t n = q.body().size();
  JoinOrderPlan p;
  p.order.resize(n);
  std::iota(p.order.begin(), p.order.end(), size_t{0});
  p.est_syntactic = OrderCost(q, p.order, cards);
  p.est_planned = p.est_syntactic;
  if (n < 2) return p;

  // Greedy: repeatedly take the unused atom with the smallest estimated
  // growth against the variables bound so far. Ties break on the original
  // index, which keeps the choice deterministic and identity-favoring.
  std::vector<bool> used(n, false);
  std::vector<bool> bound(q.num_vars(), false);
  std::vector<size_t> greedy;
  greedy.reserve(n);
  for (size_t step = 0; step < n; ++step) {
    size_t best = n;
    double best_growth = 0;
    for (size_t i = 0; i < n; ++i) {
      if (used[i]) continue;
      double g = GrowthFactor(q.body()[i], cards, bound);
      if (best == n || g < best_growth) {
        best = i;
        best_growth = g;
      }
    }
    used[best] = true;
    greedy.push_back(best);
    BindAtomVars(q.body()[best], &bound);
  }

  const double greedy_cost = OrderCost(q, greedy, cards);
  // Keep the syntactic order unless the model strictly prefers the greedy
  // one — "matches or beats" by construction, and no churn on ties.
  if (greedy != p.order && greedy_cost < p.est_syntactic) {
    p.order = std::move(greedy);
    p.est_planned = greedy_cost;
    p.reordered = true;
  }
  return p;
}

JoinOrderPlan PlanJoinOrder(const Query& q, const StatsView& stats) {
  auto rows = [&stats](const std::string& p) { return stats.Rows(p); };
  auto distinct = [&stats](const std::string& p, size_t c) {
    return stats.DistinctEstimate(p, c);
  };
  return PlanJoinOrder(q, Cardinalities{rows, distinct});
}

double EstimateEvalCost(const Query& q, const Cardinalities& cards) {
  std::vector<size_t> identity(q.body().size());
  std::iota(identity.begin(), identity.end(), size_t{0});
  return OrderCost(q, identity, cards);
}

std::string JoinOrderPlan::ToString() const {
  return StrCat(reordered ? OrderToString(order) : "syntactic", " est ",
                Est(est_planned), " (syntactic ", Est(est_syntactic), ")");
}

Decision JoinOrderPlan::ToDecision() const {
  Decision d;
  d.kind = "join-order";
  d.choice = reordered ? OrderToString(order) : "syntactic";
  d.est_chosen = est_planned;
  d.est_alternative = est_syntactic;
  return d;
}

double DredDeltaEstimate(const Query& q,
                         FunctionRef<size_t(const std::string&)> delta_size,
                         FunctionRef<size_t(const std::string&)> rel_size) {
  double total = 0;
  for (size_t i = 0; i < q.body().size(); ++i) {
    size_t d = delta_size(q.body()[i].predicate);
    if (d == 0) continue;
    double prod = static_cast<double>(d);
    for (size_t j = 0; j < q.body().size(); ++j) {
      if (j == i) continue;
      prod *= static_cast<double>(
          std::max<size_t>(1, rel_size(q.body()[j].predicate)));
    }
    total += prod;
  }
  return total;
}

double DredRebuildEstimate(const Query& q,
                           FunctionRef<size_t(const std::string&)> rel_size) {
  double prod = 1;
  for (const Atom& a : q.body())
    prod *= static_cast<double>(std::max<size_t>(1, rel_size(a.predicate)));
  return prod;
}

double CountingDeltaEstimate(
    const Query& q, FunctionRef<size_t(const std::string&)> delta_size) {
  double total = 0;
  for (const Atom& a : q.body()) {
    size_t d = delta_size(a.predicate);
    if (d > 0)
      total += static_cast<double>(d) * static_cast<double>(q.body().size());
  }
  return total;
}

double CountingRebuildEstimate(
    const Query& q, FunctionRef<size_t(const std::string&)> rel_size) {
  double total = 0;
  for (const Atom& a : q.body())
    total += static_cast<double>(rel_size(a.predicate));
  return total;
}

Decision IvmPathChoice::ToDecision() const {
  Decision d;
  d.kind = "ivm-path";
  d.choice = rebuild ? "rebuild" : "incremental";
  d.est_chosen = rebuild ? est_rebuild : est_incremental;
  d.est_alternative = rebuild ? est_incremental : est_rebuild;
  d.forced = forced;
  d.detail = StrCat("bias ", Fac(rebuild_bias), ", calibration ",
                    Fac(incremental_factor), "/", Fac(rebuild_factor));
  if (max_subset_positions > 0)
    d.detail += StrCat(", touched ", max_touched, "/", max_subset_positions);
  return d;
}

IvmPathChoice ChooseIvmPath(EngineContext& ctx, IvmKind kind,
                            double est_incremental, double est_rebuild,
                            double rebuild_bias, size_t max_touched,
                            size_t max_subset_positions,
                            bool force_incremental, bool force_rebuild) {
  ++ctx.stats().plan_decisions;
  IvmPathChoice c;
  c.est_incremental = est_incremental;
  c.est_rebuild = est_rebuild;
  c.rebuild_bias = rebuild_bias;
  c.max_touched = max_touched;
  c.max_subset_positions = max_subset_positions;
  c.incremental_factor = IvmArm(ctx, kind, /*rebuild=*/false).factor;
  c.rebuild_factor = IvmArm(ctx, kind, /*rebuild=*/true).factor;
  if (force_rebuild) {
    c.rebuild = true;
    c.forced = true;
    return c;
  }
  if (force_incremental) {
    c.forced = true;
    return c;
  }
  if (max_subset_positions > 0 && max_touched > max_subset_positions) {
    // Structural guard, not a cost call: the subset expansion alone would
    // dwarf a rebuild (see MaintainOptions::max_subset_positions).
    c.rebuild = true;
    c.forced = true;
    return c;
  }
  c.rebuild = est_incremental * c.incremental_factor >
              rebuild_bias * est_rebuild * c.rebuild_factor;
  return c;
}

void ObserveIvmOutcome(EngineContext& ctx, IvmKind kind,
                       const IvmPathChoice& choice, double observed_work) {
  const double est = choice.rebuild ? choice.est_rebuild
                                    : choice.est_incremental;
  const double ratio = observed_work / std::max(1.0, est);
  if (IvmArm(ctx, kind, choice.rebuild).Observe(ratio))
    ++ctx.stats().plan_retunes;
}

Decision UnionEvalChoice::ToDecision() const {
  Decision d;
  d.kind = "union-eval";
  d.choice = prune ? "prune" : "direct";
  const double prune_total =
      est_prune_cost + (1.0 - expected_fraction) * est_eval;
  d.est_chosen = prune ? prune_total : est_eval;
  d.est_alternative = prune ? est_eval : prune_total;
  d.forced = forced;
  d.detail = StrCat(disjuncts, " disjuncts, expected prunable fraction ",
                    Fac(expected_fraction));
  return d;
}

UnionEvalChoice ChooseUnionEval(EngineContext& ctx, size_t disjuncts,
                                double est_eval, UnionEvalPin pin) {
  ++ctx.stats().plan_decisions;
  UnionEvalChoice c;
  c.disjuncts = disjuncts;
  c.est_eval = est_eval;
  c.expected_fraction = ctx.adaptive().union_prune.factor;
  // Greedy pruning checks each disjunct against the kept ones: ~n^2/2
  // memoized containment calls.
  c.est_prune_cost = kContainmentCheckCost * static_cast<double>(disjuncts) *
                     static_cast<double>(disjuncts) / 2.0;
  if (pin != UnionEvalPin::kAuto) {
    c.prune = pin == UnionEvalPin::kForcePrune;
    c.forced = true;
    return c;
  }
  c.prune = disjuncts >= 2 &&
            c.expected_fraction * est_eval > c.est_prune_cost;
  return c;
}

void ObserveUnionPrune(EngineContext& ctx, size_t disjuncts, size_t pruned) {
  if (disjuncts == 0) return;
  ctx.stats().plan_unions_pruned += pruned;
  const double fraction =
      static_cast<double>(pruned) / static_cast<double>(disjuncts);
  if (ctx.adaptive().union_prune.Observe(fraction))
    ++ctx.stats().plan_retunes;
}

}  // namespace plan
}  // namespace cqac
