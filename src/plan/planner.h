// The planner: one place for every cost decision the engine makes.
//
// Callers that used to choose ad hoc — the rewriting dispatcher
// (src/rewriting/answer.cc), the batch join evaluator's atom order
// (src/eval/evaluate.cc), the IVM incremental-vs-rebuild heuristics
// (src/ivm/maintain.cc) — now ask the planner, which consumes cardinality
// statistics (src/plan/stats.h) plus the self-tuning calibration factors in
// EngineContext::adaptive() and records every comparison as an explicit
// Decision. Decisions are *advisory about cost only*: each offered choice
// is result-invariant, so forcing any arm yields byte-identical answers
// (tests/plan_equivalence_test.cc proves it at several thread counts).
//
// Layering: this library depends only on ir/base/engine. Relation sizes
// arrive through FunctionRef callbacks and containment-based pruning is
// *decided* here but *executed* by the caller, so plan never links eval or
// containment and every layer above can link plan.
#ifndef CQAC_PLAN_PLANNER_H_
#define CQAC_PLAN_PLANNER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/function_ref.h"
#include "src/engine/context.h"
#include "src/ir/query.h"
#include "src/plan/stats.h"

namespace cqac {
namespace plan {

/// One recorded cost comparison. `forced` marks decisions dictated by
/// soundness (the AC-class lattice), a force_* pin, or a structural guard
/// rather than by the estimates.
struct Decision {
  std::string kind;    // "algorithm" | "join-order" | "union-eval" | "ivm-path"
  std::string choice;
  double est_chosen = 0;
  double est_alternative = 0;
  bool forced = false;
  std::string detail;  // free-form: class name, order, calibration factors

  std::string ToString() const;
  std::string ToJson() const;
};

/// The explicit plan value: every decision made for one unit of work, in
/// the order they were taken.
struct Plan {
  std::vector<Decision> decisions;

  std::string ToString() const;  // one indented line per decision
  std::string ToJson() const;    // {"decisions":[...]}
};

/// Cardinality callbacks the cost model reads. Both are borrowed for the
/// duration of one planner call (FunctionRef semantics): `rows` returns the
/// live relation size, `distinct` a per-column distinct estimate (0 =
/// unknown, which the model treats as "no selectivity credit").
struct Cardinalities {
  FunctionRef<size_t(const std::string&)> rows;
  FunctionRef<size_t(const std::string&, size_t)> distinct;
};

// ---- Join atom order ------------------------------------------------------

/// A planned execution order for a query body. Joins over set-semantics
/// relations are order-independent, so any order is result-invariant; the
/// planner picks one greedily (smallest estimated intermediate growth
/// first, constants credited by the distinct sketches) and keeps the
/// syntactic order whenever the model does not strictly prefer another.
struct JoinOrderPlan {
  std::vector<size_t> order;  // body-atom indexes in execution order
  double est_planned = 0;     // summed intermediate sizes under `order`
  double est_syntactic = 0;   // same model over the syntactic order
  bool reordered = false;     // order differs from the identity

  std::string ToString() const;  // "[2, 0, 1] est 12 (syntactic 40)"
  Decision ToDecision() const;
};

JoinOrderPlan PlanJoinOrder(const Query& q, const Cardinalities& cards);

/// Convenience overload reading a snapshot.
JoinOrderPlan PlanJoinOrder(const Query& q, const StatsView& stats);

/// The model's cost of evaluating `q` in syntactic order (used to price a
/// union before deciding whether pruning pays).
double EstimateEvalCost(const Query& q, const Cardinalities& cards);

// ---- IVM incremental-vs-rebuild -------------------------------------------

/// Which maintainer is asking (they calibrate independently: the counting
/// maintainer probes persistent indexes, DRed re-joins with lazy ones).
enum class IvmKind { kCounting, kDred };

/// Work estimate for one delta phase of `q` under lazy per-join indexes:
/// sum over pivot positions of |delta(pivot)| x the product of the other
/// body relations' sizes. Doubles so wide joins saturate instead of
/// overflowing. (Formerly PivotEstimate in src/ivm/maintain.cc.)
double DredDeltaEstimate(const Query& q,
                         FunctionRef<size_t(const std::string&)> delta_size,
                         FunctionRef<size_t(const std::string&)> rel_size);

/// Full-join estimate for `q`: the product of its body relation sizes.
/// (Formerly FullJoinEstimate.)
double DredRebuildEstimate(const Query& q,
                           FunctionRef<size_t(const std::string&)> rel_size);

/// Work models for the counting maintainer, whose joins probe persistent
/// base indexes: an incremental phase costs about one O(1) probe per delta
/// tuple per body position, so it is linear in the delta; a rebuild's lazy
/// per-join indexes make the full join roughly linear in its input
/// relations. Both ignore output size, which the two paths share.
/// (Formerly IndexedDeltaEstimate / IndexedRebuildEstimate.)
double CountingDeltaEstimate(const Query& q,
                             FunctionRef<size_t(const std::string&)> delta_size);
double CountingRebuildEstimate(const Query& q,
                               FunctionRef<size_t(const std::string&)> rel_size);

/// The incremental-vs-rebuild decision with its inputs and the calibration
/// factors that were applied, for surfacing and for the outcome feedback.
struct IvmPathChoice {
  bool rebuild = false;
  bool forced = false;
  double est_incremental = 0;       // raw model estimates
  double est_rebuild = 0;
  double rebuild_bias = 1.0;
  double incremental_factor = 1.0;  // adaptive calibration applied
  double rebuild_factor = 1.0;
  size_t max_touched = 0;           // delta-touched positions (counting only)
  size_t max_subset_positions = 0;

  Decision ToDecision() const;
};

/// Chooses the maintenance path: pins win, then the counting maintainer's
/// subset-expansion cap (a side touching k positions expands into 2^k - 1
/// subset joins, so past the cap the expansion alone outweighs a rebuild),
/// then the calibrated cost comparison
///   est_incremental x incr_factor  >  bias x est_rebuild x rebuild_factor.
/// Reads ctx.adaptive() and bumps plan_decisions; coordinator-only.
IvmPathChoice ChooseIvmPath(EngineContext& ctx, IvmKind kind,
                            double est_incremental, double est_rebuild,
                            double rebuild_bias, size_t max_touched,
                            size_t max_subset_positions,
                            bool force_incremental, bool force_rebuild);

/// Feeds the executed path's observed work (thread-invariant tuple counts)
/// back into the matching calibration histogram; bumps plan_retunes when
/// the observation triggered a re-estimation. Coordinator-only.
void ObserveIvmOutcome(EngineContext& ctx, IvmKind kind,
                       const IvmPathChoice& choice, double observed_work);

// ---- Union evaluation -----------------------------------------------------

/// Pin for the union-evaluation strategy (tests, benches, shell flags).
enum class UnionEvalPin { kAuto, kForceDirect, kForcePrune };

/// Direct union evaluation vs containment-pruning the disjuncts first.
/// Pruning a disjunct contained in a kept one never changes the union
/// (eval of the contained disjunct is a subset on every instance), so both
/// arms are result-invariant; the trade is containment-check work against
/// the evaluation cost of redundant disjuncts.
struct UnionEvalChoice {
  bool prune = false;
  bool forced = false;
  size_t disjuncts = 0;
  double est_eval = 0;            // full-union evaluation estimate
  double est_prune_cost = 0;      // model cost of the containment checks
  double expected_fraction = 0;   // calibrated prunable fraction

  Decision ToDecision() const;
};

/// Chooses the strategy from the calibrated expected prune fraction; bumps
/// plan_decisions. Coordinator-only.
UnionEvalChoice ChooseUnionEval(EngineContext& ctx, size_t disjuncts,
                                double est_eval, UnionEvalPin pin);

/// Feeds the observed pruned fraction back; bumps plan_unions_pruned by
/// `pruned` and plan_retunes on a re-estimation. Coordinator-only.
void ObserveUnionPrune(EngineContext& ctx, size_t disjuncts, size_t pruned);

}  // namespace plan
}  // namespace cqac

#endif  // CQAC_PLAN_PLANNER_H_
