#include "src/plan/stats.h"

#include "src/base/strings.h"

namespace cqac {
namespace plan {

uint64_t SketchHash(const Value& v) {
  // splitmix64 finalizer over the structural hash.
  uint64_t x = static_cast<uint64_t>(v.Hash()) + 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

void DistinctSketch::Observe(uint64_t hash) {
  if (!saturated_) {
    smallest_.insert(hash);
    if (smallest_.size() > kK) {
      smallest_.erase(std::prev(smallest_.end()));
      saturated_ = true;
    }
    return;
  }
  auto last = std::prev(smallest_.end());
  if (hash >= *last) return;
  if (smallest_.insert(hash).second) smallest_.erase(std::prev(smallest_.end()));
}

size_t DistinctSketch::Estimate() const {
  if (!saturated_) return smallest_.size();
  // k-th smallest of d uniform hashes sits near k/d of the space, so
  // d ~= (k - 1) * 2^64 / kth.
  const double kth = static_cast<double>(*smallest_.rbegin());
  if (kth <= 0) return smallest_.size();
  const double est = (static_cast<double>(kK) - 1.0) * 18446744073709551616.0 /
                     kth;
  return static_cast<size_t>(est);
}

void RelationStats::OnInsert(const std::string& predicate,
                             const std::vector<Value>& tuple) {
  std::vector<DistinctSketch>& cols = sketches_[predicate];
  if (cols.size() < tuple.size()) cols.resize(tuple.size());
  for (size_t c = 0; c < tuple.size(); ++c)
    cols[c].Observe(SketchHash(tuple[c]));
}

size_t RelationStats::DistinctEstimate(const std::string& predicate,
                                       size_t column) const {
  auto it = sketches_.find(predicate);
  if (it == sketches_.end() || column >= it->second.size()) return 0;
  return it->second[column].Estimate();
}

size_t StatsView::Rows(const std::string& predicate) const {
  auto it = rels_.find(predicate);
  return it == rels_.end() ? 0 : it->second.rows;
}

size_t StatsView::DistinctEstimate(const std::string& predicate,
                                   size_t column) const {
  auto it = rels_.find(predicate);
  if (it == rels_.end() || column >= it->second.distinct.size()) return 0;
  return it->second.distinct[column];
}

std::string StatsView::ToString() const {
  std::vector<std::string> lines;
  lines.reserve(rels_.size());
  for (const auto& [name, stat] : rels_) {
    std::vector<std::string> ds;
    ds.reserve(stat.distinct.size());
    for (size_t d : stat.distinct) ds.push_back(StrCat(d));
    lines.push_back(
        StrCat(name, ": rows=", stat.rows, " distinct=[", Join(ds, ", "), "]"));
  }
  return Join(lines, "\n");
}

}  // namespace plan
}  // namespace cqac
