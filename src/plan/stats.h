// Cardinality statistics for the cost-based planner.
//
// Two pieces:
//
//   * RelationStats — per-relation, per-column distinct-count sketches,
//     maintained on the Database write paths (src/eval/database.cc). Each
//     sketch is a KMV ("k minimum values") summary: O(log k) per insert and
//     a few hundred bytes per column, so keeping them fresh is O(delta) —
//     the same budget as the IVM maintainers they feed. Row counts are not
//     duplicated here; the owning Database's relation sets are exact.
//
//   * StatsView — a plain, deterministic snapshot of rows + distinct
//     estimates per relation, safe to hold across later writes. The shell's
//     `plan` command and the serve `plan` response render from it.
//
// Sketches are insert-monotone: retractions do not decrement them, so after
// deletes an estimate is an upper bound on the live distinct count. That is
// the right trade for the planner — join-order ranking only needs relative
// selectivity, and a stale upper bound decays the moment the relation is
// rebuilt (docs/planner.md).
#ifndef CQAC_PLAN_STATS_H_
#define CQAC_PLAN_STATS_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/ir/term.h"

namespace cqac {
namespace plan {

/// KMV distinct-count sketch over 64-bit hashes: keeps the k smallest
/// hashes seen. Below k distinct hashes the estimate is exact; at
/// saturation the k-th smallest hash's position in [0, 2^64) estimates the
/// density, hence the count.
class DistinctSketch {
 public:
  static constexpr size_t kK = 64;

  void Observe(uint64_t hash);
  size_t Estimate() const;

  /// Durability snapshot surface (src/store). Sketches are insert-monotone
  /// — they remember retracted tuples' observations — so recovery cannot
  /// rebuild them from the live tuples; the exact internal state is
  /// serialized and restored instead, keeping post-recovery plans
  /// byte-identical to the pre-crash process.
  const std::set<uint64_t>& hashes() const { return smallest_; }
  bool saturated() const { return saturated_; }
  void Restore(std::set<uint64_t> hashes, bool saturated) {
    smallest_ = std::move(hashes);
    saturated_ = saturated;
  }

 private:
  std::set<uint64_t> smallest_;  // at most kK entries
  bool saturated_ = false;
};

/// Per-relation, per-column sketches. Thread-compatible (mutated on the
/// same coordinator thread that mutates the owning Database).
class RelationStats {
 public:
  /// Folds one inserted tuple into the column sketches. Duplicate inserts
  /// are no-ops on the estimates (the sketch counts distinct hashes), so
  /// callers may observe before knowing whether the insert was novel.
  void OnInsert(const std::string& predicate, const std::vector<Value>& tuple);

  /// Distinct-count estimate for one column; 0 when the predicate has never
  /// been observed or the column is out of range.
  size_t DistinctEstimate(const std::string& predicate, size_t column) const;

  void Clear() { sketches_.clear(); }

  /// Durability snapshot surface (src/store): the full sketch table.
  const std::map<std::string, std::vector<DistinctSketch>>& sketches() const {
    return sketches_;
  }
  void RestoreSketches(std::map<std::string, std::vector<DistinctSketch>> s) {
    sketches_ = std::move(s);
  }

 private:
  std::map<std::string, std::vector<DistinctSketch>> sketches_;
};

/// A deterministic point-in-time copy of what the planner consumes.
class StatsView {
 public:
  struct RelStat {
    size_t rows = 0;
    std::vector<size_t> distinct;  // per column
  };

  void Set(const std::string& predicate, RelStat stat) {
    rels_[predicate] = std::move(stat);
  }
  size_t Rows(const std::string& predicate) const;
  size_t DistinctEstimate(const std::string& predicate, size_t column) const;

  const std::map<std::string, RelStat>& relations() const { return rels_; }

  /// One `name: rows=N distinct=[a, b]` line per relation, sorted by name.
  std::string ToString() const;

 private:
  std::map<std::string, RelStat> rels_;
};

/// The hash the sketches key on: Value::Hash() mixed through splitmix64 so
/// low-entropy inputs (small consecutive ints) spread over the hash space.
uint64_t SketchHash(const Value& v);

}  // namespace plan
}  // namespace cqac

#endif  // CQAC_PLAN_STATS_H_
