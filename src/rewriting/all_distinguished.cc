#include "src/rewriting/all_distinguished.h"

#include <map>
#include <optional>

#include "src/base/strings.h"
#include "src/constraints/implication.h"
#include "src/constraints/preprocess.h"
#include "src/containment/containment.h"
#include "src/engine/parallel.h"
#include "src/ir/expansion.h"
#include "src/ir/substitution.h"

namespace cqac {
namespace {

struct Choice {
  int view_index;
  VarMap phi;  // query var -> view var/const of this subgoal's image
  std::map<int, Value> const_bindings;  // view var -> query constant

  Choice(int vi, VarMap m) : view_index(vi), phi(std::move(m)) {}
};

// Maps query subgoal `qa` onto view subgoal `va`; with all view variables
// distinguished there is nothing to reject beyond unification failure.
bool TryMap(const Atom& qa, const Atom& va, VarMap* phi,
            std::map<int, Value>* const_bindings) {
  if (qa.predicate != va.predicate || qa.args.size() != va.args.size())
    return false;
  for (size_t p = 0; p < qa.args.size(); ++p) {
    const Term& qt = qa.args[p];
    const Term& vt = va.args[p];
    if (qt.is_const()) {
      if (vt.is_const()) {
        if (!(qt.value() == vt.value())) return false;
      } else {
        // Constant meets a distinguished variable: enforceable by placing
        // the constant at that head position.
        auto [it, inserted] = const_bindings->emplace(vt.var(), qt.value());
        if (!inserted && !(it->second == qt.value())) return false;
      }
      continue;
    }
    if (!phi->Bind(qt.var(), vt)) return false;
  }
  return true;
}

}  // namespace

Result<UnionQuery> RewriteAllDistinguished(EngineContext& ctx, const Query& q,
                                           const ViewSet& views) {
  if (!views.AllVariablesDistinguished())
    return Status::InvalidArgument(
        "RewriteAllDistinguished requires views whose variables are all "
        "distinguished");

  Result<Query> qp_result = Preprocess(q);
  if (!qp_result.ok()) {
    if (qp_result.status().code() == StatusCode::kInconsistent)
      return UnionQuery{};
    return qp_result.status();
  }
  Query qp = std::move(qp_result).value();
  CQAC_RETURN_IF_ERROR(qp.Validate());

  // Per query subgoal, the possible (view, subgoal, mapping) choices.
  // Theorem 3.2's bound: one choice per subgoal suffices, so rewritings
  // have exactly |body(q)| view atoms.
  std::vector<std::vector<Choice>> choices(qp.body().size());
  for (size_t gi = 0; gi < qp.body().size(); ++gi) {
    for (size_t vi = 0; vi < views.size(); ++vi) {
      for (const Atom& va : views[vi].body()) {
        VarMap phi(qp.num_vars());
        std::map<int, Value> consts;
        if (TryMap(qp.body()[gi], va, &phi, &consts)) {
          Choice c(static_cast<int>(vi), std::move(phi));
          c.const_bindings = std::move(consts);
          choices[gi].push_back(std::move(c));
        }
      }
    }
    if (choices[gi].empty()) return UnionQuery{};
  }

  UnionQuery result;
  size_t candidates = 0;
  Status inner = Status::OK();

  // Builds + verifies the candidate for `pick`. On success *accepted holds
  // the compacted rewriting (empty optional = candidate skipped/rejected);
  // a hard error lands in *err.
  auto emit = [&](const std::vector<const Choice*>& pick, Status* err,
                  std::optional<Query>* accepted) {
    Query cand;
    cand.head().predicate = qp.head().predicate;

    // A query variable whose image is a view-body constant is pinned to
    // that constant; conflicting pins kill the candidate.
    std::vector<std::optional<Value>> pin(qp.num_vars());
    for (const Choice* c : pick) {
      for (int qv = 0; qv < qp.num_vars(); ++qv) {
        if (!c->phi.IsBound(qv)) continue;
        const Term& img = c->phi.Get(qv);
        if (!img.is_const()) continue;
        if (pin[qv].has_value() && !(*pin[qv] == img.value())) return true;
        pin[qv] = img.value();
      }
    }
    // Otherwise, with every view variable distinguished, the rewriting term
    // of a query variable is simply a variable of the same name; view-head
    // positions not hit by a query variable get fresh variables.
    auto term_of_qvar = [&cand, &qp, &pin](int qv) {
      if (pin[qv].has_value()) return Term::Const(*pin[qv]);
      return Term::Var(cand.FindOrAddVariable(qp.VarName(qv)));
    };
    for (size_t gi = 0; gi < pick.size(); ++gi) {
      const Choice* c = pick[gi];
      const Query& view = views[c->view_index];
      Atom atom;
      atom.predicate = view.head().predicate;
      for (const Term& ht : view.head().args) {
        if (ht.is_const()) {
          atom.args.push_back(ht);
          continue;
        }
        // Which query term reaches this head variable in this choice?
        std::optional<Term> arg;
        auto cb = c->const_bindings.find(ht.var());
        if (cb != c->const_bindings.end()) arg = Term::Const(cb->second);
        for (int qv = 0; qv < qp.num_vars() && !arg.has_value(); ++qv)
          if (c->phi.IsBound(qv) && c->phi.Get(qv) == Term::Var(ht.var()))
            arg = term_of_qvar(qv);
        if (!arg.has_value())
          arg = Term::Var(cand.AddFreshVariable(
              StrCat(view.head().predicate, "_", view.VarName(ht.var()))));
        atom.args.push_back(*arg);
      }
      cand.AddBodyAtom(std::move(atom));
    }
    for (const Term& t : qp.head().args) {
      if (t.is_const())
        cand.head().args.push_back(t);
      else
        cand.head().args.push_back(term_of_qvar(t.var()));
    }
    // Every comparison of the query transfers verbatim (every variable is
    // exposed).
    for (const Comparison& c : qp.comparisons()) {
      auto xlate = [&](const Term& t) {
        return t.is_const() ? t : term_of_qvar(t.var());
      };
      cand.AddComparison(Comparison(xlate(c.lhs), c.op, xlate(c.rhs)));
    }
    if (!AcsConsistent(cand.comparisons())) return true;
    if (!cand.Validate().ok()) return true;  // a head var never got exposed

    Result<Query> exp = ExpandRewriting(cand, views);
    if (!exp.ok()) {
      *err = exp.status();
      return false;
    }
    // An inconsistent expansion denotes the empty query: it would pass the
    // containment test vacuously, yet contributes nothing — prune it.
    Result<Query> expp = Preprocess(exp.value());
    if (!expp.ok()) {
      if (expp.status().code() == StatusCode::kInconsistent) {
        ++ctx.stats().rewrite_verified_rejects;
        return true;
      }
      *err = expp.status();
      return false;
    }
    Result<bool> contained = IsContained(ctx, expp.value(), qp);
    if (!contained.ok()) {
      *err = contained.status();
      return false;
    }
    if (!contained.value()) {
      ++ctx.stats().rewrite_verified_rejects;
      return true;
    }
    *accepted = CompactVariables(cand);
    return true;
  };

  // Block-wise cartesian product (last subgoal fastest — the order of the
  // old recursive enumeration). Budget charging happens serially at
  // generation with a thread-count-independent block size; each block's
  // candidates verify in parallel and merge in enumeration order.
  struct PickOutcome {
    Status error = Status::OK();
    std::optional<Query> accepted;
  };
  constexpr size_t kBlock = 64;

  std::vector<size_t> idx(choices.size(), 0);
  bool exhausted_product = false;
  while (!exhausted_product && inner.ok()) {
    std::vector<std::vector<const Choice*>> block;
    while (block.size() < kBlock && !exhausted_product) {
      if (++candidates > ctx.budget().max_mappings) {
        ++ctx.stats().budget_exhaustions;
        inner = Status::ResourceExhausted(
            "all-distinguished candidate enumeration exceeded the mapping "
            "budget");
        break;
      }
      inner = ctx.budget().CheckDeadline("all-distinguished enumeration");
      if (!inner.ok()) {
        ++ctx.stats().budget_exhaustions;
        break;
      }
      ++ctx.stats().rewrite_candidates;
      std::vector<const Choice*> pick(choices.size());
      for (size_t gi = 0; gi < choices.size(); ++gi)
        pick[gi] = &choices[gi][idx[gi]];
      block.push_back(std::move(pick));
      size_t gi = choices.size();
      while (gi > 0) {
        if (++idx[gi - 1] < choices[gi - 1].size()) break;
        idx[--gi] = 0;
      }
      if (gi == 0) exhausted_product = true;
    }
    if (block.empty()) break;

    ParallelOutcomes<PickOutcome> outcomes(
        ctx, block.size(),
        [&](size_t i) {
          PickOutcome out;
          emit(block[i], &out.error, &out.accepted);
          return out;
        },
        [](const PickOutcome& o) { return !o.error.ok(); });
    for (size_t i = 0; i < block.size() && inner.ok(); ++i) {
      PickOutcome& o = outcomes.Get(i);
      if (!o.error.ok()) {
        inner = o.error;
        break;
      }
      if (!o.accepted.has_value()) continue;
      bool dup = false;
      for (const Query& existing : result.disjuncts)
        if (existing.ToString() == o.accepted->ToString()) dup = true;
      if (!dup) result.disjuncts.push_back(std::move(*o.accepted));
    }
  }
  CQAC_RETURN_IF_ERROR(inner);
  return result;
}

Result<UnionQuery> RewriteAllDistinguished(const Query& q,
                                           const ViewSet& views) {
  EngineContext ctx;
  return RewriteAllDistinguished(ctx, q, views);
}

}  // namespace cqac
