// Theorem 3.2: MCRs when all view variables are distinguished.
//
// With fully-distinguished views every comparison of the query can be
// enforced directly on view outputs, a single containment mapping certifies
// each contained rewriting, and the number of view subgoals needed is
// bounded by the number of query subgoals. This module implements that
// specialized (exponential-time, complete) construction and the associated
// decision procedure "does an MCR exist / is it nonempty".
#ifndef CQAC_REWRITING_ALL_DISTINGUISHED_H_
#define CQAC_REWRITING_ALL_DISTINGUISHED_H_

#include "src/base/status.h"
#include "src/engine/context.h"
#include "src/ir/query.h"
#include "src/ir/view.h"

namespace cqac {

/// Computes the MCR of the CQAC query `q` (any comparison class) using
/// views whose variables are all distinguished. Returns InvalidArgument if
/// some view hides a variable (use RewriteLsiQuery / RewriteSiQueryDatalog
/// then). The result is a finite union of CQACs; Theorem 3.2 guarantees
/// this language suffices in the all-distinguished case. The candidate
/// count (cartesian of per-subgoal choices) is charged to the context's
/// Budget::max_mappings.
Result<UnionQuery> RewriteAllDistinguished(EngineContext& ctx, const Query& q,
                                           const ViewSet& views);
Result<UnionQuery> RewriteAllDistinguished(const Query& q,
                                           const ViewSet& views);

}  // namespace cqac

#endif  // CQAC_REWRITING_ALL_DISTINGUISHED_H_
