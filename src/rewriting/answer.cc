#include "src/rewriting/answer.h"

#include "src/eval/evaluate.h"
#include "src/rewriting/bucket.h"
#include "src/rewriting/rewrite_lsi.h"

namespace cqac {

Result<Relation> ViewPlan::Answer(const Database& view_instance) const {
  switch (kind) {
    case PlanKind::kEmpty:
      return Relation{};
    case PlanKind::kFiniteUnion:
      return EvaluateUnion(union_plan, view_instance);
    case PlanKind::kDatalog:
      return datalog->MakeEngine().Query(view_instance);
  }
  return Status::Internal("unknown plan kind");
}

std::string ViewPlan::ToString() const {
  switch (kind) {
    case PlanKind::kEmpty:
      return "<empty plan>";
    case PlanKind::kFiniteUnion:
      return union_plan.ToString();
    case PlanKind::kDatalog:
      return datalog->ToString();
  }
  return "?";
}

Result<ViewPlan> PlanForQuery(EngineContext& ctx, const Query& q,
                              const ViewSet& views) {
  ViewPlan plan;
  AcClass cls = q.Classify();
  if (cls == AcClass::kNone || cls == AcClass::kLsi || cls == AcClass::kRsi) {
    CQAC_ASSIGN_OR_RETURN(UnionQuery u, RewriteLsiQuery(ctx, q, views));
    if (!u.empty()) {
      plan.kind = PlanKind::kFiniteUnion;
      plan.union_plan = std::move(u);
    }
    return plan;
  }
  if (q.IsCqacSi() && views.AllSiOnly()) {
    CQAC_ASSIGN_OR_RETURN(SiMcr mcr, RewriteSiQueryDatalog(ctx, q, views));
    plan.kind = PlanKind::kDatalog;
    plan.datalog = std::move(mcr);
    return plan;
  }
  // General fallback: verified bucket candidates (sound, possibly
  // incomplete — documented in DESIGN.md).
  CQAC_ASSIGN_OR_RETURN(UnionQuery u, BucketRewrite(ctx, q, views));
  if (!u.empty()) {
    plan.kind = PlanKind::kFiniteUnion;
    plan.union_plan = std::move(u);
  }
  return plan;
}

Result<ViewPlan> PlanForQuery(const Query& q, const ViewSet& views) {
  EngineContext ctx;
  return PlanForQuery(ctx, q, views);
}

Result<Relation> AnswerUsingViews(EngineContext& ctx, const Query& q,
                                  const ViewSet& views,
                                  const Database& view_instance) {
  CQAC_ASSIGN_OR_RETURN(ViewPlan plan, PlanForQuery(ctx, q, views));
  return plan.Answer(view_instance);
}

Result<Relation> AnswerUsingViews(const Query& q, const ViewSet& views,
                                  const Database& view_instance) {
  EngineContext ctx;
  return AnswerUsingViews(ctx, q, views, view_instance);
}

}  // namespace cqac
