#include "src/rewriting/answer.h"

#include "src/base/strings.h"
#include "src/containment/containment.h"
#include "src/eval/evaluate.h"
#include "src/rewriting/bucket.h"
#include "src/rewriting/rewrite_lsi.h"

namespace cqac {
namespace {

/// The class-dictated algorithm choice, recorded so surfaced plans show why
/// an engine was picked even though soundness (not cost) forced it. The
/// estimate slots carry the plan's size (disjuncts / rules) for scale.
plan::Decision AlgorithmDecision(const std::string& algo, AcClass cls,
                                 size_t plan_size) {
  plan::Decision d;
  d.kind = "algorithm";
  d.choice = algo;
  d.est_chosen = static_cast<double>(plan_size);
  d.forced = true;
  d.detail = StrCat("class ", AcClassName(cls), ", class-dictated");
  return d;
}

}  // namespace

Result<Relation> ViewPlan::Answer(const Database& view_instance) const {
  switch (kind) {
    case PlanKind::kEmpty:
      return Relation{};
    case PlanKind::kFiniteUnion:
      return EvaluateUnion(union_plan, view_instance);
    case PlanKind::kDatalog:
      return datalog->MakeEngine().Query(view_instance);
  }
  return Status::Internal("unknown plan kind");
}

Result<Relation> ViewPlan::Answer(EngineContext& ctx,
                                  const Database& view_instance,
                                  const AnswerOptions& options,
                                  plan::Plan* plan_out) const {
  switch (kind) {
    case PlanKind::kEmpty:
      return Relation{};
    case PlanKind::kDatalog:
      return datalog->MakeEngine().Query(view_instance);
    case PlanKind::kFiniteUnion:
      break;
  }

  // Price the union over this view instance, then let the planner choose
  // between evaluating it directly and pruning contained disjuncts first.
  auto rows = [&view_instance](const std::string& p) {
    return view_instance.Get(p).size();
  };
  auto distinct = [&view_instance](const std::string& p, size_t c) {
    return view_instance.stats().DistinctEstimate(p, c);
  };
  const plan::Cardinalities cards{rows, distinct};
  double est_eval = 0;
  for (const Query& d : union_plan.disjuncts)
    est_eval += plan::EstimateEvalCost(d, cards);
  const plan::UnionEvalChoice choice = plan::ChooseUnionEval(
      ctx, union_plan.disjuncts.size(), est_eval, options.union_eval);
  if (plan_out) plan_out->decisions.push_back(choice.ToDecision());
  if (!choice.prune) return EvaluateUnion(ctx, union_plan, view_instance);

  // Greedy containment prune: drop a disjunct contained in an already-kept
  // one. eval(contained) is a subset of eval(container) on every database,
  // so the union over the survivors is exactly the full union. The loop is
  // serial and scans in disjunct order, so the surviving set — and
  // therefore the adaptive feedback — is deterministic; a containment
  // error (budget) conservatively keeps the disjunct.
  UnionQuery pruned;
  for (const Query& d : union_plan.disjuncts) {
    bool redundant = false;
    for (const Query& kept : pruned.disjuncts) {
      Result<bool> contained = IsContained(ctx, d, kept);
      if (contained.ok() && contained.value()) {
        redundant = true;
        break;
      }
    }
    if (!redundant) pruned.disjuncts.push_back(d);
  }
  plan::ObserveUnionPrune(
      ctx, union_plan.disjuncts.size(),
      union_plan.disjuncts.size() - pruned.disjuncts.size());
  return EvaluateUnion(ctx, pruned, view_instance);
}

std::string ViewPlan::ToString() const {
  switch (kind) {
    case PlanKind::kEmpty:
      return "<empty plan>";
    case PlanKind::kFiniteUnion:
      return union_plan.ToString();
    case PlanKind::kDatalog:
      return datalog->ToString();
  }
  return "?";
}

Result<ViewPlan> PlanForQuery(EngineContext& ctx, const Query& q,
                              const ViewSet& views) {
  ViewPlan plan;
  ++ctx.stats().plan_decisions;
  AcClass cls = q.Classify();
  if (cls == AcClass::kNone || cls == AcClass::kLsi || cls == AcClass::kRsi) {
    CQAC_ASSIGN_OR_RETURN(UnionQuery u, RewriteLsiQuery(ctx, q, views));
    if (!u.empty()) {
      plan.kind = PlanKind::kFiniteUnion;
      plan.union_plan = std::move(u);
    }
    plan.plan.decisions.push_back(AlgorithmDecision(
        "lsi-mcr", cls, plan.union_plan.disjuncts.size()));
    return plan;
  }
  if (q.IsCqacSi() && views.AllSiOnly()) {
    CQAC_ASSIGN_OR_RETURN(SiMcr mcr, RewriteSiQueryDatalog(ctx, q, views));
    plan.kind = PlanKind::kDatalog;
    plan.datalog = std::move(mcr);
    plan.plan.decisions.push_back(
        AlgorithmDecision("si-datalog", cls, plan.datalog->rules.size()));
    return plan;
  }
  // General fallback: verified bucket candidates (sound, possibly
  // incomplete — documented in DESIGN.md).
  CQAC_ASSIGN_OR_RETURN(UnionQuery u, BucketRewrite(ctx, q, views));
  if (!u.empty()) {
    plan.kind = PlanKind::kFiniteUnion;
    plan.union_plan = std::move(u);
  }
  plan.plan.decisions.push_back(
      AlgorithmDecision("bucket", cls, plan.union_plan.disjuncts.size()));
  return plan;
}

Result<ViewPlan> PlanForQuery(const Query& q, const ViewSet& views) {
  EngineContext ctx;
  return PlanForQuery(ctx, q, views);
}

Result<Relation> AnswerUsingViews(EngineContext& ctx, const Query& q,
                                  const ViewSet& views,
                                  const Database& view_instance) {
  CQAC_ASSIGN_OR_RETURN(ViewPlan plan, PlanForQuery(ctx, q, views));
  return plan.Answer(ctx, view_instance);
}

Result<Relation> AnswerUsingViews(const Query& q, const ViewSet& views,
                                  const Database& view_instance) {
  EngineContext ctx;
  return AnswerUsingViews(ctx, q, views, view_instance);
}

}  // namespace cqac
