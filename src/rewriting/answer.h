// One-call certain-answer computation.
//
// Bundles the full pipeline: classify the query, pick the right rewriting
// engine (RewriteLSIQuery for CQ/LSI/RSI, the recursive Datalog construction
// for CQAC-SI with SI views, the verified bucket algorithm otherwise),
// evaluate the rewriting over a view instance, and return the certain
// answers. This is the API a mediator or optimizer embeds; the lower-level
// pieces remain available for callers that cache rewritings across queries.
#ifndef CQAC_REWRITING_ANSWER_H_
#define CQAC_REWRITING_ANSWER_H_

#include <optional>
#include <string>

#include "src/base/status.h"
#include "src/engine/context.h"
#include "src/eval/database.h"
#include "src/ir/query.h"
#include "src/ir/view.h"
#include "src/plan/planner.h"
#include "src/rewriting/si_mcr.h"

namespace cqac {

/// Which engine a plan came from.
enum class PlanKind {
  kEmpty,        // no rewriting exists (or the query is unsatisfiable)
  kFiniteUnion,  // union of CQACs (RewriteLSIQuery / bucket)
  kDatalog,      // recursive Datalog program (Section 5)
};

/// Options for the context-aware ViewPlan::Answer.
struct AnswerOptions {
  plan::UnionEvalPin union_eval = plan::UnionEvalPin::kAuto;
};

/// A compiled view-based plan for one query.
struct ViewPlan {
  PlanKind kind = PlanKind::kEmpty;
  UnionQuery union_plan;          // set iff kind == kFiniteUnion
  std::optional<SiMcr> datalog;   // set iff kind == kDatalog

  /// The planner's record of how this plan was chosen (the algorithm
  /// decision from PlanForQuery; Answer appends its union-eval decision).
  plan::Plan plan;

  /// Evaluates the plan over a view instance, returning certain answers.
  Result<Relation> Answer(const Database& view_instance) const;

  /// Context-aware evaluation. For finite-union plans the planner chooses
  /// between direct evaluation and containment-pruning redundant disjuncts
  /// first — a disjunct contained in a kept one contributes only a subset
  /// of its tuples on every instance, so both arms return the identical
  /// relation and the choice is pure cost (estimates from the view
  /// instance's cardinality stats, the expected prunable fraction from
  /// ctx.adaptive()). The decision taken is appended to `plan_out` when
  /// non-null.
  Result<Relation> Answer(EngineContext& ctx, const Database& view_instance,
                          const AnswerOptions& options = {},
                          plan::Plan* plan_out = nullptr) const;

  std::string ToString() const;
};

/// Compiles the best available plan for `q` over `views`. The context
/// carries the budget and collects stats; planning many queries against one
/// context shares the containment/implication memo across them.
Result<ViewPlan> PlanForQuery(EngineContext& ctx, const Query& q,
                              const ViewSet& views);

/// Legacy overload: plans under a fresh default-budget context.
Result<ViewPlan> PlanForQuery(const Query& q, const ViewSet& views);

/// Convenience: compile + evaluate in one call.
Result<Relation> AnswerUsingViews(EngineContext& ctx, const Query& q,
                                  const ViewSet& views,
                                  const Database& view_instance);

/// Legacy overload: answers under a fresh default-budget context.
Result<Relation> AnswerUsingViews(const Query& q, const ViewSet& views,
                                  const Database& view_instance);

}  // namespace cqac

#endif  // CQAC_REWRITING_ANSWER_H_
