#include "src/rewriting/bucket.h"

#include <map>
#include <optional>

#include "src/base/strings.h"
#include "src/constraints/implication.h"
#include "src/constraints/preprocess.h"
#include "src/containment/containment.h"
#include "src/containment/homomorphism.h"
#include "src/engine/parallel.h"
#include "src/ir/expansion.h"
#include "src/ir/substitution.h"

namespace cqac {
namespace {

/// One bucket entry: a view whose subgoal `vj` can host query subgoal `gi`,
/// with the induced partial map from query variables to view terms.
struct BucketEntry {
  int view_index;
  int view_subgoal;
  VarMap phi;
  // Query constants that landed on (distinguished) view variables.
  std::map<int, Value> const_bindings;

  BucketEntry(int vi, int vj, VarMap m)
      : view_index(vi), view_subgoal(vj), phi(std::move(m)) {}
};

// Attempts the partial mapping query-subgoal -> view-subgoal required by the
// bucket algorithm: distinguished query variables must land on distinguished
// view variables (or constants).
bool TryMap(const Query& q, const Atom& qa, const Query& view, const Atom& va,
            VarMap* phi, std::map<int, Value>* const_bindings) {
  if (qa.predicate != va.predicate || qa.args.size() != va.args.size())
    return false;
  std::vector<bool> q_dist = q.DistinguishedMask();
  std::vector<bool> v_dist = view.DistinguishedMask();
  for (size_t p = 0; p < qa.args.size(); ++p) {
    const Term& qt = qa.args[p];
    const Term& vt = va.args[p];
    if (qt.is_const()) {
      if (vt.is_const()) {
        if (!(qt.value() == vt.value())) return false;
      } else if (!v_dist[vt.var()]) {
        return false;  // a constant cannot be pushed to a hidden position
      } else {
        auto [it, inserted] = const_bindings->emplace(vt.var(), qt.value());
        if (!inserted && !(it->second == qt.value())) return false;
      }
      continue;
    }
    if (q_dist[qt.var()]) {
      bool exposed = vt.is_const() || v_dist[vt.var()];
      if (!exposed) return false;
    }
    if (!phi->Bind(qt.var(), vt)) return false;
  }
  return true;
}

}  // namespace

Result<UnionQuery> BucketRewrite(EngineContext& ctx, const Query& q,
                                 const ViewSet& views,
                                 const BucketOptions& options,
                                 BucketStats* stats,
                                 RewritingWitness* witness) {
  BucketStats local;
  if (stats == nullptr) stats = &local;
  *stats = BucketStats{};
  if (witness != nullptr) *witness = RewritingWitness{};

  Result<Query> qp_result = Preprocess(q);
  if (!qp_result.ok()) {
    if (qp_result.status().code() == StatusCode::kInconsistent)
      return UnionQuery{};
    return qp_result.status();
  }
  Query qp = std::move(qp_result).value();
  if (witness != nullptr) witness->query = qp;

  ViewSet prepped;
  for (const Query& v : views.views()) {
    Result<Query> vp = Preprocess(v);
    if (!vp.ok()) {
      if (vp.status().code() == StatusCode::kInconsistent) continue;
      return vp.status();
    }
    CQAC_RETURN_IF_ERROR(prepped.Add(std::move(vp).value()));
  }
  if (witness != nullptr) witness->views = prepped.views();

  // Build the buckets.
  std::vector<std::vector<BucketEntry>> buckets(qp.body().size());
  for (size_t gi = 0; gi < qp.body().size(); ++gi) {
    for (size_t vi = 0; vi < prepped.size(); ++vi) {
      const Query& view = prepped[vi];
      for (size_t vj = 0; vj < view.body().size(); ++vj) {
        VarMap phi(qp.num_vars());
        std::map<int, Value> const_bindings;
        if (TryMap(qp, qp.body()[gi], view, view.body()[vj], &phi,
                   &const_bindings)) {
          BucketEntry entry(static_cast<int>(vi), static_cast<int>(vj),
                            std::move(phi));
          entry.const_bindings = std::move(const_bindings);
          buckets[gi].push_back(std::move(entry));
          ++stats->bucket_entries;
        }
      }
    }
    if (buckets[gi].empty()) return UnionQuery{};  // uncoverable subgoal
  }

  UnionQuery result;
  Status inner = Status::OK();

  // Builds and verifies the candidate for `pick`. Accepted variants (and
  // their witnesses) are appended to *accepted / *accepted_witnesses in
  // enumeration order; `reject_count` tallies verified rejects. Returns
  // false on a hard error (via `err`).
  auto try_candidate = [&](const std::vector<const BucketEntry*>& pick,
                           Status* err, std::vector<Query>* accepted,
                           std::vector<ContainmentWitness>* accepted_witnesses,
                           uint64_t* reject_count) {
    Query cand;
    cand.head().predicate = qp.head().predicate;

    // Query variable -> candidate term: a variable is exposed if some picked
    // entry maps it to a distinguished view variable or constant.
    std::vector<std::optional<Term>> qvar_term(qp.num_vars());
    auto term_for = [&](int qv) -> Term {
      if (!qvar_term[qv].has_value())
        qvar_term[qv] = Term::Var(cand.FindOrAddVariable(qp.VarName(qv)));
      return *qvar_term[qv];
    };

    // Pass 1: constants reached by query variables pin them.
    for (size_t gi = 0; gi < pick.size(); ++gi) {
      const BucketEntry* e = pick[gi];
      for (int qv = 0; qv < qp.num_vars(); ++qv) {
        if (!e->phi.IsBound(qv) || qvar_term[qv].has_value()) continue;
        const Term& img = e->phi.Get(qv);
        if (img.is_const()) qvar_term[qv] = img;
      }
    }
    // Pass 2: emit one view atom per subgoal.
    for (size_t gi = 0; gi < pick.size(); ++gi) {
      const BucketEntry* e = pick[gi];
      const Query& view = prepped[e->view_index];
      Atom atom;
      atom.predicate = view.head().predicate;
      for (const Term& ht : view.head().args) {
        if (ht.is_const()) {
          atom.args.push_back(ht);
          continue;
        }
        auto cb = e->const_bindings.find(ht.var());
        if (cb != e->const_bindings.end()) {
          atom.args.push_back(Term::Const(cb->second));
          continue;
        }
        // Does some query variable map onto this head variable?
        int qv_here = -1;
        for (int qv = 0; qv < qp.num_vars() && qv_here < 0; ++qv)
          if (e->phi.IsBound(qv) && e->phi.Get(qv) == Term::Var(ht.var()))
            qv_here = qv;
        if (qv_here >= 0) {
          atom.args.push_back(term_for(qv_here));
        } else {
          atom.args.push_back(Term::Var(cand.AddFreshVariable(
              StrCat(view.head().predicate, "_", view.VarName(ht.var())))));
        }
      }
      cand.AddBodyAtom(std::move(atom));
    }
    // Head.
    for (const Term& t : qp.head().args) {
      if (t.is_const()) {
        cand.head().args.push_back(t);
        continue;
      }
      // A head variable that never reached an exposed position cannot be
      // returned: candidate fails.
      bool bound = false;
      for (const BucketEntry* e : pick)
        if (e->phi.IsBound(t.var())) bound = true;
      if (!bound) return true;  // skip candidate, keep searching
      cand.head().args.push_back(term_for(t.var()));
    }
    // Comparisons: map each query comparison onto candidate terms when the
    // variable is exposed; an unexposed compared variable kills the
    // candidate only under ac_aware (otherwise comparisons are ignored and
    // verification rejects the unsound candidate).
    if (options.ac_aware) {
      for (const Comparison& c : qp.comparisons()) {
        auto translate = [&](const Term& t) -> std::optional<Term> {
          if (t.is_const()) return t;
          if (qvar_term[t.var()].has_value()) return *qvar_term[t.var()];
          return std::nullopt;
        };
        std::optional<Term> lhs = translate(c.lhs);
        std::optional<Term> rhs = translate(c.rhs);
        if (!lhs.has_value() || !rhs.has_value()) return true;  // skip
        cand.AddComparison(Comparison(*lhs, c.op, *rhs));
      }
      if (!AcsConsistent(cand.comparisons())) return true;
    }

    // Verify the candidate and, following the bucket algorithm's final
    // step, variants obtained by equating atoms of the same view (this is
    // how the bucket algorithm recovers rewritings where one view covers
    // several query subgoals).
    std::vector<Query> variants{std::move(cand)};
    std::set<std::string> seen_variant{variants[0].ToString()};
    for (size_t vi = 0; vi < variants.size() && variants.size() < 64; ++vi) {
      for (size_t i = 0; i < variants[vi].body().size(); ++i) {
        for (size_t j = i + 1; j < variants[vi].body().size(); ++j) {
          Query merged;
          if (!UnifyBodyAtoms(variants[vi], i, j, &merged)) continue;
          if (seen_variant.insert(merged.ToString()).second)
            variants.push_back(std::move(merged));
        }
      }
    }
    for (const Query& variant : variants) {
      Result<Query> exp = ExpandRewriting(variant, prepped);
      if (!exp.ok()) {
        *err = exp.status();
        return false;
      }
      Result<Query> expp = Preprocess(exp.value());
      if (!expp.ok()) {
        if (expp.status().code() == StatusCode::kInconsistent) {
          ++*reject_count;
          ++ctx.stats().rewrite_verified_rejects;
          continue;
        }
        *err = expp.status();
        return false;
      }
      ContainmentWitness variant_witness;
      Result<bool> contained =
          IsContained(ctx, expp.value(), qp, {},
                      witness != nullptr ? &variant_witness : nullptr);
      if (!contained.ok()) {
        *err = contained.status();
        return false;
      }
      if (!contained.value()) {
        ++*reject_count;
        ++ctx.stats().rewrite_verified_rejects;
        continue;
      }
      accepted->push_back(CompactVariables(variant));
      accepted_witnesses->push_back(std::move(variant_witness));
    }
    return true;
  };

  // The cartesian product over the buckets, in the lexicographic order of
  // the old recursive enumeration (pick[last] advances fastest). Picks are
  // generated serially in fixed-size blocks — each pick is charged against
  // the mapping budget and the deadline at generation, exactly where the
  // fused loop checked them — and each block's candidates verify in
  // parallel. The block size is thread-count independent so budget
  // charging (and thus exhaustion points) never depends on parallelism.
  struct PickOutcome {
    Status error = Status::OK();
    std::vector<Query> accepted;
    std::vector<ContainmentWitness> witnesses;
    uint64_t rejects = 0;
  };
  constexpr size_t kBlock = 64;

  std::vector<size_t> idx(buckets.size(), 0);
  bool exhausted_product = false;
  while (!exhausted_product && inner.ok()) {
    std::vector<std::vector<const BucketEntry*>> block;
    while (block.size() < kBlock && !exhausted_product) {
      if (++stats->candidates > ctx.budget().max_mappings) {
        ++ctx.stats().budget_exhaustions;
        inner = Status::ResourceExhausted(
            "bucket candidate enumeration exceeded the mapping budget");
        break;
      }
      inner = ctx.budget().CheckDeadline("bucket candidate enumeration");
      if (!inner.ok()) {
        ++ctx.stats().budget_exhaustions;
        break;
      }
      ++ctx.stats().rewrite_candidates;
      std::vector<const BucketEntry*> pick(buckets.size());
      for (size_t gi = 0; gi < buckets.size(); ++gi)
        pick[gi] = &buckets[gi][idx[gi]];
      block.push_back(std::move(pick));
      // Advance the counter, last subgoal fastest.
      size_t gi = buckets.size();
      while (gi > 0) {
        if (++idx[gi - 1] < buckets[gi - 1].size()) break;
        idx[--gi] = 0;
      }
      if (gi == 0) exhausted_product = true;
    }
    if (block.empty()) break;

    ParallelOutcomes<PickOutcome> outcomes(
        ctx, block.size(),
        [&](size_t i) {
          PickOutcome out;
          try_candidate(block[i], &out.error, &out.accepted, &out.witnesses,
                        &out.rejects);
          return out;
        },
        [](const PickOutcome& o) { return !o.error.ok(); });
    for (size_t i = 0; i < block.size() && inner.ok(); ++i) {
      PickOutcome& o = outcomes.Get(i);
      if (!o.error.ok()) {
        inner = o.error;
        break;
      }
      stats->verified_rejects += o.rejects;
      for (size_t k = 0; k < o.accepted.size(); ++k) {
        bool dup = false;
        for (const Query& existing : result.disjuncts)
          if (existing.ToString() == o.accepted[k].ToString()) dup = true;
        if (!dup) {
          result.disjuncts.push_back(std::move(o.accepted[k]));
          if (witness != nullptr)
            witness->disjuncts.push_back(std::move(o.witnesses[k]));
        }
      }
    }
  }
  CQAC_RETURN_IF_ERROR(inner);
  return result;
}

Result<UnionQuery> BucketRewrite(const Query& q, const ViewSet& views,
                                 const BucketOptions& options,
                                 BucketStats* stats,
                                 RewritingWitness* witness) {
  EngineContext ctx;
  return BucketRewrite(ctx, q, views, options, stats, witness);
}

}  // namespace cqac
