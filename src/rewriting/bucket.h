// The bucket algorithm [Levy et al. 96] as a baseline (Section 4.1 discusses
// the MS algorithms; the bucket algorithm is their common ancestor).
//
// For each query subgoal, a bucket collects the view subgoals it can map to;
// candidate rewritings are elements of the buckets' cartesian product, and
// each candidate is verified by a containment check. With `ac_aware` off the
// candidate generator ignores all comparisons — the configuration used by the
// benchmark harness to demonstrate what AC-blind rewriting misses (unsound
// candidates are rejected by verification; exportable-variable rewritings are
// simply never generated).
#ifndef CQAC_REWRITING_BUCKET_H_
#define CQAC_REWRITING_BUCKET_H_

#include "src/base/status.h"
#include "src/engine/context.h"
#include "src/ir/query.h"
#include "src/ir/view.h"
#include "src/rewriting/witness.h"

namespace cqac {

struct BucketOptions {
  /// Consider the query's comparisons when forming candidates (map them onto
  /// exposed head positions). Off = the classic CQ-only bucket algorithm.
  bool ac_aware = true;
};

struct BucketStats {
  size_t bucket_entries = 0;
  size_t candidates = 0;
  size_t verified_rejects = 0;
};

/// Runs the bucket algorithm; returns the union of verified contained
/// rewritings. The cartesian-product candidate count is charged to the
/// context's Budget::max_mappings (ResourceExhausted when exceeded) and
/// verification containment checks are memoized in the context.
///
/// When `witness` is non-null, each emitted disjunct's verification evidence
/// is recorded (parallel to the returned union; the decision cache is
/// bypassed for those checks so mappings are really recomputed).
Result<UnionQuery> BucketRewrite(EngineContext& ctx, const Query& q,
                                 const ViewSet& views,
                                 const BucketOptions& options = {},
                                 BucketStats* stats = nullptr,
                                 RewritingWitness* witness = nullptr);
Result<UnionQuery> BucketRewrite(const Query& q, const ViewSet& views,
                                 const BucketOptions& options = {},
                                 BucketStats* stats = nullptr,
                                 RewritingWitness* witness = nullptr);

}  // namespace cqac

#endif  // CQAC_REWRITING_BUCKET_H_
