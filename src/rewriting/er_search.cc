#include "src/rewriting/er_search.h"

#include "src/constraints/preprocess.h"
#include "src/containment/containment.h"
#include "src/engine/parallel.h"
#include "src/ir/expansion.h"
#include "src/rewriting/bucket.h"
#include "src/rewriting/rewrite_lsi.h"

namespace cqac {

Result<ErResult> FindEquivalentRewriting(EngineContext& ctx, const Query& q,
                                         const ViewSet& views,
                                         const ErSearchOptions& options,
                                         ErWitness* witness) {
  ErResult result;
  if (witness != nullptr) *witness = ErWitness{};

  // Gather contained rewritings from the applicable engine.
  Result<Query> qp = Preprocess(q);
  if (!qp.ok()) {
    if (qp.status().code() == StatusCode::kInconsistent) {
      // The empty query: any inconsistent rewriting is an ER; represent it
      // as the empty union.
      result.union_er = UnionQuery{};
      if (witness != nullptr) witness->query_inconsistent = true;
      return result;
    }
    return qp.status();
  }

  RewritingWitness* fw = witness != nullptr ? &witness->forward : nullptr;
  AcClass cls = qp.value().Classify();
  UnionQuery crs;
  if (cls == AcClass::kNone || cls == AcClass::kLsi || cls == AcClass::kRsi) {
    CQAC_ASSIGN_OR_RETURN(
        crs, RewriteLsiQuery(ctx, qp.value(), views, {}, nullptr, fw));
  } else {
    CQAC_ASSIGN_OR_RETURN(
        crs, BucketRewrite(ctx, qp.value(), views, {}, nullptr, fw));
  }
  if (witness != nullptr) witness->crs = crs;

  // A single CR whose expansion contains the query is an ER. The per-CR
  // back-containment checks are independent; the merge walks them in CR
  // order, so the *first* CR that qualifies wins exactly as in the serial
  // scan. A qualifying (or hard-erroring) CR cancels its siblings.
  struct BackOutcome {
    Status error = Status::OK();
    bool skipped = false;  // back-check exhausted its budget: ignore the CR
    bool contained = false;
    ContainmentWitness back_witness;
  };
  ParallelOutcomes<BackOutcome> backs(
      ctx, crs.disjuncts.size(),
      [&](size_t i) {
        BackOutcome out;
        Result<Query> exp = ExpandRewriting(crs.disjuncts[i], views);
        if (!exp.ok()) {
          out.error = exp.status();
          return out;
        }
        Result<bool> back =
            IsContained(ctx, qp.value(), exp.value(), {},
                        witness != nullptr ? &out.back_witness : nullptr);
        if (!back.ok()) {
          if (back.status().code() == StatusCode::kResourceExhausted)
            out.skipped = true;
          else
            out.error = back.status();
          return out;
        }
        out.contained = back.value();
        return out;
      },
      [](const BackOutcome& o) { return !o.error.ok() || o.contained; });
  for (size_t i = 0; i < crs.disjuncts.size(); ++i) {
    BackOutcome& o = backs.Get(i);
    CQAC_RETURN_IF_ERROR(o.error);
    if (o.skipped || !o.contained) continue;
    result.single = crs.disjuncts[i];
    if (witness != nullptr) {
      witness->single_index = static_cast<int>(i);
      witness->back = std::move(o.back_witness);
    }
    return result;
  }

  if (options.try_union && !crs.disjuncts.empty()) {
    // Corollary 3.1: an ER may need to be a union. The CRs are contained by
    // construction; equivalence needs the query contained in the union of
    // expansions.
    UnionQuery expansions;
    for (const Query& cr : crs.disjuncts) {
      CQAC_ASSIGN_OR_RETURN(Query exp, ExpandRewriting(cr, views));
      expansions.disjuncts.push_back(std::move(exp));
    }
    CQAC_ASSIGN_OR_RETURN(bool covered,
                          IsContainedInUnion(ctx, qp.value(), expansions));
    if (covered) result.union_er = crs;
  }
  return result;
}

Result<ErResult> FindEquivalentRewriting(const Query& q, const ViewSet& views,
                                         const ErSearchOptions& options,
                                         ErWitness* witness) {
  EngineContext ctx;
  return FindEquivalentRewriting(ctx, q, views, options, witness);
}

}  // namespace cqac
