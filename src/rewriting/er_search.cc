#include "src/rewriting/er_search.h"

#include "src/constraints/preprocess.h"
#include "src/containment/containment.h"
#include "src/ir/expansion.h"
#include "src/rewriting/bucket.h"
#include "src/rewriting/rewrite_lsi.h"

namespace cqac {

Result<ErResult> FindEquivalentRewriting(EngineContext& ctx, const Query& q,
                                         const ViewSet& views,
                                         const ErSearchOptions& options,
                                         ErWitness* witness) {
  ErResult result;
  if (witness != nullptr) *witness = ErWitness{};

  // Gather contained rewritings from the applicable engine.
  Result<Query> qp = Preprocess(q);
  if (!qp.ok()) {
    if (qp.status().code() == StatusCode::kInconsistent) {
      // The empty query: any inconsistent rewriting is an ER; represent it
      // as the empty union.
      result.union_er = UnionQuery{};
      if (witness != nullptr) witness->query_inconsistent = true;
      return result;
    }
    return qp.status();
  }

  RewritingWitness* fw = witness != nullptr ? &witness->forward : nullptr;
  AcClass cls = qp.value().Classify();
  UnionQuery crs;
  if (cls == AcClass::kNone || cls == AcClass::kLsi || cls == AcClass::kRsi) {
    CQAC_ASSIGN_OR_RETURN(
        crs, RewriteLsiQuery(ctx, qp.value(), views, {}, nullptr, fw));
  } else {
    CQAC_ASSIGN_OR_RETURN(
        crs, BucketRewrite(ctx, qp.value(), views, {}, nullptr, fw));
  }
  if (witness != nullptr) witness->crs = crs;

  // A single CR whose expansion contains the query is an ER.
  for (size_t i = 0; i < crs.disjuncts.size(); ++i) {
    const Query& cr = crs.disjuncts[i];
    CQAC_ASSIGN_OR_RETURN(Query exp, ExpandRewriting(cr, views));
    ContainmentWitness back_witness;
    Result<bool> back =
        IsContained(ctx, qp.value(), exp, {},
                    witness != nullptr ? &back_witness : nullptr);
    if (!back.ok()) {
      if (back.status().code() == StatusCode::kResourceExhausted) continue;
      return back.status();
    }
    if (back.value()) {
      result.single = cr;
      if (witness != nullptr) {
        witness->single_index = static_cast<int>(i);
        witness->back = std::move(back_witness);
      }
      return result;
    }
  }

  if (options.try_union && !crs.disjuncts.empty()) {
    // Corollary 3.1: an ER may need to be a union. The CRs are contained by
    // construction; equivalence needs the query contained in the union of
    // expansions.
    UnionQuery expansions;
    for (const Query& cr : crs.disjuncts) {
      CQAC_ASSIGN_OR_RETURN(Query exp, ExpandRewriting(cr, views));
      expansions.disjuncts.push_back(std::move(exp));
    }
    CQAC_ASSIGN_OR_RETURN(bool covered,
                          IsContainedInUnion(ctx, qp.value(), expansions));
    if (covered) result.union_er = crs;
  }
  return result;
}

Result<ErResult> FindEquivalentRewriting(const Query& q, const ViewSet& views,
                                         const ErSearchOptions& options,
                                         ErWitness* witness) {
  EngineContext ctx;
  return FindEquivalentRewriting(ctx, q, views, options, witness);
}

}  // namespace cqac
