// Equivalent-rewriting search (Section 3, Theorems 3.1/3.2, Corollary 3.1).
//
// Theorem 3.1 shows a doubly-exponential bound on the size of a minimal ER,
// making the problem decidable; a faithful exhaustive search is intractable,
// so this module searches the practically relevant space: candidates
// produced by the rewriting engines (RewriteLSIQuery when applicable, the
// bucket algorithm otherwise), verified by two-way containment. A returned
// ER is always correct; a `not found` answer is conclusive only within the
// searched candidate space (documented in DESIGN.md).
#ifndef CQAC_REWRITING_ER_SEARCH_H_
#define CQAC_REWRITING_ER_SEARCH_H_

#include <optional>

#include "src/base/status.h"
#include "src/engine/context.h"
#include "src/ir/query.h"
#include "src/ir/view.h"
#include "src/rewriting/witness.h"

namespace cqac {

struct ErSearchOptions {
  /// Also test whether the full union of contained rewritings is equivalent
  /// (Corollary 3.1's language of finite unions). More expensive: uses the
  /// canonical-database union-containment test.
  bool try_union = true;
};

/// The result of an ER search.
struct ErResult {
  /// A single-CQAC equivalent rewriting, when one exists in the searched
  /// space.
  std::optional<Query> single;
  /// Otherwise, an equivalent finite union, when one exists.
  std::optional<UnionQuery> union_er;

  bool found() const { return single.has_value() || union_er.has_value(); }
};

/// Evidence for one ErResult: the forward direction (every candidate CR is a
/// contained rewriting) plus, for a single-CQAC ER, the back-containment
/// witness `query ⊆ expansion(single)`. The union case carries no back
/// witness — its back direction is a canonical-database decision the
/// certificate checker re-runs from scratch.
struct ErWitness {
  /// The query preprocessed to the empty (inconsistent) query; the ER is
  /// the empty union and no other evidence exists.
  bool query_inconsistent = false;
  /// Every candidate CR the search considered, with forward witnesses.
  UnionQuery crs;
  RewritingWitness forward;
  /// Index into `crs` of the disjunct returned as the single ER; -1 when
  /// the result is a union (or nothing was found).
  int single_index = -1;
  /// Back direction for the single case: query ⊆ Preprocess(expansion).
  ContainmentWitness back;
};

/// Searches for an equivalent rewriting of `q` using `views`. The context
/// overload shares one decision cache across the CR generation and the
/// many two-way containment verifications. When `witness` is non-null the
/// evidence behind a found ER is recorded for certificate checking.
Result<ErResult> FindEquivalentRewriting(EngineContext& ctx, const Query& q,
                                         const ViewSet& views,
                                         const ErSearchOptions& options = {},
                                         ErWitness* witness = nullptr);
Result<ErResult> FindEquivalentRewriting(const Query& q, const ViewSet& views,
                                         const ErSearchOptions& options = {},
                                         ErWitness* witness = nullptr);

}  // namespace cqac

#endif  // CQAC_REWRITING_ER_SEARCH_H_
