#include "src/rewriting/export_analysis.h"

#include <algorithm>
#include <cassert>

#include "src/base/strings.h"

namespace cqac {

HeadHomomorphism::HeadHomomorphism(int num_vars) : parent_(num_vars) {
  for (int i = 0; i < num_vars; ++i) parent_[i] = i;
}

// No path compression: Find must stay genuinely const, because MCDs (and
// their head homomorphisms) are shared read-only across TaskPool workers.
// Chains are bounded by the view's variable count, so plain walking is
// cheap enough.
int HeadHomomorphism::Find(int var) const {
  while (parent_[var] != var) var = parent_[var];
  return var;
}

void HeadHomomorphism::Union(int a, int b) {
  a = Find(a);
  b = Find(b);
  if (a == b) return;
  if (a > b) std::swap(a, b);
  parent_[b] = a;  // smaller id becomes the representative
}

bool HeadHomomorphism::RefinedBy(const HeadHomomorphism& other) const {
  assert(num_vars() == other.num_vars());
  for (int i = 0; i < num_vars(); ++i)
    for (int j = i + 1; j < num_vars(); ++j)
      if (Same(i, j) && !other.Same(i, j)) return false;
  return true;
}

bool HeadHomomorphism::operator==(const HeadHomomorphism& o) const {
  return RefinedBy(o) && o.RefinedBy(*this);
}

HeadHomomorphism HeadHomomorphism::Combine(const HeadHomomorphism& a,
                                           const HeadHomomorphism& b) {
  assert(a.num_vars() == b.num_vars());
  HeadHomomorphism out = a;
  for (int i = 0; i < b.num_vars(); ++i) out.Union(i, b.Find(i));
  return out;
}

std::string HeadHomomorphism::ToString(const Query& view) const {
  std::vector<std::string> classes;
  std::vector<bool> seen(num_vars(), false);
  for (int i = 0; i < num_vars(); ++i) {
    if (seen[i]) continue;
    std::vector<std::string> members;
    for (int j = i; j < num_vars(); ++j) {
      if (Same(i, j)) {
        seen[j] = true;
        members.push_back(view.VarName(j));
      }
    }
    if (members.size() > 1)
      classes.push_back("{" + Join(members, ", ") + "}");
  }
  return "{" + Join(classes, ", ") + "}";
}

ExportAnalysis::ExportAnalysis(const Query& view) : view_(view) {
  distinguished_ = view_.DistinguishedMask();
  // Nodes: variables first, then interned constants.
  std::vector<Value> constants;
  auto node_of = [&](const Term& t) -> int {
    if (t.is_var()) return t.var();
    for (size_t i = 0; i < constants.size(); ++i)
      if (constants[i] == t.value())
        return view_.num_vars() + static_cast<int>(i);
    constants.push_back(t.value());
    return view_.num_vars() + static_cast<int>(constants.size()) - 1;
  };
  // First pass interns everything so adjacency can be sized.
  for (const Comparison& c : view_.comparisons()) {
    node_of(c.lhs);
    node_of(c.rhs);
  }
  num_nodes_ = view_.num_vars() + static_cast<int>(constants.size());
  adj_.assign(num_nodes_, {});
  radj_.assign(num_nodes_, {});
  for (const Comparison& c : view_.comparisons()) {
    int a = node_of(c.lhs);
    int b = node_of(c.rhs);
    switch (c.op) {
      case CompOp::kLt:
        adj_[a].push_back({b, true});
        radj_[b].push_back({a, true});
        break;
      case CompOp::kLe:
        adj_[a].push_back({b, false});
        radj_[b].push_back({a, false});
        break;
      case CompOp::kEq:
        // Preprocessing removes these; treat defensively as two <= edges.
        adj_[a].push_back({b, false});
        radj_[b].push_back({a, false});
        adj_[b].push_back({a, false});
        radj_[a].push_back({b, false});
        break;
    }
  }
  // Implicit order edges between distinct numeric constants.
  for (size_t i = 0; i < constants.size(); ++i) {
    if (!constants[i].is_number()) continue;
    for (size_t j = 0; j < constants.size(); ++j) {
      if (i == j || !constants[j].is_number()) continue;
      if (constants[i].number() < constants[j].number()) {
        int a = view_.num_vars() + static_cast<int>(i);
        int b = view_.num_vars() + static_cast<int>(j);
        adj_[a].push_back({b, true});
        radj_[b].push_back({a, true});
      }
    }
  }
}

ExportAnalysis::PathScan ExportAnalysis::ScanPaths(int from, int to) const {
  PathScan out;
  if (from == to) return out;  // trivial path not meaningful here
  std::vector<bool> on_path(num_nodes_, false);

  // DFS over simple paths tracking whether the current path used a strict
  // edge or visited an intermediate distinguished variable.
  auto dfs = [&](auto&& self, int node, bool used_strict,
                 bool saw_dist) -> void {
    if (node == to) {
      out.found = true;
      if (used_strict)
        out.exists_strict_path = true;
      else
        out.exists_le_only_path = true;
      if (saw_dist) out.exists_path_with_intermediate_dist = true;
      return;
    }
    on_path[node] = true;
    for (const Edge& e : adj_[node]) {
      if (on_path[e.to]) continue;
      bool intermediate_dist =
          saw_dist || (e.to != to && e.to < view_.num_vars() &&
                       distinguished_[e.to]);
      self(self, e.to, used_strict || e.strict, intermediate_dist);
    }
    on_path[node] = false;
  };
  dfs(dfs, from, false, false);
  return out;
}

std::vector<int> ExportAnalysis::LeqSet(int var) const {
  std::vector<int> out;
  for (int y = 0; y < view_.num_vars(); ++y) {
    if (y == var || !distinguished_[y]) continue;
    PathScan scan = ScanPaths(y, var);
    if (scan.found && !scan.exists_strict_path &&
        !scan.exists_path_with_intermediate_dist)
      out.push_back(y);
  }
  return out;
}

std::vector<int> ExportAnalysis::GeqSet(int var) const {
  std::vector<int> out;
  for (int y = 0; y < view_.num_vars(); ++y) {
    if (y == var || !distinguished_[y]) continue;
    PathScan scan = ScanPaths(var, y);
    if (scan.found && !scan.exists_strict_path &&
        !scan.exists_path_with_intermediate_dist)
      out.push_back(y);
  }
  return out;
}

bool ExportAnalysis::IsExportable(int var) const {
  if (var < static_cast<int>(distinguished_.size()) && distinguished_[var])
    return false;  // already distinguished, nothing to export
  return !LeqSet(var).empty() && !GeqSet(var).empty();
}

std::vector<HeadHomomorphism> ExportAnalysis::ExportHomomorphisms(
    int var) const {
  std::vector<HeadHomomorphism> out;
  for (int y1 : LeqSet(var)) {
    for (int y2 : GeqSet(var)) {
      if (y1 == y2) continue;
      HeadHomomorphism h(view_.num_vars());
      h.Union(y1, y2);
      // Equating y1 = y2 collapses everything between them, including `var`.
      h.Union(y1, var);
      if (std::find(out.begin(), out.end(), h) == out.end())
        out.push_back(std::move(h));
    }
  }
  return out;
}

bool ExportAnalysis::Usable(int var) const {
  return distinguished_[var] || IsExportable(var);
}

ExportAnalysis::PathInfo ExportAnalysis::PathBetween(int from_var,
                                                     int to_var) const {
  PathScan scan = ScanPaths(from_var, to_var);
  PathInfo info;
  info.reachable = scan.found;
  info.some_path_all_le = scan.exists_le_only_path;
  return info;
}

std::vector<std::pair<int, ExportAnalysis::PathInfo>>
ExportAnalysis::DistinguishedAbove(int var) const {
  std::vector<std::pair<int, PathInfo>> out;
  for (int y = 0; y < view_.num_vars(); ++y) {
    if (y == var || !distinguished_[y]) continue;
    PathInfo info = PathBetween(var, y);
    if (info.reachable) out.emplace_back(y, info);
  }
  return out;
}

std::vector<std::pair<int, ExportAnalysis::PathInfo>>
ExportAnalysis::DistinguishedBelow(int var) const {
  std::vector<std::pair<int, PathInfo>> out;
  for (int y = 0; y < view_.num_vars(); ++y) {
    if (y == var || !distinguished_[y]) continue;
    PathInfo info = PathBetween(y, var);
    if (info.reachable) out.emplace_back(y, info);
  }
  return out;
}

}  // namespace cqac
