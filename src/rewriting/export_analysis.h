// Exportable-variable analysis (Section 4.3).
//
// A nondistinguished view variable X is *exportable* when a head
// homomorphism (a partition of the view's head variables, all members of a
// class equated) forces X equal to a distinguished variable: one equates
// some Y1 in the lex-set S_<=(v, X) with some Y2 in the geq-set S_>=(v, X)
// (Definition 4.2, Lemma 4.1). Exported variables can then be treated as
// distinguished during MCD construction, which is novelty (1) of the
// RewriteLSIQuery algorithm.
#ifndef CQAC_REWRITING_EXPORT_ANALYSIS_H_
#define CQAC_REWRITING_EXPORT_ANALYSIS_H_

#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/ir/query.h"

namespace cqac {

/// A head homomorphism: a union-find partition over a view's variables.
/// Only classes that contain at least one distinguished (head) variable are
/// realizable in a rewriting. The identity homomorphism has every variable
/// in its own class.
class HeadHomomorphism {
 public:
  explicit HeadHomomorphism(int num_vars);

  int Find(int var) const;
  /// Merges the classes of a and b.
  void Union(int a, int b);

  /// True iff a and b are in the same class.
  bool Same(int a, int b) const { return Find(a) == Find(b); }

  int num_vars() const { return static_cast<int>(parent_.size()); }

  /// True iff every merge of `this` is also present in `other` (i.e. `other`
  /// is at least as restrictive).
  bool RefinedBy(const HeadHomomorphism& other) const;

  bool operator==(const HeadHomomorphism& o) const;

  /// Combines two homomorphisms (union of their merges).
  static HeadHomomorphism Combine(const HeadHomomorphism& a,
                                  const HeadHomomorphism& b);

  /// Renders as {{X1, X3}, {X5, X7}} listing only non-singleton classes.
  std::string ToString(const Query& view) const;

 private:
  // No `mutable`: const accessors must not write — head homomorphisms are
  // shared read-only across TaskPool workers.
  std::vector<int> parent_;
};

/// Path-based analysis of one (preprocessed) view's inequality graph.
class ExportAnalysis {
 public:
  explicit ExportAnalysis(const Query& view);

  const Query& view() const { return view_; }

  /// S_<=(v, X): distinguished variables Y with a path Y -> X whose edges
  /// are all <=, no path Y -> X carrying <, and no other distinguished
  /// variable on any path Y -> X (Definition 4.2).
  std::vector<int> LeqSet(int var) const;

  /// S_>=(v, X): the mirror image (paths X -> Y).
  std::vector<int> GeqSet(int var) const;

  /// Lemma 4.1: exportable iff both sets are nonempty.
  bool IsExportable(int var) const;

  /// All minimal head homomorphisms that export `var`: one per pair
  /// (Y1 in LeqSet, Y2 in GeqSet), each merging exactly {Y1, Y2} (when
  /// Y1 == Y2 the variable is already pinned to a distinguished variable —
  /// impossible after preprocessing, since that would be an implied
  /// equality, so pairs are always distinct).
  std::vector<HeadHomomorphism> ExportHomomorphisms(int var) const;

  /// True iff `var` is distinguished or exportable.
  bool Usable(int var) const;

  /// Directed reachability on raw <=/< edges: does a path var -> target
  /// exist, and if so is some path free of `<` edges? Used by the
  /// Section 4.4 case-(3) comparison satisfaction.
  struct PathInfo {
    bool reachable = false;
    bool some_path_all_le = false;  // a path using only <= edges exists
  };
  PathInfo PathBetween(int from_var, int to_var) const;

  /// Distinguished variables reachable from `var` (for LSI satisfaction:
  /// mu(X) <= Y) together with whether an all-<= path exists.
  std::vector<std::pair<int, PathInfo>> DistinguishedAbove(int var) const;
  /// Distinguished variables that reach `var` (for RSI satisfaction).
  std::vector<std::pair<int, PathInfo>> DistinguishedBelow(int var) const;

 private:
  // Adjacency over variable nodes and constant pseudo-nodes.
  struct Edge {
    int to;
    bool strict;
  };

  // Enumerates all simple paths from `from` to `to`.
  struct PathScan {
    bool found = false;
    bool exists_le_only_path = false;  // some path uses only <= edges
    bool exists_strict_path = false;   // some path carries a < edge
    bool exists_path_with_intermediate_dist =
        false;  // some path passes through another distinguished variable
  };
  PathScan ScanPaths(int from, int to) const;

  Query view_;
  std::vector<bool> distinguished_;
  int num_nodes_ = 0;                       // vars + constants
  std::vector<std::vector<Edge>> adj_;      // a <= / < b
  std::vector<std::vector<Edge>> radj_;     // reverse
};

}  // namespace cqac

#endif  // CQAC_REWRITING_EXPORT_ANALYSIS_H_
