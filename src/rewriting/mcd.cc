#include "src/rewriting/mcd.h"

#include <algorithm>
#include <deque>

#include "src/base/strings.h"
#include "src/constraints/implication.h"

namespace cqac {

std::string Mcd::ToString(const Query& q, const Query& view) const {
  std::vector<std::string> goals;
  for (int g : covered) {
    const Atom& a = q.body()[g];
    std::vector<std::string> args;
    for (const Term& t : a.args) args.push_back(q.TermToString(t));
    goals.push_back(a.predicate + "(" + Join(args, ", ") + ")");
  }
  return StrCat("MCD{view=", view.head().predicate, ", covers=[",
                Join(goals, ", "), "], phi=",
                VarMapToString(phi, q, view), ", hh=", hh.ToString(view), "}");
}

namespace {

/// In-flight MCD construction state.
struct BuildState {
  std::set<int> covered;
  VarMap phi;
  HeadHomomorphism hh;
  std::map<int, Value> const_bindings;  // view var -> constant

  BuildState(int qvars, int vvars) : phi(qvars), hh(vvars) {}
};

class McdBuilder {
 public:
  McdBuilder(const Query& q, const Query& view, int view_index,
             const ExportAnalysis& analysis, const McdOptions& options,
             size_t max_mcds, std::vector<Mcd>* out)
      : q_(q), view_(view), view_index_(view_index), analysis_(analysis),
        options_(options), max_mcds_(max_mcds), out_(out),
        q_distinguished_(q.DistinguishedMask()),
        v_distinguished_(view.DistinguishedMask()) {
    // Precompute, per query variable, the subgoals it occurs in.
    occurs_in_.resize(q_.num_vars());
    for (size_t g = 0; g < q_.body().size(); ++g)
      for (const Term& t : q_.body()[g].args)
        if (t.is_var()) occurs_in_[t.var()].insert(static_cast<int>(g));
  }

  /// Seeds an MCD at (query subgoal gi -> view subgoal vj) and emits all
  /// completions.
  void Seed(int gi, int vj) {
    BuildState st(q_.num_vars(), view_.num_vars());
    if (!Assign(gi, vj, &st)) return;
    Complete(std::move(st));
  }

 private:
  // Merges two view variables in the head homomorphism.
  static void Merge(BuildState* st, int a, int b) { st->hh.Union(a, b); }

  // Records that view variable `w` must carry constant `c` in the rewriting.
  bool BindConst(BuildState* st, int w, const Value& c) {
    auto it = st->const_bindings.find(w);
    if (it != st->const_bindings.end()) return it->second == c;
    st->const_bindings.emplace(w, c);
    return true;
  }

  // Extends the state by mapping query subgoal `gi` onto view subgoal `vj`.
  bool Assign(int gi, int vj, BuildState* st) {
    const Atom& qa = q_.body()[gi];
    const Atom& va = view_.body()[vj];
    if (qa.predicate != va.predicate || qa.args.size() != va.args.size())
      return false;
    st->covered.insert(gi);
    for (size_t p = 0; p < qa.args.size(); ++p) {
      const Term& qt = qa.args[p];
      const Term& vt = va.args[p];
      if (qt.is_const()) {
        if (vt.is_const()) {
          if (!(qt.value() == vt.value())) return false;
        } else {
          // A query constant lands on a view variable: that variable must be
          // usable and carry the constant.
          if (!analysis_.Usable(vt.var())) return false;
          if (!BindConst(st, vt.var(), qt.value())) return false;
        }
        continue;
      }
      // Query variable.
      if (!st->phi.Bind(qt.var(), vt)) {
        // X already mapped to a different view term: the two view terms must
        // be equal in the rewriting.
        const Term& prev = st->phi.Get(qt.var());
        if (prev.is_const() && vt.is_const())
          return prev.value() == vt.value();
        if (prev.is_const() || vt.is_const()) {
          const Term& cv = prev.is_const() ? prev : vt;
          const Term& vv = prev.is_const() ? vt : prev;
          if (!analysis_.Usable(vv.var())) return false;
          if (!BindConst(st, vv.var(), cv.value())) return false;
        } else {
          // Equate two view variables via the head homomorphism; both must
          // be usable for the merge to be realizable (Section 4.3).
          if (!analysis_.Usable(prev.var()) || !analysis_.Usable(vt.var()))
            return false;
          Merge(st, prev.var(), vt.var());
        }
      }
    }
    return true;
  }

  // After assignments, finds a query variable whose image forces pulling
  // more subgoals into the MCD (the MiniCon shared-variable condition);
  // returns the first uncovered subgoal to pull, or -1 when closed.
  int FindPull(const BuildState& st) const {
    for (int x = 0; x < q_.num_vars(); ++x) {
      if (!st.phi.IsBound(x)) continue;
      const Term& w = st.phi.Get(x);
      if (!w.is_var()) continue;
      if (analysis_.Usable(w.var())) continue;
      // Image is nondistinguished and not exportable: every subgoal of X
      // must live inside this MCD.
      if (q_distinguished_[x]) return -2;  // impossible: cannot be returned
      for (int g : occurs_in_[x])
        if (!st.covered.count(g)) return g;
    }
    return -1;
  }

  // Recursively closes the MCD, then applies exports and emits.
  void Complete(BuildState st) {
    if (out_->size() >= max_mcds_) return;
    int pull = FindPull(st);
    if (pull == -2) return;  // a distinguished query var hit an unusable image
    if (pull >= 0) {
      // Branch over every view subgoal that can host the pulled subgoal.
      for (size_t vj = 0; vj < view_.body().size(); ++vj) {
        BuildState next = st;
        if (Assign(pull, static_cast<int>(vj), &next))
          Complete(std::move(next));
      }
      return;
    }
    EmitWithExports(std::move(st));
  }

  // Variables that must end up in a distinguished class.
  std::set<int> NeedUsable(const BuildState& st) const {
    std::set<int> need;
    for (int x = 0; x < q_.num_vars(); ++x) {
      if (!st.phi.IsBound(x)) continue;
      const Term& w = st.phi.Get(x);
      if (!w.is_var()) continue;
      bool escapes = q_distinguished_[x];
      for (int g : occurs_in_[x])
        if (!st.covered.count(g)) escapes = true;
      if (escapes) need.insert(w.var());
    }
    for (const auto& [w, c] : st.const_bindings) need.insert(w);
    return need;
  }

  bool ClassHasDistinguished(const HeadHomomorphism& hh, int w) const {
    for (int v = 0; v < view_.num_vars(); ++v)
      if (v_distinguished_[v] && hh.Same(v, w)) return true;
    return false;
  }

  // The view's comparisons plus the equalities a head homomorphism imposes.
  std::vector<Comparison> ViewAcsUnder(const HeadHomomorphism& hh,
                                       const std::map<int, Value>& consts)
      const {
    std::vector<Comparison> cs = view_.comparisons();
    for (int v = 0; v < view_.num_vars(); ++v) {
      int r = hh.Find(v);
      if (r != v)
        cs.push_back(Comparison(Term::Var(v), CompOp::kEq, Term::Var(r)));
    }
    for (const auto& [w, c] : consts)
      cs.push_back(Comparison(Term::Var(w), CompOp::kEq, Term::Const(c)));
    return cs;
  }

  void EmitWithExports(BuildState st) {
    std::set<int> need = NeedUsable(st);

    // Per class needing export, the alternative homomorphisms (any member's
    // export choices will do).
    std::vector<std::vector<HeadHomomorphism>> choices;
    std::set<int> classes_handled;
    for (int w : need) {
      if (ClassHasDistinguished(st.hh, w)) continue;
      int rep = st.hh.Find(w);
      if (classes_handled.count(rep)) continue;
      classes_handled.insert(rep);
      std::vector<HeadHomomorphism> alts;
      for (int m = 0; m < view_.num_vars(); ++m) {
        if (!st.hh.Same(m, w)) continue;
        for (HeadHomomorphism& h : analysis_.ExportHomomorphisms(m))
          if (std::find(alts.begin(), alts.end(), h) == alts.end())
            alts.push_back(std::move(h));
      }
      if (alts.empty()) return;  // some class cannot be made usable
      choices.push_back(std::move(alts));
    }

    // Cartesian product of export choices, capped.
    std::vector<HeadHomomorphism> combos{st.hh};
    for (const auto& alts : choices) {
      std::vector<HeadHomomorphism> next;
      for (const HeadHomomorphism& base : combos)
        for (const HeadHomomorphism& h : alts) {
          next.push_back(HeadHomomorphism::Combine(base, h));
          if (next.size() > options_.max_export_combinations) break;
        }
      combos = std::move(next);
    }

    // Keep only the least restrictive combinations whose induced equalities
    // are consistent with the view's comparisons.
    std::vector<HeadHomomorphism> minimal;
    for (const HeadHomomorphism& h : combos) {
      if (!AcsConsistent(ViewAcsUnder(h, st.const_bindings))) continue;
      bool usable_ok = true;
      for (int w : need)
        if (!ClassHasDistinguished(h, w)) usable_ok = false;
      if (!usable_ok) continue;
      minimal.push_back(h);
    }
    // Drop any homomorphism strictly more restrictive than another kept one.
    std::vector<HeadHomomorphism> pruned;
    for (const HeadHomomorphism& h : minimal) {
      bool dominated = false;
      for (const HeadHomomorphism& g : minimal)
        if (!(g == h) && g.RefinedBy(h)) dominated = true;
      if (!dominated) pruned.push_back(h);
    }

    for (const HeadHomomorphism& h : pruned) {
      if (out_->size() >= max_mcds_) return;
      Mcd mcd(q_.num_vars(), view_.num_vars());
      mcd.view_index = view_index_;
      mcd.covered.assign(st.covered.begin(), st.covered.end());
      mcd.phi = st.phi;
      mcd.hh = h;
      for (const auto& [w, c] : st.const_bindings)
        mcd.const_bindings.emplace(h.Find(w), c);
      // Deduplicate.
      bool dup = false;
      for (const Mcd& existing : *out_) {
        if (existing.view_index == mcd.view_index &&
            existing.covered == mcd.covered && existing.phi == mcd.phi &&
            existing.hh == mcd.hh &&
            existing.const_bindings == mcd.const_bindings)
          dup = true;
      }
      if (!dup) out_->push_back(std::move(mcd));
    }
  }

  const Query& q_;
  const Query& view_;
  int view_index_;
  const ExportAnalysis& analysis_;
  const McdOptions& options_;
  size_t max_mcds_;
  std::vector<Mcd>* out_;
  std::vector<bool> q_distinguished_;
  std::vector<bool> v_distinguished_;
  std::vector<std::set<int>> occurs_in_;
};

}  // namespace

Result<std::vector<Mcd>> ConstructMcds(
    EngineContext& ctx, const Query& q, const ViewSet& views,
    const std::vector<ExportAnalysis>& analyses, const McdOptions& options) {
  if (analyses.size() != views.size())
    return Status::InvalidArgument("analyses must parallel views");
  const size_t max_mcds = ctx.budget().max_mappings;
  std::vector<Mcd> out;
  for (size_t vi = 0; vi < views.size(); ++vi) {
    McdBuilder builder(q, views[vi], static_cast<int>(vi), analyses[vi],
                       options, max_mcds, &out);
    for (size_t gi = 0; gi < q.body().size(); ++gi) {
      CQAC_RETURN_IF_ERROR(ctx.budget().CheckDeadline("MCD construction"));
      for (size_t vj = 0; vj < views[vi].body().size(); ++vj)
        builder.Seed(static_cast<int>(gi), static_cast<int>(vj));
    }
    if (out.size() >= max_mcds) {
      ++ctx.stats().budget_exhaustions;
      return Status::ResourceExhausted(
          "MCD construction exceeded the mapping budget");
    }
  }
  return out;
}

Result<std::vector<Mcd>> ConstructMcds(
    const Query& q, const ViewSet& views,
    const std::vector<ExportAnalysis>& analyses, const McdOptions& options) {
  EngineContext ctx;
  return ConstructMcds(ctx, q, views, analyses, options);
}

}  // namespace cqac
