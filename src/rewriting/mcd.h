// MiniCon Descriptions (MCDs) extended with exportable variables — Step 1 of
// the RewriteLSIQuery algorithm (Figure 2, Sections 4.2-4.3).
//
// An MCD records how one view, under a head homomorphism, covers a subset of
// the query's ordinary subgoals. Compared to the MS algorithms [MiniCon,
// Shared-Variable-Bucket], a query variable may map to a *nondistinguished*
// view variable as long as that variable is exportable (Lemma 4.1); the MCD
// then carries the export's head homomorphism.
#ifndef CQAC_REWRITING_MCD_H_
#define CQAC_REWRITING_MCD_H_

#include <map>
#include <set>
#include <vector>

#include "src/base/status.h"
#include "src/engine/context.h"
#include "src/ir/query.h"
#include "src/ir/substitution.h"
#include "src/ir/view.h"
#include "src/rewriting/export_analysis.h"

namespace cqac {

/// One MiniCon Description.
struct Mcd {
  int view_index = -1;
  /// Sorted indices of the query subgoals this MCD covers.
  std::vector<int> covered;
  /// Partial map: query variable -> view term, defined exactly for the
  /// variables of the covered subgoals.
  VarMap phi;
  /// The (least restrictive) head homomorphism realizing required merges and
  /// exports. Classes containing a distinguished view variable are "usable".
  HeadHomomorphism hh;
  /// View variables whose class must carry a constant in the rewriting
  /// (a query constant met a view variable position): class rep -> value.
  std::map<int, Value> const_bindings;

  Mcd(int nvars_query, int nvars_view)
      : phi(nvars_query), hh(nvars_view) {}

  std::string ToString(const Query& q, const Query& view) const;
};

struct McdOptions {
  /// Cap on export-homomorphism combinations explored per MCD skeleton
  /// (structural fan-out bound; the overall MCD count is charged to the
  /// context's Budget::max_mappings).
  size_t max_export_combinations = 256;
};

/// Builds all MCDs of `q` over `views` (both must be preprocessed; the
/// analyses vector parallels the views). Each MCD is minimal in its covered
/// set and carries a least restrictive head homomorphism. The MCD count is
/// capped by the context's Budget::max_mappings and the deadline is checked
/// between seeds; exceeding either returns ResourceExhausted.
Result<std::vector<Mcd>> ConstructMcds(
    EngineContext& ctx, const Query& q, const ViewSet& views,
    const std::vector<ExportAnalysis>& analyses,
    const McdOptions& options = {});
Result<std::vector<Mcd>> ConstructMcds(
    const Query& q, const ViewSet& views,
    const std::vector<ExportAnalysis>& analyses,
    const McdOptions& options = {});

}  // namespace cqac

#endif  // CQAC_REWRITING_MCD_H_
