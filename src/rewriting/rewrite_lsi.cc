#include "src/rewriting/rewrite_lsi.h"

#include <algorithm>
#include <map>
#include <optional>

#include "src/base/strings.h"
#include "src/constraints/implication.h"
#include "src/constraints/preprocess.h"
#include "src/containment/containment.h"
#include "src/engine/parallel.h"
#include "src/eval/evaluate.h"
#include "src/ir/expansion.h"

namespace cqac {
namespace {

/// Union-find with constant pinning over the query's variables: combining
/// MCDs can force two query variables (or a variable and a constant) equal.
class QueryVarUnifier {
 public:
  explicit QueryVarUnifier(int n) : parent_(n), pin_(n) {
    for (int i = 0; i < n; ++i) parent_[i] = i;
  }

  int Find(int x) const {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  bool Union(int a, int b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return true;
    if (a > b) std::swap(a, b);
    if (pin_[b].has_value()) {
      if (pin_[a].has_value()) {
        if (!(*pin_[a] == *pin_[b])) return false;
      } else {
        pin_[a] = pin_[b];
      }
    }
    parent_[b] = a;
    return true;
  }

  bool Pin(int x, const Value& c) {
    x = Find(x);
    if (pin_[x].has_value()) return *pin_[x] == c;
    pin_[x] = c;
    return true;
  }

  const std::optional<Value>& PinOf(int x) const { return pin_[Find(x)]; }

 private:
  mutable std::vector<int> parent_;
  std::vector<std::optional<Value>> pin_;
};

/// Builder for one MCD combination.
class Combiner {
 public:
  Combiner(EngineContext& ctx, const Query& q, const ViewSet& views,
           const std::vector<ExportAnalysis>& analyses,
           const std::vector<const Mcd*>& combo,
           const RewriteOptions& options)
      : ctx_(ctx), q_(q), views_(views), analyses_(analyses), combo_(combo),
        options_(options), uf_(q.num_vars()) {}

  /// Produces all candidate rewritings for this combination (empty when the
  /// combination is infeasible).
  Result<std::vector<Query>> Build() {
    if (!UnifyQueryVars()) return std::vector<Query>{};
    if (!BuildSkeleton()) return std::vector<Query>{};
    CQAC_ASSIGN_OR_RETURN(bool ok, CollectAcWays());
    if (!ok) return std::vector<Query>{};
    return Instantiate();
  }

 private:
  // ---- Step A: equalities forced by the MCDs. -----------------------------
  bool UnifyQueryVars() {
    for (const Mcd* m : combo_) {
      const Query& view = views_[m->view_index];
      // Variables mapped to hh-equal view variables become equal; variables
      // mapped to constants (directly or through const_bindings) are pinned.
      std::vector<std::pair<int, int>> var_images;  // (q var, view var)
      for (int x = 0; x < q_.num_vars(); ++x) {
        if (!m->phi.IsBound(x)) continue;
        const Term& w = m->phi.Get(x);
        if (w.is_const()) {
          if (!uf_.Pin(x, w.value())) return false;
          continue;
        }
        int cls = m->hh.Find(w.var());
        auto cb = m->const_bindings.find(cls);
        if (cb != m->const_bindings.end() && !uf_.Pin(x, cb->second))
          return false;
        var_images.emplace_back(x, w.var());
      }
      for (size_t i = 0; i < var_images.size(); ++i)
        for (size_t j = i + 1; j < var_images.size(); ++j)
          if (m->hh.Same(var_images[i].second, var_images[j].second))
            if (!uf_.Union(var_images[i].first, var_images[j].first))
              return false;
      (void)view;
    }
    return true;
  }

  // The P-term of query variable `x`.
  Term PTermOf(int x) {
    if (uf_.PinOf(x).has_value()) return Term::Const(*uf_.PinOf(x));
    int rep = uf_.Find(x);
    return Term::Var(p_.FindOrAddVariable(q_.VarName(rep)));
  }

  // ---- Step B: head + view atoms. -----------------------------------------
  bool BuildSkeleton() {
    p_ = Query();
    p_.head().predicate = q_.head().predicate;
    for (const Term& t : q_.head().args) {
      if (t.is_const())
        p_.head().args.push_back(t);
      else
        p_.head().args.push_back(PTermOf(t.var()));
    }

    class_terms_.assign(combo_.size(), {});
    for (size_t mi = 0; mi < combo_.size(); ++mi) {
      const Mcd* m = combo_[mi];
      const Query& view = views_[m->view_index];
      Atom atom;
      atom.predicate = view.head().predicate;
      for (const Term& ht : view.head().args) {
        if (ht.is_const()) {
          atom.args.push_back(ht);
          continue;
        }
        int cls = m->hh.Find(ht.var());
        auto found = class_terms_[mi].find(cls);
        if (found != class_terms_[mi].end()) {
          atom.args.push_back(found->second);
          continue;
        }
        Term arg = Term::Var(-1);
        auto cb = m->const_bindings.find(cls);
        if (cb != m->const_bindings.end()) {
          arg = Term::Const(cb->second);
        } else {
          // A query variable whose image lies in this class?
          int qvar = -1;
          for (int x = 0; x < q_.num_vars() && qvar < 0; ++x) {
            if (!m->phi.IsBound(x)) continue;
            const Term& w = m->phi.Get(x);
            if (w.is_var() && m->hh.Same(w.var(), ht.var())) qvar = x;
          }
          if (qvar >= 0) {
            arg = PTermOf(qvar);
          } else {
            arg = Term::Var(p_.AddFreshVariable(
                StrCat(view.head().predicate, "_", view.VarName(cls))));
          }
        }
        class_terms_[mi].emplace(cls, arg);
        atom.args.push_back(arg);
      }
      p_.AddBodyAtom(std::move(atom));
    }
    return true;
  }

  // The view's comparisons plus hh equalities and constant bindings — the
  // premise available inside one MCD's view for case-(1)/(3) reasoning.
  std::vector<Comparison> ViewPremise(const Mcd* m) const {
    const Query& view = views_[m->view_index];
    std::vector<Comparison> cs = view.comparisons();
    for (int v = 0; v < view.num_vars(); ++v) {
      int r = m->hh.Find(v);
      if (r != v)
        cs.push_back(Comparison(Term::Var(v), CompOp::kEq, Term::Var(r)));
    }
    for (const auto& [cls, c] : m->const_bindings)
      cs.push_back(Comparison(Term::Var(cls), CompOp::kEq, Term::Const(c)));
    return cs;
  }

  // ---- Step C: ways to satisfy each query comparison (Section 4.4). -------
  // Each way is "add this comparison to P" (nullopt = nothing to add).
  Result<bool> CollectAcWays() {
    ac_ways_.clear();
    for (const Comparison& qc : q_.comparisons()) {
      // SI comparison on query variable x; `upper` == LSI.
      const bool upper = qc.lhs.is_var();
      const int x = upper ? qc.lhs.var() : qc.rhs.var();
      const Value bound = upper ? qc.rhs.value() : qc.lhs.value();
      const CompOp theta = qc.op;

      std::vector<std::optional<Comparison>> ways;
      Term t = PTermOf(x);
      if (t.is_const()) {
        bool sat = upper ? EvaluateGroundComparison(t.value(), theta, bound)
                         : EvaluateGroundComparison(bound, theta, t.value());
        if (!sat) return false;
        ac_ways_.push_back({std::nullopt});
        continue;
      }

      for (size_t mi = 0; mi < combo_.size(); ++mi) {
        const Mcd* m = combo_[mi];
        if (!m->phi.IsBound(x)) continue;
        const Term& w = m->phi.Get(x);
        if (!w.is_var()) continue;
        std::vector<Comparison> premise = ViewPremise(m);

        // Case (1): the view already guarantees the comparison.
        Comparison image = upper ? Comparison(w, theta, Term::Const(bound))
                                 : Comparison(Term::Const(bound), theta, w);
        CQAC_ASSIGN_OR_RETURN(bool implied,
                              ImpliesConjunction(ctx_, premise, {image}));
        if (implied) {
          AddWay(&ways, std::nullopt);
          continue;  // nothing stronger needed through this MCD
        }

        // Cases (2) and (3): bound a realized class. For every view head
        // class with a P-term, check whether bounding it bounds w.
        const Query& view = views_[m->view_index];
        for (const auto& [cls, pterm] : class_terms_[mi]) {
          if (pterm.is_const()) continue;
          Term y = Term::Var(cls);
          if (upper) {
            // Need w <= y (then y theta bound) or w < y (then y <= bound).
            CQAC_ASSIGN_OR_RETURN(
                bool lt, ImpliesConjunction(ctx_, premise, {Comparison(
                             w, CompOp::kLt, y)}));
            if (lt) {
              AddWay(&ways,
                     Comparison(pterm, CompOp::kLe, Term::Const(bound)));
              continue;
            }
            CQAC_ASSIGN_OR_RETURN(
                bool le, ImpliesConjunction(ctx_, premise, {Comparison(
                             w, CompOp::kLe, y)}));
            if (le)
              AddWay(&ways, Comparison(pterm, theta, Term::Const(bound)));
          } else {
            // Lower bound: need y <= w (then bound theta y) or y < w.
            CQAC_ASSIGN_OR_RETURN(
                bool lt, ImpliesConjunction(ctx_, premise, {Comparison(
                             y, CompOp::kLt, w)}));
            if (lt) {
              AddWay(&ways,
                     Comparison(Term::Const(bound), CompOp::kLe, pterm));
              continue;
            }
            CQAC_ASSIGN_OR_RETURN(
                bool le, ImpliesConjunction(ctx_, premise, {Comparison(
                             y, CompOp::kLe, w)}));
            if (le)
              AddWay(&ways, Comparison(Term::Const(bound), theta, pterm));
          }
        }
        (void)view;
      }
      if (ways.empty()) return false;  // this comparison cannot be satisfied
      ac_ways_.push_back(std::move(ways));
    }
    return true;
  }

  static void AddWay(std::vector<std::optional<Comparison>>* ways,
                     std::optional<Comparison> way) {
    if (std::find(ways->begin(), ways->end(), way) == ways->end())
      ways->push_back(std::move(way));
  }

  // ---- Step D: cartesian product of the AC alternatives. ------------------
  Result<std::vector<Query>> Instantiate() {
    std::vector<Query> out;
    std::vector<size_t> idx(ac_ways_.size(), 0);
    size_t produced = 0;
    while (true) {
      Query candidate = p_;
      for (size_t i = 0; i < ac_ways_.size(); ++i) {
        const std::optional<Comparison>& way = ac_ways_[i][idx[i]];
        if (way.has_value() &&
            std::find(candidate.comparisons().begin(),
                      candidate.comparisons().end(),
                      *way) == candidate.comparisons().end())
          candidate.AddComparison(*way);
      }
      if (AcsConsistent(candidate.comparisons()))
        out.push_back(CompactVariables(candidate));
      if (++produced >= options_.max_ac_alternatives) break;
      // Advance the mixed-radix counter.
      size_t i = 0;
      for (; i < idx.size(); ++i) {
        if (++idx[i] < ac_ways_[i].size()) break;
        idx[i] = 0;
      }
      if (i == idx.size()) break;
    }
    return out;
  }

  EngineContext& ctx_;
  const Query& q_;
  const ViewSet& views_;
  const std::vector<ExportAnalysis>& analyses_;
  const std::vector<const Mcd*>& combo_;
  const RewriteOptions& options_;

  QueryVarUnifier uf_;
  Query p_;
  // Per MCD in the combo: view-variable class -> P term.
  std::vector<std::map<int, Term>> class_terms_;
  // Per query comparison: the alternative ways to satisfy it.
  std::vector<std::vector<std::optional<Comparison>>> ac_ways_;
};

}  // namespace

Result<UnionQuery> RewriteLsiQuery(EngineContext& ctx, const Query& q,
                                   const ViewSet& views,
                                   const RewriteOptions& options,
                                   RewriteStats* stats,
                                   RewritingWitness* witness) {
  RewriteStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  *stats = RewriteStats{};
  if (witness != nullptr) *witness = RewritingWitness{};

  // Preprocess the query; an inconsistent query has the empty MCR.
  Result<Query> qp_result = Preprocess(q);
  if (!qp_result.ok()) {
    if (qp_result.status().code() == StatusCode::kInconsistent)
      return UnionQuery{};
    return qp_result.status();
  }
  Query qp = std::move(qp_result).value();
  CQAC_RETURN_IF_ERROR(qp.Validate());
  if (witness != nullptr) witness->query = qp;

  AcClass cls = qp.Classify();
  if (cls != AcClass::kNone && cls != AcClass::kLsi && cls != AcClass::kRsi)
    return Status::Unsupported(
        StrCat("RewriteLsiQuery handles LSI or RSI queries; got class '",
               AcClassName(cls),
               "' (use RewriteSiQueryDatalog for CQAC-SI queries)"));

  // Preprocess the views; inconsistent views are unusable (always empty).
  ViewSet prepped;
  for (const Query& v : views.views()) {
    Result<Query> vp = Preprocess(v);
    if (!vp.ok()) {
      if (vp.status().code() == StatusCode::kInconsistent) continue;
      return vp.status();
    }
    CQAC_RETURN_IF_ERROR(prepped.Add(std::move(vp).value()));
  }
  if (witness != nullptr) witness->views = prepped.views();

  std::vector<ExportAnalysis> analyses;
  analyses.reserve(prepped.size());
  for (const Query& v : prepped.views()) analyses.emplace_back(v);

  CQAC_ASSIGN_OR_RETURN(std::vector<Mcd> mcds,
                        ConstructMcds(ctx, qp, prepped, analyses, options.mcd));
  stats->mcds = mcds.size();

  // Index MCDs by their smallest covered subgoal for the exact-cover search.
  const size_t num_goals = qp.body().size();
  std::vector<std::vector<const Mcd*>> by_first(num_goals);
  for (const Mcd& m : mcds)
    if (!m.covered.empty()) by_first[m.covered.front()].push_back(&m);

  // Phase 1 (serial, cheap): enumerate the complete exact covers. The
  // budget checks fire at exactly the points the fused search checked
  // them — once per complete cover — so cap behaviour is unchanged.
  std::vector<std::vector<const Mcd*>> combos;
  std::vector<const Mcd*> combo;
  std::vector<bool> used(num_goals, false);
  Status inner = Status::OK();

  auto search = [&](auto&& self, size_t first_uncovered) -> void {
    if (!inner.ok()) return;
    while (first_uncovered < num_goals && used[first_uncovered])
      ++first_uncovered;
    if (first_uncovered == num_goals) {
      // Another complete cover exists beyond the cap: report exhaustion
      // rather than silently truncating the MCR.
      if (stats->combinations >= ctx.budget().max_mappings) {
        ++ctx.stats().budget_exhaustions;
        inner = Status::ResourceExhausted(
            "MCD combination search exceeded the mapping budget");
        return;
      }
      inner = ctx.budget().CheckDeadline("MCD combination search");
      if (!inner.ok()) {
        ++ctx.stats().budget_exhaustions;
        return;
      }
      ++stats->combinations;
      combos.push_back(combo);
      return;
    }
    for (const Mcd* m : by_first[first_uncovered]) {
      bool clash = false;
      for (int g : m->covered)
        if (used[g]) clash = true;
      if (clash) continue;
      for (int g : m->covered) used[g] = true;
      combo.push_back(m);
      self(self, first_uncovered + 1);
      combo.pop_back();
      for (int g : m->covered) used[g] = false;
    }
  };
  search(search, 0);
  CQAC_RETURN_IF_ERROR(inner);

  // Phase 2: build + verify each cover's candidates, fanned out over the
  // task pool. Combos are independent; only the merge below (dedup, witness
  // collection, error reporting) depends on cover order, so it walks the
  // outcomes in cover order and is deterministic at every thread count.
  struct ComboOutcome {
    Status error = Status::OK();
    std::vector<Query> accepted;  // pre-dedup, in candidate order
    std::vector<ContainmentWitness> witnesses;  // parallel to accepted
    uint64_t candidates = 0;
    uint64_t verified_rejects = 0;
  };

  auto process_combo = [&](size_t ci) -> ComboOutcome {
    ComboOutcome out;
    Combiner combiner(ctx, qp, prepped, analyses, combos[ci], options);
    Result<std::vector<Query>> candidates = combiner.Build();
    if (!candidates.ok()) {
      out.error = candidates.status();
      return out;
    }
    for (Query& cand : candidates.value()) {
      ++out.candidates;
      ++ctx.stats().rewrite_candidates;
      ContainmentWitness cand_witness;
      if (options.verify_rewritings || witness != nullptr) {
        Result<Query> exp = ExpandRewriting(cand, prepped);
        if (!exp.ok()) {
          out.error = exp.status();
          return out;
        }
        // An inconsistent expansion denotes the empty query: vacuously
        // contained but useless; drop it.
        Result<Query> expp = Preprocess(exp.value());
        if (!expp.ok()) {
          if (expp.status().code() == StatusCode::kInconsistent) {
            ++out.verified_rejects;
            ++ctx.stats().rewrite_verified_rejects;
            continue;
          }
          out.error = expp.status();
          return out;
        }
        Result<bool> contained =
            IsContained(ctx, expp.value(), qp, {},
                        witness != nullptr ? &cand_witness : nullptr);
        if (!contained.ok()) {
          out.error = contained.status();
          return out;
        }
        if (!contained.value()) {
          ++out.verified_rejects;
          ++ctx.stats().rewrite_verified_rejects;
          continue;
        }
      }
      out.accepted.push_back(std::move(cand));
      out.witnesses.push_back(std::move(cand_witness));
    }
    return out;
  };

  ParallelOutcomes<ComboOutcome> outcomes(
      ctx, combos.size(), process_combo,
      [](const ComboOutcome& o) { return !o.error.ok(); });

  UnionQuery result;
  for (size_t ci = 0; ci < combos.size(); ++ci) {
    ComboOutcome& o = outcomes.Get(ci);
    CQAC_RETURN_IF_ERROR(o.error);
    stats->candidates += o.candidates;
    stats->verified_rejects += o.verified_rejects;
    for (size_t k = 0; k < o.accepted.size(); ++k) {
      // Deduplicate identical rewritings.
      bool dup = false;
      for (const Query& existing : result.disjuncts)
        if (existing.ToString() == o.accepted[k].ToString()) dup = true;
      if (!dup) {
        result.disjuncts.push_back(std::move(o.accepted[k]));
        if (witness != nullptr)
          witness->disjuncts.push_back(std::move(o.witnesses[k]));
      }
    }
  }

  if (options.prune_redundant) {
    // Drop rewritings contained (as queries over the view schema) in another.
    UnionQuery pruned;
    std::vector<ContainmentWitness> pruned_witnesses;
    for (size_t i = 0; i < result.disjuncts.size(); ++i) {
      bool dominated = false;
      for (size_t j = 0; j < result.disjuncts.size() && !dominated; ++j) {
        if (i == j) continue;
        Result<bool> c =
            IsContained(ctx, result.disjuncts[i], result.disjuncts[j]);
        if (c.ok() && c.value()) {
          // Break ties deterministically: prune i only if j is not itself
          // pruned by an earlier equivalent (j < i when equivalent).
          Result<bool> back =
              IsContained(ctx, result.disjuncts[j], result.disjuncts[i]);
          bool equivalent = back.ok() && back.value();
          dominated = !equivalent || j < i;
        }
      }
      if (!dominated) {
        pruned.disjuncts.push_back(result.disjuncts[i]);
        if (witness != nullptr)
          pruned_witnesses.push_back(std::move(witness->disjuncts[i]));
      }
    }
    result = std::move(pruned);
    if (witness != nullptr) witness->disjuncts = std::move(pruned_witnesses);
  }
  return result;
}

Result<UnionQuery> RewriteLsiQuery(const Query& q, const ViewSet& views,
                                   const RewriteOptions& options,
                                   RewriteStats* stats,
                                   RewritingWitness* witness) {
  EngineContext ctx;
  return RewriteLsiQuery(ctx, q, views, options, stats, witness);
}

}  // namespace cqac
