// RewriteLSIQuery (Figure 2): maximally-contained rewritings for left- (or
// right-) semi-interval queries using views with general arithmetic
// comparisons — the paper's central algorithm (Section 4).
//
// Step 1 constructs MCDs with exportable variables (src/rewriting/mcd.h);
// Step 2 combines disjoint MCDs covering the query exactly, equates the view
// terms each query variable reaches, and satisfies the query's comparisons
// by the three cases of Section 4.4:
//   (1) the view's comparisons already imply the image comparison;
//   (2) the image variable is distinguished: add the comparison directly;
//   (3) the image variable reaches a distinguished variable through <=/<
//       paths: bound that variable instead (weakening `<` to `<=` when the
//       path is strict).
// Every emitted contained rewriting is verified (expansion contained in the
// query, Theorem 2.3) before inclusion; the union of survivors is the MCR
// (Theorems 4.1, 4.2).
#ifndef CQAC_REWRITING_REWRITE_LSI_H_
#define CQAC_REWRITING_REWRITE_LSI_H_

#include "src/base/status.h"
#include "src/engine/context.h"
#include "src/ir/query.h"
#include "src/ir/view.h"
#include "src/rewriting/mcd.h"
#include "src/rewriting/witness.h"

namespace cqac {

struct RewriteOptions {
  McdOptions mcd;
  /// Cap on per-combination alternatives for satisfying the query's
  /// comparisons (cartesian across comparisons). A structural fan-out bound;
  /// the MCD-combination count is charged to Budget::max_mappings.
  size_t max_ac_alternatives = 256;
  /// Verify each candidate rewriting (expansion contained in the query)
  /// before emitting. Cheap for LSI/RSI queries (single-mapping test); keep
  /// on in production. Off only for baseline experiments that demonstrate
  /// unsoundness of AC-blind rewriting.
  bool verify_rewritings = true;
  /// Drop rewritings contained in another emitted rewriting (cosmetic
  /// minimization of the union; the MCR is unchanged).
  bool prune_redundant = false;
};

/// Statistics of one rewriting run (for the benchmark harness).
struct RewriteStats {
  size_t mcds = 0;
  size_t combinations = 0;
  size_t candidates = 0;          // candidate CRs before verification
  size_t verified_rejects = 0;    // candidates the verifier rejected
};

/// Computes an MCR of the LSI/RSI query `q` using `views` (general CQACs)
/// as a finite union of CQACs. `q` must classify as CQ-only, LSI, or RSI;
/// other classes are Unsupported (Section 5's algorithm covers CQAC-SI).
///
/// The context's Budget caps MCD construction and the exact-cover search
/// (max_mappings) and the whole run (deadline); exhaustion returns a clean
/// ResourceExhausted. Verification containment checks are memoized in the
/// context, so repeated candidates across combinations are verified once.
///
/// When `witness` is non-null, every emitted disjunct's verification
/// evidence is recorded (one ContainmentWitness per disjunct, parallel to
/// the returned union); candidates are then always verified, even with
/// `verify_rewritings` off, and the decision cache is bypassed for the
/// verification checks.
Result<UnionQuery> RewriteLsiQuery(EngineContext& ctx, const Query& q,
                                   const ViewSet& views,
                                   const RewriteOptions& options = {},
                                   RewriteStats* stats = nullptr,
                                   RewritingWitness* witness = nullptr);
Result<UnionQuery> RewriteLsiQuery(const Query& q, const ViewSet& views,
                                   const RewriteOptions& options = {},
                                   RewriteStats* stats = nullptr,
                                   RewritingWitness* witness = nullptr);

}  // namespace cqac

#endif  // CQAC_REWRITING_REWRITE_LSI_H_
