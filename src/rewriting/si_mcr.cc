#include "src/rewriting/si_mcr.h"

#include <algorithm>
#include <set>

#include "src/base/strings.h"
#include "src/constraints/preprocess.h"
#include "src/containment/si_reduction.h"
#include "src/engine/parallel.h"

namespace cqac {

std::string SiMcr::ToString() const {
  std::vector<std::string> lines;
  lines.reserve(rules.size());
  for (const datalog::EngineRule& r : rules) lines.push_back(r.ToString() + ".");
  return Join(lines, "\n");
}

Result<SiMcr> RewriteSiQueryDatalog(EngineContext& ctx, const Query& q,
                                    const ViewSet& views,
                                    const SiMcrOptions& options) {
  Result<Query> qp_result = Preprocess(q);
  if (!qp_result.ok()) {
    // An inconsistent query denotes the empty relation; its MCR is the
    // empty program, not an error.
    if (qp_result.status().code() == StatusCode::kInconsistent) {
      SiMcr empty;
      empty.query_predicate =
          q.head().predicate.empty() ? std::string("q") : q.head().predicate;
      return empty;
    }
    return qp_result.status();
  }
  Query qp = std::move(qp_result).value();
  if (!qp.IsCqacSi())
    return Status::Unsupported(
        "RewriteSiQueryDatalog requires a CQAC-SI query");
  if (!views.AllSiOnly() && !options.allow_general_views)
    return Status::Unsupported(
        "RewriteSiQueryDatalog requires SI-only views "
        "(set SiMcrOptions::allow_general_views for the Section 6 "
        "extension)");

  SiMcr mcr;

  // Step 1: Q^datalog.
  CQAC_ASSIGN_OR_RETURN(Program qdl, BuildQdatalog(qp));
  mcr.query_predicate = qdl.query_predicate();
  for (const Rule& r : qdl.rules()) {
    mcr.rules.push_back(datalog::EngineRule{r, {}});
    mcr.rule_info.push_back({SiMcrRuleInfo::Kind::kQueryProgram, -1});
  }

  // Distinct comparison forms of the query (they define the U predicates).
  std::vector<SiForm> forms;
  for (const Comparison& c : qp.comparisons()) {
    SiForm f = SiFormOf(c);
    if (std::find(forms.begin(), forms.end(), f) == forms.end())
      forms.push_back(f);
  }

  // Steps 2+4: per view, build v^CQ and emit one inverse rule per body atom.
  // The v^CQ constructions are independent and run in parallel; the merge
  // walks views in declaration order so skolem-function ids and rule order
  // are identical at every thread count. kInconsistent is a normal skip
  // (empty view), not an error, so it must not cancel sibling views.
  ParallelOutcomes<Result<Query>> vcqs(
      ctx, views.size(),
      [&](size_t i) {
        return BuildPcq(ctx, views[i], qp,
                        /*require_si_only=*/!options.allow_general_views);
      },
      [](const Result<Query>& r) {
        return !r.ok() && r.status().code() != StatusCode::kInconsistent;
      });
  int next_skolem = 0;
  for (size_t view_index = 0; view_index < views.size(); ++view_index) {
    Result<Query>& vcq_result = vcqs.Get(view_index);
    if (!vcq_result.ok()) {
      // An inconsistent view is always empty and contributes nothing.
      if (vcq_result.status().code() == StatusCode::kInconsistent) continue;
      return vcq_result.status();
    }
    Query vcq = std::move(vcq_result).value();

    // Skolem function ids: one per nondistinguished variable of this view.
    std::vector<bool> dist = vcq.DistinguishedMask();
    std::vector<int> skolem_id(vcq.num_vars(), -1);
    std::vector<int> head_vars = vcq.HeadVars();
    for (int var = 0; var < vcq.num_vars(); ++var)
      if (!dist[var]) skolem_id[var] = next_skolem++;

    for (const Atom& body_atom : vcq.body()) {
      datalog::EngineRule er;
      // The inverse rule shares the view's variable table; its single body
      // atom is the view head, its head is the body atom.
      Rule rule;
      for (const std::string& name : vcq.var_names())
        rule.FindOrAddVariable(name);
      rule.head() = body_atom;
      Atom view_atom;
      view_atom.predicate = vcq.head().predicate;
      view_atom.args = vcq.head().args;
      rule.AddBodyAtom(std::move(view_atom));
      er.rule = std::move(rule);
      for (const Term& t : body_atom.args) {
        if (!t.is_var() || dist[t.var()]) continue;
        datalog::SkolemSpec spec;
        spec.fn_id = skolem_id[t.var()];
        spec.arg_vars = head_vars;
        er.skolems.emplace(t.var(), std::move(spec));
      }
      mcr.rules.push_back(std::move(er));
      mcr.rule_info.push_back({SiMcrRuleInfo::Kind::kInverse,
                               static_cast<int>(view_index)});
    }
  }

  // Step 5 (executable form): U facts over real values via domain rules.
  // dom(X) :- v(.., X, ..) for every view head position;
  // U_f(X)  :- dom(X), X f.
  std::set<std::string> dom_rules_emitted;
  for (const Query& v : views.views()) {
    for (size_t pos = 0; pos < v.head().args.size(); ++pos) {
      if (!v.head().args[pos].is_var()) continue;
      std::string key = StrCat(v.head().predicate, "#", pos);
      if (!dom_rules_emitted.insert(key).second) continue;
      Rule rule;
      rule.head().predicate = "dom";
      Atom view_atom;
      view_atom.predicate = v.head().predicate;
      for (size_t j = 0; j < v.head().args.size(); ++j) {
        int var = rule.FindOrAddVariable(StrCat("X", j));
        view_atom.args.push_back(Term::Var(var));
      }
      rule.head().args.push_back(view_atom.args[pos]);
      rule.AddBodyAtom(std::move(view_atom));
      mcr.rules.push_back(datalog::EngineRule{std::move(rule), {}});
      mcr.rule_info.push_back({SiMcrRuleInfo::Kind::kDomain, -1});
    }
  }
  for (const SiForm& f : forms) {
    Rule rule;
    int x = rule.AddVariable("X");
    rule.head().predicate = StrCat("U_", f.PredicateSuffix());
    rule.head().args.push_back(Term::Var(x));
    Atom dom;
    dom.predicate = "dom";
    dom.args.push_back(Term::Var(x));
    rule.AddBodyAtom(std::move(dom));
    rule.AddComparison(f.ToComparison(Term::Var(x)));
    mcr.rules.push_back(datalog::EngineRule{std::move(rule), {}});
    mcr.rule_info.push_back({SiMcrRuleInfo::Kind::kUDomain, -1});
  }
  return mcr;
}

Result<SiMcr> RewriteSiQueryDatalog(const Query& q, const ViewSet& views,
                                    const SiMcrOptions& options) {
  EngineContext ctx;
  return RewriteSiQueryDatalog(ctx, q, views, options);
}

}  // namespace cqac
