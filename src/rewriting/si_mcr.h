// Section 5.4 (Figure 4): recursive Datalog MCRs for CQAC-SI queries using
// CQAC-SI views.
//
// When view variables can be nondistinguished, a maximally-contained
// rewriting may not exist as any finite union of CQACs (Proposition 5.1 /
// Example 1.2) but does exist as a Datalog program with semi-interval
// comparisons. The construction:
//   1. build Q^datalog for the query (src/containment/si_reduction.h);
//   2. turn each view into its comparison-free v^CQ form (U_{theta c} atoms);
//   3. make every U_{theta c} available as a view;
//   4. compute the Datalog MCR with the inverse-rule algorithm
//      [Duschka-Genesereth], introducing Skolem terms for nondistinguished
//      view variables;
//   5. U_{theta c} facts over *real* values are produced by domain rules
//      `U(X) :- dom(X), X theta c` — the executable counterpart of the
//      paper's step 5, which rewrites view atoms U_{theta c}(X) into the
//      comparison `X theta c`.
// The resulting program evaluates over a database whose relations are the
// view extensions; answers containing Skolem values are discarded.
#ifndef CQAC_REWRITING_SI_MCR_H_
#define CQAC_REWRITING_SI_MCR_H_

#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/datalog/engine.h"
#include "src/engine/context.h"
#include "src/ir/query.h"
#include "src/ir/view.h"

namespace cqac {

/// Provenance of one rule of an SiMcr — which construction step emitted it
/// and (for inverse rules) from which view. The certificate checker
/// (src/analysis/certificate.h) uses this to re-validate each rule against
/// its source without guessing.
struct SiMcrRuleInfo {
  enum class Kind {
    kQueryProgram,  // part of Q^datalog (step 1)
    kInverse,       // inverse rule of one view's v^CQ (steps 2+4)
    kDomain,        // dom(X) :- v(..., X, ...) (step 5)
    kUDomain,       // U_f(X) :- dom(X), X f    (step 5)
  };
  Kind kind = Kind::kQueryProgram;
  int view_index = -1;  // index into the input ViewSet; kInverse only
};

/// A recursive Datalog MCR: rules (possibly Skolemized) evaluated over the
/// view extensions.
struct SiMcr {
  std::vector<datalog::EngineRule> rules;
  /// Per-rule provenance, parallel to `rules`.
  std::vector<SiMcrRuleInfo> rule_info;
  std::string query_predicate;

  /// Builds an engine ready to run over a view-extension database.
  datalog::Engine MakeEngine() const {
    return datalog::Engine(rules, query_predicate);
  }

  /// Renders the program, one rule per line.
  std::string ToString() const;
};

struct SiMcrOptions {
  /// Section 6 extension: accept views with arbitrary comparisons (not just
  /// semi-interval ones). The construction remains *sound* — a view's
  /// U_{theta c} facts are emitted only when its comparisons imply the
  /// bound — but the paper proves maximality only for SI views, so treat
  /// the result as a contained (possibly non-maximal) Datalog rewriting in
  /// this mode.
  bool allow_general_views = false;
};

/// Computes the Datalog MCR of the CQAC-SI query `q` using the SI-only views
/// `views` (Figure 4). Unsupported when `q` is not CQAC-SI, or when some
/// view is not SI-only and `options.allow_general_views` is off. A query
/// with unsatisfiable comparisons denotes the empty relation; its MCR is the
/// empty program (no rules). The construction itself is syntactic; the
/// context overload memoizes the per-view v^CQ implication checks in the
/// shared decision cache.
Result<SiMcr> RewriteSiQueryDatalog(EngineContext& ctx, const Query& q,
                                    const ViewSet& views,
                                    const SiMcrOptions& options = {});
Result<SiMcr> RewriteSiQueryDatalog(const Query& q, const ViewSet& views,
                                    const SiMcrOptions& options = {});

}  // namespace cqac

#endif  // CQAC_REWRITING_SI_MCR_H_
