// Witnesses for rewriting results: the evidence the engines already compute
// while verifying their outputs, packaged so the certificate checker
// (src/analysis/certificate.h) can re-validate every emitted rewriting with
// independent, slow-but-obvious procedures.
#ifndef CQAC_REWRITING_WITNESS_H_
#define CQAC_REWRITING_WITNESS_H_

#include <vector>

#include "src/containment/containment.h"
#include "src/ir/query.h"

namespace cqac {

/// Evidence that every disjunct of a produced union rewriting is a contained
/// rewriting: per disjunct, a ContainmentWitness certifying
/// `Preprocess(Expand(disjunct, views)) ⊆ query`.
struct RewritingWitness {
  /// The preprocessed query the rewriting was computed for.
  Query query;
  /// The preprocessed views the disjuncts expand over, in the order the
  /// engine used them (inconsistent input views are dropped).
  std::vector<Query> views;
  /// One witness per emitted disjunct, parallel to the result union.
  std::vector<ContainmentWitness> disjuncts;
};

}  // namespace cqac

#endif  // CQAC_REWRITING_WITNESS_H_
