#include "src/serve/json_value.h"

#include <cctype>
#include <cstdlib>
#include <cstring>

#include "src/base/strings.h"

namespace cqac {
namespace serve {
namespace {

// Hostile input may nest arbitrarily; the parser recurses once per level.
constexpr int kMaxDepth = 64;

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<JsonValue> Parse() {
    SkipWs();
    JsonValue v;
    CQAC_RETURN_IF_ERROR(ParseValue(&v, 0));
    SkipWs();
    if (pos_ != text_.size())
      return Error("trailing characters after JSON value");
    return v;
  }

 private:
  Status Error(const std::string& msg) const {
    return Status::InvalidArgument(
        StrCat("json: ", msg, " at offset ", pos_));
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Expect(char c) {
    if (!Consume(c)) return Error(StrCat("expected '", std::string(1, c), "'"));
    return Status::OK();
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    switch (text_[pos_]) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"': {
        std::string s;
        CQAC_RETURN_IF_ERROR(ParseString(&s));
        *out = JsonValue::MakeString(std::move(s));
        return Status::OK();
      }
      case 't':
        return ParseKeyword("true", JsonValue::MakeBool(true), out);
      case 'f':
        return ParseKeyword("false", JsonValue::MakeBool(false), out);
      case 'n':
        return ParseKeyword("null", JsonValue::MakeNull(), out);
      default:
        return ParseNumber(out);
    }
  }

  Status ParseKeyword(const char* word, JsonValue value, JsonValue* out) {
    size_t len = std::strlen(word);
    if (text_.compare(pos_, len, word) != 0)
      return Error(StrCat("expected '", word, "'"));
    pos_ += len;
    *out = std::move(value);
    return Status::OK();
  }

  Status ParseNumber(JsonValue* out) {
    size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) return Error("expected a value");
    std::string token = text_.substr(start, pos_ - start);
    // RFC 8259: no leading zeros ("01"), which strtod would accept.
    size_t digits = token[0] == '-' ? 1 : 0;
    if (token.size() > digits + 1 && token[digits] == '0' &&
        std::isdigit(static_cast<unsigned char>(token[digits + 1])))
      return Error(StrCat("invalid number '", token, "'"));
    char* end = nullptr;
    double d = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size())
      return Error(StrCat("invalid number '", token, "'"));
    *out = JsonValue::MakeNumber(d);
    return Status::OK();
  }

  // Appends the UTF-8 encoding of `cp` to `out`.
  static void AppendUtf8(uint32_t cp, std::string* out) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Status ParseHex4(uint32_t* out) {
    if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      char c = text_[pos_ + i];
      v <<= 4;
      if (c >= '0' && c <= '9')
        v |= static_cast<uint32_t>(c - '0');
      else if (c >= 'a' && c <= 'f')
        v |= static_cast<uint32_t>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F')
        v |= static_cast<uint32_t>(c - 'A' + 10);
      else
        return Error("invalid \\u escape");
    }
    pos_ += 4;
    *out = v;
    return Status::OK();
  }

  Status ParseString(std::string* out) {
    CQAC_RETURN_IF_ERROR(Expect('"'));
    out->clear();
    while (true) {
      if (pos_ >= text_.size()) return Error("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (static_cast<unsigned char>(c) < 0x20)
        return Error("raw control character in string");
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return Error("unterminated escape");
      char e = text_[pos_++];
      switch (e) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          uint32_t cp = 0;
          CQAC_RETURN_IF_ERROR(ParseHex4(&cp));
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: require a low surrogate to follow.
            if (!(Consume('\\') && Consume('u')))
              return Error("unpaired surrogate");
            uint32_t lo = 0;
            CQAC_RETURN_IF_ERROR(ParseHex4(&lo));
            if (lo < 0xDC00 || lo > 0xDFFF)
              return Error("unpaired surrogate");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return Error("unpaired surrogate");
          }
          AppendUtf8(cp, out);
          break;
        }
        default:
          return Error("invalid escape");
      }
    }
  }

  Status ParseArray(JsonValue* out, int depth) {
    CQAC_RETURN_IF_ERROR(Expect('['));
    std::vector<JsonValue> items;
    SkipWs();
    if (Consume(']')) {
      *out = JsonValue::MakeArray(std::move(items));
      return Status::OK();
    }
    while (true) {
      JsonValue item;
      SkipWs();
      CQAC_RETURN_IF_ERROR(ParseValue(&item, depth + 1));
      items.push_back(std::move(item));
      SkipWs();
      if (Consume(']')) break;
      CQAC_RETURN_IF_ERROR(Expect(','));
    }
    *out = JsonValue::MakeArray(std::move(items));
    return Status::OK();
  }

  Status ParseObject(JsonValue* out, int depth) {
    CQAC_RETURN_IF_ERROR(Expect('{'));
    std::vector<std::pair<std::string, JsonValue>> members;
    SkipWs();
    if (Consume('}')) {
      *out = JsonValue::MakeObject(std::move(members));
      return Status::OK();
    }
    while (true) {
      SkipWs();
      std::string key;
      CQAC_RETURN_IF_ERROR(ParseString(&key));
      SkipWs();
      CQAC_RETURN_IF_ERROR(Expect(':'));
      SkipWs();
      JsonValue value;
      CQAC_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      members.emplace_back(std::move(key), std::move(value));
      SkipWs();
      if (Consume('}')) break;
      CQAC_RETURN_IF_ERROR(Expect(','));
    }
    *out = JsonValue::MakeObject(std::move(members));
    return Status::OK();
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : object_)
    if (k == key) return &v;
  return nullptr;
}

JsonValue JsonValue::MakeBool(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::MakeNumber(double d) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = d;
  return v;
}

JsonValue JsonValue::MakeString(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::MakeArray(std::vector<JsonValue> items) {
  JsonValue v;
  v.kind_ = Kind::kArray;
  v.array_ = std::move(items);
  return v;
}

JsonValue JsonValue::MakeObject(
    std::vector<std::pair<std::string, JsonValue>> members) {
  JsonValue v;
  v.kind_ = Kind::kObject;
  v.object_ = std::move(members);
  return v;
}

Result<JsonValue> ParseJson(const std::string& text) {
  return Parser(text).Parse();
}

}  // namespace serve
}  // namespace cqac
