// A minimal JSON value type and recursive-descent parser (RFC 8259) for the
// serve wire protocol. The repo's src/ir/json.h is a writer only; the server
// must *read* requests, so this adds the input side — hand-rolled, no
// third-party dependency, and deliberately small: requests are shallow
// objects whose payloads are Datalog text handled by src/ir/parser.h.
//
// Robustness guarantees the server relies on:
//   * nesting depth is capped (hostile deeply-nested input cannot blow the
//     stack);
//   * numbers parse via strtod and reject trailing garbage;
//   * strings accept the standard escapes including \uXXXX (encoded back to
//     UTF-8; unpaired surrogates are rejected);
//   * trailing input after the top-level value is an error (one request per
//     line means one value per parse).
#ifndef CQAC_SERVE_JSON_VALUE_H_
#define CQAC_SERVE_JSON_VALUE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/base/status.h"

namespace cqac {
namespace serve {

/// One parsed JSON value. Objects keep insertion order (useful for
/// deterministic re-rendering in tests).
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool bool_value() const { return bool_; }
  double number_value() const { return number_; }
  const std::string& string_value() const { return string_; }
  const std::vector<JsonValue>& array_items() const { return array_; }
  const std::vector<std::pair<std::string, JsonValue>>& object_items() const {
    return object_;
  }

  /// Object member lookup; nullptr when absent or not an object. Duplicate
  /// keys resolve to the first occurrence.
  const JsonValue* Find(const std::string& key) const;

  static JsonValue MakeNull() { return JsonValue(); }
  static JsonValue MakeBool(bool b);
  static JsonValue MakeNumber(double d);
  static JsonValue MakeString(std::string s);
  static JsonValue MakeArray(std::vector<JsonValue> items);
  static JsonValue MakeObject(
      std::vector<std::pair<std::string, JsonValue>> members);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;
};

/// Parses exactly one JSON value from `text` (leading/trailing whitespace
/// allowed, nothing else). Errors are kInvalidArgument with a byte offset.
Result<JsonValue> ParseJson(const std::string& text);

}  // namespace serve
}  // namespace cqac

#endif  // CQAC_SERVE_JSON_VALUE_H_
