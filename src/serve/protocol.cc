#include "src/serve/protocol.h"

#include <cmath>

#include "src/base/strings.h"
#include "src/ir/json.h"

namespace cqac {
namespace serve {

const char* ServeErrorCodeName(ServeErrorCode code) {
  switch (code) {
    case ServeErrorCode::kParseError: return "parse_error";
    case ServeErrorCode::kInvalidRequest: return "invalid_request";
    case ServeErrorCode::kUnknownOp: return "unknown_op";
    case ServeErrorCode::kInvalidArgument: return "invalid_argument";
    case ServeErrorCode::kInconsistent: return "inconsistent";
    case ServeErrorCode::kNotFound: return "not_found";
    case ServeErrorCode::kUnsupported: return "unsupported";
    case ServeErrorCode::kResourceExhausted: return "resource_exhausted";
    case ServeErrorCode::kTooLarge: return "too_large";
    case ServeErrorCode::kOverloaded: return "overloaded";
    case ServeErrorCode::kShuttingDown: return "shutting_down";
    case ServeErrorCode::kInternal: return "internal";
  }
  return "internal";
}

ServeErrorCode ServeErrorCodeFromStatus(StatusCode code) {
  switch (code) {
    case StatusCode::kInvalidArgument: return ServeErrorCode::kInvalidArgument;
    case StatusCode::kInconsistent: return ServeErrorCode::kInconsistent;
    case StatusCode::kNotFound: return ServeErrorCode::kNotFound;
    case StatusCode::kUnsupported: return ServeErrorCode::kUnsupported;
    case StatusCode::kResourceExhausted:
      return ServeErrorCode::kResourceExhausted;
    case StatusCode::kOk:
    case StatusCode::kInternal:
      return ServeErrorCode::kInternal;
  }
  return ServeErrorCode::kInternal;
}

Result<std::string> Request::GetString(const char* key) const {
  const JsonValue* v = body.Find(key);
  if (v == nullptr || !v->is_string())
    return Status::InvalidArgument(
        StrCat("op '", op, "' requires string field \"", key, "\""));
  return v->string_value();
}

Result<std::string> Request::GetStringOr(const char* key,
                                         const std::string& fallback) const {
  const JsonValue* v = body.Find(key);
  if (v == nullptr) return fallback;
  if (!v->is_string())
    return Status::InvalidArgument(
        StrCat("field \"", key, "\" of op '", op, "' must be a string"));
  return v->string_value();
}

Result<Request> ParseRequestEnvelope(JsonValue root) {
  auto fail = [](std::string msg) -> Result<Request> {
    return Status::InvalidArgument(StrCat("request: ", std::move(msg)));
  };

  if (!root.is_object()) return fail("must be a JSON object");

  Request out;
  out.body = std::move(root);

  const JsonValue* op = out.body.Find("op");
  if (op == nullptr || !op->is_string() || op->string_value().empty())
    return fail("missing required string field \"op\"");
  out.op = op->string_value();

  if (const JsonValue* session = out.body.Find("session")) {
    if (!session->is_string() || session->string_value().empty())
      return fail("field \"session\" must be a non-empty string");
    if (session->string_value().size() > 128)
      return fail("session name too long (max 128 bytes)");
    out.session = session->string_value();
  }

  if (const JsonValue* id = out.body.Find("id")) {
    if (id->is_string()) {
      out.id_json = JsonQuote(id->string_value());
    } else if (id->is_number() && std::nearbyint(id->number_value()) ==
                                      id->number_value() &&
               std::abs(id->number_value()) < 1e15) {
      out.id_json = StrCat(static_cast<int64_t>(id->number_value()));
    } else {
      return fail("field \"id\" must be an integer or a string");
    }
  }

  if (const JsonValue* timeout = out.body.Find("timeout_ms")) {
    if (!timeout->is_number() || timeout->number_value() < 0 ||
        std::nearbyint(timeout->number_value()) != timeout->number_value())
      return fail("field \"timeout_ms\" must be a non-negative integer");
    out.timeout = std::chrono::milliseconds(
        static_cast<int64_t>(timeout->number_value()));
  }

  return out;
}

std::string BeginResponse(const Request& req) {
  std::string out = StrCat("{\"ok\":true,\"op\":", JsonQuote(req.op));
  if (!req.id_json.empty()) out += StrCat(",\"id\":", req.id_json);
  return out;
}

void JsonField(std::string* out, const char* key, const std::string& raw) {
  *out += StrCat(",\"", key, "\":", raw);
}

void JsonClose(std::string* out) { *out += "}\n"; }

std::string ErrorResponse(const Request* req, ServeErrorCode code,
                          const std::string& message) {
  std::string out = "{\"ok\":false";
  if (req != nullptr) {
    JsonField(&out, "op", JsonQuote(req->op));
    if (!req->id_json.empty()) JsonField(&out, "id", req->id_json);
  }
  JsonField(&out, "error",
            StrCat("{\"code\":\"", ServeErrorCodeName(code),
                   "\",\"message\":", JsonQuote(message), "}"));
  JsonClose(&out);
  return out;
}

std::string ErrorResponse(const Request& req, const Status& status) {
  return ErrorResponse(&req, ServeErrorCodeFromStatus(status.code()),
                       status.ToString());
}

}  // namespace serve
}  // namespace cqac
