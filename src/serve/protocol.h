// The cqac_serve wire protocol: newline-delimited JSON over a plain TCP
// socket. One request object per line in, one response object per line out,
// answered in order per connection. docs/serve.md is the normative
// reference; this header is the single in-code definition of the request
// shape and the stable error-code vocabulary.
//
// Request envelope (op-specific fields documented per handler):
//   {"op": "rewrite", "session": "s1", "id": 7, "timeout_ms": 500, ...}
//
//   op          required  operation name
//   session     optional  session name (default "default"); sessions hold
//                         the view registry and the fact database
//   id          optional  echoed verbatim in the response (number or string)
//   timeout_ms  optional  per-request wall-clock deadline, clamped to the
//                         server's max; maps to Budget::deadline
//
// Response envelope:
//   {"ok": true,  "op": "...", "id": ..., ...payload...}
//   {"ok": false, "op": "...", "id": ..., "error":
//       {"code": "resource_exhausted", "message": "..."}}
//
// Error codes are STABLE strings (clients switch on them; never renumber):
// see ServeErrorCode below.
//
// Sharding on the wire (the transport is sharded; see server.h): the
// `stats` op's session scope carries a "shard" field — the shard the
// session is pinned to — and its global scope carries "shards" (the shard
// count) plus "shard_stats", an array with one summary object per shard
// (requests, request_errors, sessions, queue_depth, queue_depth_peak,
// enqueued, rejected_overloaded, threads, cache, engine). All other ops
// are shard-transparent: responses never depend on which shard served
// them.
#ifndef CQAC_SERVE_PROTOCOL_H_
#define CQAC_SERVE_PROTOCOL_H_

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>

#include "src/base/status.h"
#include "src/serve/json_value.h"

namespace cqac {
namespace serve {

/// The stable error-code vocabulary of the wire protocol.
enum class ServeErrorCode {
  kParseError,         // request line is not valid JSON
  kInvalidRequest,     // valid JSON but not a valid request envelope
  kUnknownOp,          // unrecognized "op"
  kInvalidArgument,    // op payload rejected (e.g. rule fails to parse)
  kInconsistent,       // comparisons unsatisfiable (StatusCode::kInconsistent)
  kNotFound,           // named entity absent (e.g. unknown session)
  kUnsupported,        // input outside the fragment an algorithm handles
  kResourceExhausted,  // budget cap / request deadline exceeded
  kTooLarge,           // request line exceeds the server's byte cap
  kOverloaded,         // bounded request queue is full
  kShuttingDown,       // server is draining; no new work accepted
  kInternal,           // invariant violation; never expected
};

/// The stable wire string for `code` (e.g. "resource_exhausted").
const char* ServeErrorCodeName(ServeErrorCode code);

/// Maps an engine Status code onto the wire vocabulary (kOk is a
/// programming error and maps to kInternal).
ServeErrorCode ServeErrorCodeFromStatus(StatusCode code);

/// A parsed request envelope. Op-specific payload fields stay in `body` and
/// are pulled by the handler (src/serve/service.cc).
struct Request {
  std::string op;
  std::string session = "default";
  std::string id_json;  // raw JSON of "id", echoed back; empty when absent
  std::optional<std::chrono::milliseconds> timeout;
  JsonValue body;

  /// Required string payload field, e.g. GetString("query").
  Result<std::string> GetString(const char* key) const;
  /// Optional string payload field; `fallback` when absent.
  Result<std::string> GetStringOr(const char* key,
                                  const std::string& fallback) const;
};

/// Validates the envelope of an already-JSON-parsed request line. The two
/// failure layers map to distinct wire codes: a ParseJson failure on the
/// raw line is kParseError; a failure here is kInvalidRequest.
Result<Request> ParseRequestEnvelope(JsonValue root);

// ---- response rendering ----------------------------------------------------

/// Starts a success envelope: `{"ok":true,"op":"<op>"[,"id":<id>]`. Append
/// payload fields with JsonField and finish with JsonClose.
std::string BeginResponse(const Request& req);

/// `,"<key>":<raw json>` — the value must already be valid JSON (use
/// JsonQuote from src/ir/json.h for strings).
void JsonField(std::string* out, const char* key, const std::string& raw);

/// Closes the envelope with '}' and the protocol's line terminator '\n'.
void JsonClose(std::string* out);

/// A complete error response line. `req` may be null (unparseable line).
std::string ErrorResponse(const Request* req, ServeErrorCode code,
                          const std::string& message);

/// A complete error response line for a failed engine Status.
std::string ErrorResponse(const Request& req, const Status& status);

}  // namespace serve
}  // namespace cqac

#endif  // CQAC_SERVE_PROTOCOL_H_
