#include "src/serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>
#include <vector>

#include "src/base/strings.h"
#include "src/serve/json_value.h"
#include "src/serve/protocol.h"

namespace cqac {
namespace serve {

namespace {

void CloseFd(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

void AtomicMax(std::atomic<uint64_t>& slot, uint64_t v) {
  uint64_t cur = slot.load(std::memory_order_relaxed);
  while (cur < v &&
         !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

size_t ShardForSession(const std::string& session, size_t shards) {
  if (shards <= 1) return 0;
  // FNV-1a, 64-bit: stable across platforms and releases — session pinning
  // is part of the operational contract (docs/serve.md).
  uint64_t h = 1469598103934665603ull;
  for (unsigned char c : session) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return static_cast<size_t>(h % shards);
}

Server::Server(ServerOptions options) : options_(std::move(options)) {
  if (options_.shards == 0) options_.shards = 1;
  shards_.reserve(options_.shards);
  for (size_t i = 0; i < options_.shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->index = i;
    if (options_.shards == 1 && options_.pool != nullptr) {
      shard->ctx.set_task_pool(options_.pool);
    } else if (options_.threads_per_shard > 0) {
      shard->owned_pool =
          std::make_unique<TaskPool>(options_.threads_per_shard);
      shard->ctx.set_task_pool(shard->owned_pool.get());
    }
    shard->service = std::make_unique<Service>(shard->ctx, options_.service);
    shard->service->set_shard(i, options_.shards);
    shard->service->set_cluster_view([this] { return ShardSummaries(); });
    shards_.push_back(std::move(shard));
  }
}

Server::~Server() { Stop(); }

std::string RecoverySummary::ToString() const {
  return StrCat(sessions, " sessions recovered, ", replayed_records,
                " log records replayed",
                any_tail_truncated ? ", torn wal tail truncated" : "");
}

Status Server::OpenStore(RecoverySummary* summary) {
  if (options_.data_dir.empty() || store_opened_) return Status::OK();
  CQAC_RETURN_IF_ERROR(store::InitDataDir(
      options_.data_dir, static_cast<uint32_t>(shards_.size())));

  // Shard logs are independent files and recovery replays through each
  // shard's private context, so all shards recover in parallel — startup
  // latency is the slowest shard, not the sum.
  std::vector<Status> statuses(shards_.size(), Status::OK());
  std::vector<store::RecoveredShard> recovered(shards_.size());
  {
    std::vector<std::thread> workers;
    workers.reserve(shards_.size());
    for (size_t i = 0; i < shards_.size(); ++i) {
      workers.emplace_back([this, i, &statuses, &recovered] {
        Result<store::RecoveredShard> r = store::RecoverShard(
            shards_[i]->ctx,
            store::ShardDirPath(options_.data_dir,
                                static_cast<uint32_t>(i)));
        if (r.ok())
          recovered[i] = std::move(r).value();
        else
          statuses[i] = r.status();
      });
    }
    for (std::thread& w : workers) w.join();
  }

  stores_.resize(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    CQAC_RETURN_IF_ERROR(statuses[i]);
    for (std::unique_ptr<store::SessionState>& s : recovered[i].sessions) {
      if (ShardForSession(s->name, shards_.size()) != i)
        return Status::Inconsistent(
            StrCat("recovered session '", s->name, "' found in shard ", i,
                   " but pins to shard ",
                   ShardForSession(s->name, shards_.size()),
                   "; was the data dir rearranged by hand?"));
      auto session = std::make_unique<Session>(s->name);
      for (const ParsedQuery& pq : s->view_sources)
        CQAC_RETURN_IF_ERROR(session->views.Add(pq.query));
      session->view_sources = std::move(s->view_sources);
      session->view_texts = std::move(s->view_texts);
      session->store = std::move(s->store);
      CQAC_RETURN_IF_ERROR(
          shards_[i]->service->sessions().Adopt(std::move(session)));
    }
    Result<std::unique_ptr<store::ShardStore>> st = store::ShardStore::Open(
        options_.data_dir, static_cast<uint32_t>(i),
        static_cast<uint32_t>(shards_.size()), options_.store,
        &shards_[i]->ctx);
    CQAC_RETURN_IF_ERROR(st.status());
    stores_[i] = std::move(st).value();
    shards_[i]->service->set_store(stores_[i].get());
    if (summary != nullptr) {
      summary->sessions += recovered[i].sessions.size();
      summary->replayed_records += recovered[i].replayed_records;
      summary->snapshot_lsn_max =
          std::max(summary->snapshot_lsn_max, recovered[i].snapshot_lsn);
      summary->any_tail_truncated |= recovered[i].wal_tail_truncated;
    }
  }
  store_opened_ = true;
  return Status::OK();
}

Status Server::Start() {
  CQAC_RETURN_IF_ERROR(OpenStore());
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0)
    return Status::Internal(StrCat("socket: ", std::strerror(errno)));
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    Status st = Status::Internal(StrCat("bind: ", std::strerror(errno)));
    CloseFd(listen_fd_);
    return st;
  }
  if (::listen(listen_fd_, 64) < 0) {
    Status st = Status::Internal(StrCat("listen: ", std::strerror(errno)));
    CloseFd(listen_fd_);
    return st;
  }
  sockaddr_in bound;
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) <
      0) {
    Status st =
        Status::Internal(StrCat("getsockname: ", std::strerror(errno)));
    CloseFd(listen_fd_);
    return st;
  }
  port_ = ntohs(bound.sin_port);

  for (auto& shard : shards_) {
    Shard* s = shard.get();
    s->engine_thread = std::thread([this, s] { EngineLoop(*s); });
    s->writer_thread = std::thread([this, s] { WriterLoop(*s); });
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

Result<WarmupSummary> Server::Warmup(const std::string& script) {
  // The warm-up session is "default"; it lives on — and primes — exactly
  // the shard that will serve it.
  return shards_[ShardForSession("default", shards_.size())]
      ->service->Warmup(script);
}

void Server::RequestDrain() {
  bool was_draining = draining_.exchange(true);
  if (was_draining) return;
  // shutdown() (not close()) wakes the thread blocked in accept(); the fd
  // itself is closed in Stop() after the accept thread has been joined.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  for (auto& shard : shards_) shard->queue_cv.notify_all();
}

void Server::Wait() {
  std::unique_lock<std::mutex> lk(done_mu_);
  done_cv_.wait(lk, [this] { return shards_done_ == shards_.size(); });
}

void Server::Stop() {
  {
    std::lock_guard<std::mutex> lk(done_mu_);
    if (stopped_) return;
    stopped_ = true;
  }
  RequestDrain();
  for (auto& shard : shards_) {
    if (shard->engine_thread.joinable()) shard->engine_thread.join();
    if (shard->writer_thread.joinable()) shard->writer_thread.join();
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  CloseFd(listen_fd_);
  // Shut down every connection so its reader sees EOF, then join readers.
  std::vector<std::shared_ptr<Connection>> conns;
  {
    std::lock_guard<std::mutex> lk(conn_mu_);
    for (auto& [id, conn] : connections_) conns.push_back(conn);
    connections_.clear();
  }
  for (auto& conn : conns) {
    {
      std::lock_guard<std::mutex> wl(conn->write_mu);
      conn->closed.store(true, std::memory_order_release);
      if (conn->fd >= 0) ::shutdown(conn->fd, SHUT_RDWR);
    }
    if (conn->reader.joinable()) conn->reader.join();
    std::lock_guard<std::mutex> wl(conn->write_mu);
    CloseFd(conn->fd);
  }
}

std::vector<ShardSummary> Server::ShardSummaries() const {
  std::vector<ShardSummary> out;
  out.reserve(shards_.size());
  for (const auto& shard : shards_) {
    ShardSummary s = shard->service->Summary();
    {
      std::lock_guard<std::mutex> lk(shard->queue_mu);
      s.queue_depth = shard->queue.size();
    }
    s.queue_depth_peak =
        shard->queue_depth_peak.load(std::memory_order_relaxed);
    s.enqueued = shard->enqueued.load(std::memory_order_relaxed);
    s.rejected_overloaded =
        shard->rejected_overloaded.load(std::memory_order_relaxed);
    out.push_back(std::move(s));
  }
  return out;
}

void Server::AcceptLoop() {
  while (true) {
    int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) {
      if (errno == EINTR && !draining_.load(std::memory_order_acquire))
        continue;
      return;  // listen socket shut down (drain) or fatal error
    }
    if (draining_.load(std::memory_order_acquire)) {
      ::close(client);
      return;
    }
    int one = 1;
    ::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    auto conn = std::make_shared<Connection>();
    conn->fd = client;
    {
      std::lock_guard<std::mutex> lk(conn_mu_);
      conn->id = next_conn_id_++;
      connections_[conn->id] = conn;
    }
    conn->reader = std::thread([this, conn] { ReaderLoop(conn); });
    ReapFinishedConnections();
  }
}

void Server::ReapFinishedConnections() {
  std::vector<std::shared_ptr<Connection>> done;
  {
    std::lock_guard<std::mutex> lk(conn_mu_);
    for (auto it = connections_.begin(); it != connections_.end();) {
      if (it->second->reader_done.load(std::memory_order_acquire)) {
        done.push_back(it->second);
        it = connections_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (auto& conn : done) {
    if (conn->reader.joinable()) conn->reader.join();
    std::lock_guard<std::mutex> wl(conn->write_mu);
    CloseFd(conn->fd);
  }
}

// Stage 1 of the pipeline: framing, byte-cap enforcement, JSON + envelope
// parsing, sequence stamping, and shard routing — all off the engine
// threads. Parse and envelope errors are answered here and accounted to
// shard 0 (no session is known for them).
void Server::ReaderLoop(std::shared_ptr<Connection> conn) {
  std::string acc;
  char buf[4096];
  bool fatal = false;
  while (!fatal) {
    ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (n <= 0) break;  // EOF or error: client is gone
    acc.append(buf, static_cast<size_t>(n));
    size_t pos;
    while (!fatal && (pos = acc.find('\n')) != std::string::npos) {
      std::string line = acc.substr(0, pos);
      acc.erase(0, pos + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      uint64_t seq = conn->next_request_seq++;
      if (line.size() > options_.max_request_bytes) {
        WriteSequenced(*conn, seq,
                       ErrorResponse(nullptr, ServeErrorCode::kTooLarge,
                                     "request line exceeds the size cap"));
        fatal = true;
        break;
      }
      if (draining_.load(std::memory_order_acquire)) {
        WriteSequenced(*conn, seq,
                       ErrorResponse(nullptr, ServeErrorCode::kShuttingDown,
                                     "server is draining; request rejected"));
        continue;
      }
      Result<JsonValue> json = ParseJson(line);
      if (!json.ok()) {
        shards_[0]->service->CountPreparseError();
        WriteSequenced(*conn, seq,
                       ErrorResponse(nullptr, ServeErrorCode::kParseError,
                                     json.status().message()));
        continue;
      }
      Result<Request> parsed = ParseRequestEnvelope(std::move(json).value());
      if (!parsed.ok()) {
        shards_[0]->service->CountPreparseError();
        WriteSequenced(*conn, seq,
                       ErrorResponse(nullptr, ServeErrorCode::kInvalidRequest,
                                     parsed.status().message()));
        continue;
      }
      EnqueueRequest(conn, seq, std::move(parsed).value());
    }
    // A partial line past the cap can never frame a valid request; fail
    // now instead of buffering without bound.
    if (acc.size() > options_.max_request_bytes) {
      WriteSequenced(*conn, conn->next_request_seq++,
                     ErrorResponse(nullptr, ServeErrorCode::kTooLarge,
                                   "request line exceeds the size cap"));
      fatal = true;
    }
  }
  conn->closed.store(true, std::memory_order_release);
  ::shutdown(conn->fd, SHUT_RDWR);
  // Cooperative cancellation: if any shard's engine thread is currently
  // executing a request from this connection, tell it to stop — nobody is
  // left to read the answer. (Spurious cancels are impossible: a shard
  // clears executing_conn_id before it returns, and Service::ExecuteParsed
  // clears the cancel flag at the start of the next request.)
  for (auto& shard : shards_)
    if (shard->executing_conn_id.load(std::memory_order_acquire) == conn->id)
      shard->ctx.RequestCancel();
  conn->reader_done.store(true, std::memory_order_release);
}

void Server::EnqueueRequest(const std::shared_ptr<Connection>& conn,
                            uint64_t seq, Request request) {
  Shard& shard =
      *shards_[ShardForSession(request.session, shards_.size())];
  bool overloaded = false;
  bool draining = false;
  size_t depth = 0;
  {
    std::lock_guard<std::mutex> lk(shard.queue_mu);
    // The drain check must happen under queue_mu: the engine thread only
    // exits after observing (draining && queue empty) under this lock, so
    // a request admitted here is guaranteed to be answered.
    if (draining_.load(std::memory_order_acquire)) {
      draining = true;
    } else if (shard.queue.size() >= options_.max_queue) {
      overloaded = true;
    } else {
      shard.queue.push_back(QueueItem{conn, seq, std::move(request)});
      depth = shard.queue.size();
    }
  }
  if (draining) {
    WriteSequenced(*conn, seq,
                   ErrorResponse(&request, ServeErrorCode::kShuttingDown,
                                 "server is draining; request rejected"));
    return;
  }
  if (overloaded) {
    // Per-shard backpressure: only this shard is full; the client can keep
    // talking to sessions on the other shards.
    shard.rejected_overloaded.fetch_add(1, std::memory_order_relaxed);
    ++shard.ctx.stats().serve_overload_rejections;
    WriteSequenced(
        *conn, seq,
        ErrorResponse(&request, ServeErrorCode::kOverloaded,
                      StrCat("shard ", shard.index,
                             " request queue is full; retry later")));
    return;
  }
  shard.enqueued.fetch_add(1, std::memory_order_relaxed);
  AtomicMax(shard.queue_depth_peak, depth);
  shard.ctx.stats().serve_queue_peak.MaxWith(depth);
  shard.queue_cv.notify_one();
}

// Stage 2: one engine thread per shard executes that shard's requests
// strictly in arrival order against the shard-private context and session
// table, then hands the response to the shard's writer (stage 3) through
// the bounded respond queue — a full queue blocks here, which is the
// backpressure toward slow readers.
void Server::EngineLoop(Shard& shard) {
  while (true) {
    QueueItem item;
    {
      std::unique_lock<std::mutex> lk(shard.queue_mu);
      shard.queue_cv.wait(lk, [&] {
        return !shard.queue.empty() ||
               draining_.load(std::memory_order_acquire);
      });
      if (shard.queue.empty()) break;  // draining, nothing left to answer
      item = std::move(shard.queue.front());
      shard.queue.pop_front();
    }
    shard.executing_conn_id.store(item.conn->id, std::memory_order_release);
    bool shutdown_requested = false;
    std::string response =
        shard.service->ExecuteParsed(item.request, &shutdown_requested);
    shard.executing_conn_id.store(0, std::memory_order_release);
    {
      std::unique_lock<std::mutex> lk(shard.respond_mu);
      shard.respond_space_cv.wait(lk, [&] {
        return shard.respond_queue.size() < options_.max_respond_queue;
      });
      shard.respond_queue.push_back(
          ResponseItem{item.conn, item.seq, std::move(response)});
    }
    shard.respond_cv.notify_one();
    if (shutdown_requested) RequestDrain();
  }
  {
    std::lock_guard<std::mutex> lk(shard.respond_mu);
    shard.engine_done = true;
  }
  shard.respond_cv.notify_all();
}

// Stage 3: the shard's writer drains the respond queue and releases each
// response through the owning connection's sequencer, so the engine thread
// never blocks on a slow client socket.
void Server::WriterLoop(Shard& shard) {
  while (true) {
    ResponseItem item;
    {
      std::unique_lock<std::mutex> lk(shard.respond_mu);
      shard.respond_cv.wait(lk, [&] {
        return !shard.respond_queue.empty() || shard.engine_done;
      });
      if (shard.respond_queue.empty()) break;  // engine done and flushed
      item = std::move(shard.respond_queue.front());
      shard.respond_queue.pop_front();
    }
    shard.respond_space_cv.notify_one();
    WriteSequenced(*item.conn, item.seq, std::move(item.line));
  }
  std::lock_guard<std::mutex> lk(done_mu_);
  ++shards_done_;
  done_cv_.notify_all();
}

void Server::WriteSequenced(Connection& conn, uint64_t seq,
                            std::string line) {
  std::lock_guard<std::mutex> lk(conn.order_mu);
  if (seq != conn.next_write_seq) {
    // An earlier response (possibly from another shard) is still pending;
    // hold this one until the gap closes.
    conn.held_responses.emplace(seq, std::move(line));
    return;
  }
  // In order: write, then flush any directly following held responses.
  // WriteLine drops silently on a closed connection, but the sequence
  // still advances — later responses must never stall behind a vanished
  // client.
  WriteLine(conn, line);
  ++conn.next_write_seq;
  auto it = conn.held_responses.begin();
  while (it != conn.held_responses.end() &&
         it->first == conn.next_write_seq) {
    WriteLine(conn, it->second);
    ++conn.next_write_seq;
    it = conn.held_responses.erase(it);
  }
}

void Server::WriteLine(Connection& conn, const std::string& line) {
  std::lock_guard<std::mutex> lk(conn.write_mu);
  if (conn.closed.load(std::memory_order_acquire) || conn.fd < 0) return;
  size_t sent = 0;
  while (sent < line.size()) {
    ssize_t n = ::send(conn.fd, line.data() + sent, line.size() - sent,
                       MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      conn.closed.store(true, std::memory_order_release);
      return;
    }
    sent += static_cast<size_t>(n);
  }
}

}  // namespace serve
}  // namespace cqac
