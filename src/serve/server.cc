#include "src/serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>
#include <vector>

#include "src/base/strings.h"
#include "src/serve/protocol.h"

namespace cqac {
namespace serve {

namespace {

void CloseFd(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

}  // namespace

Server::Server(ServerOptions options)
    : options_(std::move(options)), service_(ctx_, options_.service) {
  ctx_.set_task_pool(options_.pool);
}

Server::~Server() { Stop(); }

Status Server::Start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0)
    return Status::Internal(StrCat("socket: ", std::strerror(errno)));
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    Status st = Status::Internal(StrCat("bind: ", std::strerror(errno)));
    CloseFd(listen_fd_);
    return st;
  }
  if (::listen(listen_fd_, 64) < 0) {
    Status st = Status::Internal(StrCat("listen: ", std::strerror(errno)));
    CloseFd(listen_fd_);
    return st;
  }
  sockaddr_in bound;
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) <
      0) {
    Status st =
        Status::Internal(StrCat("getsockname: ", std::strerror(errno)));
    CloseFd(listen_fd_);
    return st;
  }
  port_ = ntohs(bound.sin_port);

  engine_thread_ = std::thread([this] { EngineLoop(); });
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void Server::RequestDrain() {
  bool was_draining = draining_.exchange(true);
  if (was_draining) return;
  // shutdown() (not close()) wakes the thread blocked in accept(); the fd
  // itself is closed in Stop() after the accept thread has been joined.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  queue_cv_.notify_all();
}

void Server::Wait() {
  std::unique_lock<std::mutex> lk(done_mu_);
  done_cv_.wait(lk, [this] { return engine_done_; });
}

void Server::Stop() {
  {
    std::lock_guard<std::mutex> lk(done_mu_);
    if (stopped_) return;
    stopped_ = true;
  }
  RequestDrain();
  if (engine_thread_.joinable()) engine_thread_.join();
  if (accept_thread_.joinable()) accept_thread_.join();
  CloseFd(listen_fd_);
  // Shut down every connection so its reader sees EOF, then join readers.
  std::vector<std::shared_ptr<Connection>> conns;
  {
    std::lock_guard<std::mutex> lk(conn_mu_);
    for (auto& [id, conn] : connections_) conns.push_back(conn);
    connections_.clear();
  }
  for (auto& conn : conns) {
    {
      std::lock_guard<std::mutex> wl(conn->write_mu);
      conn->closed.store(true, std::memory_order_release);
      if (conn->fd >= 0) ::shutdown(conn->fd, SHUT_RDWR);
    }
    if (conn->reader.joinable()) conn->reader.join();
    std::lock_guard<std::mutex> wl(conn->write_mu);
    CloseFd(conn->fd);
  }
}

void Server::AcceptLoop() {
  while (true) {
    int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) {
      if (errno == EINTR && !draining_.load(std::memory_order_acquire))
        continue;
      return;  // listen socket shut down (drain) or fatal error
    }
    if (draining_.load(std::memory_order_acquire)) {
      ::close(client);
      return;
    }
    int one = 1;
    ::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    auto conn = std::make_shared<Connection>();
    conn->fd = client;
    {
      std::lock_guard<std::mutex> lk(conn_mu_);
      conn->id = next_conn_id_++;
      connections_[conn->id] = conn;
    }
    conn->reader = std::thread([this, conn] { ReaderLoop(conn); });
    ReapFinishedConnections();
  }
}

void Server::ReapFinishedConnections() {
  std::vector<std::shared_ptr<Connection>> done;
  {
    std::lock_guard<std::mutex> lk(conn_mu_);
    for (auto it = connections_.begin(); it != connections_.end();) {
      if (it->second->reader_done.load(std::memory_order_acquire)) {
        done.push_back(it->second);
        it = connections_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (auto& conn : done) {
    if (conn->reader.joinable()) conn->reader.join();
    std::lock_guard<std::mutex> wl(conn->write_mu);
    CloseFd(conn->fd);
  }
}

void Server::ReaderLoop(std::shared_ptr<Connection> conn) {
  std::string acc;
  char buf[4096];
  bool fatal = false;
  while (!fatal) {
    ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (n <= 0) break;  // EOF or error: client is gone
    acc.append(buf, static_cast<size_t>(n));
    size_t pos;
    while (!fatal && (pos = acc.find('\n')) != std::string::npos) {
      std::string line = acc.substr(0, pos);
      acc.erase(0, pos + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      if (line.size() > options_.max_request_bytes) {
        WriteLine(*conn, ErrorResponse(nullptr, ServeErrorCode::kTooLarge,
                                       "request line exceeds the size cap"));
        fatal = true;
        break;
      }
      if (draining_.load(std::memory_order_acquire)) {
        WriteLine(*conn,
                  ErrorResponse(nullptr, ServeErrorCode::kShuttingDown,
                                "server is draining; request rejected"));
        continue;
      }
      bool overloaded = false;
      {
        std::lock_guard<std::mutex> lk(queue_mu_);
        if (queue_.size() >= options_.max_queue)
          overloaded = true;
        else
          queue_.push_back(QueueItem{conn, std::move(line)});
      }
      if (overloaded) {
        WriteLine(*conn, ErrorResponse(nullptr, ServeErrorCode::kOverloaded,
                                       "request queue is full; retry later"));
      } else {
        queue_cv_.notify_one();
      }
    }
    // A partial line past the cap can never frame a valid request; fail
    // now instead of buffering without bound.
    if (acc.size() > options_.max_request_bytes) {
      WriteLine(*conn, ErrorResponse(nullptr, ServeErrorCode::kTooLarge,
                                     "request line exceeds the size cap"));
      fatal = true;
    }
  }
  conn->closed.store(true, std::memory_order_release);
  ::shutdown(conn->fd, SHUT_RDWR);
  // Cooperative cancellation: if the engine thread is currently executing a
  // request from this connection, tell it to stop — nobody is left to read
  // the answer. (Spurious cancels are impossible: the engine thread clears
  // executing_conn_id_ before it returns, and Service::Execute clears the
  // cancel flag at the start of the next request.)
  if (executing_conn_id_.load(std::memory_order_acquire) == conn->id)
    ctx_.RequestCancel();
  conn->reader_done.store(true, std::memory_order_release);
}

void Server::WriteLine(Connection& conn, const std::string& line) {
  std::lock_guard<std::mutex> lk(conn.write_mu);
  if (conn.closed.load(std::memory_order_acquire) || conn.fd < 0) return;
  size_t sent = 0;
  while (sent < line.size()) {
    ssize_t n = ::send(conn.fd, line.data() + sent, line.size() - sent,
                       MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      conn.closed.store(true, std::memory_order_release);
      return;
    }
    sent += static_cast<size_t>(n);
  }
}

void Server::EngineLoop() {
  while (true) {
    QueueItem item;
    {
      std::unique_lock<std::mutex> lk(queue_mu_);
      queue_cv_.wait(lk, [this] {
        return !queue_.empty() || draining_.load(std::memory_order_acquire);
      });
      if (queue_.empty()) break;  // draining and nothing left to answer
      item = std::move(queue_.front());
      queue_.pop_front();
    }
    executing_conn_id_.store(item.conn->id, std::memory_order_release);
    bool shutdown_requested = false;
    std::string response = service_.Execute(item.line, &shutdown_requested);
    executing_conn_id_.store(0, std::memory_order_release);
    WriteLine(*item.conn, response);
    if (shutdown_requested) RequestDrain();
  }
  std::lock_guard<std::mutex> lk(done_mu_);
  engine_done_ = true;
  done_cv_.notify_all();
}

}  // namespace serve
}  // namespace cqac
