// The cqac_serve transport: a long-lived TCP server speaking the
// newline-delimited JSON protocol (protocol.h) on 127.0.0.1, sharded into
// N independent engine workers.
//
// Architecture (one process; the request path is a pipeline):
//
//   accept thread ──► one reader thread per connection
//                          │  stage 1 — parse: splits bytes into request
//                          │  lines, enforces the byte cap, parses JSON +
//                          │  the envelope, stamps a per-connection
//                          │  sequence number,
//                          ▼
//              route by shard = Hash(session) % N      (stable pinning)
//                          │
//            ┌─────────────┼─────────────┐
//            ▼             ▼             ▼
//      shard 0 queue  shard 1 queue  ...  (bounded; full ⇒ "overloaded"
//            │             │              for THAT shard only)
//            ▼             ▼
//      shard engine   shard engine        stage 2 — execute: classify →
//        thread         thread            plan → rewrite/eval against the
//            │             │              shard-private EngineContext +
//            │             │              session table; engine work fans
//            │             │              out across the shard's TaskPool
//            ▼             ▼
//      respond queue  respond queue       (bounded; full ⇒ the shard
//            │             │              engine blocks = backpressure)
//            ▼             ▼
//      writer thread  writer thread       stage 3 — respond: per-connection
//                                         sequencer restores arrival order,
//                                         then writes on the socket
//
// Why this shape:
//   * Sessions are PINNED to shards by a stable hash of the session name,
//     so all state a request can touch (views, facts, materialized views,
//     session stats) is owned by exactly one shard — the hot path takes no
//     cross-shard locks, and one slow SI-MCR rewrite stalls only the
//     sessions that share its shard.
//   * Within a shard, requests execute strictly in arrival order on the
//     shard's single engine thread. That is what keeps the shard-private
//     EngineContext safe (one driver thread, TaskPool workers beneath it —
//     see src/engine/context.h) and serve output reproducible: every
//     session's response stream is byte-identical to a serial replay of
//     that session's requests, at every shard count and thread count.
//   * Responses to one connection are written in request order even when
//     the connection talks to sessions on different shards: every request
//     line gets a per-connection sequence number at parse time, and a
//     per-connection sequencer holds out-of-order responses until the gap
//     closes.
//
// Robustness:
//   * per-request deadlines (service.h) bound every engine call;
//   * a client disconnect cancels its in-flight request on every shard
//     cooperatively (EngineContext::RequestCancel), so an abandoned
//     expensive request stops burning that shard's engine thread;
//   * backpressure is per shard: a full shard queue answers "overloaded"
//     without touching the other shards;
//   * RequestDrain() — from SIGTERM or the `shutdown` op — stops accepting
//     connections, lets every shard answer its queued requests, flushes
//     the writers, then stops; Wait() returns when the last shard drains.
#ifndef CQAC_SERVE_SERVER_H_
#define CQAC_SERVE_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/base/task_pool.h"
#include "src/engine/context.h"
#include "src/serve/service.h"

namespace cqac {
namespace serve {

/// The stable session→shard pinning function: FNV-1a over the session
/// name, reduced mod `shards`. Exposed so tests (and capacity planning)
/// can predict placement; changing it invalidates every pinning claim in
/// docs/serve.md.
size_t ShardForSession(const std::string& session, size_t shards);

struct ServerOptions {
  /// TCP port to bind on 127.0.0.1; 0 picks an ephemeral port (read it
  /// back with port() after Start).
  uint16_t port = 0;
  /// Hard cap on one request line; longer lines answer "too_large" and
  /// close the connection.
  size_t max_request_bytes = 1 << 20;
  /// Bounded per-shard request queue depth; a full queue answers
  /// "overloaded" for that shard without affecting the others.
  size_t max_queue = 256;
  /// Bounded per-shard respond queue depth; a full queue blocks the
  /// shard's engine thread (backpressure toward slow readers).
  size_t max_respond_queue = 256;
  /// Number of engine shards. Each shard owns an EngineContext, a session
  /// table, an engine thread, and a writer thread; sessions are pinned by
  /// ShardForSession.
  size_t shards = 1;
  /// TaskPool workers per shard for intra-request fan-out (0 = serial).
  /// Ignored when an external `pool` is supplied (single-shard only).
  size_t threads_per_shard = 0;
  /// Optional external fan-out pool (not owned; may be null). Honored
  /// only when shards == 1 — a TaskPool has a single caller slot, so
  /// independent shard engine threads each need their own pool.
  TaskPool* pool = nullptr;
  ServiceOptions service;
  /// When non-empty, sessions are durable: every shard logs its commits to
  /// `<data_dir>/shard-<i>` and writes compact snapshots, and startup
  /// recovers all shards before serving (src/store). Empty = in-memory
  /// only, the historical behaviour.
  std::string data_dir;
  store::StoreOptions store;
};

/// What startup recovery did, for the `cqac_serve` banner.
struct RecoverySummary {
  size_t sessions = 0;
  uint64_t replayed_records = 0;
  uint64_t snapshot_lsn_max = 0;
  bool any_tail_truncated = false;

  std::string ToString() const;
};

class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Opens the durable store (when options.data_dir is set): pins the
  /// shard count in the data dir's MANIFEST, recovers every shard in
  /// parallel — newest snapshot plus O(delta) WAL-tail replay, sessions
  /// re-adopted on the shard the same FNV-1a pinning assigns them — and
  /// attaches each shard's store to its service. Idempotent; Start() calls
  /// it when the caller did not. Call before Warmup so a warm-up script
  /// layers on top of recovered state. No-op without a data_dir.
  Status OpenStore(RecoverySummary* summary = nullptr);

  /// Binds, listens, and spawns the accept, shard engine, and shard
  /// writer threads.
  Status Start();

  /// The bound port (valid after a successful Start).
  uint16_t port() const { return port_; }

  /// Number of engine shards.
  size_t shards() const { return shards_.size(); }

  /// Initiates graceful drain: stop accepting, reject new request lines
  /// with "shutting_down", let every shard finish its queued requests,
  /// flush the writers, stop. Idempotent, non-blocking, safe from any
  /// thread (a shard engine thread calls it for the `shutdown` op; the
  /// signal watcher calls it for SIGTERM).
  void RequestDrain();

  /// Blocks until the drain completes (every shard's queued requests
  /// answered and written).
  void Wait();

  /// RequestDrain + Wait + join all threads and close every socket. Called
  /// by the destructor if needed.
  void Stop();

  /// Preloads the default session and primes the owning shard's cache
  /// from a shell-style script. Call before Start (it runs on the
  /// caller's thread, against the shard that owns session "default").
  Result<WarmupSummary> Warmup(const std::string& script);

  /// Shard 0's engine context / service (the whole server's when
  /// shards == 1). Benches and tests use these; multi-shard callers want
  /// ShardSummaries().
  EngineContext& context() { return shards_[0]->ctx; }
  Service& service() { return *shards_[0]->service; }

  /// Engine context / service of one specific shard.
  EngineContext& shard_context(size_t i) { return shards_[i]->ctx; }
  Service& shard_service(size_t i) { return *shards_[i]->service; }

  /// Point-in-time per-shard summaries (see service.h). Safe from any
  /// thread; also the source of the `stats` op's global scope.
  std::vector<ShardSummary> ShardSummaries() const;

 private:
  struct Connection {
    uint64_t id = 0;
    int fd = -1;
    std::thread reader;
    std::mutex write_mu;
    std::atomic<bool> closed{false};
    std::atomic<bool> reader_done{false};

    // Request lines are stamped 0,1,2,… by the reader (stage 1); the
    // sequencer releases responses in exactly that order (stage 3).
    uint64_t next_request_seq = 0;  // reader thread only
    std::mutex order_mu;
    uint64_t next_write_seq = 0;
    std::map<uint64_t, std::string> held_responses;
  };

  struct QueueItem {
    std::shared_ptr<Connection> conn;
    uint64_t seq = 0;
    Request request;
  };

  struct ResponseItem {
    std::shared_ptr<Connection> conn;
    uint64_t seq = 0;
    std::string line;
  };

  /// One engine shard: private context + session table + pipeline stages.
  struct Shard {
    size_t index = 0;
    EngineContext ctx;
    std::unique_ptr<TaskPool> owned_pool;  // null when external/serial
    std::unique_ptr<Service> service;

    std::mutex queue_mu;
    std::condition_variable queue_cv;
    std::deque<QueueItem> queue;

    std::mutex respond_mu;
    std::condition_variable respond_cv;       // writer waits for work
    std::condition_variable respond_space_cv; // engine waits for space
    std::deque<ResponseItem> respond_queue;
    bool engine_done = false;

    std::thread engine_thread;
    std::thread writer_thread;

    std::atomic<uint64_t> executing_conn_id{0};

    // Backpressure accounting, surfaced via ShardSummaries / the `stats`
    // op / bench_serve. (enqueued + rejected also mirror into the shard
    // context's serve_* EngineStats counters.)
    std::atomic<uint64_t> enqueued{0};
    std::atomic<uint64_t> rejected_overloaded{0};
    std::atomic<uint64_t> queue_depth_peak{0};
  };

  void AcceptLoop();
  void ReaderLoop(std::shared_ptr<Connection> conn);
  void EngineLoop(Shard& shard);
  void WriterLoop(Shard& shard);

  /// Routes one parsed request to its session's shard; answers
  /// "overloaded" via the sequencer when that shard's queue is full.
  void EnqueueRequest(const std::shared_ptr<Connection>& conn, uint64_t seq,
                      Request request);

  /// Stage-3 entry: releases `line` as response `seq` of `conn`, writing
  /// it (and any directly following held responses) once every earlier
  /// response has been written. Always advances the sequence, even when
  /// the connection is already closed, so later responses never stall.
  void WriteSequenced(Connection& conn, uint64_t seq, std::string line);

  /// Sends `line` on `conn` unless it is already closed; write errors mark
  /// it closed (the reader notices via recv).
  void WriteLine(Connection& conn, const std::string& line);

  /// Joins reader threads of connections whose readers have exited.
  void ReapFinishedConnections();

  ServerOptions options_;
  std::vector<std::unique_ptr<Shard>> shards_;
  /// Per-shard durable stores, parallel to shards_ (empty without a
  /// data_dir). Owned here; each shard's Service holds a raw pointer.
  std::vector<std::unique_ptr<store::ShardStore>> stores_;
  bool store_opened_ = false;

  int listen_fd_ = -1;
  uint16_t port_ = 0;

  std::thread accept_thread_;

  std::mutex conn_mu_;
  std::map<uint64_t, std::shared_ptr<Connection>> connections_;
  uint64_t next_conn_id_ = 1;

  std::atomic<bool> draining_{false};

  std::mutex done_mu_;
  std::condition_variable done_cv_;
  size_t shards_done_ = 0;
  bool stopped_ = false;
};

}  // namespace serve
}  // namespace cqac

#endif  // CQAC_SERVE_SERVER_H_
