// The cqac_serve transport: a long-lived TCP server speaking the
// newline-delimited JSON protocol (protocol.h) on 127.0.0.1.
//
// Architecture (one process, three kinds of threads):
//
//   accept thread ──► one reader thread per connection
//                          │  splits bytes into request lines,
//                          │  enforces the per-line byte cap,
//                          ▼
//                bounded request queue  (full ⇒ immediate "overloaded")
//                          │
//                          ▼
//                single engine thread ──► Service::Execute
//                          │  one request at a time against the shared
//                          │  EngineContext; the request's engine work
//                          ▼  fans out across the attached TaskPool
//                 response written back on the request's connection
//
// Requests are executed strictly in arrival order, which is what makes the
// shared EngineContext safe (one driver thread, workers beneath it — see
// src/engine/context.h) and serve output reproducible: a concurrent
// N-client run produces byte-identical responses to a serial replay.
//
// Robustness:
//   * per-request deadlines (service.h) bound every engine call;
//   * a client disconnect cancels its in-flight request cooperatively
//     (EngineContext::RequestCancel), so an abandoned expensive request
//     stops burning the engine thread;
//   * RequestDrain() — from SIGTERM or the `shutdown` op — stops accepting
//     connections, answers queued requests, then stops the engine thread;
//   * oversized request lines are answered with "too_large" and the
//     connection is closed (framing is unrecoverable past the cap).
#ifndef CQAC_SERVE_SERVER_H_
#define CQAC_SERVE_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "src/base/task_pool.h"
#include "src/engine/context.h"
#include "src/serve/service.h"

namespace cqac {
namespace serve {

struct ServerOptions {
  /// TCP port to bind on 127.0.0.1; 0 picks an ephemeral port (read it
  /// back with port() after Start).
  uint16_t port = 0;
  /// Hard cap on one request line; longer lines answer "too_large" and
  /// close the connection.
  size_t max_request_bytes = 1 << 20;
  /// Bounded request queue depth; a full queue answers "overloaded".
  size_t max_queue = 256;
  /// Engine fan-out pool (not owned; may be null for serial execution).
  TaskPool* pool = nullptr;
  ServiceOptions service;
};

class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and spawns the accept + engine threads.
  Status Start();

  /// The bound port (valid after a successful Start).
  uint16_t port() const { return port_; }

  /// Initiates graceful drain: stop accepting, reject new request lines
  /// with "shutting_down", finish every queued request, stop. Idempotent,
  /// non-blocking, safe from any thread (the engine thread calls it for
  /// the `shutdown` op; the signal watcher calls it for SIGTERM).
  void RequestDrain();

  /// Blocks until the drain completes (every queued request answered).
  void Wait();

  /// RequestDrain + Wait + join all threads and close every socket. Called
  /// by the destructor if needed.
  void Stop();

  /// Preloads the default session and primes the cache from a shell-style
  /// script. Call before Start (it runs on the caller's thread).
  Result<WarmupSummary> Warmup(const std::string& script) {
    return service_.Warmup(script);
  }

  EngineContext& context() { return ctx_; }
  Service& service() { return service_; }

 private:
  struct Connection {
    uint64_t id = 0;
    int fd = -1;
    std::thread reader;
    std::mutex write_mu;
    std::atomic<bool> closed{false};
    std::atomic<bool> reader_done{false};
  };

  struct QueueItem {
    std::shared_ptr<Connection> conn;
    std::string line;
  };

  void AcceptLoop();
  void ReaderLoop(std::shared_ptr<Connection> conn);
  void EngineLoop();

  /// Sends `line` on `conn` unless it is already closed; write errors mark
  /// it closed (the reader notices via recv).
  void WriteLine(Connection& conn, const std::string& line);

  /// Joins reader threads of connections whose readers have exited.
  void ReapFinishedConnections();

  ServerOptions options_;
  EngineContext ctx_;
  Service service_;

  int listen_fd_ = -1;
  uint16_t port_ = 0;

  std::thread accept_thread_;
  std::thread engine_thread_;

  std::mutex conn_mu_;
  std::map<uint64_t, std::shared_ptr<Connection>> connections_;
  uint64_t next_conn_id_ = 1;

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<QueueItem> queue_;

  std::atomic<bool> draining_{false};
  std::atomic<uint64_t> executing_conn_id_{0};

  std::mutex done_mu_;
  std::condition_variable done_cv_;
  bool engine_done_ = false;
  bool stopped_ = false;
};

}  // namespace serve
}  // namespace cqac

#endif  // CQAC_SERVE_SERVER_H_
