#include "src/serve/service.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <sstream>
#include <utility>
#include <vector>

#include "src/analysis/audit/audit.h"
#include "src/analysis/classify.h"
#include "src/analysis/lint.h"
#include "src/base/strings.h"
#include "src/containment/containment.h"
#include "src/eval/evaluate.h"
#include "src/ir/expansion.h"
#include "src/ir/json.h"
#include "src/ir/parser.h"
#include "src/plan/planner.h"
#include "src/rewriting/answer.h"
#include "src/rewriting/bucket.h"
#include "src/rewriting/rewrite_lsi.h"
#include "src/rewriting/si_mcr.h"

namespace cqac {
namespace serve {
namespace {

// True when the request opts into the audit pass ("certify": true). The
// flag is ignored unless it is a literal JSON boolean.
bool CertifyRequested(const Request& req) {
  const JsonValue* v = req.body.Find("certify");
  return v != nullptr && v->is_bool() && v->bool_value();
}

// Appends one obligation to `report` with AuditAll's counter convention
// (src/analysis/audit/audit.cc): wall time, obligation and failure counts.
template <typename Fn>
void RecordObligation(EngineContext& ctx, audit::AuditReport* report,
                      audit::ObligationKind kind, std::string label, Fn&& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  Status s = fn();
  ctx.stats().audit_wall_ns +=
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count();
  ++ctx.stats().audit_obligations;
  audit::Obligation o;
  o.kind = kind;
  o.label = std::move(label);
  o.status = std::move(s);
  if (o.failed()) ++ctx.stats().audit_failures;
  report->obligations.push_back(std::move(o));
}

// Renders a relation as a JSON array of tuples, each tuple an array of
// value strings (rationals render exactly: "7/2", not a float).
std::string RelationToJson(const Relation& r) {
  std::string out = "[";
  bool first_tuple = true;
  for (const Tuple& t : r) {
    out += first_tuple ? "[" : ",[";
    first_tuple = false;
    for (size_t i = 0; i < t.size(); ++i)
      out += StrCat(i ? "," : "", JsonQuote(t[i].ToString()));
    out += "]";
  }
  out += "]";
  return out;
}

std::string DiagnosticsToJson(const std::vector<LintDiagnostic>& diags) {
  std::string out = "[";
  for (size_t i = 0; i < diags.size(); ++i) {
    const LintDiagnostic& d = diags[i];
    out += StrCat(i ? "," : "", "{\"code\":", JsonQuote(d.code),
                  ",\"severity\":\"", LintSeverityName(d.severity),
                  "\",\"line\":", d.span.begin.line,
                  ",\"col\":", d.span.begin.col, ",\"rule\":", d.rule_index,
                  ",\"message\":", JsonQuote(d.message), "}");
  }
  out += "]";
  return out;
}

bool IsErrorResponseLine(const std::string& response) {
  return response.rfind("{\"ok\":false", 0) == 0;
}

}  // namespace

std::string WarmupSummary::ToString() const {
  return StrCat(views, " views, ", facts, " facts, ", rewrites,
                " rewrites primed, ", ignored, " lines ignored");
}

Service::Service(EngineContext& ctx, ServiceOptions options)
    : ctx_(ctx), options_(options), sessions_(options.max_sessions) {}

std::string Service::Execute(const std::string& line,
                             bool* shutdown_requested) {
  Result<JsonValue> json = ParseJson(line);
  if (!json.ok()) {
    CountPreparseError();
    return ErrorResponse(nullptr, ServeErrorCode::kParseError,
                         json.status().message());
  }
  Result<Request> parsed = ParseRequestEnvelope(std::move(json).value());
  if (!parsed.ok()) {
    CountPreparseError();
    return ErrorResponse(nullptr, ServeErrorCode::kInvalidRequest,
                         parsed.status().message());
  }
  return ExecuteParsed(parsed.value(), shutdown_requested);
}

std::string Service::ExecuteParsed(const Request& req,
                                   bool* shutdown_requested) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  ++ctx_.stats().serve_requests;

  // Per-request deadline: clamp the client's timeout to the server cap and
  // install it as the budget deadline for the duration of the request.
  // Engine calls are serialized on this shard's engine thread, so
  // save/restore is safe.
  std::chrono::milliseconds timeout =
      std::min(req.timeout.value_or(options_.default_timeout),
               options_.max_timeout);
  Budget saved = ctx_.budget();
  ctx_.ClearCancel();
  ctx_.budget().deadline = std::chrono::steady_clock::now() + timeout;

  StatsSnapshot before = ctx_.stats().Snapshot();
  std::string response = Dispatch(req, shutdown_requested);

  ctx_.budget() = saved;
  ctx_.ClearCancel();

  // Snapshot cadence: runs on the engine thread after the request's own
  // work, so it sees a quiescent, fully committed shard state.
  MaybeSnapshot();

  bool is_error = IsErrorResponseLine(response);
  if (is_error) request_errors_.fetch_add(1, std::memory_order_relaxed);
  // Attribute the engine work to the session when one exists (ops that need
  // session state create it; pure-compute ops only attribute to sessions
  // already created).
  if (Session* session = sessions_.Find(req.session)) {
    session->stats.requests.fetch_add(1, std::memory_order_relaxed);
    if (is_error)
      session->stats.errors.fetch_add(1, std::memory_order_relaxed);
    session->stats.engine += ctx_.stats().Snapshot() - before;
  }
  return response;
}

ShardSummary Service::Summary() const {
  ShardSummary s;
  s.shard = shard_index_;
  s.requests = requests();
  s.request_errors = request_errors();
  s.session_index = sessions_.Index();
  s.sessions = s.session_index.size();
  s.cache_bytes = ctx_.cache_bytes();
  s.cache_entries = ctx_.cache_entries();
  s.threads = ctx_.parallelism();
  s.engine = ctx_.stats().Snapshot();
  return s;
}

std::string ShardSummary::ToJson() const {
  return StrCat(
      "{\"shard\":", shard, ",\"requests\":", requests,
      ",\"request_errors\":", request_errors, ",\"sessions\":", sessions,
      ",\"queue_depth\":", queue_depth,
      ",\"queue_depth_peak\":", queue_depth_peak, ",\"enqueued\":", enqueued,
      ",\"rejected_overloaded\":", rejected_overloaded,
      ",\"threads\":", threads, ",\"cache\":{\"bytes\":", cache_bytes,
      ",\"entries\":", cache_entries, "},\"engine\":", engine.ToJson(), "}");
}

std::string Service::Dispatch(const Request& req, bool* shutdown_requested) {
  if (req.op == "ping") return HandlePing(req);
  if (req.op == "view") return HandleView(req);
  if (req.op == "fact") return HandleFact(req);
  if (req.op == "retract") return HandleRetract(req);
  if (req.op == "classify") return HandleClassify(req);
  if (req.op == "rewrite") return HandleRewrite(req);
  if (req.op == "contain") return HandleContain(req);
  if (req.op == "eval") return HandleEval(req);
  if (req.op == "answers") return HandleAnswers(req);
  if (req.op == "lint") return HandleLint(req);
  if (req.op == "stats") return HandleStats(req);
  if (req.op == "reset") return HandleReset(req);
  if (req.op == "shutdown") {
    if (shutdown_requested != nullptr) *shutdown_requested = true;
    std::string out = BeginResponse(req);
    JsonField(&out, "draining", "true");
    JsonClose(&out);
    return out;
  }
  return ErrorResponse(&req, ServeErrorCode::kUnknownOp,
                       StrCat("unknown op '", req.op, "'"));
}

std::string Service::HandlePing(const Request& req) {
  std::string out = BeginResponse(req);
  JsonClose(&out);
  return out;
}

Status Service::LogSessionCreate(bool created, const std::string& session) {
  if (!created || store_ == nullptr) return Status::OK();
  return store_->Append(store::RecordType::kSessionCreate, session, "");
}

Status Service::LogRecordOp(store::RecordType type, const std::string& session,
                            const std::string& text) {
  if (store_ == nullptr) return Status::OK();
  return store_->Append(type, session, text);
}

void Service::MaybeSnapshot() {
  if (store_ == nullptr || !store_->ShouldSnapshot()) return;
  std::vector<store::SessionSnapshotRef> refs;
  std::vector<Session*> sessions = sessions_.Sessions();
  refs.reserve(sessions.size());
  for (Session* s : sessions) {
    store::SessionSnapshotRef ref;
    ref.name = &s->name;
    ref.view_texts = &s->view_texts;
    ref.store = &s->store;
    refs.push_back(ref);
  }
  Status st = store_->WriteSnapshot(ctx_.adaptive(), refs);
  if (!st.ok())
    std::fprintf(stderr, "cqac_serve: shard %zu snapshot failed: %s\n",
                 shard_index_, st.ToString().c_str());
}

std::string Service::HandleView(const Request& req) {
  Result<std::string> rule = req.GetString("rule");
  if (!rule.ok()) return ErrorResponse(req, rule.status());
  bool created = false;
  Result<Session*> session = sessions_.GetOrCreate(req.session, &created);
  if (!session.ok()) return ErrorResponse(req, session.status());
  Status logged = LogSessionCreate(created, req.session);
  if (!logged.ok()) return ErrorResponse(req, logged);

  Result<ParsedQuery> v = ParseQueryWithInfo(rule.value());
  if (!v.ok()) return ErrorResponse(req, v.status());
  Status st = session.value()->views.Add(v.value().query);
  if (!st.ok()) return ErrorResponse(req, st);
  // Materialize the new view over the session's base now, so later fact /
  // retract ops maintain it incrementally (src/ivm).
  st = session.value()->store.AddView(ctx_, v.value().query);
  if (!st.ok()) return ErrorResponse(req, st);
  session.value()->view_sources.push_back(std::move(v).value());
  session.value()->view_texts.push_back(rule.value());
  // Log the commit before the response is released: acked means logged.
  logged = LogRecordOp(store::RecordType::kView, req.session, rule.value());
  if (!logged.ok()) return ErrorResponse(req, logged);

  const ViewSet& views = session.value()->views;
  std::string out = BeginResponse(req);
  JsonField(&out, "view", JsonQuote(views[views.size() - 1].ToString()));
  JsonField(&out, "views", StrCat(views.size()));
  JsonClose(&out);
  return out;
}

std::string Service::HandleFact(const Request& req) {
  Result<std::string> facts = req.GetString("facts");
  if (!facts.ok()) return ErrorResponse(req, facts.status());
  bool created = false;
  Result<Session*> session = sessions_.GetOrCreate(req.session, &created);
  if (!session.ok()) return ErrorResponse(req, session.status());
  Status logged = LogSessionCreate(created, req.session);
  if (!logged.ok()) return ErrorResponse(req, logged);

  Result<Database> parsed = Database::FromFacts(facts.value());
  if (!parsed.ok()) return ErrorResponse(req, parsed.status());
  const bool certify = CertifyRequested(req);
  ivm::MaterializedViewSet& store = session.value()->store;
  ivm::MaintenanceCertificate cert;
  Result<ivm::ApplySummary> summary =
      store.ApplyInsert(ctx_, parsed.value(), {}, certify ? &cert : nullptr);
  if (!summary.ok()) return ErrorResponse(req, summary.status());
  logged = LogRecordOp(store::RecordType::kFact, req.session, facts.value());
  if (!logged.ok()) return ErrorResponse(req, logged);

  std::string out = BeginResponse(req);
  JsonField(&out, "tuples_added", StrCat(summary.value().inserted));
  JsonField(&out, "total_tuples", StrCat(store.base().TotalTuples()));
  if (certify) {
    audit::AuditReport report;
    RecordObligation(ctx_, &report, audit::ObligationKind::kIvmCommit,
                     "fact", [&] {
                       return audit::CheckMaintenance(
                           ctx_, store.view_queries(), cert, store.base(),
                           store.views());
                     });
    JsonField(&out, "audit", report.ToJson());
  }
  JsonClose(&out);
  return out;
}

std::string Service::HandleRetract(const Request& req) {
  Result<std::string> facts = req.GetString("facts");
  if (!facts.ok()) return ErrorResponse(req, facts.status());
  bool created = false;
  Result<Session*> session = sessions_.GetOrCreate(req.session, &created);
  if (!session.ok()) return ErrorResponse(req, session.status());
  Status logged = LogSessionCreate(created, req.session);
  if (!logged.ok()) return ErrorResponse(req, logged);

  Result<Database> parsed = Database::FromFacts(facts.value());
  if (!parsed.ok()) return ErrorResponse(req, parsed.status());
  const bool certify = CertifyRequested(req);
  ivm::MaterializedViewSet& store = session.value()->store;
  ivm::MaintenanceCertificate cert;
  Result<ivm::ApplySummary> summary =
      store.ApplyRetract(ctx_, parsed.value(), {}, certify ? &cert : nullptr);
  if (!summary.ok()) return ErrorResponse(req, summary.status());
  logged =
      LogRecordOp(store::RecordType::kRetract, req.session, facts.value());
  if (!logged.ok()) return ErrorResponse(req, logged);

  std::string out = BeginResponse(req);
  JsonField(&out, "tuples_removed", StrCat(summary.value().retracted));
  JsonField(&out, "total_tuples", StrCat(store.base().TotalTuples()));
  if (certify) {
    audit::AuditReport report;
    RecordObligation(ctx_, &report, audit::ObligationKind::kIvmCommit,
                     "retract", [&] {
                       return audit::CheckMaintenance(
                           ctx_, store.view_queries(), cert, store.base(),
                           store.views());
                     });
    JsonField(&out, "audit", report.ToJson());
  }
  JsonClose(&out);
  return out;
}

std::string Service::HandleClassify(const Request& req) {
  Result<std::string> text = req.GetString("query");
  if (!text.ok()) return ErrorResponse(req, text.status());
  Result<Query> q = ParseQuery(text.value());
  if (!q.ok()) return ErrorResponse(req, q.status());
  Status valid = q.value().Validate();
  if (!valid.ok()) return ErrorResponse(req, valid);

  ClassInfo info = ClassifyQuery(q.value());
  std::string out = BeginResponse(req);
  JsonField(&out, "class", JsonQuote(info.Name()));
  JsonField(&out, "cqac_si", info.cqac_si ? "true" : "false");
  JsonField(&out, "closed", info.closed ? "true" : "false");
  JsonField(&out, "open", info.open ? "true" : "false");
  JsonField(&out, "algorithm", JsonQuote(info.RecommendedAlgorithm()));
  JsonClose(&out);
  return out;
}

std::string Service::HandleRewrite(const Request& req) {
  Result<std::string> text = req.GetString("query");
  if (!text.ok()) return ErrorResponse(req, text.status());
  bool created = false;
  Result<Session*> session = sessions_.GetOrCreate(req.session, &created);
  if (!session.ok()) return ErrorResponse(req, session.status());
  Status logged = LogSessionCreate(created, req.session);
  if (!logged.ok()) return ErrorResponse(req, logged);
  Result<Query> q = ParseQuery(text.value());
  if (!q.ok()) return ErrorResponse(req, q.status());
  Status valid = q.value().Validate();
  if (!valid.ok()) return ErrorResponse(req, valid);

  const Query& query = q.value();
  const ViewSet& views = session.value()->views;

  // With "certify": true, the static obligations (classification, the
  // rewriting witness or the SI-MCR rules + bounded unfolding, both
  // minimizations) are re-proved by the independent auditor and attached.
  std::string audit_json;
  if (CertifyRequested(req)) {
    audit::AuditInputs inputs;
    inputs.query = query;
    inputs.views = views;
    audit::AuditOptions opts;
    opts.audit_ivm = false;
    opts.audit_eval = false;
    audit::AuditReport report;
    Status st = audit::AuditAll(ctx_, inputs, opts, &report);
    if (!st.ok()) return ErrorResponse(req, st);
    audit_json = report.ToJson();
  }

  // The planner's unified dispatch (src/rewriting/answer.cc PlanForQuery):
  // the same class-dictated engine choice the shell's `rewrite` makes, so
  // serve-mode output stays byte-identical to shell output — and it returns
  // the explicit Plan record surfaced as the "plan" field.
  Result<ViewPlan> vp = PlanForQuery(ctx_, query, views);
  if (!vp.ok()) return ErrorResponse(req, vp.status());
  const ViewPlan& plan = vp.value();
  if (plan.kind == PlanKind::kDatalog) {
    std::string out = BeginResponse(req);
    JsonField(&out, "kind", "\"datalog\"");
    JsonField(&out, "count", StrCat(plan.datalog->rules.size()));
    JsonField(&out, "text", JsonQuote(plan.datalog->ToString()));
    JsonField(&out, "plan", plan.plan.ToJson());
    if (!audit_json.empty()) JsonField(&out, "audit", audit_json);
    JsonClose(&out);
    return out;
  }
  AcClass cls = query.Classify();
  bool lsi_path =
      cls == AcClass::kNone || cls == AcClass::kLsi || cls == AcClass::kRsi;
  std::string out = BeginResponse(req);
  JsonField(&out, "kind", lsi_path ? "\"mcr\"" : "\"bucket\"");
  JsonField(&out, "count", StrCat(plan.union_plan.disjuncts.size()));
  JsonField(&out, "text", JsonQuote(plan.union_plan.ToString()));
  JsonField(&out, "json", UnionQueryToJson(plan.union_plan));
  JsonField(&out, "plan", plan.plan.ToJson());
  if (!audit_json.empty()) JsonField(&out, "audit", audit_json);
  JsonClose(&out);
  return out;
}

std::string Service::HandleContain(const Request& req) {
  Result<std::string> qtext = req.GetString("query");
  if (!qtext.ok()) return ErrorResponse(req, qtext.status());
  Result<std::string> ctext = req.GetString("candidate");
  if (!ctext.ok()) return ErrorResponse(req, ctext.status());
  bool created = false;
  Result<Session*> session = sessions_.GetOrCreate(req.session, &created);
  if (!session.ok()) return ErrorResponse(req, session.status());
  Status logged = LogSessionCreate(created, req.session);
  if (!logged.ok()) return ErrorResponse(req, logged);

  Result<Query> q = ParseQuery(qtext.value());
  if (!q.ok()) return ErrorResponse(req, q.status());
  Result<Query> c = ParseQuery(ctext.value());
  if (!c.ok()) return ErrorResponse(req, c.status());

  // As in the shell: a candidate written over view predicates is compared
  // through its expansion (the contained-rewriting test of Definition 2.1).
  const ViewSet& views = session.value()->views;
  Query candidate = std::move(c).value();
  bool uses_views = !candidate.body().empty();
  for (const Atom& a : candidate.body())
    if (views.Find(a.predicate) == nullptr) uses_views = false;
  if (uses_views) {
    Result<Query> expanded = ExpandRewriting(candidate, views);
    if (!expanded.ok()) return ErrorResponse(req, expanded.status());
    candidate = std::move(expanded).value();
  }

  Result<bool> contained = IsContained(ctx_, candidate, q.value());
  if (!contained.ok()) return ErrorResponse(req, contained.status());

  std::string out = BeginResponse(req);
  JsonField(&out, "contained", contained.value() ? "true" : "false");
  JsonField(&out, "via_expansion", uses_views ? "true" : "false");
  JsonClose(&out);
  return out;
}

std::string Service::HandleEval(const Request& req) {
  Result<std::string> text = req.GetString("query");
  if (!text.ok()) return ErrorResponse(req, text.status());
  bool created = false;
  Result<Session*> session = sessions_.GetOrCreate(req.session, &created);
  if (!session.ok()) return ErrorResponse(req, session.status());
  Status logged = LogSessionCreate(created, req.session);
  if (!logged.ok()) return ErrorResponse(req, logged);
  Result<Query> q = ParseQuery(text.value());
  if (!q.ok()) return ErrorResponse(req, q.status());
  Status valid = q.value().Validate();
  if (!valid.ok()) return ErrorResponse(req, valid);

  const Database& base = session.value()->store.base();
  Result<Relation> r = EvaluateQuery(ctx_, q.value(), base);
  if (!r.ok()) return ErrorResponse(req, r.status());

  // The same join-order decision EvaluateQuery just made (it plans from
  // the database alone, so recomputing it here is exact), surfaced as an
  // explicit plan record.
  auto rows = [&base](const std::string& p) { return base.Get(p).size(); };
  auto distinct = [&base](const std::string& p, size_t c) {
    return base.stats().DistinctEstimate(p, c);
  };
  plan::Plan eval_plan;
  eval_plan.decisions.push_back(
      plan::PlanJoinOrder(q.value(), plan::Cardinalities{rows, distinct})
          .ToDecision());

  std::string out = BeginResponse(req);
  JsonField(&out, "count", StrCat(r.value().size()));
  JsonField(&out, "tuples", RelationToJson(r.value()));
  JsonField(&out, "plan", eval_plan.ToJson());
  JsonField(&out, "maintained",
            session.value()->store.maintained() ? "true" : "false");
  if (CertifyRequested(req)) {
    // The engine result is certified against the naive reference evaluator.
    audit::AuditReport report;
    RecordObligation(
        ctx_, &report, audit::ObligationKind::kEval, text.value(),
        [&]() -> Status {
          Result<Relation> ref = EvaluateQueryReference(
              q.value(), session.value()->store.base());
          CQAC_RETURN_IF_ERROR(ref.status());
          if (ref.value() != r.value())
            return Status::InvalidArgument(
                StrCat("certificate rejected: engine evaluation returned ",
                       r.value().size(), " tuples, the reference returned ",
                       ref.value().size()));
          return Status::OK();
        });
    JsonField(&out, "audit", report.ToJson());
  }
  JsonClose(&out);
  return out;
}

std::string Service::HandleAnswers(const Request& req) {
  Result<std::string> text = req.GetString("query");
  if (!text.ok()) return ErrorResponse(req, text.status());
  bool created = false;
  Result<Session*> session = sessions_.GetOrCreate(req.session, &created);
  if (!session.ok()) return ErrorResponse(req, session.status());
  Status logged = LogSessionCreate(created, req.session);
  if (!logged.ok()) return ErrorResponse(req, logged);
  Result<Query> q = ParseQuery(text.value());
  if (!q.ok()) return ErrorResponse(req, q.status());
  Status valid = q.value().Validate();
  if (!valid.ok()) return ErrorResponse(req, valid);

  const Query& query = q.value();
  const ViewSet& views = session.value()->views;
  AcClass cls = query.Classify();
  if (query.IsCqacSi() && !query.IsConjunctiveOnly() &&
      cls != AcClass::kNone && cls != AcClass::kLsi && cls != AcClass::kRsi &&
      views.AllSiOnly())
    return ErrorResponse(&req, ServeErrorCode::kUnsupported,
                         "certain answers for a recursive Datalog MCR are "
                         "not served over the wire; use rewrite + a local "
                         "datalog::Engine");

  bool lsi_path =
      cls == AcClass::kNone || cls == AcClass::kLsi || cls == AcClass::kRsi;
  Result<UnionQuery> mcr = lsi_path ? RewriteLsiQuery(ctx_, query, views)
                                    : BucketRewrite(ctx_, query, views);
  if (!mcr.ok()) return ErrorResponse(req, mcr.status());
  if (mcr.value().empty())
    return ErrorResponse(&req, ServeErrorCode::kNotFound,
                         "no contained rewriting exists for this query over "
                         "the session's views");

  // The session's store keeps the view database maintained under fact /
  // retract, so answers read warm state instead of rematerializing every
  // view per request.
  Result<Relation> r =
      EvaluateUnion(ctx_, mcr.value(), session.value()->store.views());
  if (!r.ok()) return ErrorResponse(req, r.status());

  std::string out = BeginResponse(req);
  JsonField(&out, "count", StrCat(r.value().size()));
  JsonField(&out, "tuples", RelationToJson(r.value()));
  JsonField(&out, "rewriting_count", StrCat(mcr.value().disjuncts.size()));
  JsonField(&out, "maintained",
            session.value()->store.maintained() ? "true" : "false");
  JsonClose(&out);
  return out;
}

std::string Service::HandleLint(const Request& req) {
  Result<std::string> program = req.GetString("program");
  if (!program.ok()) return ErrorResponse(req, program.status());

  std::vector<LintDiagnostic> diags = LintFileText(program.value());
  size_t errors = 0, warnings = 0, notes = 0;
  for (const LintDiagnostic& d : diags) {
    if (d.severity == LintSeverity::kError)
      ++errors;
    else if (d.severity == LintSeverity::kWarning)
      ++warnings;
    else
      ++notes;
  }

  std::string out = BeginResponse(req);
  JsonField(&out, "diagnostics", DiagnosticsToJson(diags));
  JsonField(&out, "errors", StrCat(errors));
  JsonField(&out, "warnings", StrCat(warnings));
  JsonField(&out, "notes", StrCat(notes));
  JsonField(&out, "max_severity",
            diags.empty()
                ? "\"none\""
                : StrCat("\"", LintSeverityName(MaxLintSeverity(diags)),
                         "\""));
  JsonClose(&out);
  return out;
}

std::string Service::HandleStats(const Request& req) {
  Result<std::string> scope = req.GetStringOr("scope", "global");
  if (!scope.ok()) return ErrorResponse(req, scope.status());

  if (scope.value() == "session") {
    Session* session = sessions_.Find(req.session);
    if (session == nullptr)
      return ErrorResponse(&req, ServeErrorCode::kNotFound,
                           StrCat("session '", req.session, "' not found"));
    std::string out = BeginResponse(req);
    JsonField(&out, "scope", "\"session\"");
    JsonField(&out, "session", JsonQuote(session->name));
    JsonField(&out, "shard", StrCat(shard_index_));
    JsonField(&out, "views", StrCat(session->views.size()));
    JsonField(&out, "facts", StrCat(session->store.base().TotalTuples()));
    JsonField(&out, "requests",
              StrCat(session->stats.requests.load(
                  std::memory_order_relaxed)));
    JsonField(
        &out, "errors",
        StrCat(session->stats.errors.load(std::memory_order_relaxed)));
    JsonField(&out, "engine", session->stats.engine.ToJson());
    JsonClose(&out);
    return out;
  }
  if (scope.value() != "global")
    return ErrorResponse(&req, ServeErrorCode::kInvalidArgument,
                         "field \"scope\" must be \"global\" or \"session\"");

  // Global scope aggregates over every shard. The sharded server installs
  // a cluster view; a standalone service reports itself as a one-shard
  // cluster through the same rendering path.
  std::vector<ShardSummary> shards =
      cluster_view_ ? cluster_view_() : std::vector<ShardSummary>{Summary()};

  StatsSnapshot engine_total;
  uint64_t cache_bytes = 0, cache_entries = 0, threads = 0;
  uint64_t requests = 0, request_errors = 0;
  std::vector<const SessionIndexEntry*> sessions;
  for (const ShardSummary& s : shards) {
    engine_total += s.engine;
    cache_bytes += s.cache_bytes;
    cache_entries += s.cache_entries;
    threads += s.threads;
    requests += s.requests;
    request_errors += s.request_errors;
    for (const SessionIndexEntry& e : s.session_index) sessions.push_back(&e);
  }
  // Session names are pinned: a name lives on exactly one shard, so the
  // merged index is duplicate-free; sort for a deterministic rendering.
  std::sort(sessions.begin(), sessions.end(),
            [](const SessionIndexEntry* a, const SessionIndexEntry* b) {
              return a->name < b->name;
            });
  std::string sessions_json = "[";
  for (size_t i = 0; i < sessions.size(); ++i)
    sessions_json += StrCat(i ? "," : "", "{\"name\":",
                            JsonQuote(sessions[i]->name),
                            ",\"requests\":", sessions[i]->requests,
                            ",\"errors\":", sessions[i]->errors, "}");
  sessions_json += "]";

  std::string shard_stats_json = "[";
  for (size_t i = 0; i < shards.size(); ++i)
    shard_stats_json += StrCat(i ? "," : "", shards[i].ToJson());
  shard_stats_json += "]";

  std::string out = BeginResponse(req);
  JsonField(&out, "scope", "\"global\"");
  JsonField(&out, "shards", StrCat(shards.size()));
  JsonField(&out, "engine", engine_total.ToJson());
  JsonField(&out, "cache", StrCat("{\"bytes\":", cache_bytes,
                                  ",\"entries\":", cache_entries, "}"));
  JsonField(&out, "threads", StrCat(threads));
  JsonField(&out, "requests", StrCat(requests));
  JsonField(&out, "request_errors", StrCat(request_errors));
  JsonField(&out, "sessions", sessions_json);
  JsonField(&out, "shard_stats", shard_stats_json);
  JsonClose(&out);
  return out;
}

std::string Service::HandleReset(const Request& req) {
  bool existed = sessions_.Drop(req.session);
  if (existed) {
    Status logged =
        LogRecordOp(store::RecordType::kSessionDrop, req.session, "");
    if (!logged.ok()) return ErrorResponse(req, logged);
  }
  std::string out = BeginResponse(req);
  JsonField(&out, "existed", existed ? "true" : "false");
  JsonClose(&out);
  return out;
}

Result<WarmupSummary> Service::Warmup(const std::string& script) {
  WarmupSummary summary;
  std::istringstream in(script);
  std::string line;
  std::string current_query;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    line = Strip(line);
    if (line.empty() || line[0] == '%') continue;
    std::string cmd = line.substr(0, line.find(' '));
    std::string rest =
        Strip(line.size() > cmd.size() ? line.substr(cmd.size()) : "");

    std::string request_line;
    if (cmd == "view") {
      request_line = StrCat("{\"op\":\"view\",\"rule\":", JsonQuote(rest), "}");
      ++summary.views;
    } else if (cmd == "fact") {
      request_line =
          StrCat("{\"op\":\"fact\",\"facts\":", JsonQuote(rest), "}");
      ++summary.facts;
    } else if (cmd == "retract") {
      request_line =
          StrCat("{\"op\":\"retract\",\"facts\":", JsonQuote(rest), "}");
      ++summary.facts;
    } else if (cmd == "query") {
      current_query = rest;
      continue;
    } else if (cmd == "rewrite") {
      const std::string& q = rest.empty() ? current_query : rest;
      if (q.empty())
        return Status::InvalidArgument(StrCat(
            "warmup line ", line_no, ": rewrite before any query"));
      request_line =
          StrCat("{\"op\":\"rewrite\",\"query\":", JsonQuote(q), "}");
      ++summary.rewrites;
    } else {
      ++summary.ignored;
      continue;
    }

    bool shutdown = false;
    std::string response = Execute(request_line, &shutdown);
    if (IsErrorResponseLine(response))
      return Status::InvalidArgument(
          StrCat("warmup line ", line_no, " failed: ", response));
  }
  return summary;
}

}  // namespace serve
}  // namespace cqac
