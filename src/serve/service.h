// The serve op layer: executes one parsed request against a shard's
// EngineContext and session table, producing the response line. This is
// the transport-free core of cqac_serve — the sharded TCP server
// (server.h) feeds it already-parsed requests from its per-shard queue;
// tests and the warm-up loader feed it raw lines directly.
//
// Threading: Execute/ExecuteParsed are NOT thread-safe; the server calls
// them from the owning shard's single engine thread only (see session.h
// for why that is the design). The engine work *inside* a request still
// fans out across the shard context's TaskPool workers. The cross-shard
// reads the global `stats` scope needs go through Summary() /
// set_cluster_view(), which touch only internally synchronized state
// (atomic counters, the mutex-guarded session index).
//
// Request semantics implemented here (normative doc: docs/serve.md):
//   * per-request deadline: `timeout_ms` (clamped to options.max_timeout,
//     defaulting to options.default_timeout) becomes Budget::deadline for
//     the duration of the request; expiry surfaces as a structured
//     "resource_exhausted" error;
//   * per-session accounting: engine-stat deltas of each request are added
//     to the owning session's running totals;
//   * `rewrite` dispatches exactly like cqac_shell (LSI/RSI/CQ ->
//     RewriteLsiQuery, CQAC-SI + SI-only views -> recursive Datalog,
//     otherwise bucket), so serve-mode output is byte-identical to shell
//     output for the same inputs.
#ifndef CQAC_SERVE_SERVICE_H_
#define CQAC_SERVE_SERVICE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/engine/context.h"
#include "src/serve/protocol.h"
#include "src/serve/session.h"
#include "src/store/store.h"

namespace cqac {
namespace serve {

struct ServiceOptions {
  /// Deadline applied when a request carries no timeout_ms.
  std::chrono::milliseconds default_timeout{2000};
  /// Upper clamp for client-supplied timeout_ms.
  std::chrono::milliseconds max_timeout{30000};
  /// Per-shard session cap (sessions are pinned, so each shard enforces
  /// its own bound).
  size_t max_sessions = 256;
};

/// Result of preloading a warm-up script (see Service::Warmup).
struct WarmupSummary {
  size_t views = 0;
  size_t facts = 0;
  size_t rewrites = 0;
  size_t ignored = 0;  // shell commands warm-up does not replay

  std::string ToString() const;
};

/// A point-in-time summary of one shard, safe to take from any thread.
/// The transport adds the queue fields; Service::Summary fills the rest.
/// Source of the `stats` op's global scope and of bench_serve's per-shard
/// counters.
struct ShardSummary {
  size_t shard = 0;
  uint64_t requests = 0;
  uint64_t request_errors = 0;
  size_t sessions = 0;
  /// Per-session (name, requests, errors) triples, in name order.
  std::vector<SessionIndexEntry> session_index;
  uint64_t cache_bytes = 0;
  uint64_t cache_entries = 0;
  size_t threads = 0;
  StatsSnapshot engine;
  // Transport-level backpressure counters (filled by Server).
  size_t queue_depth = 0;
  uint64_t queue_depth_peak = 0;
  uint64_t enqueued = 0;
  uint64_t rejected_overloaded = 0;

  /// Renders the summary as one JSON object (the element shape of the
  /// `stats` op's "shard_stats" array).
  std::string ToJson() const;
};

class Service {
 public:
  /// `ctx` is the shard's engine context (not owned; outlives the
  /// service).
  Service(EngineContext& ctx, ServiceOptions options);

  /// Identifies this service's shard within a sharded server (default:
  /// shard 0 of 1, the standalone/test configuration). Surfaced in
  /// session-scope `stats` responses as the "shard" wire field.
  void set_shard(size_t index, size_t total) {
    shard_index_ = index;
    shard_total_ = total;
  }
  size_t shard_index() const { return shard_index_; }
  size_t shard_total() const { return shard_total_; }

  /// Installs this shard's durable store (not owned; outlives the
  /// service). Once set, every state-changing commit (session create/drop,
  /// view, fact, retract) appends a WAL record from the engine thread
  /// BEFORE the response is released — acked means logged — and the
  /// snapshot cadence runs after each request. Unset (no --data-dir), the
  /// server is in-memory only, exactly as before.
  void set_store(store::ShardStore* s) { store_ = s; }
  store::ShardStore* store() const { return store_; }

  /// Installs the cross-shard view for the global `stats` scope: a
  /// callback returning every shard's summary (including this one's).
  /// Owning on purpose — the server hands in a lambda over itself. Unset,
  /// global stats reports this service alone — the standalone behaviour.
  void set_cluster_view(std::function<std::vector<ShardSummary>()> view) {
    cluster_view_ = std::move(view);
  }

  /// Executes one request line end to end: JSON parse, envelope
  /// validation, then ExecuteParsed. Always returns a complete
  /// single-line response (errors included).
  std::string Execute(const std::string& line, bool* shutdown_requested);

  /// Executes an already-parsed request: deadline setup, op dispatch,
  /// session accounting. The sharded server parses in stage 1 (reader
  /// threads) and calls this from the shard engine thread.
  /// `*shutdown_requested` is set when the request was a valid `shutdown`
  /// op; the transport reacts after writing the response.
  std::string ExecuteParsed(const Request& req, bool* shutdown_requested);

  /// Preloads the "default" session from a shell-style script: `view`,
  /// `fact`, and `retract` lines are replayed, `query <rule>` sets the
  /// current query, and
  /// `rewrite` (bare, or with an inline query) runs a rewrite to prime the
  /// interner and the decision cache. Other shell commands are counted as
  /// ignored. Fails fast on the first failing line.
  Result<WarmupSummary> Warmup(const std::string& script);

  /// This shard's summary (queue fields left zero; the transport owns
  /// them). Safe from any thread.
  ShardSummary Summary() const;

  EngineContext& context() { return ctx_; }
  SessionManager& sessions() { return sessions_; }

  uint64_t requests() const {
    return requests_.load(std::memory_order_relaxed);
  }
  uint64_t request_errors() const {
    return request_errors_.load(std::memory_order_relaxed);
  }
  /// Counts a request that failed before reaching any shard (parse or
  /// envelope error in the transport's stage 1). Keeps the global
  /// request/request_errors totals exact under pipelined parsing.
  void CountPreparseError() {
    requests_.fetch_add(1, std::memory_order_relaxed);
    request_errors_.fetch_add(1, std::memory_order_relaxed);
  }

 private:
  /// Dispatches a validated request. Returns the response line.
  std::string Dispatch(const Request& req, bool* shutdown_requested);

  /// Logs a kSessionCreate record when `created` is true and a store is
  /// attached. OK when no store is attached.
  Status LogSessionCreate(bool created, const std::string& session);
  /// Logs one state-changing record. OK when no store is attached.
  Status LogRecordOp(store::RecordType type, const std::string& session,
                     const std::string& text);
  /// Runs the snapshot cadence: writes a compact snapshot of every session
  /// on this shard when enough records accumulated. Failures are advisory
  /// (stderr) — the WAL still holds every commit.
  void MaybeSnapshot();

  std::string HandlePing(const Request& req);
  std::string HandleView(const Request& req);
  std::string HandleFact(const Request& req);
  std::string HandleRetract(const Request& req);
  std::string HandleClassify(const Request& req);
  std::string HandleRewrite(const Request& req);
  std::string HandleContain(const Request& req);
  std::string HandleEval(const Request& req);
  std::string HandleAnswers(const Request& req);
  std::string HandleLint(const Request& req);
  std::string HandleStats(const Request& req);
  std::string HandleReset(const Request& req);

  EngineContext& ctx_;
  ServiceOptions options_;
  SessionManager sessions_;
  store::ShardStore* store_ = nullptr;  // not owned; may be null
  size_t shard_index_ = 0;
  size_t shard_total_ = 1;
  std::function<std::vector<ShardSummary>()> cluster_view_;
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> request_errors_{0};
};

}  // namespace serve
}  // namespace cqac

#endif  // CQAC_SERVE_SERVICE_H_
