// The serve op layer: executes one parsed request against the shared
// EngineContext and the session table, producing the response line. This is
// the transport-free core of cqac_serve — the TCP server (server.h) feeds
// it lines from the bounded queue, tests and the warm-up loader feed it
// lines directly.
//
// Threading: Execute is NOT thread-safe; the server calls it from its
// single engine thread only (see session.h for why that is the design).
// The engine work *inside* a request still fans out across the context's
// TaskPool workers.
//
// Request semantics implemented here (normative doc: docs/serve.md):
//   * per-request deadline: `timeout_ms` (clamped to options.max_timeout,
//     defaulting to options.default_timeout) becomes Budget::deadline for
//     the duration of the request; expiry surfaces as a structured
//     "resource_exhausted" error;
//   * per-session accounting: engine-stat deltas of each request are added
//     to the owning session's running totals;
//   * `rewrite` dispatches exactly like cqac_shell (LSI/RSI/CQ ->
//     RewriteLsiQuery, CQAC-SI + SI-only views -> recursive Datalog,
//     otherwise bucket), so serve-mode output is byte-identical to shell
//     output for the same inputs.
#ifndef CQAC_SERVE_SERVICE_H_
#define CQAC_SERVE_SERVICE_H_

#include <chrono>
#include <cstdint>
#include <string>

#include "src/engine/context.h"
#include "src/serve/protocol.h"
#include "src/serve/session.h"

namespace cqac {
namespace serve {

struct ServiceOptions {
  /// Deadline applied when a request carries no timeout_ms.
  std::chrono::milliseconds default_timeout{2000};
  /// Upper clamp for client-supplied timeout_ms.
  std::chrono::milliseconds max_timeout{30000};
  size_t max_sessions = 256;
};

/// Result of preloading a warm-up script (see Service::Warmup).
struct WarmupSummary {
  size_t views = 0;
  size_t facts = 0;
  size_t rewrites = 0;
  size_t ignored = 0;  // shell commands warm-up does not replay

  std::string ToString() const;
};

class Service {
 public:
  /// `ctx` is the shared engine context (not owned; outlives the service).
  Service(EngineContext& ctx, ServiceOptions options);

  /// Executes one request line end to end: JSON parse, envelope
  /// validation, deadline setup, op dispatch, session accounting. Always
  /// returns a complete single-line response (errors included).
  /// `*shutdown_requested` is set when the request was a valid `shutdown`
  /// op; the transport reacts after writing the response.
  std::string Execute(const std::string& line, bool* shutdown_requested);

  /// Preloads the "default" session from a shell-style script: `view`,
  /// `fact`, and `retract` lines are replayed, `query <rule>` sets the
  /// current query, and
  /// `rewrite` (bare, or with an inline query) runs a rewrite to prime the
  /// interner and the decision cache. Other shell commands are counted as
  /// ignored. Fails fast on the first failing line.
  Result<WarmupSummary> Warmup(const std::string& script);

  EngineContext& context() { return ctx_; }
  SessionManager& sessions() { return sessions_; }

  uint64_t requests() const { return requests_; }
  uint64_t request_errors() const { return request_errors_; }

 private:
  /// Dispatches a validated request. Returns the response line.
  std::string Dispatch(const Request& req, bool* shutdown_requested);

  std::string HandlePing(const Request& req);
  std::string HandleView(const Request& req);
  std::string HandleFact(const Request& req);
  std::string HandleRetract(const Request& req);
  std::string HandleClassify(const Request& req);
  std::string HandleRewrite(const Request& req);
  std::string HandleContain(const Request& req);
  std::string HandleEval(const Request& req);
  std::string HandleAnswers(const Request& req);
  std::string HandleLint(const Request& req);
  std::string HandleStats(const Request& req);
  std::string HandleReset(const Request& req);

  EngineContext& ctx_;
  ServiceOptions options_;
  SessionManager sessions_;
  uint64_t requests_ = 0;
  uint64_t request_errors_ = 0;
};

}  // namespace serve
}  // namespace cqac

#endif  // CQAC_SERVE_SERVICE_H_
