#include "src/serve/session.h"

#include "src/base/strings.h"

namespace cqac {
namespace serve {

Result<Session*> SessionManager::GetOrCreate(const std::string& name,
                                             bool* created) {
  if (created != nullptr) *created = false;
  std::lock_guard<std::mutex> lk(mu_);
  auto it = sessions_.find(name);
  if (it != sessions_.end()) return it->second.get();
  if (sessions_.size() >= max_sessions_)
    return Status::ResourceExhausted(
        StrCat("session limit reached (", max_sessions_,
               "); reset unused sessions"));
  auto session = std::make_unique<Session>(name);
  Session* raw = session.get();
  sessions_.emplace(name, std::move(session));
  if (created != nullptr) *created = true;
  return raw;
}

Status SessionManager::Adopt(std::unique_ptr<Session> session) {
  std::lock_guard<std::mutex> lk(mu_);
  if (sessions_.count(session->name) > 0)
    return Status::Internal(
        StrCat("recovered session '", session->name, "' already exists"));
  if (sessions_.size() >= max_sessions_)
    return Status::ResourceExhausted(
        StrCat("session limit reached (", max_sessions_,
               ") while adopting recovered sessions"));
  std::string name = session->name;
  sessions_.emplace(std::move(name), std::move(session));
  return Status::OK();
}

std::vector<Session*> SessionManager::Sessions() const {
  std::vector<Session*> out;
  std::lock_guard<std::mutex> lk(mu_);
  out.reserve(sessions_.size());
  for (const auto& [name, session] : sessions_) out.push_back(session.get());
  return out;
}

Session* SessionManager::Find(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = sessions_.find(name);
  return it == sessions_.end() ? nullptr : it->second.get();
}

bool SessionManager::Drop(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  return sessions_.erase(name) > 0;
}

std::vector<SessionIndexEntry> SessionManager::Index() const {
  std::vector<SessionIndexEntry> out;
  std::lock_guard<std::mutex> lk(mu_);
  out.reserve(sessions_.size());
  for (const auto& [name, session] : sessions_) {
    SessionIndexEntry e;
    e.name = name;
    e.requests = session->stats.requests.load(std::memory_order_relaxed);
    e.errors = session->stats.errors.load(std::memory_order_relaxed);
    out.push_back(std::move(e));
  }
  return out;
}

}  // namespace serve
}  // namespace cqac
