#include "src/serve/session.h"

#include "src/base/strings.h"

namespace cqac {
namespace serve {

Result<Session*> SessionManager::GetOrCreate(const std::string& name) {
  auto it = sessions_.find(name);
  if (it != sessions_.end()) return it->second.get();
  if (sessions_.size() >= max_sessions_)
    return Status::ResourceExhausted(
        StrCat("session limit reached (", max_sessions_,
               "); reset unused sessions"));
  auto session = std::make_unique<Session>(name);
  Session* raw = session.get();
  sessions_.emplace(name, std::move(session));
  return raw;
}

Session* SessionManager::Find(const std::string& name) {
  auto it = sessions_.find(name);
  return it == sessions_.end() ? nullptr : it->second.get();
}

bool SessionManager::Drop(const std::string& name) {
  return sessions_.erase(name) > 0;
}

}  // namespace serve
}  // namespace cqac
