// Sessions: the per-client state a long-lived server keeps between
// requests. A session owns what the shell keeps as mutable state — the view
// registry (with source spans, for lint) and the fact database — plus
// accounting: request counts and the engine-stat deltas attributable to the
// session's requests against the owning shard's EngineContext.
//
// Ownership under sharding: every session is pinned to exactly one shard
// (server.h ShardForSession), and a session's *state* (views, store,
// engine-stat deltas) is touched only by that shard's single engine
// thread — requests are executed serially off the shard's bounded queue,
// so none of it needs locking. What IS read cross-shard is the global
// `stats` scope's session index (names + request/error counts): the
// manager guards its map with a mutex for create/drop/enumerate, and the
// per-session request/error counts are relaxed atomics. The owning shard
// never takes another shard's mutex — the hot path stays shard-local.
#ifndef CQAC_SERVE_SESSION_H_
#define CQAC_SERVE_SESSION_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/engine/stats.h"
#include "src/eval/database.h"
#include "src/ir/parser.h"
#include "src/ir/view.h"
#include "src/ivm/maintain.h"

namespace cqac {
namespace serve {

/// Accounting for one session. `requests`/`errors` are atomics because the
/// global `stats` scope reads them from another shard's engine thread;
/// `engine` is only ever touched by the owning shard.
struct SessionStats {
  std::atomic<uint64_t> requests{0};  // requests executed (incl. failed)
  std::atomic<uint64_t> errors{0};    // requests answered with an error
  StatsSnapshot engine;  // summed engine-stat deltas of this session
};

/// One client-visible session.
struct Session {
  explicit Session(std::string name_in) : name(std::move(name_in)) {}

  std::string name;
  ViewSet views;
  std::vector<ParsedQuery> view_sources;  // parallel to views, with spans
  std::vector<std::string> view_texts;    // original rule texts, for the
                                          // durability snapshots (src/store)

  /// Base facts plus incrementally maintained materializations of `views`
  /// (src/ivm): `fact`/`retract` ops pay O(delta), and `answers` reads the
  /// warm state instead of rematerializing per request.
  ivm::MaterializedViewSet store;

  SessionStats stats;
};

/// One row of the cross-shard session index (global `stats` scope).
struct SessionIndexEntry {
  std::string name;
  uint64_t requests = 0;
  uint64_t errors = 0;
};

/// Owns every live session of one shard. Bounded: GetOrCreate fails with
/// kResourceExhausted once `max_sessions` distinct names exist (a stray
/// client enumerating session names must not exhaust server memory).
class SessionManager {
 public:
  explicit SessionManager(size_t max_sessions = 256)
      : max_sessions_(max_sessions) {}

  /// The session named `name`, created on first use. Owning shard only.
  /// When `created` is non-null it reports whether this call created the
  /// session (the durable store logs a kSessionCreate record exactly then).
  Result<Session*> GetOrCreate(const std::string& name,
                               bool* created = nullptr);

  /// Adopts a recovered session wholesale (startup recovery, before any
  /// client traffic). Fails on a duplicate name or when full.
  Status Adopt(std::unique_ptr<Session> session);

  /// Name-ordered pointers to every live session. Owning shard's engine
  /// thread only (the durable snapshot writer walks these).
  std::vector<Session*> Sessions() const;

  /// The session named `name`, or nullptr when it was never created.
  /// Owning shard only (the returned state is not cross-shard safe).
  Session* Find(const std::string& name);

  /// Drops the session (views, facts, stats). False when absent. Owning
  /// shard only.
  bool Drop(const std::string& name);

  size_t size() const {
    std::lock_guard<std::mutex> lk(mu_);
    return sessions_.size();
  }

  /// Snapshot of (name, requests, errors) in name order. Safe from any
  /// thread — this is what the global `stats` scope reads cross-shard.
  std::vector<SessionIndexEntry> Index() const;

 private:
  size_t max_sessions_;
  /// Guards the map shape (insert/erase/iterate), not session contents:
  /// a Session's state belongs to the owning shard's engine thread.
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Session>> sessions_;
};

}  // namespace serve
}  // namespace cqac

#endif  // CQAC_SERVE_SESSION_H_
