// Sessions: the per-client state a long-lived server keeps between
// requests. A session owns what the shell keeps as mutable state — the view
// registry (with source spans, for lint) and the fact database — plus
// accounting: request counts and the engine-stat deltas attributable to the
// session's requests against the one shared EngineContext.
//
// Sessions are touched only by the server's single engine thread (requests
// are executed serially off the bounded queue), so the manager needs no
// locking; what *is* concurrent — the shared context's cache and stats — is
// synchronized inside EngineContext itself.
#ifndef CQAC_SERVE_SESSION_H_
#define CQAC_SERVE_SESSION_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/engine/stats.h"
#include "src/eval/database.h"
#include "src/ir/parser.h"
#include "src/ir/view.h"
#include "src/ivm/maintain.h"

namespace cqac {
namespace serve {

/// Accounting for one session.
struct SessionStats {
  uint64_t requests = 0;        // requests executed (including failed ones)
  uint64_t errors = 0;          // requests answered with an error
  StatsSnapshot engine;         // summed engine-stat deltas of this session
};

/// One client-visible session.
struct Session {
  explicit Session(std::string name_in) : name(std::move(name_in)) {}

  std::string name;
  ViewSet views;
  std::vector<ParsedQuery> view_sources;  // parallel to views, with spans

  /// Base facts plus incrementally maintained materializations of `views`
  /// (src/ivm): `fact`/`retract` ops pay O(delta), and `answers` reads the
  /// warm state instead of rematerializing per request.
  ivm::MaterializedViewSet store;

  SessionStats stats;
};

/// Owns every live session. Bounded: GetOrCreate fails with
/// kResourceExhausted once `max_sessions` distinct names exist (a stray
/// client enumerating session names must not exhaust server memory).
class SessionManager {
 public:
  explicit SessionManager(size_t max_sessions = 256)
      : max_sessions_(max_sessions) {}

  /// The session named `name`, created on first use.
  Result<Session*> GetOrCreate(const std::string& name);

  /// The session named `name`, or nullptr when it was never created.
  Session* Find(const std::string& name);

  /// Drops the session (views, facts, stats). False when absent.
  bool Drop(const std::string& name);

  size_t size() const { return sessions_.size(); }
  const std::map<std::string, std::unique_ptr<Session>>& sessions() const {
    return sessions_;
  }

 private:
  size_t max_sessions_;
  std::map<std::string, std::unique_ptr<Session>> sessions_;
};

}  // namespace serve
}  // namespace cqac

#endif  // CQAC_SERVE_SESSION_H_
