#include "src/store/crc32c.h"

namespace cqac {
namespace store {
namespace {

struct Crc32cTable {
  uint32_t t[256];
  Crc32cTable() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int k = 0; k < 8; ++k)
        crc = (crc >> 1) ^ ((crc & 1) ? 0x82F63B78u : 0);
      t[i] = crc;
    }
  }
};

}  // namespace

uint32_t Crc32c(const char* data, size_t n) {
  static const Crc32cTable table;
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < n; ++i)
    crc = table.t[(crc ^ static_cast<uint8_t>(data[i])) & 0xff] ^ (crc >> 8);
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace store
}  // namespace cqac
