// CRC32C (Castagnoli, reflected polynomial 0x82F63B78): the frame checksum
// of the durable store's on-disk formats (docs/durability.md). Software
// table implementation — no dependency and no SSE4.2 requirement; log
// appends checksum tens of bytes, so the table walk is nowhere near the
// fsync on the hot path.
#ifndef CQAC_STORE_CRC32C_H_
#define CQAC_STORE_CRC32C_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace cqac {
namespace store {

uint32_t Crc32c(const char* data, size_t n);

inline uint32_t Crc32c(const std::string& s) {
  return Crc32c(s.data(), s.size());
}

}  // namespace store
}  // namespace cqac

#endif  // CQAC_STORE_CRC32C_H_
