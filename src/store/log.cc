#include "src/store/log.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

#include "src/base/strings.h"
#include "src/base/wire.h"
#include "src/store/crc32c.h"

namespace cqac {
namespace store {

namespace {

Status Errno(const char* what, const std::string& path) {
  return Status::Internal(StrCat(what, " ", path, ": ", std::strerror(errno)));
}

bool ReadFileBytes(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

bool WriteAll(int fd, const std::string& data) {
  size_t done = 0;
  while (done < data.size()) {
    ssize_t n = ::write(fd, data.data() + done, data.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

Result<FsyncPolicy> ParseFsyncPolicy(const std::string& name) {
  if (name == "always") return FsyncPolicy::kAlways;
  if (name == "interval") return FsyncPolicy::kInterval;
  if (name == "never") return FsyncPolicy::kNever;
  return Status::InvalidArgument(
      StrCat("unknown fsync policy '", name,
             "' (expected always, interval, or never)"));
}

const char* FsyncPolicyName(FsyncPolicy p) {
  switch (p) {
    case FsyncPolicy::kAlways:
      return "always";
    case FsyncPolicy::kInterval:
      return "interval";
    case FsyncPolicy::kNever:
      return "never";
  }
  return "unknown";
}

Result<LogContents> ReadLog(const std::string& path) {
  std::string bytes;
  if (!ReadFileBytes(path, &bytes))
    return Status::NotFound(StrCat("cannot open wal ", path));

  LogContents out;
  // A file shorter than the header is the torn remnant of a crashed
  // create: recover to an empty log (the writer rewrites the header).
  if (bytes.size() < kWalHeaderBytes) {
    out.truncated_tail = !bytes.empty();
    out.valid_bytes = 0;
    return out;
  }
  if (std::memcmp(bytes.data(), kWalMagic, 8) != 0)
    return Status::Inconsistent(StrCat("wal corrupt: bad magic in ", path));
  wire::Cursor header(bytes.data() + 8, kWalHeaderBytes - 8);
  uint32_t version = header.ReadU32();
  out.shard_index = header.ReadU32();
  out.shard_count = header.ReadU32();
  if (version != kWalVersion)
    return Status::Unsupported(
        StrCat("wal version ", version, " in ", path, " (expected ",
               kWalVersion, ")"));

  size_t off = kWalHeaderBytes;
  uint64_t last_lsn = 0;
  while (off < bytes.size()) {
    if (bytes.size() - off < 8) {  // torn frame header
      out.truncated_tail = true;
      break;
    }
    wire::Cursor fh(bytes.data() + off, 8);
    uint32_t len = fh.ReadU32();
    uint32_t crc = fh.ReadU32();
    if (bytes.size() - off - 8 < len) {  // torn payload
      out.truncated_tail = true;
      break;
    }
    const char* payload = bytes.data() + off + 8;
    if (Crc32c(payload, len) != crc)
      return Status::Inconsistent(
          StrCat("wal corrupt: crc mismatch at offset ", off, " in ", path));
    wire::Cursor body(payload, len);
    LogRecord rec;
    if (!DecodeRecord(&body, &rec) || !body.AtEnd())
      return Status::Inconsistent(
          StrCat("wal corrupt: undecodable record at offset ", off, " in ",
                 path));
    if (rec.lsn <= last_lsn)
      return Status::Inconsistent(
          StrCat("wal corrupt: lsn ", rec.lsn, " after ", last_lsn, " in ",
                 path));
    last_lsn = rec.lsn;
    out.records.push_back(std::move(rec));
    off += 8 + len;
  }
  out.valid_bytes = off;
  return out;
}

Result<std::unique_ptr<LogWriter>> LogWriter::Open(std::string path,
                                                   uint32_t shard_index,
                                                   uint32_t shard_count,
                                                   Options options,
                                                   LogContents* recovered) {
  bool fresh = ::access(path.c_str(), F_OK) != 0;
  uint64_t resume_at = 0;
  if (!fresh) {
    Result<LogContents> contents = ReadLog(path);
    CQAC_RETURN_IF_ERROR(contents.status());
    if (contents.value().valid_bytes >= kWalHeaderBytes &&
        (contents.value().shard_index != shard_index ||
         contents.value().shard_count != shard_count))
      return Status::InvalidArgument(
          StrCat("wal ", path, " belongs to shard ",
                 contents.value().shard_index, "/",
                 contents.value().shard_count, ", not ", shard_index, "/",
                 shard_count));
    resume_at = contents.value().valid_bytes;
    fresh = resume_at == 0;  // torn header: rewrite from scratch
    if (recovered != nullptr) *recovered = std::move(contents).value();
  } else if (recovered != nullptr) {
    *recovered = LogContents{};
  }

  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT, 0644);
  if (fd < 0) return Errno("open wal", path);
  auto writer =
      std::unique_ptr<LogWriter>(new LogWriter(path, fd, options));
  if (fresh) {
    if (::ftruncate(fd, 0) != 0) return Errno("truncate wal", path);
    std::string header(kWalMagic, 8);
    wire::AppendU32(&header, kWalVersion);
    wire::AppendU32(&header, shard_index);
    wire::AppendU32(&header, shard_count);
    if (!WriteAll(fd, header)) return Errno("write wal header", path);
    CQAC_RETURN_IF_ERROR(writer->Sync());
  } else {
    // Drop the torn tail (if any) and position at the end.
    if (::ftruncate(fd, static_cast<off_t>(resume_at)) != 0)
      return Errno("truncate wal", path);
    if (::lseek(fd, 0, SEEK_END) < 0) return Errno("seek wal", path);
  }
  return writer;
}

LogWriter::~LogWriter() {
  if (fd_ >= 0) {
    // A final best-effort sync on clean shutdown, whatever the policy.
    ::fsync(fd_);
    ::close(fd_);
  }
}

Result<size_t> LogWriter::Append(const LogRecord& record) {
  std::string payload;
  EncodeRecord(record, &payload);
  std::string frame;
  frame.reserve(payload.size() + 8);
  AppendFrame(payload, &frame);
  if (!WriteAll(fd_, frame)) return Errno("append wal", path_);
  bytes_appended_ += frame.size();
  switch (options_.fsync) {
    case FsyncPolicy::kAlways:
      CQAC_RETURN_IF_ERROR(Sync());
      break;
    case FsyncPolicy::kInterval: {
      auto now = std::chrono::steady_clock::now();
      if (now - last_sync_ >=
          std::chrono::milliseconds(options_.fsync_interval_ms))
        CQAC_RETURN_IF_ERROR(Sync());
      break;
    }
    case FsyncPolicy::kNever:
      break;
  }
  return frame.size();
}

Status LogWriter::Sync() {
  if (::fsync(fd_) != 0) return Errno("fsync wal", path_);
  ++fsyncs_;
  last_sync_ = std::chrono::steady_clock::now();
  return Status::OK();
}

}  // namespace store
}  // namespace cqac
